// The serve stack's network daemon: `recoil_served --store DIR --port N`
// boots a ContentServer over a persistent DiskStore and runs the epoll
// event loop (src/net/daemon.hpp) until SIGTERM/SIGINT, which triggers a
// graceful drain — new connects refused, in-flight streams completed and
// flushed, then exit 0. Clients speak the length-prefixed frame protocol:
// `recoil_client` (examples/recoil_client.cpp), the src/net/client.hpp
// library, or anything that can write `[u32 LE length][RCRQ frame]`.
//
// Scale-out flags: `--shards N` fronts N independent ContentServer shards
// with a consistent-hash ShardedServer (per-shard DiskStore partitions
// under --store, budget rebalancing, peer fetch); `--loops N` runs N
// epoll event-loop threads sharing the port via SO_REUSEPORT (with an
// accept-and-hand-off fallback). Both default to 1, preserving the
// classic single-server single-loop daemon.
//
// `--seed-demo` encodes a small deterministic text asset ("demo", 1 MB,
// 256-way splits) into the store at boot so the daemon can serve traffic
// without a separately prepared store — what the CI smoke and the README
// quick-start use.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "net/daemon.hpp"
#include "serve/shard_router.hpp"
#include "serve/store.hpp"
#include "workload/datasets.hpp"

using namespace recoil;

namespace {

net::Daemon* g_daemon = nullptr;

// begin_drain() is an atomic store plus one eventfd write per loop —
// async-signal-safe.
void on_signal(int) {
    if (g_daemon != nullptr) g_daemon->begin_drain();
}

u64 parse_bytes(const char* s) {
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || v < 0) return 0;
    u64 mult = 1;
    if (*end == 'K' || *end == 'k') mult = u64{1} << 10, ++end;
    else if (*end == 'M' || *end == 'm') mult = u64{1} << 20, ++end;
    else if (*end == 'G' || *end == 'g') mult = u64{1} << 30, ++end;
    if (*end != '\0') return 0;
    return static_cast<u64>(v * static_cast<double>(mult));
}

int usage() {
    std::fprintf(stderr,
                 "usage: recoil_served [--store DIR] [--port N] [--bind ADDR]\n"
                 "                     [--cache-policy NAME] [--mem-budget SZ]\n"
                 "                     [--max-conns N] [--idle-timeout MS]\n"
                 "                     [--edge-triggered] [--seed-demo]\n"
                 "                     [--shards N] [--loops N]\n"
                 "                     [--rebalance-every N]\n");
    return 2;
}

int run_daemon(net::Daemon& daemon, const net::DaemonOptions& dopt) {
    g_daemon = &daemon;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::printf("recoil_served listening on %s:%u (%s-triggered, %u loop%s"
                "%s, max-conns %u, idle-timeout %lld ms)\n",
                dopt.bind_address.c_str(), daemon.port(),
                dopt.edge_triggered ? "edge" : "level", dopt.loops,
                dopt.loops == 1 ? "" : "s",
                dopt.loops > 1
                    ? (daemon.reuseport() ? ", reuseport" : ", hand-off")
                    : "",
                dopt.max_connections,
                static_cast<long long>(dopt.idle_timeout.count()));
    std::fflush(stdout);
    daemon.run();
    const auto s = daemon.stats();
    g_daemon = nullptr;
    std::printf("drained: %llu conns served, %llu requests "
                "(%llu streamed), %llu refused, %llu idle-closed, "
                "%llu hand-offs\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.streamed),
                static_cast<unsigned long long>(s.refused),
                static_cast<unsigned long long>(s.idle_closed),
                static_cast<unsigned long long>(s.loop_handoffs));
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const char* store_dir = nullptr;
    bool seed_demo = false;
    serve::CachePolicyConfig cache_policy;
    u64 mem_budget = 0;
    u32 shards = 1;
    u64 rebalance_every = 1024;
    net::DaemonOptions dopt;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--store") == 0) {
            store_dir = need("--store");
        } else if (std::strcmp(argv[i], "--port") == 0) {
            dopt.port = static_cast<u16>(std::atoi(need("--port")));
        } else if (std::strcmp(argv[i], "--bind") == 0) {
            dopt.bind_address = need("--bind");
        } else if (std::strcmp(argv[i], "--cache-policy") == 0) {
            auto parsed = serve::parse_cache_policy(need("--cache-policy"));
            if (!parsed) {
                std::fprintf(stderr, "unknown cache policy '%s'\n", argv[i]);
                return 2;
            }
            cache_policy = *parsed;
        } else if (std::strcmp(argv[i], "--mem-budget") == 0) {
            if ((mem_budget = parse_bytes(need("--mem-budget"))) == 0) {
                std::fprintf(stderr, "--mem-budget requires a size, e.g. 64M\n");
                return 2;
            }
        } else if (std::strcmp(argv[i], "--max-conns") == 0) {
            dopt.max_connections =
                static_cast<u32>(std::atoi(need("--max-conns")));
        } else if (std::strcmp(argv[i], "--idle-timeout") == 0) {
            dopt.idle_timeout =
                std::chrono::milliseconds(std::atoi(need("--idle-timeout")));
        } else if (std::strcmp(argv[i], "--edge-triggered") == 0) {
            dopt.edge_triggered = true;
        } else if (std::strcmp(argv[i], "--seed-demo") == 0) {
            seed_demo = true;
        } else if (std::strcmp(argv[i], "--shards") == 0) {
            shards = static_cast<u32>(std::atoi(need("--shards")));
            if (shards == 0) shards = 1;
        } else if (std::strcmp(argv[i], "--loops") == 0) {
            dopt.loops = static_cast<u32>(std::atoi(need("--loops")));
            if (dopt.loops == 0) dopt.loops = 1;
        } else if (std::strcmp(argv[i], "--rebalance-every") == 0) {
            rebalance_every = std::strtoull(need("--rebalance-every"),
                                            nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (store_dir == nullptr && !seed_demo) {
        std::fprintf(stderr,
                     "nothing to serve: pass --store DIR and/or --seed-demo\n");
        return usage();
    }

    try {
        if (shards > 1) {
            serve::ShardedOptions ropt;
            ropt.shards = shards;
            ropt.total_budget_bytes = mem_budget;
            ropt.rebalance_every = rebalance_every;
            ropt.server.cache_policy = cache_policy;
            if (store_dir != nullptr) ropt.store_dir = store_dir;
            serve::ShardedServer router(ropt);
            if (seed_demo &&
                !router.shard(router.shard_of("demo"))
                     .store()
                     .resolve("demo")) {
                auto data = workload::gen_text(1'000'000, 2024);
                router.encode_bytes("demo", data, 256);
                std::printf("seeded 'demo' (1 MB text, 256-way splits) "
                            "into shard %u of %u\n",
                            router.shard_of("demo"), shards);
            }
            net::Daemon daemon(router, dopt);
            const int rc = run_daemon(daemon, dopt);
            const auto t = router.totals();
            std::printf("router: %llu routed, %llu peer fetches "
                        "(%llu B), %llu rebalances\n",
                        static_cast<unsigned long long>(t.routed),
                        static_cast<unsigned long long>(t.peer_fetches),
                        static_cast<unsigned long long>(t.peer_fetch_bytes),
                        static_cast<unsigned long long>(t.rebalances));
            return rc;
        }

        serve::ServerOptions sopt;
        sopt.cache_policy = cache_policy;
        sopt.mem_budget_bytes = mem_budget;
        serve::ContentServer server(sopt);
        if (store_dir != nullptr) {
            auto disk = std::make_shared<serve::DiskStore>(store_dir);
            server.store().attach_backing(disk);
            std::printf("store: %s (%zu stored assets)\n", store_dir,
                        disk->size());
        }
        if (seed_demo && server.store().resolve("demo") == nullptr) {
            auto data = workload::gen_text(1'000'000, 2024);
            server.store().encode_bytes("demo", data, 256);
            std::printf("seeded 'demo' (1 MB text, 256-way splits)\n");
        }
        net::Daemon daemon(server, dopt);
        return run_daemon(daemon, dopt);
    } catch (const net::NetError& e) {
        std::fprintf(stderr, "recoil_served: %s\n", e.what());
        return 1;
    } catch (const Error& e) {
        std::fprintf(stderr, "recoil_served: %s\n", e.what());
        return 1;
    }
    return 0;
}
