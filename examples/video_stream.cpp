// Video-style streaming with the chunked layer: 120 frames, each modeled
// and encoded independently (per-frame statistics), one serialized stream.
// Clients with different parallel capacities get metadata combined across
// the whole stream; decode exposes chunk x split work items.

#include <cmath>
#include <cstdio>

#include "stream/chunked.hpp"
#include "util/stopwatch.hpp"
#include "util/xoshiro.hpp"
#include "workload/datasets.hpp"

using namespace recoil;

int main() {
    // 120 "frames" whose compressibility drifts over time (scene changes).
    const int frames = 120;
    stream::ChunkedEncoder enc({/*prob_bits=*/11, /*max_splits_per_chunk=*/32});
    Xoshiro256 rng(11);
    std::vector<u8> original;
    Stopwatch enc_sw;
    for (int f = 0; f < frames; ++f) {
        const double lambda = 50 + 400 * (0.5 + 0.5 * std::sin(f / 9.0));
        auto frame = workload::gen_exponential(120000 + rng.below(40000), lambda,
                                               3000 + f);
        original.insert(original.end(), frame.begin(), frame.end());
        enc.add_chunk(frame);
    }
    auto full = enc.finish();
    std::printf("encoded %d frames, %.2f MB raw -> %.2f MB, %llu split points "
                "(%.1f ms)\n",
                frames, original.size() / 1e6, full.serialize().size() / 1e6,
                static_cast<unsigned long long>(full.total_splits()),
                enc_sw.seconds() * 1e3);

    for (u32 capacity : {2u, 8u, 32u, 256u}) {
        auto served = full.combined(capacity);
        auto wire = served.serialize();
        ThreadPool pool(std::min(capacity, 16u));
        Stopwatch sw;
        auto decoded = stream::decode_chunked(served, &pool);
        const double secs = sw.seconds();
        std::printf("client capacity %4u: wire %.3f MB, %4llu work items, "
                    "decode %6.2f GB/s [%s]\n",
                    capacity, wire.size() / 1e6,
                    static_cast<unsigned long long>(served.total_splits()),
                    gbps(static_cast<double>(decoded.size()), secs),
                    decoded == original ? "OK" : "MISMATCH");
        if (decoded != original) return 1;
    }

    // Random access: decode only frame 57.
    auto one = stream::decode_chunk(full.chunks[57], full.prob_bits);
    std::printf("random access: frame 57 alone -> %zu bytes\n", one.size());
    return 0;
}
