// Quickstart: compress a buffer with Recoil, serve metadata sized to the
// decoder, and decode in parallel. This is the 60-second tour of the API.

#include <cstdio>
#include <string>
#include <vector>

#include "core/recoil_decoder.hpp"
#include "core/recoil_encoder.hpp"
#include "rans/symbol_stats.hpp"
#include "simd/dispatch.hpp"
#include "util/thread_pool.hpp"
#include "workload/datasets.hpp"

using namespace recoil;

int main() {
    // 1. Some data and an order-0 model quantized to 2^11 (paper Table 3).
    std::vector<u8> data = workload::gen_text(4 << 20, 42);
    StaticModel model(histogram(data), /*prob_bits=*/11);

    // 2. Encode ONCE with a single interleaved coder group, planning enough
    //    split points for the most parallel client we intend to support.
    auto encoded = recoil_encode<Rans32, 32>(std::span<const u8>(data), model,
                                             /*max_splits=*/1024);
    std::printf("encoded %zu bytes -> %llu bytes payload + %u split points\n",
                data.size(),
                static_cast<unsigned long long>(encoded.bitstream.byte_size()),
                encoded.metadata.num_splits() - 1);

    // 3. A 8-way-parallel client asks for content: combine splits to 8.
    //    This touches only metadata — the bitstream is shared, never re-encoded.
    RecoilMetadata for_client = combine_splits(encoded.metadata, 8);

    // 4. Decode with a thread pool and the best SIMD backend for this CPU.
    ThreadPool pool(8);
    simd::SimdRangeFn<u8> simd_range;  // auto-picks AVX512 / AVX2 / scalar
    auto decoded = recoil_decode<Rans32, 32, u8>(
        std::span<const u16>(encoded.bitstream.units), for_client, model.tables(),
        &pool, nullptr, simd_range);

    std::printf("decoded %zu bytes with %u splits on backend %s: %s\n",
                decoded.size(), for_client.num_splits(),
                simd::backend_name(simd_range.backend),
                decoded == data ? "OK" : "MISMATCH");
    return decoded == data ? 0 : 1;
}
