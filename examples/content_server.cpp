// Content-delivery scenario (§1, §3.3): a server encodes a 10 MB asset once
// with 2176-way split metadata (enough for a high-end GPU). Clients attach
// their parallel capacity to the request; the server combines splits in real
// time and serves exactly the metadata each client can exploit. Compare the
// bytes on the wire with the conventional approach, which must either ship
// the Large variation to everyone or store one re-encoding per client class.

#include <cstdio>

#include "conventional/conventional.hpp"
#include "core/recoil_decoder.hpp"
#include "format/container.hpp"
#include "rans/symbol_stats.hpp"
#include "simd/dispatch.hpp"
#include "util/stopwatch.hpp"
#include "workload/datasets.hpp"

using namespace recoil;

int main() {
    const u64 size = 10'000'000;
    std::printf("server: encoding %llu-byte asset once (max parallelism 2176)...\n",
                static_cast<unsigned long long>(size));
    auto data = workload::gen_text(size, 2024);
    StaticModel model(histogram(data), 11);
    auto encoded = recoil_encode<Rans32, 32>(std::span<const u8>(data), model, 2176);
    auto file = format::make_recoil_file(encoded, model, 1);
    const auto master = format::save_recoil_file(file);
    std::printf("server: master file %zu bytes (%u split points)\n\n", master.size(),
                encoded.metadata.num_splits() - 1);

    struct Client {
        const char* name;
        u32 parallelism;
        u32 threads;
    };
    const Client clients[] = {
        {"phone (2 cores)", 2, 2},
        {"laptop (8 cores)", 8, 8},
        {"workstation (16 cores)", 16, 16},
        {"GPU box (2176 warps)", 2176, 0},
    };

    for (const Client& c : clients) {
        Stopwatch serve_sw;
        auto wire = format::serve_combined(file, c.parallelism);
        const double serve_ms = serve_sw.seconds() * 1e3;

        // Client side: parse, rebuild model, decode with its own capacity.
        auto got = format::load_recoil_file(wire);
        auto m = got.build_static_model();
        ThreadPool pool(c.threads == 0 ? std::thread::hardware_concurrency()
                                       : c.threads);
        simd::SimdRangeFn<u8> range;
        Stopwatch dec_sw;
        auto out = recoil_decode<Rans32, 32, u8>(std::span<const u16>(got.units),
                                                 got.metadata, m.tables(), &pool,
                                                 nullptr, range);
        const double dec_s = dec_sw.seconds();
        std::printf(
            "%-24s wire %8zu B (saved %6zu B) | served in %6.3f ms | "
            "decoded %.2f GB/s [%s]\n",
            c.name, wire.size(), master.size() - wire.size(), serve_ms,
            gbps(static_cast<double>(out.size()), dec_s),
            out == data ? "OK" : "MISMATCH");
        if (out != data) return 1;
    }

    // What conventional would need for the same menu of clients.
    std::printf("\nconventional alternative: one re-encode per client class:\n");
    for (const Client& c : clients) {
        Stopwatch sw;
        auto conv = conventional_encode<Rans32, 32>(std::span<const u8>(data), model,
                                                    c.parallelism);
        std::printf("  %-24s re-encode %7.1f ms, file %llu B\n", c.name,
                    sw.seconds() * 1e3,
                    static_cast<unsigned long long>(
                        conv.payload_bytes() + conv.overhead_bytes()));
    }
    return 0;
}
