// Content-delivery scenario (§1, §3.3) on the serve subsystem, speaking the
// versioned wire protocol across a simulated process boundary: clients build
// framed requests (encode_request), the server answers opaque frames
// (ContentServer::serve_frame), and clients parse typed responses
// (decode_response) — exactly what an HTTP/gRPC frontend would forward. The
// server encodes a 10 MB asset once with 2176-way split metadata, adapts
// metadata per client class through the LRU wire cache, coalesces a
// concurrent cold stampede into one combine, and serves byte ranges over
// both single-file and chunked assets.
//
// With `--store DIR` the server runs on a persistent DiskStore: the first
// run encodes and writes through durably; every later run cold-boots by
// mmapping the stored masters (no re-encode) and serves the same bytes —
// including through the v2 streamed framing (write → restart → stream).
// `--verify-store` re-walks every manifest and container checksum at boot,
// reporting corrupt assets as typed errors instead of failing on the first
// demand-load.
//
// `--cache-policy lru|slru|lru-tinylfu|slru-tinylfu` selects the response
// cache's eviction/admission policies; `--mem-budget BYTES` (K/M/G suffixes)
// arms the resource governor with a global budget over cache bytes +
// resident store bytes — under pressure it unloads cold demand-loadable
// assets (pinned ones are protected) and shrinks the cache if that is not
// enough. With both --store and --mem-budget set, a cold-asset tail is
// served to demonstrate pressure unloads live.
//
// `--metrics-json PATH` dumps the unified telemetry snapshot (every serve /
// cache / governor / store / session counter plus the per-phase latency
// histograms) as JSON at exit; the same snapshot is also fetched over the
// wire via the reserved "!metrics" introspection asset to prove the
// exposition surface works end to end. `--trace-log PATH` dumps the slow
// request log (N slowest + recent failures, with per-phase spans) as JSON.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>

#include "core/recoil_decoder.hpp"
#include "serve/session.hpp"
#include "serve/store.hpp"
#include "simd/dispatch.hpp"
#include "util/stopwatch.hpp"
#include "workload/datasets.hpp"

using namespace recoil;
using namespace recoil::serve;

namespace {

/// Client side of the protocol: frame the request, hand the opaque frame to
/// the server (a network hop in a real deployment), parse the typed response.
ServeResult roundtrip(ContentServer& server, const ServeRequest& req) {
    const std::vector<u8> request_frame = encode_request(req);
    const std::vector<u8> response_frame = server.serve_frame(request_frame);
    return decode_response(response_frame);
}

/// Write `body` to `path` whole; returns false (with a stderr note) on any
/// IO failure so telemetry dumps never turn a healthy run into a crash.
bool dump_file(const char* path, const std::string& body) {
    std::FILE* f = std::fopen(path, "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return false;
    }
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "short write to %s\n", path);
    return ok;
}

/// "64M" -> bytes; bare numbers are bytes. 0 on parse failure (including
/// trailing garbage after the K/M/G suffix, e.g. "64MB").
u64 parse_bytes(const char* s) {
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || v < 0) return 0;
    u64 mult = 1;
    if (*end == 'K' || *end == 'k') mult = u64{1} << 10, ++end;
    else if (*end == 'M' || *end == 'm') mult = u64{1} << 20, ++end;
    else if (*end == 'G' || *end == 'g') mult = u64{1} << 30, ++end;
    if (*end != '\0') return 0;
    return static_cast<u64>(v * static_cast<double>(mult));
}

}  // namespace

int main(int argc, char** argv) {
    const char* store_dir = nullptr;
    bool verify_store = false;
    CachePolicyConfig cache_policy;
    u64 mem_budget = 0;
    const char* metrics_json = nullptr;
    const char* trace_log = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--store") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--store requires a directory\n");
                return 2;
            }
            store_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--verify-store") == 0) {
            verify_store = true;
        } else if (std::strcmp(argv[i], "--cache-policy") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--cache-policy requires a name "
                                     "(lru|slru|lru-tinylfu|slru-tinylfu)\n");
                return 2;
            }
            auto parsed = parse_cache_policy(argv[++i]);
            if (!parsed) {
                std::fprintf(stderr, "unknown cache policy '%s'\n", argv[i]);
                return 2;
            }
            cache_policy = *parsed;
        } else if (std::strcmp(argv[i], "--mem-budget") == 0) {
            if (i + 1 >= argc ||
                (mem_budget = parse_bytes(argv[i + 1])) == 0) {
                std::fprintf(stderr,
                             "--mem-budget requires a size (e.g. 64M)\n");
                return 2;
            }
            ++i;
        } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--metrics-json requires a path\n");
                return 2;
            }
            metrics_json = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-log") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--trace-log requires a path\n");
                return 2;
            }
            trace_log = argv[++i];
        }
    }

    const u64 size = 10'000'000;
    auto data = workload::gen_text(size, 2024);

    ServerOptions server_opt;
    server_opt.cache_policy = cache_policy;
    server_opt.mem_budget_bytes = mem_budget;
    ContentServer server(server_opt);
    std::printf("cache policy: %s%s\n", server.cache().policy_name().c_str(),
                mem_budget != 0 ? ", memory governor armed" : "");
    if (store_dir != nullptr) {
        Stopwatch open_sw;
        auto disk = std::make_shared<DiskStore>(store_dir);
        server.store().attach_backing(disk);
        std::printf("store: opened %s (%zu stored assets) in %.2f ms\n",
                    store_dir, disk->size(), open_sw.seconds() * 1e3);
        if (verify_store) {
            // Boot-time scrub: re-walk manifests and container checksums so a
            // corrupt asset surfaces now, as a typed error, instead of on its
            // first demand-load.
            Stopwatch verify_sw;
            const auto report = disk->verify();
            std::printf("store: verified %zu asset(s) in %.2f ms — %s\n",
                        report.checked, verify_sw.seconds() * 1e3,
                        report.ok() ? "all containers healthy"
                                    : "CORRUPTION FOUND");
            for (const auto& issue : report.issues)
                std::fprintf(stderr, "store: asset '%s' [%s]: %s\n",
                             issue.name.c_str(),
                             store_status_name(issue.status),
                             issue.detail.c_str());
            if (!report.ok()) return 1;
        }
    } else if (verify_store) {
        std::fprintf(stderr, "--verify-store requires --store DIR\n");
        return 2;
    }

    // Cold boot: an asset already persisted from a previous run is mmapped
    // and served as-is — the whole point of encode-once is never doing this
    // encode again.
    auto asset = server.store().resolve("asset");
    if (asset != nullptr) {
        std::printf("server: booted 'asset' from store (master %llu B, "
                    "%u split points) — no re-encode\n\n",
                    static_cast<unsigned long long>(asset->master_bytes()),
                    asset->max_parallelism() - 1);
    } else {
        std::printf("server: encoding %llu-byte asset once (max parallelism "
                    "2176)...\n",
                    static_cast<unsigned long long>(size));
        asset = server.store().encode_bytes("asset", data, 2176);
        std::printf("server: master %llu B (%u split points)%s\n\n",
                    static_cast<unsigned long long>(asset->master_bytes()),
                    asset->max_parallelism() - 1,
                    store_dir != nullptr ? ", persisted durably" : "");
    }

    struct Client {
        const char* name;
        u32 parallelism;
        u32 threads;
    };
    const Client clients[] = {
        {"phone (2 cores)", 2, 2},
        {"laptop (8 cores)", 8, 8},
        {"workstation (16 cores)", 16, 16},
        {"GPU box (2176 warps)", 2176, 0},
    };

    // First wave: every class is a cache miss (combine + serialize). Second
    // wave: the same classes come back and are served from the cache. Both
    // cross the protocol boundary as framed messages.
    for (int wave = 0; wave < 2; ++wave) {
        std::printf("wave %d (%s):\n", wave + 1, wave == 0 ? "cold" : "warm");
        for (const Client& c : clients) {
            auto res = roundtrip(server, ServeRequest{"asset", c.parallelism, {}});
            if (!res.ok()) {
                std::fprintf(stderr, "serve failed [%s]: %s\n",
                             error_name(res.code), res.detail.c_str());
                return 1;
            }

            // Client side: parse, rebuild model, decode with its own capacity.
            auto got = format::load_recoil_file(*res.wire);
            auto m = got.build_static_model();
            ThreadPool pool(c.threads == 0 ? std::thread::hardware_concurrency()
                                           : c.threads);
            simd::SimdRangeFn<u8> range;
            Stopwatch dec_sw;
            auto out = recoil_decode<Rans32, 32, u8>(std::span<const u16>(got.units),
                                                     got.metadata, m.tables(), &pool,
                                                     nullptr, range);
            const double dec_s = dec_sw.seconds();
            std::printf(
                "  %-24s wire %8llu B (saved %6llu B) | %s | "
                "decoded %.2f GB/s [%s]\n",
                c.name, static_cast<unsigned long long>(res.stats.wire_bytes),
                static_cast<unsigned long long>(asset->master_bytes() -
                                                res.stats.wire_bytes),
                res.stats.cache_hit ? "cache hit " : "combined  ",
                gbps(static_cast<double>(out.size()), dec_s),
                out == data ? "OK" : "MISMATCH");
            if (out != data) return 1;
        }
        std::printf("\n");
    }

    // Cold stampede: 24 identical cold requests through the async Session;
    // single-flight coalescing shares one combine's wire, the rest of the
    // burst hits the cache the leader populated.
    server.cache().clear();
    {
        const auto before = server.totals();
        Session session(server, {8});
        std::vector<std::shared_future<ServeResult>> futs;
        for (int i = 0; i < 24; ++i)
            futs.push_back(session.submit(ServeRequest{"asset", 16, {}}));
        session.wait_idle();
        for (auto& f : futs)
            if (!f.get().ok()) return 1;
        const auto t = server.totals();
        std::printf("cold stampede: 24 identical requests -> %llu coalesced + "
                    "%llu cache hits, %.1f MB recombination avoided\n\n",
                    static_cast<unsigned long long>(t.coalesced_requests -
                                                    before.coalesced_requests),
                    static_cast<unsigned long long>(t.cache_hits -
                                                    before.cache_hits),
                    static_cast<double>(t.bytes_saved - before.bytes_saved) / 1e6);
    }

    // Streamed serving (v2 framing): the same producer emits the wire
    // segment at a time — header frame, checksummed body frames, FIN with a
    // whole-wire FNV — so the server never materializes the response and
    // peak producer memory is bounded by the flow-control window, not the
    // asset. With --store this streams straight out of the mmapped master
    // persisted by a previous run (write -> restart -> stream).
    {
        StreamOptions sopt;
        sopt.max_frame_bytes = 256 * 1024;
        sopt.use_cache = false;  // the very-large-response regime
        auto stream = server.serve_stream(
            ServeRequest{"asset", 16, {}, kAcceptAll | kAcceptStreamed}, sopt);
        StreamReassembler client(sopt.max_frame_bytes);
        Stopwatch stream_sw;
        while (auto frame = stream.next_frame()) client.feed(*frame);
        const double stream_s = stream_sw.seconds();
        auto streamed = client.result();
        if (!streamed.ok()) {
            std::fprintf(stderr, "streamed serve failed [%s]: %s\n",
                         error_name(streamed.code), streamed.detail.c_str());
            return 1;
        }
        auto reference = roundtrip(server, ServeRequest{"asset", 16, {}});
        const bool exact = reference.ok() && *streamed.wire == *reference.wire;
        std::printf(
            "streamed serve: %llu frames, wire %llu B in %.2f ms; producer "
            "peak %llu B owned (%.3f%% of wire) [%s]\n\n",
            static_cast<unsigned long long>(stream.frames_emitted()),
            static_cast<unsigned long long>(streamed.stats.wire_bytes),
            stream_s * 1e3,
            static_cast<unsigned long long>(stream.peak_owned_bytes()),
            100.0 * static_cast<double>(stream.peak_owned_bytes()) /
                static_cast<double>(streamed.stats.wire_bytes),
            exact ? "bit-exact with v1" : "MISMATCH");
        if (!exact) return 1;
    }

    // Byte-range request: a client needs symbols [6 MB, 6 MB + 16 KB) only.
    const u64 lo = 6'000'000, hi = lo + 16'384;
    auto range_res = roundtrip(server, ServeRequest{"asset", 4, {{lo, hi}}});
    if (!range_res.ok()) {
        std::fprintf(stderr, "range serve failed [%s]: %s\n",
                     error_name(range_res.code), range_res.detail.c_str());
        return 1;
    }
    auto part = decode_range_wire(*range_res.wire);
    bool match = std::equal(part.begin(), part.end(), data.begin() + lo);
    std::printf("range [%llu, %llu): wire %llu B (%u covering splits, "
                "%.4f%% of master) [%s]\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(range_res.stats.wire_bytes),
                range_res.stats.splits_served,
                100.0 * static_cast<double>(range_res.stats.wire_bytes) /
                    static_cast<double>(asset->master_bytes()),
                match ? "OK" : "MISMATCH");
    if (!match) return 1;

    // Chunked asset (a 40-frame clip): ranges decompose into per-chunk
    // covering splits, so a slice spanning frame boundaries still works.
    const u64 frame_bytes = 50'000;
    auto clip = workload::gen_text(40 * frame_bytes, 77);
    if (server.store().resolve("clip") == nullptr) {
        stream::ChunkedEncoder enc({11, 32});
        for (u64 off = 0; off < clip.size(); off += frame_bytes)
            enc.add_chunk(std::span<const u8>(clip).subspan(off, frame_bytes));
        server.store().add_chunked("clip", enc.finish());
    }

    const u64 clip_lo = 7 * frame_bytes - 1000, clip_hi = 9 * frame_bytes + 1000;
    auto clip_res = roundtrip(server, ServeRequest{"clip", 1, {{clip_lo, clip_hi}}});
    if (!clip_res.ok()) {
        std::fprintf(stderr, "chunked range failed [%s]: %s\n",
                     error_name(clip_res.code), clip_res.detail.c_str());
        return 1;
    }
    auto clip_part = decode_range_wire(*clip_res.wire);
    auto clip_info = inspect_range_wire(*clip_res.wire);
    match = std::equal(clip_part.begin(), clip_part.end(), clip.begin() + clip_lo);
    std::printf("chunked range [%llu, %llu): %zu segments, wire %llu B [%s]\n",
                static_cast<unsigned long long>(clip_lo),
                static_cast<unsigned long long>(clip_hi),
                clip_info.segments.size(),
                static_cast<unsigned long long>(clip_res.stats.wire_bytes),
                match ? "OK" : "MISMATCH");
    if (!match) return 1;

    // Typed errors cross the boundary too: the client sees a code, never a
    // crash or a stringly-typed guess.
    auto bad = roundtrip(server, ServeRequest{"asset", 1, {{size, size + 5}}});
    std::printf("invalid range -> typed error [%s]: %s\n\n",
                error_name(bad.code), bad.detail.c_str());
    if (bad.code != ErrorCode::invalid_range) return 1;

    // Resource governance under a global byte budget: pin the hot asset,
    // then serve a tail of cold assets. Each tail serve grows resident
    // bytes (write-through + demand-loadable); once cache + store exceed
    // the budget the governor unloads the coldest unpinned assets — the
    // pinned hot asset must ride out the pressure in memory.
    if (mem_budget != 0 && store_dir != nullptr) {
        server.governor().pin("asset");
        const int kTail = 6;
        for (int i = 0; i < kTail; ++i) {
            const std::string name = "tail/" + std::to_string(i);
            if (server.store().resolve(name) == nullptr) {
                auto cold = workload::gen_text(1'000'000, 100 + i);
                server.store().encode_bytes(name, cold, 32);
            }
            if (!roundtrip(server, ServeRequest{name, 4, {}}).ok()) return 1;
        }
        const auto g = server.governor().stats();
        std::printf(
            "governor: budget %llu B, resident %llu B + cache %llu B; "
            "%llu pressure passes, %llu unloads (%llu B), %llu cache "
            "shrinks, skipped %llu pinned / %llu in-use\n",
            static_cast<unsigned long long>(g.budget_bytes),
            static_cast<unsigned long long>(g.resident_bytes),
            static_cast<unsigned long long>(g.cache_bytes),
            static_cast<unsigned long long>(g.enforcements),
            static_cast<unsigned long long>(g.unloads),
            static_cast<unsigned long long>(g.bytes_unloaded),
            static_cast<unsigned long long>(g.cache_shrinks),
            static_cast<unsigned long long>(g.skipped_pinned),
            static_cast<unsigned long long>(g.skipped_in_use));
        if (server.store().find("asset") == nullptr) {
            std::fprintf(stderr, "governor unloaded a pinned asset\n");
            return 1;
        }
        // Unloaded tail assets are pressure relief, not eviction: the next
        // request demand-loads the same generation and bytes.
        auto back = roundtrip(server, ServeRequest{"tail/0", 4, {}});
        if (!back.ok()) {
            std::fprintf(stderr, "reload after governor unload failed: %s\n",
                         back.detail.c_str());
            return 1;
        }
        std::printf("governor: pinned 'asset' stayed resident; unloaded "
                    "tails demand-load back bit-identically\n\n");
    }

    const auto t = server.totals();
    const auto c = server.cache().stats();
    std::printf("server totals: %llu requests (%llu range), %llu cache hits, "
                "%llu coalesced, %.1f MB saved, %llu failures; cache [%s] "
                "holds %llu entries / %llu B (%llu evictions, %llu admission "
                "rejections)\n",
                static_cast<unsigned long long>(t.requests),
                static_cast<unsigned long long>(t.range_requests),
                static_cast<unsigned long long>(t.cache_hits),
                static_cast<unsigned long long>(t.coalesced_requests),
                static_cast<double>(t.bytes_saved) / 1e6,
                static_cast<unsigned long long>(t.failures),
                server.cache().policy_name().c_str(),
                static_cast<unsigned long long>(c.entries),
                static_cast<unsigned long long>(c.bytes),
                static_cast<unsigned long long>(c.evictions),
                static_cast<unsigned long long>(c.admission_rejected));
    if (store_dir != nullptr)
        std::printf("store: %zu assets persisted in %s — rerun with the same "
                    "--store to serve them without re-encoding\n",
                    server.store().backing()->size(), store_dir);

    if (metrics_json != nullptr) {
        // Fetch the snapshot over the wire — the same framed protocol a
        // remote scraper would speak — instead of reading the registry
        // in-process, so the dump also proves the exposition surface.
        auto m = roundtrip(server, ServeRequest{kMetricsAssetJson, 1, {},
                                               kAcceptAll | kAcceptMetrics});
        if (!m.ok() || m.payload != PayloadKind::metrics) {
            std::fprintf(stderr, "metrics introspection failed [%s]: %s\n",
                         error_name(m.code), m.detail.c_str());
            return 1;
        }
        if (!dump_file(metrics_json,
                       std::string(m.wire->begin(), m.wire->end())))
            return 1;
        std::printf("metrics: %llu B JSON snapshot (fetched via \"%s\" "
                    "introspection) written to %s\n",
                    static_cast<unsigned long long>(m.wire->size()),
                    kMetricsAssetJson, metrics_json);
    }
    if (trace_log != nullptr) {
        if (!dump_file(trace_log, server.slow_log().to_json())) return 1;
        std::printf("traces: slow-request log (%llu request(s) recorded) "
                    "written to %s\n",
                    static_cast<unsigned long long>(server.slow_log().recorded()),
                    trace_log);
    }
    return 0;
}
