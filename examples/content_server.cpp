// Content-delivery scenario (§1, §3.3) on the serve subsystem: a server
// encodes a 10 MB asset once with 2176-way split metadata (enough for a
// high-end GPU) and keeps it in an AssetStore. Clients attach their parallel
// capacity to the request; the ContentServer adapts the metadata — never the
// bitstream — per client, the LRU cache makes repeat traffic for a popular
// client class nearly free, and byte-range requests ship only the splits
// covering the requested symbols.

#include <algorithm>
#include <cstdio>

#include "core/recoil_decoder.hpp"
#include "serve/server.hpp"
#include "simd/dispatch.hpp"
#include "util/stopwatch.hpp"
#include "workload/datasets.hpp"

using namespace recoil;
using namespace recoil::serve;

int main() {
    const u64 size = 10'000'000;
    std::printf("server: encoding %llu-byte asset once (max parallelism 2176)...\n",
                static_cast<unsigned long long>(size));
    auto data = workload::gen_text(size, 2024);

    ContentServer server;
    auto asset = server.store().encode_bytes("asset", data, 2176);
    std::printf("server: master %llu B (%u split points)\n\n",
                static_cast<unsigned long long>(asset->master_bytes),
                asset->file()->metadata.num_splits() - 1);

    struct Client {
        const char* name;
        u32 parallelism;
        u32 threads;
    };
    const Client clients[] = {
        {"phone (2 cores)", 2, 2},
        {"laptop (8 cores)", 8, 8},
        {"workstation (16 cores)", 16, 16},
        {"GPU box (2176 warps)", 2176, 0},
    };

    // First wave: every class is a cache miss (combine + serialize). Second
    // wave: the same classes come back and are served from the cache.
    for (int wave = 0; wave < 2; ++wave) {
        std::printf("wave %d (%s):\n", wave + 1, wave == 0 ? "cold" : "warm");
        for (const Client& c : clients) {
            auto res = server.serve(ServeRequest{"asset", c.parallelism, {}});
            if (!res.ok) {
                std::fprintf(stderr, "serve failed: %s\n", res.error.c_str());
                return 1;
            }

            // Client side: parse, rebuild model, decode with its own capacity.
            auto got = format::load_recoil_file(*res.wire);
            auto m = got.build_static_model();
            ThreadPool pool(c.threads == 0 ? std::thread::hardware_concurrency()
                                           : c.threads);
            simd::SimdRangeFn<u8> range;
            Stopwatch dec_sw;
            auto out = recoil_decode<Rans32, 32, u8>(std::span<const u16>(got.units),
                                                     got.metadata, m.tables(), &pool,
                                                     nullptr, range);
            const double dec_s = dec_sw.seconds();
            std::printf(
                "  %-24s wire %8llu B (saved %6llu B) | %s in %8.3f ms | "
                "decoded %.2f GB/s [%s]\n",
                c.name, static_cast<unsigned long long>(res.stats.wire_bytes),
                static_cast<unsigned long long>(asset->master_bytes -
                                                res.stats.wire_bytes),
                res.stats.cache_hit ? "cache hit " : "combined  ",
                res.stats.total_seconds * 1e3,
                gbps(static_cast<double>(out.size()), dec_s),
                out == data ? "OK" : "MISMATCH");
            if (out != data) return 1;
        }
        std::printf("\n");
    }

    // Byte-range request: a client needs symbols [6 MB, 6 MB + 16 KB) only.
    const u64 lo = 6'000'000, hi = lo + 16'384;
    auto range_res = server.serve(ServeRequest{"asset", 4, {{lo, hi}}});
    if (!range_res.ok) {
        std::fprintf(stderr, "range serve failed: %s\n", range_res.error.c_str());
        return 1;
    }
    auto part = decode_range_wire(*range_res.wire);
    bool match = std::equal(part.begin(), part.end(), data.begin() + lo);
    std::printf("range [%llu, %llu): wire %llu B (%u covering splits, "
                "%.4f%% of master) [%s]\n\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(range_res.stats.wire_bytes),
                range_res.stats.splits_served,
                100.0 * static_cast<double>(range_res.stats.wire_bytes) /
                    static_cast<double>(asset->master_bytes),
                match ? "OK" : "MISMATCH");
    if (!match) return 1;

    const auto t = server.totals();
    const auto c = server.cache().stats();
    std::printf("server totals: %llu requests, %llu cache hits, %llu wire B; "
                "cache holds %llu entries / %llu B\n",
                static_cast<unsigned long long>(t.requests),
                static_cast<unsigned long long>(t.cache_hits),
                static_cast<unsigned long long>(t.wire_bytes),
                static_cast<unsigned long long>(c.entries),
                static_cast<unsigned long long>(c.bytes));
    return 0;
}
