// Learned-image-codec pipeline (§5.1 div2k experiments): 16-bit latent
// residuals with per-symbol Gaussian models selected by a hyperprior-like
// scale field, encoded once and decoded on the massively-parallel GPU
// substrate. Demonstrates why Recoil metadata records *symbol indices*: the
// adaptive model is keyed by position (§3.1 advantage (3)).

#include <cstdio>

#include "core/recoil_encoder.hpp"
#include "gpusim/device.hpp"
#include "util/stopwatch.hpp"
#include "workload/datasets.hpp"

using namespace recoil;

int main() {
    // "Transform" a 4M-latent image (stand-in for mbt2018-mean output).
    auto image = workload::gen_latents("demo_image", 4'000'000, 2.2, 7);
    auto models = image.build_models(/*prob_bits=*/16);
    std::printf("latents: %zu x 16-bit symbols, %u Gaussian scale bins\n",
                image.symbols.size(), models.model_count());

    auto encoded = recoil_encode<Rans32, 32>(std::span<const u16>(image.symbols),
                                             models, /*max_splits=*/2176);
    const double raw = static_cast<double>(image.symbols.size()) * 2;
    const double compressed = static_cast<double>(encoded.bitstream.byte_size());
    std::printf("compressed %.2f MB -> %.2f MB (%.1f%%), %u split points\n",
                raw / 1e6, compressed / 1e6, 100.0 * compressed / raw,
                encoded.metadata.num_splits() - 1);

    gpusim::GpuSimDevice dev;
    gpusim::LaunchStats stats;
    Stopwatch sw;
    auto decoded = dev.launch_recoil<u16>(std::span<const u16>(encoded.bitstream.units),
                                          encoded.metadata, models.tables(), &stats);
    const double secs = sw.seconds();

    std::printf("gpu-sim decode: %.2f GB/s | %llu warp tasks, %llu blocks, "
                "occupancy %.2f\n",
                gbps(raw, secs), static_cast<unsigned long long>(stats.warp_tasks),
                static_cast<unsigned long long>(stats.blocks), stats.occupancy);
    std::printf("sync overhead: %llu discarded + %llu cross-boundary symbols "
                "(%.3f%% of stream)\n",
                static_cast<unsigned long long>(stats.decode.sync_symbols),
                static_cast<unsigned long long>(stats.decode.cross_symbols),
                100.0 * static_cast<double>(stats.decode.sync_symbols +
                                            stats.decode.cross_symbols) /
                    static_cast<double>(image.symbols.size()));

    const bool ok = decoded == image.symbols;
    std::printf("round trip: %s\n", ok ? "OK" : "MISMATCH");
    return ok ? 0 : 1;
}
