// Command-line client for recoil_served, built on src/net/client.hpp.
//
//   recoil_client --port N [--host H] ASSET            # v1 fetch, stats
//   recoil_client --port N --stream ASSET              # v2 streamed fetch
//   recoil_client --port N --range LO:HI ASSET         # byte-range fetch
//   recoil_client --port N --verify ASSET              # v1 vs v2 bit-exact
//   recoil_client --port N --metrics                   # "!metrics" scrape
//   recoil_client --port N --metrics-json out.json     # JSON snapshot
//
// --verify exchanges the same request over both framings and exits
// nonzero unless the reassembled v2 wire is byte-identical to the v1
// response — the CI smoke's end-to-end check. Connects retry for a few
// seconds so a just-forked daemon has time to start listening.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "net/client.hpp"

using namespace recoil;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: recoil_client --port N [--host H] [--parallelism P]\n"
                 "                     [--range LO:HI] [--stream] [--verify]\n"
                 "                     [--out PATH] [--metrics]\n"
                 "                     [--metrics-json PATH] [ASSET]\n");
    return 2;
}

/// Retrying connect: a daemon forked moments ago may not be listening
/// yet (the CI smoke starts both in one shell line).
net::Client connect_retrying(net::ClientOptions opt,
                             std::chrono::milliseconds budget) {
    const auto give_up = std::chrono::steady_clock::now() + budget;
    for (;;) {
        try {
            return net::Client(opt);
        } catch (const net::NetError&) {
            if (std::chrono::steady_clock::now() >= give_up) throw;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    }
}

bool dump_file(const char* path, const std::string& body) {
    std::FILE* f = std::fopen(path, "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return false;
    }
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    return ok;
}

}  // namespace

int main(int argc, char** argv) {
    net::ClientOptions copt;
    const char* asset = nullptr;
    const char* out_path = nullptr;
    const char* metrics_json = nullptr;
    bool want_metrics = false;
    bool stream = false;
    bool verify = false;
    u32 parallelism = 8;
    std::optional<std::pair<u64, u64>> range;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--host") == 0) {
            copt.host = need("--host");
        } else if (std::strcmp(argv[i], "--port") == 0) {
            copt.port = static_cast<u16>(std::atoi(need("--port")));
        } else if (std::strcmp(argv[i], "--parallelism") == 0) {
            parallelism = static_cast<u32>(std::atoi(need("--parallelism")));
        } else if (std::strcmp(argv[i], "--range") == 0) {
            const char* spec = need("--range");
            char* colon = nullptr;
            const u64 lo = std::strtoull(spec, &colon, 10);
            if (colon == nullptr || *colon != ':') {
                std::fprintf(stderr, "--range wants LO:HI\n");
                return 2;
            }
            const u64 hi = std::strtoull(colon + 1, nullptr, 10);
            range = {{lo, hi}};
        } else if (std::strcmp(argv[i], "--stream") == 0) {
            stream = true;
        } else if (std::strcmp(argv[i], "--verify") == 0) {
            verify = true;
        } else if (std::strcmp(argv[i], "--out") == 0) {
            out_path = need("--out");
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            want_metrics = true;
        } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
            metrics_json = need("--metrics-json");
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        } else {
            asset = argv[i];
        }
    }
    if (copt.port == 0) {
        std::fprintf(stderr, "--port is required\n");
        return usage();
    }
    if (asset == nullptr && !want_metrics && metrics_json == nullptr)
        return usage();

    try {
        net::Client client =
            connect_retrying(copt, std::chrono::milliseconds(10'000));

        if (asset != nullptr) {
            serve::ServeRequest req{asset, parallelism, range,
                                    serve::kAcceptAll |
                                        serve::kAcceptMetrics};
            serve::ServeResult v1;
            if (!stream || verify) v1 = client.request(req);
            serve::ServeResult v2;
            u64 frames = 0;
            if (stream || verify)
                v2 = client.request_streamed(
                    req, [&](std::span<const u8>) { ++frames; });
            const serve::ServeResult& res = stream ? v2 : v1;
            if (!res.ok()) {
                std::fprintf(stderr, "serve failed [%s]: %s\n",
                             serve::error_name(res.code), res.detail.c_str());
                return 1;
            }
            if (verify) {
                const bool exact = v1.ok() && v2.ok() && v1.wire && v2.wire &&
                                   *v1.wire == *v2.wire;
                std::printf("verify %s: v1 %zu B, v2 %llu frames -> %s\n",
                            asset, v1.wire ? v1.wire->size() : 0,
                            static_cast<unsigned long long>(frames),
                            exact ? "bit-exact" : "MISMATCH");
                if (!exact) return 1;
            } else {
                std::printf("%s: %llu wire bytes [%s]%s%s\n", asset,
                            static_cast<unsigned long long>(
                                res.stats.wire_bytes),
                            serve::payload_name(res.payload),
                            res.stats.cache_hit ? ", cache hit" : "",
                            stream ? ", streamed" : "");
            }
            if (out_path != nullptr && res.wire &&
                !dump_file(out_path, std::string(res.wire->begin(),
                                                 res.wire->end())))
                return 1;
        }

        if (want_metrics) std::fputs(client.fetch_metrics(false).c_str(),
                                     stdout);
        if (metrics_json != nullptr &&
            !dump_file(metrics_json, client.fetch_metrics(true)))
            return 1;
    } catch (const Error& e) {
        std::fprintf(stderr, "recoil_client: %s\n", e.what());
        return 1;
    }
    return 0;
}
