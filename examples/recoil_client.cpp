// Command-line client for recoil_served, built on src/net/client.hpp.
//
//   recoil_client --port N [--host H] ASSET            # v1 fetch, stats
//   recoil_client --port N --stream ASSET              # v2 streamed fetch
//   recoil_client --port N --range LO:HI ASSET         # byte-range fetch
//   recoil_client --port N --verify ASSET              # v1 vs v2 bit-exact
//   recoil_client --port N --metrics                   # "!metrics" scrape
//   recoil_client --port N --metrics-json out.json     # JSON snapshot
//   recoil_client --port N --bench-tenants R [ASSET]   # tenant-mix smoke
//
// --verify exchanges the same request over both framings and exits
// nonzero unless the reassembled v2 wire is byte-identical to the v1
// response — the CI smoke's end-to-end check. Connects retry for a few
// seconds so a just-forked daemon has time to start listening.
//
// --bench-tenants R replays a seed-deterministic multi-tenant open-loop
// plan (workload::traffic_plan: 3 tenants, Zipf keys, Poisson arrivals, a
// flash crowd and a unique scan window) as R paced range requests against
// ASSET (default "demo", which --seed-demo daemons always carry), then
// prints client-observed p50/p99/p999 — the smoke-test cousin of
// bench_serve's full shard-scaling harness.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "net/client.hpp"
#include "workload/traffic.hpp"

using namespace recoil;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: recoil_client --port N [--host H] [--parallelism P]\n"
                 "                     [--range LO:HI] [--stream] [--verify]\n"
                 "                     [--out PATH] [--metrics]\n"
                 "                     [--metrics-json PATH]\n"
                 "                     [--bench-tenants REQUESTS] [ASSET]\n");
    return 2;
}

/// Retrying connect: a daemon forked moments ago may not be listening
/// yet (the CI smoke starts both in one shell line).
net::Client connect_retrying(net::ClientOptions opt,
                             std::chrono::milliseconds budget) {
    const auto give_up = std::chrono::steady_clock::now() + budget;
    for (;;) {
        try {
            return net::Client(opt);
        } catch (const net::NetError&) {
            if (std::chrono::steady_clock::now() >= give_up) throw;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    }
}

/// Replay a small deterministic tenant mix as paced range requests over
/// one connection. Every (tenant, key) pair maps to a stable byte range
/// of `asset`; scan arrivals derive a never-repeating range from their
/// plan index, so admission policies see genuine one-hit wonders.
int bench_tenants(net::Client& client, const char* asset,
                  std::size_t requests) {
    workload::TrafficOptions topt;
    topt.tenants = {{"alpha", 48, 1.1, 3.0},
                    {"bravo", 32, 0.9, 2.0},
                    {"carol", 16, 1.3, 1.0}};
    topt.requests = requests;
    topt.offered_rps = 2000.0;
    topt.arrivals = workload::ArrivalProcess::poisson;
    topt.phases = {{workload::PhaseSpec::Kind::flash_crowd, 0.30, 0.45, 0,
                    0.6},
                   {workload::PhaseSpec::Kind::unique_scan, 0.60, 0.75, 0,
                    0.5}};
    topt.seed = 7;
    const auto plan = workload::traffic_plan(topt);

    constexpr u64 kAssetBytes = 1'000'000;  // --seed-demo corpus size
    constexpr u64 kChunk = 4096;
    std::vector<double> micros;
    micros.reserve(plan.size());
    u64 errors = 0;
    const auto start = std::chrono::steady_clock::now();
    for (const auto& a : plan) {
        const auto due = start + std::chrono::duration_cast<
                                     std::chrono::steady_clock::duration>(
                                     std::chrono::duration<double>(
                                         a.at_seconds));
        if (due > std::chrono::steady_clock::now())
            std::this_thread::sleep_until(due);
        u64 lo;
        if (a.scan) {
            lo = (static_cast<u64>(a.index) * kChunk) %
                 (kAssetBytes - kChunk);
        } else {
            const u64 mix = (static_cast<u64>(a.tenant) << 32 | a.key) *
                            u64{0x9E3779B97F4A7C15};
            lo = mix % (kAssetBytes - kChunk);
        }
        serve::ServeRequest req{asset, 4, {{lo, lo + kChunk}},
                                serve::kAcceptAll};
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = client.request(req);
        const auto t1 = std::chrono::steady_clock::now();
        if (!res.ok()) {
            ++errors;
            continue;
        }
        micros.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    if (micros.empty()) {
        std::fprintf(stderr, "bench-tenants: all %llu requests failed\n",
                     static_cast<unsigned long long>(errors));
        return 1;
    }
    std::sort(micros.begin(), micros.end());
    auto pct = [&](double p) {
        const auto idx = static_cast<std::size_t>(
            p * static_cast<double>(micros.size() - 1));
        return micros[idx];
    };
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    std::printf("bench-tenants: %zu ok, %llu errors, %.0f req/s | "
                "p50 %.0f us, p99 %.0f us, p999 %.0f us\n",
                micros.size(), static_cast<unsigned long long>(errors),
                static_cast<double>(micros.size()) / elapsed, pct(0.50),
                pct(0.99), pct(0.999));
    return errors == 0 ? 0 : 1;
}

bool dump_file(const char* path, const std::string& body) {
    std::FILE* f = std::fopen(path, "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return false;
    }
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    return ok;
}

}  // namespace

int main(int argc, char** argv) {
    net::ClientOptions copt;
    const char* asset = nullptr;
    const char* out_path = nullptr;
    const char* metrics_json = nullptr;
    bool want_metrics = false;
    bool stream = false;
    bool verify = false;
    std::size_t bench_requests = 0;
    u32 parallelism = 8;
    std::optional<std::pair<u64, u64>> range;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--host") == 0) {
            copt.host = need("--host");
        } else if (std::strcmp(argv[i], "--port") == 0) {
            copt.port = static_cast<u16>(std::atoi(need("--port")));
        } else if (std::strcmp(argv[i], "--parallelism") == 0) {
            parallelism = static_cast<u32>(std::atoi(need("--parallelism")));
        } else if (std::strcmp(argv[i], "--range") == 0) {
            const char* spec = need("--range");
            char* colon = nullptr;
            const u64 lo = std::strtoull(spec, &colon, 10);
            if (colon == nullptr || *colon != ':') {
                std::fprintf(stderr, "--range wants LO:HI\n");
                return 2;
            }
            const u64 hi = std::strtoull(colon + 1, nullptr, 10);
            range = {{lo, hi}};
        } else if (std::strcmp(argv[i], "--stream") == 0) {
            stream = true;
        } else if (std::strcmp(argv[i], "--verify") == 0) {
            verify = true;
        } else if (std::strcmp(argv[i], "--out") == 0) {
            out_path = need("--out");
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            want_metrics = true;
        } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
            metrics_json = need("--metrics-json");
        } else if (std::strcmp(argv[i], "--bench-tenants") == 0) {
            bench_requests = static_cast<std::size_t>(
                std::strtoull(need("--bench-tenants"), nullptr, 10));
            if (bench_requests == 0) {
                std::fprintf(stderr,
                             "--bench-tenants wants a request count\n");
                return 2;
            }
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        } else {
            asset = argv[i];
        }
    }
    if (copt.port == 0) {
        std::fprintf(stderr, "--port is required\n");
        return usage();
    }
    if (asset == nullptr && !want_metrics && metrics_json == nullptr &&
        bench_requests == 0)
        return usage();

    try {
        net::Client client =
            connect_retrying(copt, std::chrono::milliseconds(10'000));

        if (bench_requests > 0)
            return bench_tenants(client, asset != nullptr ? asset : "demo",
                                 bench_requests);

        if (asset != nullptr) {
            serve::ServeRequest req{asset, parallelism, range,
                                    serve::kAcceptAll |
                                        serve::kAcceptMetrics};
            serve::ServeResult v1;
            if (!stream || verify) v1 = client.request(req);
            serve::ServeResult v2;
            u64 frames = 0;
            if (stream || verify)
                v2 = client.request_streamed(
                    req, [&](std::span<const u8>) { ++frames; });
            const serve::ServeResult& res = stream ? v2 : v1;
            if (!res.ok()) {
                std::fprintf(stderr, "serve failed [%s]: %s\n",
                             serve::error_name(res.code), res.detail.c_str());
                return 1;
            }
            if (verify) {
                const bool exact = v1.ok() && v2.ok() && v1.wire && v2.wire &&
                                   *v1.wire == *v2.wire;
                std::printf("verify %s: v1 %zu B, v2 %llu frames -> %s\n",
                            asset, v1.wire ? v1.wire->size() : 0,
                            static_cast<unsigned long long>(frames),
                            exact ? "bit-exact" : "MISMATCH");
                if (!exact) return 1;
            } else {
                std::printf("%s: %llu wire bytes [%s]%s%s\n", asset,
                            static_cast<unsigned long long>(
                                res.stats.wire_bytes),
                            serve::payload_name(res.payload),
                            res.stats.cache_hit ? ", cache hit" : "",
                            stream ? ", streamed" : "");
            }
            if (out_path != nullptr && res.wire &&
                !dump_file(out_path, std::string(res.wire->begin(),
                                                 res.wire->end())))
                return 1;
        }

        if (want_metrics) std::fputs(client.fetch_metrics(false).c_str(),
                                     stdout);
        if (metrics_json != nullptr &&
            !dump_file(metrics_json, client.fetch_metrics(true)))
            return 1;
    } catch (const Error& e) {
        std::fprintf(stderr, "recoil_client: %s\n", e.what());
        return 1;
    }
    return 0;
}
