// Walkthrough of the paper's worked example (Figures 4-6, Tables 1-2) on a
// real 4-lane encode: shows the recorded renormalization events, a backward
// scan, the per-split metadata with its expectation-difference encoding, and
// the three decode phases with their symbol ranges.

#include <cstdio>

#include "core/metadata_codec.hpp"
#include "core/recoil_encoder.hpp"
#include "rans/symbol_stats.hpp"
#include "util/xoshiro.hpp"

using namespace recoil;

int main() {
    // Small 4-lane setup so every number is inspectable (the experiments use
    // 32 lanes; the mechanics are identical).
    constexpr u32 kL = 4;
    Xoshiro256 rng(6);
    std::vector<u8> syms(4000);
    for (auto& s : syms) s = static_cast<u8>(rng.below(64));
    StaticModel model(histogram(syms), 11);

    RenormEventList events;
    auto bs = interleaved_encode<Rans32, kL>(std::span<const u8>(syms), model, &events);
    std::printf("encoded %zu symbols -> %zu units; %zu renormalization events\n\n",
                syms.size(), bs.units.size(), events.size());

    std::printf("first events (candidates for split points):\n");
    std::printf("%8s %8s %8s %10s\n", "sym idx", "lane", "offset", "state");
    for (std::size_t i = 0; i < 8 && i < events.size(); ++i) {
        const auto& e = events[i];
        std::printf("%8llu %8u %8llu     0x%04x  (< L = 2^16: Lemma 3.1)\n",
                    static_cast<unsigned long long>(e.sym_index), e.lane,
                    static_cast<unsigned long long>(e.offset), e.state);
    }

    auto splits = plan_splits(events, syms.size(), 4, kL);
    RecoilMetadata meta;
    meta.lanes = kL;
    meta.state_store_bits = 16;
    meta.num_symbols = syms.size();
    meta.num_units = bs.units.size();
    meta.final_states.assign(bs.final_states.begin(), bs.final_states.end());
    meta.splits = splits;

    std::printf("\nsplit points (paper Table 2 layout):\n");
    for (std::size_t i = 0; i < splits.size(); ++i) {
        const auto& sp = splits[i];
        std::printf("split %zu: bitstream offset %llu, sync section [%llu..%llu] "
                    "(%llu symbols)\n",
                    i + 1, static_cast<unsigned long long>(sp.offset),
                    static_cast<unsigned long long>(sp.min_index),
                    static_cast<unsigned long long>(sp.anchor_index),
                    static_cast<unsigned long long>(sp.sync_symbols()));
        const u64 anchor_group = sp.anchor_index / kL;
        std::printf("  %-22s", "intermediate states:");
        for (u32 l = 0; l < kL; ++l) std::printf(" 0x%04x", sp.states[l]);
        std::printf("\n  %-22s", "symbol indices:");
        for (u32 l = 0; l < kL; ++l)
            std::printf(" %6llu", static_cast<unsigned long long>(sp.indices[l]));
        std::printf("\n  %-22s", "group-id differences:");
        for (u32 l = 0; l < kL; ++l)
            std::printf(" %6lld",
                        static_cast<long long>(anchor_group - sp.indices[l] / kL));
        std::printf("   (anchor group %llu)\n",
                    static_cast<unsigned long long>(anchor_group));
    }

    auto bytes = serialize_metadata(meta);
    std::printf("\nserialized metadata: %zu bytes total (%.1f bytes/split beyond "
                "header+final states)\n",
                bytes.size(),
                splits.empty()
                    ? 0.0
                    : (static_cast<double>(bytes.size()) - 32 - kL * 4) /
                          static_cast<double>(splits.size()));

    std::printf("\ndecode phases per thread (paper Fig. 6):\n");
    i64 prev_anchor = -1, prev_min = -1;
    for (u32 k = 0; k < meta.num_splits(); ++k) {
        const bool last = k == meta.num_splits() - 1;
        const i64 anchor = last ? static_cast<i64>(syms.size()) - 1
                                : static_cast<i64>(splits[k].anchor_index);
        const i64 mn = last ? anchor + 1 : static_cast<i64>(splits[k].min_index);
        std::printf("thread %u:", k);
        if (!last) std::printf(" sync [%lld..%lld] (discarded);", mn, anchor);
        std::printf(" decode [%lld..%lld];", prev_anchor + 1,
                    last ? anchor : mn - 1);
        if (k > 0) std::printf(" cross-boundary [%lld..%lld]", prev_min, prev_anchor);
        std::printf("\n");
        prev_anchor = anchor;
        prev_min = mn;
    }
    return 0;
}
