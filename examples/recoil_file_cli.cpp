// Minimal file compressor built on the container format:
//   recoil_file_cli c <input> <output.rcf> [max_splits]   compress
//   recoil_file_cli d <input.rcf> <output> [threads]      decompress
//   recoil_file_cli serve <input.rcf> <output.rcf> <M>    combine splits
// With no arguments, runs a self-demo on a temporary buffer.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/recoil_decoder.hpp"
#include "format/container.hpp"
#include "rans/symbol_stats.hpp"
#include "simd/dispatch.hpp"
#include "util/thread_pool.hpp"
#include "workload/datasets.hpp"

using namespace recoil;

namespace {

std::vector<u8> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) raise("cannot open " + path);
    return std::vector<u8>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const u8> bytes) {
    std::ofstream out(path, std::ios::binary);
    if (!out) raise("cannot open " + path);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

std::vector<u8> compress(std::span<const u8> data, u32 max_splits) {
    StaticModel model(histogram(data), 11);
    auto enc = recoil_encode<Rans32, 32>(data, model, max_splits);
    return format::save_recoil_file(format::make_recoil_file(enc, model, 1));
}

std::vector<u8> decompress(std::span<const u8> bytes, unsigned threads) {
    auto f = format::load_recoil_file(bytes);
    auto model = f.build_static_model();
    ThreadPool pool(threads);
    simd::SimdRangeFn<u8> range;
    return recoil_decode<Rans32, 32, u8>(std::span<const u16>(f.units), f.metadata,
                                         model.tables(), &pool, nullptr, range);
}

int self_demo() {
    std::printf("self-demo: compress/serve/decompress a 2 MB buffer\n");
    auto data = workload::gen_text(2 << 20, 99);
    auto rcf = compress(data, 256);
    std::printf("compressed %zu -> %zu bytes (%.1f%%)\n", data.size(), rcf.size(),
                100.0 * static_cast<double>(rcf.size()) / data.size());
    auto f = format::load_recoil_file(rcf);
    auto served = format::serve_combined(f, 4);
    std::printf("served 4-way metadata: %zu bytes on the wire\n", served.size());
    auto out = decompress(served, 4);
    std::printf("round trip: %s\n", out == data ? "OK" : "MISMATCH");
    return out == data ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc < 2) return self_demo();
        const std::string mode = argv[1];
        if (mode == "c" && argc >= 4) {
            const u32 splits = argc > 4 ? static_cast<u32>(std::atoi(argv[4])) : 1024;
            auto data = read_file(argv[2]);
            auto rcf = compress(data, splits);
            write_file(argv[3], rcf);
            std::printf("%zu -> %zu bytes (%u max splits)\n", data.size(), rcf.size(),
                        splits);
            return 0;
        }
        if (mode == "d" && argc >= 4) {
            const unsigned threads =
                argc > 4 ? static_cast<unsigned>(std::atoi(argv[4]))
                         : std::thread::hardware_concurrency();
            auto rcf = read_file(argv[2]);
            auto data = decompress(rcf, threads);
            write_file(argv[3], data);
            std::printf("%zu -> %zu bytes (%u threads)\n", rcf.size(), data.size(),
                        threads);
            return 0;
        }
        if (mode == "serve" && argc >= 5) {
            auto f = format::load_recoil_file(read_file(argv[2]));
            auto served = format::serve_combined(f, static_cast<u32>(std::atoi(argv[4])));
            write_file(argv[3], served);
            std::printf("served %s with %s splits: %zu bytes\n", argv[2], argv[4],
                        served.size());
            return 0;
        }
        std::fprintf(stderr,
                     "usage: %s c <in> <out.rcf> [max_splits] | d <in.rcf> <out> "
                     "[threads] | serve <in.rcf> <out.rcf> <M>\n",
                     argv[0]);
        return 2;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
