// Differential tests: every SIMD backend must produce bit-identical output
// and identical cursor/lane state to the scalar per-symbol reference, across
// models (packed LUT, wide LUT, adaptive), symbol widths and alignments.

#include <gtest/gtest.h>

#include <iostream>

#include "conventional/conventional.hpp"
#include "core/recoil_decoder.hpp"
#include "core/recoil_encoder.hpp"
#include "rans/indexed_model.hpp"
#include "simd/dispatch.hpp"
#include "test_util.hpp"

namespace recoil {
namespace {

using simd::Backend;

std::vector<Backend> available_backends() {
    std::vector<Backend> v{Backend::Scalar};
    if (simd::clamp_backend(Backend::Avx2) == Backend::Avx2) v.push_back(Backend::Avx2);
    if (simd::clamp_backend(Backend::Avx512) == Backend::Avx512)
        v.push_back(Backend::Avx512);
    return v;
}

/// Decode a full stream through the SimdRangeFn at an arbitrary (hi, lo)
/// split pattern and compare with serial reference.
template <typename TSym, typename Model>
void expect_simd_matches(std::span<const TSym> syms, const Model& m) {
    auto enc = recoil_encode<Rans32, 32>(syms, m, 24);
    for (Backend b : available_backends()) {
        simd::SimdRangeFn<TSym> range{b};
        auto dec = recoil_decode<Rans32, 32, TSym>(
            std::span<const u16>(enc.bitstream.units), enc.metadata, m.tables(),
            nullptr, nullptr, range);
        ASSERT_EQ(dec.size(), syms.size());
        for (std::size_t i = 0; i < syms.size(); ++i) {
            ASSERT_EQ(dec[i], syms[i])
                << "backend " << simd::backend_name(b) << " at " << i;
        }
    }
}

TEST(Simd, BackendsAvailableOnThisHost) {
    // Informational: the suite passes regardless of the host's SIMD level,
    // but the log records which backends were actually exercised.
    for (Backend b : available_backends()) {
        std::cout << "available backend: " << simd::backend_name(b) << "\n";
    }
    SUCCEED();
}

TEST(Simd, PackedLutPath) {  // 8-bit symbols, n=11 -> single-gather LUT
    auto syms = test::geometric_symbols<u8>(250000, 0.6, 256, 41);
    auto m = test::model_for<u8>(syms, 11, 256);
    ASSERT_NE(m.tables().packed, nullptr);
    expect_simd_matches<u8>(syms, m);
}

TEST(Simd, WideLutPath) {  // n=16 disables the packed LUT
    auto syms = test::geometric_symbols<u8>(250000, 0.7, 256, 42);
    auto m = test::model_for<u8>(syms, 16, 256);
    ASSERT_EQ(m.tables().packed, nullptr);
    expect_simd_matches<u8>(syms, m);
}

TEST(Simd, SixteenBitSymbols) {
    auto syms = test::geometric_symbols<u16>(200000, 0.97, 4096, 43);
    std::vector<u64> counts(4096, 0);
    for (u16 s : syms) ++counts[s];
    StaticModel m(counts, 16);
    expect_simd_matches<u16>(syms, m);
}

TEST(Simd, AdaptiveModelPath) {
    const std::size_t n = 150000;
    Xoshiro256 rng(44);
    std::vector<u8> syms(n), ids(n);
    for (std::size_t i = 0; i < n; ++i) {
        ids[i] = static_cast<u8>((i / 97) % 5);
        syms[i] = static_cast<u8>(rng.below(8 + 16 * ids[i]));
    }
    std::vector<std::vector<u64>> counts(5, std::vector<u64>(256, 1));
    for (std::size_t i = 0; i < n; ++i) ++counts[ids[i]][syms[i]];
    std::vector<StaticModel> models;
    for (auto& c : counts) models.emplace_back(c, 13);
    IndexedModelSet set(std::move(models), ids);
    ASSERT_NE(set.tables().ids, nullptr);
    expect_simd_matches<u8>(std::span<const u8>(syms), set);
}

TEST(Simd, SixteenBitAdaptivePath) {
    // 16-bit symbols AND per-index model ids together: the id-gather + wide
    // LUT + 16-bit symbol store combination in one kernel invocation.
    const std::size_t n = 120000;
    Xoshiro256 rng(49);
    std::vector<u16> syms(n);
    std::vector<u8> ids(n);
    for (std::size_t i = 0; i < n; ++i) {
        ids[i] = static_cast<u8>((i / 513) % 7);
        syms[i] = static_cast<u16>(rng.below(64 + 512 * ids[i]));
    }
    std::vector<std::vector<u64>> counts(7, std::vector<u64>(4096, 1));
    for (std::size_t i = 0; i < n; ++i) ++counts[ids[i]][syms[i]];
    std::vector<StaticModel> models;
    for (auto& c : counts) models.emplace_back(c, 16);
    IndexedModelSet set(std::move(models), ids);
    expect_simd_matches<u16>(std::span<const u16>(syms), set);
}

TEST(Simd, HighlySkewedRenormBursts) {
    // Skewed data renormalizes nearly every lane every group — stresses the
    // unit-distribution path (expand/permute) with large pop counts.
    auto syms = test::geometric_symbols<u8>(200000, 0.995, 256, 45);
    auto m = test::model_for<u8>(syms, 11, 256);
    expect_simd_matches<u8>(syms, m);
}

TEST(Simd, RaggedRangeAlignments) {
    // Exercise the scalar-head / kernel / scalar-tail composition at every
    // alignment of both ends.
    auto syms = test::geometric_symbols<u8>(4096 + 77, 0.5, 256, 46);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto bs = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), m);
    auto ref = serial_decode<Rans32, 32, u8>(bs, m.tables());

    for (Backend b : available_backends()) {
        if (b == Backend::Scalar) continue;
        for (u64 hi_off : {0u, 1u, 31u, 32u, 33u}) {
            simd::SimdRangeFn<u8> range{b};
            LaneCursor<Rans32, 32> cur;
            cur.x = bs.final_states;
            cur.p = static_cast<i64>(bs.units.size()) - 1;
            std::vector<u8> out(syms.size(), 0);
            const u64 hi = syms.size() - 1;
            // Scalar-decode the top `hi_off` positions, then hand off to the
            // SIMD range at an arbitrary alignment.
            if (hi_off > 0) {
                decode_positions<Rans32, 32>(cur, std::span<const u16>(bs.units), hi,
                                             hi - hi_off + 1, m.tables(), out.data());
            }
            range(cur, std::span<const u16>(bs.units), hi - hi_off, 0, m.tables(),
                  out.data());
            drain_start<Rans32, 32>(cur, std::span<const u16>(bs.units), syms.size());
            EXPECT_EQ(cur.p, -1) << simd::backend_name(b) << " off " << hi_off;
            EXPECT_EQ(out, ref) << simd::backend_name(b) << " off " << hi_off;
        }
    }
}

TEST(Simd, GroupDisciplineMatchesPerSymbol) {
    // The scalar *group* kernel must agree with the per-symbol loop: this is
    // the equivalence the SIMD kernels rely on (DESIGN.md §3.1).
    auto syms = test::geometric_symbols<u8>(64000, 0.4, 256, 47);
    auto m = test::model_for<u8>(syms, 12, 256);
    auto bs = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), m);
    auto ref = serial_decode<Rans32, 32, u8>(bs, m.tables());

    simd::SimdRangeFn<u8> range{Backend::Scalar};  // uses scalar group kernel
    LaneCursor<Rans32, 32> cur;
    cur.x = bs.final_states;
    cur.p = static_cast<i64>(bs.units.size()) - 1;
    std::vector<u8> out(syms.size());
    // Force the group-kernel path regardless of backend.
    simd::scalar_group_pops(cur.x.data(), bs.units.data(), cur.p);
    simd::scalar_decode_groups<u8>(cur.x.data(), bs.units.data(), bs.units.size(),
                                   cur.p, syms.size() / 32 - 1, 0, m.tables(),
                                   out.data());
    drain_start<Rans32, 32>(cur, std::span<const u16>(bs.units), syms.size());
    EXPECT_EQ(cur.p, -1);
    // Compare only the group-aligned prefix the group kernel covered.
    const std::size_t covered = (syms.size() / 32) * 32;
    for (std::size_t i = 0; i < covered; ++i) ASSERT_EQ(out[i], ref[i]) << i;
}

TEST(Simd, ConventionalWithSimdRange) {
    auto syms = test::geometric_symbols<u8>(200000, 0.6, 256, 48);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, 64);
    for (Backend b : available_backends()) {
        simd::SimdRangeFn<u8> range{b};
        auto dec = conventional_decode<Rans32, 32, u8>(enc, m.tables(), nullptr, range);
        EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()))
            << simd::backend_name(b);
    }
}

}  // namespace
}  // namespace recoil
