// Tests for the unified telemetry layer: histogram bucket geometry and the
// percentile estimator against an exact reference, registry snapshot
// consistency under concurrent writers (the TSan job runs these), callback
// metrics and replace-on-rebind, slow-request-log retention and failure
// capture, trace span nesting, and the ContentServer integration — one
// snapshot covering all five serve subsystems, traces for hit/miss/stream/
// failed requests, the "!metrics" wire introspection surface, sampling, and
// the telemetry=false baseline. Also pins the documented CacheStats counter
// lifetimes (docs/serve_cache.md): which counters are cumulative across
// clear() and which describe current contents.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/session.hpp"
#include "serve/store.hpp"
#include "test_util.hpp"
#include "util/xoshiro.hpp"

namespace recoil::obs {
namespace {

TEST(Histogram, BucketGeometry) {
    EXPECT_EQ(Histogram::bucket_of(0), 0);
    EXPECT_EQ(Histogram::bucket_of(1), 0);
    EXPECT_EQ(Histogram::bucket_of(2), 1);
    EXPECT_EQ(Histogram::bucket_of(3), 1);
    EXPECT_EQ(Histogram::bucket_of(1023), 9);
    EXPECT_EQ(Histogram::bucket_of(1024), 10);
    EXPECT_EQ(Histogram::bucket_of(~u64{0}), Histogram::kBuckets - 1);

    EXPECT_EQ(Histogram::bucket_lo_ns(0), 0u);
    EXPECT_EQ(Histogram::bucket_hi_ns(0), 2u);
    for (int i = 1; i < Histogram::kBuckets - 1; ++i) {
        EXPECT_EQ(Histogram::bucket_lo_ns(i), u64{1} << i);
        EXPECT_EQ(Histogram::bucket_hi_ns(i), u64{1} << (i + 1));
        // Every sample lands in the bucket whose [lo, hi) contains it.
        EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo_ns(i)), i);
        EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi_ns(i) - 1), i);
    }
    EXPECT_EQ(Histogram::bucket_hi_ns(Histogram::kBuckets - 1), ~u64{0});
}

TEST(Histogram, ObservePlacesSamples) {
    Histogram h;
    h.observe_ns(0);
    h.observe_ns(1);
    h.observe_ns(1000);    // bucket 9: [512, 1024)
    h.observe_ns(1024);    // bucket 10
    h.observe(1.5e-6);     // 1500 ns -> bucket 10
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum_ns(), 0u + 1 + 1000 + 1024 + 1500);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.bucket(10), 2u);
}

HistogramSnapshot snap_of(const Histogram& h, std::string name = "h") {
    HistogramSnapshot s;
    s.name = std::move(name);
    s.count = h.count();
    s.sum_ns = h.sum_ns();
    for (int i = 0; i < Histogram::kBuckets; ++i) s.buckets[i] = h.bucket(i);
    return s;
}

TEST(Histogram, PercentileInterpolatesDeterministically) {
    // One bucket, fully specified: the estimator's linear interpolation
    // inside [lo, hi) is an exact, documented function.
    HistogramSnapshot s;
    s.count = 100;
    s.buckets[10] = 100;  // [1024, 2048) ns
    // rank = 0.5 * 100 = 50; frac = 50/100; 1024 + 1024 * 0.5 = 1536 ns.
    EXPECT_NEAR(s.percentile(0.5), 1536e-9, 1e-15);
    EXPECT_NEAR(s.percentile(1.0), 2048e-9, 1e-15);
    EXPECT_NEAR(s.percentile(0.0), 1024e-9, 1e-15);

    // Two buckets: the second starts where the first's count ends.
    HistogramSnapshot t;
    t.count = 10;
    t.buckets[4] = 9;   // [16, 32)
    t.buckets[20] = 1;  // [2^20, 2^21)
    // rank(0.5) = 5 falls in the first bucket.
    EXPECT_LT(t.percentile(0.5), 32e-9);
    // rank(0.999) = 9.99 falls in the second.
    EXPECT_GE(t.percentile(0.999), (double)(u64{1} << 20) / 1e9);

    EXPECT_EQ(HistogramSnapshot{}.percentile(0.5), 0.0);
}

TEST(Histogram, PercentileTracksExactReferenceWithinOneOctave) {
    // Log2 buckets cannot distinguish values inside one octave, so the
    // estimator's error bound is a factor of two of the true quantile.
    Histogram h;
    std::vector<u64> ref;
    Xoshiro256 rng(99);
    for (int i = 0; i < 5000; ++i) {
        const u64 ns = 100 + rng.below(1'000'000);
        ref.push_back(ns);
        h.observe_ns(ns);
    }
    std::sort(ref.begin(), ref.end());
    const auto s = snap_of(h);
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const double exact = static_cast<double>(
            ref[std::min(ref.size() - 1,
                         static_cast<std::size_t>(q * ref.size()))]);
        const double est = s.percentile(q) * 1e9;
        EXPECT_GE(est, exact / 2.0) << "q=" << q;
        EXPECT_LE(est, exact * 2.0) << "q=" << q;
    }
}

TEST(Registry, GetOrCreateReturnsStableRefs) {
    MetricsRegistry reg;
    Counter& a = reg.counter("x_total");
    Counter& b = reg.counter("x_total");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
    Histogram& h1 = reg.histogram("lat");
    Histogram& h2 = reg.histogram("lat");
    EXPECT_EQ(&h1, &h2);
}

TEST(Registry, CallbackMetricsPollAndRebindReplaces) {
    MetricsRegistry reg;
    reg.register_callback("poll_total", MetricKind::counter, [] { return 7; });
    reg.register_callback("level", MetricKind::gauge, [] { return 42; });
    auto s1 = reg.snapshot();
    ASSERT_NE(s1.find("poll_total"), nullptr);
    EXPECT_EQ(*s1.find("poll_total"), 7u);
    EXPECT_EQ(*s1.find("level"), 42u);

    // Re-registering a name replaces the callback (a re-attached component
    // takes over its names) — no duplicates, new value wins.
    reg.register_callback("poll_total", MetricKind::counter,
                          [] { return 9; });
    auto s2 = reg.snapshot();
    EXPECT_EQ(*s2.find("poll_total"), 9u);
    std::size_t hits = 0;
    for (const auto& [n, v] : s2.counters) hits += n == "poll_total";
    EXPECT_EQ(hits, 1u);
}

TEST(Registry, SnapshotConsistentUnderConcurrentWriters) {
    MetricsRegistry reg;
    Counter& c = reg.counter("events_total");
    Histogram& h = reg.histogram("lat");
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t)
        writers.emplace_back([&, t] {
            u64 x = 12345 + static_cast<u64>(t);
            while (!stop.load(std::memory_order_relaxed)) {
                c.inc();
                x = x * 2862933555777941757ull + 3037000493ull;
                h.observe_ns(x % 1000000);
            }
        });
    u64 last_count = 0, last_events = 0;
    for (int i = 0; i < 200; ++i) {
        auto s = reg.snapshot();
        const u64 events = *s.find("events_total");
        const auto* hs = s.find_histogram("lat");
        ASSERT_NE(hs, nullptr);
        // Monotonicity across snapshots; within one snapshot the bucket sum
        // never runs behind count: observe bumps buckets before count, and
        // the snapshot reads count before buckets.
        EXPECT_GE(events, last_events);
        EXPECT_GE(hs->count, last_count);
        u64 bucket_sum = 0;
        for (u64 b : hs->buckets) bucket_sum += b;
        EXPECT_GE(bucket_sum, hs->count);
        last_events = events;
        last_count = hs->count;
        // Percentiles never crash or return garbage mid-race.
        EXPECT_GE(hs->percentile(0.999), 0.0);
    }
    stop = true;
    for (auto& w : writers) w.join();
}

TraceRecord rec_of(double seconds, bool failed = false) {
    TraceRecord r;
    r.id = next_trace_id();
    r.op = "serve";
    r.asset = "a";
    r.failed = failed;
    r.total_seconds = seconds;
    return r;
}

TEST(SlowRequestLog, KeepsTheSlowestAndExposesThemSorted) {
    SlowRequestLog log(4, 4);
    for (int i = 1; i <= 10; ++i)
        log.record(rec_of(i * 1e-3));  // 1ms .. 10ms
    auto slow = log.slowest();
    ASSERT_EQ(slow.size(), 4u);
    EXPECT_NEAR(slow[0].total_seconds, 10e-3, 1e-9);
    EXPECT_NEAR(slow[3].total_seconds, 7e-3, 1e-9);
    // Once full, the floor rejects obviously-fast requests lock-free.
    EXPECT_FALSE(log.interesting(1e-3, false));
    EXPECT_TRUE(log.interesting(20e-3, false));
    // A record at or below the floor leaves the set unchanged.
    log.record(rec_of(1e-3));
    EXPECT_EQ(log.slowest().size(), 4u);
    EXPECT_NEAR(log.slowest()[3].total_seconds, 7e-3, 1e-9);
}

TEST(SlowRequestLog, FailuresGoToTheirOwnBoundedRing) {
    SlowRequestLog log(2, 3);
    for (int i = 0; i < 5; ++i) {
        auto r = rec_of(1e-6, true);
        r.code = static_cast<u16>(i);
        log.record(std::move(r));
    }
    // Failures never displace the slow set...
    EXPECT_TRUE(log.slowest().empty());
    // ...and retention is most-recent-N.
    auto failures = log.recent_failures();
    ASSERT_EQ(failures.size(), 3u);
    EXPECT_EQ(failures[0].code, 4u);
    EXPECT_EQ(failures[2].code, 2u);
    // Failures are always interesting, regardless of the slow floor.
    EXPECT_TRUE(log.interesting(0.0, true));
    EXPECT_EQ(log.recorded(), 5u);
}

TEST(Trace, SpansRecordNamesDepthsAndNesting) {
    TraceContext t("serve", "asset");
    ASSERT_TRUE(t.active());
    EXPECT_NE(t.id(), 0u);
    {
        auto outer = t.span("prepare");
        auto inner = t.span("cache_lookup");
    }
    auto spans = t.spans();
    ASSERT_EQ(spans.size(), 2u);
    // Inner closes first; depths record the nesting.
    EXPECT_STREQ(spans[0].name, "cache_lookup");
    EXPECT_EQ(spans[0].depth, 1);
    EXPECT_STREQ(spans[1].name, "prepare");
    EXPECT_EQ(spans[1].depth, 0);
    EXPECT_GE(spans[0].start_seconds, spans[1].start_seconds);
    EXPECT_GE(spans[1].duration_seconds, spans[0].duration_seconds);
}

TEST(Trace, InactiveContextRecordsNothingAndCapsAtMaxSpans) {
    TraceContext inactive;
    EXPECT_FALSE(inactive.active());
    {
        Histogram h;
        auto s = inactive.span("prepare", &h);
        // An inactive trace is a full no-op: not even the histogram fires
        // (that is what makes request sampling free).
        EXPECT_EQ(h.count(), 0u);
    }
    EXPECT_TRUE(inactive.spans().empty());

    TraceContext t("serve", "a");
    for (int i = 0; i < TraceContext::kMaxSpans + 3; ++i) t.span("p");
    EXPECT_EQ(t.spans().size(),
              static_cast<std::size_t>(TraceContext::kMaxSpans));
}

TEST(Trace, IdsAreProcessWideUnique) {
    const u64 a = next_trace_id();
    const u64 b = next_trace_id();
    EXPECT_NE(a, 0u);
    EXPECT_LT(a, b);
}

}  // namespace
}  // namespace recoil::obs

namespace recoil::serve {
namespace {

namespace fs = std::filesystem;

/// Every name the telemetry layer promises (docs/observability.md). CI greps
/// the same list out of a live --metrics-json dump; this test pins it at the
/// unit level so a silent rename fails fast and locally.
const char* const kFrozenScalars[] = {
    "serve_requests_total", "serve_failures_total", "serve_cache_hits_total",
    "serve_range_requests_total", "serve_streamed_requests_total",
    "serve_wire_bytes_total", "serve_coalesced_requests_total",
    "serve_bytes_saved_total", "serve_governance_failures_total",
    "serve_coalescing_waiters",
    "cache_hits_total", "cache_misses_total", "cache_hit_bytes_total",
    "cache_insertions_total", "cache_evictions_total", "cache_rejected_total",
    "cache_admission_rejected_total", "cache_peak_bytes", "cache_bytes",
    "cache_entries", "cache_capacity_bytes",
    "governor_budget_bytes", "governor_cache_bytes",
    "governor_resident_bytes", "governor_enforcements_total",
    "governor_unloads_total", "governor_bytes_unloaded_total",
    "governor_cache_shrinks_total", "governor_skipped_pinned_total",
    "governor_skipped_in_use_total",
    "store_resident_bytes", "store_assets",
    "disk_puts_total", "disk_put_bytes_total", "disk_loads_total",
    "disk_load_bytes_total", "disk_removes_total", "disk_assets",
    "session_submitted_total", "session_completed_total",
    "session_failed_total", "session_streamed_total",
    "session_frames_delivered_total",
    "simd_backend", "executor_workers", "executor_queued_tasks",
    "executor_running_tasks", "executor_executed_tasks_total",
    "executor_stolen_tasks_total",
};
const char* const kFrozenHistograms[] = {
    "serve_request_seconds", "serve_prepare_seconds", "serve_decode_seconds",
    "serve_hit_seconds", "serve_combine_seconds", "stream_frame_seconds",
    "governor_pass_seconds",
};

struct ObsServerFixture : ::testing::Test {
    std::vector<u8> data;
    ContentServer server;
    std::shared_ptr<const Asset> asset;

    ObsServerFixture()
        : data(test::geometric_symbols<u8>(20000, 0.6, 256, 11)),
          asset(server.store().encode_bytes("asset", data, 32)) {}
};

TEST_F(ObsServerFixture, OneSnapshotCoversAllFiveSubsystems) {
    const fs::path dir =
        fs::temp_directory_path() / "recoil_obs_snapshot_test";
    fs::remove_all(dir);
    server.store().attach_backing(std::make_shared<DiskStore>(dir));
    server.store().encode_bytes("persisted", data, 8);  // disk write-through
    {
        Session session(server, {2});
        session.submit(ServeRequest{"asset", 8, std::nullopt}).get();
        session.wait_idle();
    }
    server.serve(ServeRequest{"asset", 8, std::nullopt});  // warm hit

    const auto snap = server.metrics().snapshot();
    for (const char* name : kFrozenScalars)
        EXPECT_NE(snap.find(name), nullptr) << "missing metric " << name;
    for (const char* name : kFrozenHistograms)
        EXPECT_NE(snap.find_histogram(name), nullptr)
            << "missing histogram " << name;

    // Registry view and stats() APIs are the same counters, bit-exact.
    const auto totals = server.totals();
    EXPECT_EQ(*snap.find("serve_requests_total"), totals.requests);
    EXPECT_EQ(*snap.find("serve_cache_hits_total"), totals.cache_hits);
    EXPECT_EQ(*snap.find("cache_hits_total"), server.cache().stats().hits);
    EXPECT_EQ(*snap.find("store_assets"), server.store().size());
    EXPECT_GE(*snap.find("disk_puts_total"), 1u);
    EXPECT_GE(*snap.find("session_submitted_total"), 1u);
    EXPECT_EQ(*snap.find("session_completed_total"),
              *snap.find("session_submitted_total"));

    // Both exposition formats render every frozen name.
    const std::string prom = snap.to_prometheus();
    const std::string json = snap.to_json();
    for (const char* name : kFrozenScalars) {
        EXPECT_NE(prom.find(name), std::string::npos) << name;
        EXPECT_NE(json.find(name), std::string::npos) << name;
    }
    fs::remove_all(dir);
}

TEST_F(ObsServerFixture, TracesLandInTheSlowLogWithSpans) {
    server.serve(ServeRequest{"asset", 16, std::nullopt});  // cold: combine
    server.serve(ServeRequest{"asset", 16, std::nullopt});  // warm hit
    server.serve(ServeRequest{"missing", 4, std::nullopt});  // typed failure

    // Streamed request, drained to FIN.
    auto stream = server.serve_stream(
        ServeRequest{"asset", 16, std::nullopt, kAcceptAll | kAcceptStreamed});
    while (stream.next_frame()) {
    }

    const auto slow = server.slow_log().slowest();
    ASSERT_FALSE(slow.empty());
    bool saw_serve = false, saw_stream = false, saw_hit = false;
    for (const auto& r : slow) {
        if (r.op == "serve") {
            saw_serve = true;
            saw_hit = saw_hit || r.cache_hit;
            EXPECT_FALSE(r.spans.empty());
            bool has_prepare = false;
            for (const auto& s : r.spans)
                has_prepare = has_prepare || std::string(s.name) == "prepare";
            EXPECT_TRUE(has_prepare);
        }
        if (r.op == "stream") saw_stream = true;
        EXPECT_FALSE(r.failed);  // failures live in their own ring
    }
    EXPECT_TRUE(saw_serve);
    EXPECT_TRUE(saw_stream);
    EXPECT_TRUE(saw_hit);

    const auto failures = server.slow_log().recent_failures();
    ASSERT_FALSE(failures.empty());
    EXPECT_EQ(failures[0].code_name, "unknown_asset");
    EXPECT_EQ(failures[0].asset, "missing");
    EXPECT_TRUE(failures[0].failed);

    // The JSON dump carries both sets with spans inline.
    const std::string j = server.slow_log().to_json();
    EXPECT_NE(j.find("\"slowest\""), std::string::npos);
    EXPECT_NE(j.find("\"failures\""), std::string::npos);
    EXPECT_NE(j.find("\"prepare\""), std::string::npos);
    EXPECT_NE(j.find("unknown_asset"), std::string::npos);
}

TEST_F(ObsServerFixture, MetricsIntrospectionSpeaksTheWireProtocol) {
    server.serve(ServeRequest{"asset", 8, std::nullopt});
    const auto before = server.totals().requests;

    // Prometheus text over the wire.
    auto res = decode_response(server.serve_frame(encode_request(
        ServeRequest{kMetricsAssetText, 1, std::nullopt,
                     kAcceptAll | kAcceptMetrics})));
    ASSERT_TRUE(res.ok()) << res.detail;
    EXPECT_EQ(res.payload, PayloadKind::metrics);
    ASSERT_NE(res.wire, nullptr);
    const std::string text(res.wire->begin(), res.wire->end());
    EXPECT_NE(text.find("# TYPE serve_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("serve_request_seconds_count"), std::string::npos);

    // JSON variant.
    auto jres = decode_response(server.serve_frame(encode_request(
        ServeRequest{kMetricsAssetJson, 1, std::nullopt,
                     kAcceptAll | kAcceptMetrics})));
    ASSERT_TRUE(jres.ok());
    const std::string json(jres.wire->begin(), jres.wire->end());
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);

    // Introspection requests are requests: they count.
    EXPECT_EQ(server.totals().requests, before + 2);

    // Without the metrics accept bit the reserved name is not served.
    auto denied = decode_response(server.serve_frame(encode_request(
        ServeRequest{kMetricsAssetText, 1, std::nullopt, kAcceptAll})));
    EXPECT_EQ(denied.code, ErrorCode::not_acceptable);

    // Unknown "!" names fail typed, and never hit the store.
    auto unknown = decode_response(server.serve_frame(encode_request(
        ServeRequest{"!nope", 1, std::nullopt,
                     kAcceptAll | kAcceptMetrics})));
    EXPECT_EQ(unknown.code, ErrorCode::unknown_asset);
}

TEST(ObsServer, TelemetryDisabledKeepsCountersExactAndRecordsNoTraces) {
    ServerOptions opt;
    opt.telemetry = false;
    ContentServer server(opt);
    auto data = test::geometric_symbols<u8>(8000, 0.6, 256, 5);
    server.store().encode_bytes("asset", data, 8);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(server.serve(ServeRequest{"asset", 4, std::nullopt}).ok());

    const auto snap = server.metrics().snapshot();
    ASSERT_NE(snap.find("serve_requests_total"), nullptr);
    EXPECT_EQ(*snap.find("serve_requests_total"), 5u);
    EXPECT_EQ(*snap.find("serve_cache_hits_total"), 4u);
    // No histograms were created and nothing was traced.
    EXPECT_EQ(snap.find_histogram("serve_request_seconds"), nullptr);
    EXPECT_EQ(server.slow_log().recorded(), 0u);
}

TEST(ObsServer, SamplingTakesTheTimedPathOneInN) {
    ServerOptions opt;
    opt.sample_every = 4;
    ContentServer server(opt);
    auto data = test::geometric_symbols<u8>(8000, 0.6, 256, 5);
    server.store().encode_bytes("asset", data, 8);
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(server.serve(ServeRequest{"asset", 4, std::nullopt}).ok());

    const auto snap = server.metrics().snapshot();
    // Single-threaded, ticks 0..15: exactly ticks 0, 4, 8, 12 sampled.
    const auto* h = snap.find_histogram("serve_request_seconds");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 4u);
    // Counters are never sampled.
    EXPECT_EQ(*snap.find("serve_requests_total"), 16u);
}

// Pins the counter lifetimes documented in docs/serve_cache.md: traffic and
// admission counters are cumulative over the cache's lifetime (clear() and
// eviction do NOT reset them); bytes/entries describe current contents and
// peak_bytes is a lifetime high-water mark.
TEST(CacheStatsLifetime, CumulativeCountersSurviveClear) {
    MetadataCache cache(1 << 20);
    auto wire = [](std::size_t n) {
        return std::make_shared<std::vector<u8>>(n, u8{7});
    };
    cache.get("a", 4, nullptr);           // miss
    cache.put("a", 4, wire(1000), 4);     // insertion
    cache.get("a", 4, nullptr);           // hit, +1000 hit bytes
    cache.put("big", 1, wire(2 << 20), 1);  // larger than capacity: rejected

    auto s1 = cache.stats();
    EXPECT_EQ(s1.hits, 1u);
    EXPECT_EQ(s1.misses, 1u);
    EXPECT_EQ(s1.hit_bytes, 1000u);
    EXPECT_EQ(s1.insertions, 1u);
    EXPECT_EQ(s1.rejected, 1u);
    EXPECT_EQ(s1.entries, 1u);
    EXPECT_EQ(s1.bytes, 1000u);
    EXPECT_EQ(s1.peak_bytes, 1000u);

    cache.clear();
    auto s2 = cache.stats();
    // Current-contents gauges reset...
    EXPECT_EQ(s2.entries, 0u);
    EXPECT_EQ(s2.bytes, 0u);
    // ...cumulative counters and the high-water mark do not.
    EXPECT_EQ(s2.hits, 1u);
    EXPECT_EQ(s2.misses, 1u);
    EXPECT_EQ(s2.hit_bytes, 1000u);
    EXPECT_EQ(s2.insertions, 1u);
    EXPECT_EQ(s2.rejected, 1u);
    EXPECT_EQ(s2.evictions, 0u);
    EXPECT_EQ(s2.peak_bytes, 1000u);

    // Eviction bumps its own cumulative counter and never rewinds others.
    MetadataCache tiny(1500);
    tiny.put("x", 1, wire(1000), 1);
    tiny.put("y", 1, wire(1000), 1);  // displaces x
    auto s3 = tiny.stats();
    EXPECT_EQ(s3.evictions, 1u);
    EXPECT_EQ(s3.insertions, 2u);
    EXPECT_EQ(s3.entries, 1u);
}

}  // namespace
}  // namespace recoil::serve
