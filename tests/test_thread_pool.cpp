// Unit tests for the thread pool used by every parallel decode path.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/thread_pool.hpp"

namespace recoil {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(1000, [&](u64 i) { hits[i].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndOneTasks) {
    ThreadPool pool(4);
    int calls = 0;
    pool.parallel_for(0, [&](u64) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallel_for(1, [&](u64 i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<u64> sum{0};
        pool.parallel_for(100, [&](u64 i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, ActuallyParallel) {
    ThreadPool pool(4);
    std::atomic<int> concurrent{0};
    std::atomic<int> peak{0};
    pool.parallel_for(16, [&](u64) {
        const int now = concurrent.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        // Busy-wait a little so tasks overlap.
        for (volatile int spin = 0; spin < 2000000; ++spin) {
        }
        concurrent.fetch_sub(1);
    });
    EXPECT_GT(peak.load(), 1);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
    ThreadPool pool(1);
    std::atomic<u64> sum{0};
    pool.parallel_for(257, [&](u64 i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 257u * 258 / 2);
}

TEST(ThreadPool, LargeFanOut) {
    ThreadPool pool(8);
    std::atomic<u64> count{0};
    pool.parallel_for(100000, [&](u64) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100000u);
}

TEST(ThreadPool, GlobalPoolSingleton) {
    ThreadPool& a = global_pool();
    ThreadPool& b = global_pool();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.size(), 1u);
}

}  // namespace
}  // namespace recoil
