// Tests for the pluggable cache-policy layer and the resource governor:
// LRU stays bit-exact with the historical cache (the seeded-Zipf regression
// in test_session is the end-to-end anchor; here the counter edges are
// pinned), segmented LRU protects reused entries from scan pollution,
// TinyLFU admission rejects expensive one-hit wonders, and the governor
// unloads cold demand-loadable assets under a global byte budget without
// ever touching pinned assets or assets pinned by in-flight streams.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "serve/session.hpp"
#include "serve/store.hpp"
#include "test_util.hpp"

namespace recoil::serve {
namespace {

namespace fs = std::filesystem;

WireBytes wire_of(u64 n, u8 fill) {
    return std::make_shared<const std::vector<u8>>(n, fill);
}

CachePolicyConfig slru_config(double protected_fraction = 0.8) {
    CachePolicyConfig cfg;
    cfg.eviction = EvictionKind::slru;
    cfg.slru_protected_fraction = protected_fraction;
    return cfg;
}

/// Fresh store directory per test; removed on destruction.
struct TempDir {
    fs::path path;
    explicit TempDir(const char* tag)
        : path(fs::temp_directory_path() /
               (std::string("recoil_policy_") + tag)) {
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

std::vector<u8> asset_bytes(u64 n, u64 seed) {
    return test::geometric_symbols<u8>(n, 0.6, 256, seed);
}

// ---- counter edges (satellite: audit rejected/eviction edges) ----

TEST(CachePolicy, ExactCapacityPayloadIsAdmittedNotRejected) {
    MetadataCache cache(100);
    cache.put("a", 1, wire_of(40, 1));
    cache.put("b", 1, wire_of(40, 2));

    // Exactly capacity: fits (alone), so it is an insertion that evicts
    // everything else — never a rejection.
    cache.put("full", 1, wire_of(100, 3));
    CacheStats s = cache.stats();
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.insertions, 3u);
    EXPECT_EQ(s.evictions, 2u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.bytes, 100u);
    EXPECT_NE(cache.get("full", 1), nullptr);

    // The same holds after a clear(): the capacity comparison must not
    // drift against the (reset) current size.
    cache.clear();
    cache.put("full2", 1, wire_of(100, 4));
    s = cache.stats();
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.bytes, 100u);
    EXPECT_NE(cache.get("full2", 1), nullptr);

    // One byte over capacity IS a rejection, and not an insertion.
    cache.put("over", 1, wire_of(101, 5));
    s = cache.stats();
    EXPECT_EQ(s.rejected, 1u);
    EXPECT_EQ(s.insertions, 4u);
    EXPECT_EQ(s.entries, 1u);  // resident entry untouched
}

TEST(CachePolicy, OversizedRefreshDropsTheStaleResidentEntry) {
    MetadataCache cache(100);
    cache.put("k", 1, wire_of(40, 1));
    ASSERT_NE(cache.get("k", 1), nullptr);

    // A refresh too large to cache: the resident entry is now known stale,
    // so it must not keep being served. Counted as rejected, NOT as an
    // eviction (nothing displaced it for space).
    cache.put("k", 1, wire_of(101, 2));
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.rejected, 1u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.bytes, 0u);
    EXPECT_EQ(cache.get("k", 1), nullptr);
}

TEST(CachePolicy, ShrinkToEvictsColdestFirstAndCountsEvictions) {
    MetadataCache cache(1000);
    for (int i = 0; i < 5; ++i)
        cache.put("k" + std::to_string(i), 1, wire_of(100, u8(i)));
    cache.get("k0", 1);  // refresh: k0 is now the hottest

    cache.shrink_to(250);
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.bytes, 200u);
    EXPECT_EQ(s.evictions, 3u);
    EXPECT_NE(cache.get("k0", 1), nullptr);  // survived via recency
    EXPECT_NE(cache.get("k4", 1), nullptr);
    EXPECT_EQ(cache.get("k1", 1), nullptr);

    // shrink_to does not change the configured capacity: the cache grows
    // right back.
    cache.put("k5", 1, wire_of(100, 9));
    EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(CachePolicy, HitBytesAccumulateForByteHitRate) {
    MetadataCache cache(1000);
    cache.put("a", 1, wire_of(300, 1));
    cache.get("a", 1);
    cache.get("a", 1);
    cache.get("missing", 1);
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.hit_bytes, 600u);
    EXPECT_EQ(s.misses, 1u);
}

// ---- segmented LRU ----

TEST(CachePolicy, SlruScanTrafficCannotFlushTheProtectedSet) {
    // Capacity 100, protected cap 80. Two entries are reused (promoted to
    // protected); a stream of one-shot scan entries then churns probation
    // without ever displacing the protected pair — under plain LRU the
    // scans would have flushed them.
    MetadataCache cache(100, slru_config(0.8));
    cache.put("hot1", 1, wire_of(30, 1));
    cache.put("hot2", 1, wire_of(30, 2));
    ASSERT_NE(cache.get("hot1", 1), nullptr);  // promote
    ASSERT_NE(cache.get("hot2", 1), nullptr);  // promote

    for (int i = 0; i < 16; ++i)
        cache.put("scan" + std::to_string(i), 1, wire_of(30, u8(i)));

    EXPECT_NE(cache.get("hot1", 1), nullptr);
    EXPECT_NE(cache.get("hot2", 1), nullptr);
    // Every scan wave evicted from probation; the last scan may or may not
    // be resident, but at most one can fit next to the protected pair.
    EXPECT_LE(cache.stats().entries, 3u);
    EXPECT_GE(cache.stats().evictions, 15u);
}

TEST(CachePolicy, SlruDemotesWhenProtectedOverflowsItsByteCap) {
    // Protected cap = 60 of 100: promoting a third 30-byte entry demotes
    // the coldest protected entry back to probation, where a scan can
    // evict it — the cap keeps "protected" an earned, bounded status.
    MetadataCache cache(100, slru_config(0.6));
    cache.put("a", 1, wire_of(30, 1));
    cache.put("b", 1, wire_of(30, 2));
    cache.put("c", 1, wire_of(30, 3));
    cache.get("a", 1);
    cache.get("b", 1);
    cache.get("c", 1);  // protected would be 90 > 60: "a" demoted

    // A scan entry fills probation past capacity; the victim comes from
    // probation: first the scan's own predecessors, then demoted "a".
    cache.put("s1", 1, wire_of(30, 4));
    EXPECT_EQ(cache.get("a", 1), nullptr) << "demoted entry outlived a scan";
    EXPECT_NE(cache.get("b", 1), nullptr);
    EXPECT_NE(cache.get("c", 1), nullptr);
}

TEST(CachePolicy, SlruEvictsFromProtectedOnlyWhenProbationIsEmpty) {
    MetadataCache cache(100, slru_config(1.0));  // everything promotable
    cache.put("a", 1, wire_of(50, 1));
    cache.put("b", 1, wire_of(50, 2));
    cache.get("a", 1);
    cache.get("b", 1);  // both protected; probation empty
    cache.put("c", 1, wire_of(50, 3));
    // c sits in probation; over capacity, victim comes from probation (c
    // itself would be next) — but first the insert pushed bytes to 150, so
    // the probation victim is c's own segment: a and b survive.
    EXPECT_NE(cache.get("a", 1), nullptr);
    EXPECT_NE(cache.get("b", 1), nullptr);
}

// ---- TinyLFU admission ----

TEST(CachePolicy, TinyLfuRejectsExpensiveOneHitWonders) {
    CachePolicyConfig cfg;
    cfg.admission = AdmissionKind::tinylfu;
    cfg.tinylfu_small_floor = 50;
    MetadataCache cache(1000, cfg);

    // A large never-seen key is refused outright: one observed access (or
    // none) does not justify 500 bytes.
    cache.put("big", 1, wire_of(500, 1));
    CacheStats s = cache.stats();
    EXPECT_EQ(s.admission_rejected, 1u);
    EXPECT_EQ(s.insertions, 0u);
    EXPECT_EQ(s.entries, 0u);

    // A small stranger is a cheap gamble: admitted.
    cache.put("small", 1, wire_of(40, 2));
    EXPECT_EQ(cache.stats().insertions, 1u);

    // Demonstrated reuse admits the big key: two recorded lookups put its
    // sketch estimate at 2.
    EXPECT_EQ(cache.get("big", 1), nullptr);
    EXPECT_EQ(cache.get("big", 1), nullptr);
    cache.put("big", 1, wire_of(500, 1));
    s = cache.stats();
    EXPECT_EQ(s.admission_rejected, 1u);  // unchanged
    EXPECT_EQ(s.insertions, 2u);
    EXPECT_NE(cache.get("big", 1), nullptr);
}

TEST(CachePolicy, TinyLfuSketchEstimatesSaturateAndClear) {
    TinyLfuAdmission lfu(/*small_floor_bytes=*/10, /*width=*/128);
    const u64 key = 0x1234abcdu;
    EXPECT_EQ(lfu.estimate(key), 0u);
    for (int i = 0; i < 40; ++i) lfu.record(key);
    EXPECT_EQ(lfu.estimate(key), 15u);  // 4-bit counters saturate
    EXPECT_TRUE(lfu.admit(key, 1'000'000));
    EXPECT_FALSE(lfu.admit(0x9999u, 11));  // stranger over the floor
    EXPECT_TRUE(lfu.admit(0x9999u, 10));   // stranger at the floor
    lfu.clear();
    EXPECT_EQ(lfu.estimate(key), 0u);
}

TEST(CachePolicy, ParseAndNameRoundTrip) {
    for (const char* name :
         {"lru", "slru", "lru-tinylfu", "slru-tinylfu"}) {
        auto cfg = parse_cache_policy(name);
        ASSERT_TRUE(cfg.has_value()) << name;
        EXPECT_EQ(cache_policy_name(*cfg), name);
    }
    EXPECT_FALSE(parse_cache_policy("fifo").has_value());
    EXPECT_FALSE(parse_cache_policy("").has_value());
}

// ---- resource governor ----

/// Store + cache + governor under test control (no ContentServer): every
/// pressure decision is driven explicitly, so the assertions are exact.
struct GovernedRig {
    AssetStore store;
    MetadataCache cache;
    explicit GovernedRig(u64 cache_capacity = u64{1} << 20)
        : cache(cache_capacity) {}
};

TEST(Governor, UnloadsColdestBackedAssetsFirst) {
    TempDir dir("coldest");
    GovernedRig rig;
    rig.store.attach_backing(std::make_shared<DiskStore>(dir.path));
    for (int i = 0; i < 4; ++i)
        rig.store.encode_bytes("a" + std::to_string(i),
                               asset_bytes(40000, 7 + i), 8);
    const u64 resident = rig.store.resident_bytes();
    ASSERT_GT(resident, 0u);
    const u64 per_asset = resident / 4;

    // Recency: a0 never accessed (coldest), then a1 < a2 < a3.
    ResourceGovernor gov(rig.store, rig.cache,
                         GovernorOptions{resident - per_asset / 2});
    gov.note_access("a1");
    gov.note_access("a2");
    gov.note_access("a3");

    ASSERT_TRUE(gov.over_budget());
    const u64 released = gov.enforce();
    EXPECT_GT(released, 0u);
    EXPECT_FALSE(gov.over_budget());
    // Only the coldest had to go; the budget gap was under one asset.
    EXPECT_EQ(rig.store.find("a0"), nullptr);
    EXPECT_NE(rig.store.find("a1"), nullptr);
    EXPECT_NE(rig.store.find("a2"), nullptr);
    EXPECT_NE(rig.store.find("a3"), nullptr);
    const GovernorStats s = gov.stats();
    EXPECT_EQ(s.unloads, 1u);
    EXPECT_EQ(s.bytes_unloaded, released);
    EXPECT_EQ(s.enforcements, 1u);

    // Unload is pressure relief, not eviction: the asset demand-loads back
    // under the same generation, so cached response keys stay valid.
    auto back = rig.store.resolve("a0");
    ASSERT_NE(back, nullptr);
    EXPECT_TRUE(rig.store.is_current(*back));
}

TEST(Governor, PinnedAssetsRideOutPressure) {
    TempDir dir("pinned");
    GovernedRig rig;
    rig.store.attach_backing(std::make_shared<DiskStore>(dir.path));
    for (int i = 0; i < 3; ++i)
        rig.store.encode_bytes("a" + std::to_string(i),
                               asset_bytes(40000, 20 + i), 8);
    const u64 resident = rig.store.resident_bytes();

    // a0 is coldest AND pinned: pressure must skip it and take a1 instead.
    ResourceGovernor gov(rig.store, rig.cache,
                         GovernorOptions{resident - resident / 6});
    gov.pin("a0");
    gov.note_access("a1");
    gov.note_access("a2");
    gov.enforce();
    EXPECT_NE(rig.store.find("a0"), nullptr) << "pinned asset was unloaded";
    EXPECT_EQ(rig.store.find("a1"), nullptr);
    EXPECT_GE(gov.stats().skipped_pinned, 1u);

    gov.unpin("a0");
    EXPECT_FALSE(gov.pinned("a0"));
    gov.enforce();  // under budget now: no-op
    EXPECT_NE(rig.store.find("a0"), nullptr);
}

TEST(Governor, UnbackedAssetsAreNeverUnloaded) {
    // No backing store: unloading would be data loss, so the governor must
    // leave every asset resident and relieve pressure via the cache alone.
    GovernedRig rig(/*cache_capacity=*/u64{1} << 20);
    rig.store.encode_bytes("mem0", asset_bytes(40000, 31), 8);
    rig.store.encode_bytes("mem1", asset_bytes(40000, 32), 8);
    rig.cache.put("k", 1, wire_of(5000, 1));

    ResourceGovernor gov(rig.store, rig.cache, GovernorOptions{1});
    gov.enforce();
    EXPECT_NE(rig.store.find("mem0"), nullptr);
    EXPECT_NE(rig.store.find("mem1"), nullptr);
    EXPECT_EQ(gov.stats().unloads, 0u);
    // The cache was shrunk as far as it goes (budget 1 leaves no share).
    EXPECT_EQ(rig.cache.stats().entries, 0u);
    EXPECT_GE(gov.stats().cache_shrinks, 1u);
}

TEST(Governor, InUseAssetsAreSkippedUntilReleased) {
    TempDir dir("inuse");
    GovernedRig rig;
    rig.store.attach_backing(std::make_shared<DiskStore>(dir.path));
    rig.store.encode_bytes("held", asset_bytes(40000, 41), 8);

    ResourceGovernor gov(rig.store, rig.cache, GovernorOptions{1});
    {
        // An external holder (a stream's Prepared would be one): unloading
        // frees nothing, so the governor must skip it.
        std::shared_ptr<const Asset> ref = rig.store.find("held");
        ASSERT_NE(ref, nullptr);
        gov.enforce();
        EXPECT_NE(rig.store.find("held"), nullptr);
        EXPECT_GE(gov.stats().skipped_in_use, 1u);
    }
    // Reference dropped: the next pass reclaims it.
    gov.enforce();
    EXPECT_EQ(rig.store.find("held"), nullptr);
    EXPECT_EQ(gov.stats().unloads, 1u);
}

TEST(Governor, CacheShrinksOnlyWhenTheStoreCannotGetUnderBudget) {
    TempDir dir("shrink");
    GovernedRig rig;
    rig.store.attach_backing(std::make_shared<DiskStore>(dir.path));
    rig.store.encode_bytes("a", asset_bytes(40000, 51), 8);
    rig.store.encode_bytes("b", asset_bytes(40000, 52), 8);
    rig.cache.put("w1", 1, wire_of(4000, 1));
    rig.cache.put("w2", 1, wire_of(4000, 2));
    const u64 resident = rig.store.resident_bytes();

    // Budget leaves room for one (pinned) asset + one cache entry: the
    // pass unloads the unpinned asset, and — because the pinned one cannot
    // go — the cache gives back the rest.
    ResourceGovernor gov(rig.store, rig.cache,
                         GovernorOptions{resident / 2 + 4500});
    gov.pin("b");
    gov.note_access("b");  // a is coldest
    gov.enforce();
    EXPECT_EQ(rig.store.find("a"), nullptr);
    EXPECT_NE(rig.store.find("b"), nullptr);
    const GovernorStats s = gov.stats();
    EXPECT_EQ(s.unloads, 1u);
    EXPECT_GE(s.cache_shrinks, 1u);
    EXPECT_LE(rig.cache.current_bytes() + rig.store.resident_bytes(),
              gov.budget_bytes());
    EXPECT_EQ(rig.cache.stats().entries, 1u);  // one entry fit the share
    EXPECT_EQ(rig.cache.stats().evictions, 1u);
}

TEST(Governor, FutilePassesLatchOffTheHotPathProbe) {
    // A pass that cannot relieve the pressure (only unbacked assets) must
    // not be re-run by the hot path on every request: after a futile pass
    // pressure_actionable() goes false at the stuck usage level, and
    // re-arms when usage grows or the pin set changes. Explicit enforce()
    // always runs regardless.
    GovernedRig rig;
    rig.store.encode_bytes("mem", asset_bytes(40000, 65), 8);
    ResourceGovernor gov(rig.store, rig.cache, GovernorOptions{1});

    ASSERT_TRUE(gov.over_budget());
    EXPECT_TRUE(gov.pressure_actionable());
    EXPECT_EQ(gov.enforce(), 0u);  // nothing unloadable
    EXPECT_TRUE(gov.over_budget());
    EXPECT_FALSE(gov.pressure_actionable()) << "futile pass did not latch";

    // Usage grows past the stuck level: actionable again.
    rig.store.encode_bytes("mem2", asset_bytes(40000, 66), 8);
    EXPECT_TRUE(gov.pressure_actionable());
    EXPECT_EQ(gov.enforce(), 0u);
    EXPECT_FALSE(gov.pressure_actionable());

    // Pin-set changes re-arm the probe (eligibility may have changed).
    gov.pin("mem");
    EXPECT_TRUE(gov.pressure_actionable());
}

TEST(Governor, DisabledGovernorNeverActs) {
    GovernedRig rig;
    rig.store.encode_bytes("a", asset_bytes(30000, 61), 8);
    rig.cache.put("k", 1, wire_of(100, 1));
    ResourceGovernor gov(rig.store, rig.cache, GovernorOptions{0});
    EXPECT_FALSE(gov.enabled());
    EXPECT_FALSE(gov.over_budget());
    EXPECT_EQ(gov.enforce(), 0u);
    EXPECT_NE(rig.store.find("a"), nullptr);
    EXPECT_EQ(rig.cache.stats().entries, 1u);
}

// ---- governor vs in-flight streams (end-to-end through ContentServer) ----

TEST(Governor, StreamPinsItsAssetAcrossAPressurePass) {
    TempDir dir("streampin");
    ServerOptions opt;
    opt.cache_capacity_bytes = u64{1} << 20;
    opt.mem_budget_bytes = 1;  // permanent pressure: every pass unloads all
    ContentServer server(opt);
    server.store().attach_backing(std::make_shared<DiskStore>(dir.path));
    const auto data = asset_bytes(60000, 71);
    server.store().encode_bytes("a", data, 16);

    const ServeResult ref = server.serve({"a", 4, std::nullopt});
    ASSERT_TRUE(ref.ok());

    StreamOptions sopt;
    sopt.max_frame_bytes = 4096;
    sopt.use_cache = false;
    {
        ServeStream stream = server.serve_stream(
            {"a", 4, std::nullopt, kAcceptAll | kAcceptStreamed}, sopt);
        auto first = stream.next_frame();
        ASSERT_TRUE(first.has_value());

        // Mid-stream pressure pass: the stream's Prepared holds the asset,
        // so the governor must skip it — unloading would free nothing.
        server.governor().enforce();
        EXPECT_NE(server.store().find("a"), nullptr)
            << "governor unloaded an asset pinned by an in-flight stream";
        EXPECT_GE(server.governor().stats().skipped_in_use, 1u);

        StreamReassembler client(sopt.max_frame_bytes);
        client.feed(*first);
        while (auto frame = stream.next_frame()) client.feed(*frame);
        const ServeResult got = client.result();
        ASSERT_TRUE(got.ok()) << got.detail;
        EXPECT_EQ(*got.wire, *ref.wire);
    }
    // Stream gone (and its producer joined): the next pass may reclaim.
    server.governor().enforce();
    EXPECT_EQ(server.store().find("a"), nullptr);
    // And the asset demand-loads straight back, bit-identically.
    const ServeResult back = server.serve({"a", 4, std::nullopt});
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back.wire, *ref.wire);
}

TEST(Governor, UnloadRacingStreamsStaysBitExact) {
    // The TSan anchor: streams, materialized serves and explicit pressure
    // passes hammer the same small asset set under a budget that is always
    // exceeded. Whatever interleaving happens, every response must be
    // bit-exact and every stream must complete — losing the in-use race
    // costs a re-mmap, never bytes.
    TempDir dir("race");
    ServerOptions opt;
    opt.cache_capacity_bytes = u64{256} << 10;
    opt.mem_budget_bytes = 1;
    ContentServer server(opt);
    server.store().attach_backing(std::make_shared<DiskStore>(dir.path));

    constexpr int kAssets = 3;
    std::vector<std::vector<u8>> reference(kAssets);
    for (int i = 0; i < kAssets; ++i) {
        const std::string name = "a" + std::to_string(i);
        server.store().encode_bytes(name, asset_bytes(30000, 80 + i), 8);
        const ServeResult r = server.serve({name, 4, std::nullopt});
        ASSERT_TRUE(r.ok());
        reference[i] = *r.wire;
    }

    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            StreamOptions sopt;
            sopt.max_frame_bytes = 2048;
            sopt.use_cache = (t % 2 == 0);
            for (int i = 0; i < 12; ++i) {
                const int a = (t + i) % kAssets;
                const std::string name = "a" + std::to_string(a);
                ServeStream stream = server.serve_stream(
                    {name, 4, std::nullopt, kAcceptAll | kAcceptStreamed},
                    sopt);
                StreamReassembler client(sopt.max_frame_bytes);
                try {
                    while (auto frame = stream.next_frame())
                        client.feed(*frame);
                    const ServeResult got = client.result();
                    if (!got.ok() || *got.wire != reference[a]) ++failures;
                } catch (const std::exception&) {
                    ++failures;
                }
                const ServeResult mat = server.serve({name, 4, std::nullopt});
                if (!mat.ok() || *mat.wire != reference[a]) ++failures;
            }
        });
    }
    std::thread governor([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            server.governor().enforce();
            std::this_thread::yield();
        }
    });
    for (auto& t : threads) t.join();
    stop.store(true, std::memory_order_relaxed);
    governor.join();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server.totals().failures, 0u);
    // Everything still demand-loads after the storm.
    for (int i = 0; i < kAssets; ++i) {
        const ServeResult r =
            server.serve({"a" + std::to_string(i), 4, std::nullopt});
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(*r.wire, reference[i]);
    }
}

// ---- session stats surface ----

TEST(SessionStats, CountersTrackSubmissionsCompletionsAndFrames) {
    ContentServer server;
    server.store().encode_bytes("asset", asset_bytes(50000, 91), 16);
    Session session(server, {2});

    EXPECT_TRUE(session.submit({"asset", 4, std::nullopt}).get().ok());
    EXPECT_FALSE(session.submit({"missing", 4, std::nullopt}).get().ok());
    u64 frames = 0;
    StreamOptions sopt;
    sopt.max_frame_bytes = 4096;
    auto fut = session.submit_stream(
        {"asset", 4, std::nullopt, kAcceptAll | kAcceptStreamed},
        [&](std::span<const u8>) { ++frames; }, sopt);
    EXPECT_TRUE(fut.get().ok());
    session.wait_idle();

    const Session::Stats s = session.stats();
    EXPECT_EQ(s.submitted, 3u);
    EXPECT_EQ(s.completed, 3u);
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.streamed, 1u);
    EXPECT_GE(s.frames_delivered, 3u);  // header + >=1 body + FIN
    EXPECT_EQ(s.frames_delivered, frames);
}

}  // namespace
}  // namespace recoil::serve
