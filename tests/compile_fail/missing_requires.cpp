// Negative-compile case: calls a RECOIL_REQUIRES(mu_) helper without
// holding mu_. Under -Werror=thread-safety this must FAIL to compile; the
// ctest entry is WILL_FAIL, so if this ever builds, the annotations have
// gone dead and the gate fires.
#include "util/thread_annotations.hpp"

class Table {
public:
    // BUG (deliberate): the _locked helper is entered without the lock.
    void rebalance() { compact_locked(); }

private:
    void compact_locked() RECOIL_REQUIRES(mu_) { ++compactions_; }

    recoil::util::Mutex mu_;
    long compactions_ RECOIL_GUARDED_BY(mu_) = 0;
};

void drive(Table& t) { t.rebalance(); }
