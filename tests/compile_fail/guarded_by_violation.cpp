// Negative-compile case: writes a RECOIL_GUARDED_BY field without holding
// its mutex. Under -Werror=thread-safety this must FAIL to compile; the
// ctest entry is WILL_FAIL, so if this ever builds, the annotations have
// gone dead and the gate fires.
#include "util/thread_annotations.hpp"

class Counter {
public:
    // BUG (deliberate): mu_ is not held across the write.
    void bump_unlocked() { ++value_; }

private:
    recoil::util::Mutex mu_;
    long value_ RECOIL_GUARDED_BY(mu_) = 0;
};

void drive(Counter& c) { c.bump_unlocked(); }
