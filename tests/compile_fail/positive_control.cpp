// Positive control for the negative-compile harness: the same shapes as
// the WILL_FAIL cases, locked correctly. Must ALWAYS compile (with or
// without -Werror=thread-safety) — if it stops compiling, the harness is
// rejecting good code, not catching bad code.
#include "util/thread_annotations.hpp"

class Counter {
public:
    void bump() RECOIL_EXCLUDES(mu_) {
        recoil::util::MutexLock lk(mu_);
        bump_locked();
    }

    long value() const RECOIL_EXCLUDES(mu_) {
        recoil::util::MutexLock lk(mu_);
        return value_;
    }

private:
    void bump_locked() RECOIL_REQUIRES(mu_) { ++value_; }

    mutable recoil::util::Mutex mu_;
    long value_ RECOIL_GUARDED_BY(mu_) = 0;
};

void drive(Counter& c) { c.bump(); }
