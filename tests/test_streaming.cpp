// Tests for the streaming serve pipeline: the pull-based WireSink/WireSource
// path from asset to v2 frame. Bit-exactness is the anchor — for every asset
// kind (static file, indexed file, chunked) and for both full-asset and
// range requests, concatenating all streamed body frames must yield exactly
// the bytes of the v1 materialized response. On top of that: hostile
// mid-stream frames surface as typed errors, unload()/evict() mid-stream
// never invalidates in-flight segments (the stream pins its buffers),
// streaming leaders coalesce both materialized and streamed followers, the
// stale-put gate holds for streams, and the producer's memory stays bounded
// by the flow-control window, not the wire.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "serve/session.hpp"
#include "serve/store.hpp"
#include "test_util.hpp"
#include "util/executor.hpp"

namespace recoil::serve {
namespace {

constexpr u8 kAcceptStream = kAcceptAll | kAcceptStreamed;

std::vector<std::vector<u8>> collect_frames(ServeStream stream) {
    std::vector<std::vector<u8>> frames;
    while (auto f = stream.next_frame()) frames.push_back(std::move(*f));
    return frames;
}

ServeResult reassemble(const std::vector<std::vector<u8>>& frames,
                       u64 max_frame_bytes = kNoFrameLimit) {
    StreamReassembler ra(max_frame_bytes);
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const bool done = ra.feed(frames[i]);
        EXPECT_EQ(done, i + 1 == frames.size()) << "frame " << i;
    }
    return ra.result();
}

/// Recompute the FNV trailer after tampering, as an attacker can.
std::vector<u8> reseal(std::vector<u8> f) {
    f.resize(f.size() - 8);
    const u64 sum = format::fnv1a(f);
    for (int i = 0; i < 8; ++i) f.push_back(static_cast<u8>(sum >> (8 * i)));
    return f;
}

format::RecoilFile indexed_file(std::span<const u8> syms, u32 max_splits) {
    std::vector<u8> ids(syms.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
        ids[i] = static_cast<u8>((i / 7) % 2);
    std::vector<u64> c0(256, 1), c1(256, 1);
    for (std::size_t i = 0; i < syms.size(); ++i)
        (ids[i] == 0 ? c0 : c1)[syms[i]]++;
    std::vector<StaticModel> models{StaticModel(c0, 11), StaticModel(c1, 11)};
    format::RecoilFile f;
    f.sym_width = 1;
    f.prob_bits = 11;
    format::RecoilFile::IndexedPayload p;
    for (const StaticModel& m : models) {
        std::vector<u32> freq(m.alphabet());
        for (u32 s = 0; s < m.alphabet(); ++s) freq[s] = m.freq(s);
        p.freqs.push_back(std::move(freq));
    }
    p.ids = ids;
    IndexedModelSet set(std::move(models), ids);
    auto enc = recoil_encode<Rans32, 32>(syms, set, max_splits);
    f.metadata = std::move(enc.metadata);
    f.units = std::move(enc.bitstream.units);
    f.model = std::move(p);
    return f;
}

/// One asset of every kind over the same symbol stream.
struct StreamingFixture : ::testing::Test {
    static constexpr u64 kN = 60000;
    std::vector<u8> data;
    ContentServer server;

    StreamingFixture() : data(test::geometric_symbols<u8>(kN, 0.55, 256, 11)) {
        server.store().encode_bytes("static", data, 16);
        server.store().add_file("indexed", indexed_file(data, 16));
        stream::ChunkedEncoder enc({11, 8});
        for (u64 off = 0; off < kN; off += kN / 4)
            enc.add_chunk(std::span<const u8>(data).subspan(off, kN / 4));
        server.store().add_chunked("chunked", enc.finish());
    }
};

TEST_F(StreamingFixture, StreamedBytesAreBitExactWithV1ForEveryKindAndShape) {
    // Small frames force many body frames; the reassembly must still equal
    // the single materialized wire byte for byte.
    StreamOptions opt;
    opt.max_frame_bytes = 4096;
    for (const char* name : {"static", "indexed", "chunked"}) {
        for (const bool ranged : {false, true}) {
            ServeRequest req{name, 8, std::nullopt, kAcceptStream};
            if (ranged) req.range = {{kN / 3, kN / 3 + 9000}};
            server.cache().clear();
            const ServeResult ref = server.serve(req);
            ASSERT_TRUE(ref.ok()) << name << ": " << ref.detail;

            server.cache().clear();
            auto frames = collect_frames(server.serve_stream(req, opt));
            ASSERT_GE(frames.size(), 3u) << name;  // header + bodies + FIN
            const ServeResult got = reassemble(frames, opt.max_frame_bytes);
            ASSERT_TRUE(got.ok()) << name << ": " << got.detail;
            EXPECT_EQ(got.payload, ref.payload) << name;
            EXPECT_EQ(got.stats.splits_served, ref.stats.splits_served) << name;
            ASSERT_NE(got.wire, nullptr);
            EXPECT_EQ(*got.wire, *ref.wire)
                << name << (ranged ? " range" : " full")
                << ": streamed reassembly diverges from the v1 wire";
        }
    }
}

TEST_F(StreamingFixture, AdaptiveFramingShipsTheMetadataPrefixInSmallFrames) {
    // Adaptive sizing: the metadata-dense structural prefix (header, model,
    // split plan — owned pieces) rides in frames capped at
    // prefix_frame_bytes, so a client can start planning its decode before
    // the payload arrives; payload frames then run at max_frame_bytes. The
    // reassembled wire is bit-exact either way — framing never changes
    // bytes, only their grouping.
    for (const char* name : {"static", "chunked"}) {
        const ServeRequest req{name, 8, std::nullopt, kAcceptStream};
        server.cache().clear();
        const ServeResult ref = server.serve(req);
        ASSERT_TRUE(ref.ok()) << ref.detail;

        StreamOptions adaptive;
        adaptive.max_frame_bytes = 64 * 1024;
        adaptive.prefix_frame_bytes = 1024;
        adaptive.use_cache = false;  // force a producer-backed cold stream
        server.cache().clear();
        auto frames = collect_frames(server.serve_stream(req, adaptive));

        std::vector<u64> body_sizes;
        for (const auto& f : frames) {
            const StreamFrame parsed =
                decode_stream_frame(f, adaptive.max_frame_bytes);
            if (parsed.type == StreamFrameType::body)
                body_sizes.push_back(parsed.payload.size());
        }
        ASSERT_GE(body_sizes.size(), 2u) << name;
        // The first frame is a small prefix frame; some later frame carries
        // payload well past the prefix cap.
        EXPECT_LE(body_sizes.front(), adaptive.prefix_frame_bytes) << name;
        EXPECT_GT(*std::max_element(body_sizes.begin(), body_sizes.end()),
                  adaptive.prefix_frame_bytes)
            << name << ": no frame ever outgrew the prefix cap";
        EXPECT_EQ(*reassemble(frames, adaptive.max_frame_bytes).wire,
                  *ref.wire)
            << name;

        // Adaptive off: frames may pack metadata and payload together (the
        // first frame's size depends on producer timing — the consumer
        // flushes rather than stalls — so only the adaptive path makes a
        // promise about it). The wire is identical regardless of framing.
        StreamOptions uniform = adaptive;
        uniform.adaptive_frames = false;
        server.cache().clear();
        auto uframes = collect_frames(server.serve_stream(req, uniform));
        EXPECT_EQ(*reassemble(uframes, uniform.max_frame_bytes).wire,
                  *ref.wire)
            << name;
    }
}

TEST_F(StreamingFixture, WarmStreamsReplayTheCacheEntry) {
    const ServeRequest req{"static", 8, std::nullopt, kAcceptStream};
    const ServeResult ref = server.serve(req);  // populates the cache
    auto stream = server.serve_stream(req);
    EXPECT_TRUE(stream.head().stats.cache_hit);
    EXPECT_EQ(stream.head().stats.wire_bytes, ref.wire->size());
    const ServeResult got = reassemble(collect_frames(std::move(stream)));
    EXPECT_EQ(*got.wire, *ref.wire);
    EXPECT_TRUE(got.stats.cache_hit);
}

TEST_F(StreamingFixture, ErrorsAreASingleTypedHeaderFrame) {
    auto missing = collect_frames(
        server.serve_stream({"nope", 1, std::nullopt, kAcceptStream}));
    ASSERT_EQ(missing.size(), 1u);
    StreamReassembler ra;
    EXPECT_TRUE(ra.feed(missing[0]));
    EXPECT_EQ(ra.result().code, ErrorCode::unknown_asset);

    // Negotiation: a client that never accepted the streamed framing.
    auto refused = collect_frames(
        server.serve_stream({"static", 1, std::nullopt, kAcceptAll}));
    ASSERT_EQ(refused.size(), 1u);
    StreamReassembler ra2;
    EXPECT_TRUE(ra2.feed(refused[0]));
    EXPECT_EQ(ra2.result().code, ErrorCode::not_acceptable);

    auto bad_range = collect_frames(server.serve_stream(
        {"static", 1, {{kN, kN + 1}}, kAcceptStream}));
    ASSERT_EQ(bad_range.size(), 1u);
    StreamReassembler ra3;
    EXPECT_TRUE(ra3.feed(bad_range[0]));
    EXPECT_EQ(ra3.result().code, ErrorCode::invalid_range);
}

TEST_F(StreamingFixture, HostileMidStreamFramesAreTypedErrors) {
    StreamOptions opt;
    opt.max_frame_bytes = 4096;
    const auto frames = collect_frames(server.serve_stream(
        {"chunked", 4, std::nullopt, kAcceptStream}, opt));
    ASSERT_GE(frames.size(), 4u);

    // Truncation of any frame at any boundary: typed, never a crash.
    for (std::size_t fi : {std::size_t{0}, std::size_t{1}, frames.size() - 1}) {
        const auto& f = frames[fi];
        for (std::size_t len : {std::size_t{0}, std::size_t{3}, f.size() / 2,
                                f.size() - 1}) {
            std::vector<u8> cut(f.begin(), f.begin() + len);
            try {
                decode_stream_frame(cut);
                FAIL() << "frame " << fi << " truncated to " << len;
            } catch (const ProtocolError& e) {
                EXPECT_TRUE(e.code() == ErrorCode::malformed_frame ||
                            e.code() == ErrorCode::checksum_mismatch);
            }
        }
    }

    // A flipped bit anywhere in a body frame: the frame checksum catches it.
    {
        const auto& body = frames[1];
        for (std::size_t pos = 0; pos < body.size(); pos += 7) {
            std::vector<u8> bad = body;
            bad[pos] ^= 0x20;
            EXPECT_THROW(decode_stream_frame(bad), ProtocolError) << pos;
        }
    }

    // Resealed payload corruption: the per-frame checksum is defeated, so
    // the FIN's whole-wire FNV must catch it — typed checksum_mismatch.
    {
        auto bad = frames;
        bad[1][25] ^= 0x01;  // inside the body payload
        bad[1] = reseal(std::move(bad[1]));
        StreamReassembler ra(opt.max_frame_bytes);
        try {
            for (const auto& f : bad) ra.feed(f);
            FAIL() << "resealed mid-stream corruption was accepted";
        } catch (const ProtocolError& e) {
            EXPECT_EQ(e.code(), ErrorCode::checksum_mismatch);
        }
    }

    // Reordered / duplicated / dropped body frames: typed malformed_frame.
    {
        StreamReassembler ra;
        ra.feed(frames[0]);
        ra.feed(frames[1]);
        EXPECT_THROW(ra.feed(frames[1]), ProtocolError);  // duplicate seq
    }
    {
        StreamReassembler ra;
        ra.feed(frames[0]);
        EXPECT_THROW(ra.feed(frames[2]), ProtocolError);  // skipped seq
    }
    {
        StreamReassembler ra;
        EXPECT_THROW(ra.feed(frames[1]), ProtocolError);  // body before header
    }
    {
        StreamReassembler ra;
        ra.feed(frames[0]);
        EXPECT_THROW(ra.feed(frames.back()), ProtocolError);  // early FIN
    }
}

TEST(StreamingProtocol, FrameTooLargeIsEnforcedAtBothBoundaries) {
    const std::vector<u8> payload(2048, 0xAB);

    // v2 encode: an oversized body is never produced.
    try {
        encode_stream_body(0, payload, 1024);
        FAIL() << "oversized body frame was encoded";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ErrorCode::frame_too_large);
    }
    // v2 decode: an oversized frame is rejected against the negotiated max.
    const auto frame = encode_stream_body(0, payload, kNoFrameLimit);
    try {
        decode_stream_frame(frame, 1024);
        FAIL() << "oversized body frame was decoded";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ErrorCode::frame_too_large);
    }
    EXPECT_NO_THROW(decode_stream_frame(frame, 2048));

    // Header and FIN frames are exempt from the body ceiling: a typed error
    // header with a long detail must come through under a small negotiated
    // max, not be masked as frame_too_large.
    StreamHeader err;
    err.code = ErrorCode::unknown_asset;
    err.detail = std::string(8192, 'x');
    const auto header_frame = encode_stream_header(err);
    ASSERT_GT(header_frame.size(), 1024u + 64u);
    const StreamFrame decoded = decode_stream_frame(header_frame, 1024);
    EXPECT_EQ(decoded.header.code, ErrorCode::unknown_asset);
    StreamFin abort_fin;
    abort_fin.code = ErrorCode::internal;
    abort_fin.detail = std::string(4096, 'y');
    EXPECT_NO_THROW(decode_stream_frame(encode_stream_fin(abort_fin), 1024));

    // v1 responses: the same negotiated ceiling applies whole-frame.
    ServeResult res;
    res.code = ErrorCode::ok;
    res.payload = PayloadKind::file;
    res.wire = std::make_shared<const std::vector<u8>>(
        std::vector<u8>(4096, 0x5C));
    try {
        encode_response(res, 1000);
        FAIL() << "oversized v1 response was encoded";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ErrorCode::frame_too_large);
    }
    const auto v1 = encode_response(res);
    try {
        decode_response(v1, 1000);
        FAIL() << "oversized v1 response was decoded";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ErrorCode::frame_too_large);
    }
    EXPECT_NO_THROW(decode_response(v1, v1.size()));
}

TEST(StreamingLifecycle, UnloadAndEvictMidStreamKeepInFlightSegmentsValid) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "recoil_stream_lifecycle";
    fs::remove_all(dir);

    auto data = test::geometric_symbols<u8>(120000, 0.6, 256, 5);
    ContentServer server;
    server.store().attach_backing(std::make_shared<DiskStore>(dir));
    server.store().encode_bytes("asset", data, 32);
    const ServeRequest req{"asset", 8, std::nullopt, kAcceptStream};
    const ServeResult ref = server.serve(req);
    ASSERT_TRUE(ref.ok());

    // unload() drops the in-memory asset, so the next resolve demand-loads a
    // zero-copy view of the mmapped container — the regime where mid-stream
    // lifecycle races would bite if the stream did not pin its buffers.
    ASSERT_TRUE(server.unload_asset("asset"));
    StreamOptions opt;
    opt.max_frame_bytes = 4096;
    opt.use_cache = false;  // stream straight from the asset's views
    auto stream = server.serve_stream(req, opt);
    std::vector<std::vector<u8>> frames;
    frames.push_back(*stream.next_frame());  // header
    frames.push_back(*stream.next_frame());  // first body

    // Half-drained: drop the asset from memory, then evict it everywhere
    // (cache, memory, disk). The stream holds the asset and its mapping.
    ASSERT_TRUE(server.unload_asset("asset"));
    frames.push_back(*stream.next_frame());
    ASSERT_TRUE(server.evict_asset("asset"));
    while (auto f = stream.next_frame()) frames.push_back(std::move(*f));

    const ServeResult got = reassemble(frames, opt.max_frame_bytes);
    ASSERT_TRUE(got.ok()) << got.detail;
    EXPECT_EQ(*got.wire, *ref.wire)
        << "segments emitted across unload/evict diverged";

    // The asset is really gone for new requests.
    EXPECT_EQ(server.serve(req).code, ErrorCode::unknown_asset);
    fs::remove_all(dir);
}

TEST_F(StreamingFixture, StreamingLeaderCoalescesMaterializedAndStreamedFollowers) {
    const ServeRequest req{"static", 6, std::nullopt, kAcceptStream};
    server.cache().clear();
    const auto before = server.totals();

    // A tiny window keeps the leader's producer blocked on the consumer, so
    // the flight stays live while followers attach mid-stream.
    StreamOptions opt;
    opt.max_frame_bytes = 2048;
    opt.window_bytes = 2048;
    auto leader = server.serve_stream(req, opt);
    ASSERT_FALSE(leader.head().stats.coalesced);
    std::vector<std::vector<u8>> leader_frames;
    leader_frames.push_back(*leader.next_frame());  // header
    leader_frames.push_back(*leader.next_frame());  // first body

    // Streamed follower: replays the leader's bytes as they are committed.
    auto follower_stream = server.serve_stream(req, opt);
    EXPECT_TRUE(follower_stream.head().stats.coalesced);

    ServeResult follower_res;
    std::thread materialized([&] {
        follower_res = server.serve(ServeRequest{"static", 6, std::nullopt});
    });
    std::vector<std::vector<u8>> follower_frames;
    std::thread streamed([&] {
        follower_frames = collect_frames(std::move(follower_stream));
    });

    while (auto f = leader.next_frame()) leader_frames.push_back(std::move(*f));
    materialized.join();
    streamed.join();

    const ServeResult got_leader = reassemble(leader_frames, opt.max_frame_bytes);
    const ServeResult got_follower =
        reassemble(follower_frames, opt.max_frame_bytes);
    ASSERT_TRUE(got_leader.ok());
    ASSERT_TRUE(got_follower.ok());
    ASSERT_TRUE(follower_res.ok()) << follower_res.detail;
    EXPECT_EQ(*got_follower.wire, *got_leader.wire);
    EXPECT_EQ(*follower_res.wire, *got_leader.wire);
    EXPECT_TRUE(got_follower.stats.coalesced);

    const auto after = server.totals();
    EXPECT_GE(after.coalesced_requests - before.coalesced_requests, 1u);
    // The leader's assembly became the cache entry: the next request hits.
    auto warm = server.serve(ServeRequest{"static", 6, std::nullopt});
    EXPECT_TRUE(warm.stats.cache_hit);
    EXPECT_EQ(*warm.wire, *got_leader.wire);
}

TEST_F(StreamingFixture, AbandonedLeaderStillCompletesFollowersAndCache) {
    const ServeRequest req{"indexed", 4, std::nullopt, kAcceptStream};
    server.cache().clear();
    StreamOptions opt;
    opt.max_frame_bytes = 1024;
    opt.window_bytes = 1024;

    ServeResult follower_res;
    std::thread follower;
    {
        auto leader = server.serve_stream(req, opt);
        (void)leader.next_frame();  // header only, then walk away
        follower = std::thread([&] {
            follower_res = server.serve(ServeRequest{"indexed", 4, std::nullopt});
        });
        while (server.coalescing_waiters() == 0) std::this_thread::yield();
        // Leader destroyed here, half-drained: it must switch to drain mode
        // and finish the assembly for the parked follower and the cache.
    }
    follower.join();
    ASSERT_TRUE(follower_res.ok()) << follower_res.detail;
    const ServeResult ref = server.serve(ServeRequest{"indexed", 4, std::nullopt});
    EXPECT_TRUE(ref.stats.cache_hit);
    EXPECT_EQ(*follower_res.wire, *ref.wire);
}

TEST_F(StreamingFixture, TinyWindowProducerYieldsAndResumesOnTheExecutor) {
    // The producer is a resumable executor task: a window far smaller than
    // the wire forces it through many WindowFull yield/re-submit cycles,
    // each resume re-running the deterministic serializer and skipping the
    // bytes already staged. Every resubmission is a fresh task execution,
    // so the executor's executed_total must grow by well more than one —
    // and the reassembled bytes must not show a seam at any restart point.
    const ServeRequest req{"static", 8, std::nullopt, kAcceptStream};
    server.cache().clear();
    const ServeResult ref = server.serve(req);
    ASSERT_TRUE(ref.ok());

    server.cache().clear();
    StreamOptions opt;
    opt.max_frame_bytes = 1024;
    opt.window_bytes = 1024;
    // A consumer that keeps pace can ride the WindowFull handler's
    // drained-already re-check and keep the producer inside one task
    // execution; quiescing between pulls forces the full yield each time,
    // so every window refill is a distinct execution.
    const auto quiesce = [] {
        for (;;) {
            const auto s = util::global_executor().stats();
            if (s.queued == 0 && s.running == 0) return;
            std::this_thread::yield();
        }
    };
    const auto ex0 = util::global_executor().stats();
    auto stream = server.serve_stream(req, opt);
    std::vector<std::vector<u8>> frames;
    quiesce();
    while (auto f = stream.next_frame()) {
        frames.push_back(std::move(*f));
        quiesce();
    }
    const auto ex1 = util::global_executor().stats();

    const ServeResult got = reassemble(frames, opt.max_frame_bytes);
    ASSERT_TRUE(got.ok()) << got.detail;
    EXPECT_EQ(*got.wire, *ref.wire)
        << "yield/resume restarts corrupted the stream";
    // A 1 KiB window over a multi-KiB wire refills many times; require a
    // conservative floor so the test proves the producer actually cycled
    // through the executor rather than running once.
    EXPECT_GE(ex1.executed_total - ex0.executed_total, 4u);
}

TEST_F(StreamingFixture, EraseWhileProducerIsYieldedKeepsTheStreamBitExact) {
    // Park the producer in the yielded state (window full, no task queued
    // or running), erase the asset underneath it, then resume draining:
    // the stream's pinned shared_ptr must keep the asset's storage valid
    // across every restart of the serializer.
    const ServeRequest req{"chunked", 4, std::nullopt, kAcceptStream};
    server.cache().clear();
    const ServeResult ref = server.serve(ServeRequest{"chunked", 4, std::nullopt});
    ASSERT_TRUE(ref.ok());

    StreamOptions opt;
    opt.max_frame_bytes = 512;
    opt.window_bytes = 512;
    opt.use_cache = false;  // solo stream: only the pin holds the asset
    auto stream = server.serve_stream(req, opt);
    std::vector<std::vector<u8>> frames;
    frames.push_back(*stream.next_frame());  // header
    frames.push_back(*stream.next_frame());  // first body: started + yielded

    ASSERT_TRUE(server.store().erase("chunked"));
    while (auto f = stream.next_frame()) frames.push_back(std::move(*f));

    const ServeResult got = reassemble(frames, opt.max_frame_bytes);
    ASSERT_TRUE(got.ok()) << got.detail;
    EXPECT_EQ(*got.wire, *ref.wire)
        << "resume after erase served different bytes";
}

TEST(StreamingGate, StalePutGateHoldsForStreams) {
    // Evict the asset while its stream is being produced: the bytes keep
    // flowing (requests that began before the eviction complete), but the
    // assembled wire must NOT enter the cache for a dead generation.
    auto data = test::geometric_symbols<u8>(30000, 0.5, 256, 21);
    ContentServer reference;
    reference.store().encode_bytes("doomed", data, 8);
    const ServeResult ref = reference.serve({"doomed", 4, std::nullopt});
    ASSERT_TRUE(ref.ok());

    ContentServer* srv = nullptr;
    bool evicted = false;
    ServerOptions hooked_opt;
    hooked_opt.combine_hook = [&](const std::string&) {
        if (!evicted) {
            evicted = true;
            srv->evict_asset("doomed");
        }
    };
    ContentServer hooked(hooked_opt);
    srv = &hooked;
    hooked.store().encode_bytes("doomed", data, 8);
    auto frames = collect_frames(
        hooked.serve_stream({"doomed", 4, std::nullopt, kAcceptStream}));
    const ServeResult got = reassemble(frames);
    ASSERT_TRUE(got.ok()) << got.detail;
    EXPECT_EQ(*got.wire, *ref.wire);
    EXPECT_EQ(hooked.cache().stats().insertions, 0u)
        << "a stream for an evicted asset re-entered the cache";
    EXPECT_EQ(hooked.serve({"doomed", 4, std::nullopt}).code,
              ErrorCode::unknown_asset);
}

TEST(StreamingMemory, ProducerStaysInsideTheWindowNotTheWire) {
    auto data = test::geometric_symbols<u8>(1'500'000, 0.8, 256, 9);
    ContentServer server;
    server.store().encode_bytes("big", data, 64);
    const ServeRequest req{"big", 64, std::nullopt, kAcceptStream};
    const ServeResult ref = server.serve(req);
    ASSERT_TRUE(ref.ok());
    const u64 wire = ref.wire->size();
    ASSERT_GT(wire, u64{1} << 19);  // far above the window

    StreamOptions opt;
    opt.max_frame_bytes = 16384;
    opt.window_bytes = 65536;
    opt.use_cache = false;  // the too-big-to-cache regime: no assembly at all
    auto stream = server.serve_stream(req, opt);
    std::vector<std::vector<u8>> frames;
    while (auto f = stream.next_frame()) frames.push_back(std::move(*f));
    const u64 peak_staged = stream.peak_staged_bytes();
    const u64 peak_owned = stream.peak_owned_bytes();

    EXPECT_LE(peak_staged, opt.window_bytes + opt.max_frame_bytes)
        << "flow-control window was not respected";
    EXPECT_LT(peak_owned, wire / 8)
        << "producer held O(wire) owned bytes; streaming should hold "
           "O(max segment)";
    const ServeResult got = reassemble(frames, opt.max_frame_bytes);
    EXPECT_EQ(*got.wire, *ref.wire);
}

TEST_F(StreamingFixture, SessionChunkCallbackApiDeliversTheStream) {
    const ServeRequest req{"chunked", 8, std::nullopt, kAcceptStream};
    server.cache().clear();
    const ServeResult ref = server.serve(req);

    Session session(server, {2});
    std::mutex mu;
    std::vector<std::vector<u8>> frames;
    StreamOptions opt;
    opt.max_frame_bytes = 8192;
    auto fut = session.submit_stream(
        req,
        [&](std::span<const u8> frame) {
            std::scoped_lock lk(mu);
            frames.emplace_back(frame.begin(), frame.end());
        },
        opt);
    const ServeResult head = fut.get();
    ASSERT_TRUE(head.ok()) << head.detail;
    EXPECT_EQ(head.wire, nullptr);  // frames were the payload
    const ServeResult got = reassemble(frames, opt.max_frame_bytes);
    EXPECT_EQ(*got.wire, *ref.wire);
}

TEST(CacheGauges, PeakBytesIsAHighWaterMarkThatSurvivesClear) {
    MetadataCache cache(1000);
    auto wire = [](std::size_t n) {
        return std::make_shared<const std::vector<u8>>(std::vector<u8>(n, 1));
    };
    cache.put("a", 1, wire(400));
    cache.put("b", 1, wire(500));
    EXPECT_EQ(cache.stats().peak_bytes, 900u);
    cache.put("c", 1, wire(300));  // evicts down, but peak saw 1200
    EXPECT_EQ(cache.stats().peak_bytes, 1200u);
    EXPECT_LE(cache.stats().bytes, 1000u);
    cache.clear();
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_EQ(cache.stats().peak_bytes, 1200u) << "peak must survive clear()";
    cache.put("d", 1, wire(100));
    EXPECT_EQ(cache.stats().peak_bytes, 1200u);
}

TEST(StoreScrub, VerifyReportsCorruptAssetsAsTypedIssues) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "recoil_verify_store";
    fs::remove_all(dir);
    {
        AssetStore store;
        store.attach_backing(std::make_shared<DiskStore>(dir));
        store.encode_bytes("good", test::geometric_symbols<u8>(9000, 0.5, 256, 1), 4);
        store.encode_bytes("bad", test::geometric_symbols<u8>(9000, 0.5, 256, 2), 4);
    }
    {
        DiskStore store(dir);
        EXPECT_TRUE(store.verify().ok());
        EXPECT_EQ(store.verify().checked, 2u);
    }
    // Flip one byte in the middle of "bad"'s container.
    for (const auto& entry : fs::directory_iterator(dir)) {
        const auto name = entry.path().filename().string();
        if (name.starts_with("bad") && entry.path().extension() == ".rca") {
            std::fstream f(entry.path(),
                           std::ios::in | std::ios::out | std::ios::binary);
            f.seekp(static_cast<std::streamoff>(entry.file_size() / 2));
            char c;
            f.seekg(static_cast<std::streamoff>(entry.file_size() / 2));
            f.read(&c, 1);
            c = static_cast<char>(c ^ 0x10);
            f.seekp(static_cast<std::streamoff>(entry.file_size() / 2));
            f.write(&c, 1);
        }
    }
    DiskStore store(dir);
    const auto report = store.verify();
    EXPECT_EQ(report.checked, 2u);
    ASSERT_EQ(report.issues.size(), 1u);
    EXPECT_EQ(report.issues[0].name, "bad");
    EXPECT_EQ(report.issues[0].status, StoreStatus::bad_container);
    fs::remove_all(dir);
}

}  // namespace
}  // namespace recoil::serve
