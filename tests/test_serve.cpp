// Tests for the serve subsystem: LRU wire cache semantics, combined-metadata
// serving correctness (served wire decodes bit-exact against a direct full
// decode), byte-range serving across all three asset kinds (static file,
// indexed file, chunked stream), typed error codes, and content negotiation.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/recoil_decoder.hpp"
#include "serve/server.hpp"
#include "simd/dispatch.hpp"
#include "test_util.hpp"
#include "util/xoshiro.hpp"
#include "workload/datasets.hpp"

namespace recoil::serve {
namespace {

std::shared_ptr<const std::vector<u8>> make_wire(std::size_t n, u8 fill) {
    return std::make_shared<const std::vector<u8>>(n, fill);
}

TEST(MetadataCache, HitMissAndByteAccounting) {
    MetadataCache cache(1000);
    EXPECT_EQ(cache.get("a", 8), nullptr);
    cache.put("a", 8, make_wire(400, 1));
    cache.put("a", 16, make_wire(400, 2));
    auto hit = cache.get("a", 8);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->front(), 1);

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.bytes, 800u);
}

TEST(MetadataCache, LruEvictionOrderRespectsRecency) {
    MetadataCache cache(1000);
    cache.put("a", 1, make_wire(400, 1));
    cache.put("a", 2, make_wire(400, 2));
    ASSERT_NE(cache.get("a", 1), nullptr);  // refresh entry 1
    cache.put("a", 3, make_wire(400, 3));   // over capacity: evicts entry 2
    EXPECT_NE(cache.get("a", 1), nullptr);
    EXPECT_NE(cache.get("a", 3), nullptr);
    EXPECT_EQ(cache.get("a", 2), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(MetadataCache, OversizedPayloadIsNotCached) {
    MetadataCache cache(100);
    cache.put("a", 1, make_wire(500, 1));
    EXPECT_EQ(cache.get("a", 1), nullptr);
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(MetadataCache, EraseAssetDropsDerivedKeysToo) {
    MetadataCache cache(10000);
    cache.put("a", 1, make_wire(10, 1));
    cache.put("a\nrange:5-9", 0, make_wire(10, 2));
    cache.put("ab", 1, make_wire(10, 3));  // prefix but not derived
    cache.erase_asset("a");
    EXPECT_EQ(cache.get("a", 1), nullptr);
    EXPECT_EQ(cache.get("a\nrange:5-9", 0), nullptr);
    EXPECT_NE(cache.get("ab", 1), nullptr);
}

struct ServeFixture : ::testing::Test {
    static constexpr u64 kSymbols = 200000;
    static constexpr u32 kMaxSplits = 64;

    std::vector<u8> data;
    ContentServer server;
    std::shared_ptr<const Asset> asset;

    ServeFixture()
        : data(test::geometric_symbols<u8>(kSymbols, 0.6, 256, 11)),
          asset(server.store().encode_bytes("asset", data, kMaxSplits)) {}

    std::vector<u8> decode_full_wire(std::span<const u8> wire) {
        auto got = format::load_recoil_file(wire);
        auto model = got.build_static_model();
        ThreadPool pool(2);
        simd::SimdRangeFn<u8> range;
        return recoil_decode<Rans32, 32, u8>(std::span<const u16>(got.units),
                                             got.metadata, model.tables(), &pool,
                                             nullptr, range);
    }
};

TEST_F(ServeFixture, AssetKindsReportTheirShape) {
    EXPECT_EQ(asset->kind(), AssetKind::static_file);
    EXPECT_EQ(asset->payload_kind(), PayloadKind::file);
    EXPECT_EQ(asset->num_symbols(), kSymbols);
    EXPECT_NE(asset->file(), nullptr);
    EXPECT_EQ(asset->chunked(), nullptr);
    EXPECT_STREQ(kind_name(asset->kind()), "static_file");
}

TEST_F(ServeFixture, SecondRequestIsACacheHitWithIdenticalBytes) {
    const ServeRequest req{"asset", 16, std::nullopt};
    auto cold = server.serve(req);
    ASSERT_TRUE(cold.ok()) << cold.detail;
    EXPECT_FALSE(cold.stats.cache_hit);
    EXPECT_EQ(cold.payload, PayloadKind::file);

    auto warm = server.serve(req);
    ASSERT_TRUE(warm.ok()) << warm.detail;
    EXPECT_TRUE(warm.stats.cache_hit);
    EXPECT_EQ(warm.wire, cold.wire);  // shared, not recombined or copied

    auto other = server.serve(ServeRequest{"asset", 8, std::nullopt});
    ASSERT_TRUE(other.ok());
    EXPECT_FALSE(other.stats.cache_hit);  // distinct parallelism, distinct entry

    const auto t = server.totals();
    EXPECT_EQ(t.requests, 3u);
    EXPECT_EQ(t.cache_hits, 1u);
    EXPECT_EQ(t.failures, 0u);
    EXPECT_EQ(t.bytes_saved, warm.stats.wire_bytes);
}

TEST_F(ServeFixture, CombinedWireDecodesBitExactAtEveryParallelism) {
    const std::vector<u8> direct = recoil_decode<Rans32, 32, u8>(
        std::span<const u16>(asset->file()->units), asset->file()->metadata,
        asset->file()->build_static_model().tables());
    ASSERT_EQ(direct, data);

    for (u32 p : {1u, 2u, 7u, 16u, 64u, 5000u}) {
        auto res = server.serve(ServeRequest{"asset", p, std::nullopt});
        ASSERT_TRUE(res.ok()) << res.detail;
        auto got = format::load_recoil_file(*res.wire);
        EXPECT_LE(got.metadata.num_splits(), std::min(p, kMaxSplits));
        EXPECT_EQ(res.stats.splits_served, got.metadata.num_splits());
        EXPECT_EQ(decode_full_wire(*res.wire), direct) << "parallelism " << p;
    }
}

TEST_F(ServeFixture, LowerParallelismShipsFewerWireBytes) {
    auto small = server.serve(ServeRequest{"asset", 2, std::nullopt});
    auto large = server.serve(ServeRequest{"asset", kMaxSplits, std::nullopt});
    ASSERT_TRUE(small.ok() && large.ok());
    EXPECT_LT(small.stats.wire_bytes, large.stats.wire_bytes);
    EXPECT_LE(large.stats.wire_bytes, asset->master_bytes());
}

TEST_F(ServeFixture, ChunkedAssetServesAndDecodes) {
    auto video = workload::gen_text(60000, 42);
    stream::ChunkedEncoder enc({11, 16});
    for (u64 off = 0; off < video.size(); off += 20000)
        enc.add_chunk(std::span<const u8>(video).subspan(off, 20000));
    auto chunked = server.store().add_chunked("video", enc.finish());
    EXPECT_EQ(chunked->kind(), AssetKind::chunked);
    EXPECT_EQ(chunked->payload_kind(), PayloadKind::chunked);

    auto res = server.serve(ServeRequest{"video", 8, std::nullopt});
    ASSERT_TRUE(res.ok()) << res.detail;
    EXPECT_EQ(res.payload, PayloadKind::chunked);
    auto got = stream::ChunkedStream::parse(*res.wire);
    EXPECT_LE(got.total_splits(), 8u + got.chunks.size());
    EXPECT_EQ(res.stats.splits_served, got.total_splits());
    EXPECT_EQ(stream::decode_chunked(got), video);
}

TEST_F(ServeFixture, RangeServingMatchesFullDecodeEverywhere) {
    Xoshiro256 rng(77);
    ThreadPool pool(2);
    for (int iter = 0; iter < 25; ++iter) {
        const u64 lo = rng.below(kSymbols - 1);
        const u64 hi = lo + 1 + rng.below(std::min<u64>(kSymbols - lo, 9000));
        auto res = server.serve(ServeRequest{"asset", 4, {{lo, hi}}});
        ASSERT_TRUE(res.ok()) << res.detail;
        EXPECT_EQ(res.payload, PayloadKind::range);
        auto part = decode_range_wire(*res.wire, &pool);
        ASSERT_EQ(part.size(), hi - lo);
        EXPECT_TRUE(std::equal(part.begin(), part.end(), data.begin() + lo))
            << "range [" << lo << ", " << hi << ")";
    }
}

TEST_F(ServeFixture, RangeEdgeCases) {
    const auto& meta = asset->file()->metadata;
    ASSERT_GE(meta.splits.size(), 8u);

    std::vector<std::pair<u64, u64>> ranges = {
        {0, 1},                        // single symbol at the stream start
        {kSymbols - 1, kSymbols},      // single symbol at the stream end
        {kSymbols / 2, kSymbols / 2 + 1},
        {0, kSymbols},                 // full range
        {meta.splits[2].min_index, meta.splits[3].min_index},  // one whole split
        {meta.splits[2].min_index + 5, meta.splits[3].min_index - 5},  // inside it
        {meta.splits.back().min_index, kSymbols},  // final split only
    };
    for (auto [lo, hi] : ranges) {
        auto res = server.serve(ServeRequest{"asset", 1, {{lo, hi}}});
        ASSERT_TRUE(res.ok()) << res.detail << " [" << lo << ", " << hi << ")";
        auto info = inspect_range_wire(*res.wire);
        EXPECT_EQ(info.lo, lo);
        EXPECT_EQ(info.hi, hi);
        ASSERT_EQ(info.segments.size(), 1u);  // single-stream asset
        EXPECT_LE(info.segments[0].cover_lo, lo);
        EXPECT_GE(info.segments[0].cover_hi, hi);
        EXPECT_FALSE(info.segments[0].indexed);
        auto part = decode_range_wire(*res.wire);
        ASSERT_EQ(part.size(), hi - lo);
        EXPECT_TRUE(std::equal(part.begin(), part.end(), data.begin() + lo));
    }

    // A range confined to one split ships a fragment, not the asset.
    auto res = server.serve(
        ServeRequest{"asset", 1, {{meta.splits[2].min_index + 5,
                                   meta.splits[3].min_index - 5}}});
    ASSERT_TRUE(res.ok());
    EXPECT_LT(res.stats.wire_bytes, asset->master_bytes() / 4);
    EXPECT_LE(res.stats.splits_served, 3u);
}

TEST_F(ServeFixture, RangeOverChunkedAssetDecomposesPerChunk) {
    const u64 chunk_size = 20000;
    auto video = workload::gen_text(5 * chunk_size, 42);
    stream::ChunkedEncoder enc({11, 16});
    for (u64 off = 0; off < video.size(); off += chunk_size)
        enc.add_chunk(std::span<const u8>(video).subspan(off, chunk_size));
    server.store().add_chunked("video", enc.finish());

    const std::vector<std::pair<u64, u64>> ranges = {
        {0, 100},                               // inside the first chunk
        {chunk_size - 50, chunk_size + 50},     // straddles one boundary
        {chunk_size / 2, 4 * chunk_size + 10},  // spans several whole chunks
        {5 * chunk_size - 1, 5 * chunk_size},   // last symbol of the stream
        {0, 5 * chunk_size},                    // everything
    };
    for (auto [lo, hi] : ranges) {
        auto res = server.serve(ServeRequest{"video", 1, {{lo, hi}}});
        ASSERT_TRUE(res.ok()) << res.detail << " [" << lo << ", " << hi << ")";
        auto info = inspect_range_wire(*res.wire);
        const u64 expect_segments =
            std::min<u64>(5, hi / chunk_size + (hi % chunk_size != 0 ? 1 : 0)) -
            lo / chunk_size;
        EXPECT_EQ(info.segments.size(), expect_segments)
            << "[" << lo << ", " << hi << ")";
        auto part = decode_range_wire(*res.wire);
        ASSERT_EQ(part.size(), hi - lo);
        EXPECT_TRUE(std::equal(part.begin(), part.end(), video.begin() + lo))
            << "range [" << lo << ", " << hi << ")";
    }

    // A one-chunk slice of a five-chunk stream ships a fraction of the master.
    auto slice = server.serve(ServeRequest{"video", 1, {{0, 100}}});
    ASSERT_TRUE(slice.ok());
    EXPECT_LT(slice.stats.wire_bytes,
              server.store().find("video")->master_bytes() / 3);
}

struct IndexedServeFixture : ::testing::Test {
    static constexpr u64 kSymbols = 120000;

    std::vector<u8> syms;
    std::vector<u8> ids;
    ContentServer server;
    std::shared_ptr<const Asset> asset;

    IndexedServeFixture() {
        // Two alternating contexts with very different skews — the hyperprior
        // shape of §3.1 where the model id is selected per symbol index.
        Xoshiro256 rng(19);
        syms.resize(kSymbols);
        ids.resize(kSymbols);
        std::vector<u64> c0(256, 1), c1(256, 1);
        for (u64 i = 0; i < kSymbols; ++i) {
            ids[i] = static_cast<u8>((i / 11) % 2);
            const double q = ids[i] == 0 ? 0.3 : 0.85;
            u32 v = 0;
            while (v < 255 && rng.uniform() < q) ++v;
            syms[i] = static_cast<u8>(v);
            (ids[i] == 0 ? c0 : c1)[syms[i]]++;
        }
        std::vector<StaticModel> models{StaticModel(c0, 12), StaticModel(c1, 12)};

        format::RecoilFile f;
        f.sym_width = 1;
        f.prob_bits = 12;
        format::RecoilFile::IndexedPayload payload;
        for (const StaticModel& m : models) {
            std::vector<u32> freq(m.alphabet());
            for (u32 s = 0; s < m.alphabet(); ++s) freq[s] = m.freq(s);
            payload.freqs.push_back(std::move(freq));
        }
        payload.ids = ids;

        IndexedModelSet set(std::move(models), ids);
        auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), set, 48);
        f.metadata = std::move(enc.metadata);
        f.units = std::move(enc.bitstream.units);
        f.model = std::move(payload);
        asset = server.store().add_file("latents", std::move(f));
    }
};

TEST_F(IndexedServeFixture, IndexedAssetServesCombinedWires) {
    EXPECT_EQ(asset->kind(), AssetKind::indexed_file);
    for (u32 p : {1u, 5u, 48u}) {
        auto res = server.serve(ServeRequest{"latents", p, std::nullopt});
        ASSERT_TRUE(res.ok()) << res.detail;
        auto got = format::load_recoil_file(*res.wire);
        ASSERT_TRUE(got.is_indexed());
        auto set = got.build_indexed_model();
        auto dec = recoil_decode<Rans32, 32, u8>(std::span<const u16>(got.units),
                                                 got.metadata, set.tables());
        EXPECT_EQ(dec, syms) << "parallelism " << p;
    }
}

TEST_F(IndexedServeFixture, RangeOverIndexedAssetMatchesEverywhere) {
    Xoshiro256 rng(7);
    ThreadPool pool(2);
    std::vector<std::pair<u64, u64>> ranges = {
        {0, 1}, {kSymbols - 1, kSymbols}, {0, kSymbols}};
    for (int iter = 0; iter < 20; ++iter) {
        const u64 lo = rng.below(kSymbols - 1);
        ranges.push_back(
            {lo, lo + 1 + rng.below(std::min<u64>(kSymbols - lo, 8000))});
    }
    for (auto [lo, hi] : ranges) {
        auto res = server.serve(ServeRequest{"latents", 1, {{lo, hi}}});
        ASSERT_TRUE(res.ok()) << res.detail << " [" << lo << ", " << hi << ")";
        auto info = inspect_range_wire(*res.wire);
        ASSERT_EQ(info.segments.size(), 1u);
        EXPECT_TRUE(info.segments[0].indexed);
        auto part = decode_range_wire(*res.wire, &pool);
        ASSERT_EQ(part.size(), hi - lo);
        EXPECT_TRUE(std::equal(part.begin(), part.end(), syms.begin() + lo))
            << "range [" << lo << ", " << hi << ")";
    }
}

/// One asset of each kind over the same tiny symbol stream, so boundary
/// behavior can be asserted uniformly.
struct RangeBoundaryFixture : ::testing::Test {
    static constexpr u64 kN = 4000;
    std::vector<u8> data;
    ContentServer server;

    RangeBoundaryFixture() : data(test::geometric_symbols<u8>(kN, 0.5, 256, 3)) {
        server.store().encode_bytes("static", data, 8);

        stream::ChunkedEncoder enc({11, 4});
        enc.add_chunk(std::span<const u8>(data).first(kN / 2));
        enc.add_chunk(std::span<const u8>(data).subspan(kN / 2));
        server.store().add_chunked("chunked", enc.finish());

        server.store().add_file("indexed", indexed_file(data));
    }

    static format::RecoilFile indexed_file(std::span<const u8> syms) {
        std::vector<u8> ids(syms.size());
        for (std::size_t i = 0; i < ids.size(); ++i)
            ids[i] = static_cast<u8>(i % 2);
        std::vector<u64> c0(256, 1), c1(256, 1);
        for (std::size_t i = 0; i < syms.size(); ++i)
            (ids[i] == 0 ? c0 : c1)[syms[i]]++;
        std::vector<StaticModel> models{StaticModel(c0, 11), StaticModel(c1, 11)};
        format::RecoilFile f;
        f.sym_width = 1;
        f.prob_bits = 11;
        format::RecoilFile::IndexedPayload p;
        for (const StaticModel& m : models) {
            std::vector<u32> freq(m.alphabet());
            for (u32 s = 0; s < m.alphabet(); ++s) freq[s] = m.freq(s);
            p.freqs.push_back(std::move(freq));
        }
        p.ids = ids;
        IndexedModelSet set(std::move(models), ids);
        auto enc = recoil_encode<Rans32, 32>(syms, set, 4);
        f.metadata = std::move(enc.metadata);
        f.units = std::move(enc.bitstream.units);
        f.model = std::move(p);
        return f;
    }
};

TEST_F(RangeBoundaryFixture, EdgeRangesAreConsistentAcrossAssetKinds) {
    for (const char* name : {"static", "chunked", "indexed"}) {
        // Valid edges: first symbol, last symbol alone, range ending exactly
        // at the last symbol, everything.
        for (auto [lo, hi] : std::vector<std::pair<u64, u64>>{
                 {0, 1}, {kN - 1, kN}, {kN - 100, kN}, {0, kN}}) {
            auto res = server.serve(ServeRequest{name, 1, {{lo, hi}}});
            ASSERT_TRUE(res.ok())
                << name << " [" << lo << ", " << hi << "): " << res.detail;
            auto part = decode_range_wire(*res.wire);
            ASSERT_EQ(part.size(), hi - lo) << name;
            EXPECT_TRUE(std::equal(part.begin(), part.end(), data.begin() + lo))
                << name << " [" << lo << ", " << hi << ")";
        }
        // Degenerate and out-of-bounds ranges: one typed result for every
        // kind — invalid_range, never a crash or an unchecked slice.
        for (auto [lo, hi] : std::vector<std::pair<u64, u64>>{
                 {0, 0}, {kN / 2, kN / 2}, {kN, kN}, {5, 3}, {kN - 1, kN + 1},
                 {kN, kN + 1}}) {
            auto res = server.serve(ServeRequest{name, 1, {{lo, hi}}});
            EXPECT_EQ(res.code, ErrorCode::invalid_range)
                << name << " [" << lo << ", " << hi << ")";
            EXPECT_EQ(res.wire, nullptr);
        }
    }
}

TEST(RangeBoundary, OneSymbolAssetsServeTheirOnlyRange) {
    // A 1-symbol asset is the smallest slice a range can address: [0, 1)
    // must serve on every kind, and [0, 0) / [1, 1) must be typed errors.
    const std::vector<u8> one = {42};
    ContentServer server;
    server.store().encode_bytes("static", one, 4);
    stream::ChunkedEncoder enc({11, 4});
    enc.add_chunk(one);
    server.store().add_chunked("chunked", enc.finish());
    server.store().add_file("indexed", RangeBoundaryFixture::indexed_file(one));

    for (const char* name : {"static", "chunked", "indexed"}) {
        auto full = server.serve(ServeRequest{name, 4, std::nullopt});
        ASSERT_TRUE(full.ok()) << name << ": " << full.detail;

        auto res = server.serve(ServeRequest{name, 1, {{0, 1}}});
        ASSERT_TRUE(res.ok()) << name << ": " << res.detail;
        EXPECT_EQ(decode_range_wire(*res.wire), one) << name;

        for (auto [lo, hi] : std::vector<std::pair<u64, u64>>{
                 {0, 0}, {1, 1}, {0, 2}, {1, 2}}) {
            auto bad = server.serve(ServeRequest{name, 1, {{lo, hi}}});
            EXPECT_EQ(bad.code, ErrorCode::invalid_range)
                << name << " [" << lo << ", " << hi << ")";
        }
    }
}

TEST_F(RangeBoundaryFixture, SimdRangeDecodeIsBitExactWithScalarAtEveryEdge) {
    // The vectorized range decode (SimdRangeFn, and GuardedSimdRangeFn for
    // the indexed id slice) against the pinned scalar path, swept across
    // group boundaries (the kernels work in 32-symbol groups) and slice
    // edges where the guarded tail hands over to the per-symbol loop. On a
    // host without AVX the two decodes collapse to the same path and the
    // sweep still pins wire-vs-source bit-exactness.
    const simd::Backend best = simd::pick_backend();
    const std::vector<u64> los = {0,      1,          31,         32,
                                  33,     63,         64,         65,
                                  kN / 2, kN / 2 + 1, kN - 33,    kN - 32,
                                  kN - 31, kN - 1};
    const std::vector<u64> spans = {1, 2, 31, 32, 33, 64, 100, kN};
    for (const char* name : {"static", "chunked", "indexed"}) {
        for (u64 lo : los) {
            for (u64 span : spans) {
                const u64 hi = std::min<u64>(lo + span, kN);
                if (hi <= lo) continue;
                auto res = server.serve(ServeRequest{name, 1, {{lo, hi}}});
                ASSERT_TRUE(res.ok())
                    << name << " [" << lo << ", " << hi << "): " << res.detail;
                const auto vec =
                    decode_range_wire(*res.wire, nullptr, best);
                const auto sca = decode_range_wire(*res.wire, nullptr,
                                                   simd::Backend::Scalar);
                ASSERT_EQ(vec.size(), hi - lo) << name;
                EXPECT_EQ(vec, sca)
                    << name << " [" << lo << ", " << hi
                    << "): vector and scalar range decodes diverge";
                EXPECT_TRUE(
                    std::equal(vec.begin(), vec.end(), data.begin() + lo))
                    << name << " [" << lo << ", " << hi << ")";
            }
        }
    }
}

TEST_F(ServeFixture, RangeResponsesAreCachedUnderTheAssetKey) {
    const ServeRequest req{"asset", 1, {{1000, 2000}}};
    auto cold = server.serve(req);
    auto warm = server.serve(req);
    ASSERT_TRUE(cold.ok() && warm.ok());
    EXPECT_FALSE(cold.stats.cache_hit);
    EXPECT_TRUE(warm.stats.cache_hit);
    EXPECT_EQ(warm.wire, cold.wire);

    server.evict_asset("asset");
    auto gone = server.serve(req);
    EXPECT_FALSE(gone.ok());  // asset and its cached ranges are both gone
    EXPECT_EQ(gone.code, ErrorCode::unknown_asset);
}

TEST_F(ServeFixture, FailuresAreTypedNotThrown) {
    auto unknown = server.serve(ServeRequest{"nope", 4, std::nullopt});
    EXPECT_EQ(unknown.code, ErrorCode::unknown_asset);
    EXPECT_NE(unknown.detail.find("unknown asset"), std::string::npos);
    EXPECT_STREQ(error_name(unknown.code), "unknown_asset");

    // Range validation happens at the API boundary with a typed error, not
    // via an invariant throw from plan_range.
    auto empty_range = server.serve(ServeRequest{"asset", 4, {{5, 5}}});
    EXPECT_EQ(empty_range.code, ErrorCode::invalid_range);
    auto inverted = server.serve(ServeRequest{"asset", 4, {{7, 3}}});
    EXPECT_EQ(inverted.code, ErrorCode::invalid_range);
    auto past_end = server.serve(ServeRequest{"asset", 4, {{0, kSymbols + 1}}});
    EXPECT_EQ(past_end.code, ErrorCode::invalid_range);
    EXPECT_NE(past_end.detail.find(std::to_string(kSymbols)), std::string::npos);

    EXPECT_EQ(server.totals().failures, 4u);
    EXPECT_EQ(server.totals().range_requests, 3u);
}

TEST_F(ServeFixture, AcceptFlagsNegotiateTheWireForm) {
    // A client that cannot decode file containers is refused, not surprised.
    ServeRequest no_file{"asset", 4, std::nullopt};
    no_file.accept = kAcceptRange;
    EXPECT_EQ(server.serve(no_file).code, ErrorCode::not_acceptable);

    ServeRequest no_range{"asset", 4, {{0, 10}}};
    no_range.accept = kAcceptFile;
    EXPECT_EQ(server.serve(no_range).code, ErrorCode::not_acceptable);

    auto chunked_data = workload::gen_text(30000, 1);
    stream::ChunkedEncoder enc;
    enc.add_chunk(chunked_data);
    server.store().add_chunked("chunked", enc.finish());
    ServeRequest no_chunked{"chunked", 4, std::nullopt};
    no_chunked.accept = kAcceptFile | kAcceptRange;
    EXPECT_EQ(server.serve(no_chunked).code, ErrorCode::not_acceptable);

    // Ranges over chunked assets are a supported wire form, not an error.
    ServeRequest chunked_range{"chunked", 4, {{0, 10}}};
    auto res = server.serve(chunked_range);
    ASSERT_TRUE(res.ok()) << res.detail;
    EXPECT_EQ(decode_range_wire(*res.wire),
              std::vector<u8>(chunked_data.begin(), chunked_data.begin() + 10));
}

TEST_F(ServeFixture, CorruptWireIsRejected) {
    auto res = server.serve(ServeRequest{"asset", 1, {{100, 400}}});
    ASSERT_TRUE(res.ok());
    std::vector<u8> mangled = *res.wire;
    mangled[mangled.size() / 2] ^= 0x40;
    EXPECT_THROW(decode_range_wire(mangled), Error);
    EXPECT_THROW(inspect_range_wire(std::vector<u8>{'R', 'C', 'R', '2'}), Error);
}

TEST_F(ServeFixture, HostileWireWithValidChecksumIsRejected) {
    // An attacker can recompute the FNV trailer, so structural validation
    // must hold on its own: poisoned freq tables (table-builder overflow)
    // and wrap-around length fields must both be rejected, not decoded.
    auto res = server.serve(ServeRequest{"asset", 1, {{100, 400}}});
    ASSERT_TRUE(res.ok());
    auto reseal = [](std::vector<u8> w) {
        const u64 sum = format::fnv1a(
            std::span<const u8>(w.data(), w.size() - 8));
        for (int i = 0; i < 8; ++i)
            w[w.size() - 8 + i] = static_cast<u8>(sum >> (8 * i));
        return w;
    };

    // RCR2 layout: header magic(4) ver(1) sym(1) rsvd(2) lo(8) hi(8)
    // segs(4) = 28; segment base(8) flags(1) prob(1) rsvd(2) lo(8) hi(8)
    // first_split(4) = 32, then alpha(4) + 256 freq words.
    const std::size_t freq_off = 28 + 32 + 4;
    std::vector<u8> bad_freq = *res.wire;
    for (int i = 0; i < 4; ++i) bad_freq[freq_off + i] = 0xFF;
    EXPECT_THROW(decode_range_wire(reseal(std::move(bad_freq))), Error);

    const std::size_t meta_len_off = freq_off + 4 * 256;
    std::vector<u8> bad_len = *res.wire;
    for (int i = 0; i < 8; ++i) bad_len[meta_len_off + i] = 0xFF;
    EXPECT_THROW(decode_range_wire(reseal(std::move(bad_len))), Error);
}

TEST_F(ServeFixture, ReplacingAnAssetInvalidatesCachedResponses) {
    const ServeRequest req{"asset", 8, std::nullopt};
    ASSERT_FALSE(server.serve(req).stats.cache_hit);
    ASSERT_TRUE(server.serve(req).stats.cache_hit);

    auto v2 = test::geometric_symbols<u8>(kSymbols, 0.4, 256, 99);
    server.store().encode_bytes("asset", v2, kMaxSplits);
    auto res = server.serve(req);
    ASSERT_TRUE(res.ok());
    EXPECT_FALSE(res.stats.cache_hit);  // fresh uid, not the v1 entry
    EXPECT_EQ(decode_full_wire(*res.wire), v2);
}

TEST_F(ServeFixture, MasterBytesMatchesActualSerialization) {
    EXPECT_EQ(asset->master_bytes(),
              format::save_recoil_file(*asset->file()).size());

    auto bytes = workload::gen_text(30000, 5);
    stream::ChunkedEncoder enc;
    for (u64 off = 0; off < bytes.size(); off += 10000)
        enc.add_chunk(std::span<const u8>(bytes).subspan(off, 10000));
    auto s = enc.finish();
    EXPECT_EQ(s.serialized_size(), s.serialize().size());
}

TEST_F(ServeFixture, EvictionUnderPressureKeepsTheHotEntry) {
    // Capacity for ~2 full responses: the repeatedly-requested class must
    // survive a stream of one-off parallelisms.
    auto probe = server.serve(ServeRequest{"asset", 16, std::nullopt});
    ASSERT_TRUE(probe.ok());
    ServerOptions opt;
    opt.cache_capacity_bytes = probe.stats.wire_bytes * 5 / 2;
    ContentServer small(opt);
    small.store().add_file("asset", *asset->file());

    ASSERT_FALSE(small.serve({"asset", 16, std::nullopt}).stats.cache_hit);
    for (u32 p = 2; p < 8; ++p) {
        ASSERT_TRUE(small.serve(ServeRequest{"asset", p, std::nullopt}).ok());
        EXPECT_TRUE(small.serve({"asset", 16, std::nullopt}).stats.cache_hit)
            << "hot entry evicted after one-off parallelism " << p;
    }
    EXPECT_GT(small.cache().stats().evictions, 0u);
}

}  // namespace
}  // namespace recoil::serve
