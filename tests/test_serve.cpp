// Tests for the serve subsystem: LRU wire cache semantics, combined-metadata
// serving correctness (served wire decodes bit-exact against a direct full
// decode), byte-range serving edge cases, and the batch scheduler.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/recoil_decoder.hpp"
#include "serve/server.hpp"
#include "simd/dispatch.hpp"
#include "test_util.hpp"
#include "util/xoshiro.hpp"
#include "workload/datasets.hpp"

namespace recoil::serve {
namespace {

std::shared_ptr<const std::vector<u8>> make_wire(std::size_t n, u8 fill) {
    return std::make_shared<const std::vector<u8>>(n, fill);
}

TEST(MetadataCache, HitMissAndByteAccounting) {
    MetadataCache cache(1000);
    EXPECT_EQ(cache.get("a", 8), nullptr);
    cache.put("a", 8, make_wire(400, 1));
    cache.put("a", 16, make_wire(400, 2));
    auto hit = cache.get("a", 8);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->front(), 1);

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.bytes, 800u);
}

TEST(MetadataCache, LruEvictionOrderRespectsRecency) {
    MetadataCache cache(1000);
    cache.put("a", 1, make_wire(400, 1));
    cache.put("a", 2, make_wire(400, 2));
    ASSERT_NE(cache.get("a", 1), nullptr);  // refresh entry 1
    cache.put("a", 3, make_wire(400, 3));   // over capacity: evicts entry 2
    EXPECT_NE(cache.get("a", 1), nullptr);
    EXPECT_NE(cache.get("a", 3), nullptr);
    EXPECT_EQ(cache.get("a", 2), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(MetadataCache, OversizedPayloadIsNotCached) {
    MetadataCache cache(100);
    cache.put("a", 1, make_wire(500, 1));
    EXPECT_EQ(cache.get("a", 1), nullptr);
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(MetadataCache, EraseAssetDropsDerivedKeysToo) {
    MetadataCache cache(10000);
    cache.put("a", 1, make_wire(10, 1));
    cache.put("a\nrange:5-9", 0, make_wire(10, 2));
    cache.put("ab", 1, make_wire(10, 3));  // prefix but not derived
    cache.erase_asset("a");
    EXPECT_EQ(cache.get("a", 1), nullptr);
    EXPECT_EQ(cache.get("a\nrange:5-9", 0), nullptr);
    EXPECT_NE(cache.get("ab", 1), nullptr);
}

struct ServeFixture : ::testing::Test {
    static constexpr u64 kSymbols = 200000;
    static constexpr u32 kMaxSplits = 64;

    std::vector<u8> data;
    ContentServer server;
    std::shared_ptr<const Asset> asset;

    ServeFixture()
        : data(test::geometric_symbols<u8>(kSymbols, 0.6, 256, 11)),
          asset(server.store().encode_bytes("asset", data, kMaxSplits)) {}

    std::vector<u8> decode_full_wire(std::span<const u8> wire) {
        auto got = format::load_recoil_file(wire);
        auto model = got.build_static_model();
        ThreadPool pool(2);
        simd::SimdRangeFn<u8> range;
        return recoil_decode<Rans32, 32, u8>(std::span<const u16>(got.units),
                                             got.metadata, model.tables(), &pool,
                                             nullptr, range);
    }
};

TEST_F(ServeFixture, SecondRequestIsACacheHitWithIdenticalBytes) {
    const ServeRequest req{"asset", 16, std::nullopt};
    auto cold = server.serve(req);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_FALSE(cold.stats.cache_hit);

    auto warm = server.serve(req);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_TRUE(warm.stats.cache_hit);
    EXPECT_EQ(warm.wire, cold.wire);  // shared, not recombined

    auto other = server.serve(ServeRequest{"asset", 8, std::nullopt});
    ASSERT_TRUE(other.ok);
    EXPECT_FALSE(other.stats.cache_hit);  // distinct parallelism, distinct entry

    const auto t = server.totals();
    EXPECT_EQ(t.requests, 3u);
    EXPECT_EQ(t.cache_hits, 1u);
    EXPECT_EQ(t.failures, 0u);
}

TEST_F(ServeFixture, CombinedWireDecodesBitExactAtEveryParallelism) {
    const std::vector<u8> direct = recoil_decode<Rans32, 32, u8>(
        std::span<const u16>(asset->file()->units), asset->file()->metadata,
        asset->file()->build_static_model().tables());
    ASSERT_EQ(direct, data);

    for (u32 p : {1u, 2u, 7u, 16u, 64u, 5000u}) {
        auto res = server.serve(ServeRequest{"asset", p, std::nullopt});
        ASSERT_TRUE(res.ok) << res.error;
        auto got = format::load_recoil_file(*res.wire);
        EXPECT_LE(got.metadata.num_splits(), std::min(p, kMaxSplits));
        EXPECT_EQ(res.stats.splits_served, got.metadata.num_splits());
        EXPECT_EQ(decode_full_wire(*res.wire), direct) << "parallelism " << p;
    }
}

TEST_F(ServeFixture, LowerParallelismShipsFewerWireBytes) {
    auto small = server.serve(ServeRequest{"asset", 2, std::nullopt});
    auto large = server.serve(ServeRequest{"asset", kMaxSplits, std::nullopt});
    ASSERT_TRUE(small.ok && large.ok);
    EXPECT_LT(small.stats.wire_bytes, large.stats.wire_bytes);
    EXPECT_LE(large.stats.wire_bytes, asset->master_bytes);
}

TEST_F(ServeFixture, ChunkedAssetServesAndDecodes) {
    auto video = workload::gen_text(60000, 42);
    stream::ChunkedEncoder enc({11, 16});
    for (u64 off = 0; off < video.size(); off += 20000)
        enc.add_chunk(std::span<const u8>(video).subspan(off, 20000));
    server.store().add_chunked("video", enc.finish());

    auto res = server.serve(ServeRequest{"video", 8, std::nullopt});
    ASSERT_TRUE(res.ok) << res.error;
    auto got = stream::ChunkedStream::parse(*res.wire);
    EXPECT_LE(got.total_splits(), 8u + got.chunks.size());
    EXPECT_EQ(res.stats.splits_served, got.total_splits());
    EXPECT_EQ(stream::decode_chunked(got), video);
}

TEST_F(ServeFixture, RangeServingMatchesFullDecodeEverywhere) {
    Xoshiro256 rng(77);
    ThreadPool pool(2);
    for (int iter = 0; iter < 25; ++iter) {
        const u64 lo = rng.below(kSymbols - 1);
        const u64 hi = lo + 1 + rng.below(std::min<u64>(kSymbols - lo, 9000));
        auto res = server.serve(ServeRequest{"asset", 4, {{lo, hi}}});
        ASSERT_TRUE(res.ok) << res.error;
        auto part = decode_range_wire(*res.wire, &pool);
        ASSERT_EQ(part.size(), hi - lo);
        EXPECT_TRUE(std::equal(part.begin(), part.end(), data.begin() + lo))
            << "range [" << lo << ", " << hi << ")";
    }
}

TEST_F(ServeFixture, RangeEdgeCases) {
    const auto& meta = asset->file()->metadata;
    ASSERT_GE(meta.splits.size(), 8u);

    std::vector<std::pair<u64, u64>> ranges = {
        {0, 1},                        // single symbol at the stream start
        {kSymbols - 1, kSymbols},      // single symbol at the stream end
        {kSymbols / 2, kSymbols / 2 + 1},
        {0, kSymbols},                 // full range
        {meta.splits[2].min_index, meta.splits[3].min_index},  // one whole split
        {meta.splits[2].min_index + 5, meta.splits[3].min_index - 5},  // inside it
        {meta.splits.back().min_index, kSymbols},  // final split only
    };
    for (auto [lo, hi] : ranges) {
        auto res = server.serve(ServeRequest{"asset", 1, {{lo, hi}}});
        ASSERT_TRUE(res.ok) << res.error << " [" << lo << ", " << hi << ")";
        auto info = inspect_range_wire(*res.wire);
        EXPECT_EQ(info.lo, lo);
        EXPECT_EQ(info.hi, hi);
        EXPECT_LE(info.cover_lo, lo);
        EXPECT_GE(info.cover_hi, hi);
        auto part = decode_range_wire(*res.wire);
        ASSERT_EQ(part.size(), hi - lo);
        EXPECT_TRUE(std::equal(part.begin(), part.end(), data.begin() + lo));
    }

    // A range confined to one split ships a fragment, not the asset.
    auto res = server.serve(
        ServeRequest{"asset", 1, {{meta.splits[2].min_index + 5,
                                   meta.splits[3].min_index - 5}}});
    ASSERT_TRUE(res.ok);
    EXPECT_LT(res.stats.wire_bytes, asset->master_bytes / 4);
    EXPECT_LE(res.stats.splits_served, 3u);
}

TEST_F(ServeFixture, RangeResponsesAreCachedUnderTheAssetKey) {
    const ServeRequest req{"asset", 1, {{1000, 2000}}};
    auto cold = server.serve(req);
    auto warm = server.serve(req);
    ASSERT_TRUE(cold.ok && warm.ok);
    EXPECT_FALSE(cold.stats.cache_hit);
    EXPECT_TRUE(warm.stats.cache_hit);
    EXPECT_EQ(warm.wire, cold.wire);

    server.evict_asset("asset");
    auto gone = server.serve(req);
    EXPECT_FALSE(gone.ok);  // asset and its cached ranges are both gone
}

TEST_F(ServeFixture, FailuresAreReportedNotThrown) {
    auto unknown = server.serve(ServeRequest{"nope", 4, std::nullopt});
    EXPECT_FALSE(unknown.ok);
    EXPECT_NE(unknown.error.find("unknown asset"), std::string::npos);

    auto bad_range = server.serve(ServeRequest{"asset", 4, {{5, 5}}});
    EXPECT_FALSE(bad_range.ok);
    auto past_end = server.serve(ServeRequest{"asset", 4, {{0, kSymbols + 1}}});
    EXPECT_FALSE(past_end.ok);

    auto chunked_data = workload::gen_text(30000, 1);
    stream::ChunkedEncoder enc;
    enc.add_chunk(chunked_data);
    server.store().add_chunked("chunked", enc.finish());
    auto range_on_chunked = server.serve(ServeRequest{"chunked", 4, {{0, 10}}});
    EXPECT_FALSE(range_on_chunked.ok);

    EXPECT_EQ(server.totals().failures, 4u);
}

TEST_F(ServeFixture, CorruptWireIsRejected) {
    auto res = server.serve(ServeRequest{"asset", 1, {{100, 400}}});
    ASSERT_TRUE(res.ok);
    std::vector<u8> mangled = *res.wire;
    mangled[mangled.size() / 2] ^= 0x40;
    EXPECT_THROW(decode_range_wire(mangled), Error);
    EXPECT_THROW(inspect_range_wire(std::vector<u8>{'R', 'C', 'R', '1'}), Error);
}

TEST_F(ServeFixture, HostileWireWithValidChecksumIsRejected) {
    // An attacker can recompute the FNV trailer, so structural validation
    // must hold on its own: poisoned freq tables (table-builder overflow)
    // and wrap-around length fields must both be rejected, not decoded.
    auto res = server.serve(ServeRequest{"asset", 1, {{100, 400}}});
    ASSERT_TRUE(res.ok);
    auto reseal = [](std::vector<u8> w) {
        const u64 sum = format::fnv1a(
            std::span<const u8>(w.data(), w.size() - 8));
        for (int i = 0; i < 8; ++i)
            w[w.size() - 8 + i] = static_cast<u8>(sum >> (8 * i));
        return w;
    };

    // Header: magic(4) ver/sym/flags/prob(4) alpha(4), then 256 freq words.
    std::vector<u8> bad_freq = *res.wire;
    for (int i = 0; i < 4; ++i) bad_freq[12 + i] = 0xFF;
    EXPECT_THROW(decode_range_wire(reseal(std::move(bad_freq))), Error);

    const std::size_t meta_len_off = 12 + 4 * 256 + 8 + 8 + 4;
    std::vector<u8> bad_len = *res.wire;
    for (int i = 0; i < 8; ++i) bad_len[meta_len_off + i] = 0xFF;
    EXPECT_THROW(decode_range_wire(reseal(std::move(bad_len))), Error);
}

TEST_F(ServeFixture, ReplacingAnAssetInvalidatesCachedResponses) {
    const ServeRequest req{"asset", 8, std::nullopt};
    ASSERT_FALSE(server.serve(req).stats.cache_hit);
    ASSERT_TRUE(server.serve(req).stats.cache_hit);

    auto v2 = test::geometric_symbols<u8>(kSymbols, 0.4, 256, 99);
    server.store().encode_bytes("asset", v2, kMaxSplits);
    auto res = server.serve(req);
    ASSERT_TRUE(res.ok);
    EXPECT_FALSE(res.stats.cache_hit);  // fresh uid, not the v1 entry
    EXPECT_EQ(decode_full_wire(*res.wire), v2);
}

TEST_F(ServeFixture, MasterBytesMatchesActualSerialization) {
    EXPECT_EQ(asset->master_bytes,
              format::save_recoil_file(*asset->file()).size());

    auto bytes = workload::gen_text(30000, 5);
    stream::ChunkedEncoder enc;
    for (u64 off = 0; off < bytes.size(); off += 10000)
        enc.add_chunk(std::span<const u8>(bytes).subspan(off, 10000));
    auto s = enc.finish();
    EXPECT_EQ(s.serialized_size(), s.serialize().size());
}

TEST_F(ServeFixture, EvictionUnderPressureKeepsTheHotEntry) {
    // Capacity for ~2 full responses: the repeatedly-requested class must
    // survive a stream of one-off parallelisms.
    auto probe = server.serve(ServeRequest{"asset", 16, std::nullopt});
    ASSERT_TRUE(probe.ok);
    ContentServer small({probe.stats.wire_bytes * 5 / 2, true});
    small.store().add_file("asset", *asset->file());

    ASSERT_FALSE(small.serve({"asset", 16, std::nullopt}).stats.cache_hit);
    for (u32 p = 2; p < 8; ++p) {
        ASSERT_TRUE(small.serve(ServeRequest{"asset", p, std::nullopt}).ok);
        EXPECT_TRUE(small.serve({"asset", 16, std::nullopt}).stats.cache_hit)
            << "hot entry evicted after one-off parallelism " << p;
    }
    EXPECT_GT(small.cache().stats().evictions, 0u);
}

TEST_F(ServeFixture, SchedulerBatchMatchesSerialServes) {
    ThreadPool pool(3);
    RequestScheduler sched(server, &pool);
    std::vector<ServeRequest> reqs;
    for (u32 p : {2u, 8u, 16u, 2u, 8u, 64u})
        reqs.push_back(ServeRequest{"asset", p, std::nullopt});
    reqs.push_back(ServeRequest{"asset", 1, {{500, 900}}});
    reqs.push_back(ServeRequest{"missing", 1, std::nullopt});
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(sched.submit(reqs[i]), i);
    EXPECT_EQ(sched.pending(), reqs.size());

    auto results = sched.flush();
    ASSERT_EQ(results.size(), reqs.size());
    EXPECT_EQ(sched.pending(), 0u);
    for (std::size_t i = 0; i + 1 < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << i << ": " << results[i].error;
        auto direct = server.serve(reqs[i]);
        EXPECT_EQ(*results[i].wire, *direct.wire) << "request " << i;
    }
    EXPECT_FALSE(results.back().ok);

    const BatchStats batch = summarize(results);
    EXPECT_EQ(batch.requests, reqs.size());
    EXPECT_EQ(batch.failures, 1u);
    EXPECT_GE(batch.max_latency_seconds, 0.0);

    // A second identical batch is fully warm: every valid request hits.
    for (const auto& r : reqs) sched.submit(r);
    const BatchStats warm = summarize(sched.flush());
    EXPECT_EQ(warm.cache_hits, reqs.size() - 1);
}

}  // namespace
}  // namespace recoil::serve
