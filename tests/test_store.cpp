// Tests for the persistent asset store: durable put/load round-trips across
// all three asset kinds, kill-and-reopen (drop every byte of process state,
// reopen the directory, serve bit-exact), zero-copy mmap views, generation
// continuity across restarts (cache keys stay valid), write-through and
// demand-load through ContentServer, and corruption surfacing as typed
// StoreError — truncation, bit flips, mangled manifests — never UB.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "core/recoil_decoder.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"
#include "stream/chunked.hpp"
#include "test_util.hpp"
#include "util/xoshiro.hpp"

namespace recoil::serve {
namespace {

namespace fs = std::filesystem;

/// Fresh store directory per test, removed on teardown.
struct StoreFixture : ::testing::Test {
    fs::path dir;

    void SetUp() override {
        dir = fs::temp_directory_path() /
              ("recoil_store_" +
               std::string(
                   ::testing::UnitTest::GetInstance()->current_test_info()->name()));
        fs::remove_all(dir);
    }
    void TearDown() override { fs::remove_all(dir); }

    static std::vector<u8> payload(u64 n, u64 seed) {
        return test::geometric_symbols<u8>(n, 0.6, 256, seed);
    }

    /// Flip one bit in the middle of `path`.
    static void flip_bit(const fs::path& path) {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f) << path;
        f.seekg(0, std::ios::end);
        const auto size = static_cast<std::streamoff>(f.tellg());
        ASSERT_GT(size, 0);
        f.seekg(size / 2);
        char b = 0;
        f.read(&b, 1);
        b = static_cast<char>(b ^ 0x10);
        f.seekp(size / 2);
        f.write(&b, 1);
    }
};

TEST_F(StoreFixture, PutListLoadRemoveRoundTrip) {
    auto disk = std::make_shared<DiskStore>(dir);
    EXPECT_EQ(disk->size(), 0u);
    EXPECT_EQ(disk->next_generation(), 1u);
    EXPECT_FALSE(disk->load("a").has_value());

    const std::vector<u8> container = {1, 2, 3, 4, 5, 6, 7, 8};
    disk->put("a", AssetKind::static_file, container, 7);
    ASSERT_TRUE(disk->info("a").has_value());
    EXPECT_EQ(disk->info("a")->generation, 7u);
    EXPECT_EQ(disk->info("a")->container_bytes, container.size());
    EXPECT_EQ(disk->next_generation(), 8u);

    auto loaded = disk->load("a");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->checksum_verified);
    EXPECT_TRUE(std::equal(container.begin(), container.end(),
                           loaded->map->bytes().begin(),
                           loaded->map->bytes().end()));

    // Replacing bumps nothing implicitly — generation is the caller's.
    const std::vector<u8> replacement = {9, 9};
    disk->put("a", AssetKind::static_file, replacement, 9);
    EXPECT_EQ(disk->info("a")->container_bytes, 2u);
    // The earlier mapping stays valid after the replace (rename semantics).
    EXPECT_EQ(loaded->map->bytes().size(), container.size());

    EXPECT_TRUE(disk->remove("a"));
    EXPECT_FALSE(disk->remove("a"));
    EXPECT_EQ(disk->size(), 0u);
}

TEST_F(StoreFixture, HostileAssetNamesBecomeFilesOrTypedErrors) {
    auto disk = std::make_shared<DiskStore>(dir);
    const std::vector<u8> c = {1, 2, 3};
    // Path-traversal and separator characters must be neutralized.
    for (const char* name : {"../escape", "a/b/c", "sp ace", "dots..", ".hidden"}) {
        disk->put(name, AssetKind::static_file, c, disk->next_generation());
        EXPECT_TRUE(disk->load(name).has_value()) << name;
    }
    // Every file the store created lives directly in the store directory.
    for (const auto& entry : fs::directory_iterator(dir))
        EXPECT_EQ(entry.path().parent_path(), dir);
    EXPECT_THROW(disk->put("", AssetKind::static_file, c, 99), StoreError);
    EXPECT_THROW(disk->put(std::string(300, '/'), AssetKind::static_file, c, 99),
                 StoreError);
    try {
        disk->put("", AssetKind::static_file, c, 99);
        FAIL();
    } catch (const StoreError& e) {
        EXPECT_EQ(e.status(), StoreStatus::bad_name);
        EXPECT_STREQ(store_status_name(e.status()), "bad_name");
    }
}

TEST_F(StoreFixture, KillAndReopenServesEveryAssetBitExact) {
    // Write N assets of all three kinds through the serving stack, drop the
    // whole process state, reopen the directory, and verify every response
    // is bit-identical to the pre-restart one.
    constexpr int kAssets = 3;  // per kind
    std::vector<std::pair<std::string, std::vector<u8>>> responses;

    {
        ContentServer server;
        server.store().attach_backing(std::make_shared<DiskStore>(dir));
        for (int i = 0; i < kAssets; ++i) {
            const std::string name = "file" + std::to_string(i);
            server.store().encode_bytes(name, payload(40000 + 1000 * i, i), 32);

            stream::ChunkedEncoder enc({11, 8});
            const auto clip = payload(30000, 100 + i);
            for (u64 off = 0; off < clip.size(); off += 10000)
                enc.add_chunk(std::span<const u8>(clip).subspan(off, 10000));
            server.store().add_chunked("clip" + std::to_string(i), enc.finish());
        }
        // An indexed-model asset exercises the id-stream view path.
        {
            const auto syms = payload(20000, 55);
            std::vector<u8> ids(syms.size());
            for (std::size_t i = 0; i < ids.size(); ++i)
                ids[i] = static_cast<u8>((i / 7) % 2);
            std::vector<u64> c0(256, 1), c1(256, 1);
            for (std::size_t i = 0; i < syms.size(); ++i)
                (ids[i] == 0 ? c0 : c1)[syms[i]]++;
            std::vector<StaticModel> models{StaticModel(c0, 11),
                                            StaticModel(c1, 11)};
            format::RecoilFile f;
            f.sym_width = 1;
            f.prob_bits = 11;
            format::RecoilFile::IndexedPayload p;
            for (const StaticModel& m : models) {
                std::vector<u32> freq(m.alphabet());
                for (u32 s = 0; s < m.alphabet(); ++s) freq[s] = m.freq(s);
                p.freqs.push_back(std::move(freq));
            }
            p.ids = ids;
            IndexedModelSet set(std::move(models), ids);
            auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), set, 16);
            f.metadata = std::move(enc.metadata);
            f.units = std::move(enc.bitstream.units);
            f.model = std::move(p);
            server.store().add_file("latents", std::move(f));
        }

        for (const std::string& name : server.store().names()) {
            auto res = server.serve(ServeRequest{name, 4, std::nullopt});
            ASSERT_TRUE(res.ok()) << name << ": " << res.detail;
            responses.emplace_back(name, *res.wire);
            auto range = server.serve(ServeRequest{name, 1, {{10, 5000}}});
            ASSERT_TRUE(range.ok()) << name << ": " << range.detail;
            responses.emplace_back(name + "/range", *range.wire);
        }
    }  // server destroyed: nothing survives but the directory

    ContentServer server;
    server.store().attach_backing(std::make_shared<DiskStore>(dir));
    EXPECT_EQ(server.store().size(), 0u);  // nothing resident until requested
    for (const auto& [key, wire] : responses) {
        const bool is_range = key.ends_with("/range");
        const std::string name =
            is_range ? key.substr(0, key.size() - 6) : key;
        auto res = is_range
                       ? server.serve(ServeRequest{name, 1, {{10, 5000}}})
                       : server.serve(ServeRequest{name, 4, std::nullopt});
        ASSERT_TRUE(res.ok()) << key << ": " << res.detail;
        EXPECT_EQ(*res.wire, wire) << key << " not bit-exact after reopen";
    }
}

TEST_F(StoreFixture, DemandLoadIsZeroCopyAndDecodesBitExact) {
    const auto data = payload(80000, 3);
    {
        AssetStore store;
        store.attach_backing(std::make_shared<DiskStore>(dir));
        store.encode_bytes("a", data, 32);
    }
    AssetStore store;
    store.attach_backing(std::make_shared<DiskStore>(dir));
    EXPECT_EQ(store.find("a"), nullptr);  // not resident
    auto a = store.resolve("a");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(a->file(), nullptr);
    // v2 containers align the unit payload, so the mmapped bitstream (and
    // the serving path on top of it) is a borrowed view, not a copy.
    EXPECT_TRUE(a->file()->units.borrowed());

    auto dec = recoil_decode<Rans32, 32, u8>(
        std::span<const u16>(a->file()->units), a->file()->metadata,
        a->file()->build_static_model().tables());
    EXPECT_EQ(dec, data);
}

TEST_F(StoreFixture, GenerationCarriesAcrossRestartSoCacheKeysStayValid) {
    u64 gen1 = 0, gen2 = 0;
    {
        AssetStore store;
        store.attach_backing(std::make_shared<DiskStore>(dir));
        gen1 = store.encode_bytes("a", payload(30000, 1), 8)->uid();
        gen2 = store.encode_bytes("a", payload(30000, 2), 8)->uid();  // replace
        EXPECT_GT(gen2, gen1);
    }
    {
        AssetStore store;
        store.attach_backing(std::make_shared<DiskStore>(dir));
        auto a = store.resolve("a");
        ASSERT_NE(a, nullptr);
        EXPECT_EQ(a->uid(), gen2);  // the persisted generation IS the uid
        // Fresh inserts continue strictly above every persisted generation.
        EXPECT_GT(store.encode_bytes("b", payload(1000, 9), 4)->uid(), gen2);
    }
}

TEST_F(StoreFixture, UnloadKeepsCachedResponsesValid) {
    ContentServer server;
    server.store().attach_backing(std::make_shared<DiskStore>(dir));
    server.store().encode_bytes("a", payload(50000, 4), 16);

    const ServeRequest req{"a", 8, std::nullopt};
    auto cold = server.serve(req);
    ASSERT_TRUE(cold.ok());
    ASSERT_FALSE(cold.stats.cache_hit);

    ASSERT_TRUE(server.unload_asset("a"));
    EXPECT_EQ(server.store().find("a"), nullptr);
    // Demand-load reconstructs the asset under the same generation, so the
    // cached response is a hit — same bytes, no recombine.
    auto warm = server.serve(req);
    ASSERT_TRUE(warm.ok()) << warm.detail;
    EXPECT_TRUE(warm.stats.cache_hit);
    EXPECT_EQ(warm.wire, cold.wire);
    // evict_asset is the real delete: memory, cache, and disk.
    EXPECT_TRUE(server.evict_asset("a"));
    EXPECT_EQ(server.serve(req).code, ErrorCode::unknown_asset);
    EXPECT_EQ(server.store().backing()->size(), 0u);
}

TEST_F(StoreFixture, TruncatedContainerIsATypedError) {
    {
        AssetStore store;
        store.attach_backing(std::make_shared<DiskStore>(dir));
        store.encode_bytes("a", payload(30000, 5), 8);
    }
    fs::path container;
    for (const auto& entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".rca") container = entry.path();
    ASSERT_FALSE(container.empty());
    fs::resize_file(container, fs::file_size(container) / 2);

    // Caught at open: the manifest's recorded size no longer matches.
    try {
        DiskStore reopened(dir);
        FAIL() << "truncated container must not open cleanly";
    } catch (const StoreError& e) {
        EXPECT_EQ(e.status(), StoreStatus::bad_container);
    }
}

TEST_F(StoreFixture, BitFlippedContainerIsATypedError) {
    {
        AssetStore store;
        store.attach_backing(std::make_shared<DiskStore>(dir));
        store.encode_bytes("a", payload(30000, 6), 8);
    }
    fs::path container;
    for (const auto& entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".rca") container = entry.path();
    flip_bit(container);

    // Size is unchanged, so the store opens; the flip surfaces as a typed
    // checksum failure at load — with or without manifest verification
    // (the container's own trailing FNV backstops the latter).
    for (const bool verify : {true, false}) {
        AssetStore store;
        store.attach_backing(
            std::make_shared<DiskStore>(dir, DiskStoreOptions{verify}));
        try {
            (void)store.resolve("a");
            FAIL() << "corrupt container resolved (verify_on_load=" << verify
                   << ")";
        } catch (const StoreError& e) {
            EXPECT_EQ(e.status(), StoreStatus::bad_container);
        } catch (const Error&) {
            // verify_on_load=false: the container parser's own checksum
            // raises; still a typed recoil::Error, never UB.
        }
    }

    // Through the serving stack the same corruption is a typed response.
    ContentServer server;
    server.store().attach_backing(std::make_shared<DiskStore>(dir));
    auto res = server.serve(ServeRequest{"a", 4, std::nullopt});
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.code, ErrorCode::internal);
    EXPECT_NE(res.detail.find("checksum"), std::string::npos) << res.detail;
}

TEST_F(StoreFixture, MangledManifestIsATypedError) {
    {
        AssetStore store;
        store.attach_backing(std::make_shared<DiskStore>(dir));
        store.encode_bytes("a", payload(20000, 7), 8);
    }
    fs::path manifest;
    for (const auto& entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".rcm") manifest = entry.path();
    flip_bit(manifest);
    try {
        DiskStore reopened(dir);
        FAIL() << "mangled manifest must not open cleanly";
    } catch (const StoreError& e) {
        EXPECT_EQ(e.status(), StoreStatus::bad_manifest);
    }
}

TEST_F(StoreFixture, LeftoverTempFilesAreIgnoredOnOpen) {
    {
        AssetStore store;
        store.attach_backing(std::make_shared<DiskStore>(dir));
        store.encode_bytes("a", payload(20000, 8), 8);
    }
    // A crash mid-put leaves *.tmp droppings, and a crash between the
    // container and manifest renames leaves an unreferenced container;
    // neither must confuse reopen.
    std::ofstream(dir / "b.g1.rca.tmp") << "torn container write";
    std::ofstream(dir / "b.rcm.tmp") << "torn manifest write";
    std::ofstream(dir / "c.g9.rca") << "orphan container, no manifest";
    DiskStore reopened(dir);
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_TRUE(reopened.info("a").has_value());
}

TEST_F(StoreFixture, ReplaceCrashBeforeManifestCommitKeepsTheOldAsset) {
    // Replacement commits via the manifest rename. Simulate a crash after
    // the new generation's container landed but before the commit: the old
    // asset must still open and load bit-exact — the store is never left
    // describing bytes it does not have.
    const std::vector<u8> old_container = {10, 20, 30, 40, 50};
    {
        DiskStore disk(dir);
        disk.put("a", AssetKind::static_file, old_container, 1);
    }
    std::ofstream(dir / "a.g2.rca", std::ios::binary)
        << "half-committed replacement";
    DiskStore reopened(dir);
    ASSERT_TRUE(reopened.info("a").has_value());
    EXPECT_EQ(reopened.info("a")->generation, 1u);
    auto loaded = reopened.load("a");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(std::equal(old_container.begin(), old_container.end(),
                           loaded->map->bytes().begin(),
                           loaded->map->bytes().end()));
}

TEST_F(StoreFixture, SeededManyAssetReopenLoop) {
    // Seeded kill-and-reopen sweep: N assets, two reopen cycles, every
    // asset must round-trip bit-exact each time.
    constexpr int kAssets = 8;
    std::vector<std::vector<u8>> originals;
    Xoshiro256 rng(2026);
    {
        AssetStore store;
        store.attach_backing(std::make_shared<DiskStore>(dir));
        for (int i = 0; i < kAssets; ++i) {
            originals.push_back(payload(5000 + rng.below(20000), 500 + i));
            store.encode_bytes("asset" + std::to_string(i), originals.back(),
                               1 + static_cast<u32>(rng.below(32)));
        }
    }
    for (int cycle = 0; cycle < 2; ++cycle) {
        AssetStore store;
        store.attach_backing(std::make_shared<DiskStore>(dir));
        EXPECT_EQ(store.preload(), static_cast<std::size_t>(kAssets));
        for (int i = 0; i < kAssets; ++i) {
            auto a = store.find("asset" + std::to_string(i));
            ASSERT_NE(a, nullptr) << i;
            ASSERT_NE(a->file(), nullptr) << i;
            auto dec = recoil_decode<Rans32, 32, u8>(
                std::span<const u16>(a->file()->units), a->file()->metadata,
                a->file()->build_static_model().tables());
            EXPECT_EQ(dec, originals[static_cast<std::size_t>(i)])
                << "asset " << i << " cycle " << cycle;
        }
    }
}

}  // namespace
}  // namespace recoil::serve
