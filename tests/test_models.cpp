#include <gtest/gtest.h>

#include "rans/indexed_model.hpp"
#include "rans/static_model.hpp"
#include "test_util.hpp"
#include "util/error.hpp"

namespace recoil {
namespace {

TEST(StaticModel, LookupInvariants) {
    std::vector<u64> counts(256, 0);
    counts['a'] = 70;
    counts['b'] = 20;
    counts['c'] = 10;
    StaticModel m(counts, 11);
    // Every slot decodes to the symbol whose [cum, cum+freq) contains it.
    for (u32 slot = 0; slot < (1u << 11); ++slot) {
        DecSymbol d = m.dec_lookup(0, slot);
        EXPECT_LE(m.cum(d.sym), slot);
        EXPECT_LT(slot, m.cum(d.sym) + m.freq(d.sym));
        EXPECT_EQ(d.freq, m.freq(d.sym));
        EXPECT_EQ(d.cum, m.cum(d.sym));
    }
}

TEST(StaticModel, EncDecConsistent) {
    auto syms = test::geometric_symbols<u8>(5000, 0.8, 256, 7);
    auto m = test::model_for<u8>(syms, 12, 256);
    for (u32 s = 0; s < 256; ++s) {
        if (m.freq(s) == 0) continue;
        EncSymbol e = m.enc_lookup(0, s);
        DecSymbol d = m.dec_lookup(0, e.cum);
        EXPECT_EQ(d.sym, s);
    }
}

TEST(StaticModel, PackedLutOnlyWhenApplicable) {
    std::vector<u64> small(256, 1);
    EXPECT_NE(StaticModel(small, 12).tables().packed, nullptr);
    EXPECT_EQ(StaticModel(small, 13).tables().packed, nullptr);
    std::vector<u64> wide(4096, 1);
    EXPECT_EQ(StaticModel(wide, 12).tables().packed, nullptr);
}

TEST(StaticModel, PackedLutAgreesWithWide) {
    auto syms = test::geometric_symbols<u8>(3000, 0.5, 256, 11);
    auto m = test::model_for<u8>(syms, 11, 256);
    const DecodeTables t = m.tables();
    ASSERT_NE(t.packed, nullptr);
    for (u32 slot = 0; slot < (1u << 11); ++slot) {
        const u32 p = t.packed[slot];
        DecSymbol d = t.lookup(0, slot);
        EXPECT_EQ(p & 0xffu, d.sym);
        EXPECT_EQ((p >> 8) & 0xfffu, d.cum);
        EXPECT_EQ((p >> 20) + 1, d.freq);
    }
}

TEST(StaticModel, CrossEntropyMatchesIdealForUniform) {
    std::vector<u64> counts(16, 100);
    StaticModel m(counts, 8);
    const double bits = m.cross_entropy_bits(counts);
    EXPECT_NEAR(bits, 1600 * 4.0, 1e-6);  // 16 equiprobable symbols = 4 bits
}

TEST(IndexedModel, SelectsPerIndex) {
    // Model 0 strongly favors symbol 0; model 1 favors symbol 1.
    std::vector<u64> c0(4, 1), c1(4, 1);
    c0[0] = 1000;
    c1[1] = 1000;
    std::vector<StaticModel> models{StaticModel(c0, 8), StaticModel(c1, 8)};
    std::vector<u8> ids{0, 1, 0, 1};
    IndexedModelSet set(std::move(models), ids);
    EXPECT_GT(set.enc_lookup(0, 0).freq, set.enc_lookup(1, 0).freq);
    EXPECT_GT(set.enc_lookup(1, 1).freq, set.enc_lookup(0, 1).freq);
    // Decode table dispatches on the index too.
    DecSymbol d0 = set.dec_lookup(0, 10);
    EXPECT_EQ(d0.sym, 0u);
    DecSymbol d1 = set.dec_lookup(1, 10);
    EXPECT_EQ(d1.sym, 1u);
}

TEST(IndexedModel, RejectsMismatchedModels) {
    std::vector<u64> a(4, 1), b(8, 1);
    std::vector<StaticModel> models;
    models.emplace_back(a, 8);
    models.emplace_back(b, 8);
    EXPECT_THROW((IndexedModelSet(std::move(models), std::vector<u8>{0})), Error);
}

TEST(IndexedModel, RejectsOutOfRangeIds) {
    std::vector<u64> a(4, 1);
    std::vector<StaticModel> models;
    models.emplace_back(a, 8);
    EXPECT_THROW((IndexedModelSet(std::move(models), std::vector<u8>{1})), Error);
}

}  // namespace
}  // namespace recoil
