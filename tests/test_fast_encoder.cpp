// The reciprocal-multiplication encoder must be bit-exact with the literal
// Eq. 1 division transform — exhaustively per (freq, state) structure and
// end-to-end on full bitstreams.

#include <gtest/gtest.h>

#include "rans/interleaved.hpp"
#include "test_util.hpp"

namespace recoil {
namespace {

/// Shim hiding enc_fast so interleaved_encode takes the division path.
struct DivisionOnly {
    const StaticModel* m;
    u32 prob_bits() const noexcept { return m->prob_bits(); }
    EncSymbol enc_lookup(u64 i, u32 s) const noexcept { return m->enc_lookup(i, s); }
};

TEST(FastEncoder, TransformMatchesDivisionExhaustively) {
    // All freq values at a small prob_bits, states across the full renorm
    // range [L, xmax(freq)).
    const u32 n = 8;
    for (u32 freq = 1; freq <= (1u << n); ++freq) {
        const u32 cum = (freq * 7) % ((1u << n) - freq + 1);
        const auto fast = EncSymbolFast::make(freq, cum, n);
        const u64 xmax = (u64{Rans32::lower_bound >> n} << 16) * freq;
        // Sample the state space densely (and hit the boundaries exactly).
        for (u64 xi = Rans32::lower_bound; xi < xmax;
             xi += 1 + (xmax - Rans32::lower_bound) / 4093) {
            const u32 x = static_cast<u32>(xi);
            const u32 ref = ((x / freq) << n) + cum + (x % freq);
            ASSERT_EQ(fast.encode(x), ref) << "freq " << freq << " x " << x;
        }
        const u32 last = static_cast<u32>(xmax - 1);
        ASSERT_EQ(fast.encode(last), ((last / freq) << n) + cum + (last % freq));
    }
}

TEST(FastEncoder, TransformMatchesAtProbBits16) {
    Xoshiro256 rng(101);
    for (int iter = 0; iter < 5000; ++iter) {
        const u32 freq = 1 + static_cast<u32>(rng.below((1u << 16) - 1));
        const u32 cum = static_cast<u32>(rng.below((1u << 16) - freq + 1));
        const auto fast = EncSymbolFast::make(freq, cum, 16);
        const u64 xmax = (u64{Rans32::lower_bound >> 16} << 16) * freq;
        const u32 x = static_cast<u32>(
            Rans32::lower_bound + rng.below(xmax - Rans32::lower_bound));
        const u32 ref = ((x / freq) << 16) + cum + (x % freq);
        ASSERT_EQ(fast.encode(x), ref) << "freq " << freq << " x " << x;
    }
}

TEST(FastEncoder, BitstreamIdenticalToDivisionPath) {
    for (double q : {0.05, 0.5, 0.95}) {
        for (u32 n : {8u, 11u, 16u}) {
            auto syms = test::geometric_symbols<u8>(100000, q, 256, n * 10 + 1);
            auto m = test::model_for<u8>(syms, n, 256);
            DivisionOnly slow{&m};
            RenormEventList ef, es;
            auto fast = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), m, &ef);
            auto ref = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), slow, &es);
            ASSERT_EQ(fast.units, ref.units) << "q " << q << " n " << n;
            ASSERT_EQ(fast.final_states, ref.final_states);
            ASSERT_EQ(ef.size(), es.size());
        }
    }
}

TEST(FastEncoder, FreqOneSymbols) {
    // Every symbol rare except one: stresses the freq==1 special case.
    std::vector<u64> counts(256, 1);
    counts[0] = 100000;
    StaticModel m(counts, 11);
    Xoshiro256 rng(102);
    std::vector<u8> syms(50000, 0);
    for (auto& s : syms) {
        if (rng.below(20) == 0) s = static_cast<u8>(1 + rng.below(255));
    }
    DivisionOnly slow{&m};
    auto fast = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), m);
    auto ref = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), slow);
    EXPECT_EQ(fast.units, ref.units);
    EXPECT_EQ(fast.final_states, ref.final_states);
    auto dec = serial_decode<Rans32, 32, u8>(fast, m.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
}

}  // namespace
}  // namespace recoil
