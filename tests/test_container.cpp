// Container format tests: round-trip, the §3.3 serving path, and failure
// injection (bit flips anywhere must be detected by the checksum).

#include <gtest/gtest.h>

#include <cmath>

#include "conventional/conventional.hpp"
#include "core/recoil_decoder.hpp"
#include "format/container.hpp"
#include "test_util.hpp"
#include "workload/datasets.hpp"

namespace recoil {
namespace {

format::RecoilFile make_file(std::size_t n, u32 max_splits) {
    auto syms = test::geometric_symbols<u8>(n, 0.6, 256, n + max_splits);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, max_splits);
    return format::make_recoil_file(enc, m, 1);
}

TEST(Container, SaveLoadRoundTrip) {
    auto f = make_file(100000, 32);
    auto bytes = format::save_recoil_file(f);
    auto g = format::load_recoil_file(bytes);
    EXPECT_EQ(g.sym_width, f.sym_width);
    EXPECT_EQ(g.prob_bits, f.prob_bits);
    EXPECT_EQ(g.units, f.units);
    EXPECT_EQ(g.metadata.num_symbols, f.metadata.num_symbols);
    EXPECT_EQ(g.metadata.splits.size(), f.metadata.splits.size());
}

TEST(Container, DecodeAfterLoad) {
    auto syms = test::geometric_symbols<u8>(150000, 0.5, 256, 61);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, 16);
    auto bytes = format::save_recoil_file(format::make_recoil_file(enc, m, 1));
    auto f = format::load_recoil_file(bytes);
    auto model = f.build_static_model();
    auto dec = recoil_decode<Rans32, 32, u8>(std::span<const u16>(f.units),
                                             f.metadata, model.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
}

TEST(Container, ServeCombinedShrinksAndDecodes) {
    auto syms = test::geometric_symbols<u8>(400000, 0.6, 256, 62);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, 256);
    auto f = format::make_recoil_file(enc, m, 1);
    auto large = format::save_recoil_file(f);
    auto small = format::serve_combined(f, 8);
    EXPECT_LT(small.size(), large.size());
    auto g = format::load_recoil_file(small);
    EXPECT_LE(g.metadata.num_splits(), 8u);
    auto model = g.build_static_model();
    auto dec = recoil_decode<Rans32, 32, u8>(std::span<const u16>(g.units),
                                             g.metadata, model.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
}

TEST(Container, IndexedModelRoundTrip) {
    auto ds = workload::gen_latents("t", 60000, 2.0, 63);
    auto models = ds.build_models(16);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u16>(ds.symbols), models, 16);

    format::RecoilFile f;
    f.sym_width = 2;
    f.prob_bits = 16;
    f.metadata = enc.metadata;
    f.units = enc.bitstream.units;
    // Serialize the generating pdfs (what a real hyperprior decoder would
    // reconstruct from side information).
    format::RecoilFile::IndexedPayload payload;
    for (double sigma : ds.bin_sigma) {
        std::vector<u64> counts(workload::kLatentAlphabet);
        const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
        for (u32 s = 0; s < workload::kLatentAlphabet; ++s) {
            const double r =
                static_cast<double>(static_cast<i32>(s) - workload::kLatentOffset);
            counts[s] = 1 + static_cast<u64>(std::exp(-r * r * inv2s2) * 1e12);
        }
        payload.freqs.push_back(quantize_pdf(counts, 16));
    }
    payload.ids = ds.ids;
    f.model = std::move(payload);

    auto bytes = format::save_recoil_file(f);
    auto g = format::load_recoil_file(bytes);
    ASSERT_TRUE(g.is_indexed());
    auto set = g.build_indexed_model();
    auto dec = recoil_decode<Rans32, 32, u16>(std::span<const u16>(g.units),
                                              g.metadata, set.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), ds.symbols.begin()));
}

TEST(Container, BitFlipsDetected) {
    auto f = make_file(50000, 8);
    auto bytes = format::save_recoil_file(f);
    Xoshiro256 rng(64);
    for (int iter = 0; iter < 40; ++iter) {
        auto bad = bytes;
        const u64 pos = rng.below(bad.size());
        bad[pos] ^= static_cast<u8>(1u << rng.below(8));
        EXPECT_THROW(format::load_recoil_file(bad), Error) << "pos " << pos;
    }
}

TEST(Container, TruncationDetected) {
    auto f = make_file(50000, 8);
    auto bytes = format::save_recoil_file(f);
    for (std::size_t keep : {std::size_t{0}, std::size_t{10}, bytes.size() / 2,
                             bytes.size() - 1}) {
        std::vector<u8> t(bytes.begin(), bytes.begin() + keep);
        EXPECT_THROW(format::load_recoil_file(t), Error) << keep;
    }
}

TEST(Container, ConventionalFileRoundTrip) {
    auto syms = test::geometric_symbols<u8>(120000, 0.6, 256, 70);
    auto m = test::model_for<u8>(syms, 11, 256);
    format::ConventionalFile f;
    f.sym_width = 1;
    f.prob_bits = 11;
    f.freq.resize(256);
    for (u32 s = 0; s < 256; ++s) f.freq[s] = m.freq(s);
    f.payload = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, 24);

    auto bytes = format::save_conventional_file(f);
    auto g = format::load_conventional_file(bytes);
    EXPECT_EQ(g.payload.partitions.size(), f.payload.partitions.size());
    StaticModel model(std::span<const u32>(g.freq), g.prob_bits, 0);
    auto dec = conventional_decode<Rans32, 32, u8>(g.payload, model.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
}

TEST(Container, ConventionalFileCorruptionDetected) {
    auto syms = test::geometric_symbols<u8>(40000, 0.5, 256, 71);
    auto m = test::model_for<u8>(syms, 11, 256);
    format::ConventionalFile f;
    f.sym_width = 1;
    f.prob_bits = 11;
    f.freq.resize(256);
    for (u32 s = 0; s < 256; ++s) f.freq[s] = m.freq(s);
    f.payload = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, 8);
    auto bytes = format::save_conventional_file(f);
    Xoshiro256 rng(72);
    for (int iter = 0; iter < 20; ++iter) {
        auto bad = bytes;
        bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
        EXPECT_THROW(format::load_conventional_file(bad), Error);
    }
}

TEST(Container, ChecksumIsFnv1a) {
    std::vector<u8> empty;
    EXPECT_EQ(format::fnv1a(empty), 0xcbf29ce484222325ull);
    std::vector<u8> a{'a'};
    EXPECT_EQ(format::fnv1a(a), 0xaf63dc4c8601ec8cull);
}

}  // namespace
}  // namespace recoil
