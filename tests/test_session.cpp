// Tests for the async Session API and the server's single-flight coalescing:
// concurrent cold requests for one response key run exactly one combine and
// share the wire; warm traffic returns shared buffers without copies; and a
// deterministic Zipf workload pins the LRU cache's hit behavior exactly
// (the anchor for the ROADMAP cache-policy study).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <list>
#include <thread>

#include "serve/session.hpp"
#include "test_util.hpp"
#include "util/xoshiro.hpp"
#include "workload/datasets.hpp"

namespace recoil::serve {
namespace {

std::vector<u8> small_asset_bytes(u64 n, u64 seed) {
    return test::geometric_symbols<u8>(n, 0.6, 256, seed);
}

TEST(Session, ColdRequestsCoalesceIntoOneCombine) {
    std::atomic<int> combines{0};
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    ServerOptions opt;
    opt.combine_hook = [&](const std::string&) {
        ++combines;
        gate.wait();  // hold the leader until every follower is parked
    };
    ContentServer server(opt);
    server.store().encode_bytes("asset", small_asset_bytes(80000, 31), 32);

    constexpr unsigned kN = 8;
    Session session(server, {kN});
    std::vector<std::shared_future<ServeResult>> futs;
    futs.reserve(kN);
    for (unsigned i = 0; i < kN; ++i)
        futs.push_back(session.submit(ServeRequest{"asset", 8, std::nullopt}));

    // Deterministic, no sleeps: all kN requests run on their own worker, so
    // kN-1 of them must park on the leader's flight; only then release it.
    while (server.coalescing_waiters() != kN - 1) std::this_thread::yield();
    release.set_value();
    session.wait_idle();

    EXPECT_EQ(combines.load(), 1);  // exactly one combine ran
    unsigned leaders = 0, followers = 0;
    WireBytes shared_wire;
    for (auto& f : futs) {
        const ServeResult res = f.get();
        ASSERT_TRUE(res.ok()) << res.detail;
        EXPECT_FALSE(res.stats.cache_hit);
        if (res.stats.coalesced) {
            ++followers;
        } else {
            ++leaders;
        }
        if (shared_wire == nullptr) shared_wire = res.wire;
        EXPECT_EQ(res.wire, shared_wire);  // the same buffer, not a copy
    }
    EXPECT_EQ(leaders, 1u);
    EXPECT_EQ(followers, kN - 1);

    const auto t = server.totals();
    EXPECT_EQ(t.requests, kN);
    EXPECT_EQ(t.coalesced_requests, kN - 1);
    EXPECT_EQ(t.bytes_saved, (kN - 1) * shared_wire->size());

    // Warm traffic: the cache returns the same shared buffer, no copy.
    auto warm = session.submit(ServeRequest{"asset", 8, std::nullopt}).get();
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(warm.stats.cache_hit);
    EXPECT_EQ(warm.wire, shared_wire);
    EXPECT_EQ(combines.load(), 1);
}

TEST(Session, LeaderFailurePropagatesToEveryCoalescedRequest) {
    // Requests park on a flight whose leader fails mid-combine: everyone
    // must get the typed failure, and a retry must start a fresh flight.
    std::atomic<int> combines{0};
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    ServerOptions opt;
    opt.combine_hook = [&](const std::string&) {
        const int n = ++combines;
        if (n == 1) {
            gate.wait();
            raise("injected combine failure");
        }
    };
    ContentServer server(opt);
    server.store().encode_bytes("asset", small_asset_bytes(60000, 5), 16);

    constexpr unsigned kN = 4;
    Session session(server, {kN});
    std::vector<std::shared_future<ServeResult>> futs;
    for (unsigned i = 0; i < kN; ++i)
        futs.push_back(session.submit(ServeRequest{"asset", 4, std::nullopt}));
    while (server.coalescing_waiters() != kN - 1) std::this_thread::yield();
    release.set_value();
    session.wait_idle();

    for (auto& f : futs) {
        const ServeResult res = f.get();
        EXPECT_EQ(res.code, ErrorCode::internal);
        EXPECT_NE(res.detail.find("injected"), std::string::npos);
    }
    EXPECT_EQ(server.totals().failures, kN);

    // The failed flight is gone; a retry combines successfully.
    auto retry = session.submit(ServeRequest{"asset", 4, std::nullopt}).get();
    ASSERT_TRUE(retry.ok()) << retry.detail;
    EXPECT_EQ(combines.load(), 2);
}

TEST(Session, CompletionCallbacksFireBeforeFuturesResolve) {
    ContentServer server;
    server.store().encode_bytes("asset", small_asset_bytes(50000, 9), 16);
    Session session(server, {2});

    std::atomic<int> called{0};
    auto fut = session.submit(ServeRequest{"asset", 4, std::nullopt},
                              [&](const ServeResult& res) {
                                  EXPECT_TRUE(res.ok());
                                  ++called;
                              });
    EXPECT_TRUE(fut.get().ok());
    EXPECT_EQ(called.load(), 1);  // callback completed before the future

    // A throwing callback must not tear down the worker.
    auto fut2 = session.submit(ServeRequest{"asset", 8, std::nullopt},
                               [&](const ServeResult&) {
                                   ++called;
                                   throw std::runtime_error("callback bug");
                               });
    EXPECT_TRUE(fut2.get().ok());
    EXPECT_EQ(called.load(), 2);
    EXPECT_TRUE(session.submit(ServeRequest{"asset", 2, std::nullopt}).get().ok());
}

TEST(Session, MixedSubmissionsMatchSerialServesAndSummarize) {
    ContentServer server;
    auto data = small_asset_bytes(100000, 13);
    server.store().encode_bytes("asset", data, 64);
    Session session(server, {3});

    std::vector<ServeRequest> reqs;
    for (u32 p : {2u, 8u, 16u, 2u, 8u, 64u})
        reqs.push_back(ServeRequest{"asset", p, std::nullopt});
    reqs.push_back(ServeRequest{"asset", 1, {{500, 900}}});
    reqs.push_back(ServeRequest{"missing", 1, std::nullopt});

    std::vector<std::shared_future<ServeResult>> futs;
    for (const auto& r : reqs) futs.push_back(session.submit(r));
    std::vector<ServeResult> results;
    for (auto& f : futs) results.push_back(f.get());
    session.wait_idle();  // future readiness precedes the worker's bookkeeping
    EXPECT_EQ(session.in_flight(), 0u);

    for (std::size_t i = 0; i + 1 < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].detail;
        auto direct = server.serve(reqs[i]);
        EXPECT_EQ(*results[i].wire, *direct.wire) << "request " << i;
    }
    EXPECT_EQ(results.back().code, ErrorCode::unknown_asset);

    const BatchStats batch = summarize(results);
    EXPECT_EQ(batch.requests, reqs.size());
    EXPECT_EQ(batch.failures, 1u);
    EXPECT_GE(batch.max_latency_seconds, 0.0);

    // A second identical round is fully warm: every valid request hits.
    std::vector<ServeResult> warm;
    for (const auto& r : reqs) warm.push_back(session.submit(r).get());
    EXPECT_EQ(summarize(warm).cache_hits, reqs.size() - 1);
}

TEST(Session, EvictionMidFlightDoesNotResurrectTheCacheEntry) {
    // Regression: a single-flight combine that finishes after evict_asset()
    // used to put its wire back into the cache — a stale entry for a deleted
    // asset, pinned until LRU pressure. The put must be gated on the asset
    // still being current.
    ContentServer* hook_target = nullptr;
    std::atomic<int> combines{0};
    ServerOptions opt;
    opt.combine_hook = [&](const std::string&) {
        // Evict while the combine is in flight (deterministic: the hook runs
        // after the flight is registered and before the wire is built).
        if (++combines == 1) hook_target->evict_asset("asset");
    };
    ContentServer server(opt);
    hook_target = &server;
    const auto v1 = small_asset_bytes(60000, 21);
    server.store().encode_bytes("asset", v1, 16);

    const ServeRequest req{"asset", 8, std::nullopt};
    auto res = server.serve(req);
    ASSERT_TRUE(res.ok()) << res.detail;  // the in-flight request completes
    EXPECT_EQ(server.cache().stats().entries, 0u)
        << "stale wire re-entered the cache after eviction";

    // The asset is gone everywhere; a fresh add under the same name must
    // combine anew (miss), not inherit anything from the evicted flight.
    EXPECT_EQ(server.serve(req).code, ErrorCode::unknown_asset);
    server.store().encode_bytes("asset", small_asset_bytes(60000, 22), 16);
    auto fresh = server.serve(req);
    ASSERT_TRUE(fresh.ok());
    EXPECT_FALSE(fresh.stats.cache_hit);
    EXPECT_EQ(combines.load(), 2);

    // Replacement mid-flight is gated identically: the old generation's
    // wire must not enter the cache under the replaced asset's key.
    opt.combine_hook = [&](const std::string&) {
        if (++combines == 3)
            hook_target->store().encode_bytes("asset", v1, 16);  // replace
    };
    ContentServer replaced(opt);
    hook_target = &replaced;
    combines = 2;
    replaced.store().encode_bytes("asset", small_asset_bytes(50000, 23), 16);
    ASSERT_TRUE(replaced.serve(req).ok());
    EXPECT_EQ(replaced.cache().stats().entries, 0u)
        << "replaced-generation wire entered the cache";
}

TEST(Session, OversizedPayloadsCountAsRejected) {
    // A payload larger than the whole cache is not cached — and no longer
    // silently: the rejected counter surfaces a mis-sized capacity.
    ServerOptions opt;
    opt.cache_capacity_bytes = 64;  // smaller than any real wire
    ContentServer server(opt);
    server.store().encode_bytes("asset", small_asset_bytes(50000, 27), 16);

    const ServeRequest req{"asset", 4, std::nullopt};
    ASSERT_TRUE(server.serve(req).ok());
    ASSERT_TRUE(server.serve(req).ok());
    const CacheStats s = server.cache().stats();
    EXPECT_EQ(s.rejected, 2u);
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.insertions, 0u);
    EXPECT_EQ(server.totals().cache_hits, 0u);
}

TEST(Session, ClearResetsContentsButKeepsCumulativeCounters) {
    MetadataCache cache(1 << 20);
    auto wire = std::make_shared<const std::vector<u8>>(100, u8{1});
    cache.put("a", 1, wire);
    ASSERT_NE(cache.get("a", 1), nullptr);
    EXPECT_EQ(cache.get("b", 1), nullptr);
    cache.put("big", 1,
              std::make_shared<const std::vector<u8>>((1 << 20) + 1, u8{2}));

    cache.clear();
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.bytes, 0u);    // current-size fields reset...
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.hits, 1u);     // ...cumulative counters survive
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_EQ(s.rejected, 1u);
    EXPECT_EQ(s.evictions, 0u);  // clear() is not an eviction
    EXPECT_EQ(cache.get("a", 1), nullptr);
}

/// Mirror of MetadataCache's LRU discipline (hit refreshes recency; miss
/// inserts at the front after the combine; oversized payloads skip the
/// cache; eviction pops the tail), fed with the observed wire sizes. The
/// serve path must agree with this model exactly.
u64 simulate_lru_hits(const std::vector<u32>& plan, const std::vector<u64>& sizes,
                      u64 capacity) {
    std::list<std::pair<u32, u64>> lru;  // front = most recently used
    u64 bytes = 0, hits = 0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        auto it = std::find_if(lru.begin(), lru.end(),
                               [&](const auto& e) { return e.first == plan[i]; });
        if (it != lru.end()) {
            ++hits;
            lru.splice(lru.begin(), lru, it);
            continue;
        }
        if (sizes[i] > capacity) continue;
        lru.emplace_front(plan[i], sizes[i]);
        bytes += sizes[i];
        while (bytes > capacity) {
            bytes -= lru.back().second;
            lru.pop_back();
        }
    }
    return hits;
}

TEST(Session, ZipfTrafficHitRateIsExactAndDeterministic) {
    // Zipf(s=1.2) traffic over 32 client classes against a cache that holds
    // ~8 responses: the skewed head stays resident. Driven through the
    // Session API with seeded xoshiro, so the hit count is exact — any
    // cache-policy change must consciously update this anchor.
    constexpr u32 kKeys = 32;
    constexpr int kRequests = 1200;
    const auto data = small_asset_bytes(60000, 41);

    // Shared traffic model (workload::zipf_plan): keys are parallelism
    // classes 1..kKeys. Same generator as bench_serve's policy study, so
    // the regression and the bench measure the same trace shape.
    const std::vector<u32> plan = workload::zipf_plan(kKeys, kRequests, 1.2,
                                                      2024);

    // Size the cache off the real wire size so the test tracks format
    // changes instead of hard-coding bytes.
    u64 wire_size = 0;
    {
        ContentServer probe;
        probe.store().encode_bytes("asset", data, 64);
        wire_size = probe.serve(ServeRequest{"asset", 1, std::nullopt})
                        .stats.wire_bytes;
    }
    const u64 capacity = wire_size * 8 + wire_size / 2;

    auto run = [&](std::vector<u64>* sizes_out) {
        ServerOptions opt;
        opt.cache_capacity_bytes = capacity;
        ContentServer server(opt);
        server.store().encode_bytes("asset", data, 64);
        Session session(server, {2});
        for (const u32 key : plan) {
            // Serial await keeps the request order (and thus LRU state)
            // fully deterministic while still driving the async API.
            const ServeResult res =
                session.submit(ServeRequest{"asset", key, std::nullopt}).get();
            EXPECT_TRUE(res.ok()) << res.detail;
            if (sizes_out != nullptr) sizes_out->push_back(res.stats.wire_bytes);
        }
        return server.totals();
    };

    std::vector<u64> sizes;
    const auto first = run(&sizes);
    EXPECT_EQ(first.requests, static_cast<u64>(kRequests));
    EXPECT_EQ(first.failures, 0u);
    EXPECT_EQ(first.coalesced_requests, 0u);  // serial: nothing to coalesce

    // The serve path's hit count must match the reference LRU model exactly.
    const u64 expected_hits = simulate_lru_hits(plan, sizes, capacity);
    EXPECT_EQ(first.cache_hits, expected_hits);

    // Zipf concentration keeps the hot head resident: comfortably over half
    // the traffic hits even though only ~8 of 32 classes fit.
    const double hit_rate =
        static_cast<double>(first.cache_hits) / static_cast<double>(kRequests);
    EXPECT_GE(hit_rate, 0.5) << "hit rate regressed: " << hit_rate;
    EXPECT_LT(hit_rate, 1.0);

    // Bit-for-bit deterministic: a fresh identical run reproduces totals.
    const auto second = run(nullptr);
    EXPECT_EQ(second.cache_hits, first.cache_hits);
    EXPECT_EQ(second.wire_bytes, first.wire_bytes);
    EXPECT_EQ(second.bytes_saved, first.bytes_saved);
}

struct PolicyRun {
    u64 hits = 0;
    u64 hit_bytes = 0;
    u64 wire_bytes = 0;
    u64 admission_rejected = 0;
    double hit_rate = 0;
    double byte_hit_rate = 0;
};

/// Drive a scan-polluted Zipf plan serially through the Session API against
/// one cache policy: scan slots (workload::zipf_scan_slot — the schedule
/// bench_serve's policy study shares) become unique, never-repeated range
/// requests (one-hit wonders with distinct cache keys), the rest follow
/// the Zipf class plan. Serial awaits keep cache state deterministic.
PolicyRun run_policy(const CachePolicyConfig& policy, u64 capacity,
                     const std::vector<u8>& data,
                     const std::vector<u32>& plan) {
    ServerOptions opt;
    opt.cache_capacity_bytes = capacity;
    opt.cache_policy = policy;
    ContentServer server(opt);
    server.store().encode_bytes("asset", data, 64);
    const u64 symbols = data.size();
    const u64 span = symbols / 4;
    Session session(server, {2});
    for (std::size_t i = 0; i < plan.size(); ++i) {
        ServeRequest req{"asset", plan[i], std::nullopt};
        if (workload::zipf_scan_slot(i)) {
            const u64 lo = workload::zipf_scan_lo(i, symbols, span);
            req.parallelism = 1;
            req.range = {{lo, lo + span}};
        }
        const ServeResult res = session.submit(req).get();
        EXPECT_TRUE(res.ok()) << res.detail;
    }
    PolicyRun out;
    const CacheStats c = server.cache().stats();
    const auto t = server.totals();
    out.hits = t.cache_hits;
    out.hit_bytes = c.hit_bytes;
    out.wire_bytes = t.wire_bytes;
    out.admission_rejected = c.admission_rejected;
    out.hit_rate = static_cast<double>(t.cache_hits) /
                   static_cast<double>(plan.size());
    out.byte_hit_rate = static_cast<double>(c.hit_bytes) /
                        static_cast<double>(t.wire_bytes);
    return out;
}

TEST(Session, SlruZipfHitRateHoldsTheFloor) {
    // The pure-Zipf harness above pins LRU exactly; SLRU on the same kind
    // of traffic must hold the same hit-rate floor (the skewed head stays
    // resident — promotion just changes who absorbs the tail misses).
    const auto data = small_asset_bytes(60000, 41);
    u64 wire_size = 0;
    {
        ContentServer probe;
        probe.store().encode_bytes("asset", data, 64);
        wire_size = probe.serve(ServeRequest{"asset", 1, std::nullopt})
                        .stats.wire_bytes;
    }
    const u64 capacity = wire_size * 8 + wire_size / 2;
    const auto plan = workload::zipf_plan(32, 900, 1.2, 2025);

    ServerOptions opt;
    opt.cache_capacity_bytes = capacity;
    opt.cache_policy.eviction = EvictionKind::slru;
    ContentServer server(opt);
    server.store().encode_bytes("asset", data, 64);
    Session session(server, {2});
    for (const u32 key : plan) {
        const ServeResult res =
            session.submit(ServeRequest{"asset", key, std::nullopt}).get();
        ASSERT_TRUE(res.ok()) << res.detail;
    }
    const double hit_rate =
        static_cast<double>(server.totals().cache_hits) /
        static_cast<double>(plan.size());
    EXPECT_GE(hit_rate, 0.5) << "SLRU hit rate regressed: " << hit_rate;
    EXPECT_LT(hit_rate, 1.0);

    // Determinism: same plan, same policy, same hits.
    ContentServer again(opt);
    again.store().encode_bytes("asset", data, 64);
    Session session2(again, {2});
    for (const u32 key : plan)
        ASSERT_TRUE(
            session2.submit(ServeRequest{"asset", key, std::nullopt})
                .get()
                .ok());
    EXPECT_EQ(again.totals().cache_hits, server.totals().cache_hits);
}

TEST(Session, SlruWithTinyLfuBeatsLruUnderScanPollution) {
    // The acceptance comparison: on Zipf traffic polluted with one-hit-
    // wonder scans, segmented LRU + size-aware admission must beat plain
    // LRU's byte-hit-rate. LRU admits every scan and evicts hot entries to
    // hold them; SLRU confines scans to probation; TinyLFU refuses them
    // outright (floor 1: nothing un-reused is worth caching).
    const auto data = small_asset_bytes(60000, 41);
    u64 wire_size = 0;
    {
        ContentServer probe;
        probe.store().encode_bytes("asset", data, 64);
        wire_size = probe.serve(ServeRequest{"asset", 1, std::nullopt})
                        .stats.wire_bytes;
    }
    const u64 capacity = wire_size * 8 + wire_size / 2;
    const auto plan = workload::zipf_plan(32, 1200, 1.2, 2024);

    CachePolicyConfig lru;  // defaults
    CachePolicyConfig gated;
    gated.eviction = EvictionKind::slru;
    gated.admission = AdmissionKind::tinylfu;
    gated.tinylfu_small_floor = 1;

    const PolicyRun base = run_policy(lru, capacity, data, plan);
    const PolicyRun best = run_policy(gated, capacity, data, plan);

    EXPECT_GT(best.byte_hit_rate, base.byte_hit_rate)
        << "slru+tinylfu " << best.byte_hit_rate << " vs lru "
        << base.byte_hit_rate;
    EXPECT_GT(best.hits, base.hits);
    EXPECT_GT(best.admission_rejected, 0u) << "the gate never fired";
    EXPECT_EQ(base.admission_rejected, 0u);
    // Absolute floor: with 1/3 of traffic unrepeatable, the gated policy
    // still serves over a third of all bytes from cache.
    EXPECT_GE(best.byte_hit_rate, 0.35);

    // The admission gate alone (LRU eviction) must also improve on plain
    // LRU: rejecting scans keeps the Zipf head resident.
    CachePolicyConfig lru_gated;
    lru_gated.admission = AdmissionKind::tinylfu;
    lru_gated.tinylfu_small_floor = 1;
    const PolicyRun gated_only = run_policy(lru_gated, capacity, data, plan);
    EXPECT_GT(gated_only.byte_hit_rate, base.byte_hit_rate);
}

}  // namespace
}  // namespace recoil::serve
