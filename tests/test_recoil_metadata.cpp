// Serialization tests for the §4.3 metadata codec: exact round-trip,
// compactness, and corruption rejection (failure injection).

#include <gtest/gtest.h>

#include "core/metadata_codec.hpp"
#include "core/recoil_encoder.hpp"
#include "test_util.hpp"

namespace recoil {
namespace {

RecoilMetadata make_meta(std::size_t n, double q, u32 max_splits) {
    auto syms = test::geometric_symbols<u8>(n, q, 256, max_splits * 7 + 1);
    auto m = test::model_for<u8>(syms, 11, 256);
    return recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, max_splits).metadata;
}

void expect_equal(const RecoilMetadata& a, const RecoilMetadata& b) {
    EXPECT_EQ(a.lanes, b.lanes);
    EXPECT_EQ(a.state_store_bits, b.state_store_bits);
    EXPECT_EQ(a.num_symbols, b.num_symbols);
    EXPECT_EQ(a.num_units, b.num_units);
    EXPECT_EQ(a.final_states, b.final_states);
    ASSERT_EQ(a.splits.size(), b.splits.size());
    for (std::size_t i = 0; i < a.splits.size(); ++i) {
        EXPECT_EQ(a.splits[i].offset, b.splits[i].offset) << i;
        EXPECT_EQ(a.splits[i].anchor_index, b.splits[i].anchor_index) << i;
        EXPECT_EQ(a.splits[i].min_index, b.splits[i].min_index) << i;
        EXPECT_EQ(a.splits[i].states, b.splits[i].states) << i;
        EXPECT_EQ(a.splits[i].indices, b.splits[i].indices) << i;
    }
}

TEST(MetadataCodec, RoundTripExact) {
    for (u32 max_splits : {1u, 2u, 16u, 128u}) {
        auto meta = make_meta(300000, 0.6, max_splits);
        auto bytes = serialize_metadata(meta);
        auto back = deserialize_metadata(bytes);
        expect_equal(meta, back);
    }
}

TEST(MetadataCodec, RoundTripSkewedData) {
    auto meta = make_meta(300000, 0.03, 32);
    auto back = deserialize_metadata(serialize_metadata(meta));
    expect_equal(meta, back);
}

TEST(MetadataCodec, CompactPerSplitCost) {
    // Paper §5.2: Recoil Large metadata is ~77 bytes/split at 32 lanes
    // (64B states + small difference series). Allow some slack.
    auto meta = make_meta(2000000, 0.6, 256);
    ASSERT_GE(meta.splits.size(), 200u);
    auto bytes = serialize_metadata(meta);
    const double fixed = 8.0 + 24 + 32 * 4;  // magic+header+final states
    const double per_split =
        (static_cast<double>(bytes.size()) - fixed) / static_cast<double>(meta.splits.size());
    EXPECT_LT(per_split, 90.0);
    EXPECT_GT(per_split, 64.0);  // at least the raw states
}

TEST(MetadataCodec, CombinedMetadataShrinksProportionally) {
    auto meta = make_meta(2000000, 0.6, 256);
    auto large = serialize_metadata(meta);
    auto small = serialize_metadata(combine_splits(meta, 16));
    EXPECT_LT(small.size() * 10, large.size());
}

TEST(MetadataCodec, BadMagicRejected) {
    auto meta = make_meta(50000, 0.5, 8);
    auto bytes = serialize_metadata(meta);
    bytes[0] = 'X';
    EXPECT_THROW(deserialize_metadata(bytes), Error);
}

TEST(MetadataCodec, TruncationRejected) {
    auto meta = make_meta(50000, 0.5, 8);
    auto bytes = serialize_metadata(meta);
    for (std::size_t cut : {std::size_t{4}, std::size_t{20}, bytes.size() - 5}) {
        std::vector<u8> t(bytes.begin(), bytes.begin() + cut);
        EXPECT_THROW(deserialize_metadata(t), Error) << "cut=" << cut;
    }
}

TEST(MetadataCodec, ValidateRejectsBrokenInvariants) {
    auto meta = make_meta(100000, 0.5, 8);
    ASSERT_GE(meta.splits.size(), 2u);
    {
        auto bad = meta;
        bad.splits[1].offset = bad.splits[0].offset;  // non-increasing offsets
        EXPECT_THROW(validate_metadata(bad), Error);
    }
    {
        auto bad = meta;
        bad.splits[0].states[3] = Rans32::lower_bound;  // state above bound
        EXPECT_THROW(validate_metadata(bad), Error);
    }
    {
        auto bad = meta;
        bad.splits[1].min_index = bad.splits[0].anchor_index;  // crossing sync
        EXPECT_THROW(validate_metadata(bad), Error);
    }
    {
        auto bad = meta;
        bad.splits[0].indices[5] += 1;  // lane misalignment
        EXPECT_THROW(validate_metadata(bad), Error);
    }
    {
        auto bad = meta;
        bad.splits[0].anchor_index = bad.num_symbols;  // out of range
        EXPECT_THROW(validate_metadata(bad), Error);
    }
}

TEST(MetadataCodec, HeaderFieldCorruptionRejected) {
    auto meta = make_meta(100000, 0.5, 16);
    auto bytes = serialize_metadata(meta);
    {
        auto bad = bytes;
        bad[4] = 0;  // zero lanes
        EXPECT_THROW(deserialize_metadata(bad), Error);
    }
    {
        auto bad = bytes;
        bad[5] = 40;  // absurd state width
        EXPECT_THROW(deserialize_metadata(bad), Error);
    }
}

TEST(MetadataCodec, FuzzRandomBytesNeverCrash) {
    // Arbitrary input must either parse (vacuously) or throw recoil::Error —
    // never crash or hang.
    Xoshiro256 rng(65);
    for (int iter = 0; iter < 300; ++iter) {
        std::vector<u8> junk(rng.below(600));
        for (auto& b : junk) b = static_cast<u8>(rng());
        try {
            auto meta = deserialize_metadata(junk);
            validate_metadata(meta);  // if it parsed, it must be coherent
        } catch (const Error&) {
            // expected for nearly all inputs
        }
    }
    SUCCEED();
}

TEST(MetadataCodec, FuzzMutatedValidMetadata) {
    // Mutations of real metadata must parse to something valid or throw.
    auto meta = make_meta(80000, 0.5, 32);
    auto bytes = serialize_metadata(meta);
    Xoshiro256 rng(66);
    for (int iter = 0; iter < 300; ++iter) {
        auto bad = bytes;
        const int flips = 1 + static_cast<int>(rng.below(8));
        for (int f = 0; f < flips; ++f)
            bad[rng.below(bad.size())] ^= static_cast<u8>(1u << rng.below(8));
        try {
            auto parsed = deserialize_metadata(bad);
            validate_metadata(parsed);
        } catch (const Error&) {
        }
    }
    SUCCEED();
}

TEST(MetadataCodec, PaperTable3Parameters) {
    // The experiment configuration of Table 3, asserted once.
    static_assert(Rans32::state_bits == 32);
    static_assert(Rans32::unit_bits == 16);               // b = 16
    static_assert(Rans32::lower_bound == (1u << 16));     // L = 2^16
    static_assert(Rans32::max_prob_bits == 16);           // n <= 16
    static_assert(kLanes == 32);                          // |E| = |D| = 32
    // b >= n guarantees single-step renormalization (Lemma 3.1 prerequisite).
    static_assert(Rans32::unit_bits >= Rans32::max_prob_bits ||
                  Rans32::lower_bound_log2 >= Rans32::max_prob_bits);
    SUCCEED();
}

TEST(MetadataCodec, NoSplitsStillRoundTrips) {
    auto meta = make_meta(10000, 0.5, 1);
    EXPECT_TRUE(meta.splits.empty());
    auto back = deserialize_metadata(serialize_metadata(meta));
    expect_equal(meta, back);
}

}  // namespace
}  // namespace recoil
