// Tests for the versioned serve wire protocol: request/response frames
// round-trip bit-exactly, every truncation and byte flip surfaces as a typed
// ProtocolError (never a crash), and ContentServer::serve_frame speaks the
// protocol end to end — including typed error responses for hostile frames.

#include <gtest/gtest.h>

#include "serve/server.hpp"
#include "test_util.hpp"

namespace recoil::serve {
namespace {

ServeRequest sample_request(bool with_range) {
    ServeRequest req;
    req.asset = "assets/video/trailer.rcf";
    req.parallelism = 2176;
    req.accept = kAcceptFile | kAcceptRange;
    if (with_range) req.range = {{123456789, 987654321}};
    return req;
}

TEST(Protocol, RequestRoundTripsExactly) {
    for (bool with_range : {false, true}) {
        const ServeRequest req = sample_request(with_range);
        const auto frame = encode_request(req);
        const ServeRequest got = decode_request(frame);
        EXPECT_EQ(got.asset, req.asset);
        EXPECT_EQ(got.parallelism, req.parallelism);
        EXPECT_EQ(got.accept, req.accept);
        EXPECT_EQ(got.range, req.range);
        // Deterministic serialization: re-encoding reproduces the frame.
        EXPECT_EQ(encode_request(got), frame);
    }
}

TEST(Protocol, ResponseRoundTripsExactly) {
    ServeResult res;
    res.code = ErrorCode::ok;
    res.payload = PayloadKind::range;
    res.wire = std::make_shared<const std::vector<u8>>(
        std::vector<u8>{1, 2, 3, 250, 251, 252});
    res.stats.splits_served = 17;
    res.stats.cache_hit = true;
    res.stats.coalesced = true;
    res.stats.wire_bytes = res.wire->size();

    const auto frame = encode_response(res);
    const ServeResult got = decode_response(frame);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.payload, PayloadKind::range);
    ASSERT_NE(got.wire, nullptr);
    EXPECT_EQ(*got.wire, *res.wire);
    EXPECT_EQ(got.stats.splits_served, 17u);
    EXPECT_TRUE(got.stats.cache_hit);
    EXPECT_TRUE(got.stats.coalesced);
    EXPECT_EQ(got.stats.wire_bytes, res.wire->size());
    EXPECT_EQ(encode_response(got), frame);
}

TEST(Protocol, ErrorResponseCarriesCodeAndDetailButNoPayload) {
    ServeResult res;
    res.code = ErrorCode::invalid_range;
    res.detail = "serve: range [9, 5) outside asset of 100 symbols";

    const ServeResult got = decode_response(encode_response(res));
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.code, ErrorCode::invalid_range);
    EXPECT_EQ(got.detail, res.detail);
    EXPECT_EQ(got.payload, PayloadKind::none);
    EXPECT_EQ(got.wire, nullptr);
}

TEST(Protocol, EncoderRejectsRequestsItsOwnDecoderWould) {
    // decode(encode(r)) must hold for every frame the encoder emits, so the
    // encoder fails fast on inputs the decoder's validation would bounce.
    EXPECT_THROW(encode_request(ServeRequest{}), Error);  // empty asset name
    ServeRequest zero_p = sample_request(false);
    zero_p.parallelism = 0;
    EXPECT_THROW(encode_request(zero_p), Error);
    ServeRequest no_accept = sample_request(false);
    no_accept.accept = 0;
    EXPECT_THROW(encode_request(no_accept), Error);
}

TEST(Protocol, EveryErrorCodeHasAName) {
    for (u16 c = 0; c <= static_cast<u16>(ErrorCode::frame_too_large); ++c)
        EXPECT_STRNE(error_name(static_cast<ErrorCode>(c)), "unknown") << c;
}

/// Decoding must fail with a typed code — malformed_frame for structural
/// damage, checksum_mismatch for payload damage — and must never crash.
template <typename DecodeFn>
void expect_typed_rejection(const std::vector<u8>& frame, DecodeFn&& decode) {
    // Truncation at every byte boundary, including the empty frame.
    for (std::size_t len = 0; len < frame.size(); ++len) {
        std::vector<u8> cut(frame.begin(), frame.begin() + len);
        try {
            decode(cut);
            FAIL() << "truncation to " << len << " bytes was accepted";
        } catch (const ProtocolError& e) {
            EXPECT_TRUE(e.code() == ErrorCode::malformed_frame ||
                        e.code() == ErrorCode::checksum_mismatch)
                << "len " << len << ": " << error_name(e.code());
        }
    }
    // A flipped bit at every byte offset: the frame checksum catches all of
    // them (flips inside the trailer included).
    for (std::size_t pos = 0; pos < frame.size(); ++pos) {
        std::vector<u8> bad = frame;
        bad[pos] ^= 0x10;
        try {
            decode(bad);
            FAIL() << "flip at " << pos << " was accepted";
        } catch (const ProtocolError& e) {
            EXPECT_NE(e.code(), ErrorCode::ok) << "pos " << pos;
        }
    }
}

TEST(Protocol, CorruptRequestFramesAreTypedErrors) {
    expect_typed_rejection(encode_request(sample_request(true)),
                           [](const std::vector<u8>& f) { decode_request(f); });
}

TEST(Protocol, CorruptResponseFramesAreTypedErrors) {
    ServeResult res;
    res.code = ErrorCode::ok;
    res.payload = PayloadKind::file;
    res.wire = std::make_shared<const std::vector<u8>>(
        test::geometric_symbols<u8>(96, 0.7, 256, 3));
    res.stats.splits_served = 4;
    expect_typed_rejection(encode_response(res),
                           [](const std::vector<u8>& f) { decode_response(f); });
}

/// Recompute the FNV trailer after tampering, as an attacker can.
std::vector<u8> reseal(std::vector<u8> f) {
    f.resize(f.size() - 8);
    const u64 sum = format::fnv1a(f);
    for (int i = 0; i < 8; ++i) f.push_back(static_cast<u8>(sum >> (8 * i)));
    return f;
}

TEST(Protocol, AppendedErrorCodesArePreservedNotRejected) {
    // The contract lets servers append new codes without a version bump; a
    // v1 client must surface them, not reject the frame as malformed.
    ServeResult res;
    res.code = ErrorCode::unknown_asset;
    res.detail = "from the future";
    auto frame = encode_response(res);
    frame[5] = 200;  // low byte of the u16 code at offset 5
    frame[6] = 0;
    const ServeResult got = decode_response(reseal(std::move(frame)));
    EXPECT_EQ(static_cast<u16>(got.code), 200u);
    EXPECT_FALSE(got.ok());
    EXPECT_STREQ(error_name(got.code), "unknown");
    EXPECT_EQ(got.detail, "from the future");
}

TEST(Protocol, ResealedHostileFramesStillRejected) {
    // Recomputing the checksum defeats the trailer, so structural checks
    // must hold on their own.
    const auto good = encode_request(sample_request(false));

    auto bad_version = good;
    bad_version[4] = 99;
    EXPECT_THROW(
        try { decode_request(reseal(bad_version)); } catch (const ProtocolError& e) {
            EXPECT_EQ(e.code(), ErrorCode::unsupported_version);
            throw;
        },
        ProtocolError);

    auto bad_accept = good;
    bad_accept[6] = 0;  // accepts nothing
    EXPECT_THROW(
        try { decode_request(reseal(bad_accept)); } catch (const ProtocolError& e) {
            EXPECT_EQ(e.code(), ErrorCode::bad_request);
            throw;
        },
        ProtocolError);

    auto bad_name_len = good;  // name length wraps past the frame
    for (int i = 0; i < 4; ++i) bad_name_len[12 + i] = 0xFF;
    EXPECT_THROW(decode_request(reseal(bad_name_len)), ProtocolError);

    // An ok response claiming no payload (or an error smuggling one) is
    // structurally inconsistent.
    ServeResult err;
    err.code = ErrorCode::unknown_asset;
    auto frame = encode_response(err);
    frame[5] = 0;  // code -> ok, but payload_kind stays none
    EXPECT_THROW(
        try { decode_response(reseal(frame)); } catch (const ProtocolError& e) {
            EXPECT_EQ(e.code(), ErrorCode::malformed_frame);
            throw;
        },
        ProtocolError);
}

TEST(Protocol, ServeFrameSpeaksTheProtocolEndToEnd) {
    ContentServer server;
    auto data = test::geometric_symbols<u8>(50000, 0.6, 256, 21);
    server.store().encode_bytes("asset", data, 16);

    ServeRequest req{"asset", 8, std::nullopt};
    auto response_frame = server.serve_frame(encode_request(req));
    auto res = decode_response(response_frame);
    ASSERT_TRUE(res.ok()) << res.detail;
    EXPECT_EQ(res.payload, PayloadKind::file);
    auto got = format::load_recoil_file(*res.wire);
    EXPECT_LE(got.metadata.num_splits(), 8u);

    // Unknown asset: a well-formed frame with a typed error code back.
    auto missing = decode_response(
        server.serve_frame(encode_request(ServeRequest{"nope", 1, std::nullopt})));
    EXPECT_EQ(missing.code, ErrorCode::unknown_asset);

    // Garbage in: typed error response out, not an exception or a crash.
    const std::vector<u8> garbage{'R', 'C', 'R', 'Q', 9, 9, 9, 9, 9, 9,
                                  9,   9,   9,   9,   9, 9, 9, 9, 9, 9};
    auto rejected = decode_response(server.serve_frame(garbage));
    EXPECT_EQ(rejected.code, ErrorCode::checksum_mismatch);

    // Range request over the frame boundary decodes to the right bytes.
    auto range_res = decode_response(server.serve_frame(
        encode_request(ServeRequest{"asset", 1, {{100, 1100}}})));
    ASSERT_TRUE(range_res.ok()) << range_res.detail;
    EXPECT_EQ(range_res.payload, PayloadKind::range);
    auto part = decode_range_wire(*range_res.wire);
    EXPECT_TRUE(std::equal(part.begin(), part.end(), data.begin() + 100));

    const auto t = server.totals();
    EXPECT_EQ(t.requests, 4u);
    EXPECT_EQ(t.failures, 2u);
}

}  // namespace
}  // namespace recoil::serve
