// Tests for baseline (B), the conventional partitioning-symbols codec.

#include <gtest/gtest.h>

#include "conventional/conventional.hpp"
#include "rans/indexed_model.hpp"
#include "test_util.hpp"

namespace recoil {
namespace {

TEST(Conventional, RoundTripAcrossPartitionCounts) {
    auto syms = test::geometric_symbols<u8>(200000, 0.6, 256, 31);
    auto m = test::model_for<u8>(syms, 11, 256);
    for (u32 parts : {1u, 2u, 16u, 100u, 2176u}) {
        auto enc = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, parts);
        auto dec = conventional_decode<Rans32, 32, u8>(enc, m.tables());
        ASSERT_EQ(dec.size(), syms.size()) << parts;
        EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin())) << parts;
    }
}

TEST(Conventional, ThreadPoolMatchesSerial) {
    auto syms = test::geometric_symbols<u8>(300000, 0.5, 256, 32);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, 64);
    ThreadPool pool(8);
    auto a = conventional_decode<Rans32, 32, u8>(enc, m.tables());
    auto b = conventional_decode<Rans32, 32, u8>(enc, m.tables(), &pool);
    EXPECT_EQ(a, b);
}

TEST(Conventional, PartitionsAreLaneAligned) {
    auto syms = test::geometric_symbols<u8>(100001, 0.5, 256, 33);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, 17);
    u64 expect_begin = 0;
    for (const auto& p : enc.partitions) {
        EXPECT_EQ(p.sym_begin % 32, 0u);
        EXPECT_EQ(p.sym_begin, expect_begin);
        expect_begin = p.sym_begin + p.sym_count;
    }
    EXPECT_EQ(expect_begin, syms.size());
}

TEST(Conventional, OverheadGrowsLinearlyWithPartitions) {
    auto syms = test::geometric_symbols<u8>(400000, 0.6, 256, 34);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto e1 = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, 1);
    auto e16 = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, 16);
    auto e256 = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, 256);
    EXPECT_EQ(e1.overhead_bytes(), 0u);
    EXPECT_EQ(e16.overhead_bytes(), 15u * (8 + 32 * 4));
    EXPECT_EQ(e256.overhead_bytes(), 255u * (8 + 32 * 4));
    // Each partition keeps ~32*16 payload bits in its (table-stored) final
    // states instead of the bitstream, so the *total* is what grows.
    const u64 t1 = e1.payload_bytes() + e1.overhead_bytes();
    const u64 t16 = e16.payload_bytes() + e16.overhead_bytes();
    const u64 t256 = e256.payload_bytes() + e256.overhead_bytes();
    EXPECT_LT(t1, t16);
    EXPECT_LT(t16, t256);
    // And the growth is dominated by the linear per-partition overhead.
    EXPECT_GT(t256 - t1, 240u * 64);
}

TEST(Conventional, MorePartitionsThanGroupsDegrades) {
    auto syms = test::geometric_symbols<u8>(320, 0.5, 256, 35);  // 10 groups
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, 100);
    EXPECT_LE(enc.partitions.size(), 10u);
    auto dec = conventional_decode<Rans32, 32, u8>(enc, m.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
}

TEST(Conventional, AdaptiveModelSeesGlobalIndices) {
    const std::size_t n = 64000;
    Xoshiro256 rng(36);
    std::vector<u8> syms(n), ids(n);
    for (std::size_t i = 0; i < n; ++i) {
        ids[i] = static_cast<u8>((i / 1000) % 3);
        syms[i] = static_cast<u8>(rng.below(ids[i] == 2 ? 4 : 64));
    }
    std::vector<std::vector<u64>> counts(3, std::vector<u64>(256, 1));
    for (std::size_t i = 0; i < n; ++i) ++counts[ids[i]][syms[i]];
    std::vector<StaticModel> models;
    for (auto& c : counts) models.emplace_back(c, 12);
    IndexedModelSet set(std::move(models), ids);
    auto enc = conventional_encode<Rans32, 32>(std::span<const u8>(syms), set, 16);
    auto dec = conventional_decode<Rans32, 32, u8>(enc, set.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
}

TEST(Conventional, EmptyInput) {
    std::vector<u64> counts(4, 1);
    StaticModel m(counts, 8);
    std::vector<u8> syms;
    auto enc = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, 8);
    auto dec = conventional_decode<Rans32, 32, u8>(enc, m.tables());
    EXPECT_TRUE(dec.empty());
}

TEST(Conventional, SixteenBitSymbols) {
    auto syms = test::geometric_symbols<u16>(90000, 0.97, 4096, 37);
    std::vector<u64> counts(4096, 0);
    for (u16 s : syms) ++counts[s];
    StaticModel m(counts, 16);
    auto enc = conventional_encode<Rans32, 32>(std::span<const u16>(syms), m, 32);
    auto dec = conventional_decode<Rans32, 32, u16>(enc, m.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
}

}  // namespace
}  // namespace recoil
