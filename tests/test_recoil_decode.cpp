// End-to-end correctness of the Recoil 3-phase decoder: split decode must be
// bit-identical to serial decode across data skews, split counts, symbol
// widths, adaptive models, and after split combining; serial and thread-pool
// execution must agree.

#include <gtest/gtest.h>

#include "core/recoil_decoder.hpp"
#include "core/recoil_encoder.hpp"
#include "rans/indexed_model.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace recoil {
namespace {

template <typename TSym>
void expect_decode_matches(const RecoilEncoded<Rans32, 32>& enc,
                           const DecodeTables& t, std::span<const TSym> syms,
                           ThreadPool* pool) {
    RecoilDecodeStats stats;
    auto dec = recoil_decode<Rans32, 32, TSym>(
        std::span<const u16>(enc.bitstream.units), enc.metadata, t, pool, &stats);
    ASSERT_EQ(dec.size(), syms.size());
    for (std::size_t i = 0; i < syms.size(); ++i)
        ASSERT_EQ(dec[i], syms[i]) << "mismatch at " << i;
    if (enc.metadata.num_splits() > 1) {
        EXPECT_GT(stats.sync_symbols, 0u);
        // Every sync-section position is either decoded (discarded) or
        // skipped in phase 1, and every sync section is re-decoded exactly
        // once by the next thread's cross-boundary phase.
        EXPECT_EQ(stats.sync_symbols + stats.skipped_positions, stats.cross_symbols);
    }
}

TEST(RecoilDecode, MatchesSerialAcrossSplitCounts) {
    auto syms = test::geometric_symbols<u8>(300000, 0.6, 256, 77);
    auto m = test::model_for<u8>(syms, 11, 256);
    for (u32 splits : {1u, 2u, 3u, 16u, 64u, 256u}) {
        auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, splits);
        expect_decode_matches<u8>(enc, m.tables(), syms, nullptr);
    }
}

TEST(RecoilDecode, ThreadPoolMatches) {
    auto syms = test::geometric_symbols<u8>(500000, 0.55, 256, 78);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, 128);
    ThreadPool pool(8);
    expect_decode_matches<u8>(enc, m.tables(), syms, &pool);
}

TEST(RecoilDecode, HighlySkewedData) {
    auto syms = test::geometric_symbols<u8>(200000, 0.03, 256, 79);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, 32);
    expect_decode_matches<u8>(enc, m.tables(), syms, nullptr);
}

TEST(RecoilDecode, NearlyIncompressibleData) {
    auto syms = test::geometric_symbols<u8>(200000, 0.995, 256, 80);
    auto m = test::model_for<u8>(syms, 16, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, 64);
    expect_decode_matches<u8>(enc, m.tables(), syms, nullptr);
}

TEST(RecoilDecode, SixteenBitSymbolsProbBits16) {
    auto syms = test::geometric_symbols<u16>(150000, 0.97, 4096, 81);
    std::vector<u64> counts(4096, 0);
    for (u16 s : syms) ++counts[s];
    StaticModel m(counts, 16);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u16>(syms), m, 48);
    expect_decode_matches<u16>(enc, m.tables(), syms, nullptr);
}

TEST(RecoilDecode, AdaptiveIndexedModel) {
    // Two alternating contexts with very different distributions — exercises
    // the per-symbol-index model dispatch across split boundaries.
    const std::size_t n = 120000;
    Xoshiro256 rng(82);
    std::vector<u8> syms(n);
    std::vector<u8> ids(n);
    for (std::size_t i = 0; i < n; ++i) {
        ids[i] = static_cast<u8>((i / 7) % 2);
        const double q = ids[i] == 0 ? 0.2 : 0.9;
        u32 v = 0;
        while (v < 255 && rng.uniform() < q) ++v;
        syms[i] = static_cast<u8>(v);
    }
    std::vector<u64> c0(256, 0), c1(256, 0);
    for (std::size_t i = 0; i < n; ++i) (ids[i] == 0 ? c0 : c1)[syms[i]]++;
    for (u32 s = 0; s < 256; ++s) {  // smooth so every symbol is encodable
        ++c0[s];
        ++c1[s];
    }
    std::vector<StaticModel> models{StaticModel(c0, 12), StaticModel(c1, 12)};
    IndexedModelSet set(std::move(models), ids);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), set, 32);
    expect_decode_matches<u8>(enc, set.tables(), syms, nullptr);
}

TEST(RecoilDecode, CombinedSplitsDecodeIdentically) {
    auto syms = test::geometric_symbols<u8>(400000, 0.6, 256, 83);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, 256);
    ThreadPool pool(8);
    for (u32 target : {64u, 16u, 5u, 2u, 1u}) {
        auto meta = combine_splits(enc.metadata, target);
        auto dec = recoil_decode<Rans32, 32, u8>(
            std::span<const u16>(enc.bitstream.units), meta, m.tables(), &pool);
        ASSERT_EQ(dec.size(), syms.size());
        EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()))
            << "combined to " << target;
    }
}

TEST(RecoilDecode, EachSplitDecodesItsOwnRange) {
    // Decode splits one at a time into separate buffers; the union must cover
    // every position exactly once (phases 2+3 partition the stream).
    auto syms = test::geometric_symbols<u8>(100000, 0.5, 256, 84);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, 8);
    const u32 S = enc.metadata.num_splits();
    ASSERT_GT(S, 1u);
    std::vector<int> covered(syms.size(), 0);
    for (u32 k = 0; k < S; ++k) {
        std::vector<u8> buf(syms.size(), 0xEE);
        recoil_decode_split<Rans32, 32, u8>(std::span<const u16>(enc.bitstream.units),
                                            enc.metadata, m.tables(), k, buf.data());
        for (std::size_t i = 0; i < syms.size(); ++i) {
            if (buf[i] != 0xEE || syms[i] == 0xEE) {
                // Position written (or coincidentally matching the sentinel —
                // resolve by checking correctness below).
                if (buf[i] == syms[i] && buf[i] != 0xEE) ++covered[i];
            }
        }
    }
    // Sentinel collisions make exact counting fuzzy for 0xEE symbols; check
    // a sample of non-sentinel positions instead.
    std::size_t checked = 0;
    for (std::size_t i = 0; i < syms.size(); ++i) {
        if (syms[i] == 0xEE) continue;
        EXPECT_EQ(covered[i], 1) << "position " << i << " covered " << covered[i];
        ++checked;
    }
    EXPECT_GT(checked, syms.size() / 2);
}

TEST(RecoilDecode, LaneCountMismatchThrows) {
    auto syms = test::geometric_symbols<u8>(10000, 0.5, 256, 85);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, 4);
    auto meta = enc.metadata;
    meta.lanes = 16;
    EXPECT_THROW((recoil_decode<Rans32, 32, u8>(
                     std::span<const u16>(enc.bitstream.units), meta, m.tables())),
                 Error);
}

TEST(RecoilDecode, ByteUnitConfig) {
    auto syms = test::geometric_symbols<u8>(150000, 0.6, 256, 86);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = recoil_encode<Rans32x8, 32>(std::span<const u8>(syms), m, 16);
    EXPECT_EQ(enc.metadata.state_store_bits, 23u);
    auto dec = recoil_decode<Rans32x8, 32, u8>(std::span<const u8>(enc.bitstream.units),
                                               enc.metadata, m.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
}

TEST(RecoilDecode, TinyStreams) {
    std::vector<u64> counts(256, 1);
    StaticModel m(counts, 8);
    for (std::size_t n : {0u, 1u, 31u, 32u, 100u}) {
        auto syms = test::geometric_symbols<u8>(n, 0.5, 256, 90 + n);
        auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, 16);
        auto dec = recoil_decode<Rans32, 32, u8>(
            std::span<const u16>(enc.bitstream.units), enc.metadata, m.tables());
        ASSERT_EQ(dec.size(), n);
        EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
    }
}

// Property sweep: random parameters, split decode == input.
struct DecodeSweepParam {
    std::size_t n;
    double q;
    u32 prob_bits;
    u32 splits;
};

class RecoilDecodeSweep : public ::testing::TestWithParam<DecodeSweepParam> {};

TEST_P(RecoilDecodeSweep, RoundTrip) {
    const auto p = GetParam();
    auto syms = test::geometric_symbols<u8>(p.n, p.q, 256,
                                            p.n * 31 + p.splits);
    auto m = test::model_for<u8>(syms, p.prob_bits, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, p.splits);
    ThreadPool pool(4);
    auto dec = recoil_decode<Rans32, 32, u8>(std::span<const u16>(enc.bitstream.units),
                                             enc.metadata, m.tables(), &pool);
    ASSERT_EQ(dec.size(), syms.size());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoilDecodeSweep,
    ::testing::Values(DecodeSweepParam{50000, 0.3, 8, 7},
                      DecodeSweepParam{80000, 0.5, 11, 16},
                      DecodeSweepParam{120000, 0.7, 12, 33},
                      DecodeSweepParam{60000, 0.9, 14, 9},
                      DecodeSweepParam{250000, 0.6, 11, 200},
                      DecodeSweepParam{40000, 0.1, 11, 12},
                      DecodeSweepParam{100000, 0.98, 16, 24}),
    [](const auto& info) {
        return "n" + std::to_string(info.param.n) + "_q" +
               std::to_string(static_cast<int>(info.param.q * 100)) + "_pb" +
               std::to_string(info.param.prob_bits) + "_s" +
               std::to_string(info.param.splits);
    });

}  // namespace
}  // namespace recoil
