#include "util/bitio.hpp"

#include <gtest/gtest.h>

#include "util/xoshiro.hpp"

namespace recoil {
namespace {

TEST(BitIO, SingleField) {
    BitWriter bw;
    bw.put(0b101, 3);
    auto bytes = bw.finish();
    ASSERT_EQ(bytes.size(), 1u);
    BitReader br(bytes);
    EXPECT_EQ(br.get(3), 0b101u);
}

TEST(BitIO, MixedWidthsRoundTrip) {
    BitWriter bw;
    bw.put(1, 1);
    bw.put(0x2a, 6);
    bw.put(0x1ffff, 17);
    bw.put(0, 1);
    bw.put(0x123456789abcdull, 50);
    auto bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(br.get(1), 1u);
    EXPECT_EQ(br.get(6), 0x2au);
    EXPECT_EQ(br.get(17), 0x1ffffu);
    EXPECT_EQ(br.get(1), 0u);
    EXPECT_EQ(br.get(50), 0x123456789abcdull);
}

TEST(BitIO, SignedValues) {
    BitWriter bw;
    bw.put_signed(-5, 4);
    bw.put_signed(5, 4);
    bw.put_signed(0, 1);
    bw.put_signed(-(1 << 20), 21);
    auto bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(br.get_signed(4), -5);
    EXPECT_EQ(br.get_signed(4), 5);
    EXPECT_EQ(br.get_signed(1), 0);
    EXPECT_EQ(br.get_signed(21), -(1 << 20));
}

TEST(BitIO, BitCountMatches) {
    BitWriter bw;
    bw.put(1, 1);
    bw.put(3, 2);
    EXPECT_EQ(bw.bit_count(), 3u);
    bw.put(0, 13);
    EXPECT_EQ(bw.bit_count(), 16u);
}

TEST(BitIO, ReaderOutOfDataThrows) {
    BitWriter bw;
    bw.put(1, 4);
    auto bytes = bw.finish();
    BitReader br(bytes);
    br.get(4);
    br.get(4);  // padding bits of the same byte are readable
    EXPECT_THROW(br.get(8), Error);
}

TEST(BitIO, WidthValidation) {
    BitWriter bw;
    EXPECT_THROW(bw.put(0, 0), Error);
    EXPECT_THROW(bw.put(0, 58), Error);
    EXPECT_THROW(bw.put(2, 1), Error);  // value too wide for field
}

TEST(BitIO, RandomizedRoundTrip) {
    Xoshiro256 rng(42);
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<std::pair<u64, u32>> fields;
        BitWriter bw;
        const int n = 1 + static_cast<int>(rng.below(200));
        for (int i = 0; i < n; ++i) {
            const u32 w = 1 + static_cast<u32>(rng.below(57));
            const u64 v = rng() & ((w == 64) ? ~u64{0} : ((u64{1} << w) - 1));
            fields.emplace_back(v, w);
            bw.put(v, w);
        }
        auto bytes = bw.finish();
        BitReader br(bytes);
        for (auto [v, w] : fields) EXPECT_EQ(br.get(w), v);
    }
}

TEST(BitIO, EmptyWriterFinish) {
    BitWriter bw;
    EXPECT_TRUE(bw.finish().empty());
}

}  // namespace
}  // namespace recoil
