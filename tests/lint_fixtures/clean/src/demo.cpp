// Fixture source: registers every frozen name, no naked locking.
void register_all(Registry& reg) {
    reg.counter("demo_requests_total");
    reg.counter("demo_bytes_total");
}
