#pragma once
// Fixture header: starts with pragma once, uses the annotated wrapper.
#include "util/thread_annotations.hpp"

struct Demo {
    util::Mutex mu_;
};
