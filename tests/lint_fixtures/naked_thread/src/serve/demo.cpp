// Fixture source: spawns a dedicated producer thread inside src/serve/ —
// the naked-thread gate must fire (twice: the include and the spawn); the
// other gates stay clean.
#include <thread>

void register_all(Registry& reg) {
    std::thread producer([] {});
    producer.join();
    reg.counter("demo_requests_total");
}
