// Fixture source: the registration drifted from the frozen catalogue.
void register_all(Registry& reg) {
    reg.counter("demo_renamed_total");
}
