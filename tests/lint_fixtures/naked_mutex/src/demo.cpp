// Fixture source: locks with the raw std primitives instead of the
// annotated util:: wrappers — both gates must fire.
#include <mutex>

void register_all(Registry& reg) {
    static std::mutex mu;
    std::scoped_lock lk(mu);
    reg.counter("demo_requests_total");
}
