#pragma once
// Shared helpers for the test suite: deterministic synthetic symbol streams
// with controllable skew, and model construction shortcuts.

#include <span>
#include <vector>

#include "rans/static_model.hpp"
#include "rans/symbol_stats.hpp"
#include "util/xoshiro.hpp"

namespace recoil::test {

/// Geometric-ish symbol stream over [0, alphabet): p(k) ~ q^k. q close to 1
/// is nearly uniform (incompressible), small q is highly skewed.
template <typename TSym = u8>
std::vector<TSym> geometric_symbols(std::size_t n, double q, u32 alphabet,
                                    u64 seed) {
    Xoshiro256 rng(seed);
    std::vector<TSym> out(n);
    for (auto& s : out) {
        u32 v = 0;
        while (v + 1 < alphabet && rng.uniform() < q) ++v;
        s = static_cast<TSym>(v);
    }
    return out;
}

template <typename TSym = u8>
StaticModel model_for(std::span<const TSym> syms, u32 prob_bits, u32 alphabet) {
    std::vector<u64> counts(alphabet, 0);
    for (TSym s : syms) ++counts[static_cast<u32>(s)];
    return StaticModel(counts, prob_bits);
}

}  // namespace recoil::test
