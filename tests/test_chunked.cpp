// Tests for the chunked streaming layer: per-chunk models, two-level
// parallel decode, random access, adaptive serving and corruption handling.

#include <gtest/gtest.h>

#include "stream/chunked.hpp"
#include "test_util.hpp"
#include "workload/datasets.hpp"

namespace recoil {
namespace {

using namespace stream;

std::vector<std::vector<u8>> make_chunks(int count, u64 seed) {
    std::vector<std::vector<u8>> chunks;
    Xoshiro256 rng(seed);
    for (int i = 0; i < count; ++i) {
        // Wildly different sizes and statistics per chunk: each gets its own
        // model, like frames of different content.
        const std::size_t n = 5000 + rng.below(120000);
        const double q = 0.1 + 0.8 * rng.uniform();
        chunks.push_back(test::geometric_symbols<u8>(n, q, 256, seed * 100 + i));
    }
    return chunks;
}

std::vector<u8> concat(const std::vector<std::vector<u8>>& chunks) {
    std::vector<u8> all;
    for (const auto& c : chunks) all.insert(all.end(), c.begin(), c.end());
    return all;
}

TEST(Chunked, RoundTripMultipleChunks) {
    auto chunks = make_chunks(7, 1);
    ChunkedEncoder enc;
    for (const auto& c : chunks) enc.add_chunk(c);
    auto stream = enc.finish();
    EXPECT_EQ(stream.chunks.size(), 7u);
    auto dec = decode_chunked(stream);
    EXPECT_EQ(dec, concat(chunks));
}

TEST(Chunked, ParallelMatchesSerial) {
    auto chunks = make_chunks(9, 2);
    ChunkedEncoder enc;
    for (const auto& c : chunks) enc.add_chunk(c);
    auto stream = enc.finish();
    ThreadPool pool(8);
    auto serial = decode_chunked(stream, nullptr);
    auto parallel = decode_chunked(stream, &pool);
    EXPECT_EQ(serial, parallel);
}

TEST(Chunked, RandomAccessSingleChunk) {
    auto chunks = make_chunks(5, 3);
    ChunkedEncoder enc;
    for (const auto& c : chunks) enc.add_chunk(c);
    auto stream = enc.finish();
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        auto dec = decode_chunk(stream.chunks[i], stream.prob_bits);
        EXPECT_EQ(dec, chunks[i]) << "chunk " << i;
    }
}

TEST(Chunked, SerializeParseRoundTrip) {
    auto chunks = make_chunks(4, 4);
    ChunkedEncoder enc;
    for (const auto& c : chunks) enc.add_chunk(c);
    auto stream = enc.finish();
    auto bytes = stream.serialize();
    auto back = ChunkedStream::parse(bytes);
    EXPECT_EQ(back.prob_bits, stream.prob_bits);
    ASSERT_EQ(back.chunks.size(), stream.chunks.size());
    auto dec = decode_chunked(back);
    EXPECT_EQ(dec, concat(chunks));
}

TEST(Chunked, CombinedServingScalesParallelism) {
    auto chunks = make_chunks(6, 5);
    ChunkedEncoder enc({11, 64});
    for (const auto& c : chunks) enc.add_chunk(c);
    auto stream = enc.finish();
    const u64 full = stream.total_splits();
    EXPECT_GT(full, 32u);
    auto small = stream.combined(8);
    EXPECT_LE(small.total_splits(), 8u + stream.chunks.size());
    EXPECT_LT(small.serialize().size(), stream.serialize().size());
    ThreadPool pool(4);
    EXPECT_EQ(decode_chunked(small, &pool), concat(chunks));
}

TEST(Chunked, CorruptionDetected) {
    auto chunks = make_chunks(3, 6);
    ChunkedEncoder enc;
    for (const auto& c : chunks) enc.add_chunk(c);
    auto bytes = enc.finish().serialize();
    Xoshiro256 rng(7);
    for (int iter = 0; iter < 20; ++iter) {
        auto bad = bytes;
        bad[rng.below(bad.size())] ^= static_cast<u8>(1 + rng.below(255));
        EXPECT_THROW(ChunkedStream::parse(bad), Error);
    }
    std::vector<u8> truncated(bytes.begin(), bytes.begin() + bytes.size() / 3);
    EXPECT_THROW(ChunkedStream::parse(truncated), Error);
}

TEST(Chunked, SingleTinyChunk) {
    ChunkedEncoder enc;
    std::vector<u8> tiny{1, 2, 3, 1, 2, 3, 9};
    enc.add_chunk(tiny);
    auto stream = enc.finish();
    EXPECT_EQ(decode_chunked(stream), tiny);
}

TEST(Chunked, EmptyChunkRejected) {
    ChunkedEncoder enc;
    std::vector<u8> empty;
    EXPECT_THROW(enc.add_chunk(empty), Error);
}

TEST(Chunked, ManySmallChunksSaturateFlatWorkList) {
    std::vector<std::vector<u8>> chunks;
    for (int i = 0; i < 64; ++i)
        chunks.push_back(test::geometric_symbols<u8>(3000, 0.5, 256, 800 + i));
    ChunkedEncoder enc({11, 4});
    for (const auto& c : chunks) enc.add_chunk(c);
    auto stream = enc.finish();
    EXPECT_GE(stream.total_splits(), 64u);
    ThreadPool pool(8);
    EXPECT_EQ(decode_chunked(stream, &pool), concat(chunks));
}

}  // namespace
}  // namespace recoil
