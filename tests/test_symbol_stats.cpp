#include "rans/symbol_stats.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"
#include "util/xoshiro.hpp"

namespace recoil {
namespace {

TEST(Histogram, CountsBytes) {
    std::vector<u8> data{0, 1, 1, 2, 2, 2, 255};
    auto h = histogram(data);
    EXPECT_EQ(h[0], 1u);
    EXPECT_EQ(h[1], 2u);
    EXPECT_EQ(h[2], 3u);
    EXPECT_EQ(h[255], 1u);
    EXPECT_EQ(std::accumulate(h.begin(), h.end(), u64{0}), data.size());
}

TEST(Histogram, SixteenBit) {
    std::vector<u16> data{0, 4095, 4095, 17};
    auto h = histogram16(data, 4096);
    EXPECT_EQ(h[0], 1u);
    EXPECT_EQ(h[4095], 2u);
    EXPECT_EQ(h[17], 1u);
}

TEST(Quantize, SumsToTarget) {
    for (u32 n : {8u, 11u, 16u}) {
        std::vector<u64> counts(256);
        Xoshiro256 rng(n);
        for (auto& c : counts) c = rng.below(10000);
        auto pdf = quantize_pdf(counts, n);
        EXPECT_EQ(std::accumulate(pdf.begin(), pdf.end(), u64{0}), u64{1} << n);
    }
}

TEST(Quantize, PresentSymbolsGetNonZero) {
    std::vector<u64> counts(256, 0);
    counts[3] = 1;            // extremely rare
    counts[7] = 100000000;    // dominant
    auto pdf = quantize_pdf(counts, 11);
    EXPECT_GE(pdf[3], 1u);
    EXPECT_EQ(pdf[0], 0u);
    EXPECT_GT(pdf[7], 1900u);
}

TEST(Quantize, AbsentSymbolsStayZero) {
    std::vector<u64> counts(256, 5);
    counts[100] = 0;
    auto pdf = quantize_pdf(counts, 11);
    EXPECT_EQ(pdf[100], 0u);
}

TEST(Quantize, ManyRareSymbolsReclaimed) {
    // 255 rare symbols each force f=1; the dominant symbol must absorb the
    // rounding so the total still hits 2^n exactly.
    std::vector<u64> counts(256, 1);
    counts[0] = 1u << 30;
    auto pdf = quantize_pdf(counts, 8);
    EXPECT_EQ(std::accumulate(pdf.begin(), pdf.end(), u64{0}), 256u);
    for (u32 s = 1; s < 256; ++s) EXPECT_EQ(pdf[s], 1u);
    EXPECT_EQ(pdf[0], 1u);
}

TEST(Quantize, SingleSymbol) {
    std::vector<u64> counts(4, 0);
    counts[2] = 42;
    auto pdf = quantize_pdf(counts, 11);
    EXPECT_EQ(pdf[2], u32{1} << 11);
}

TEST(Quantize, TooManySymbolsThrows) {
    std::vector<u64> counts(512, 1);
    EXPECT_THROW(quantize_pdf(counts, 8), Error);  // 512 present > 2^8
}

TEST(Quantize, EmptyThrows) {
    std::vector<u64> counts(8, 0);
    EXPECT_THROW(quantize_pdf(counts, 8), Error);
}

TEST(Cumulative, PrefixSum) {
    std::vector<u32> pdf{1, 0, 3, 4};
    auto cum = cumulative(pdf);
    ASSERT_EQ(cum.size(), 5u);
    EXPECT_EQ(cum[0], 0u);
    EXPECT_EQ(cum[1], 1u);
    EXPECT_EQ(cum[2], 1u);
    EXPECT_EQ(cum[3], 4u);
    EXPECT_EQ(cum[4], 8u);
}

class QuantizeSweep : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(QuantizeSweep, AlwaysNormalized) {
    auto [prob_bits, alphabet] = GetParam();
    Xoshiro256 rng(prob_bits * 1000 + alphabet);
    for (int iter = 0; iter < 20; ++iter) {
        std::vector<u64> counts(alphabet);
        for (auto& c : counts) c = rng.below(1u << rng.below(20));
        if (std::accumulate(counts.begin(), counts.end(), u64{0}) == 0) counts[0] = 1;
        u64 present = 0;
        for (u64 c : counts) present += (c > 0);
        if (present > (u64{1} << prob_bits)) continue;
        auto pdf = quantize_pdf(counts, prob_bits);
        EXPECT_EQ(std::accumulate(pdf.begin(), pdf.end(), u64{0}), u64{1} << prob_bits);
        for (u32 s = 0; s < alphabet; ++s) {
            EXPECT_EQ(pdf[s] > 0, counts[s] > 0) << "symbol " << s;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Params, QuantizeSweep,
    ::testing::Combine(::testing::Values(8u, 11u, 12u, 16u),
                       ::testing::Values(2u, 27u, 256u, 4096u)));

}  // namespace
}  // namespace recoil
