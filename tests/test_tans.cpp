// Tests for the tANS substrate and the multians-style self-synchronizing
// parallel decoder (baseline C).

#include <gtest/gtest.h>

#include <cmath>

#include "rans/symbol_stats.hpp"
#include "tans/multians.hpp"
#include "tans/tans_codec.hpp"
#include "test_util.hpp"

namespace recoil {
namespace {

TansTable table_for(std::span<const u8> syms, u32 table_log) {
    std::vector<u64> counts(256, 0);
    for (u8 s : syms) ++counts[s];
    auto pdf = quantize_pdf(counts, table_log);
    return TansTable(pdf, table_log);
}

TEST(TansTable, DecodeEntriesWellFormed) {
    auto syms = test::geometric_symbols<u8>(20000, 0.5, 256, 51);
    auto t = table_for(syms, 11);
    std::vector<u32> per_sym(256, 0);
    for (u32 slot = 0; slot < t.table_size(); ++slot) {
        const auto& e = t.decode_entry(slot);
        EXPECT_LE(e.nbits, 11u);
        EXPECT_LT(u32{e.base} + ((u32{1} << e.nbits) - 1), t.table_size());
        ++per_sym[e.sym];
    }
    for (u32 s = 0; s < 256; ++s) EXPECT_EQ(per_sym[s], t.freq(s));
}

TEST(TansTable, EncodeStepInvertsDecode) {
    auto syms = test::geometric_symbols<u8>(20000, 0.6, 256, 52);
    auto t = table_for(syms, 11);
    const u32 L = t.table_size();
    // For every slot: decoding undoes encoding of that entry's symbol.
    for (u32 slot = 0; slot < L; ++slot) {
        const auto& d = t.decode_entry(slot);
        // Encoding d.sym from full state (L + prev_slot) must reach `slot`
        // where prev_slot = d.base + bits.
        for (u32 bits : {u32{0}, (u32{1} << d.nbits) - 1}) {
            const u32 prev_slot = d.base + bits;
            const auto step = t.encode_step(L + prev_slot, d.sym);
            EXPECT_EQ(step.next_slot, slot);
            EXPECT_EQ(step.nbits, d.nbits);
            EXPECT_EQ(step.bits, bits);
        }
    }
}

TEST(TansCodec, RoundTrip) {
    for (double q : {0.1, 0.5, 0.9}) {
        auto syms = test::geometric_symbols<u8>(50000, q, 256, 53);
        auto t = table_for(syms, 11);
        auto enc = tans_encode<u8>(syms, t);
        auto dec = tans_decode<u8>(enc, t);
        EXPECT_EQ(dec, syms);
    }
}

TEST(TansCodec, RoundTripTableLog16) {
    auto syms = test::geometric_symbols<u8>(50000, 0.7, 256, 54);
    auto t = table_for(syms, 16);
    auto enc = tans_encode<u8>(syms, t);
    auto dec = tans_decode<u8>(enc, t);
    EXPECT_EQ(dec, syms);
}

TEST(TansCodec, CompressionNearEntropy) {
    auto syms = test::geometric_symbols<u8>(200000, 0.5, 256, 55);
    auto t = table_for(syms, 12);
    auto enc = tans_encode<u8>(syms, t);
    std::vector<u64> counts(256, 0);
    for (u8 s : syms) ++counts[s];
    double ideal = 0;
    for (u32 s = 0; s < 256; ++s) {
        if (counts[s])
            ideal += counts[s] * (12 - std::log2(static_cast<double>(t.freq(s))));
    }
    const double actual = static_cast<double>(enc.words.size()) * 16;
    EXPECT_LT(actual, ideal * 1.01 + 64);
    EXPECT_GT(actual, ideal * 0.99 - 64);
}

TEST(TansCodec, EmptyInput) {
    std::vector<u64> counts(4, 1);
    auto pdf = quantize_pdf(counts, 8);
    TansTable t(pdf, 8);
    std::vector<u8> syms;
    auto enc = tans_encode<u8>(std::span<const u8>(syms), t);
    EXPECT_TRUE(tans_decode<u8>(enc, t).empty());
}

TEST(Multians, MatchesSerialSmallTable) {
    auto syms = test::geometric_symbols<u8>(400000, 0.6, 256, 56);
    auto t = table_for(syms, 11);
    auto enc = tans_encode<u8>(syms, t);
    MultiansStats stats;
    MultiansOptions opt;
    opt.words_per_segment = 1024;
    auto dec = multians_decode<u8>(enc, t, opt, nullptr, &stats);
    EXPECT_EQ(dec, syms);
    EXPECT_GT(stats.segments, 4u);
}

TEST(Multians, SelfSynchronizesQuicklyAtLog11) {
    auto syms = test::geometric_symbols<u8>(600000, 0.6, 256, 57);
    auto t = table_for(syms, 11);
    auto enc = tans_encode<u8>(syms, t);
    MultiansStats stats;
    MultiansOptions opt;
    opt.words_per_segment = 2048;
    ThreadPool pool(8);
    auto dec = multians_decode<u8>(enc, t, opt, &pool, &stats);
    EXPECT_EQ(dec, syms);
    EXPECT_TRUE(stats.converged);
    // The paper's premise: small-table tANS self-synchronizes, so the
    // fixpoint needs far fewer rounds than the serial worst case.
    EXPECT_LT(stats.rounds, stats.segments / 2 + 2);
}

TEST(Multians, StrugglesAtLog16) {
    // With a 2^16-state table trajectories rarely merge: expect no quick
    // convergence (the paper's unusable-throughput regime) but a correct
    // result via the serial fallback.
    auto syms = test::geometric_symbols<u8>(300000, 0.6, 256, 58);
    auto t = table_for(syms, 16);
    auto enc = tans_encode<u8>(syms, t);
    MultiansStats stats;
    MultiansOptions opt;
    opt.words_per_segment = 512;
    opt.max_rounds = 6;
    auto dec = multians_decode<u8>(enc, t, opt, nullptr, &stats);
    EXPECT_EQ(dec, syms);
    // Either it needed the fallback or it burned most of the round budget.
    EXPECT_TRUE(stats.serial_fallback || stats.rounds >= 4);
}

TEST(Multians, SingleSegment) {
    auto syms = test::geometric_symbols<u8>(3000, 0.5, 256, 59);
    auto t = table_for(syms, 11);
    auto enc = tans_encode<u8>(syms, t);
    MultiansOptions opt;
    opt.words_per_segment = 1u << 30;
    MultiansStats stats;
    auto dec = multians_decode<u8>(enc, t, opt, nullptr, &stats);
    EXPECT_EQ(dec, syms);
    EXPECT_EQ(stats.segments, 1u);
}

TEST(Multians, DominantSymbolZeroBitTail) {
    // Regression: a symbol with f > L/2 has zero-bit decode entries; the
    // first-encoded symbols consume no bits, so the bottom segment must
    // drain the zero-bit chain after reaching bit position 0.
    auto syms = test::geometric_symbols<u8>(300000, 0.04, 256, 66);  // ~96% zeros
    auto t = table_for(syms, 11);
    auto enc = tans_encode<u8>(syms, t);
    MultiansOptions opt;
    opt.words_per_segment = 256;
    MultiansStats stats;
    auto dec = multians_decode<u8>(enc, t, opt, nullptr, &stats);
    EXPECT_EQ(dec, syms);
    EXPECT_FALSE(stats.serial_fallback);
}

TEST(Multians, WorstCaseStillCorrect) {
    // Tiny segments + tiny round cap forces the serial fallback path.
    auto syms = test::geometric_symbols<u8>(100000, 0.3, 256, 60);
    auto t = table_for(syms, 12);
    auto enc = tans_encode<u8>(syms, t);
    MultiansOptions opt;
    opt.words_per_segment = 16;
    opt.max_rounds = 2;
    MultiansStats stats;
    auto dec = multians_decode<u8>(enc, t, opt, nullptr, &stats);
    EXPECT_EQ(dec, syms);
}

}  // namespace
}  // namespace recoil
