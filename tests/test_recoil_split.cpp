// Tests for the split planner: validity invariants of Definition 4.1's
// heuristic, workload balance, and combining behaviour.

#include <gtest/gtest.h>

#include "core/split_planner.hpp"
#include "rans/interleaved.hpp"
#include "test_util.hpp"

namespace recoil {
namespace {

struct Planned {
    InterleavedBitstream<Rans32, 32> bs;
    std::vector<SplitPoint> splits;
    u64 n;
};

Planned plan(std::size_t n, double q, u32 max_splits, u32 prob_bits = 11) {
    auto syms = test::geometric_symbols<u8>(n, q, 256, n + max_splits);
    auto m = test::model_for<u8>(syms, prob_bits, 256);
    RenormEventList events;
    Planned p;
    p.bs = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), m, &events);
    p.splits = plan_splits(events, n, max_splits, 32);
    p.n = n;
    return p;
}

void check_validity(const std::vector<SplitPoint>& splits, u64 n) {
    i64 prev_anchor = -1;
    u64 prev_offset = 0;
    for (std::size_t i = 0; i < splits.size(); ++i) {
        const auto& sp = splits[i];
        EXPECT_LT(sp.anchor_index, n);
        EXPECT_GT(static_cast<i64>(sp.min_index), prev_anchor)
            << "sync section crosses previous anchor at split " << i;
        EXPECT_LE(sp.min_index, sp.anchor_index);
        if (i > 0) {
            EXPECT_GT(sp.offset, prev_offset);
        }
        ASSERT_EQ(sp.states.size(), 32u);
        ASSERT_EQ(sp.indices.size(), 32u);
        u64 mn = ~u64{0}, mx = 0;
        for (u32 l = 0; l < 32; ++l) {
            EXPECT_LT(sp.states[l], Rans32::lower_bound);
            EXPECT_EQ(sp.indices[l] % 32, l);
            mn = std::min(mn, sp.indices[l]);
            mx = std::max(mx, sp.indices[l]);
        }
        EXPECT_EQ(mn, sp.min_index);
        EXPECT_EQ(mx, sp.anchor_index);
        prev_anchor = static_cast<i64>(sp.anchor_index);
        prev_offset = sp.offset;
    }
}

TEST(SplitPlanner, ProducesRequestedSplits) {
    auto p = plan(200000, 0.6, 16);
    EXPECT_EQ(p.splits.size(), 15u);
    check_validity(p.splits, p.n);
}

TEST(SplitPlanner, ManySplits) {
    auto p = plan(500000, 0.6, 256);
    EXPECT_GE(p.splits.size(), 250u);
    check_validity(p.splits, p.n);
}

TEST(SplitPlanner, WorkloadBalanced) {
    auto p = plan(400000, 0.5, 32);
    ASSERT_EQ(p.splits.size(), 31u);
    const i64 target = 400000 / 32;
    i64 prev = -1;
    for (const auto& sp : p.splits) {
        const i64 t = static_cast<i64>(sp.anchor_index) - prev;
        EXPECT_GT(t, target / 2);
        EXPECT_LT(t, target * 2);
        prev = static_cast<i64>(sp.anchor_index);
    }
    // Last implicit split gets the balance too.
    EXPECT_GT(static_cast<i64>(p.n) - 1 - prev, target / 4);
}

TEST(SplitPlanner, SyncSectionsSmall) {
    auto p = plan(400000, 0.5, 32);
    // With q=0.5 byte data each lane renormalizes every couple of its own
    // symbols, so sync sections should be a tiny fraction of the split size.
    for (const auto& sp : p.splits) {
        EXPECT_LT(sp.sync_symbols(), 2000u);
    }
}

TEST(SplitPlanner, HighlyCompressibleDataStillValid) {
    // q=0.02: ~all symbols are 0, renormalizations are rare and sync
    // sections large relative to splits; validity must still hold.
    auto p = plan(300000, 0.02, 16);
    check_validity(p.splits, p.n);
    EXPECT_GE(p.splits.size(), 4u);
}

TEST(SplitPlanner, MaxSplitsOneMeansNoMetadata) {
    auto p = plan(10000, 0.5, 1);
    EXPECT_TRUE(p.splits.empty());
}

TEST(SplitPlanner, ShortStreamDegradesGracefully) {
    auto p = plan(100, 0.5, 64);
    check_validity(p.splits, p.n);  // may be few or none, but must be valid
}

TEST(SplitPlanner, MoreSplitsThanRenormPointsDegrades) {
    auto p = plan(2000, 0.02, 512);
    check_validity(p.splits, p.n);
    EXPECT_LT(p.splits.size(), 511u);
}

TEST(CombineSplits, KeepsBalanceAndValidity) {
    auto p = plan(500000, 0.6, 256);
    RecoilMetadata meta;
    meta.lanes = 32;
    meta.state_store_bits = 16;
    meta.num_symbols = p.n;
    meta.num_units = p.bs.units.size();
    meta.final_states.assign(p.bs.final_states.begin(), p.bs.final_states.end());
    meta.splits = p.splits;

    for (u32 target : {128u, 16u, 4u, 2u, 1u}) {
        auto combined = combine_splits(meta, target);
        EXPECT_LE(combined.num_splits(), target);
        check_validity(combined.splits, p.n);
        // Balance: anchors near ideal boundaries.
        for (std::size_t i = 0; i < combined.splits.size(); ++i) {
            const double ideal = static_cast<double>(p.n) / target * (i + 1);
            EXPECT_NEAR(static_cast<double>(combined.splits[i].anchor_index), ideal,
                        static_cast<double>(p.n) / target * 0.6);
        }
    }
}

TEST(CombineSplits, TargetLargerThanAvailableIsIdentity) {
    auto p = plan(100000, 0.6, 8);
    RecoilMetadata meta;
    meta.lanes = 32;
    meta.state_store_bits = 16;
    meta.num_symbols = p.n;
    meta.num_units = p.bs.units.size();
    meta.final_states.assign(p.bs.final_states.begin(), p.bs.final_states.end());
    meta.splits = p.splits;
    auto combined = combine_splits(meta, 9999);
    EXPECT_EQ(combined.splits.size(), meta.splits.size());
}

TEST(CombineSplits, KeptEntriesAreSubsetOfOriginal) {
    auto p = plan(300000, 0.5, 64);
    RecoilMetadata meta;
    meta.lanes = 32;
    meta.state_store_bits = 16;
    meta.num_symbols = p.n;
    meta.num_units = p.bs.units.size();
    meta.final_states.assign(p.bs.final_states.begin(), p.bs.final_states.end());
    meta.splits = p.splits;
    auto combined = combine_splits(meta, 8);
    for (const auto& sp : combined.splits) {
        bool found = false;
        for (const auto& orig : meta.splits)
            if (orig.anchor_index == sp.anchor_index && orig.offset == sp.offset)
                found = true;
        EXPECT_TRUE(found) << "combining must only drop entries, never synthesize";
    }
}

}  // namespace
}  // namespace recoil
