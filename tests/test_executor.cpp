// Unit tests for the work-stealing executor behind stream producers: steal
// fairness (queued work migrates off a busy worker), park/unpark (idle
// workers sleep and wake on submit), shutdown drain (every submitted task —
// including tasks submitted by draining tasks — runs before join),
// exception containment (a stray throw is counted, not fatal; run()
// propagates through its future), and the tentpole's scaling claim: 10k
// concurrent streams cost O(workers) OS threads, not 10k.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "serve/store.hpp"
#include "test_util.hpp"
#include "util/executor.hpp"

namespace recoil {
namespace {

using util::Executor;

TEST(Executor, RunsEverySubmittedTaskExactlyOnce) {
    std::vector<std::atomic<int>> hits(2000);
    {
        Executor exec(Executor::Options{4, "recoil-test"});
        for (int i = 0; i < 2000; ++i)
            exec.submit([&hits, i] { hits[static_cast<std::size_t>(i)]++; });
    }  // destructor drains
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, DefaultsToHardwareConcurrency) {
    Executor exec;
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    EXPECT_EQ(exec.worker_count(), hw);
    EXPECT_EQ(exec.stats().workers, hw);
}

TEST(Executor, ShutdownDrainRunsTasksSubmittedWhileDraining) {
    std::atomic<int> ran{0};
    {
        Executor exec(Executor::Options{2, "recoil-test"});
        // Each task submits a follow-up; the destructor must run both
        // generations (a task submitted by a draining task still counts).
        for (int i = 0; i < 64; ++i)
            exec.submit([&exec, &ran] {
                ran++;
                exec.submit([&ran] { ran++; });
            });
    }
    EXPECT_EQ(ran.load(), 128);
}

TEST(Executor, StealMigratesQueuedWorkOffABusyWorker) {
    // Two workers. One task blocks worker A while holding a latch; the
    // burst of follow-ups lands round-robin on both deques, and worker B
    // must steal A's share — total throughput proves migration, and the
    // stolen counter proves the mechanism.
    Executor exec(Executor::Options{2, "recoil-test"});
    std::atomic<bool> release{false};
    std::atomic<int> ran{0};
    exec.submit([&release] {
        while (!release.load()) std::this_thread::yield();
    });
    // Give the blocker a moment to occupy its worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    for (int i = 0; i < 200; ++i) exec.submit([&ran] { ran++; });
    // All 200 must complete while one worker is still pinned.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (ran.load() < 200 && std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
    EXPECT_EQ(ran.load(), 200) << "queued work starved behind a busy worker";
    release.store(true);
    const auto stats = exec.stats();
    EXPECT_GT(stats.stolen_total, 0u) << "no task was ever stolen";
}

TEST(Executor, ParkedWorkersWakeOnSubmit) {
    Executor exec(Executor::Options{2, "recoil-test"});
    // Let the workers park (nothing to do), then submit and expect prompt
    // execution — a lost unpark would hang this test.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    for (int round = 0; round < 20; ++round) {
        std::atomic<bool> done{false};
        exec.submit([&done] { done.store(true); });
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (!done.load() && std::chrono::steady_clock::now() < deadline)
            std::this_thread::yield();
        ASSERT_TRUE(done.load()) << "round " << round;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

TEST(Executor, StrayExceptionIsCountedNotFatal) {
    Executor exec(Executor::Options{1, "recoil-test"});
    std::atomic<bool> after{false};
    exec.submit([] { throw std::runtime_error("stray"); });
    exec.submit([&after] { after.store(true); });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!after.load() && std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
    EXPECT_TRUE(after.load()) << "worker died on a stray exception";
    EXPECT_EQ(exec.stats().exceptions_total, 1u);
}

TEST(Executor, RunPropagatesResultsAndExceptions) {
    Executor exec(Executor::Options{2, "recoil-test"});
    auto ok = exec.run([] { return 41 + 1; });
    EXPECT_EQ(ok.get(), 42);
    auto bad = exec.run([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(Executor, SubmitFromWorkerUsesOwnDeque) {
    // A worker-local submit must not deadlock a 1-worker pool (the worker
    // runs its own follow-ups; nothing waits on an external thread).
    Executor exec(Executor::Options{1, "recoil-test"});
    std::atomic<int> depth{0};
    std::atomic<bool> done{false};
    std::function<void(int)> recurse = [&](int d) {
        depth.fetch_add(1);
        if (d < 100)
            exec.submit([&recurse, d] { recurse(d + 1); });
        else
            done.store(true);
    };
    exec.submit([&recurse] { recurse(0); });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!done.load() && std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
    EXPECT_TRUE(done.load());
    EXPECT_EQ(depth.load(), 101);
}

// ---- the scaling claim: streams are state machines, not threads ----

/// Current thread count of this process, from /proc (Linux only — the CI
/// and the container this repo targets).
int process_thread_count() {
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("Threads:", 0) == 0) {
            std::istringstream ss(line.substr(8));
            int n = 0;
            ss >> n;
            return n;
        }
    }
    return -1;
}

#ifdef RECOIL_TSAN
constexpr int kSoakStreams = 500;  // TSan instruments every sync op; scale
#else
constexpr int kSoakStreams = 10000;
#endif

TEST(ExecutorSoak, TenThousandStreamsCostWorkerThreadsNotStreamThreads) {
    using namespace serve;
    ServerOptions opt;
    opt.telemetry = false;
    ContentServer server(opt);
    std::vector<u8> data(2000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>((i * 131) % 251);
    server.store().encode_bytes("soak", data, 4);
    const ServeResult ref = server.serve({"soak", 4, std::nullopt});
    ASSERT_TRUE(ref.ok());

    const int before = process_thread_count();
    ASSERT_GT(before, 0);
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;

    // Tiny window so every stream's producer yields mid-wire: at any
    // instant most of the kSoakStreams live streams are parked state
    // machines, which is exactly what must NOT cost a thread each.
    StreamOptions sopt;
    sopt.max_frame_bytes = 256;
    sopt.window_bytes = 256;
    sopt.use_cache = false;
    std::vector<ServeStream> streams;
    streams.reserve(static_cast<std::size_t>(kSoakStreams));
    int peak_threads = before;
    for (int i = 0; i < kSoakStreams; ++i) {
        streams.push_back(server.serve_stream(
            {"soak", 4, std::nullopt, kAcceptAll | kAcceptStreamed}, sopt));
        // Pull the header + first body frame so the producer task has
        // demonstrably started (and then yielded on the full window).
        ASSERT_TRUE(streams.back().next_frame().has_value());
        ASSERT_TRUE(streams.back().next_frame().has_value());
        if (i % 256 == 0)
            peak_threads = std::max(peak_threads, process_thread_count());
    }
    peak_threads = std::max(peak_threads, process_thread_count());
    // O(workers), not O(streams): everything the process had before, plus
    // the global executor's workers, plus slack for lazily created runtime
    // threads — nowhere near kSoakStreams.
    EXPECT_LE(peak_threads, before + static_cast<int>(2 * hw) + 8)
        << "streams are costing dedicated threads again";

    // Drain a sample of fresh streams fully and check bit-exactness end to
    // end while the 10k yielded producers are still parked.
    for (int i = 0; i < 20; ++i) {
        StreamReassembler client(sopt.max_frame_bytes);
        bool done = false;
        ServeStream fresh = server.serve_stream(
            {"soak", 4, std::nullopt, kAcceptAll | kAcceptStreamed}, sopt);
        while (auto f = fresh.next_frame()) done = client.feed(*f);
        ASSERT_TRUE(done);
        const ServeResult got = client.result();
        ASSERT_TRUE(got.ok()) << got.detail;
        EXPECT_EQ(*got.wire, *ref.wire);
    }
    // Mass abandon: every yielded producer is resubmitted in cancel mode
    // and unwinds on the executor (this path must not leak threads either).
    streams.clear();

    const int after_deadline_threads = process_thread_count();
    EXPECT_LE(after_deadline_threads, before + static_cast<int>(2 * hw) + 8);
}

}  // namespace
}  // namespace recoil
