// Regression tests for the lock-discipline holes surfaced by wiring Clang
// Thread Safety Analysis through the serve stack (src/util/
// thread_annotations.hpp). Each test hammers the exact seam that was fixed
// so the CI TSan job (which builds this file) sees any reintroduction:
//
//  1. AssetStore::attach_backing used to read disk_ (guarded by mu_) after
//     dropping mu_ when rebinding disk_* metrics. The fix snapshots the
//     handle while locked; this test races attach/rebind against readers
//     resolving through the store and polling the registry.
//
//  2. ContentServer's Flight used to publish into the flights_ map first
//     and set streaming/assembling afterwards. Both are now fixed at
//     construction (const members); this test forces a streamed leader with
//     a pack of mid-flight followers so any post-publication write to
//     either field would be a follower-visible race.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"

namespace recoil::serve {
namespace {

namespace fs = std::filesystem;

constexpr u8 kAcceptStream = kAcceptAll | kAcceptStreamed;

std::vector<u8> asset_bytes(u64 n, u64 seed) {
    return test::geometric_symbols<u8>(n, 0.6, 256, seed);
}

/// Fresh store directory per test; removed on destruction.
struct TempDir {
    fs::path path;
    explicit TempDir(const char* tag)
        : path(fs::temp_directory_path() /
               (std::string("recoil_tsa_") + tag)) {
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

TEST(ThreadSafety, AttachBackingRacesReadersAndMetricsPolls) {
    TempDir dir("attach");
    AssetStore seeded;
    seeded.attach_backing(std::make_shared<DiskStore>(dir.path));
    seeded.encode_bytes("a", asset_bytes(20000, 7), 8);
    seeded.encode_bytes("b", asset_bytes(20000, 11), 8);

    AssetStore store;
    obs::MetricsRegistry reg;
    store.bind_metrics(&reg);

    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    // Readers exercise every disk_-adjacent path: demand-load, the backing
    // accessor, currency checks, and registry snapshots (which poll the
    // disk_* callbacks attach_backing rebinds).
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&store, &reg, &stop, t] {
            while (!stop.load(std::memory_order_relaxed)) {
                auto a = store.resolve(t % 2 == 0 ? "a" : "b");
                if (a != nullptr) (void)store.is_current(*a);
                (void)store.backing();
                (void)store.residency();
                (void)reg.snapshot();
            }
        });
    }
    // Re-attach the same corpus repeatedly: each attach swaps disk_ under
    // mu_ and rebinds the disk_* callbacks under disk_mu_.
    for (int i = 0; i < 50; ++i) {
        store.attach_backing(std::make_shared<DiskStore>(dir.path));
        store.unload("a");
        store.unload("b");
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& r : readers) r.join();

    ASSERT_NE(store.resolve("a"), nullptr);
    ASSERT_NE(store.resolve("b"), nullptr);
    const auto snap = reg.snapshot().to_json();
    EXPECT_NE(snap.find("disk_assets"), std::string::npos);
}

TEST(ThreadSafety, StreamingFlightFieldsAreFixedBeforePublication) {
    std::atomic<int> combines{0};
    ServerOptions opt;
    opt.combine_hook = [&](const std::string&) { ++combines; };
    ContentServer server(opt);
    server.store().encode_bytes("asset", asset_bytes(60000, 13), 16);

    // A tiny flow-control window stalls the leader's producer almost
    // immediately (the consumer has not pulled yet), keeping the flight
    // open while the followers attach — each follower reads
    // flight->streaming/assembling through its replay path mid-flight.
    StreamOptions sopt;
    sopt.max_frame_bytes = 2048;
    sopt.window_bytes = 2048;
    constexpr unsigned kFollowers = 6;
    ServeStream leader =
        server.serve_stream({"asset", 4, std::nullopt, kAcceptStream}, sopt);
    ASSERT_TRUE(leader.head().ok()) << leader.head().detail;

    std::vector<std::thread> pullers;
    std::vector<u64> framed(kFollowers, 0);
    std::vector<bool> ok(kFollowers, false);
    for (unsigned i = 0; i < kFollowers; ++i) {
        pullers.emplace_back([&server, &sopt, &framed, &ok, i] {
            ServeStream s = server.serve_stream(
                {"asset", 4, std::nullopt, kAcceptStream}, sopt);
            u64 n = 0;
            while (auto frame = s.next_frame()) ++n;
            framed[i] = n;
            ok[i] = s.head().ok() && s.done();
        });
    }
    // Drive the leader only after every follower is parked on the flight:
    // the followers' pulls gate on the assembly the leader commits.
    u64 leader_frames = 0;
    while (auto frame = leader.next_frame()) ++leader_frames;
    for (auto& p : pullers) p.join();

    EXPECT_EQ(combines.load(), 1);  // one producer; everyone else replayed
    EXPECT_GE(leader_frames, 3u);   // header + >=1 body + fin
    for (unsigned i = 0; i < kFollowers; ++i) {
        EXPECT_TRUE(ok[i]) << "follower " << i;
        EXPECT_GE(framed[i], 3u) << "follower " << i;
    }
}

}  // namespace
}  // namespace recoil::serve
