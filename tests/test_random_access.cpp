// Tests for sub-range (random access) decoding via split metadata.

#include <gtest/gtest.h>

#include "core/random_access.hpp"
#include "core/recoil_encoder.hpp"
#include "simd/dispatch.hpp"
#include "test_util.hpp"

namespace recoil {
namespace {

struct Fixture {
    std::vector<u8> syms;
    StaticModel model;
    RecoilEncoded<Rans32, 32> enc;

    Fixture(std::size_t n, u32 splits, u64 seed)
        : syms(test::geometric_symbols<u8>(n, 0.6, 256, seed)),
          model(test::model_for<u8>(syms, 11, 256)),
          enc(recoil_encode<Rans32, 32>(std::span<const u8>(syms), model, splits)) {}
};

TEST(RandomAccess, PlanCoversRequestedRange) {
    Fixture f(300000, 64, 201);
    const auto& meta = f.enc.metadata;
    ASSERT_GE(meta.splits.size(), 10u);
    for (auto [lo, hi] : {std::pair<u64, u64>{0, 100},
                          {150000, 150001},
                          {299000, 300000},
                          {0, 300000}}) {
        auto plan = plan_range(meta, lo, hi);
        EXPECT_LE(plan.cover_lo, lo);
        EXPECT_GE(plan.cover_hi, hi);
        EXPECT_LE(plan.first_split, plan.last_split);
        EXPECT_LT(plan.last_split, meta.num_splits());
    }
}

TEST(RandomAccess, MatchesFullDecodeEverywhere) {
    Fixture f(200000, 48, 202);
    std::span<const u16> units(f.enc.bitstream.units);
    Xoshiro256 rng(203);
    for (int iter = 0; iter < 60; ++iter) {
        const u64 lo = rng.below(f.syms.size() - 1);
        const u64 hi = lo + 1 + rng.below(f.syms.size() - lo);
        auto part = recoil_decode_range<Rans32, 32, u8>(units, f.enc.metadata,
                                                        f.model.tables(), lo, hi);
        ASSERT_EQ(part.size(), hi - lo);
        for (u64 i = 0; i < part.size(); ++i) {
            ASSERT_EQ(part[i], f.syms[lo + i]) << "lo " << lo << " i " << i;
        }
    }
}

TEST(RandomAccess, SyncSectionBoundaries) {
    // Ranges exactly on sync-section and anchor boundaries — ownership edges.
    Fixture f(250000, 32, 204);
    std::span<const u16> units(f.enc.bitstream.units);
    for (const auto& sp : f.enc.metadata.splits) {
        for (u64 pos : {sp.min_index, sp.anchor_index, sp.min_index - 1,
                        sp.anchor_index + 1}) {
            if (pos >= f.syms.size()) continue;
            auto part = recoil_decode_range<Rans32, 32, u8>(
                units, f.enc.metadata, f.model.tables(), pos, pos + 1);
            ASSERT_EQ(part[0], f.syms[pos]) << "pos " << pos;
        }
    }
}

TEST(RandomAccess, WorkIsProportionalToRange) {
    Fixture f(400000, 128, 205);
    // Decoding 1% of the stream must touch only a few of the 128 splits.
    auto plan = plan_range(f.enc.metadata, 200000, 204000);
    EXPECT_LE(plan.last_split - plan.first_split, 3u);
    EXPECT_LT(plan.cover_hi - plan.cover_lo, f.syms.size() / 16);
}

TEST(RandomAccess, SingleSplitStreamDegradesToFullPrefix) {
    Fixture f(50000, 1, 206);
    EXPECT_TRUE(f.enc.metadata.splits.empty());
    auto part = recoil_decode_range<Rans32, 32, u8>(
        std::span<const u16>(f.enc.bitstream.units), f.enc.metadata,
        f.model.tables(), 1000, 1100);
    for (u64 i = 0; i < 100; ++i) EXPECT_EQ(part[i], f.syms[1000 + i]);
}

TEST(RandomAccess, WithSimdAndPool) {
    Fixture f(300000, 96, 207);
    ThreadPool pool(4);
    simd::SimdRangeFn<u8> range;
    auto part = recoil_decode_range<Rans32, 32, u8>(
        std::span<const u16>(f.enc.bitstream.units), f.enc.metadata,
        f.model.tables(), 50000, 250000, &pool, range);
    ASSERT_EQ(part.size(), 200000u);
    EXPECT_TRUE(std::equal(part.begin(), part.end(), f.syms.begin() + 50000));
}

TEST(RandomAccess, BadRangesThrow) {
    Fixture f(10000, 8, 208);
    std::span<const u16> units(f.enc.bitstream.units);
    EXPECT_THROW((recoil_decode_range<Rans32, 32, u8>(units, f.enc.metadata,
                                                      f.model.tables(), 5, 5)),
                 Error);
    EXPECT_THROW((recoil_decode_range<Rans32, 32, u8>(units, f.enc.metadata,
                                                      f.model.tables(), 0, 10001)),
                 Error);
}

}  // namespace
}  // namespace recoil
