// Tests for the network subsystem: the length-prefixed transport framing,
// the epoll daemon, and the client library — over real loopback sockets.
// Anchors: (1) every response that crosses the socket is bit-exact with the
// in-process serve() result, for v1 materialized, v2 streamed, and range
// requests, under 1000+ concurrent connections; (2) a slow reader cannot
// make the daemon buffer more than O(max_frame) per connection (the
// pull-when-writable backpressure holds over a real socket); (3) a drain
// started mid-stream finishes the stream bit-exactly, refuses new
// connects, and lets run() return; (4) frame reassembly survives arbitrary
// read fragmentation — a TCP segment boundary anywhere, including inside
// the length prefix, must never surface as a protocol error.

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/client.hpp"
#include "net/daemon.hpp"
#include "serve/store.hpp"
#include "workload/datasets.hpp"

#if defined(__SANITIZE_THREAD__)
#define RECOIL_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RECOIL_TSAN 1
#endif
#endif

namespace recoil::net {
namespace {

using serve::ContentServer;
using serve::ServeRequest;
using serve::ServeResult;

// The load test holds >2000 sockets open at once (client + daemon ends);
// GitHub runners default the soft RLIMIT_NOFILE to 1024.
struct RaiseNofile {
    RaiseNofile() {
        struct rlimit rl {};
        if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < 65536) {
            rl.rlim_cur = rl.rlim_max < 65536 ? rl.rlim_max : 65536;
            ::setrlimit(RLIMIT_NOFILE, &rl);
        }
    }
};
const RaiseNofile raise_nofile_once;

/// Daemon on a background thread; joins (after a drain) on destruction.
struct DaemonRunner {
    Daemon daemon;
    std::thread th;

    DaemonRunner(ContentServer& server, DaemonOptions opt)
        : daemon(server, std::move(opt)), th([this] { daemon.run(); }) {}
    ~DaemonRunner() { drain_and_join(); }

    void drain_and_join() {
        if (th.joinable()) {
            daemon.begin_drain();
            th.join();
        }
    }
};

constexpr u64 kAssetBytes = 200'000;

struct NetFixture : ::testing::Test {
    ContentServer server;
    std::vector<u8> data;

    NetFixture() : data(workload::gen_text(kAssetBytes, 424242)) {
        server.store().encode_bytes("asset", data, 64);
    }

    ServeResult in_process(const ServeRequest& req) {
        ServeResult res = server.serve(req);
        EXPECT_TRUE(res.ok()) << res.detail;
        return res;
    }
};

// ---- transport framing ----

TEST(FrameReader, ByteAtATimeFeedNeverMisparses) {
    // Frames of awkward sizes, including empty — delivered one byte at a
    // time, every frame must pop exactly at its boundary, never early.
    const std::vector<std::vector<u8>> frames = {
        {},
        {0xab},
        std::vector<u8>(3, 0x01),
        std::vector<u8>(259, 0x7f),
        std::vector<u8>(65537, 0x55),
    };
    std::vector<u8> wire;
    for (const auto& f : frames) append_net_frame(wire, f);

    FrameReader reader;
    std::size_t popped = 0;
    for (std::size_t i = 0; i < wire.size(); ++i) {
        reader.feed(std::span<const u8>(&wire[i], 1));
        while (auto f = reader.next()) {
            ASSERT_LT(popped, frames.size());
            EXPECT_EQ(*f, frames[popped]) << "frame " << popped;
            ++popped;
        }
    }
    EXPECT_EQ(popped, frames.size());
    EXPECT_TRUE(reader.empty());
}

TEST(FrameReader, ChunkedFeedsOfEveryGranularityAgree) {
    std::vector<u8> payload(10'000);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<u8>(i * 31);
    std::vector<u8> wire;
    append_net_frame(wire, payload);
    append_net_frame(wire, payload);
    for (std::size_t chunk : {1u, 2u, 3u, 5u, 7u, 4096u, 100'000u}) {
        FrameReader reader;
        std::size_t popped = 0;
        for (std::size_t off = 0; off < wire.size(); off += chunk) {
            const std::size_t n = std::min(chunk, wire.size() - off);
            reader.feed(std::span<const u8>(wire.data() + off, n));
            while (auto f = reader.next()) {
                EXPECT_EQ(*f, payload);
                ++popped;
            }
        }
        EXPECT_EQ(popped, 2u) << "chunk " << chunk;
    }
}

TEST(FrameReader, OversizedAnnouncementRejectedAtPrefixTime) {
    FrameReader reader(1024);
    // 4-byte prefix announcing 1 MiB: must throw the moment the prefix is
    // complete, before any payload arrives.
    const u8 prefix[4] = {0x00, 0x00, 0x10, 0x00};
    reader.feed(std::span<const u8>(prefix, 3));
    EXPECT_THROW(reader.feed(std::span<const u8>(prefix + 3, 1)), NetError);
}

TEST_F(NetFixture, StreamedFramesSurviveByteAtATimeTransport) {
    // End-to-end fragmentation torture: a full v2 stream's transport bytes
    // fed one byte at a time must reassemble bit-exactly with v1.
    serve::StreamOptions sopt;
    sopt.max_frame_bytes = 4096;
    auto stream = server.serve_stream(
        ServeRequest{"asset", 8, {}, serve::kAcceptAll | serve::kAcceptStreamed},
        sopt);
    std::vector<u8> wire;
    while (auto f = stream.next_frame()) append_net_frame(wire, *f);

    FrameReader reader;
    serve::StreamReassembler reasm;
    bool done = false;
    for (u8 b : wire) {
        reader.feed(std::span<const u8>(&b, 1));
        while (auto f = reader.next()) {
            ASSERT_FALSE(done) << "frames after FIN";
            done = reasm.feed(*f);
        }
    }
    ASSERT_TRUE(done);
    auto v1 = in_process(ServeRequest{"asset", 8, {}});
    EXPECT_EQ(*reasm.result().wire, *v1.wire);
}

// ---- loopback load ----

#ifdef RECOIL_TSAN
constexpr u32 kLoadThreads = 8;
constexpr u32 kLoadConnsPerThread = 8;
#else
constexpr u32 kLoadThreads = 32;
constexpr u32 kLoadConnsPerThread = 32;
#endif
constexpr u32 kLoadConns = kLoadThreads * kLoadConnsPerThread;

TEST_F(NetFixture, LoadThousandConcurrentConnectionsMixedBitExact) {
    DaemonOptions dopt;
    dopt.listen_backlog = 1024;
    DaemonRunner runner(server, dopt);
    const u16 port = runner.daemon.port();

    // In-process references for every request shape the load issues.
    const u32 kPar[] = {2, 8, 16};
    std::vector<ServeResult> full_ref;
    for (u32 p : kPar) full_ref.push_back(in_process(ServeRequest{"asset", p, {}}));
    const std::pair<u64, u64> kRanges[] = {
        {0, 10'000}, {50'000, 50'100}, {kAssetBytes - 4096, kAssetBytes}};
    std::vector<ServeResult> range_ref;
    for (auto r : kRanges)
        range_ref.push_back(in_process(ServeRequest{"asset", 4, {r}}));

    // Phase 1: every thread opens all its connections, then waits at a
    // barrier — so all kLoadConns sockets are provably open at once.
    std::atomic<u32> connected{0};
    std::atomic<bool> go{false};
    std::atomic<u32> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kLoadThreads);
    for (u32 t = 0; t < kLoadThreads; ++t) {
        threads.emplace_back([&, t] {
            std::vector<Client> clients;
            clients.reserve(kLoadConnsPerThread);
            ClientOptions copt;
            copt.port = port;
            copt.io_timeout = std::chrono::milliseconds(120'000);
            for (u32 i = 0; i < kLoadConnsPerThread; ++i)
                clients.emplace_back(copt);
            connected.fetch_add(kLoadConnsPerThread);
            while (!go.load()) std::this_thread::yield();
            for (u32 i = 0; i < kLoadConnsPerThread; ++i) {
                const u32 id = t * kLoadConnsPerThread + i;
                try {
                    switch (id % 3) {
                        case 0: {  // v1 materialized
                            const u32 pi = id % 3u == 0 ? (id / 3) % 3 : 0;
                            auto res = clients[i].request(
                                ServeRequest{"asset", kPar[pi], {}});
                            if (!res.ok() || *res.wire != *full_ref[pi].wire)
                                failures.fetch_add(1);
                            break;
                        }
                        case 1: {  // v1 range
                            const u32 ri = (id / 3) % 3;
                            auto res = clients[i].request(
                                ServeRequest{"asset", 4, {kRanges[ri]}});
                            if (!res.ok() || *res.wire != *range_ref[ri].wire)
                                failures.fetch_add(1);
                            break;
                        }
                        case 2: {  // v2 streamed
                            const u32 pi = (id / 3) % 3;
                            auto res = clients[i].request_streamed(
                                ServeRequest{"asset", kPar[pi], {}});
                            if (!res.ok() || *res.wire != *full_ref[pi].wire)
                                failures.fetch_add(1);
                            break;
                        }
                    }
                } catch (const Error& e) {
                    ADD_FAILURE() << "conn " << id << ": " << e.what();
                    failures.fetch_add(1);
                }
            }
        });
    }
    while (connected.load() < kLoadConns) std::this_thread::yield();
    // The kernel completes handshakes before the daemon accept4()s them:
    // wait until every connection is accepted, then assert concurrency.
    const auto accept_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (runner.daemon.stats().connections < kLoadConns &&
           std::chrono::steady_clock::now() < accept_deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // All connections open simultaneously — the acceptance bar.
    EXPECT_GE(runner.daemon.stats().connections, kLoadConns);
    go.store(true);
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0u);

    const auto s = runner.daemon.stats();
    EXPECT_GE(s.peak_connections, kLoadConns);
    EXPECT_GE(s.accepted, kLoadConns);
    EXPECT_GE(s.requests, kLoadConns);
    EXPECT_GT(s.streamed, 0u);
}

TEST_F(NetFixture, EdgeTriggeredModeServesIdentically) {
    DaemonOptions dopt;
    dopt.edge_triggered = true;
    DaemonRunner runner(server, dopt);
    ClientOptions copt;
    copt.port = runner.daemon.port();
    auto v1_ref = in_process(ServeRequest{"asset", 8, {}});
    auto range_ref = in_process(ServeRequest{"asset", 4, {{100, 9'000}}});
    for (int i = 0; i < 8; ++i) {
        Client c(copt);
        auto v1 = c.request(ServeRequest{"asset", 8, {}});
        ASSERT_TRUE(v1.ok()) << v1.detail;
        EXPECT_EQ(*v1.wire, *v1_ref.wire);
        auto v2 = c.request_streamed(ServeRequest{"asset", 8, {}});
        ASSERT_TRUE(v2.ok()) << v2.detail;
        EXPECT_EQ(*v2.wire, *v1_ref.wire);
        auto rr = c.request(ServeRequest{"asset", 4, {{100, 9'000}}});
        ASSERT_TRUE(rr.ok()) << rr.detail;
        EXPECT_EQ(*rr.wire, *range_ref.wire);
    }
}

// ---- backpressure / per-connection memory ----

TEST_F(NetFixture, SlowReaderKeepsConnBufferAtMaxFrame) {
    // Dedicated daemon with an 8 KiB stream frame budget serving a 200 KB
    // wire: a reader draining a trickle at a time must never make the
    // daemon buffer more than ~one transport-framed protocol frame.
    constexpr u64 kMaxFrame = 8 * 1024;
    DaemonOptions dopt;
    dopt.stream.max_frame_bytes = kMaxFrame;
    DaemonRunner runner(server, dopt);

    Fd sock = connect_tcp("127.0.0.1", runner.daemon.port(), Deadline::none());
    std::vector<u8> framed;
    append_net_frame(framed,
                     serve::encode_request(ServeRequest{
                         "asset", 8, {}, serve::kAcceptAll |
                                             serve::kAcceptStreamed}));
    send_all(sock.get(), framed, Deadline::none());

    FrameReader reader;
    serve::StreamReassembler reasm;
    bool done = false;
    u8 buf[2048];  // small reads + a pause: a genuinely slow consumer
    while (!done) {
        const std::size_t n = recv_some(
            sock.get(), buf, Deadline::after(std::chrono::seconds(30)));
        ASSERT_GT(n, 0u) << "server closed mid-stream";
        reader.feed(std::span<const u8>(buf, n));
        while (auto f = reader.next()) {
            ASSERT_FALSE(done);
            done = reasm.feed(*f);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    auto v1 = in_process(ServeRequest{"asset", 8, {}});
    EXPECT_EQ(*reasm.result().wire, *v1.wire);
    ASSERT_GT(v1.wire->size(), 8 * kMaxFrame) << "asset too small to prove the bound";

    // O(max_frame), not O(wire): one stream frame (payload + protocol
    // header/trailer) + the 4-byte transport prefix + the tiny request.
    const u64 peak = runner.daemon.stats().conn_buffer_peak_bytes;
    EXPECT_LE(peak, kMaxFrame + 4096);
    EXPECT_LT(peak, v1.wire->size() / 4);
}

// ---- graceful drain ----

TEST_F(NetFixture, DrainMidStreamCompletesBitExactRefusesNewAndExits) {
    serve::StreamOptions sopt;
    DaemonOptions dopt;
    dopt.stream.max_frame_bytes = 16 * 1024;  // many frames => drain lands mid-stream
    DaemonRunner runner(server, dopt);
    const u16 port = runner.daemon.port();

    Fd sock = connect_tcp("127.0.0.1", port, Deadline::none());
    std::vector<u8> framed;
    append_net_frame(framed,
                     serve::encode_request(ServeRequest{
                         "asset", 8, {}, serve::kAcceptAll |
                                             serve::kAcceptStreamed}));
    send_all(sock.get(), framed, Deadline::none());

    // Read just the first transport frame (the stream header), then drain.
    FrameReader reader;
    serve::StreamReassembler reasm;
    bool done = false;
    u8 buf[1024];
    while (!reader.buffered_bytes() && reader.empty()) {
        const std::size_t n = recv_some(
            sock.get(), buf, Deadline::after(std::chrono::seconds(30)));
        ASSERT_GT(n, 0u);
        reader.feed(std::span<const u8>(buf, n));
        break;
    }
    while (auto f = reader.next()) done = reasm.feed(*f);
    ASSERT_FALSE(done) << "stream finished before the drain could land";

    runner.daemon.begin_drain();
    // Give the loop time to process the drain and close the listener.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_THROW(
        connect_tcp("127.0.0.1", port,
                    Deadline::after(std::chrono::seconds(2))),
        NetError)
        << "new connections must be refused during drain";

    // The in-flight stream still completes, bit-exactly.
    while (!done) {
        const std::size_t n = recv_some(
            sock.get(), buf, Deadline::after(std::chrono::seconds(30)));
        ASSERT_GT(n, 0u) << "server cut the in-flight stream during drain";
        reader.feed(std::span<const u8>(buf, n));
        while (auto f = reader.next()) {
            ASSERT_FALSE(done);
            done = reasm.feed(*f);
        }
    }
    auto v1 = in_process(ServeRequest{"asset", 8, {}});
    EXPECT_EQ(*reasm.result().wire, *v1.wire);

    // With the stream flushed, the loop closes the connection and exits.
    runner.drain_and_join();
    const auto s = runner.daemon.stats();
    EXPECT_EQ(s.drains, 1u);
    EXPECT_EQ(s.connections, 0u);
}

// ---- limits & hygiene ----

TEST_F(NetFixture, ConnectionLimitRefusesDeterministically) {
    DaemonOptions dopt;
    dopt.max_connections = 4;
    DaemonRunner runner(server, dopt);
    ClientOptions copt;
    copt.port = runner.daemon.port();

    std::vector<Client> keep;
    for (int i = 0; i < 4; ++i) keep.emplace_back(copt);
    // Over-limit connections are accepted then closed: the request sees a
    // clean EOF (typed closed), not a hang.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    u32 refused = 0;
    for (int i = 0; i < 4; ++i) {
        try {
            Client extra(copt);
            extra.request(ServeRequest{"asset", 2, {}});
        } catch (const NetError& e) {
            EXPECT_EQ(e.code(), NetErrorCode::closed);
            ++refused;
        }
    }
    EXPECT_GT(refused, 0u);
    EXPECT_GE(runner.daemon.stats().refused, refused);
    // The in-limit connections still work.
    auto res = keep[0].request(ServeRequest{"asset", 2, {}});
    EXPECT_TRUE(res.ok()) << res.detail;
}

TEST_F(NetFixture, IdleConnectionsAreClosed) {
    DaemonOptions dopt;
    dopt.idle_timeout = std::chrono::milliseconds(100);
    DaemonRunner runner(server, dopt);

    Fd sock = connect_tcp("127.0.0.1", runner.daemon.port(), Deadline::none());
    u8 buf[64];
    // recv_some returns 0 on orderly EOF — the idle sweep's close.
    const std::size_t n =
        recv_some(sock.get(), buf, Deadline::after(std::chrono::seconds(10)));
    EXPECT_EQ(n, 0u);
    EXPECT_GE(runner.daemon.stats().idle_closed, 1u);
}

TEST_F(NetFixture, HostileTransportFrameClosesConnection) {
    DaemonOptions dopt;
    DaemonRunner runner(server, dopt);
    Fd sock = connect_tcp("127.0.0.1", runner.daemon.port(), Deadline::none());
    // Announce a 2 GiB frame: the daemon must reject at prefix time and
    // close, not allocate.
    const u8 prefix[4] = {0x00, 0x00, 0x00, 0x80};
    send_all(sock.get(), prefix, Deadline::none());
    u8 buf[64];
    const std::size_t n =
        recv_some(sock.get(), buf, Deadline::after(std::chrono::seconds(10)));
    EXPECT_EQ(n, 0u);
    EXPECT_GE(runner.daemon.stats().protocol_errors, 1u);
}

TEST_F(NetFixture, MalformedProtocolFrameGetsTypedErrorResponse) {
    DaemonRunner runner(server, {});
    ClientOptions copt;
    copt.port = runner.daemon.port();
    Client c(copt);
    // A well-delimited transport frame holding garbage: serve_frame turns
    // it into a typed v1 error response — the connection survives.
    const std::vector<u8> garbage = {'n', 'o', 'p', 'e'};
    auto resp = c.roundtrip_frame(garbage);
    auto res = serve::decode_response(resp);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.code, serve::ErrorCode::malformed_frame);
    // Same connection, real request: still served.
    auto ok = c.request(ServeRequest{"asset", 2, {}});
    EXPECT_TRUE(ok.ok()) << ok.detail;
}

TEST_F(NetFixture, MetricsScrapeOverRealSocket) {
    DaemonRunner runner(server, {});
    ClientOptions copt;
    copt.port = runner.daemon.port();
    Client c(copt);
    c.request(ServeRequest{"asset", 2, {}});
    const std::string text = c.fetch_metrics(false);
    // Daemon counters and serve-stack counters share one exposition.
    EXPECT_NE(text.find("daemon_accepted_total"), std::string::npos);
    EXPECT_NE(text.find("daemon_requests_total"), std::string::npos);
    EXPECT_NE(text.find("serve_requests_total"), std::string::npos);
    const std::string json = c.fetch_metrics(true);
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("daemon_connections"), std::string::npos);
}

TEST_F(NetFixture, PipelinedRequestsAnswerInOrder) {
    DaemonRunner runner(server, {});
    Fd sock = connect_tcp("127.0.0.1", runner.daemon.port(), Deadline::none());
    // Three requests in one write; responses must come back in order on
    // the same connection.
    const u32 pars[] = {2, 8, 16};
    std::vector<u8> burst;
    for (u32 p : pars)
        append_net_frame(burst, serve::encode_request(ServeRequest{"asset", p, {}}));
    send_all(sock.get(), burst, Deadline::none());
    FrameReader reader;
    u32 got = 0;
    u8 buf[64 * 1024];
    while (got < 3) {
        const std::size_t n = recv_some(
            sock.get(), buf, Deadline::after(std::chrono::seconds(30)));
        ASSERT_GT(n, 0u);
        reader.feed(std::span<const u8>(buf, n));
        while (auto f = reader.next()) {
            auto res = serve::decode_response(*f);
            ASSERT_TRUE(res.ok()) << res.detail;
            auto ref = in_process(ServeRequest{"asset", pars[got], {}});
            EXPECT_EQ(*res.wire, *ref.wire) << "response " << got;
            ++got;
        }
    }
}

// ---- resumable streams ----

TEST_F(NetFixture, MidStreamKillWithoutResumeBudgetThrows) {
    // Control for the resume test: the daemon's debug hook hard-closes the
    // connection mid-stream; a client with no resume budget must surface
    // the transport failure, not fabricate a result.
    DaemonOptions dopt;
    dopt.stream.max_frame_bytes = 8 * 1024;
    dopt.debug_kill_stream_after_bytes = 24 * 1024;
    DaemonRunner runner(server, dopt);
    ClientOptions copt;
    copt.port = runner.daemon.port();
    Client client(copt);
    EXPECT_THROW(client.request_streamed(ServeRequest{
                     "asset", 8, {}, serve::kAcceptAll | serve::kAcceptStreamed}),
                 NetError);
}

TEST_F(NetFixture, ResumedStreamReassemblesBitExactAfterMidStreamKill) {
    // The daemon kills the connection after ~24 KiB of stream frames (once
    // per daemon); the client reconnects, re-requests at the received byte
    // offset, and keeps feeding the SAME reassembler — prefix + tail must
    // pass the FIN's whole-wire checksum and match v1 bit-exactly.
    DaemonOptions dopt;
    dopt.stream.max_frame_bytes = 8 * 1024;
    dopt.debug_kill_stream_after_bytes = 24 * 1024;
    DaemonRunner runner(server, dopt);

    auto v1 = in_process(ServeRequest{"asset", 8, {}});
    ASSERT_GT(v1.wire->size(), 48u * 1024);  // the kill lands mid-stream

    ClientOptions copt;
    copt.port = runner.daemon.port();
    copt.stream_resume_attempts = 2;
    Client client(copt);
    u64 frames = 0;
    auto v2 = client.request_streamed(
        ServeRequest{"asset", 8, {}, serve::kAcceptAll | serve::kAcceptStreamed},
        [&](std::span<const u8>) { ++frames; });
    ASSERT_TRUE(v2.ok()) << v2.detail;
    EXPECT_EQ(*v2.wire, *v1.wire);
    EXPECT_GT(frames, 0u);
    // The kill really happened: the daemon saw the reconnect.
    EXPECT_GE(runner.daemon.stats().accepted, 2u);
}

// ---- multi-loop daemon ----

#ifdef RECOIL_TSAN
constexpr u32 kLoopTestThreads = 8;
constexpr u32 kLoopTestConnsPerThread = 4;
#else
constexpr u32 kLoopTestThreads = 16;
constexpr u32 kLoopTestConnsPerThread = 8;
#endif

TEST_F(NetFixture, MultiLoopDaemonServesBitExactAndDrains) {
    DaemonOptions dopt;
    dopt.loops = 4;
    dopt.listen_backlog = 512;
    DaemonRunner runner(server, dopt);
    const u16 port = runner.daemon.port();

    auto full_ref = in_process(ServeRequest{"asset", 8, {}});
    auto range_ref =
        in_process(ServeRequest{"asset", 8, {{1000, 60'000}}});

    std::atomic<u32> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kLoopTestThreads);
    for (u32 t = 0; t < kLoopTestThreads; ++t) {
        threads.emplace_back([&, t] {
            for (u32 i = 0; i < kLoopTestConnsPerThread; ++i) {
                try {
                    ClientOptions copt;
                    copt.port = port;
                    Client c(copt);
                    auto v1 = c.request(ServeRequest{"asset", 8, {}});
                    if (!v1.ok() || *v1.wire != *full_ref.wire) ++failures;
                    auto rr = c.request(
                        ServeRequest{"asset", 8, {{1000, 60'000}}});
                    if (!rr.ok() || *rr.wire != *range_ref.wire) ++failures;
                    if ((t + i) % 3 == 0) {
                        auto v2 = c.request_streamed(ServeRequest{
                            "asset", 8, {},
                            serve::kAcceptAll | serve::kAcceptStreamed});
                        if (!v2.ok() || *v2.wire != *full_ref.wire)
                            ++failures;
                    }
                } catch (const Error&) {
                    ++failures;
                }
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0u);

    constexpr u32 kConns = kLoopTestThreads * kLoopTestConnsPerThread;
    auto s = runner.daemon.stats();
    EXPECT_EQ(s.loops, 4u);
    EXPECT_GE(s.accepted, kConns);
    EXPECT_GE(s.requests, 2u * kConns);
    // Wake-ups happen in both accept modes (drain uses them too, and the
    // hand-off fallback rings one per dealt connection).
    runner.drain_and_join();
    auto after = runner.daemon.stats();
    EXPECT_EQ(after.drains, 1u);
    EXPECT_EQ(after.connections, 0u);
}

TEST_F(NetFixture, MultiLoopDrainMidStreamCompletesBitExact) {
    // The single-loop drain guarantee must hold per loop: start a stream,
    // signal drain mid-stream from another thread, and require the
    // remaining frames to arrive and reassemble bit-exactly.
    DaemonOptions dopt;
    dopt.loops = 2;
    dopt.stream.max_frame_bytes = 4 * 1024;
    DaemonRunner runner(server, dopt);

    auto v1 = in_process(ServeRequest{"asset", 8, {}});
    ClientOptions copt;
    copt.port = runner.daemon.port();
    Client client(copt);
    bool drained = false;
    auto v2 = client.request_streamed(
        ServeRequest{"asset", 8, {}, serve::kAcceptAll | serve::kAcceptStreamed},
        [&](std::span<const u8>) {
            if (!drained) {
                drained = true;
                runner.daemon.begin_drain();
            }
        });
    ASSERT_TRUE(v2.ok()) << v2.detail;
    EXPECT_EQ(*v2.wire, *v1.wire);
    runner.drain_and_join();
    EXPECT_EQ(runner.daemon.stats().connections, 0u);
}

}  // namespace
}  // namespace recoil::net
