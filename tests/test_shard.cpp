// Tests for the sharded serving layer (serve/shard_router.hpp): the
// consistent-hash ring's distribution and stability, zero-copy peer fetch
// (bit-exact with owning-shard serving), the budget-rebalance coordinator
// moving memory toward observed heat, per-shard governor isolation, the
// frozen shard_* metric names, and a multi-loop daemon fronting a
// ShardedServer under concurrent load — every wire bit-exact with the
// in-process router result.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "net/client.hpp"
#include "net/daemon.hpp"
#include "serve/shard_router.hpp"
#include "serve/store.hpp"
#include "workload/datasets.hpp"

#if defined(__SANITIZE_THREAD__)
#define RECOIL_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RECOIL_TSAN 1
#endif
#endif

namespace recoil::serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("recoil-shard-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter()++));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    static std::atomic<u64>& counter() {
        static std::atomic<u64> c{0};
        return c;
    }
};

/// First asset name of the form `<stem>-<k>` that the router homes on
/// `want` — the tests need assets with known owners.
std::string name_on_shard(const ShardedServer& r, const std::string& stem,
                          u32 want) {
    for (u32 k = 0;; ++k) {
        std::string name = stem + "-" + std::to_string(k);
        if (r.shard_of(name) == want) return name;
    }
}

TEST(ShardRing, KeysSpreadWithinConsistentHashBounds) {
    ShardedOptions opt;
    opt.shards = 8;
    ShardedServer r(opt);
    std::vector<u64> counts(8, 0);
    constexpr u32 kKeys = 40'000;
    for (u32 i = 0; i < kKeys; ++i)
        ++counts[r.shard_of("tenant/asset-" + std::to_string(i))];
    const double mean = static_cast<double>(kKeys) / 8.0;
    for (u32 i = 0; i < 8; ++i) {
        EXPECT_GT(counts[i], 0u) << "shard " << i << " got no keys";
        const double ratio = static_cast<double>(counts[i]) / mean;
        EXPECT_LT(ratio, 1.35) << "shard " << i << " overloaded";
        EXPECT_GT(ratio, 0.65) << "shard " << i << " starved";
    }
}

TEST(ShardRing, RoutingIsStableAndDeterministic) {
    ShardedOptions opt;
    opt.shards = 4;
    ShardedServer a(opt);
    ShardedServer b(opt);
    for (u32 i = 0; i < 500; ++i) {
        const std::string name = "key-" + std::to_string(i);
        const u32 home = a.shard_of(name);
        EXPECT_EQ(home, a.shard_of(name));  // stable within an instance
        EXPECT_EQ(home, b.shard_of(name));  // and across instances
        EXPECT_LT(home, 4u);
    }
}

TEST(ShardPeerFetch, AdoptedAssetServesBitExactWithOwningShard) {
    TempDir tmp;
    ShardedOptions opt;
    opt.shards = 2;
    opt.store_dir = tmp.path;
    ShardedServer r(opt);

    // Plant the asset in the WRONG shard's partition: its home is shard 0,
    // its bytes live only in shard 1's memory + disk partition.
    const std::string name = name_on_shard(r, "planted", 0);
    auto data = workload::gen_text(120'000, 77);
    r.shard(1).store().encode_bytes(name, data, 64);

    // Reference: the identical deterministic encode served by a plain
    // server — what the owning shard would have produced natively.
    ContentServer ref;
    ref.store().encode_bytes(name, data, 64);
    auto want = ref.serve(ServeRequest{name, 8, {}});
    ASSERT_TRUE(want.ok()) << want.detail;

    auto got = r.serve(ServeRequest{name, 8, {}});
    ASSERT_TRUE(got.ok()) << got.detail;
    EXPECT_EQ(*got.wire, *want.wire);
    EXPECT_EQ(r.totals().peer_fetches, 1u);
    EXPECT_GT(r.totals().peer_fetch_bytes, 0u);

    // Now resident on the home shard: serving again fetches nothing.
    auto again = r.serve(ServeRequest{name, 8, {}});
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again.wire, *want.wire);
    EXPECT_EQ(r.totals().peer_fetches, 1u);

    // A name nobody stores is a miss everywhere: counted, typed failure.
    auto missing = r.serve(ServeRequest{name_on_shard(r, "ghost", 0), 8, {}});
    EXPECT_FALSE(missing.ok());
    EXPECT_EQ(missing.code, ErrorCode::unknown_asset);
    EXPECT_EQ(r.totals().peer_fetch_misses, 1u);
}

TEST(ShardRebalance, BudgetMovesTowardObservedHeat) {
    constexpr u64 kTotal = 8u << 20;
    ShardedOptions opt;
    opt.shards = 2;
    opt.total_budget_bytes = kTotal;
    opt.budget_floor = 0.25;
    ShardedServer r(opt);

    const auto before = r.shard_budgets();
    ASSERT_EQ(before.size(), 2u);
    EXPECT_EQ(before[0] + before[1], kTotal);
    EXPECT_EQ(before[0], before[1]);  // even initial split

    const std::string hot = name_on_shard(r, "hot", 0);
    const std::string cold = name_on_shard(r, "cold", 1);
    auto data = workload::gen_text(60'000, 9);
    r.encode_bytes(hot, data, 64);
    r.encode_bytes(cold, data, 64);

    // Shard 0 takes 50 serves of its asset, shard 1 takes 2: the hit-byte
    // deltas the rebalancer reads diverge sharply.
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(r.serve(ServeRequest{hot, 8, {}}).ok());
    for (int i = 0; i < 2; ++i)
        ASSERT_TRUE(r.serve(ServeRequest{cold, 8, {}}).ok());

    r.rebalance();
    const auto after = r.shard_budgets();
    EXPECT_EQ(after[0] + after[1], kTotal);   // conservation
    EXPECT_GT(after[0], after[1]);            // heat won
    EXPECT_GT(after[0], before[0]);
    // The floor holds: even the cold shard keeps its protected fraction.
    EXPECT_GE(after[1], static_cast<u64>(0.25 * (kTotal / 2)));
    EXPECT_EQ(r.totals().rebalances, 1u);
    EXPECT_GT(r.totals().budget_moved_bytes, 0u);
    // The governors saw the retarget, not just the router's bookkeeping.
    EXPECT_EQ(r.shard(0).governor().budget_bytes(), after[0]);
    EXPECT_EQ(r.shard(1).governor().budget_bytes(), after[1]);
}

TEST(ShardGovernor, PressureOnOneShardLeavesPeersUntouched) {
    TempDir tmp;
    ShardedOptions opt;
    opt.shards = 2;
    opt.store_dir = tmp.path;       // unloads need a backing copy
    opt.total_budget_bytes = 160'000;  // 80 KB per shard
    ShardedServer r(opt);

    // Two big assets on shard 0 (resident far over its 80 KB budget), one
    // tiny asset on shard 1 (well under).
    const std::string big1 = name_on_shard(r, "big1", 0);
    const std::string big2 = name_on_shard(r, "big2", 0);
    const std::string tiny = name_on_shard(r, "tiny", 1);
    auto big_data = workload::gen_text(200'000, 5);
    auto tiny_data = workload::gen_text(2'000, 6);
    r.encode_bytes(big1, big_data, 64);
    r.encode_bytes(big2, big_data, 64);
    r.encode_bytes(tiny, tiny_data, 8);

    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(r.serve(ServeRequest{big1, 8, {}}).ok());
        ASSERT_TRUE(r.serve(ServeRequest{big2, 8, {}}).ok());
        ASSERT_TRUE(r.serve(ServeRequest{tiny, 8, {}}).ok());
    }
    r.shard(0).governor().enforce();
    r.shard(1).governor().enforce();

    const auto g0 = r.shard(0).governor().stats();
    const auto g1 = r.shard(1).governor().stats();
    EXPECT_GT(g0.enforcements, 0u) << "over-budget shard never enforced";
    EXPECT_GT(g0.unloads, 0u);
    EXPECT_EQ(g1.unloads, 0u) << "pressure leaked across shards";
    // Every serve still answers after the unloads (demand re-load).
    EXPECT_TRUE(r.serve(ServeRequest{big1, 8, {}}).ok());
    EXPECT_TRUE(r.serve(ServeRequest{tiny, 8, {}}).ok());
}

TEST(ShardMetrics, FrozenNamesAppearInRouterScrape) {
    ShardedOptions opt;
    opt.shards = 2;
    opt.total_budget_bytes = 1u << 20;
    ShardedServer r(opt);
    auto res = r.serve(ServeRequest{"!metrics.json", 1, {},
                                    kAcceptAll | kAcceptMetrics});
    ASSERT_TRUE(res.ok()) << res.detail;
    const std::string body(res.wire->begin(), res.wire->end());
    // Frozen in docs/observability.md (sharded catalogue): renaming any of
    // these breaks dashboards, so it breaks this test first.
    for (const char* name :
         {"shard_servers", "shard_routed_total", "shard_requests_total",
          "shard_wire_bytes_total", "shard_cache_hit_bytes_total",
          "shard_peer_fetches_total", "shard_peer_fetch_bytes_total",
          "shard_peer_fetch_misses_total", "shard_rebalances_total",
          "shard_budget_moved_bytes_total", "shard_budget_bytes",
          "shard_resident_bytes"}) {
        EXPECT_NE(body.find(std::string("\"") + name + "\""),
                  std::string::npos)
            << "frozen metric missing from scrape: " << name;
    }
    // Per-shard labeled series ride the same families.
    EXPECT_NE(body.find("shard_requests_total{shard=\\\"0\\\"}"),
              std::string::npos);
    EXPECT_NE(body.find("shard_requests_total{shard=\\\"1\\\"}"),
              std::string::npos);
}

// ---- multi-loop daemon over a sharded backend ----

#ifdef RECOIL_TSAN
constexpr u32 kShardLoadThreads = 8;
constexpr u32 kShardLoadConnsPerThread = 4;
#else
constexpr u32 kShardLoadThreads = 16;
constexpr u32 kShardLoadConnsPerThread = 8;
#endif

TEST(ShardDaemon, MultiLoopShardedServingBitExactUnderLoad) {
    ShardedOptions opt;
    opt.shards = 2;
    ShardedServer router(opt);
    constexpr u32 kAssets = 8;
    std::vector<std::string> names;
    std::vector<std::shared_ptr<const std::vector<u8>>> refs;
    for (u32 i = 0; i < kAssets; ++i) {
        names.push_back("fleet/asset-" + std::to_string(i));
        auto data = workload::gen_text(40'000 + 1000 * i, 1000 + i);
        router.encode_bytes(names.back(), data, 64);
        auto ref = router.serve(ServeRequest{names.back(), 8, {}});
        ASSERT_TRUE(ref.ok()) << ref.detail;
        refs.push_back(ref.wire);
    }

    net::DaemonOptions dopt;
    dopt.loops = 4;
    dopt.listen_backlog = 512;
    net::Daemon daemon(router, dopt);
    std::thread loop([&] { daemon.run(); });
    const u16 port = daemon.port();

    std::atomic<u32> failures{0};
    std::vector<std::thread> threads;
    for (u32 t = 0; t < kShardLoadThreads; ++t) {
        threads.emplace_back([&, t] {
            for (u32 i = 0; i < kShardLoadConnsPerThread; ++i) {
                try {
                    net::ClientOptions copt;
                    copt.port = port;
                    net::Client c(copt);
                    const u32 a = (t * 7 + i) % kAssets;
                    auto v1 = c.request(ServeRequest{names[a], 8, {}});
                    if (!v1.ok() || *v1.wire != *refs[a]) ++failures;
                    if ((t + i) % 2 == 0) {
                        auto v2 = c.request_streamed(ServeRequest{
                            names[a], 8, {},
                            kAcceptAll | kAcceptStreamed});
                        if (!v2.ok() || *v2.wire != *refs[a]) ++failures;
                    }
                } catch (const Error&) {
                    ++failures;
                }
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0u);

    daemon.begin_drain();
    loop.join();
    const auto s = daemon.stats();
    EXPECT_EQ(s.loops, 4u);
    EXPECT_GE(s.accepted, kShardLoadThreads * kShardLoadConnsPerThread);
    EXPECT_EQ(s.connections, 0u);
    EXPECT_GE(router.fleet_totals().requests,
              u64{kShardLoadThreads} * kShardLoadConnsPerThread);
    // Both shards actually served: the ring spread 8 assets over 2 shards.
    EXPECT_GT(router.shard(0).totals().requests, 0u);
    EXPECT_GT(router.shard(1).totals().requests, 0u);
}

}  // namespace
}  // namespace recoil::serve
