// Round-trip and invariant tests for the interleaved rANS substrate, across
// configurations (16-bit and 8-bit units), lane counts, probability
// quantization levels, symbol widths and data skews.

#include <gtest/gtest.h>

#include "rans/interleaved.hpp"
#include "test_util.hpp"

namespace recoil {
namespace {

template <typename Cfg, u32 NLanes, typename TSym>
void roundtrip(std::span<const TSym> syms, const StaticModel& m) {
    auto bs = interleaved_encode<Cfg, NLanes>(syms, m);
    auto dec = serial_decode<Cfg, NLanes, TSym>(bs, m.tables());
    ASSERT_EQ(dec.size(), syms.size());
    for (std::size_t i = 0; i < syms.size(); ++i) {
        ASSERT_EQ(dec[i], syms[i]) << "mismatch at " << i;
    }
}

TEST(RansRoundTrip, Basic32Lanes) {
    auto syms = test::geometric_symbols<u8>(100000, 0.7, 256, 1);
    auto m = test::model_for<u8>(syms, 11, 256);
    roundtrip<Rans32, 32, u8>(syms, m);
}

TEST(RansRoundTrip, SingleLane) {
    auto syms = test::geometric_symbols<u8>(5000, 0.6, 256, 2);
    auto m = test::model_for<u8>(syms, 11, 256);
    roundtrip<Rans32, 1, u8>(syms, m);
}

TEST(RansRoundTrip, ByteUnits) {
    auto syms = test::geometric_symbols<u8>(20000, 0.6, 256, 3);
    auto m = test::model_for<u8>(syms, 11, 256);
    roundtrip<Rans32x8, 32, u8>(syms, m);
}

TEST(RansRoundTrip, ByteUnitsMultiStepRenorm) {
    // prob_bits > unit_bits forces multi-unit renormalizations.
    auto syms = test::geometric_symbols<u8>(20000, 0.9, 256, 4);
    auto m = test::model_for<u8>(syms, 14, 256);
    roundtrip<Rans32x8, 8, u8>(syms, m);
}

TEST(RansRoundTrip, SixteenBitSymbols) {
    auto syms = test::geometric_symbols<u16>(50000, 0.97, 4096, 5);
    std::vector<u64> counts(4096, 0);
    for (u16 s : syms) ++counts[s];
    StaticModel m(counts, 16);
    roundtrip<Rans32, 32, u16>(syms, m);
}

TEST(RansRoundTrip, EmptyInput) {
    std::vector<u64> counts(4, 1);
    StaticModel m(counts, 8);
    std::vector<u8> syms;
    auto bs = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), m);
    EXPECT_EQ(bs.num_symbols, 0u);
    EXPECT_TRUE(bs.units.empty());
    auto dec = serial_decode<Rans32, 32, u8>(bs, m.tables());
    EXPECT_TRUE(dec.empty());
}

TEST(RansRoundTrip, FewerSymbolsThanLanes) {
    std::vector<u64> counts(256, 1);
    StaticModel m(counts, 8);
    for (std::size_t n : {1u, 5u, 31u, 32u, 33u}) {
        auto syms = test::geometric_symbols<u8>(n, 0.5, 256, n);
        roundtrip<Rans32, 32, u8>(syms, m);
    }
}

TEST(RansRoundTrip, RareSymbolInFirstGroup) {
    // A frequency-1 symbol among the first NLanes positions forces group-0
    // renormalization — the drain_start edge case.
    std::vector<u64> counts(256, 0);
    counts[0] = (1u << 16) - 1;
    counts[1] = 1;
    StaticModel m(counts, 16);
    std::vector<u8> syms(1000, 0);
    syms[3] = 1;  // in the first group
    syms[500] = 1;
    roundtrip<Rans32, 32, u8>(std::span<const u8>(syms), m);
}

TEST(RansRoundTrip, SingleSymbolAlphabet) {
    std::vector<u64> counts(2, 0);
    counts[1] = 7;
    StaticModel m(counts, 11);
    std::vector<u8> syms(777, 1);
    roundtrip<Rans32, 32, u8>(std::span<const u8>(syms), m);
}

TEST(RansInvariants, CompressedSizeNearEntropy) {
    auto syms = test::geometric_symbols<u8>(200000, 0.5, 256, 6);
    auto m = test::model_for<u8>(syms, 14, 256);
    std::vector<u64> counts(256, 0);
    for (u8 s : syms) ++counts[s];
    const double ideal_bits = m.cross_entropy_bits(counts);
    auto bs = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), m);
    const double actual_bits = static_cast<double>(bs.byte_size()) * 8;
    EXPECT_GT(actual_bits, ideal_bits * 0.999);      // can't beat entropy
    EXPECT_LT(actual_bits, ideal_bits * 1.01 + 32 * 32);  // small overhead
}

TEST(RansInvariants, EventsAreWriteOrderedAndBounded) {
    auto syms = test::geometric_symbols<u8>(50000, 0.6, 256, 8);
    auto m = test::model_for<u8>(syms, 11, 256);
    RenormEventList events;
    auto bs = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), m, &events);
    ASSERT_FALSE(events.empty());
    u64 prev_offset = 0;
    u64 prev_index = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto& e = events[i];
        EXPECT_LT(e.state, Rans32::lower_bound);        // Lemma 3.1
        EXPECT_LT(e.offset, bs.units.size());
        EXPECT_EQ(e.sym_index % 32, e.lane);            // lane-aligned indices
        if (i > 0) {
            EXPECT_GE(e.offset, prev_offset);            // write order
            EXPECT_GT(e.sym_index, prev_index);          // strictly increasing anchors
        }
        prev_offset = e.offset;
        prev_index = e.sym_index;
    }
}

TEST(RansInvariants, BitstreamIdenticalWithAndWithoutEvents) {
    auto syms = test::geometric_symbols<u8>(30000, 0.7, 256, 9);
    auto m = test::model_for<u8>(syms, 11, 256);
    RenormEventList events;
    auto a = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), m, &events);
    auto b = interleaved_encode<Rans32, 32>(std::span<const u8>(syms), m,
                                            static_cast<RenormEventList*>(nullptr));
    EXPECT_EQ(a.units, b.units);
    EXPECT_EQ(a.final_states, b.final_states);
}

TEST(RansInvariants, EncodingZeroFreqSymbolThrows) {
    std::vector<u64> counts(256, 0);
    counts[0] = 10;
    StaticModel m(counts, 8);
    std::vector<u8> syms{0, 0, 1};  // symbol 1 has frequency 0
    EXPECT_THROW((interleaved_encode<Rans32, 32>(std::span<const u8>(syms), m)), Error);
}

// ---- parameterized sweep: config x lanes x prob_bits x skew ----------------

struct SweepParam {
    u32 lanes;
    u32 prob_bits;
    double q;
    std::size_t n;
};

class RansSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RansSweep, RoundTrip16BitUnits) {
    const auto p = GetParam();
    auto syms = test::geometric_symbols<u8>(p.n, p.q, 256,
                                            p.lanes * 131 + p.prob_bits);
    auto m = test::model_for<u8>(syms, p.prob_bits, 256);
    switch (p.lanes) {
        case 1: roundtrip<Rans32, 1, u8>(syms, m); break;
        case 4: roundtrip<Rans32, 4, u8>(syms, m); break;
        case 8: roundtrip<Rans32, 8, u8>(syms, m); break;
        case 32: roundtrip<Rans32, 32, u8>(syms, m); break;
        case 64: roundtrip<Rans32, 64, u8>(syms, m); break;
        default: FAIL();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RansSweep,
    ::testing::Values(
        SweepParam{1, 8, 0.3, 10000}, SweepParam{4, 11, 0.5, 10000},
        SweepParam{8, 12, 0.7, 20000}, SweepParam{32, 11, 0.1, 50000},
        SweepParam{32, 16, 0.9, 50000}, SweepParam{32, 16, 0.99, 20000},
        SweepParam{64, 11, 0.6, 30000}, SweepParam{32, 8, 0.5, 33},
        SweepParam{32, 11, 0.5, 4096}),
    [](const auto& info) {
        return "lanes" + std::to_string(info.param.lanes) + "_n" +
               std::to_string(info.param.prob_bits) + "_q" +
               std::to_string(static_cast<int>(info.param.q * 100)) + "_len" +
               std::to_string(info.param.n);
    });

}  // namespace
}  // namespace recoil
