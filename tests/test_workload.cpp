// Tests for the synthetic dataset generators: determinism, calibrated
// compressibility (the Table 4 ladder), and the latent/adaptive pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

#include "rans/static_model.hpp"
#include "rans/symbol_stats.hpp"
#include "workload/datasets.hpp"

namespace recoil {
namespace {

using namespace workload;

double order0_bits_per_byte(std::span<const u8> data) {
    auto h = histogram(data);
    const double n = static_cast<double>(data.size());
    double bits = 0;
    for (u64 c : h) {
        if (c == 0) continue;
        const double p = static_cast<double>(c) / n;
        bits -= p * std::log2(p);
    }
    return bits;
}

TEST(Workload, ExponentialDeterministic) {
    auto a = gen_exponential(10000, 100, 7);
    auto b = gen_exponential(10000, 100, 7);
    auto c = gen_exponential(10000, 100, 8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Workload, ExponentialCompressibilityLadder) {
    // Larger lambda => more skew => fewer bits/byte (Table 4's ladder).
    double prev = 9.0;
    for (double lambda : {10.0, 50.0, 100.0, 200.0, 500.0}) {
        auto data = gen_exponential(400000, lambda, 11);
        const double bpb = order0_bits_per_byte(data);
        EXPECT_LT(bpb, prev) << "lambda " << lambda;
        prev = bpb;
    }
    // End points bracket the paper's measured ratios (6.1 and 0.7 bpb).
    auto d10 = gen_exponential(400000, 10, 12);
    auto d500 = gen_exponential(400000, 500, 13);
    EXPECT_GT(order0_bits_per_byte(d10), 4.5);
    EXPECT_LT(order0_bits_per_byte(d500), 1.6);
}

TEST(Workload, TextEntropyInEnglishBand) {
    auto data = gen_text(500000, 3);
    const double bpb = order0_bits_per_byte(data);
    EXPECT_GT(bpb, 3.8);
    EXPECT_LT(bpb, 5.4);
    // Text should be ASCII-ish.
    for (std::size_t i = 0; i < 1000; ++i) {
        EXPECT_GE(data[i], 0x20);
        EXPECT_LT(data[i], 0x7f);
    }
}

TEST(Workload, TextDeterministicPerSeed) {
    EXPECT_EQ(gen_text(5000, 1), gen_text(5000, 1));
    EXPECT_NE(gen_text(5000, 1), gen_text(5000, 2));
}

TEST(Workload, PaperByteDatasetRegistry) {
    auto specs = paper_byte_datasets(0.01);
    ASSERT_EQ(specs.size(), 9u);
    EXPECT_EQ(specs[0].name, "rand_10");
    EXPECT_EQ(specs[8].name, "enwik9");
    // Sizes follow the paper's proportions (with a floor for tiny scales).
    EXPECT_GE(specs[8].size, specs[7].size);
    auto data = specs[0].generate(specs[0].size);
    EXPECT_EQ(data.size(), specs[0].size);
}

TEST(Workload, LatentsWellFormed) {
    auto ds = gen_latents("t", 50000, 2.0, 9);
    EXPECT_EQ(ds.symbols.size(), 50000u);
    EXPECT_EQ(ds.ids.size(), 50000u);
    for (u16 s : ds.symbols) EXPECT_LT(s, kLatentAlphabet);
    for (u8 id : ds.ids) EXPECT_LT(id, 64);
}

TEST(Workload, LatentsIdsSpatiallyCoherent) {
    auto ds = gen_latents("t", 100000, 2.0, 10);
    u64 changes = 0;
    for (std::size_t i = 1; i < ds.ids.size(); ++i) changes += ds.ids[i] != ds.ids[i - 1];
    // A hyperprior-like field changes bins rarely relative to i.i.d. ids.
    EXPECT_LT(changes, ds.ids.size() / 4);
}

TEST(Workload, LatentsModelsCompressNearConditionalEntropy) {
    auto ds = gen_latents("t", 200000, 2.0, 11);
    auto models = ds.build_models(16);
    // Every symbol is encodable, and the indexed model beats a single static
    // model on this data (the point of adaptive coding).
    double adaptive_bits = 0;
    for (std::size_t i = 0; i < ds.symbols.size(); ++i) {
        const auto e = models.enc_lookup(i, ds.symbols[i]);
        ASSERT_GT(e.freq, 0u);
        adaptive_bits += 16.0 - std::log2(static_cast<double>(e.freq));
    }
    auto h = histogram16(ds.symbols, kLatentAlphabet);
    for (auto& c : h) c += 1;  // smooth
    StaticModel single(h, 16);
    double static_bits = 0;
    for (std::size_t i = 0; i < ds.symbols.size(); ++i) {
        static_bits += 16.0 - std::log2(static_cast<double>(single.freq(ds.symbols[i])));
    }
    EXPECT_LT(adaptive_bits, static_bits);
    // Compression ratio lands in the paper's div2k band (19-41% of 16-bit raw).
    const double ratio = adaptive_bits / (16.0 * static_cast<double>(ds.symbols.size()));
    EXPECT_GT(ratio, 0.10);
    EXPECT_LT(ratio, 0.50);
}

TEST(Workload, PaperLatentRegistry) {
    auto sets = paper_latent_datasets(0.02);
    ASSERT_EQ(sets.size(), 3u);
    EXPECT_EQ(sets[0].name, "div2k801");
    // div2k805 is the most compressible (smallest sigma), 803 the least.
    EXPECT_LT(sets[2].bin_sigma[32], sets[1].bin_sigma[32]);
}

TEST(Workload, BenchScaleEnvOverride) {
    // Not set in the test environment: default applies.
    EXPECT_GT(bench_scale(), 0.0);
}

}  // namespace
}  // namespace recoil
