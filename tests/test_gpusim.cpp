// Tests for the GPU execution substrate: correctness of warp-kernel
// launches and sanity of the modeled grid statistics.

#include <gtest/gtest.h>

#include "core/recoil_encoder.hpp"
#include "gpusim/device.hpp"
#include "test_util.hpp"

namespace recoil {
namespace {

TEST(GpuSim, RecoilLaunchMatchesSerial) {
    auto syms = test::geometric_symbols<u8>(400000, 0.6, 256, 71);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, 128);
    gpusim::GpuSimDevice dev;
    gpusim::LaunchStats stats;
    auto dec = dev.launch_recoil<u8>(std::span<const u16>(enc.bitstream.units),
                                     enc.metadata, m.tables(), &stats);
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
    EXPECT_EQ(stats.warp_tasks, enc.metadata.num_splits());
    EXPECT_EQ(stats.blocks, ceil_div<u64>(stats.warp_tasks, 4));
    EXPECT_GT(stats.decode.sync_symbols, 0u);
}

TEST(GpuSim, ConventionalLaunchMatchesSerial) {
    auto syms = test::geometric_symbols<u8>(300000, 0.5, 256, 72);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = conventional_encode<Rans32, 32>(std::span<const u8>(syms), m, 96);
    gpusim::GpuSimDevice dev;
    gpusim::LaunchStats stats;
    auto dec = dev.launch_conventional<u8>(enc, m.tables(), &stats);
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
    EXPECT_EQ(stats.warp_tasks, enc.partitions.size());
}

TEST(GpuSim, OccupancyModel) {
    gpusim::GpuSimConfig cfg;
    cfg.sm_count = 68;
    cfg.max_blocks_per_sm = 8;
    cfg.threads_per_block = 128;
    gpusim::GpuSimDevice dev(cfg);
    // 68 SMs * 8 blocks * 4 warps = 2176 resident warps: the paper's
    // "threads required to fully utilize a high-end GPU".
    auto syms = test::geometric_symbols<u8>(200000, 0.5, 256, 73);
    auto m = test::model_for<u8>(syms, 11, 256);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(syms), m, 64);
    gpusim::LaunchStats stats;
    (void)dev.launch_recoil<u8>(std::span<const u16>(enc.bitstream.units),
                                enc.metadata, m.tables(), &stats);
    EXPECT_EQ(stats.resident_warps, 2176u);
    EXPECT_LE(stats.occupancy, 1.0);
    EXPECT_GT(stats.occupancy, 0.0);
}

TEST(GpuSim, SixteenBitLaunch) {
    auto syms = test::geometric_symbols<u16>(150000, 0.97, 4096, 74);
    std::vector<u64> counts(4096, 0);
    for (u16 s : syms) ++counts[s];
    StaticModel m(counts, 16);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u16>(syms), m, 48);
    gpusim::GpuSimDevice dev;
    auto dec = dev.launch_recoil<u16>(std::span<const u16>(enc.bitstream.units),
                                      enc.metadata, m.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), syms.begin()));
}

}  // namespace
}  // namespace recoil
