// End-to-end integration tests across modules: the paper's compatibility
// claims (the Recoil bitstream IS the baseline bitstream), cross-codec
// round trips on the actual benchmark workloads, combining chains, and the
// full server->wire->client path on every backend.

#include <gtest/gtest.h>

#include "conventional/conventional.hpp"
#include "core/recoil_decoder.hpp"
#include "core/metadata_codec.hpp"
#include "core/recoil_encoder.hpp"
#include "format/container.hpp"
#include "gpusim/device.hpp"
#include "rans/symbol_stats.hpp"
#include "simd/dispatch.hpp"
#include "tans/multians.hpp"
#include "test_util.hpp"
#include "workload/datasets.hpp"

namespace recoil {
namespace {

TEST(EndToEnd, RecoilBitstreamIsBaselineBitstream) {
    // §1: "Recoil does not actually modify the rANS bitstream, but instead
    // works on independent metadata" — a stock interleaved decoder that
    // ignores the metadata must decode a Recoil stream unchanged.
    auto data = workload::gen_text(300000, 31);
    StaticModel model(histogram(data), 11);
    auto plain = interleaved_encode<Rans32, 32>(std::span<const u8>(data), model);
    auto recoil = recoil_encode<Rans32, 32>(std::span<const u8>(data), model, 64);
    EXPECT_EQ(plain.units, recoil.bitstream.units);
    EXPECT_EQ(plain.final_states, recoil.bitstream.final_states);
    auto dec = serial_decode<Rans32, 32, u8>(recoil.bitstream, model.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), data.begin()));
}

TEST(EndToEnd, AllBenchWorkloadsRoundTripAllDecoders) {
    ThreadPool pool(8);
    gpusim::GpuSimDevice dev;
    for (const auto& spec : workload::paper_byte_datasets(0.003)) {
        auto data = spec.generate(spec.size);
        for (u32 n : {11u, 16u}) {
            StaticModel model(histogram(data), n);
            auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(data), model, 128);
            std::span<const u16> units(enc.bitstream.units);
            // Scalar parallel.
            auto a = recoil_decode<Rans32, 32, u8>(units, enc.metadata,
                                                   model.tables(), &pool);
            // SIMD parallel.
            simd::SimdRangeFn<u8> range;
            auto b = recoil_decode<Rans32, 32, u8>(units, enc.metadata,
                                                   model.tables(), &pool, nullptr,
                                                   range);
            // GPU substrate.
            auto c = dev.launch_recoil<u8>(units, enc.metadata, model.tables());
            ASSERT_TRUE(std::equal(a.begin(), a.end(), data.begin()))
                << spec.name << " n=" << n;
            ASSERT_EQ(a, b) << spec.name;
            ASSERT_EQ(a, c) << spec.name;
        }
    }
}

TEST(EndToEnd, LatentWorkloadFullPipeline) {
    auto ds = workload::gen_latents("e2e", 150000, 2.0, 41);
    auto models = ds.build_models(16);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u16>(ds.symbols), models, 96);
    gpusim::GpuSimDevice dev;
    gpusim::LaunchStats stats;
    auto dec = dev.launch_recoil<u16>(std::span<const u16>(enc.bitstream.units),
                                      enc.metadata, models.tables(), &stats);
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), ds.symbols.begin()));
    // Sync overhead stays a small fraction of the stream (the paper's
    // "negligible synchronization overhead" claim).
    EXPECT_LT(static_cast<double>(stats.decode.sync_symbols),
              0.2 * static_cast<double>(ds.symbols.size()));
}

TEST(EndToEnd, RepeatedCombiningChains) {
    auto data = workload::gen_text(400000, 33);
    StaticModel model(histogram(data), 11);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(data), model, 512);
    // A CDN edge re-combining an already-combined stream must stay valid.
    auto m1 = combine_splits(enc.metadata, 128);
    auto m2 = combine_splits(m1, 32);
    auto m3 = combine_splits(m2, 5);
    for (const RecoilMetadata* m : {&m1, &m2, &m3}) {
        auto dec = recoil_decode<Rans32, 32, u8>(
            std::span<const u16>(enc.bitstream.units), *m, model.tables());
        ASSERT_TRUE(std::equal(dec.begin(), dec.end(), data.begin()));
    }
    // Serialization after every stage too.
    auto bytes = serialize_metadata(m3);
    auto back = deserialize_metadata(bytes);
    auto dec = recoil_decode<Rans32, 32, u8>(
        std::span<const u16>(enc.bitstream.units), back, model.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), data.begin()));
}

TEST(EndToEnd, ConventionalVsRecoilSameContent) {
    // Both codecs decode to the same content; Recoil's wire size with
    // combined metadata beats Conventional's Large at every client capacity.
    auto data = workload::gen_exponential(500000, 200, 35);
    StaticModel model(histogram(data), 11);
    auto rec = recoil_encode<Rans32, 32>(std::span<const u8>(data), model, 1024);
    auto conv = conventional_encode<Rans32, 32>(std::span<const u8>(data), model, 1024);
    const u64 conv_wire = conv.payload_bytes() + conv.overhead_bytes();
    for (u32 cap : {4u, 16u, 64u}) {
        auto meta = combine_splits(rec.metadata, cap);
        const u64 rec_wire =
            rec.bitstream.byte_size() + serialize_metadata(meta).size();
        EXPECT_LT(rec_wire, conv_wire) << "capacity " << cap;
        auto a = recoil_decode<Rans32, 32, u8>(
            std::span<const u16>(rec.bitstream.units), meta, model.tables());
        auto b = conventional_decode<Rans32, 32, u8>(conv, model.tables());
        ASSERT_EQ(a, b);
    }
}

TEST(EndToEnd, MultiansAgreesWithRansContent) {
    auto data = workload::gen_text(200000, 36);
    auto pdf = quantize_pdf(histogram(data), 11);
    TansTable table(pdf, 11);
    auto tenc = tans_encode<u8>(std::span<const u8>(data), table);
    ThreadPool pool(4);
    auto tdec = multians_decode<u8>(tenc, table, {}, &pool);
    EXPECT_TRUE(std::equal(tdec.begin(), tdec.end(), data.begin()));
}

TEST(EndToEnd, ServerWirePathWithChecksums) {
    auto data = workload::gen_text(250000, 37);
    StaticModel model(histogram(data), 11);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(data), model, 256);
    auto file = format::make_recoil_file(enc, model, 1);
    for (u32 cap : {1u, 3u, 64u}) {
        auto wire = format::serve_combined(file, cap);
        auto got = format::load_recoil_file(wire);
        auto m = got.build_static_model();
        auto dec = recoil_decode<Rans32, 32, u8>(std::span<const u16>(got.units),
                                                 got.metadata, m.tables());
        ASSERT_TRUE(std::equal(dec.begin(), dec.end(), data.begin())) << cap;
    }
}

TEST(EndToEnd, ByteUnitConfigFullPath) {
    // The Rans32x8 (byte-unit, L=2^23) configuration through encode, split,
    // serialize, combine and decode — exercising 23-bit stored states.
    auto data = workload::gen_exponential(300000, 100, 38);
    StaticModel model(histogram(data), 11);
    auto enc = recoil_encode<Rans32x8, 32>(std::span<const u8>(data), model, 64);
    auto bytes = serialize_metadata(enc.metadata);
    auto meta = deserialize_metadata(bytes);
    EXPECT_EQ(meta.state_store_bits, 23u);
    auto combined = combine_splits(meta, 7);
    auto dec = recoil_decode<Rans32x8, 32, u8>(
        std::span<const u8>(enc.bitstream.units), combined, model.tables());
    EXPECT_TRUE(std::equal(dec.begin(), dec.end(), data.begin()));
}

}  // namespace
}  // namespace recoil
