#!/usr/bin/env python3
"""Repo lint gates, promoted from ad-hoc CI grep loops.

Checks
------
frozen-names    Every metric name frozen in docs/observability.md (and the
                daemon_* catalogue in docs/serve_daemon.md) appears as a
                string literal somewhere under src/ — a silent rename breaks
                this gate, not dashboards.
metrics-json    With --metrics-json FILE (a live ``--metrics-json`` dump),
                every frozen registry name appears in the snapshot. This is
                the old CI grep loop, now sourced from the docs table so the
                workflow and the docs cannot drift apart.
daemon-json     With --daemon-json FILE (a live daemon scrape), every frozen
                daemon_* name — plus serve_requests_total, proving the serve
                registry rides along — appears in the snapshot.
shard-json      With --shard-json FILE (a scrape of a --shards N daemon),
                every name frozen in the shard/daemon-loop table of
                docs/observability.md — plus daemon_requests_total, proving
                the daemon families ride along — appears in the snapshot.
trace-json      With --trace-json FILE, the trace dump carries its two
                structural fields ("slowest", "failures").
naked-mutex     No naked std::mutex / std::shared_mutex /
                std::condition_variable / std lock holders under src/
                outside util/thread_annotations.hpp: all locking goes
                through the Clang-Thread-Safety-annotated util wrappers.
naked-thread    No std::thread / std::jthread (or #include <thread>) under
                src/serve/ or src/net/: request-path concurrency rides the
                work-stealing executor (util/executor.hpp) or the decode
                ThreadPool, so a stream costs a state machine, not an OS
                thread. The substrates themselves (util/executor.*,
                util/thread_pool.hpp) and tests may spawn threads.
include-hygiene No #include <mutex> / <shared_mutex> / <condition_variable>
                under src/ outside the wrapper header, and every src header
                starts with #pragma once.

Exit status: 0 clean, 1 findings, 2 usage error.
``--self-test`` runs the checks against tests/lint_fixtures/ and verifies
the expected verdicts (used by the lint_selftest ctest).
"""

import argparse
import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# The one file allowed to name the std primitives: it wraps them.
WRAPPER = "util/thread_annotations.hpp"

NAKED_TOKENS = [
    "std::mutex",
    "std::shared_mutex",
    "std::recursive_mutex",
    "std::timed_mutex",
    "std::condition_variable",
    "std::scoped_lock",
    "std::unique_lock",
    "std::shared_lock",
    "std::lock_guard",
]

BANNED_INCLUDES = ["<mutex>", "<shared_mutex>", "<condition_variable>"]

# Directories where dedicated threads are banned outright: every producer,
# session worker and daemon loop must run on the executor or ThreadPool.
THREADLESS_DIRS = ("serve/", "net/")

THREAD_TOKENS = ["std::thread", "std::jthread"]

BACKTICK_NAME = re.compile(r"`([a-z][a-z0-9_]*)`")


def frozen_registry_names(repo: Path):
    """Metric names from the frozen table in docs/observability.md."""
    doc = repo / "docs" / "observability.md"
    names = []
    in_table = False
    for line in doc.read_text().splitlines():
        if line.startswith("| Family |"):
            in_table = True
            continue
        if in_table:
            if not line.startswith("|"):
                break
            names += BACKTICK_NAME.findall(line)
    return [n for n in names if not n.startswith("p")]  # drop p50/p90/...


def frozen_shard_names(repo: Path):
    """Names from the shard/daemon-loop table in docs/observability.md.

    A second frozen table with its own header: these families exist only
    on sharded (--shards N) daemons, so they are checked against a sharded
    scrape (--shard-json), never against the single-server snapshot the
    first table governs. Absent table (e.g. lint fixtures) -> no names.
    """
    doc = repo / "docs" / "observability.md"
    if not doc.exists():
        return []
    names = []
    in_table = False
    for line in doc.read_text().splitlines():
        if line.startswith("| Shard family |"):
            in_table = True
            continue
        if in_table:
            if not line.startswith("|"):
                break
            names += BACKTICK_NAME.findall(line)
    return names


def frozen_daemon_names(repo: Path):
    """daemon_* names from the catalogue in docs/serve_daemon.md."""
    doc = repo / "docs" / "serve_daemon.md"
    if not doc.exists():
        return []
    names = BACKTICK_NAME.findall(doc.read_text())
    return sorted({n for n in names if n.startswith("daemon_")})


def source_files(repo: Path):
    for ext in ("*.hpp", "*.cpp"):
        yield from sorted((repo / "src").rglob(ext))


def strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def check_frozen_names(repo: Path, findings):
    names = (frozen_registry_names(repo) + frozen_shard_names(repo) +
             frozen_daemon_names(repo))
    if not names:
        findings.append("frozen-names: no frozen metric names parsed from docs/")
        return
    blob = "\n".join(p.read_text() for p in source_files(repo))
    for name in names:
        if f'"{name}"' not in blob:
            findings.append(
                f"frozen-names: frozen metric '{name}' (docs/) not registered "
                f"anywhere under src/ — renamed without updating the docs?")


def check_snapshot(path: Path, names, label, findings):
    try:
        text = path.read_text()
        json.loads(text)
    except (OSError, ValueError) as e:
        findings.append(f"{label}: cannot read {path}: {e}")
        return
    for name in names:
        if f'"{name}"' not in text:
            findings.append(f"{label}: MISSING metric '{name}' in {path}")


def check_trace_json(path: Path, findings):
    try:
        text = path.read_text()
        json.loads(text)
    except (OSError, ValueError) as e:
        findings.append(f"trace-json: cannot read {path}: {e}")
        return
    for field in ("slowest", "failures"):
        if f'"{field}"' not in text:
            findings.append(f"trace-json: MISSING trace field '{field}' in {path}")


def check_naked_mutex(repo: Path, findings):
    for path in source_files(repo):
        rel = path.relative_to(repo / "src").as_posix()
        if rel == WRAPPER:
            continue
        code = strip_comments(path.read_text())
        for token in NAKED_TOKENS:
            for m in re.finditer(re.escape(token) + r"\b", code):
                line = code.count("\n", 0, m.start()) + 1
                findings.append(
                    f"naked-mutex: src/{rel}:{line}: {token} — use the "
                    f"annotated util:: wrappers from {WRAPPER}")


def check_naked_thread(repo: Path, findings):
    for path in source_files(repo):
        rel = path.relative_to(repo / "src").as_posix()
        if not rel.startswith(THREADLESS_DIRS):
            continue
        text = path.read_text()
        code = strip_comments(text)
        for token in THREAD_TOKENS:
            for m in re.finditer(re.escape(token) + r"\b", code):
                line = code.count("\n", 0, m.start()) + 1
                findings.append(
                    f"naked-thread: src/{rel}:{line}: {token} — streams and "
                    f"sessions run on util::Executor / ThreadPool, not "
                    f"dedicated threads")
        if re.search(r"#\s*include\s*<thread>", text):
            findings.append(
                f"naked-thread: src/{rel}: #include <thread> — nothing in "
                f"{'/'.join(THREADLESS_DIRS)} may spawn or name OS threads")


def check_include_hygiene(repo: Path, findings):
    for path in source_files(repo):
        rel = path.relative_to(repo / "src").as_posix()
        if rel == WRAPPER:
            continue
        text = path.read_text()
        for inc in BANNED_INCLUDES:
            if re.search(r"#\s*include\s*" + re.escape(inc), text):
                findings.append(
                    f"include-hygiene: src/{rel}: #include {inc} — include "
                    f"\"{WRAPPER}\" instead")
        if path.suffix == ".hpp":
            first = next(
                (l for l in text.splitlines() if l.strip()), "")
            if first.strip() != "#pragma once":
                findings.append(
                    f"include-hygiene: src/{rel}: header does not start "
                    f"with #pragma once")


def run_checks(repo: Path, metrics_json=None, daemon_json=None,
               trace_json=None, shard_json=None):
    findings = []
    check_frozen_names(repo, findings)
    check_naked_mutex(repo, findings)
    check_naked_thread(repo, findings)
    check_include_hygiene(repo, findings)
    if metrics_json is not None:
        check_snapshot(Path(metrics_json), frozen_registry_names(repo),
                       "metrics-json", findings)
    if daemon_json is not None:
        names = frozen_daemon_names(repo) + ["serve_requests_total"]
        check_snapshot(Path(daemon_json), names, "daemon-json", findings)
    if shard_json is not None:
        names = frozen_shard_names(repo) + ["daemon_requests_total"]
        check_snapshot(Path(shard_json), names, "shard-json", findings)
    if trace_json is not None:
        check_trace_json(Path(trace_json), findings)
    return findings


def self_test(repo: Path) -> int:
    fixtures = repo / "tests" / "lint_fixtures"
    expected = {
        "clean": [],
        "renamed_metric": ["frozen-names"],
        "naked_mutex": ["naked-mutex", "include-hygiene"],
        "naked_thread": ["naked-thread"],
    }
    failures = 0
    for name, expect in sorted(expected.items()):
        findings = run_checks(fixtures / name)
        kinds = sorted({f.split(":", 1)[0] for f in findings})
        if kinds != sorted(expect):
            print(f"self-test FAIL [{name}]: expected {sorted(expect)}, "
                  f"got {kinds}")
            for f in findings:
                print(f"  {f}")
            failures += 1
        else:
            print(f"self-test ok [{name}]: {kinds or 'clean'}")
    # The real tree must be clean too — the fixtures prove the checks can
    # fail; this proves they pass where it matters.
    real = run_checks(repo)
    if real:
        print("self-test FAIL [repo]: live tree has findings:")
        for f in real:
            print(f"  {f}")
        failures += 1
    else:
        print("self-test ok [repo]: live tree clean")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo", type=Path, default=REPO)
    ap.add_argument("--metrics-json", help="live registry snapshot to verify")
    ap.add_argument("--daemon-json", help="live daemon scrape to verify")
    ap.add_argument("--shard-json", help="sharded daemon scrape to verify")
    ap.add_argument("--trace-json", help="live trace dump to verify")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test(args.repo)
    findings = run_checks(args.repo, args.metrics_json, args.daemon_json,
                          args.trace_json, args.shard_json)
    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
