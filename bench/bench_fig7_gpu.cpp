// Figure 7 (GPU panels): decoding throughput of multians, Conventional and
// Recoil on the massively-parallel substrate, n=11 and n=16. Conventional
// decodes variation (b) and Recoil variation (c) — the Large (2176-way)
// bitstreams a GPU client would receive; multians decodes its own
// metadata-free tANS bitstream (f).
//
// Substitution note (DESIGN.md §2): the CUDA device is replaced by the
// gpusim warp-lockstep substrate (one split per warp, 32-lane SIMD warp
// kernel, all host cores). Shapes are the reproduction target, not the
// paper's 90+ GB/s absolute numbers.

#include <cstdio>

#include "bench_util.hpp"
#include "core/recoil_encoder.hpp"
#include "gpusim/device.hpp"
#include "rans/indexed_model.hpp"
#include "rans/symbol_stats.hpp"
#include "tans/multians.hpp"

using namespace recoil;

namespace {

template <typename TSym, typename Model>
void run_dataset(const std::string& name, std::span<const TSym> syms,
                 const Model& model, u32 n, gpusim::GpuSimDevice& dev,
                 std::span<const u8> raw_for_tans) {
    const int runs = bench::runs();
    const u64 raw_bytes = syms.size() * sizeof(TSym);
    const DecodeTables t = model.tables();
    std::vector<TSym> out(syms.size());  // decode work only, as in the paper

    double mult = -1;
    if (!raw_for_tans.empty()) {
        auto pdf = quantize_pdf(histogram(raw_for_tans), n);
        TansTable table(pdf, n);
        auto enc = tans_encode<u8>(raw_for_tans, table);
        MultiansOptions opt;
        opt.words_per_segment = 2048;
        // n=16 does not self-synchronize; cap the fixpoint (the fallback is
        // the honest cost the paper reports as unusable throughput).
        opt.max_rounds = n >= 14 ? 4 : 48;
        std::vector<u8> out8(raw_for_tans.size());
        mult = bench::measure_gbps(raw_bytes, runs, [&] {
            multians_decode_into<u8>(enc, table, std::span<u8>(out8), opt,
                                     &dev.pool(), nullptr);
        });
    }

    auto conv = conventional_encode<Rans32, 32>(syms, model, bench::kLargeSplits);
    const double conv_gbps = bench::measure_gbps(raw_bytes, runs, [&] {
        dev.launch_conventional_into<TSym>(conv, t, std::span<TSym>(out));
    });

    auto enc = recoil_encode<Rans32, 32>(syms, model, bench::kLargeSplits);
    std::span<const u16> units(enc.bitstream.units);
    const double rec_gbps = bench::measure_gbps(raw_bytes, runs, [&] {
        dev.launch_recoil_into<TSym>(units, enc.metadata, t, std::span<TSym>(out));
    });

    if (mult >= 0) {
        std::printf("%-10s %10.2f %14.2f %12.2f\n", name.c_str(), mult, conv_gbps,
                    rec_gbps);
    } else {
        std::printf("%-10s %10s %14.2f %12.2f\n", name.c_str(), "N/A", conv_gbps,
                    rec_gbps);
    }
}

}  // namespace

int main() {
    const double scale = workload::bench_scale();
    gpusim::GpuSimDevice dev;
    std::printf("== Figure 7 (GPU sim): decode throughput, scale %.3g ==\n", scale);
    std::printf("device model: %u SMs x %u blocks x 4 warps = %u resident warps\n",
                dev.config().sm_count, dev.config().max_blocks_per_sm,
                dev.config().sm_count * dev.config().max_blocks_per_sm * 4);
    std::printf("(paper: RTX 2080 Ti; Recoil ~= Conventional at 90+ GB/s peak;\n"
                " multians far behind, collapsing at n=16)\n");

    for (u32 n : {11u, 16u}) {
        std::printf("\n-- GPU panel, n=%u --\n", n);
        std::printf("%-10s %10s %14s %12s   (GB/s)\n", "dataset", "multians",
                    "Conventional", "Recoil");
        for (const auto& spec : workload::paper_byte_datasets(scale)) {
            auto data = spec.generate(spec.size);
            auto model = bench::model_for_bytes(data, n);
            run_dataset<u8>(spec.name, std::span<const u8>(data), model, n, dev,
                            std::span<const u8>(data));
        }
        if (n == 16) {
            for (const auto& ds : workload::paper_latent_datasets(scale)) {
                auto models = ds.build_models(n);
                run_dataset<u16>(ds.name, std::span<const u16>(ds.symbols), models,
                                 n, dev, {});
            }
        }
    }
    return 0;
}
