// Figure 7 (CPU panels): decoding throughput of Single-Thread, Conventional
// and Recoil on the AVX512 and AVX2 implementations, n=11 and n=16.
// Single-Thread decodes variation (a); Conventional decodes (d) (Small, 16
// partitions); Recoil decodes (e) (Small, combined from the Large
// metadata) — exactly the bitstreams a 16-way-parallel CPU client would
// receive. Paper hardware: Xeon W-3245 (16C); this host's core count is
// reported below.

#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "conventional/conventional.hpp"
#include "core/recoil_decoder.hpp"
#include "core/recoil_encoder.hpp"
#include "rans/indexed_model.hpp"
#include "simd/dispatch.hpp"

using namespace recoil;

namespace {

struct Row {
    std::string name;
    u64 raw_bytes;
    double single, conv, recoil;
};

template <typename TSym, typename Model>
Row run_dataset(const std::string& name, std::span<const TSym> syms,
                const Model& model, simd::Backend backend, ThreadPool& pool) {
    const int n = bench::runs();
    Row row{name, syms.size() * sizeof(TSym), 0, 0, 0};
    simd::SimdRangeFn<TSym> range{backend};
    const DecodeTables t = model.tables();
    std::vector<TSym> out(syms.size());  // decode work only, as in the paper

    auto enc = recoil_encode<Rans32, 32>(syms, model, bench::kLargeSplits);
    auto small_meta = combine_splits(enc.metadata, bench::kSmallSplits);
    std::span<const u16> units(enc.bitstream.units);

    // Single-Thread: variation (a) = the same bitstream, no split metadata.
    RecoilMetadata serial_meta = small_meta;
    serial_meta.splits.clear();
    row.single = bench::measure_gbps(row.raw_bytes, n, [&] {
        recoil_decode_into<Rans32, 32, TSym>(units, serial_meta, t,
                                             std::span<TSym>(out), nullptr, nullptr,
                                             range);
    });

    auto conv = conventional_encode<Rans32, 32>(syms, model, bench::kSmallSplits);
    row.conv = bench::measure_gbps(row.raw_bytes, n, [&] {
        conventional_decode_into<Rans32, 32, TSym>(conv, t, std::span<TSym>(out),
                                                   &pool, range);
    });

    row.recoil = bench::measure_gbps(row.raw_bytes, n, [&] {
        recoil_decode_into<Rans32, 32, TSym>(units, small_meta, t,
                                             std::span<TSym>(out), &pool, nullptr,
                                             range);
    });
    return row;
}

void print_row(const Row& r) {
    std::printf("%-10s %10.2f %14.2f %12.2f\n", r.name.c_str(), r.single, r.conv,
                r.recoil);
}

void run_panel(simd::Backend backend, u32 n, double scale, ThreadPool& pool) {
    backend = simd::clamp_backend(backend);
    std::printf("\n-- %s panel, n=%u --\n", simd::backend_name(backend), n);
    std::printf("%-10s %10s %14s %12s   (GB/s)\n", "dataset", "Single",
                "Conventional", "Recoil");
    for (const auto& spec : workload::paper_byte_datasets(scale)) {
        auto data = spec.generate(spec.size);
        auto model = bench::model_for_bytes(data, n);
        print_row(run_dataset<u8>(spec.name, std::span<const u8>(data), model,
                                  backend, pool));
    }
    if (n == 16) {
        for (const auto& ds : workload::paper_latent_datasets(scale)) {
            auto models = ds.build_models(n);
            print_row(run_dataset<u16>(ds.name, std::span<const u16>(ds.symbols),
                                       models, backend, pool));
        }
    }
}

}  // namespace

int main() {
    const double scale = workload::bench_scale();
    const unsigned cores = std::thread::hardware_concurrency();
    const unsigned threads = cores > 16 ? 16 : cores;  // paper: 16C machine
    ThreadPool pool(threads);
    std::printf("== Figure 7 (CPU): decode throughput, %u threads, scale %.3g ==\n",
                threads, scale);
    std::printf("(paper: Xeon W-3245 16C; AVX512 ~8-11 GB/s, AVX2 ~5-8 GB/s,\n"
                " Single-Thread ~0.6-0.9 GB/s; Recoil ~= Conventional everywhere)\n");
    for (u32 n : {11u, 16u}) run_panel(simd::Backend::Avx512, n, scale, pool);
    for (u32 n : {11u, 16u}) run_panel(simd::Backend::Avx2, n, scale, pool);
    return 0;
}
