// Table 5: compressed-size deltas of variations (b)-(f) against baseline
// (a), probability quantization n=11, on the nine byte datasets.

#include <cstdio>

#include "bench_sizes.hpp"
#include "rans/symbol_stats.hpp"
#include "tans/tans_codec.hpp"

using namespace recoil;

int main() {
    const double scale = workload::bench_scale();
    const u32 n = 11;
    std::printf("== Table 5: size deltas vs baseline (a), n=%u ==\n", n);
    std::printf("(scale %.3g; Large=%u, Small=%u; deltas KB and %%)\n\n", scale,
                bench::kLargeSplits, bench::kSmallSplits);
    bench::print_size_header();

    for (const auto& spec : workload::paper_byte_datasets(scale)) {
        auto data = spec.generate(spec.size);
        auto model = bench::model_for_bytes(data, n);
        auto row = bench::compute_size_row<u8>(
            std::span<const u8>(data), model, [&] {
                auto pdf = quantize_pdf(histogram(data), n);
                TansTable table(pdf, n);
                auto enc = tans_encode<u8>(std::span<const u8>(data), table);
                return static_cast<double>(enc.byte_size()) + bench::kFileHeader + 8;
            });
        bench::print_size_row(spec.name, row);
    }
    std::printf("\npaper reference (10 MB): conv Large ~+211 KB, recoil Large ~+165 KB,\n"
                "conv Small ~+1.45 KB, recoil Small ~+1.12 KB; recoil < conventional on "
                "every dataset\n");
    return 0;
}
