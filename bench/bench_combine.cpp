// The §3.3 real-time serving claim: combining splits is a metadata-only
// O(M) operation. Measures combine + re-serialize latency versus target
// parallelism, against the cost of re-encoding (what Conventional must do).

#include <cstdio>

#include "bench_util.hpp"
#include "conventional/conventional.hpp"
#include "core/metadata_codec.hpp"
#include "core/recoil_encoder.hpp"
#include "util/stopwatch.hpp"

using namespace recoil;

int main() {
    const double scale = workload::bench_scale();
    const u64 size = std::max<u64>(4'000'000, static_cast<u64>(10e6 * scale));
    std::printf("== Combine latency: decoder-adaptive serving (Section 3.3) ==\n");
    std::printf("dataset: %.1f MB text, n=11, encoded once at %u splits\n\n",
                size / 1e6, bench::kLargeSplits);
    auto data = workload::gen_text(size, 7);
    auto model = bench::model_for_bytes(data, 11);
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(data), model,
                                         bench::kLargeSplits);

    Stopwatch sw;
    auto conv = conventional_encode<Rans32, 32>(std::span<const u8>(data), model, 16);
    const double reencode_ms = sw.seconds() * 1e3;

    std::printf("%-12s %14s %14s\n", "target M'", "combine+ser", "metadata size");
    for (u32 target : {1024u, 256u, 64u, 16u, 4u, 1u}) {
        // Median-ish of several runs (operation is microseconds).
        double best = 1e9;
        std::size_t meta_size = 0;
        for (int i = 0; i < 20; ++i) {
            Stopwatch s2;
            auto combined = combine_splits(enc.metadata, target);
            auto bytes = serialize_metadata(combined);
            best = std::min(best, s2.seconds() * 1e3);
            meta_size = bytes.size();
        }
        std::printf("%-12u %11.3f ms %11zu B\n", target, best, meta_size);
    }
    std::printf("\nconventional re-encode to 16 partitions (the alternative): %.1f ms\n",
                reencode_ms);
    return 0;
}
