// Ablation: interleave width. Table 3 recommends 32 lanes (AVX-friendly,
// one GPU warp); this sweeps the lane count on the scalar reference decoder
// (the SIMD kernels are specialized to 32) and reports single-thread decode
// throughput plus the per-stream state overhead.

#include <cstdio>

#include "bench_util.hpp"
#include "rans/interleaved.hpp"

using namespace recoil;

namespace {

template <u32 NLanes>
void run(std::span<const u8> data, const StaticModel& model) {
    auto bs = interleaved_encode<Rans32, NLanes>(data, model);
    const DecodeTables t = model.tables();
    const double gbps = bench::measure_gbps(data.size(), bench::runs(), [&] {
        auto out = serial_decode<Rans32, NLanes, u8>(bs, t);
    });
    std::printf("%-8u %10.3f %14lu %16u\n", NLanes, gbps,
                static_cast<unsigned long>(bs.byte_size()), NLanes * 4);
}

}  // namespace

int main() {
    const double scale = workload::bench_scale();
    const u64 size = std::max<u64>(2'000'000, static_cast<u64>(10e6 * scale));
    std::printf("== Ablation: interleaved lane count (scalar decoder) ==\n");
    std::printf("dataset: %.1f MB text, n=11, single thread\n\n", size / 1e6);
    auto data = workload::gen_text(size, 8);
    auto model = bench::model_for_bytes(data, 11);

    std::printf("%-8s %10s %14s %16s\n", "lanes", "GB/s", "payload B",
                "state overhead B");
    run<1>(data, model);
    run<2>(data, model);
    run<4>(data, model);
    run<8>(data, model);
    run<16>(data, model);
    run<32>(data, model);
    run<64>(data, model);
    std::printf("\n(the scalar reference gains only modest ILP from interleaving; the\n"
                " real payoff of 32 lanes is vectorizability — the same stream decodes\n"
                " ~5x faster through the AVX512 kernel (bench_kernels) — plus warp fit,\n"
                " hence Table 3's recommendation)\n");
    return 0;
}
