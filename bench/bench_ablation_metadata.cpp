// Ablation: the §4.3 difference-series metadata encoding versus raw
// fixed-width storage, across split counts. Demonstrates where the
// "~77 bytes/split" figure comes from and what each trick saves.

#include <cstdio>

#include "bench_util.hpp"
#include "core/metadata_codec.hpp"
#include "core/recoil_encoder.hpp"

using namespace recoil;

namespace {

/// Raw encoding strawman: absolute 32-bit offsets and symbol indices, 32-bit
/// states (no Lemma 3.1), per the naive layout Recoil §3.2 argues against.
double raw_bytes_per_split(const RecoilMetadata& meta) {
    if (meta.splits.empty()) return 0;
    const double per =
        4.0 +                 // bitstream offset
        meta.lanes * (4.0 +   // full 32-bit intermediate state
                      4.0);   // absolute symbol index
    return per;
}

}  // namespace

int main() {
    const double scale = workload::bench_scale();
    const u64 size = std::max<u64>(4'000'000, static_cast<u64>(10e6 * scale));
    std::printf("== Ablation: metadata encoding (Section 4.3) ==\n");
    std::printf("dataset: %.1f MB text, n=11\n\n", size / 1e6);
    auto data = workload::gen_text(size, 6);
    auto model = bench::model_for_bytes(data, 11);

    std::printf("%-8s %14s %14s %14s %12s\n", "splits", "serialized", "B/split",
                "raw B/split", "saving");
    for (u32 splits : {16u, 64u, 256u, 1024u, 2176u}) {
        auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(data), model, splits);
        if (enc.metadata.splits.empty()) continue;
        auto bytes = serialize_metadata(enc.metadata);
        const double fixed = 32.0 + 32 * 4;  // header + final states
        const double per =
            (static_cast<double>(bytes.size()) - fixed) / enc.metadata.splits.size();
        const double raw = raw_bytes_per_split(enc.metadata);
        std::printf("%-8u %14zu %14.1f %14.1f %11.1f%%\n", enc.metadata.num_splits(),
                    bytes.size(), per, raw, 100.0 * (1.0 - per / raw));
    }
    std::printf("\n(16-bit states via Lemma 3.1 halve the dominant cost; group-ID\n"
                " differences + expectation coding compress the rest to a few bits)\n");
    std::printf("paper reference: recoil Large metadata ~167 KB / 2175 splits ~ 77 B\n");
    return 0;
}
