#pragma once
// Shared helpers for the table/figure reproduction harness. Every bench
// binary prints the corresponding paper artifact's rows; dataset sizes are
// controlled by RECOIL_FULL=1 (paper scale) / RECOIL_SCALE=<f> (see
// workload::bench_scale), and run counts by RECOIL_RUNS.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "rans/static_model.hpp"
#include "rans/symbol_stats.hpp"
#include "util/stopwatch.hpp"
#include "workload/datasets.hpp"

namespace recoil::bench {

inline int runs() {
    if (const char* r = std::getenv("RECOIL_RUNS")) {
        const int v = std::atoi(r);
        if (v > 0) return v;
    }
    return std::getenv("RECOIL_FULL") ? 10 : 5;
}

/// Average decode throughput in GB/s of `uncompressed_bytes` over `n` runs
/// (paper: average of 10 runs).
template <typename Fn>
double measure_gbps(u64 uncompressed_bytes, int n, Fn&& fn) {
    fn();  // warm-up (first-touch, caches)
    double total = 0;
    for (int i = 0; i < n; ++i) {
        Stopwatch sw;
        fn();
        total += sw.seconds();
    }
    return gbps(static_cast<double>(uncompressed_bytes), total / n);
}

inline StaticModel model_for_bytes(std::span<const u8> data, u32 prob_bits) {
    return StaticModel(histogram(data), prob_bits);
}

inline std::string human_kb(double bytes) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f KB", bytes / 1000.0);
    return buf;
}

inline std::string signed_kb(double bytes) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.2f KB", bytes / 1000.0);
    return buf;
}

inline std::string pct(double part, double base) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.2f%%", 100.0 * part / base);
    return buf;
}

/// Paper parallelism levels: Large = 2176 splits (fully loading the modeled
/// RTX 2080 Ti: 68 SMs x 8 blocks x 4 warps), Small = 16 (a 16-core CPU).
inline constexpr u32 kLargeSplits = 2176;
inline constexpr u32 kSmallSplits = 16;

}  // namespace recoil::bench
