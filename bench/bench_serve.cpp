// Serve-subsystem benchmark: warm- vs cold-cache serve latency for a
// 2176-split asset (the paper's "Large" parallelism), byte-range wire cost,
// single-flight coalescing under a concurrent cold stampede, aggregate
// request throughput for a mixed fleet of client classes driven through the
// async Session API, a cache-policy study (LRU vs SLRU vs TinyLFU-gated)
// under scan-polluted Zipf traffic, and cold-boot-from-disk time for a
// persistent store (mmap + zero-copy parse vs re-encoding the master).
// Every repeated-measurement section reports p50/p99/p999 (log2-bucket
// histograms from the obs layer), a telemetry-overhead section pins the
// registry's warm-hit cost at <= 2%, a range-decode sweep pins the guarded
// SIMD kernels at >= 1.5x over the scalar path on vector-capable hosts, a
// stream-concurrency section pins 1k live streams at < 2x
// hardware_concurrency added threads (producers are executor tasks, not
// threads), and the server's full metrics snapshot is embedded in the JSON
// report. `--net` adds a loopback section: the same
// server behind the epoll daemon (src/net), with concurrent client
// connections measuring socket round-trip p50/p99/p999 against the
// in-process baseline, plus v2 streamed bulk throughput over real sockets.
// `--quick` shrinks the workload for CI smoke runs; `--json OUT.json` emits
// the numbers machine-readably so the perf trajectory is tracked across PRs.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "core/recoil_encoder.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "obs/metrics.hpp"
#include "rans/indexed_model.hpp"
#include "rans/static_model.hpp"
#include "serve/range_wire.hpp"
#include "serve/session.hpp"
#include "serve/shard_router.hpp"
#include "serve/store.hpp"
#include "util/executor.hpp"
#include "util/xoshiro.hpp"
#include "workload/traffic.hpp"

using namespace recoil;
using namespace recoil::serve;

namespace {

struct ClientClass {
    const char* name;
    u32 parallelism;
    u32 weight;  ///< share of fleet traffic
};

/// Accumulates the machine-readable report for --json. Values are appended
/// as they are measured; the file is written once at the end.
struct JsonReport {
    std::string body;
    bool first = true;

    void field(const char* key, const std::string& value) {
        body += first ? "\n  " : ",\n  ";
        first = false;
        body += '"';
        body += key;
        body += "\": ";
        body += value;
    }
    static std::string num(double v) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        return buf;
    }
    static std::string num(u64 v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(v));
        return buf;
    }
    bool write(const char* path) const {
        std::FILE* f = std::fopen(path, "w");
        if (f == nullptr) return false;
        std::fprintf(f, "{%s\n}\n", body.c_str());
        std::fclose(f);
        return true;
    }
};

constexpr ClientClass kFleet[] = {
    {"phone (2 cores)", 2, 40},
    {"laptop (8 cores)", 8, 30},
    {"workstation (16 cores)", 16, 20},
    {"GPU box (2176 warps)", bench::kLargeSplits, 10},
};

/// Point-in-time copy of a live histogram (the bench-local analogue of what
/// MetricsRegistry::snapshot does for registered ones).
obs::HistogramSnapshot hist_snap(const obs::Histogram& h) {
    obs::HistogramSnapshot s;
    s.count = h.count();
    s.sum_ns = h.sum_ns();
    for (int i = 0; i < obs::Histogram::kBuckets; ++i) s.buckets[i] = h.bucket(i);
    return s;
}

/// Named server histogram as a snapshot; empty when absent (telemetry off).
obs::HistogramSnapshot server_hist(ContentServer& server, const char* name) {
    const auto snap = server.metrics().snapshot();
    const auto* h = snap.find_histogram(name);
    return h != nullptr ? *h : obs::HistogramSnapshot{};
}

/// after - before: isolates one bench section's samples out of a cumulative
/// server histogram, so each section reports its own percentiles.
obs::HistogramSnapshot hist_delta(const obs::HistogramSnapshot& before,
                                  const obs::HistogramSnapshot& after) {
    obs::HistogramSnapshot d;
    d.name = after.name;
    d.count = after.count - before.count;
    d.sum_ns = after.sum_ns - before.sum_ns;
    for (int i = 0; i < obs::Histogram::kBuckets; ++i)
        d.buckets[i] = after.buckets[i] - before.buckets[i];
    return d;
}

std::string pct_json(const obs::HistogramSnapshot& s) {
    return "{\"count\": " + JsonReport::num(s.count) +
           ", \"mean_us\": " + JsonReport::num(s.mean_seconds() * 1e6) +
           ", \"p50_us\": " + JsonReport::num(s.p50() * 1e6) +
           ", \"p99_us\": " + JsonReport::num(s.p99() * 1e6) +
           ", \"p999_us\": " + JsonReport::num(s.p999() * 1e6) + "}";
}

struct LatencySummary {
    double mean_s = 0;
    obs::HistogramSnapshot hist;
};

/// Live thread count from /proc/self/status ("Threads:"); 0 when the proc
/// filesystem is unavailable (the scaling gate then reports, not enforces).
unsigned process_threads() {
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return 0;
    char line[256];
    unsigned count = 0;
    while (std::fgets(line, sizeof line, f) != nullptr)
        if (std::sscanf(line, "Threads: %u", &count) == 1) break;
    std::fclose(f);
    return count;
}

/// Defeats dead-code elimination of the timed decode loops.
volatile u64 g_decode_sink = 0;

LatencySummary measure_serve(ContentServer& server, const ServeRequest& req,
                             int n, bool cold) {
    obs::Histogram h;
    if (!cold) server.serve(req);  // prime
    double total = 0;
    for (int i = 0; i < n; ++i) {
        if (cold) server.cache().clear();
        Stopwatch sw;
        auto res = server.serve(req);
        const double s = sw.seconds();
        total += s;
        h.observe(s);
        if (!res.ok()) {
            std::fprintf(stderr, "serve failed: %s\n", res.detail.c_str());
            std::exit(1);
        }
    }
    return {total / n, hist_snap(h)};
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool with_net = false;
    const char* json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        if (std::strcmp(argv[i], "--net") == 0) with_net = true;
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json requires an output path\n");
                return 2;
            }
            json_path = argv[++i];
        }
    }
    JsonReport report;
    const double scale = quick ? 0.02 : workload::bench_scale();
    const u64 size = static_cast<u64>(10'000'000 * scale);
    const int n = quick ? 2 : bench::runs();
    std::printf("bench_serve: %llu-byte asset, %u splits, %d runs%s\n\n",
                static_cast<unsigned long long>(size), bench::kLargeSplits, n,
                quick ? " (--quick)" : "");
    report.field("workload",
                 "{\"asset_bytes\": " + JsonReport::num(size) +
                     ", \"splits\": " + JsonReport::num(u64{bench::kLargeSplits}) +
                     ", \"runs\": " + JsonReport::num(u64(n)) +
                     ", \"quick\": " + (quick ? "true" : "false") + "}");

    auto data = workload::gen_text(size, 2024);
    ContentServer server;
    Stopwatch enc_sw;
    auto asset = server.store().encode_bytes("asset", data, bench::kLargeSplits);
    const double encode_s = enc_sw.seconds();
    std::printf("encoded once in %.2f s: master %llu B, %u split points\n\n",
                encode_s,
                static_cast<unsigned long long>(asset->master_bytes()),
                asset->file()->metadata.num_splits() - 1);

    // --- warm vs cold serve latency per client class ---
    std::printf("%-24s %10s %10s %9s %9s %9s %9s %7s\n", "client", "wire B",
                "cold ms", "warm us", "p50 us", "p99 us", "p999 us", "ratio");
    double worst_ratio = 1e30;
    std::string classes_json = "[";
    for (const ClientClass& c : kFleet) {
        const ServeRequest req{"asset", c.parallelism, std::nullopt};
        const auto cold = measure_serve(server, req, n, true);
        const auto warm = measure_serve(server, req, n * 10, false);
        const double ratio =
            warm.mean_s > 0 ? cold.mean_s / warm.mean_s : 1e9;
        worst_ratio = std::min(worst_ratio, ratio);
        auto res = server.serve(req);
        std::printf("%-24s %10llu %10.3f %9.2f %9.2f %9.2f %9.2f %6.0fx\n",
                    c.name,
                    static_cast<unsigned long long>(res.stats.wire_bytes),
                    cold.mean_s * 1e3, warm.mean_s * 1e6,
                    warm.hist.p50() * 1e6, warm.hist.p99() * 1e6,
                    warm.hist.p999() * 1e6, ratio);
        if (classes_json.size() > 1) classes_json += ", ";
        classes_json += "{\"parallelism\": " + JsonReport::num(u64{c.parallelism}) +
                        ", \"wire_bytes\": " + JsonReport::num(res.stats.wire_bytes) +
                        ", \"cold_ms\": " + JsonReport::num(cold.mean_s * 1e3) +
                        ", \"warm_us\": " + JsonReport::num(warm.mean_s * 1e6) +
                        ", \"warm_latency\": " + pct_json(warm.hist) +
                        ", \"cold_latency\": " + pct_json(cold.hist) +
                        ", \"warm_cold_ratio\": " + JsonReport::num(ratio) + "}";
    }
    classes_json += "]";
    report.field("classes", classes_json);
    report.field("warm_cold_worst_ratio", JsonReport::num(worst_ratio));
    std::printf("\nwarm-cache serving is >= %.0fx faster than cold "
                "(acceptance: >= 10x)\n\n", worst_ratio);

    // --- byte-range serving: wire cost proportional to the slice ---
    const u64 span = std::min<u64>(size / 2, 16384);
    const ServeRequest range_req{"asset", 1, {{size / 2, size / 2 + span}}};
    auto range_res = server.serve(range_req);
    auto full_res = server.serve(ServeRequest{"asset", 2, std::nullopt});
    const auto range_warm = measure_serve(server, range_req, n * 10, false);
    std::printf("range [%llu, +%llu): wire %llu B vs full wire %llu B "
                "(%u covering splits); warm p50/p99/p999 %.2f/%.2f/%.2f us\n\n",
                static_cast<unsigned long long>(size / 2),
                static_cast<unsigned long long>(span),
                static_cast<unsigned long long>(range_res.stats.wire_bytes),
                static_cast<unsigned long long>(full_res.stats.wire_bytes),
                range_res.stats.splits_served,
                range_warm.hist.p50() * 1e6, range_warm.hist.p99() * 1e6,
                range_warm.hist.p999() * 1e6);
    report.field("range",
                 "{\"wire_bytes\": " + JsonReport::num(range_res.stats.wire_bytes) +
                     ", \"full_wire_bytes\": " +
                     JsonReport::num(full_res.stats.wire_bytes) +
                     ", \"warm_latency\": " + pct_json(range_warm.hist) + "}");

    // --- range decode: guarded SIMD kernels vs the pinned scalar path.
    // decode_range_wire takes an explicit backend so both sides of the
    // comparison run the same slice of the same wire; the static asset
    // exercises the unguarded whole-stream kernel, the indexed asset the
    // guarded-tail kernel (vector body + scalar epilogue near the shipped
    // id-slice edges). Rounds interleave the backends so frequency drift
    // cancels; each decode is verified bit-exact against scalar before it
    // is timed. Acceptance on SIMD-capable hosts: best speedup >= 1.5x.
    double simd_best_speedup = 0;
    const simd::Backend best_backend = simd::pick_backend();
    {
        const u64 isize = std::clamp<u64>(size / 4, 50'000, 1'000'000);
        {
            std::vector<u8> ids(isize);
            for (std::size_t i = 0; i < ids.size(); ++i)
                ids[i] = static_cast<u8>(i % 2);
            std::vector<u64> c0(256, 1), c1(256, 1);
            std::span<const u8> syms(data.data(), isize);
            for (std::size_t i = 0; i < syms.size(); ++i)
                (ids[i] == 0 ? c0 : c1)[syms[i]]++;
            std::vector<StaticModel> models{StaticModel(c0, 11),
                                            StaticModel(c1, 11)};
            format::RecoilFile f;
            f.sym_width = 1;
            f.prob_bits = 11;
            format::RecoilFile::IndexedPayload p;
            for (const StaticModel& m : models) {
                std::vector<u32> freq(m.alphabet());
                for (u32 s = 0; s < m.alphabet(); ++s) freq[s] = m.freq(s);
                p.freqs.push_back(std::move(freq));
            }
            p.ids = ids;
            IndexedModelSet set(std::move(models), ids);
            auto ienc = recoil_encode<Rans32, 32>(syms, set, 64);
            f.metadata = std::move(ienc.metadata);
            f.units = std::move(ienc.bitstream.units);
            f.model = std::move(p);
            server.store().add_file("indexed_sweep", f);
        }

        std::printf("range decode SIMD sweep (best backend: %s)\n",
                    simd::backend_name(best_backend));
        std::printf("%-10s %10s %10s %12s %12s %9s\n", "asset", "span",
                    "wire B", "scalar MB/s", "simd MB/s", "speedup");
        std::string sweep_json = "[";
        for (const char* aname : {"asset", "indexed_sweep"}) {
            const u64 alen = std::strcmp(aname, "asset") == 0 ? size : isize;
            for (u64 sweep_span : {u64{4096}, u64{65536}, u64{1} << 20}) {
                sweep_span = std::min(sweep_span, alen / 2);
                const u64 lo = alen / 4;
                auto res = server.serve(
                    ServeRequest{aname, 1, {{lo, lo + sweep_span}}});
                if (!res.ok()) {
                    std::fprintf(stderr, "sweep serve failed: %s\n",
                                 res.detail.c_str());
                    return 1;
                }
                const std::span<const u8> wire(*res.wire);
                const auto ref =
                    decode_range_wire(wire, nullptr, simd::Backend::Scalar);
                if (decode_range_wire(wire, nullptr, best_backend) != ref) {
                    std::fprintf(stderr,
                                 "SIMD range decode mismatch (%s, span %llu)\n",
                                 aname,
                                 static_cast<unsigned long long>(sweep_span));
                    return 1;
                }
                const int reps =
                    quick ? 2
                          : static_cast<int>(std::clamp<u64>(
                                2'000'000 / std::max<u64>(1, sweep_span), 3, 50));
                auto time_one = [&](simd::Backend b) {
                    Stopwatch sw;
                    for (int i = 0; i < reps; ++i) {
                        auto out = decode_range_wire(wire, nullptr, b);
                        g_decode_sink = g_decode_sink + out.size() + out[0];
                    }
                    return sw.seconds() / reps;
                };
                double scalar_s = 1e30, simd_s = 1e30;
                for (int round = 0; round < (quick ? 2 : 5); ++round) {
                    scalar_s =
                        std::min(scalar_s, time_one(simd::Backend::Scalar));
                    simd_s = std::min(simd_s, time_one(best_backend));
                }
                const double speedup = simd_s > 0 ? scalar_s / simd_s : 0;
                simd_best_speedup = std::max(simd_best_speedup, speedup);
                const double mbps_scalar =
                    static_cast<double>(sweep_span) / scalar_s / 1e6;
                const double mbps_simd =
                    static_cast<double>(sweep_span) / simd_s / 1e6;
                std::printf("%-10s %10llu %10llu %12.0f %12.0f %8.2fx\n",
                            aname,
                            static_cast<unsigned long long>(sweep_span),
                            static_cast<unsigned long long>(wire.size()),
                            mbps_scalar, mbps_simd, speedup);
                if (sweep_json.size() > 1) sweep_json += ", ";
                sweep_json +=
                    std::string("{\"asset\": \"") + aname + "\"" +
                    ", \"span\": " + JsonReport::num(sweep_span) +
                    ", \"wire_bytes\": " + JsonReport::num(u64{wire.size()}) +
                    ", \"scalar_mbps\": " + JsonReport::num(mbps_scalar) +
                    ", \"simd_mbps\": " + JsonReport::num(mbps_simd) +
                    ", \"speedup\": " + JsonReport::num(speedup) + "}";
            }
        }
        sweep_json += "]";
        report.field("range_simd_sweep",
                     std::string("{\"backend\": \"") +
                         simd::backend_name(best_backend) + "\"" +
                         ", \"best_speedup\": " +
                         JsonReport::num(simd_best_speedup) +
                         ", \"points\": " + sweep_json + "}");
        std::printf("best SIMD-over-scalar range decode speedup: %.2fx "
                    "(acceptance on SIMD hosts: >= 1.5x)\n\n",
                    simd_best_speedup);
    }

    // --- cold stampede: single-flight coalescing through the Session ---
    const unsigned stampede = 32;
    server.cache().clear();
    const auto before = server.totals();
    const auto stampede_h0 = server_hist(server, "serve_request_seconds");
    {
        Session session(server, {8});
        std::vector<std::shared_future<ServeResult>> futs;
        for (unsigned i = 0; i < stampede; ++i)
            futs.push_back(
                session.submit(ServeRequest{"asset", 16, std::nullopt}));
        Stopwatch sw;
        session.wait_idle();
        const double s = sw.seconds();
        const auto after = server.totals();
        const u64 coalesced = after.coalesced_requests - before.coalesced_requests;
        const u64 cache_hits = after.cache_hits - before.cache_hits;
        std::printf("cold stampede: %u concurrent identical requests in %.2f ms: "
                    "%llu combines, %llu coalesced, %llu cache hits, "
                    "%.1f MB recombination saved\n",
                    stampede, s * 1e3,
                    static_cast<unsigned long long>(stampede - coalesced -
                                                    cache_hits),
                    static_cast<unsigned long long>(coalesced),
                    static_cast<unsigned long long>(cache_hits),
                    static_cast<double>(after.bytes_saved - before.bytes_saved) /
                        1e6);
        const auto lat =
            hist_delta(stampede_h0, server_hist(server, "serve_request_seconds"));
        std::printf("  per-request latency: p50 %.2f us, p99 %.2f us, "
                    "p999 %.2f us (from the server's serve_request_seconds "
                    "histogram)\n\n",
                    lat.p50() * 1e6, lat.p99() * 1e6, lat.p999() * 1e6);
        report.field("stampede",
                     "{\"wall_ms\": " + JsonReport::num(s * 1e3) +
                         ", \"coalesced\": " + JsonReport::num(coalesced) +
                         ", \"cache_hits\": " + JsonReport::num(cache_hits) +
                         ", \"latency\": " + pct_json(lat) + "}");
        for (auto& f : futs)
            if (!f.get().ok()) {
                std::fprintf(stderr, "stampede serve failed\n");
                return 1;
            }
    }

    // --- mixed-fleet aggregate throughput through the async session ---
    std::vector<ServeRequest> mix;
    Xoshiro256 rng(7);
    for (int i = 0; i < 512; ++i) {
        const u32 roll = static_cast<u32>(rng.below(100));
        u32 acc = 0;
        for (const ClientClass& c : kFleet) {
            acc += c.weight;
            if (roll < acc) {
                mix.push_back(ServeRequest{"asset", c.parallelism, std::nullopt});
                break;
            }
        }
        if (i % 10 == 0 && size > 4096) {  // 10% byte-range traffic
            const u64 lo = rng.below(size - 4096);
            mix.back().range = {{lo, lo + 4096}};
        }
    }

    const auto fleet_before = server.totals();
    const auto fleet_h0 = server_hist(server, "serve_request_seconds");
    Session session(server, {static_cast<unsigned>(
                        std::thread::hardware_concurrency())});
    double total_s = 0;
    u64 total_bytes = 0, hits = 0;
    for (int run = 0; run < n; ++run) {
        std::vector<std::shared_future<ServeResult>> futs;
        futs.reserve(mix.size());
        Stopwatch sw;
        for (const auto& r : mix) futs.push_back(session.submit(r));
        session.wait_idle();
        total_s += sw.seconds();
        std::vector<ServeResult> results;
        results.reserve(futs.size());
        for (auto& f : futs) results.push_back(f.get());
        const BatchStats b = summarize(results);
        if (b.failures != 0) {
            std::fprintf(stderr, "batch had %llu failures\n",
                         static_cast<unsigned long long>(b.failures));
            return 1;
        }
        total_bytes += b.wire_bytes;
        hits += b.cache_hits;
    }
    const auto fleet_after = server.totals();
    const double reqs_per_s = n * static_cast<double>(mix.size()) / total_s;
    std::printf("mixed fleet: %zu reqs/round x %d rounds: %.0f req/s, "
                "%.2f GB/s wire, %.1f%% cache hits\n",
                mix.size(), n, reqs_per_s,
                gbps(static_cast<double>(total_bytes), total_s),
                100.0 * static_cast<double>(hits) /
                    (static_cast<double>(n) * static_cast<double>(mix.size())));
    const auto fleet_lat =
        hist_delta(fleet_h0, server_hist(server, "serve_request_seconds"));
    std::printf("  sharing: %llu coalesced requests, %.1f MB served from "
                "shared buffers instead of recombined\n",
                static_cast<unsigned long long>(fleet_after.coalesced_requests -
                                                fleet_before.coalesced_requests),
                static_cast<double>(fleet_after.bytes_saved -
                                    fleet_before.bytes_saved) / 1e6);
    std::printf("  per-request latency: p50 %.2f us, p99 %.2f us, "
                "p999 %.2f us\n\n",
                fleet_lat.p50() * 1e6, fleet_lat.p99() * 1e6,
                fleet_lat.p999() * 1e6);
    report.field(
        "fleet",
        "{\"requests_per_s\": " + JsonReport::num(reqs_per_s) +
            ", \"wire_gbps\": " +
            JsonReport::num(gbps(static_cast<double>(total_bytes), total_s)) +
            ", \"hit_rate\": " +
            JsonReport::num(static_cast<double>(hits) /
                            (static_cast<double>(n) *
                             static_cast<double>(mix.size()))) +
            ", \"latency\": " + pct_json(fleet_lat) + "}");

    // --- cache-policy study: seeded Zipf + one-hit-wonder scan pollution,
    // served serially (deterministic cache state) against every policy.
    // Two thirds of the traffic is Zipf(1.2) over 32 client classes; every
    // 3rd request is a unique byte range no one ever asks for again — the
    // classic trace where plain LRU bleeds: it caches every scan wire and
    // evicts the hot head to do so. SLRU confines scans to probation;
    // TinyLFU admission rejects them outright (one observed access does
    // not pay for a wire-sized entry). Acceptance: slru-tinylfu must beat
    // plain LRU's byte-hit-rate.
    double lru_byte_hit_rate = 0, best_byte_hit_rate = 0;
    {
        const u64 psize = std::max<u64>(size / 10, 50'000);
        auto pdata = workload::gen_text(psize, 4242);
        const int preqs = quick ? 300 : 900;
        // Same generator as test_session's hit-rate regressions
        // (workload::zipf_plan), so test and bench measure one trace model.
        const std::vector<u32> plan =
            workload::zipf_plan(32, static_cast<std::size_t>(preqs), 1.2,
                                2024);
        u64 pwire = 0;
        {
            ContentServer probe;
            probe.store().encode_bytes("p", pdata, 64);
            pwire = probe.serve(ServeRequest{"p", 1, std::nullopt})
                        .stats.wire_bytes;
        }
        const u64 pcapacity = pwire * 8 + pwire / 2;
        const u64 span = psize / 4;

        std::printf("cache-policy study: %d reqs (1/3 unique scans), "
                    "capacity ~8.5 wires\n", preqs);
        std::printf("%-16s %8s %10s %14s %12s %10s %9s\n", "policy", "hits",
                    "hit rate", "byte hit rate", "adm. reject", "evictions",
                    "p99 us");
        std::string policies_json = "[";
        for (const char* pname :
             {"lru", "slru", "lru-tinylfu", "slru-tinylfu"}) {
            ServerOptions popt;
            popt.cache_capacity_bytes = pcapacity;
            popt.cache_policy = *parse_cache_policy(pname);
            ContentServer psrv(popt);
            psrv.store().encode_bytes("p", pdata, 64);
            obs::Histogram plat;
            for (std::size_t i = 0; i < plan.size(); ++i) {
                ServeRequest req{"p", plan[i], std::nullopt};
                if (workload::zipf_scan_slot(i)) {
                    const u64 lo = workload::zipf_scan_lo(i, psize, span);
                    req.parallelism = 1;
                    req.range = {{lo, lo + span}};
                }
                Stopwatch psw;
                auto res = psrv.serve(req);
                plat.observe(psw.seconds());
                if (!res.ok()) {
                    std::fprintf(stderr, "policy serve failed: %s\n",
                                 res.detail.c_str());
                    return 1;
                }
            }
            const auto plat_snap = hist_snap(plat);
            const auto pt = psrv.totals();
            const auto pc = psrv.cache().stats();
            const double hit_rate = static_cast<double>(pt.cache_hits) /
                                    static_cast<double>(preqs);
            const double byte_hit_rate =
                static_cast<double>(pc.hit_bytes) /
                static_cast<double>(pt.wire_bytes);
            if (std::strcmp(pname, "lru") == 0)
                lru_byte_hit_rate = byte_hit_rate;
            if (std::strcmp(pname, "slru-tinylfu") == 0)
                best_byte_hit_rate = byte_hit_rate;
            std::printf("%-16s %8llu %9.1f%% %13.1f%% %12llu %10llu %9.2f\n",
                        pname,
                        static_cast<unsigned long long>(pt.cache_hits),
                        100.0 * hit_rate, 100.0 * byte_hit_rate,
                        static_cast<unsigned long long>(
                            pc.admission_rejected),
                        static_cast<unsigned long long>(pc.evictions),
                        plat_snap.p99() * 1e6);
            if (policies_json.size() > 1) policies_json += ", ";
            policies_json +=
                std::string("{\"name\": \"") + pname + "\"" +
                ", \"hits\": " + JsonReport::num(pt.cache_hits) +
                ", \"hit_rate\": " + JsonReport::num(hit_rate) +
                ", \"byte_hit_rate\": " + JsonReport::num(byte_hit_rate) +
                ", \"admission_rejected\": " +
                JsonReport::num(pc.admission_rejected) +
                ", \"evictions\": " + JsonReport::num(pc.evictions) +
                ", \"latency\": " + pct_json(plat_snap) + "}";
        }
        policies_json += "]";
        report.field("policies", policies_json);
        std::printf("slru-tinylfu vs lru byte-hit-rate: %.1f%% vs %.1f%% "
                    "(acceptance: strictly better)\n\n",
                    100.0 * best_byte_hit_rate, 100.0 * lru_byte_hit_rate);
    }

    // --- streamed vs materialized production: peak bytes held by the
    // producer. The materialized path must hold the whole wire; the
    // streaming pipeline emits borrowed views segment at a time behind a
    // flow-control window, so its owned footprint is O(max frame + largest
    // structural section) regardless of asset size.
    {
        const u64 chunk_bytes = std::max<u64>(size / 40, 4096);
        stream::ChunkedEncoder enc({11, 16});
        for (u64 off = 0; off < data.size(); off += chunk_bytes)
            enc.add_chunk(std::span<const u8>(data).subspan(
                off, std::min<u64>(chunk_bytes, data.size() - off)));
        server.store().add_chunked("bigclip", enc.finish());

        const ServeRequest req{"bigclip", 64, std::nullopt,
                               kAcceptAll | kAcceptStreamed};
        server.cache().clear();
        Stopwatch mat_sw;
        auto materialized = server.serve(req);
        const double mat_s = mat_sw.seconds();
        if (!materialized.ok()) {
            std::fprintf(stderr, "materialized serve failed\n");
            return 1;
        }
        const u64 wire = materialized.stats.wire_bytes;

        StreamOptions sopt;
        // Frame size scaled to the workload so --quick still exercises a
        // many-frame stream with a meaningful wire/frame ratio.
        sopt.max_frame_bytes = std::clamp<u64>(wire / 24, 4096, 64 * 1024);
        sopt.window_bytes = 4 * sopt.max_frame_bytes;
        sopt.use_cache = false;  // no cache assembly: the bounded regime
        const auto frame_h0 = server_hist(server, "stream_frame_seconds");
        Stopwatch stream_sw;
        auto stream = server.serve_stream(req, sopt);
        StreamReassembler client(sopt.max_frame_bytes);
        while (auto frame = stream.next_frame()) client.feed(*frame);
        const double stream_s = stream_sw.seconds();
        auto streamed = client.result();
        const bool exact = streamed.ok() && *streamed.wire == *materialized.wire;
        const u64 peak_owned = stream.peak_owned_bytes();
        const u64 peak_staged = stream.peak_staged_bytes();
        std::printf(
            "streamed vs materialized (chunked asset, %llu B wire):\n"
            "  materialized producer holds %llu B (the wire) in %.2f ms\n"
            "  streamed producer holds %llu B owned / %llu B staged "
            "(window %llu B) in %.2f ms\n"
            "  peak-memory ratio: %.0fx smaller, %llu frames [%s]\n\n",
            static_cast<unsigned long long>(wire),
            static_cast<unsigned long long>(wire), mat_s * 1e3,
            static_cast<unsigned long long>(peak_owned),
            static_cast<unsigned long long>(peak_staged),
            static_cast<unsigned long long>(sopt.window_bytes), stream_s * 1e3,
            static_cast<double>(wire) / static_cast<double>(peak_owned),
            static_cast<unsigned long long>(stream.frames_emitted()),
            exact ? "bit-exact" : "MISMATCH");
        const auto frame_lat =
            hist_delta(frame_h0, server_hist(server, "stream_frame_seconds"));
        std::printf("  per-frame production: p50 %.2f us, p99 %.2f us, "
                    "p999 %.2f us\n\n",
                    frame_lat.p50() * 1e6, frame_lat.p99() * 1e6,
                    frame_lat.p999() * 1e6);
        if (!exact) return 1;
        if (peak_owned >= wire / 2) {
            std::fprintf(stderr,
                         "streamed producer held O(wire) bytes — bounded-"
                         "memory acceptance failed\n");
            return 1;
        }
        report.field(
            "streamed",
            "{\"wire_bytes\": " + JsonReport::num(wire) +
                ", \"peak_owned_bytes\": " + JsonReport::num(peak_owned) +
                ", \"peak_staged_bytes\": " + JsonReport::num(peak_staged) +
                ", \"window_bytes\": " + JsonReport::num(sopt.window_bytes) +
                ", \"materialized_ms\": " + JsonReport::num(mat_s * 1e3) +
                ", \"streamed_ms\": " + JsonReport::num(stream_s * 1e3) +
                ", \"frame_latency\": " + pct_json(frame_lat) + "}");
    }

    // --- stream-concurrency scaling: producers are resumable tasks on the
    // work-stealing executor (docs/executor.md), so a live stream costs a
    // state machine, not an OS thread. Open 1k concurrent solo streams
    // (use_cache=false: no coalescing, every stream its own producer), pull
    // each one's header + first body frame so every producer has started
    // and yielded on its full window, and hold the process thread count
    // against the executor's worker pool. Acceptance: the whole fleet adds
    // fewer than 2x hardware_concurrency threads over the warmed baseline.
    {
        const u64 tiny_n = 16384;
        auto tiny = workload::gen_text(tiny_n, 99);
        server.store().encode_bytes("tiny", tiny, 16);
        StreamOptions sopt;
        sopt.max_frame_bytes = 512;
        sopt.window_bytes = 1024;
        sopt.use_cache = false;  // solo producers: no flight to coalesce on
        const ServeRequest sreq{"tiny", 4, std::nullopt,
                                kAcceptAll | kAcceptStreamed};
        auto sref = server.serve(ServeRequest{"tiny", 4, std::nullopt});

        // Warm-up drain: spins up the executor workers so the baseline
        // thread count already includes them, and pins the reference wire.
        {
            auto warm = server.serve_stream(sreq, sopt);
            StreamReassembler re(sopt.max_frame_bytes);
            while (auto fr = warm.next_frame()) re.feed(*fr);
            auto got = re.result();
            if (!got.ok() || *got.wire != *sref.wire) {
                std::fprintf(stderr, "scaling warm-up stream mismatch\n");
                return 1;
            }
        }

        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        const unsigned threads_before = process_threads();
        const int nstreams = quick ? 100 : 1000;
        const auto ex0 = util::global_executor().stats();
        std::vector<ServeStream> streams;
        streams.reserve(static_cast<std::size_t>(nstreams));
        unsigned threads_peak = threads_before;
        Stopwatch open_sw;
        for (int i = 0; i < nstreams; ++i) {
            streams.push_back(server.serve_stream(sreq, sopt));
            ServeStream& s = streams.back();
            if (!s.next_frame() || !s.next_frame()) {
                std::fprintf(stderr, "scaling stream %d stalled\n", i);
                return 1;
            }
            if (i % 64 == 0)
                threads_peak = std::max(threads_peak, process_threads());
        }
        threads_peak = std::max(threads_peak, process_threads());
        const double open_s = open_sw.seconds();

        // With the fleet still live and yielded, drain fresh streams to
        // completion — the executor must still schedule new producers
        // through 1k parked state machines — and check them bit-exact.
        const int ndrain = 16;
        Stopwatch drain_sw;
        for (int i = 0; i < ndrain; ++i) {
            auto s = server.serve_stream(sreq, sopt);
            StreamReassembler re(sopt.max_frame_bytes);
            while (auto fr = s.next_frame()) re.feed(*fr);
            auto got = re.result();
            if (!got.ok() || *got.wire != *sref.wire) {
                std::fprintf(stderr, "scaling drain stream mismatch\n");
                return 1;
            }
        }
        const double drain_s = drain_sw.seconds();

        Stopwatch abandon_sw;
        streams.clear();  // mass abandon: producers cancel asynchronously
        const double abandon_s = abandon_sw.seconds();
        const auto ex1 = util::global_executor().stats();

        std::printf(
            "stream scaling: %d live streams opened+first-frame in %.1f ms "
            "(%.0f streams/s), mass abandon %.1f ms\n"
            "  threads: %u before -> %u peak (hw=%u, executor workers=%u); "
            "tasks executed %llu, stolen %llu\n"
            "  %d full drains through the live fleet in %.1f ms, bit-exact\n",
            nstreams, open_s * 1e3, nstreams / std::max(open_s, 1e-9),
            abandon_s * 1e3, threads_before, threads_peak, hw,
            ex1.workers,
            static_cast<unsigned long long>(ex1.executed_total -
                                            ex0.executed_total),
            static_cast<unsigned long long>(ex1.stolen_total -
                                            ex0.stolen_total),
            ndrain, drain_s * 1e3);
        const bool threads_ok =
            threads_before == 0 || threads_peak < threads_before + 2 * hw;
        std::printf("  thread growth under %d streams: +%u (acceptance: "
                    "< 2x hardware_concurrency = %u) [%s]\n\n",
                    nstreams, threads_peak - threads_before, 2 * hw,
                    threads_ok ? "ok" : "FAIL");
        report.field(
            "stream_scaling",
            "{\"streams\": " + JsonReport::num(u64(nstreams)) +
                ", \"threads_before\": " + JsonReport::num(u64{threads_before}) +
                ", \"threads_peak\": " + JsonReport::num(u64{threads_peak}) +
                ", \"hardware_concurrency\": " + JsonReport::num(u64{hw}) +
                ", \"executor_workers\": " + JsonReport::num(u64{ex1.workers}) +
                ", \"open_ms\": " + JsonReport::num(open_s * 1e3) +
                ", \"drain_ms\": " + JsonReport::num(drain_s * 1e3) +
                ", \"abandon_ms\": " + JsonReport::num(abandon_s * 1e3) +
                ", \"tasks_executed\": " +
                JsonReport::num(ex1.executed_total - ex0.executed_total) +
                ", \"tasks_stolen\": " +
                JsonReport::num(ex1.stolen_total - ex0.stolen_total) + "}");
        if (!threads_ok) {
            std::fprintf(stderr,
                         "stream fleet grew the thread count by %u (>= 2x "
                         "hardware_concurrency) — executor scaling "
                         "acceptance failed\n",
                         threads_peak - threads_before);
            return 1;
        }
    }

    // --- cold boot from a persistent store: restart cost is mmap, not
    // re-encode. Persist the master once, then stand up a fresh server from
    // the directory and serve the first response.
    {
        namespace fs = std::filesystem;
        const fs::path dir = fs::temp_directory_path() / "recoil_bench_store";
        fs::remove_all(dir);
        Stopwatch persist_sw;
        {
            AssetStore persist;
            persist.attach_backing(std::make_shared<DiskStore>(dir));
            persist.add_file("asset", *asset->file());  // durable write-through
        }
        const double persist_s = persist_sw.seconds();

        const ServeRequest req{"asset", 16, std::nullopt};
        auto reference = server.serve(req);

        // Boot n fresh servers so first-response gets a distribution, not a
        // single sample (open is mmap + manifest parse; cheap to repeat).
        obs::Histogram boot_lat;
        double open_s = 0, first_s = 0;
        bool exact = true;
        for (int i = 0; i < n; ++i) {
            Stopwatch boot_sw;
            ContentServer booted;
            booted.store().attach_backing(std::make_shared<DiskStore>(dir));
            if (i == 0) open_s = boot_sw.seconds();
            // demand-load (mmap + parse) + combine
            auto first = booted.serve(req);
            const double t = boot_sw.seconds();
            if (i == 0) first_s = t;
            boot_lat.observe(t);
            exact = exact && first.ok() && reference.ok() &&
                    *first.wire == *reference.wire;
        }
        const auto boot_snap = hist_snap(boot_lat);
        std::printf(
            "cold boot from disk: store open %.2f ms, first response %.2f ms "
            "(demand-load + combine) vs %.0f ms re-encode; persist %.0f ms; "
            "p50/p99/p999 %.2f/%.2f/%.2f ms over %d boots; restart "
            "response %s\n",
            open_s * 1e3, first_s * 1e3, encode_s * 1e3, persist_s * 1e3,
            boot_snap.p50() * 1e3, boot_snap.p99() * 1e3,
            boot_snap.p999() * 1e3, n, exact ? "bit-exact" : "MISMATCH");
        fs::remove_all(dir);
        if (!exact) return 1;
        report.field("cold_boot",
                     "{\"open_ms\": " + JsonReport::num(open_s * 1e3) +
                         ", \"first_response_ms\": " +
                         JsonReport::num(first_s * 1e3) +
                         ", \"reencode_ms\": " +
                         JsonReport::num(encode_s * 1e3) +
                         ", \"first_response_latency\": " +
                         pct_json(boot_snap) + "}");
    }

    // --- telemetry overhead on the warm-hit path. A warm hit here is a few
    // hundred nanoseconds, so full per-request tracing (a handful of clock
    // reads) is measurable at this scale — that regime is what
    // ServerOptions::sample_every exists for: 1-in-N requests take the
    // timed path, the rest pay one relaxed fetch_add, and counters stay
    // exact. The 2% acceptance gate covers the sampled configuration; the
    // full-fidelity (sample_every=1) cost is reported alongside it as an
    // absolute number, because for network-scale serves (us-ms) that cost
    // is noise. The gate is enforced only on full runs (--quick rounds
    // are too short to resolve it), and carries a 20 ns absolute floor:
    // 2% of a ~350 ns warm hit is below the jitter any real machine shows
    // at this scale, while a regression that matters (the timed path
    // running unsampled) costs hundreds of ns and still fails loudly.
    // Rounds are interleaved across the three configurations — every
    // round times all three back-to-back, best-of-rounds per config — so
    // each best comes from the same machine epoch and frequency/load
    // drift between measurement blocks cancels instead of biasing one
    // side of the comparison. The visiting order rotates per round:
    // within a round the machine state still evolves (turbo decay makes
    // the first loop systematically fastest), so each config takes the
    // best of rounds where it ran first, middle and last.
    double telemetry_overhead = 0;
    double telemetry_delta_ns = 0;
    {
        const ServeRequest req{"asset", 16, std::nullopt};
        const int reps = quick ? 2000 : 20000;
        const u32 kSample = 64;
        auto make_server = [&](bool telemetry, u32 sample_every) {
            ServerOptions topt;
            topt.telemetry = telemetry;
            topt.sample_every = sample_every;
            auto tsrv = std::make_unique<ContentServer>(topt);
            tsrv->store().add_file("asset", *asset->file());
            tsrv->serve(req);  // prime the cache
            return tsrv;
        };
        std::unique_ptr<ContentServer> servers[3] = {
            make_server(false, 1),        // telemetry disabled
            make_server(true, kSample),   // sampled 1-in-64 (the gate)
            make_server(true, 1)};        // full per-request tracing
        double best[3] = {1e30, 1e30, 1e30};
        for (int round = 0; round < 9; ++round)
            for (int slot = 0; slot < 3; ++slot) {
                const int ci = (round + slot) % 3;
                Stopwatch sw;
                for (int i = 0; i < reps; ++i) servers[ci]->serve(req);
                best[ci] = std::min(best[ci], sw.seconds() / reps);
            }
        const double off_ns = best[0] * 1e9;
        const double sampled_ns = best[1] * 1e9;
        const double full_ns = best[2] * 1e9;
        telemetry_overhead = off_ns > 0 ? sampled_ns / off_ns - 1.0 : 0.0;
        telemetry_delta_ns = sampled_ns - off_ns;
        const double full_overhead = off_ns > 0 ? full_ns / off_ns - 1.0 : 0.0;
        std::printf(
            "telemetry overhead (warm hit): disabled %.0f ns; sampled "
            "1/%u %.0f ns = %+.2f%% (acceptance: <= 2%% or 20 ns); full "
            "tracing %.0f ns = %+.1f%% (+%.0f ns absolute)\n\n",
            off_ns, kSample, sampled_ns, 100.0 * telemetry_overhead, full_ns,
            100.0 * full_overhead, full_ns - off_ns);
        report.field(
            "telemetry_overhead",
            "{\"warm_hit_ns_off\": " + JsonReport::num(off_ns) +
                ", \"warm_hit_ns_sampled\": " + JsonReport::num(sampled_ns) +
                ", \"warm_hit_ns_full\": " + JsonReport::num(full_ns) +
                ", \"sample_every\": " + JsonReport::num(u64{kSample}) +
                ", \"overhead_sampled\": " +
                JsonReport::num(telemetry_overhead) +
                ", \"overhead_full\": " + JsonReport::num(full_overhead) +
                "}");
    }

    // --- loopback serving through the epoll daemon (--net): what the wire
    // protocol + transport framing + event loop cost on top of the
    // in-process call. Small warm range requests measure round-trip
    // latency under concurrent connections; v2 streamed full-asset fetches
    // measure bulk socket throughput. Loopback numbers are an upper bound
    // on protocol overhead, not a NIC benchmark.
    if (with_net) {
        net::Daemon daemon(server, {});
        std::thread loop([&] { daemon.run(); });
        const u16 port = daemon.port();

        const u64 net_span = std::min<u64>(size / 2, 4096);
        const ServeRequest small_req{"asset", 1,
                                     {{size / 2, size / 2 + net_span}}};
        const auto inproc =
            measure_serve(server, small_req, quick ? 200 : 2000, false);

        const int net_conns = 16;
        const int net_reqs = quick ? 100 : 500;
        obs::Histogram net_lat;
        std::atomic<u64> net_failures{0};
        Stopwatch net_wall;
        {
            std::vector<std::thread> clients;
            clients.reserve(net_conns);
            for (int t = 0; t < net_conns; ++t) {
                clients.emplace_back([&] {
                    net::ClientOptions copt;
                    copt.port = port;
                    net::Client c(copt);
                    for (int i = 0; i < net_reqs; ++i) {
                        Stopwatch sw;
                        auto res = c.request(small_req);
                        net_lat.observe(sw.seconds());
                        if (!res.ok()) net_failures.fetch_add(1);
                    }
                });
            }
            for (auto& th : clients) th.join();
        }
        const double net_wall_s = net_wall.seconds();
        const double net_rps =
            static_cast<double>(net_conns) * net_reqs / net_wall_s;
        const auto net_snap = hist_snap(net_lat);

        // Bulk: stream the whole asset over v2 framing, several
        // connections at once, and count delivered wire bytes.
        const ServeRequest bulk_req{"asset", 16, std::nullopt};
        const int bulk_conns = 4, bulk_reps = quick ? 1 : 2;
        std::atomic<u64> bulk_bytes{0};
        Stopwatch bulk_sw;
        {
            std::vector<std::thread> clients;
            for (int t = 0; t < bulk_conns; ++t) {
                clients.emplace_back([&] {
                    net::ClientOptions copt;
                    copt.port = port;
                    net::Client c(copt);
                    for (int i = 0; i < bulk_reps; ++i) {
                        auto res = c.request_streamed(bulk_req);
                        if (!res.ok() || !res.wire) {
                            net_failures.fetch_add(1);
                            continue;
                        }
                        bulk_bytes.fetch_add(res.wire->size());
                    }
                });
            }
            for (auto& th : clients) th.join();
        }
        const double bulk_s = bulk_sw.seconds();
        const double bulk_gbps =
            gbps(static_cast<double>(bulk_bytes.load()), bulk_s);

        daemon.begin_drain();
        loop.join();
        if (net_failures.load() != 0) {
            std::fprintf(stderr, "net section had %llu failures\n",
                         static_cast<unsigned long long>(net_failures.load()));
            return 1;
        }
        const auto ds = daemon.stats();
        std::printf(
            "net loopback: %d conns x %d warm range reqs: %.0f req/s; "
            "p50/p99/p999 %.2f/%.2f/%.2f us over socket vs "
            "%.2f/%.2f/%.2f us in-process\n"
            "  streamed bulk: %d conns x %d full fetches, %.2f GB/s over "
            "socket (%llu B wire each); daemon served %llu requests, "
            "peak %llu conns\n\n",
            net_conns, net_reqs, net_rps, net_snap.p50() * 1e6,
            net_snap.p99() * 1e6, net_snap.p999() * 1e6,
            inproc.hist.p50() * 1e6, inproc.hist.p99() * 1e6,
            inproc.hist.p999() * 1e6, bulk_conns, bulk_reps, bulk_gbps,
            static_cast<unsigned long long>(
                bulk_bytes.load() /
                std::max<u64>(1, u64(bulk_conns) * bulk_reps)),
            static_cast<unsigned long long>(ds.requests),
            static_cast<unsigned long long>(ds.peak_connections));
        report.field(
            "net",
            "{\"connections\": " + JsonReport::num(u64(net_conns)) +
                ", \"requests_per_conn\": " + JsonReport::num(u64(net_reqs)) +
                ", \"requests_per_s\": " + JsonReport::num(net_rps) +
                ", \"latency\": " + pct_json(net_snap) +
                ", \"inprocess_latency\": " + pct_json(inproc.hist) +
                ", \"streamed_gbps\": " + JsonReport::num(bulk_gbps) + "}");
    }

    // --- sharded serving scale-out: one seed-deterministic multi-tenant
    // trace (Zipf tenants, a flash crowd, a unique-scan window) replayed
    // closed-loop by a fixed worker fleet against 1/2/4/8 shards. The same
    // request sequence at every shard count isolates what the shard router
    // buys: contended-server mutexes and caches split N ways. Gated below:
    // 4 shards must at least double 1-shard throughput, and the 4-shard
    // p999 must not regress against 1 shard at the identical offered load.
    double shard1_rps = 0, shard4_rps = 0;
    double shard1_p999 = 0, shard4_p999 = 0;
    {
        workload::TrafficOptions topt;
        if (quick) {
            topt.tenants = {{"alpha", 8, 1.1, 2.0}, {"bravo", 8, 0.9, 1.0}};
            topt.requests = 4000;
        } else {
            topt.tenants = {{"alpha", 24, 1.1, 3.0},
                            {"bravo", 24, 0.9, 2.0},
                            {"carol", 16, 1.3, 1.0}};
            topt.requests = 60'000;
        }
        topt.offered_rps = 1e9;  // stamps unused: replay is closed-loop
        topt.phases = {{workload::PhaseSpec::Kind::flash_crowd, 0.40, 0.50,
                        0, 0.6},
                       {workload::PhaseSpec::Kind::unique_scan, 0.70, 0.80,
                        0, 0.5}};
        topt.seed = 42;
        const auto plan = workload::traffic_plan(topt);
        const u64 asset_bytes = quick ? 16'384 : 65'536;
        constexpr u64 kScanSpan = 4096;
        const u32 workers =
            std::max(4u, std::thread::hardware_concurrency() / 2);

        const std::vector<u32> shard_counts =
            quick ? std::vector<u32>{1, 4} : std::vector<u32>{1, 2, 4, 8};
        std::string shard_json = "[";
        bool first_point = true;
        for (const u32 nshards : shard_counts) {
            ShardedOptions sopt2;
            sopt2.shards = nshards;
            ShardedServer router(sopt2);
            for (u32 t = 0; t < topt.tenants.size(); ++t) {
                const auto& ten = topt.tenants[t];
                for (u32 k = 1; k <= ten.keys; ++k) {
                    auto corpus = workload::gen_text(
                        asset_bytes, 7000 + 131 * t + k);
                    router.encode_bytes(
                        workload::traffic_asset_name(ten, k), corpus, 32);
                }
            }
            // Warm pass: every asset served once, so the timed replay
            // measures steady-state routing + cache behaviour.
            for (const auto& ten : topt.tenants)
                for (u32 k = 1; k <= ten.keys; ++k)
                    router.serve(ServeRequest{
                        workload::traffic_asset_name(ten, k), 4, {}});

            obs::Histogram lat;
            std::atomic<std::size_t> cursor{0};
            std::atomic<u64> shard_fails{0};
            Stopwatch wall;
            {
                std::vector<std::thread> fleet;
                fleet.reserve(workers);
                for (u32 w = 0; w < workers; ++w) {
                    fleet.emplace_back([&] {
                        for (;;) {
                            const std::size_t i = cursor.fetch_add(1);
                            if (i >= plan.size()) return;
                            const auto& a = plan[i];
                            const auto& ten = topt.tenants[a.tenant];
                            ServeRequest req{
                                workload::traffic_asset_name(ten, a.key), 4,
                                {}};
                            if (a.scan) {
                                const u64 lo =
                                    (static_cast<u64>(a.index) * 997) %
                                    (asset_bytes - kScanSpan);
                                req.range = {{lo, lo + kScanSpan}};
                            }
                            Stopwatch sw;
                            auto res = router.serve(req);
                            lat.observe(sw.seconds());
                            if (!res.ok()) shard_fails.fetch_add(1);
                        }
                    });
                }
                for (auto& th : fleet) th.join();
            }
            const double wall_s = wall.seconds();
            if (shard_fails.load() != 0) {
                std::fprintf(stderr, "shard scaling (%u shards): %llu "
                             "failed serves\n", nshards,
                             static_cast<unsigned long long>(
                                 shard_fails.load()));
                return 1;
            }
            const double rps = static_cast<double>(plan.size()) / wall_s;
            const auto snap = hist_snap(lat);
            const auto tot = router.totals();
            std::printf(
                "shard scaling: %u shard%s, %u workers, %zu reqs: "
                "%.0f req/s; p50/p99/p999 %.2f/%.2f/%.2f us "
                "(%llu routed, %llu peer fetches)\n",
                nshards, nshards == 1 ? " " : "s", workers, plan.size(),
                rps, snap.p50() * 1e6, snap.p99() * 1e6,
                snap.p999() * 1e6,
                static_cast<unsigned long long>(tot.routed),
                static_cast<unsigned long long>(tot.peer_fetches));
            shard_json += first_point ? "\n    " : ",\n    ";
            first_point = false;
            shard_json += "{\"shards\": " + JsonReport::num(u64{nshards}) +
                          ", \"requests_per_s\": " + JsonReport::num(rps) +
                          ", \"latency\": " + pct_json(snap) + "}";
            if (nshards == 1) {
                shard1_rps = rps;
                shard1_p999 = snap.p999();
            }
            if (nshards == 4) {
                shard4_rps = rps;
                shard4_p999 = snap.p999();
            }
        }
        std::printf("\n");
        report.field(
            "shard_scaling",
            "{\"workers\": " + JsonReport::num(u64{workers}) +
                ", \"requests\": " + JsonReport::num(u64{plan.size()}) +
                ", \"tenants\": " +
                JsonReport::num(u64{topt.tenants.size()}) +
                ", \"points\": " + shard_json + "]}");
    }

    // --- multi-loop daemon: the same warm range workload the --net section
    // measures, but with the daemon running 4 epoll loops (SO_REUSEPORT or
    // hand-off). Informational: loopback accept distribution is kernel
    // policy, so this reports the shape rather than gating on it.
    if (with_net) {
        net::DaemonOptions mdopt;
        mdopt.loops = 4;
        net::Daemon daemon(server, mdopt);
        std::thread loop([&] { daemon.run(); });
        const u16 port = daemon.port();

        const u64 net_span = std::min<u64>(size / 2, 4096);
        const ServeRequest small_req{"asset", 1,
                                     {{size / 2, size / 2 + net_span}}};
        const int ml_conns = 16;
        const int ml_reqs = quick ? 100 : 500;
        obs::Histogram ml_lat;
        std::atomic<u64> ml_failures{0};
        Stopwatch ml_wall;
        {
            std::vector<std::thread> clients;
            clients.reserve(ml_conns);
            for (int t = 0; t < ml_conns; ++t) {
                clients.emplace_back([&] {
                    net::ClientOptions copt;
                    copt.port = port;
                    net::Client c(copt);
                    for (int i = 0; i < ml_reqs; ++i) {
                        Stopwatch sw;
                        auto res = c.request(small_req);
                        ml_lat.observe(sw.seconds());
                        if (!res.ok()) ml_failures.fetch_add(1);
                    }
                });
            }
            for (auto& th : clients) th.join();
        }
        const double ml_wall_s = ml_wall.seconds();
        daemon.begin_drain();
        loop.join();
        if (ml_failures.load() != 0) {
            std::fprintf(stderr, "multi-loop section had %llu failures\n",
                         static_cast<unsigned long long>(ml_failures.load()));
            return 1;
        }
        const double ml_rps =
            static_cast<double>(ml_conns) * ml_reqs / ml_wall_s;
        const auto ml_snap = hist_snap(ml_lat);
        const auto mls = daemon.stats();
        std::printf(
            "daemon multi-loop: %u loops (%s), %d conns x %d warm range "
            "reqs: %.0f req/s; p50/p99/p999 %.2f/%.2f/%.2f us; "
            "%llu wakeups, %llu hand-offs\n\n",
            mls.loops, daemon.reuseport() ? "reuseport" : "hand-off",
            ml_conns, ml_reqs, ml_rps, ml_snap.p50() * 1e6,
            ml_snap.p99() * 1e6, ml_snap.p999() * 1e6,
            static_cast<unsigned long long>(mls.loop_wakeups),
            static_cast<unsigned long long>(mls.loop_handoffs));
        report.field(
            "daemon_multiloop",
            "{\"loops\": " + JsonReport::num(u64{mls.loops}) +
                ", \"reuseport\": " +
                (daemon.reuseport() ? "true" : "false") +
                ", \"connections\": " + JsonReport::num(u64(ml_conns)) +
                ", \"requests_per_s\": " + JsonReport::num(ml_rps) +
                ", \"latency\": " + pct_json(ml_snap) + "}");
    }

    // The full unified snapshot — every subsystem's counters plus the
    // per-phase histograms — rides along in the report, so a perf
    // regression comes with the telemetry needed to explain it.
    report.field("metrics", server.metrics().snapshot().to_json());

    // The report lands BEFORE the acceptance gates: a failing run is
    // exactly the one whose per-policy numbers are needed to debug it.
    if (json_path != nullptr) {
        if (!report.write(json_path)) {
            std::fprintf(stderr, "failed to write %s\n", json_path);
            return 1;
        }
        std::printf("wrote machine-readable report to %s\n", json_path);
    }
    if (best_byte_hit_rate <= lru_byte_hit_rate) {
        std::fprintf(stderr,
                     "slru-tinylfu byte-hit-rate (%.3f) did not beat plain "
                     "LRU (%.3f) — policy acceptance failed\n",
                     best_byte_hit_rate, lru_byte_hit_rate);
        return 1;
    }
    if (!quick && telemetry_overhead > 0.02 && telemetry_delta_ns > 20.0) {
        std::fprintf(stderr,
                     "telemetry overhead %.2f%% (+%.0f ns) exceeded the "
                     "2%%-or-20 ns warm-hit budget\n",
                     100.0 * telemetry_overhead, telemetry_delta_ns);
        return 1;
    }
    // Shard scale-out acceptance: splitting the fleet across 4 servers must
    // at least double 1-shard throughput under the identical trace, and the
    // tail must not pay for it (1.25x slack absorbs scheduler jitter in the
    // p999 estimate). --quick runs are too short to resolve either, and a
    // host without at least 4 cores cannot express parallel speedup at all
    // (the SIMD gate's capable-host precedent) — those runs report the
    // points informationally.
    if (!quick && shard1_rps > 0 &&
        std::thread::hardware_concurrency() >= 4) {
        if (shard4_rps < 2.0 * shard1_rps) {
            std::fprintf(stderr,
                         "4-shard throughput %.0f req/s < 2x 1-shard "
                         "%.0f req/s — shard scaling acceptance failed\n",
                         shard4_rps, shard1_rps);
            return 1;
        }
        if (shard4_p999 > 1.25 * shard1_p999) {
            std::fprintf(stderr,
                         "4-shard p999 %.2f us regressed past 1-shard "
                         "%.2f us at equal offered load — tail acceptance "
                         "failed\n",
                         shard4_p999 * 1e6, shard1_p999 * 1e6);
            return 1;
        }
    }
    // On a host where dispatch picked a vector backend, the guarded range
    // kernels must actually pay for themselves; scalar-only hosts report
    // the sweep informationally. --quick runs are too short to resolve it.
    if (!quick && best_backend != simd::Backend::Scalar &&
        simd_best_speedup < 1.5) {
        std::fprintf(stderr,
                     "SIMD range decode best speedup %.2fx < 1.5x on a %s "
                     "host — vectorized range acceptance failed\n",
                     simd_best_speedup, simd::backend_name(best_backend));
        return 1;
    }
    return worst_ratio >= 10.0 ? 0 : 1;
}
