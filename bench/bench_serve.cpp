// Serve-subsystem benchmark: warm- vs cold-cache serve latency for a
// 2176-split asset (the paper's "Large" parallelism), byte-range wire cost,
// and aggregate request throughput for a mixed fleet of client classes
// batched through the RequestScheduler.

#include <cstdio>

#include "bench_util.hpp"
#include "serve/server.hpp"
#include "util/xoshiro.hpp"

using namespace recoil;
using namespace recoil::serve;

namespace {

struct ClientClass {
    const char* name;
    u32 parallelism;
    u32 weight;  ///< share of fleet traffic
};

constexpr ClientClass kFleet[] = {
    {"phone (2 cores)", 2, 40},
    {"laptop (8 cores)", 8, 30},
    {"workstation (16 cores)", 16, 20},
    {"GPU box (2176 warps)", bench::kLargeSplits, 10},
};

double avg_serve_seconds(ContentServer& server, const ServeRequest& req, int n,
                         bool cold) {
    if (!cold) server.serve(req);  // prime
    double total = 0;
    for (int i = 0; i < n; ++i) {
        if (cold) server.cache().clear();
        Stopwatch sw;
        auto res = server.serve(req);
        total += sw.seconds();
        if (!res.ok) {
            std::fprintf(stderr, "serve failed: %s\n", res.error.c_str());
            std::exit(1);
        }
    }
    return total / n;
}

}  // namespace

int main() {
    const double scale = workload::bench_scale();
    const u64 size = static_cast<u64>(10'000'000 * scale);
    const int n = bench::runs();
    std::printf("bench_serve: %llu-byte asset, %u splits, %d runs\n\n",
                static_cast<unsigned long long>(size), bench::kLargeSplits, n);

    auto data = workload::gen_text(size, 2024);
    ContentServer server;
    Stopwatch enc_sw;
    auto asset = server.store().encode_bytes("asset", data, bench::kLargeSplits);
    std::printf("encoded once in %.2f s: master %llu B, %u split points\n\n",
                enc_sw.seconds(),
                static_cast<unsigned long long>(asset->master_bytes),
                asset->file()->metadata.num_splits() - 1);

    // --- warm vs cold serve latency per client class ---
    std::printf("%-24s %12s %12s %12s %8s\n", "client", "wire B", "cold ms",
                "warm us", "ratio");
    double worst_ratio = 1e30;
    for (const ClientClass& c : kFleet) {
        const ServeRequest req{"asset", c.parallelism, std::nullopt};
        const double cold = avg_serve_seconds(server, req, n, true);
        const double warm = avg_serve_seconds(server, req, n * 10, false);
        const double ratio = warm > 0 ? cold / warm : 1e9;
        worst_ratio = std::min(worst_ratio, ratio);
        auto res = server.serve(req);
        std::printf("%-24s %12llu %12.3f %12.2f %7.0fx\n", c.name,
                    static_cast<unsigned long long>(res.stats.wire_bytes),
                    cold * 1e3, warm * 1e6, ratio);
    }
    std::printf("\nwarm-cache serving is >= %.0fx faster than cold "
                "(acceptance: >= 10x)\n\n", worst_ratio);

    // --- byte-range serving: wire cost proportional to the slice ---
    const u64 span = std::min<u64>(size / 2, 16384);
    auto range_res =
        server.serve(ServeRequest{"asset", 1, {{size / 2, size / 2 + span}}});
    auto full_res = server.serve(ServeRequest{"asset", 2, std::nullopt});
    std::printf("range [%llu, +%llu): wire %llu B vs full wire %llu B "
                "(%u covering splits)\n\n",
                static_cast<unsigned long long>(size / 2),
                static_cast<unsigned long long>(span),
                static_cast<unsigned long long>(range_res.stats.wire_bytes),
                static_cast<unsigned long long>(full_res.stats.wire_bytes),
                range_res.stats.splits_served);

    // --- mixed-fleet aggregate throughput through the scheduler ---
    std::vector<ServeRequest> mix;
    Xoshiro256 rng(7);
    for (int i = 0; i < 512; ++i) {
        const u32 roll = static_cast<u32>(rng.below(100));
        u32 acc = 0;
        for (const ClientClass& c : kFleet) {
            acc += c.weight;
            if (roll < acc) {
                mix.push_back(ServeRequest{"asset", c.parallelism, std::nullopt});
                break;
            }
        }
        if (i % 10 == 0 && size > 4096) {  // 10% byte-range traffic
            const u64 lo = rng.below(size - 4096);
            mix.back().range = {{lo, lo + 4096}};
        }
    }

    RequestScheduler sched(server, &global_pool());
    double total_s = 0;
    u64 total_bytes = 0, hits = 0;
    for (int run = 0; run < n; ++run) {
        for (const auto& r : mix) sched.submit(r);
        Stopwatch sw;
        auto results = sched.flush();
        total_s += sw.seconds();
        const BatchStats b = summarize(results);
        if (b.failures != 0) {
            std::fprintf(stderr, "batch had %llu failures\n",
                         static_cast<unsigned long long>(b.failures));
            return 1;
        }
        total_bytes += b.wire_bytes;
        hits += b.cache_hits;
    }
    const double reqs_per_s = n * static_cast<double>(mix.size()) / total_s;
    std::printf("mixed fleet: %zu reqs/batch x %d batches: %.0f req/s, "
                "%.2f GB/s wire, %.1f%% cache hits\n",
                mix.size(), n, reqs_per_s,
                gbps(static_cast<double>(total_bytes), total_s),
                100.0 * static_cast<double>(hits) /
                    (static_cast<double>(n) * static_cast<double>(mix.size())));

    return worst_ratio >= 10.0 ? 0 : 1;
}
