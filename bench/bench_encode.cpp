// Encoder-side throughput (the paper's §6 admission: "Recoil encoding cannot
// be done in parallel and encoding throughput is limited"). Quantifies the
// trade: Recoil encodes once, serially, with one coder group; Conventional
// can parallelize across partitions but must re-encode per parallelism
// level. Also shows the reciprocal-multiplication encoder's gain.

#include <cstdio>

#include "bench_util.hpp"
#include "conventional/conventional.hpp"
#include "core/recoil_encoder.hpp"
#include "util/stopwatch.hpp"

using namespace recoil;

namespace {

/// Model shim hiding enc_fast: forces the division encode path.
struct DivisionOnly {
    const StaticModel* m;
    u32 prob_bits() const noexcept { return m->prob_bits(); }
    EncSymbol enc_lookup(u64 i, u32 s) const noexcept { return m->enc_lookup(i, s); }
};

template <typename Fn>
double mbps(u64 bytes, Fn&& fn) {
    fn();  // warm-up
    Stopwatch sw;
    fn();
    return static_cast<double>(bytes) / sw.seconds() / 1e6;
}

}  // namespace

int main() {
    const double scale = workload::bench_scale();
    const u64 size = std::max<u64>(4'000'000, static_cast<u64>(10e6 * scale));
    std::printf("== Encoder throughput (Section 6 tradeoff) ==\n");
    std::printf("dataset: %.1f MB text, n=11\n\n", size / 1e6);
    auto data = workload::gen_text(size, 12);
    auto model = bench::model_for_bytes(data, 11);
    DivisionOnly slow{&model};
    ThreadPool pool(16);

    std::printf("%-44s %10s\n", "encoder", "MB/s");
    std::printf("%-44s %10.1f\n", "recoil (serial, division)",
                mbps(size, [&] {
                    auto e = interleaved_encode<Rans32, 32>(std::span<const u8>(data), slow);
                }));
    std::printf("%-44s %10.1f\n", "recoil (serial, reciprocal)",
                mbps(size, [&] {
                    auto e = interleaved_encode<Rans32, 32>(std::span<const u8>(data), model);
                }));
    std::printf("%-44s %10.1f\n", "recoil (serial, reciprocal + split planning)",
                mbps(size, [&] {
                    auto e = recoil_encode<Rans32, 32>(std::span<const u8>(data), model, 2176);
                }));
    std::printf("%-44s %10.1f\n", "conventional 16 partitions (serial)",
                mbps(size, [&] {
                    auto e = conventional_encode<Rans32, 32>(std::span<const u8>(data),
                                                             model, 16);
                }));
    std::printf("%-44s %10.1f\n", "conventional 16 partitions (16 threads)",
                mbps(size, [&] {
                    auto e = conventional_encode<Rans32, 32>(std::span<const u8>(data),
                                                             model, 16, &pool);
                }));
    std::printf("%-44s %10.1f\n", "conventional 2176 partitions (16 threads)",
                mbps(size, [&] {
                    auto e = conventional_encode<Rans32, 32>(std::span<const u8>(data),
                                                             model, 2176, &pool);
                }));
    std::printf("\n(the content-delivery argument: the server encodes once with Recoil\n"
                " and serves every parallelism level; conventional either re-encodes\n"
                " per level — fast, but per-client — or ships the Large overhead to all)\n");
    return 0;
}
