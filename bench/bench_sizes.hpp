#pragma once
// Shared machinery for Tables 5/6: compressed-size accounting of the six
// bitstream variations (§5.2):
//   (a) Single-Thread baseline      (d) Conventional Small (16 partitions)
//   (b) Conventional Large (2176)   (e) Recoil Small = (c) combined to 16
//   (c) Recoil Large (2176 splits)  (f) multians (single tANS bitstream)
// Model tables are identical across (a)-(e) and excluded everywhere; the
// small per-file header (symbol count etc.) is counted identically.

#include "bench_util.hpp"
#include "conventional/conventional.hpp"
#include "core/metadata_codec.hpp"
#include "core/recoil_encoder.hpp"
#include "tans/tans_codec.hpp"

namespace recoil::bench {

struct SizeRow {
    double baseline = 0;      // (a)
    double conv_large = 0;    // (b)
    double recoil_large = 0;  // (c)
    double conv_small = 0;    // (d)
    double recoil_small = 0;  // (e)
    double multians = -1;     // (f), -1 = N/A
};

inline constexpr double kFileHeader = 16;  // symbol count + flags, all variants

/// Compute all variants for one symbol stream. `TansFn` builds (f) or
/// returns a negative value for N/A.
template <typename TSym, typename Model, typename TansFn>
SizeRow compute_size_row(std::span<const TSym> syms, const Model& model,
                         TansFn&& tans_size) {
    SizeRow row;
    // (a), (c), (e): one Recoil encode provides all three (the bitstream is
    // baseline-identical; only metadata differs).
    auto enc = recoil_encode<Rans32, 32>(syms, model, kLargeSplits);
    const double payload = static_cast<double>(enc.bitstream.byte_size());
    row.baseline = payload + 32 * 4 + kFileHeader;
    row.recoil_large =
        payload + static_cast<double>(serialize_metadata(enc.metadata).size()) +
        kFileHeader;
    auto small_meta = combine_splits(enc.metadata, kSmallSplits);
    row.recoil_small =
        payload + static_cast<double>(serialize_metadata(small_meta).size()) +
        kFileHeader;

    // (b), (d): conventional re-encodes per partition count.
    for (u32 parts : {kLargeSplits, kSmallSplits}) {
        auto conv = conventional_encode<Rans32, 32>(syms, model, parts);
        const double total = static_cast<double>(conv.payload_bytes()) +
                             static_cast<double>(conv.overhead_bytes()) + 32 * 4 +
                             kFileHeader;
        (parts == kLargeSplits ? row.conv_large : row.conv_small) = total;
    }

    row.multians = tans_size();
    return row;
}

inline void print_size_header() {
    std::printf("%-10s %13s %13s %13s %13s %13s\n", "dataset", "(b) conv L",
                "(c) recoil L", "(d) conv S", "(e) recoil S", "(f) multians");
}

inline void print_size_row(const std::string& name, const SizeRow& r) {
    auto cell = [&](double v) {
        if (v < 0) return std::string("N/A");
        return bench::signed_kb(v - r.baseline) + " " + bench::pct(v - r.baseline, r.baseline);
    };
    std::printf("%-10s | %s | %s | %s | %s | %s\n", name.c_str(),
                cell(r.conv_large).c_str(), cell(r.recoil_large).c_str(),
                cell(r.conv_small).c_str(), cell(r.recoil_small).c_str(),
                cell(r.multians).c_str());
}

}  // namespace recoil::bench
