// Figure 3: compressed file size versus number of symbol sub-sequences under
// the conventional partitioning approach. Paper setup: first 10 MB of
// enwik9, static distribution quantized to 2^11, 32-way interleaved base
// codec; evaluated at 1, 16 and 2176 sub-sequences (plus a sweep here).

#include <cstdio>

#include "bench_util.hpp"
#include "conventional/conventional.hpp"

using namespace recoil;

int main() {
    const double scale = workload::bench_scale();
    const u64 size = static_cast<u64>(10'000'000 * scale) < 1'000'000
                         ? 1'000'000
                         : static_cast<u64>(10'000'000 * scale);
    std::printf("== Figure 3: conventional file size vs #sub-sequences ==\n");
    std::printf("dataset: first %.1f MB of enwik9 stand-in, n=11, 32-way interleaved\n\n",
                size / 1e6);
    auto data = workload::gen_text(size, 24);
    auto model = bench::model_for_bytes(data, 11);

    std::printf("%-14s %-14s %-12s %s\n", "subsequences", "file size", "delta",
                "delta vs N=1");
    double base = 0;
    for (u32 parts : {1u, 2u, 4u, 16u, 64u, 256u, 1024u, 2176u, 4096u}) {
        auto enc = conventional_encode<Rans32, 32>(std::span<const u8>(data), model, parts);
        const double total =
            static_cast<double>(enc.payload_bytes() + enc.overhead_bytes());
        if (parts == 1) base = total;
        std::printf("%-14u %-14s %-12s %s\n", parts, bench::human_kb(total).c_str(),
                    bench::signed_kb(total - base).c_str(),
                    bench::pct(total - base, base).c_str());
    }
    std::printf("\npaper reference (10 MB): N=16 -> +0.02%%, N=2176 -> +3.20%%\n");
    return 0;
}
