// Table 6: compressed-size deltas of variations (b)-(f) against baseline
// (a), probability quantization n=16, on all twelve datasets (the div2k
// latent stand-ins use the adaptive indexed model; multians is omitted for
// them, as in the paper).

#include <cstdio>

#include "bench_sizes.hpp"
#include "rans/indexed_model.hpp"
#include "rans/symbol_stats.hpp"
#include "tans/tans_codec.hpp"

using namespace recoil;

int main() {
    const double scale = workload::bench_scale();
    const u32 n = 16;
    std::printf("== Table 6: size deltas vs baseline (a), n=%u ==\n", n);
    std::printf("(scale %.3g; Large=%u, Small=%u; deltas KB and %%)\n\n", scale,
                bench::kLargeSplits, bench::kSmallSplits);
    bench::print_size_header();

    for (const auto& spec : workload::paper_byte_datasets(scale)) {
        auto data = spec.generate(spec.size);
        auto model = bench::model_for_bytes(data, n);
        auto row = bench::compute_size_row<u8>(
            std::span<const u8>(data), model, [&] {
                auto pdf = quantize_pdf(histogram(data), n);
                TansTable table(pdf, n);
                auto enc = tans_encode<u8>(std::span<const u8>(data), table);
                return static_cast<double>(enc.byte_size()) + bench::kFileHeader + 8;
            });
        bench::print_size_row(spec.name, row);
    }
    for (const auto& ds : workload::paper_latent_datasets(scale)) {
        auto models = ds.build_models(n);
        auto row = bench::compute_size_row<u16>(
            std::span<const u16>(ds.symbols), models, [] { return -1.0; });
        bench::print_size_row(ds.name, row);
    }
    std::printf("\npaper reference (10 MB): recoil Large outperforms conv Large on every\n"
                "dataset (e.g. rand_500 +21.5%% vs +23.5%%); Small variants negligible\n");
    return 0;
}
