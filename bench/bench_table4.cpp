// Table 4: the evaluation datasets with their uncompressed and baseline
// (variation (a): single-thread 32-way interleaved rANS) compressed sizes at
// n=11 and n=16. Latent datasets are compressed with n=16 only, as in the
// paper (16-bit symbols need the finer quantization).

#include <cstdio>

#include "bench_util.hpp"
#include "rans/indexed_model.hpp"
#include "rans/interleaved.hpp"

using namespace recoil;

int main() {
    const double scale = workload::bench_scale();
    std::printf("== Table 4: datasets and baseline (a) compressed sizes ==\n");
    std::printf("(scale %.3g of paper sizes; 1 KB = 1000 bytes)\n\n", scale);
    std::printf("%-10s %-14s %-16s %-16s\n", "name", "uncompressed", "n=11", "n=16");

    for (const auto& spec : workload::paper_byte_datasets(scale)) {
        auto data = spec.generate(spec.size);
        double sizes[2];
        int i = 0;
        for (u32 n : {11u, 16u}) {
            auto model = bench::model_for_bytes(data, n);
            auto bs = interleaved_encode<Rans32, 32>(std::span<const u8>(data), model);
            // Baseline file = payload + one set of final states + counts.
            sizes[i++] = static_cast<double>(bs.byte_size()) + 32 * 4 + 16;
        }
        std::printf("%-10s %-14s %-16s %-16s\n", spec.name.c_str(),
                    bench::human_kb(static_cast<double>(data.size())).c_str(),
                    bench::human_kb(sizes[0]).c_str(),
                    bench::human_kb(sizes[1]).c_str());
    }

    for (const auto& ds : workload::paper_latent_datasets(scale)) {
        auto models = ds.build_models(16);
        auto bs = interleaved_encode<Rans32, 32>(std::span<const u16>(ds.symbols), models);
        const double uncompressed = static_cast<double>(ds.symbols.size()) * 2;
        const double size = static_cast<double>(bs.byte_size()) + 32 * 4 + 16;
        std::printf("%-10s %-14s %-16s %-16s\n", ds.name.c_str(),
                    bench::human_kb(uncompressed).c_str(), "N/A",
                    bench::human_kb(size).c_str());
    }
    std::printf("\npaper reference (10 MB rand): rand_10 7657 KB, rand_500 886 KB "
                "(n=16); div2k ratios 19-41%%\n");
    return 0;
}
