// Micro-benchmarks (google-benchmark): decode kernel backends, table
// construction, metadata bit I/O. Complements the table/figure harness with
// per-component numbers.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/metadata_codec.hpp"
#include "core/recoil_encoder.hpp"
#include "rans/interleaved.hpp"
#include "simd/dispatch.hpp"
#include "tans/tans_table.hpp"
#include "util/bitio.hpp"

using namespace recoil;

namespace {

struct KernelFixture {
    std::vector<u8> data;
    StaticModel model;
    InterleavedBitstream<Rans32, 32> bs;

    explicit KernelFixture(u32 prob_bits)
        : data(workload::gen_text(4 << 20, 9)),
          model(histogram(data), prob_bits),
          bs(interleaved_encode<Rans32, 32>(std::span<const u8>(data), model)) {}
};

KernelFixture& fixture11() {
    static KernelFixture f(11);
    return f;
}
KernelFixture& fixture16() {
    static KernelFixture f(16);
    return f;
}

void decode_with(benchmark::State& state, KernelFixture& f, simd::Backend b) {
    simd::SimdRangeFn<u8> range{simd::clamp_backend(b)};
    std::vector<u8> out(f.data.size());
    const DecodeTables t = f.model.tables();
    for (auto _ : state) {
        LaneCursor<Rans32, 32> cur;
        cur.x = f.bs.final_states;
        cur.p = static_cast<i64>(f.bs.units.size()) - 1;
        range(cur, std::span<const u16>(f.bs.units), f.data.size() - 1, 0, t,
              out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations() * f.data.size()));
}

void BM_DecodeScalar_n11(benchmark::State& s) {
    decode_with(s, fixture11(), simd::Backend::Scalar);
}
void BM_DecodeAvx2_n11(benchmark::State& s) {
    decode_with(s, fixture11(), simd::Backend::Avx2);
}
void BM_DecodeAvx512_n11(benchmark::State& s) {
    decode_with(s, fixture11(), simd::Backend::Avx512);
}
void BM_DecodeScalar_n16(benchmark::State& s) {
    decode_with(s, fixture16(), simd::Backend::Scalar);
}
void BM_DecodeAvx2_n16(benchmark::State& s) {
    decode_with(s, fixture16(), simd::Backend::Avx2);
}
void BM_DecodeAvx512_n16(benchmark::State& s) {
    decode_with(s, fixture16(), simd::Backend::Avx512);
}
BENCHMARK(BM_DecodeScalar_n11);
BENCHMARK(BM_DecodeAvx2_n11);
BENCHMARK(BM_DecodeAvx512_n11);
BENCHMARK(BM_DecodeScalar_n16);
BENCHMARK(BM_DecodeAvx2_n16);
BENCHMARK(BM_DecodeAvx512_n16);

void BM_InterleavedEncode(benchmark::State& state) {
    auto& f = fixture11();
    for (auto _ : state) {
        auto bs = interleaved_encode<Rans32, 32>(std::span<const u8>(f.data), f.model);
        benchmark::DoNotOptimize(bs.units.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations() * f.data.size()));
}
BENCHMARK(BM_InterleavedEncode);

void BM_SplitPlanning(benchmark::State& state) {
    auto& f = fixture11();
    RenormEventList events;
    auto bs = interleaved_encode<Rans32, 32>(std::span<const u8>(f.data), f.model,
                                             &events);
    for (auto _ : state) {
        auto splits = plan_splits(events, bs.num_symbols,
                                  static_cast<u32>(state.range(0)), 32);
        benchmark::DoNotOptimize(splits.data());
    }
}
BENCHMARK(BM_SplitPlanning)->Arg(16)->Arg(256)->Arg(2176);

void BM_MetadataSerialize(benchmark::State& state) {
    auto& f = fixture11();
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(f.data), f.model, 2176);
    for (auto _ : state) {
        auto bytes = serialize_metadata(enc.metadata);
        benchmark::DoNotOptimize(bytes.data());
    }
}
BENCHMARK(BM_MetadataSerialize);

void BM_CombineSplits(benchmark::State& state) {
    auto& f = fixture11();
    auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(f.data), f.model, 2176);
    for (auto _ : state) {
        auto combined = combine_splits(enc.metadata, 16);
        benchmark::DoNotOptimize(combined.splits.data());
    }
}
BENCHMARK(BM_CombineSplits);

void BM_TansTableBuild(benchmark::State& state) {
    auto& f = fixture11();
    auto pdf = quantize_pdf(histogram(f.data), static_cast<u32>(state.range(0)));
    for (auto _ : state) {
        TansTable t(pdf, static_cast<u32>(state.range(0)));
        benchmark::DoNotOptimize(&t);
    }
}
BENCHMARK(BM_TansTableBuild)->Arg(11)->Arg(16);

void BM_BitWriter(benchmark::State& state) {
    for (auto _ : state) {
        BitWriter bw;
        for (u32 i = 0; i < 4096; ++i) bw.put(i & 0x3ff, 10);
        auto bytes = bw.finish();
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations() * 4096 * 10 / 8));
}
BENCHMARK(BM_BitWriter);

}  // namespace

BENCHMARK_MAIN();
