// Ablation: synchronization-section size (§4.1/§4.2). The section spans the
// lanes' last renormalization points before a split; its size is governed by
// how often lanes renormalize — i.e. by the data's entropy. Reports sync
// sizes and the resulting decode-side overhead across compressibility and
// split counts, quantifying the paper's "synchronization overhead is mostly
// negligible" claim and where it stops holding.

#include <cstdio>

#include "bench_util.hpp"
#include "core/recoil_decoder.hpp"
#include "core/recoil_encoder.hpp"

using namespace recoil;

int main() {
    const u64 size = 4'000'000;
    std::printf("== Ablation: synchronization-section size vs entropy & splits ==\n");
    std::printf("datasets: 4 MB exponential bytes, n=11\n\n");
    std::printf("%-10s %8s %8s %10s %12s %12s %12s\n", "dataset", "bits/B", "splits",
                "avg sync", "max sync", "sync+cross", "overhead");

    for (double lambda : {10.0, 100.0, 500.0}) {
        auto data = workload::gen_exponential(size, lambda, 17);
        auto model = bench::model_for_bytes(data, 11);
        auto bs = interleaved_encode<Rans32, 32>(std::span<const u8>(data), model);
        const double bpb = static_cast<double>(bs.byte_size()) * 8 / size;
        for (u32 splits : {16u, 256u, 2176u}) {
            auto enc = recoil_encode<Rans32, 32>(std::span<const u8>(data), model, splits);
            if (enc.metadata.splits.empty()) continue;
            u64 total_sync = 0, max_sync = 0;
            for (const auto& sp : enc.metadata.splits) {
                total_sync += sp.sync_symbols();
                max_sync = std::max(max_sync, sp.sync_symbols());
            }
            RecoilDecodeStats stats;
            std::vector<u8> out(data.size());
            recoil_decode_into<Rans32, 32, u8>(
                std::span<const u16>(enc.bitstream.units), enc.metadata,
                model.tables(), std::span<u8>(out), nullptr, &stats);
            const double overhead =
                static_cast<double>(stats.sync_symbols + stats.skipped_positions +
                                    stats.cross_symbols) /
                static_cast<double>(data.size());
            std::printf("rand_%-5.0f %8.2f %8u %10.1f %12lu %12lu %11.3f%%\n",
                        lambda, bpb, enc.metadata.num_splits(),
                        static_cast<double>(total_sync) / enc.metadata.splits.size(),
                        static_cast<unsigned long>(max_sync),
                        static_cast<unsigned long>(stats.sync_symbols +
                                                   stats.cross_symbols),
                        100.0 * overhead);
        }
    }
    std::printf("\n(lower-entropy data renormalizes less often, so sections grow;\n"
                " the heuristic keeps overhead sub-percent until splits x sync\n"
                " approaches the stream size)\n");
    return 0;
}
