// Ablation: the Definition 4.1 split heuristic H(t, ts) versus a naive
// planner that just takes the first valid renormalization point past each
// equal-offset boundary. Reports workload balance (max/mean symbols per
// split), total synchronization overhead, and decode throughput.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/recoil_decoder.hpp"
#include "core/recoil_encoder.hpp"
#include "simd/dispatch.hpp"

using namespace recoil;

namespace {

/// Naive planner: first valid candidate at/after each ideal boundary.
std::vector<SplitPoint> naive_plan(std::span<const RenormEvent> events,
                                   u64 num_symbols, u32 max_splits, u32 lanes) {
    PlannerOptions opt;
    opt.window_below = 0.0;   // degenerate window => first valid candidate
    opt.window_above = 10.0;  // (H still computed but no better option seen
                              // before the window closes at the first event)
    // A window of [ideal, ideal] would starve; emulate "first valid" by
    // scanning manually instead.
    std::vector<SplitPoint> out;
    std::vector<u64> lane_idx(lanes, ~u64{0});
    std::vector<u32> lane_state(lanes, 0);
    std::vector<u64> lane_off(lanes, 0);
    u32 seen = 0;
    std::size_t ei = 0;
    i64 prev_anchor = -1;
    for (u32 k = 1; k < max_splits; ++k) {
        const u64 ideal = num_symbols / max_splits * k;
        bool placed = false;
        while (ei < events.size() && !placed) {
            const auto& e = events[ei++];
            if (lane_idx[e.lane] == ~u64{0}) ++seen;
            lane_idx[e.lane] = e.sym_index;
            lane_state[e.lane] = e.state;
            lane_off[e.lane] = e.offset;
            if (e.sym_index < ideal || seen < lanes) continue;
            const u64 mn = *std::min_element(lane_idx.begin(), lane_idx.end());
            if (static_cast<i64>(mn) <= prev_anchor) continue;
            SplitPoint sp;
            sp.offset = e.offset;
            sp.anchor_index = e.sym_index;
            sp.min_index = mn;
            sp.states.assign(lane_state.begin(), lane_state.end());
            sp.indices.assign(lane_idx.begin(), lane_idx.end());
            out.push_back(std::move(sp));
            prev_anchor = static_cast<i64>(e.sym_index);
            placed = true;
        }
        if (!placed) break;
    }
    return out;
}

void report(const char* name, const RecoilMetadata& meta,
            std::span<const u16> units, const DecodeTables& t, u64 raw_bytes,
            ThreadPool& pool) {
    u64 sync_total = 0, max_t = 0;
    i64 prev = -1;
    for (const auto& sp : meta.splits) {
        sync_total += sp.sync_symbols();
        max_t = std::max(max_t, sp.anchor_index - prev);
        prev = static_cast<i64>(sp.anchor_index);
    }
    max_t = std::max(max_t, meta.num_symbols - 1 - prev);
    const double mean_t =
        static_cast<double>(meta.num_symbols) / meta.num_splits();
    simd::SimdRangeFn<u8> range;
    std::vector<u8> buf(meta.num_symbols);
    const double gbps = bench::measure_gbps(raw_bytes, bench::runs(), [&] {
        recoil_decode_into<Rans32, 32, u8>(units, meta, t, std::span<u8>(buf), &pool,
                                           nullptr, range);
    });
    std::printf("%-18s %8u %12.0f %10lu %12.3f %10lu %10.2f\n", name,
                meta.num_splits(), mean_t, static_cast<unsigned long>(max_t),
                static_cast<double>(max_t) / mean_t,
                static_cast<unsigned long>(sync_total), gbps);
}

}  // namespace

int main() {
    const double scale = workload::bench_scale();
    const u64 size = std::max<u64>(2'000'000, static_cast<u64>(10e6 * scale));
    std::printf("== Ablation: split planner heuristic vs naive placement ==\n");
    std::printf("dataset: %.1f MB text, n=11, 256 splits\n\n", size / 1e6);
    auto data = workload::gen_text(size, 5);
    auto model = bench::model_for_bytes(data, 11);

    RenormEventList events;
    auto bs = interleaved_encode<Rans32, 32>(std::span<const u8>(data), model, &events);

    RecoilMetadata base;
    base.lanes = 32;
    base.state_store_bits = 16;
    base.num_symbols = bs.num_symbols;
    base.num_units = bs.units.size();
    base.final_states.assign(bs.final_states.begin(), bs.final_states.end());

    std::printf("%-18s %8s %12s %10s %12s %10s %10s\n", "planner", "splits",
                "mean t", "max t", "imbalance", "sync syms", "GB/s");
    ThreadPool pool(16);

    auto h = base;
    h.splits = plan_splits(events, bs.num_symbols, 256, 32);
    report("H(t,ts) heuristic", h, std::span<const u16>(bs.units), model.tables(),
           data.size(), pool);

    auto nv = base;
    nv.splits = naive_plan(events, bs.num_symbols, 256, 32);
    report("naive first-valid", nv, std::span<const u16>(bs.units), model.tables(),
           data.size(), pool);
    return 0;
}
