#include "rans/static_model.hpp"

#include <cmath>

#include "rans/symbol_stats.hpp"
#include "util/error.hpp"

namespace recoil {

StaticModel::StaticModel(std::span<const u64> counts, u32 prob_bits)
    : prob_bits_(prob_bits),
      freq_(quantize_pdf(counts, prob_bits)),
      cum_(cumulative(freq_)) {
    build_luts();
}

StaticModel::StaticModel(std::span<const u32> freq, u32 prob_bits, int)
    : prob_bits_(prob_bits), freq_(freq.begin(), freq.end()), cum_(cumulative(freq_)) {
    RECOIL_CHECK(cum_.back() == (u32{1} << prob_bits), "pdf does not sum to 2^prob_bits");
    build_luts();
}

void StaticModel::build_luts() {
    fast_.resize(alphabet());
    for (u32 s = 0; s < alphabet(); ++s) {
        fast_[s] = EncSymbolFast::make(freq_[s], cum_[s], prob_bits_);
    }
    const u32 slots = u32{1} << prob_bits_;
    fc_.resize(slots);
    sym_.resize(slots);
    const bool packable = alphabet() <= 256 && prob_bits_ <= 12;
    if (packable) packed_.resize(slots);
    for (u32 s = 0; s < alphabet(); ++s) {
        const u32 f = freq_[s];
        const u32 c = cum_[s];
        for (u32 slot = c; slot < c + f; ++slot) {
            fc_[slot] = ((f - 1) << 16) | c;
            sym_[slot] = s;
            if (packable) packed_[slot] = ((f - 1) << 20) | (c << 8) | s;
        }
    }
}

double StaticModel::cross_entropy_bits(std::span<const u64> counts) const {
    double bits = 0;
    const double n = static_cast<double>(prob_bits_);
    for (u32 s = 0; s < counts.size() && s < alphabet(); ++s) {
        if (counts[s] == 0) continue;
        RECOIL_CHECK(freq_[s] > 0, "cross_entropy_bits: symbol with zero frequency present");
        bits += static_cast<double>(counts[s]) *
                (n - std::log2(static_cast<double>(freq_[s])));
    }
    return bits;
}

}  // namespace recoil
