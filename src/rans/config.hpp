#pragma once
// rANS coder configurations (paper Table 3). The codec templates accept a
// config type so state width, renormalization unit size and lower bound are
// all customizable; `Rans32` is the configuration used throughout the
// paper's experiments (32-bit state, 16-bit units, L = 2^16).

#include "util/ints.hpp"

namespace recoil {

/// Default configuration: 32-bit states, 16-bit renormalization units,
/// L = 2^16. With prob_bits <= 16 renormalization always completes in one
/// step (b >= n), and intermediate states at renormalization points fit in
/// 16 bits (paper Lemma 3.1) — the property Recoil metadata relies on.
struct Rans32 {
    using StateT = u32;
    using UnitT = u16;
    static constexpr u32 state_bits = 32;
    static constexpr u32 unit_bits = 16;
    static constexpr u32 lower_bound_log2 = 16;
    static constexpr StateT lower_bound = StateT{1} << lower_bound_log2;
    static constexpr u32 max_prob_bits = 16;
};

/// Byte-wise configuration (ryg_rans-style): 8-bit units, L = 2^23.
/// Renormalization may take several steps when prob_bits > 8; the reference
/// paths handle that, and Recoil stores intermediate states in 23 bits.
struct Rans32x8 {
    using StateT = u32;
    using UnitT = u8;
    static constexpr u32 state_bits = 32;
    static constexpr u32 unit_bits = 8;
    static constexpr u32 lower_bound_log2 = 23;
    static constexpr StateT lower_bound = StateT{1} << lower_bound_log2;
    static constexpr u32 max_prob_bits = 16;
};

/// Number of interleaved lanes used by all experiment configurations: fits
/// one AVX512 pair / four AVX2 vectors / one GPU warp (paper Table 3).
inline constexpr u32 kLanes = 32;

}  // namespace recoil
