#pragma once
// Histogramming and probability quantization: turns symbol counts into a
// quantized PDF summing exactly to 2^prob_bits, with every present symbol
// receiving a non-zero frequency (required for encodability).

#include <span>
#include <vector>

#include "util/ints.hpp"

namespace recoil {

/// Count occurrences of each symbol value in [0, alphabet).
std::vector<u64> histogram(std::span<const u8> data, u32 alphabet = 256);
std::vector<u64> histogram16(std::span<const u16> data, u32 alphabet);

/// Quantize counts to frequencies summing to exactly 2^prob_bits.
/// Symbols with count 0 get frequency 0; symbols with count > 0 get >= 1.
/// Uses floor scaling plus largest-remainder correction; when the +1 floor
/// for rare symbols overshoots, frequency is reclaimed from the symbols
/// where the rate-distortion cost (count * log2(f/(f-1))) is smallest.
std::vector<u32> quantize_pdf(std::span<const u64> counts, u32 prob_bits);

/// Exclusive prefix sum of a quantized PDF; result has size pdf.size() + 1
/// and back() == 2^prob_bits.
std::vector<u32> cumulative(std::span<const u32> pdf);

}  // namespace recoil
