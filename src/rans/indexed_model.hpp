#pragma once
// Indexed (adaptive) model set: a family of quantized distributions plus a
// per-symbol-index model id. This is the hyperprior use case of §3.1: the
// distribution used at each position is selected by the symbol index, which
// is why Recoil metadata stores symbol indices at split points.

#include <span>
#include <vector>

#include "rans/static_model.hpp"

namespace recoil {

class IndexedModelSet {
public:
    /// All models must share prob_bits and alphabet size. `ids[i]` selects
    /// the model for symbol index i; ids.size() must cover the input length.
    IndexedModelSet(std::vector<StaticModel> models, std::vector<u8> ids);

    u32 prob_bits() const noexcept { return prob_bits_; }
    u32 alphabet() const noexcept { return alphabet_; }
    u32 model_count() const noexcept { return model_count_; }
    std::span<const u8> ids() const noexcept { return ids_; }

    EncSymbol enc_lookup(u64 sym_index, u32 sym) const noexcept {
        const u64 base = u64{ids_[sym_index]} * (alphabet_ + 1);
        return EncSymbol{enc_freq_[base + sym], enc_cum_[base + sym]};
    }

    /// Division-free encode entry for the model selected at `sym_index`.
    const EncSymbolFast& enc_fast(u64 sym_index, u32 sym) const noexcept {
        return fast_[u64{ids_[sym_index]} * alphabet_ + sym];
    }

    DecSymbol dec_lookup(u64 sym_index, u32 slot) const noexcept {
        return tables().lookup(sym_index, slot);
    }

    DecodeTables tables() const noexcept {
        DecodeTables t;
        t.fc = fc_.data();
        t.sym = sym_.data();
        t.ids = ids_.data();
        t.prob_bits = prob_bits_;
        return t;
    }

private:
    u32 prob_bits_;
    u32 alphabet_;
    u32 model_count_;
    std::vector<u8> ids_;
    // Contiguous per-model tables so SIMD decoders can gather with index
    // (id << prob_bits) | slot.
    std::vector<u32> fc_;
    std::vector<u32> sym_;
    std::vector<u32> enc_freq_;  // (alphabet+1) stride per model
    std::vector<u32> enc_cum_;
    std::vector<EncSymbolFast> fast_;  // alphabet stride per model
};

}  // namespace recoil
