#pragma once
// Static (order-0) probability model: one quantized distribution shared by
// every symbol position. Provides the encode lookup (freq, cum) and the slot
// decode LUT (Equation 2's symbol search) in the table layouts consumed by
// both the scalar and SIMD decoders.

#include <memory>
#include <span>
#include <vector>

#include "util/ints.hpp"

namespace recoil {

struct EncSymbol {
    u32 freq;
    u32 cum;
};

/// Division-free encode entry (rans64-style reciprocal multiplication):
/// with q = mulhi64(x, rcp_freq) >> rcp_shift  (== x / freq, exact for all
/// x < 2^63 — our 32-bit states included), the encode transform
/// x' = ((x/f) << n) + cum + (x % f) becomes x' = x + bias + q * cmpl_freq
/// with cmpl_freq = 2^n - freq.
struct EncSymbolFast {
    u64 rcp_freq;   ///< ceil(2^(shift+63) / freq), or ~0 for freq == 1
    u32 freq;
    u32 bias;       ///< cum, or cum + 2^n - 1 for freq == 1
    u32 cmpl_freq;  ///< (1 << prob_bits) - freq
    u32 rcp_shift;  ///< shift - 1 with shift = ceil(log2 freq)

    /// Equivalent of Eq. 1 without the hardware divide.
    template <typename StateT>
    StateT encode(StateT x) const noexcept {
        const u64 hi = static_cast<u64>(
            (static_cast<unsigned __int128>(x) * rcp_freq) >> 64);
        const u32 q = static_cast<u32>(hi >> rcp_shift);
        return x + bias + q * cmpl_freq;
    }

    static EncSymbolFast make(u32 freq, u32 cum, u32 prob_bits) noexcept {
        EncSymbolFast e{};
        e.freq = freq;
        e.cmpl_freq = (u32{1} << prob_bits) - freq;
        if (freq < 2) {
            // freq == 1 (or unused 0): rcp_freq = 2^64 - 1 gives q = x - 1
            // for x >= 1; compensating in the bias restores the exact
            // transform: x + (cum + 2^n - 1) + (x-1)(2^n - 1) = (x << n) + cum.
            e.rcp_freq = ~u64{0};
            e.rcp_shift = 0;
            e.bias = cum + (u32{1} << prob_bits) - 1;
        } else {
            u32 shift = 0;
            while (freq > (u32{1} << shift)) ++shift;
            e.rcp_freq = static_cast<u64>(
                ((static_cast<unsigned __int128>(1) << (shift + 63)) + freq - 1) /
                freq);
            e.rcp_shift = shift - 1;
            e.bias = cum;
        }
        return e;
    }
};

struct DecSymbol {
    u32 sym;
    u32 freq;
    u32 cum;
};

/// Gather-friendly decode table view shared by all decoder back ends.
///
/// Layout per slot (slot = state & (2^prob_bits - 1)):
///   fc[slot]  = ((freq - 1) << 16) | cum      (freq-1 so freq = 2^16 fits)
///   sym[slot] = symbol value
/// When `packed` is non-null (8-bit symbols and prob_bits <= 12, the paper's
/// §4.4 optimization), a single gather suffices:
///   packed[slot] = ((freq - 1) << 20) | (cum << 8) | sym
/// For adaptive models, `ids` maps symbol index -> model id and tables are
/// indexed by (id << prob_bits) | slot; for static models ids == nullptr.
struct DecodeTables {
    const u32* fc = nullptr;
    const u32* sym = nullptr;
    const u32* packed = nullptr;
    const u8* ids = nullptr;
    u32 prob_bits = 0;

    DecSymbol lookup(u64 sym_index, u32 slot) const noexcept {
        const u64 base = ids ? (u64{ids[sym_index]} << prob_bits) : 0;
        const u32 f_c = fc[base + slot];
        return DecSymbol{sym[base + slot], (f_c >> 16) + 1, f_c & 0xffffu};
    }
};

class StaticModel {
public:
    /// Build from raw counts (quantizes internally).
    StaticModel(std::span<const u64> counts, u32 prob_bits);
    /// Build from an already-quantized PDF summing to 2^prob_bits.
    StaticModel(std::span<const u32> freq, u32 prob_bits, int /*tag*/);

    u32 prob_bits() const noexcept { return prob_bits_; }
    u32 alphabet() const noexcept { return static_cast<u32>(freq_.size()); }

    u32 freq(u32 sym) const noexcept { return freq_[sym]; }
    u32 cum(u32 sym) const noexcept { return cum_[sym]; }

    /// Encode-side lookup; `sym_index` ignored (static model).
    EncSymbol enc_lookup(u64 /*sym_index*/, u32 sym) const noexcept {
        return EncSymbol{freq_[sym], cum_[sym]};
    }

    /// Division-free encode entry; `sym_index` ignored (static model).
    const EncSymbolFast& enc_fast(u64 /*sym_index*/, u32 sym) const noexcept {
        return fast_[sym];
    }

    /// Decode-side lookup; `sym_index` ignored (static model).
    DecSymbol dec_lookup(u64 sym_index, u32 slot) const noexcept {
        return tables().lookup(sym_index, slot);
    }

    DecodeTables tables() const noexcept {
        DecodeTables t;
        t.fc = fc_.data();
        t.sym = sym_.data();
        t.packed = packed_.empty() ? nullptr : packed_.data();
        t.prob_bits = prob_bits_;
        return t;
    }

    /// Shannon cost, in bits, of coding `counts` with this model (for tests
    /// and the compression-rate benches).
    double cross_entropy_bits(std::span<const u64> counts) const;

private:
    void build_luts();

    u32 prob_bits_;
    std::vector<u32> freq_;
    std::vector<u32> cum_;    // size alphabet + 1
    std::vector<u32> fc_;     // per-slot ((freq-1)<<16)|cum
    std::vector<u32> sym_;    // per-slot symbol
    std::vector<u32> packed_; // per-slot packed entry when applicable
    std::vector<EncSymbolFast> fast_;  // per-symbol division-free entries
};

}  // namespace recoil
