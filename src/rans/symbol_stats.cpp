#include "rans/symbol_stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace recoil {

std::vector<u64> histogram(std::span<const u8> data, u32 alphabet) {
    std::vector<u64> counts(alphabet, 0);
    // Four sub-histograms break the store-to-load dependency chain.
    std::vector<u64> h1(alphabet, 0), h2(alphabet, 0), h3(alphabet, 0);
    std::size_t i = 0;
    for (; i + 4 <= data.size(); i += 4) {
        ++counts[data[i]];
        ++h1[data[i + 1]];
        ++h2[data[i + 2]];
        ++h3[data[i + 3]];
    }
    for (; i < data.size(); ++i) ++counts[data[i]];
    for (u32 s = 0; s < alphabet; ++s) counts[s] += h1[s] + h2[s] + h3[s];
    return counts;
}

std::vector<u64> histogram16(std::span<const u16> data, u32 alphabet) {
    std::vector<u64> counts(alphabet, 0);
    for (u16 v : data) {
        RECOIL_CHECK(v < alphabet, "histogram16: symbol out of alphabet");
        ++counts[v];
    }
    return counts;
}

std::vector<u32> quantize_pdf(std::span<const u64> counts, u32 prob_bits) {
    RECOIL_CHECK(prob_bits >= 1 && prob_bits <= 16, "prob_bits must be in [1,16]");
    const u64 target = u64{1} << prob_bits;
    const u64 total = std::accumulate(counts.begin(), counts.end(), u64{0});
    RECOIL_CHECK(total > 0, "quantize_pdf: empty input");

    const std::size_t n = counts.size();
    std::vector<u32> freq(n, 0);
    std::vector<double> remainder(n, 0.0);
    u64 used = 0;
    u64 present = 0;
    for (std::size_t s = 0; s < n; ++s) {
        if (counts[s] == 0) continue;
        ++present;
        const double exact =
            static_cast<double>(counts[s]) * static_cast<double>(target) / static_cast<double>(total);
        u32 f = static_cast<u32>(exact);
        if (f == 0) f = 1;
        remainder[s] = exact - static_cast<double>(f);
        freq[s] = f;
        used += f;
    }
    RECOIL_CHECK(present <= target, "alphabet larger than 2^prob_bits with all symbols present");

    if (used < target) {
        // Hand out the remaining mass by largest fractional remainder.
        std::vector<u32> order;
        order.reserve(present);
        for (u32 s = 0; s < n; ++s)
            if (freq[s] > 0) order.push_back(s);
        std::sort(order.begin(), order.end(),
                  [&](u32 a, u32 b) { return remainder[a] > remainder[b]; });
        u64 left = target - used;
        std::size_t k = 0;
        while (left > 0) {
            ++freq[order[k % order.size()]];
            ++k;
            --left;
        }
    } else if (used > target) {
        // Reclaim mass where shrinking costs the fewest coded bits.
        u64 excess = used - target;
        while (excess > 0) {
            double best_cost = 0;
            i64 best = -1;
            for (u32 s = 0; s < n; ++s) {
                if (freq[s] <= 1) continue;
                const double cost = static_cast<double>(counts[s]) *
                                    std::log2(static_cast<double>(freq[s]) /
                                              static_cast<double>(freq[s] - 1));
                if (best < 0 || cost < best_cost) {
                    best_cost = cost;
                    best = s;
                }
            }
            RECOIL_CHECK(best >= 0, "quantize_pdf: cannot reclaim frequency");
            // Take as much as possible from the cheapest symbol in one go to
            // keep this O(alphabet * log) rather than O(excess * alphabet).
            const u64 take = std::min<u64>(excess, freq[best] - 1);
            freq[best] -= static_cast<u32>(take);
            excess -= take;
        }
    }

    u64 check = std::accumulate(freq.begin(), freq.end(), u64{0});
    RECOIL_CHECK(check == target, "quantize_pdf: normalization failed");
    return freq;
}

std::vector<u32> cumulative(std::span<const u32> pdf) {
    std::vector<u32> cum(pdf.size() + 1, 0);
    for (std::size_t s = 0; s < pdf.size(); ++s) cum[s + 1] = cum[s] + pdf[s];
    return cum;
}

}  // namespace recoil
