#include "rans/indexed_model.hpp"

#include "util/error.hpp"

namespace recoil {

IndexedModelSet::IndexedModelSet(std::vector<StaticModel> models, std::vector<u8> ids)
    : ids_(std::move(ids)) {
    RECOIL_CHECK(!models.empty(), "IndexedModelSet: no models");
    RECOIL_CHECK(models.size() <= 256, "IndexedModelSet: at most 256 models (8-bit ids)");
    prob_bits_ = models[0].prob_bits();
    alphabet_ = models[0].alphabet();
    model_count_ = static_cast<u32>(models.size());
    for (const auto& m : models) {
        RECOIL_CHECK(m.prob_bits() == prob_bits_ && m.alphabet() == alphabet_,
                     "IndexedModelSet: inconsistent models");
    }
    for (u8 id : ids_) RECOIL_CHECK(id < model_count_, "IndexedModelSet: id out of range");

    const u64 slots = u64{1} << prob_bits_;
    fc_.resize(slots * model_count_);
    sym_.resize(slots * model_count_);
    enc_freq_.resize(u64{alphabet_ + 1} * model_count_);
    enc_cum_.resize(u64{alphabet_ + 1} * model_count_);
    fast_.resize(u64{alphabet_} * model_count_);
    for (u32 m = 0; m < model_count_; ++m) {
        const DecodeTables t = models[m].tables();
        std::copy(t.fc, t.fc + slots, fc_.begin() + m * slots);
        std::copy(t.sym, t.sym + slots, sym_.begin() + m * slots);
        for (u32 s = 0; s < alphabet_; ++s) {
            enc_freq_[u64{m} * (alphabet_ + 1) + s] = models[m].freq(s);
            enc_cum_[u64{m} * (alphabet_ + 1) + s] = models[m].cum(s);
            fast_[u64{m} * alphabet_ + s] =
                EncSymbolFast::make(models[m].freq(s), models[m].cum(s), prob_bits_);
        }
    }
}

}  // namespace recoil
