#pragma once
// Interleaved rANS (Giesen, arXiv:1402.3392; paper §2.1–2.2).
//
// Stream discipline (everything else in the library depends on this):
//  * Encoding symbol s_i on lane (i mod NLanes) is [renorm-writes W_i, then
//    transform T_i]. Units are appended in (symbol-group ascending, lane
//    ascending) order because symbols are processed in index order.
//  * Decoding processes positions descending and must pop units in exactly
//    the reverse of write order. The scalar paths use the per-symbol
//    grouping: decode position i = [pop while x_lane < L, then T'_i]. The
//    pops performed before T'_i restore the unit(s) written by W_{i+NLanes}
//    of the same lane. The SIMD paths use the equivalent per-group grouping
//    (see simd/kernel_iface.hpp); the two can be mixed at group boundaries
//    because the `x < L` test is the entire bookkeeping.
//  * Lane states start at Cfg::lower_bound, so a full decode ends with every
//    lane back at lower_bound — a cheap integrity check.
//
// Recoil (src/core) builds on two properties established here:
//  1. every renormalization leaves the lane state < lower_bound (Lemma 3.1),
//     recorded as a RenormEvent;
//  2. a lane initialized with that recorded state, whose first pop happens at
//     the recorded unit offset, reconstructs the exact mid-stream state.

#include <array>
#include <span>
#include <vector>

#include "rans/config.hpp"
#include "rans/renorm_event.hpp"
#include "rans/static_model.hpp"
#include "util/error.hpp"
#include "util/ints.hpp"

namespace recoil {

/// Encoded payload of one interleaved group of NLanes rANS coders.
template <typename Cfg = Rans32, u32 NLanes = kLanes>
struct InterleavedBitstream {
    std::vector<typename Cfg::UnitT> units;            ///< renormalization output
    std::array<typename Cfg::StateT, NLanes> final_states{};  ///< stored as-is
    u64 num_symbols = 0;

    u64 byte_size() const noexcept { return units.size() * sizeof(typename Cfg::UnitT); }
};

/// Encode `syms` with NLanes interleaved rANS coders using `model`
/// (StaticModel or IndexedModelSet). If `events` is non-null, every
/// renormalization of symbols >= NLanes is pushed into it as a Recoil split
/// candidate; the sink is anything with push_back(const RenormEvent&) — a
/// RenormEventList to materialize them, or an OnlinePlanner to plan splits
/// on the fly without storing them.
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym, typename Model,
          typename EventSink = RenormEventList>
InterleavedBitstream<Cfg, NLanes> interleaved_encode(std::span<const TSym> syms,
                                                     const Model& model,
                                                     EventSink* events = nullptr) {
    using StateT = typename Cfg::StateT;
    using UnitT = typename Cfg::UnitT;
    const u32 n = model.prob_bits();
    RECOIL_CHECK(n <= Cfg::lower_bound_log2, "prob_bits exceeds lower bound log2");

    InterleavedBitstream<Cfg, NLanes> out;
    out.num_symbols = syms.size();
    out.units.reserve(syms.size() / 2 + 64);
    std::array<StateT, NLanes> x;
    x.fill(Cfg::lower_bound);

    // Models exposing division-free entries (EncSymbolFast) take the
    // reciprocal-multiplication path; minimal models (enc_lookup only) use
    // the literal Eq. 1 transform. Both produce identical bitstreams.
    constexpr bool kFast = requires { model.enc_fast(u64{0}, u32{0}); };

    constexpr UnitT unit_mask = static_cast<UnitT>(~UnitT{0});
    auto encode_one = [&](u64 i, u32 freq, auto&& transform) {
        const u32 lane = static_cast<u32>(i % NLanes);
        RECOIL_CHECK(freq > 0, "encoding a symbol with zero frequency");
        // Renormalize (Eq. 3): shift out low units until the encode transform
        // cannot overflow. With unit_bits >= prob_bits this runs at most once.
        const u64 xmax = (u64{Cfg::lower_bound >> n} << Cfg::unit_bits) * freq;
        StateT xi = x[lane];
        bool emitted = false;
        while (xi >= xmax) {
            out.units.push_back(static_cast<UnitT>(xi & unit_mask));
            xi >>= Cfg::unit_bits;
            emitted = true;
        }
        if (emitted && events != nullptr && i >= NLanes) {
            events->push_back(RenormEvent{i - NLanes,
                                          out.units.size() - 1,
                                          static_cast<u32>(xi),
                                          lane});
        }
        // Encode transform (Eq. 1).
        x[lane] = transform(xi);
    };

    for (u64 i = 0; i < syms.size(); ++i) {
        if constexpr (kFast) {
            const auto& es = model.enc_fast(i, static_cast<u32>(syms[i]));
            encode_one(i, es.freq, [&](StateT xi) { return es.encode(xi); });
        } else {
            const EncSymbol es = model.enc_lookup(i, static_cast<u32>(syms[i]));
            encode_one(i, es.freq, [&](StateT xi) {
                return ((xi / es.freq) << n) + es.cum + (xi % es.freq);
            });
        }
    }
    out.final_states = x;
    return out;
}

/// Mutable decode position: lane states plus the (descending) unit cursor.
template <typename Cfg = Rans32, u32 NLanes = kLanes>
struct LaneCursor {
    std::array<typename Cfg::StateT, NLanes> x{};
    i64 p = -1;  ///< index of the next unit to pop
};

/// Decode positions [lo, hi] descending under the per-symbol discipline,
/// writing out[pos] for each when `out` is non-null (pass nullptr to discard,
/// as the Recoil synchronization phase does). All lanes must already carry
/// valid states for their next position in this range.
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym>
inline void decode_positions(LaneCursor<Cfg, NLanes>& cur,
                             std::span<const typename Cfg::UnitT> units,
                             u64 hi, u64 lo, const DecodeTables& t, TSym* out) {
    using StateT = typename Cfg::StateT;
    const u32 n = t.prob_bits;
    const u32 slot_mask = (u32{1} << n) - 1;
    for (u64 pos = hi + 1; pos-- > lo;) {
        const u32 lane = static_cast<u32>(pos % NLanes);
        StateT xi = cur.x[lane];
        // Renormalize (Eq. 4): pops restore the full state written by the
        // same lane's next-higher symbol's renormalization.
        while (xi < Cfg::lower_bound) {
            RECOIL_CHECK(cur.p >= 0, "decode_positions: bitstream underflow");
            xi = static_cast<StateT>((xi << Cfg::unit_bits) |
                                     units[static_cast<u64>(cur.p--)]);
        }
        // Decode transform (Eq. 2).
        const u32 slot = static_cast<u32>(xi) & slot_mask;
        const DecSymbol ds = t.lookup(pos, slot);
        cur.x[lane] = ds.freq * (xi >> n) + slot - ds.cum;
        if (out != nullptr) out[pos] = static_cast<TSym>(ds.sym);
    }
}

/// Pop the units written by the renormalizations of the very first symbol
/// group (positions < NLanes). The per-symbol discipline attributes the pops
/// for W_i to position i - NLanes, which does not exist for the first group,
/// so every decode that reaches position 0 must finish with this drain. Lanes
/// are drained descending — the exact reverse of the group-0 write order.
/// Afterwards every used lane is back at Cfg::lower_bound.
template <typename Cfg = Rans32, u32 NLanes = kLanes>
inline void drain_start(LaneCursor<Cfg, NLanes>& cur,
                        std::span<const typename Cfg::UnitT> units, u64 num_symbols) {
    using StateT = typename Cfg::StateT;
    const u32 used = static_cast<u32>(num_symbols < NLanes ? num_symbols : NLanes);
    for (u32 lane = used; lane-- > 0;) {
        StateT xi = cur.x[lane];
        while (xi < Cfg::lower_bound) {
            RECOIL_CHECK(cur.p >= 0, "drain_start: bitstream underflow");
            xi = static_cast<StateT>((xi << Cfg::unit_bits) |
                                     units[static_cast<u64>(cur.p--)]);
        }
        cur.x[lane] = xi;
    }
}

/// Full single-threaded decode of an interleaved bitstream (the paper's
/// baseline (A) when combined with the SIMD kernels; this scalar form is the
/// reference implementation §4.4 variation (1)).
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym>
std::vector<TSym> serial_decode(const InterleavedBitstream<Cfg, NLanes>& bs,
                                const DecodeTables& t) {
    std::vector<TSym> out(bs.num_symbols);
    if (bs.num_symbols == 0) return out;
    LaneCursor<Cfg, NLanes> cur;
    cur.x = bs.final_states;
    cur.p = static_cast<i64>(bs.units.size()) - 1;
    decode_positions<Cfg, NLanes>(cur, std::span<const typename Cfg::UnitT>(bs.units),
                                  bs.num_symbols - 1, 0, t, out.data());
    drain_start<Cfg, NLanes>(cur, std::span<const typename Cfg::UnitT>(bs.units),
                             bs.num_symbols);
    RECOIL_CHECK(cur.p == -1, "serial_decode: bitstream not fully consumed");
    for (auto xi : cur.x)
        RECOIL_CHECK(xi == Cfg::lower_bound, "serial_decode: lane state mismatch at start");
    return out;
}

}  // namespace recoil
