#pragma once
// A renormalization event observed during interleaved encoding. Events are
// the split-point candidates of Recoil (§3.2/§4.1): the recorded state is the
// post-renormalization state (< L, so it fits in lower_bound_log2 bits), the
// symbol index is the lane's previous symbol (the last one folded into the
// state before it was shrunk), and the offset is the unit index of the (last)
// unit this renormalization wrote.

#include <vector>

#include "util/ints.hpp"

namespace recoil {

struct RenormEvent {
    u64 sym_index;  ///< index of lane's latest encoded symbol at this point
    u64 offset;     ///< bitstream unit index written (decode init pops here)
    u32 state;      ///< post-renormalization lane state, < lower_bound
    u32 lane;       ///< interleaved lane id in [0, NLanes)
};

using RenormEventList = std::vector<RenormEvent>;

}  // namespace recoil
