#pragma once
// Table-variant ANS (tANS/FSE; §2.4). The decode table has 2^table_log
// states; probability quantization is tied to the table size — the
// limitation the paper contrasts against rANS (small tables self-synchronize
// but cap the quantization level n; big tables allow n=16 but stop
// self-synchronizing, which is what makes multians collapse at n=16).

#include <span>
#include <vector>

#include "util/ints.hpp"

namespace recoil {

class TansTable {
public:
    struct DecodeEntry {
        u16 sym;
        u8 nbits;
        u16 base;  ///< next slot = base + pop(nbits)
    };

    /// `freq` must sum to exactly 2^table_log (use quantize_pdf).
    TansTable(std::span<const u32> freq, u32 table_log);

    u32 table_log() const noexcept { return table_log_; }
    u32 table_size() const noexcept { return u32{1} << table_log_; }
    u32 alphabet() const noexcept { return static_cast<u32>(freq_.size()); }
    u32 freq(u32 sym) const noexcept { return freq_[sym]; }

    const DecodeEntry& decode_entry(u32 slot) const noexcept { return dec_[slot]; }

    /// Encode transition: from full state `xf` in [L, 2L), encoding `sym`
    /// yields (bits to push, bit count, next slot).
    struct EncodeStep {
        u32 bits;
        u32 nbits;
        u16 next_slot;
    };
    EncodeStep encode_step(u32 xf, u32 sym) const noexcept {
        const u32 f = freq_[sym];
        u32 nbits = 0;
        u32 x_small = xf;
        while (x_small >= 2 * f) {
            x_small >>= 1;
            ++nbits;
        }
        return EncodeStep{xf & ((u32{1} << nbits) - 1), nbits,
                          enc_states_[enc_base_[sym] + (x_small - f)]};
    }

private:
    u32 table_log_;
    std::vector<u32> freq_;
    std::vector<DecodeEntry> dec_;
    std::vector<u32> enc_base_;    // per-symbol offset into enc_states_
    std::vector<u16> enc_states_;  // slot for (sym, x_small - freq)
};

}  // namespace recoil
