#pragma once
// Single-coder tANS encoder/decoder over a LIFO bit stack (16-bit words).
// Symbols are encoded forward and decoded in reverse, like the rANS paths.

#include <span>
#include <vector>

#include "tans/tans_table.hpp"
#include "util/error.hpp"

namespace recoil {

/// LIFO bit sink: values are pushed LSB-first; the decoder pops from the end.
class BitStack {
public:
    void push(u32 value, u32 nbits) {
        if (nbits == 0) return;
        acc_ |= u64{value & ((u64{1} << nbits) - 1)} << fill_;
        fill_ += nbits;
        while (fill_ >= 16) {
            words_.push_back(static_cast<u16>(acc_ & 0xffff));
            acc_ >>= 16;
            fill_ -= 16;
        }
    }
    /// Flush; returns total bit count (the decoder's starting position).
    u64 finish() {
        if (fill_ > 0) {
            words_.push_back(static_cast<u16>(acc_ & 0xffff));
        }
        const u64 bits = (words_.size() - (fill_ > 0 ? 1 : 0)) * 16 + fill_;
        acc_ = 0;
        fill_ = 0;
        return bits;
    }
    std::vector<u16> take() { return std::move(words_); }

private:
    std::vector<u16> words_;
    u64 acc_ = 0;
    u32 fill_ = 0;
};

/// Random-access backward bit reader over a finished BitStack buffer.
/// `bitpos` is the number of unconsumed bits; pop(n) consumes the top n.
class BitStackReader {
public:
    BitStackReader(std::span<const u16> words, u64 bitpos)
        : words_(words), bitpos_(bitpos) {}

    u32 pop(u32 nbits) {
        if (nbits == 0) return 0;
        RECOIL_CHECK(bitpos_ >= nbits, "BitStackReader underflow");
        bitpos_ -= nbits;
        const u64 w = bitpos_ >> 4;
        const u32 o = static_cast<u32>(bitpos_ & 15);
        u64 window = words_[w];
        if (w + 1 < words_.size()) window |= u64{words_[w + 1]} << 16;
        return static_cast<u32>((window >> o) & ((u64{1} << nbits) - 1));
    }

    u64 bitpos() const noexcept { return bitpos_; }
    void set_bitpos(u64 b) noexcept { bitpos_ = b; }

private:
    std::span<const u16> words_;
    u64 bitpos_;
};

/// Encoded tANS payload.
struct TansEncoded {
    std::vector<u16> words;
    u64 total_bits = 0;
    u16 final_slot = 0;
    u64 num_symbols = 0;

    u64 byte_size() const noexcept { return words.size() * 2 + 2; }
};

/// Encode with a single tANS coder (initial slot 0 == full state L).
template <typename TSym>
TansEncoded tans_encode(std::span<const TSym> syms, const TansTable& table) {
    BitStack bits;
    const u32 L = table.table_size();
    u16 slot = 0;
    for (u64 i = 0; i < syms.size(); ++i) {
        const u32 s = static_cast<u32>(syms[i]);
        RECOIL_CHECK(table.freq(s) > 0, "tans_encode: zero-frequency symbol");
        const auto step = table.encode_step(L + slot, s);
        bits.push(step.bits, step.nbits);
        slot = step.next_slot;
    }
    TansEncoded out;
    out.total_bits = bits.finish();
    out.words = bits.take();
    out.final_slot = slot;
    out.num_symbols = syms.size();
    return out;
}

/// Serial (reference) decode: symbols come back in reverse encode order and
/// are written in place so the output matches the input ordering.
template <typename TSym>
std::vector<TSym> tans_decode(const TansEncoded& enc, const TansTable& table) {
    std::vector<TSym> out(enc.num_symbols);
    BitStackReader r(enc.words, enc.total_bits);
    u32 slot = enc.final_slot;
    for (u64 i = enc.num_symbols; i-- > 0;) {
        const auto& e = table.decode_entry(slot);
        out[i] = static_cast<TSym>(e.sym);
        slot = e.base + r.pop(e.nbits);
    }
    RECOIL_CHECK(slot == 0, "tans_decode: did not return to the initial state");
    RECOIL_CHECK(r.bitpos() == 0, "tans_decode: bitstream not fully consumed");
    return out;
}

}  // namespace recoil
