#include "tans/multians.hpp"

#include <algorithm>
#include <atomic>

#include "util/error.hpp"

namespace recoil {

namespace {

struct Entry {
    u64 bitpos;
    u32 slot;
    bool operator==(const Entry&) const = default;
};

/// Decode one segment from `entry` down to `floor_bit`, optionally writing
/// symbols backward from out_end. Returns the exit entry and symbol count.
template <typename TSym>
Entry run_segment(const TansEncoded& enc, const TansTable& table, Entry entry,
                  u64 floor_bit, u64* count, TSym* out_rev_end) {
    BitStackReader r(enc.words, entry.bitpos);
    u32 slot = entry.slot;
    u64 n = 0;
    TSym* w = out_rev_end;
    for (;;) {
        if (r.bitpos() <= floor_bit) {
            // Interior boundaries hand (bitpos, slot) to the next-lower
            // segment. At the stream start the remaining symbols are the
            // zero-bit chain back to the initial slot 0; drain it here
            // (a wrong speculative trajectory hits a non-zero-bit entry
            // instead and bails — that exit is never consumed).
            if (floor_bit > 0 || slot == 0) break;
            const auto& e0 = table.decode_entry(slot);
            if (e0.nbits != 0) break;
            if (w != nullptr) *--w = static_cast<TSym>(e0.sym);
            slot = e0.base;
            ++n;
            continue;
        }
        const auto& e = table.decode_entry(slot);
        // A wrong speculative entry can try to pop past the stream start in
        // the bottom segment; bail out (this exit is never consumed).
        if (r.bitpos() < e.nbits) break;
        if (w != nullptr) *--w = static_cast<TSym>(e.sym);
        slot = e.base + r.pop(e.nbits);
        ++n;
    }
    *count = n;
    return Entry{r.bitpos(), slot};
}

}  // namespace

template <typename TSym>
void multians_decode_into(const TansEncoded& enc, const TansTable& table,
                          std::span<TSym> out, const MultiansOptions& opt,
                          ThreadPool* pool, MultiansStats* stats) {
    RECOIL_CHECK(out.size() >= enc.num_symbols, "multians_decode_into: buffer too small");
    if (enc.num_symbols == 0) return;

    const u64 seg_bits = u64{opt.words_per_segment} * 16;
    const u32 S = static_cast<u32>(std::max<u64>(1, ceil_div<u64>(enc.total_bits, seg_bits)));
    if (stats) stats->segments = S;

    if (S == 1) {
        auto dec = tans_decode<TSym>(enc, table);
        std::copy(dec.begin(), dec.end(), out.begin());
        if (stats) {
            stats->rounds = 1;
            stats->converged = true;
            stats->work_symbols = enc.num_symbols;
        }
        return;
    }

    // Segment i owns bit range (floor_i, ceil_i] with floor_i = i * seg_bits.
    // entries[i] is the (bitpos, slot) at which segment i starts decoding;
    // entries[S-1] is exact from the header, the rest start as guesses.
    std::vector<Entry> entries(S, Entry{0, 0});
    std::vector<Entry> exits(S, Entry{0, 0});
    std::vector<u64> counts(S, 0);
    std::vector<char> dirty(S, 1);
    for (u32 i = 0; i + 1 < S; ++i) entries[i] = Entry{u64{i + 1} * seg_bits, 0};
    entries[S - 1] = Entry{enc.total_bits, enc.final_slot};

    std::atomic<u64> work{0};
    bool converged = false;
    u32 round = 0;
    for (; round < opt.max_rounds && !converged; ++round) {
        auto body = [&](u64 i) {
            if (!dirty[i]) return;
            u64 n = 0;
            exits[i] = run_segment<TSym>(enc, table, entries[i], u64{i} * seg_bits,
                                         &n, nullptr);
            counts[i] = n;
            work.fetch_add(n, std::memory_order_relaxed);
        };
        if (pool) {
            pool->parallel_for(S, body);
        } else {
            for (u32 i = 0; i < S; ++i) body(i);
        }
        // Propagate exits downward; a segment is re-decoded only if its
        // entry changed (multians' trajectory-merge check).
        converged = true;
        for (u32 i = 0; i + 1 < S; ++i) {
            dirty[i] = 0;
            if (!(entries[i] == exits[i + 1])) {
                entries[i] = exits[i + 1];
                dirty[i] = 1;
                converged = false;
            }
        }
        dirty[S - 1] = 0;
    }
    if (stats) {
        stats->rounds = round;
        stats->converged = converged;
        stats->work_symbols = work.load();
    }

    if (!converged) {
        // Self-synchronization failed within the budget (the paper's n=16
        // regime); finish correctly, if slowly, with the serial decoder.
        if (stats) stats->serial_fallback = true;
        auto dec = tans_decode<TSym>(enc, table);
        std::copy(dec.begin(), dec.end(), out.begin());
        return;
    }

    // Exits are exact; counts partition the output. Segment S-1 produces the
    // last counts[S-1] symbols, and so on downward.
    std::vector<u64> end_pos(S, 0);
    u64 acc = enc.num_symbols;
    for (u32 i = S; i-- > 0;) {
        end_pos[i] = acc;
        RECOIL_CHECK(acc >= counts[i], "multians: symbol counts exceed total");
        acc -= counts[i];
    }
    RECOIL_CHECK(acc == 0, "multians: symbol counts do not cover the stream");

    auto write_body = [&](u64 i) {
        u64 n = 0;
        run_segment<TSym>(enc, table, entries[i], u64{i} * seg_bits, &n,
                          out.data() + end_pos[i]);
    };
    if (pool) {
        pool->parallel_for(S, write_body);
    } else {
        for (u32 i = 0; i < S; ++i) write_body(i);
    }
    if (stats) stats->work_symbols = work.load() + enc.num_symbols;
}

template void multians_decode_into<u8>(const TansEncoded&, const TansTable&,
                                       std::span<u8>, const MultiansOptions&,
                                       ThreadPool*, MultiansStats*);
template void multians_decode_into<u16>(const TansEncoded&, const TansTable&,
                                        std::span<u16>, const MultiansOptions&,
                                        ThreadPool*, MultiansStats*);

}  // namespace recoil
