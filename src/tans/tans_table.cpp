#include "tans/tans_table.hpp"

#include <bit>
#include <numeric>

#include "util/error.hpp"

namespace recoil {

TansTable::TansTable(std::span<const u32> freq, u32 table_log)
    : table_log_(table_log), freq_(freq.begin(), freq.end()) {
    RECOIL_CHECK(table_log >= 5 && table_log <= 16, "table_log must be in [5,16]");
    const u32 L = table_size();
    const u64 total = std::accumulate(freq_.begin(), freq_.end(), u64{0});
    RECOIL_CHECK(total == L, "tANS frequencies must sum to 2^table_log");

    // Duda/FSE symbol spread: a stride coprime with L scatters each symbol's
    // states quasi-uniformly over the table.
    std::vector<u16> spread(L);
    const u32 step = (L >> 1) + (L >> 3) + 3;
    u32 pos = 0;
    for (u32 s = 0; s < freq_.size(); ++s) {
        for (u32 k = 0; k < freq_[s]; ++k) {
            spread[pos] = static_cast<u16>(s);
            pos = (pos + step) & (L - 1);
        }
    }
    RECOIL_CHECK(pos == 0, "spread did not cover the table exactly");

    enc_base_.resize(freq_.size(), 0);
    u32 acc = 0;
    for (u32 s = 0; s < freq_.size(); ++s) {
        enc_base_[s] = acc;
        acc += freq_[s];
    }
    enc_states_.resize(L);
    dec_.resize(L);
    std::vector<u32> next(freq_.begin(), freq_.end());
    for (u32 slot = 0; slot < L; ++slot) {
        const u32 s = spread[slot];
        const u32 x_small = next[s]++;  // in [freq, 2*freq)
        const u32 nbits = table_log_ - (std::bit_width(x_small) - 1);
        dec_[slot] = DecodeEntry{static_cast<u16>(s), static_cast<u8>(nbits),
                                 static_cast<u16>((x_small << nbits) - L)};
        enc_states_[enc_base_[s] + (x_small - freq_[s])] = static_cast<u16>(slot);
    }
}

}  // namespace recoil
