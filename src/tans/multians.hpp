#pragma once
// Baseline (C): a multians-style massively parallel tANS decoder
// (Weißenberger & Schmidt, ICPP'19; paper §2.4). The bitstream is cut into
// fixed-size word segments carrying no metadata; each segment is decoded
// speculatively from a guessed (bit position, state) entry, relying on tANS
// self-synchronization. Entries are refined by a parallel fixpoint
// iteration: segment i's correct entry is segment i+1's exit, and the top
// segment's entry is exact (header state), so the iteration converges in at
// most #segments rounds — quickly when the table is small and trajectories
// self-synchronize, catastrophically slowly at table_log=16, which
// reproduces the paper's multians findings.

#include <span>
#include <vector>

#include "tans/tans_codec.hpp"
#include "util/thread_pool.hpp"

namespace recoil {

struct MultiansStats {
    u32 segments = 0;
    u32 rounds = 0;
    bool converged = false;       ///< fixpoint reached within the round cap
    bool serial_fallback = false; ///< cap hit; finished with a serial decode
    u64 work_symbols = 0;         ///< total speculative decode work performed
};

struct MultiansOptions {
    u32 words_per_segment = 4096;
    u32 max_rounds = 48;  ///< after this the decoder falls back to serial
};

/// Parallel self-synchronizing decode into a caller buffer of
/// enc.num_symbols elements; bit-exact with tans_decode().
template <typename TSym>
void multians_decode_into(const TansEncoded& enc, const TansTable& table,
                          std::span<TSym> out, const MultiansOptions& opt = {},
                          ThreadPool* pool = nullptr, MultiansStats* stats = nullptr);

/// Allocating convenience wrapper.
template <typename TSym>
std::vector<TSym> multians_decode(const TansEncoded& enc, const TansTable& table,
                                  const MultiansOptions& opt = {},
                                  ThreadPool* pool = nullptr,
                                  MultiansStats* stats = nullptr) {
    std::vector<TSym> out(enc.num_symbols);
    multians_decode_into<TSym>(enc, table, std::span<TSym>(out), opt, pool, stats);
    return out;
}

extern template void multians_decode_into<u8>(const TansEncoded&, const TansTable&,
                                              std::span<u8>, const MultiansOptions&,
                                              ThreadPool*, MultiansStats*);
extern template void multians_decode_into<u16>(const TansEncoded&, const TansTable&,
                                               std::span<u16>, const MultiansOptions&,
                                               ThreadPool*, MultiansStats*);

}  // namespace recoil
