#pragma once
// Random access: decode only a sub-range of symbols from a Recoil stream.
// A capability that falls out of the split metadata: the splits covering
// [lo, hi) are independently decodable, so a client can fetch/decode only
// the bitstream region it needs — impossible with a plain interleaved rANS
// stream, and one more reason the metadata records symbol indices (§3.1).

#include <algorithm>
#include <vector>

#include "core/recoil_decoder.hpp"

namespace recoil {

/// The split indices and covered symbol span needed to decode [lo, hi).
struct RangePlan {
    u32 first_split = 0;
    u32 last_split = 0;   ///< inclusive
    u64 cover_lo = 0;     ///< first symbol the chosen splits produce
    u64 cover_hi = 0;     ///< one past the last
};

/// Which splits must run to produce symbols [lo, hi)?
/// Thread k *writes* positions [min_{k-1}, min_k): its decoding phase covers
/// (anchor_{k-1}, min_k) and its cross-boundary phase [min_{k-1},
/// anchor_{k-1}]; split k's own sync section [min_k, anchor_k] is written by
/// thread k+1. So the owner of position p is the first split whose
/// min_index exceeds p.
inline RangePlan plan_range(const RecoilMetadata& meta, u64 lo, u64 hi) {
    RECOIL_CHECK(lo < hi && hi <= meta.num_symbols, "plan_range: bad range");
    const u32 S = meta.num_splits();
    auto owner = [&](u64 pos) {
        // min_index is strictly ascending (validated), so the first split
        // whose min_index exceeds pos is a binary search, not an O(S) scan —
        // this runs on every range request and S reaches 2176+.
        auto it = std::upper_bound(
            meta.splits.begin(), meta.splits.end(), pos,
            [](u64 p, const SplitPoint& sp) { return p < sp.min_index; });
        return static_cast<u32>(it - meta.splits.begin());  // S-1 past the end
    };
    RangePlan plan;
    plan.first_split = owner(lo);
    plan.last_split = owner(hi - 1);
    plan.cover_lo = plan.first_split == 0
                        ? 0
                        : meta.splits[plan.first_split - 1].min_index;
    plan.cover_hi = plan.last_split >= S - 1
                        ? meta.num_symbols
                        : meta.splits[plan.last_split].min_index;
    return plan;
}

/// One past the highest symbol position the plan's covering splits *touch*.
/// Decoding writes only [cover_lo, cover_hi), but the last covering split's
/// synchronization phase decodes (and discards) positions up to its anchor,
/// so per-position side information — an indexed model's ids — must be
/// available up to here, not just cover_hi.
inline u64 plan_touch_hi(const RecoilMetadata& meta, const RangePlan& plan) {
    return plan.last_split >= meta.num_splits() - 1
               ? meta.num_symbols
               : meta.splits[plan.last_split].anchor_index + 1;
}

/// Decode splits [k_lo, k_hi] of `meta` into a fresh buffer covering
/// absolute symbol positions [cover_lo, cover_hi). Decode paths index the
/// output by absolute symbol position; the buffer is rebased so position
/// cover_lo lands at index 0. Every write of the chosen splits falls inside
/// [cover_lo, cover_hi), so all dereferences are in bounds; the rebased
/// pointer itself is formed via integer arithmetic to stay clear of
/// out-of-bounds pointer UB. Shared by recoil_decode_range and the serve
/// subsystem's range-wire decoder. Callers whose per-position side
/// information (an indexed model's ids) exists only on a slice of positions
/// pass a simd::GuardedSimdRangeFn bounded by that slice: vector body on
/// the interior, scalar position-exact loop near the edges.
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym,
          typename RangeFn = ScalarRangeFn<Cfg, NLanes, TSym>>
std::vector<TSym> recoil_decode_cover(std::span<const typename Cfg::UnitT> units,
                                      const RecoilMetadata& meta,
                                      const DecodeTables& t, u32 k_lo, u32 k_hi,
                                      u64 cover_lo, u64 cover_hi,
                                      ThreadPool* pool = nullptr,
                                      const RangeFn& range_fn = {}) {
    std::vector<TSym> cover(cover_hi - cover_lo);
    TSym* rebased = reinterpret_cast<TSym*>(
        reinterpret_cast<std::uintptr_t>(cover.data()) -
        static_cast<std::uintptr_t>(cover_lo) * sizeof(TSym));
    for_each_index(pool, u64{k_hi} - k_lo + 1, [&](u64 i) {
        recoil_decode_split<Cfg, NLanes, TSym>(
            units, meta, t, k_lo + static_cast<u32>(i), rebased, nullptr,
            range_fn);
    });
    return cover;
}

/// Decode symbols [lo, hi) only. Cost is proportional to the covering
/// splits, not the stream; with M splits over N symbols, expect
/// ~(hi - lo) + N/M symbols of work.
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym,
          typename RangeFn = ScalarRangeFn<Cfg, NLanes, TSym>>
std::vector<TSym> recoil_decode_range(std::span<const typename Cfg::UnitT> units,
                                      const RecoilMetadata& meta,
                                      const DecodeTables& t, u64 lo, u64 hi,
                                      ThreadPool* pool = nullptr,
                                      const RangeFn& range_fn = {}) {
    const RangePlan plan = plan_range(meta, lo, hi);
    auto cover = recoil_decode_cover<Cfg, NLanes, TSym>(
        units, meta, t, plan.first_split, plan.last_split, plan.cover_lo,
        plan.cover_hi, pool, range_fn);
    return std::vector<TSym>(cover.begin() + static_cast<std::ptrdiff_t>(lo - plan.cover_lo),
                             cover.begin() + static_cast<std::ptrdiff_t>(hi - plan.cover_lo));
}

}  // namespace recoil
