#include "core/split_planner.hpp"

#include "util/error.hpp"

namespace recoil {

std::vector<SplitPoint> plan_splits(std::span<const RenormEvent> events,
                                    u64 num_symbols, u32 max_splits, u32 lanes,
                                    const PlannerOptions& opt) {
    if (max_splits <= 1 || num_symbols == 0 || events.empty()) return {};
    OnlinePlanner planner(num_symbols, max_splits, lanes, opt);
    for (const RenormEvent& e : events) planner.push_back(e);
    return planner.finish();
}

RecoilMetadata combine_splits(const RecoilMetadata& meta, u32 target_splits) {
    RECOIL_CHECK(target_splits >= 1, "combine_splits: target must be >= 1");
    RecoilMetadata out;
    out.lanes = meta.lanes;
    out.state_store_bits = meta.state_store_bits;
    out.num_symbols = meta.num_symbols;
    out.num_units = meta.num_units;
    out.final_states = meta.final_states;
    if (target_splits >= meta.num_splits()) {
        out.splits = meta.splits;
        return out;
    }
    // Keep the interior anchors nearest to the ideal equal-symbol boundaries
    // i * N / target. Dropping entries never invalidates metadata: gaps only
    // grow, so min_index > previous-kept-anchor still holds.
    out.splits.reserve(target_splits - 1);
    std::size_t cursor = 0;
    for (u32 i = 1; i < target_splits; ++i) {
        const u64 ideal = meta.num_symbols / target_splits * i;
        // First split with anchor >= ideal (splits are ascending).
        while (cursor < meta.splits.size() &&
               meta.splits[cursor].anchor_index < ideal)
            ++cursor;
        std::size_t pick;
        if (cursor == 0) {
            pick = 0;
        } else if (cursor >= meta.splits.size()) {
            pick = meta.splits.size() - 1;
        } else {
            const u64 over = meta.splits[cursor].anchor_index - ideal;
            const u64 under = ideal - meta.splits[cursor - 1].anchor_index;
            pick = (under <= over) ? cursor - 1 : cursor;
        }
        if (!out.splits.empty() &&
            meta.splits[pick].anchor_index <= out.splits.back().anchor_index)
            continue;  // already used; a denser target than available entries
        out.splits.push_back(meta.splits[pick]);
    }
    return out;
}

}  // namespace recoil
