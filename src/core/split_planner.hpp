#pragma once
// Split planning (§4.2): choose bitstream split points among the recorded
// renormalization events so that the per-thread workload is balanced and the
// synchronization sections stay small, by minimizing the paper's heuristic
//   H(t, ts) = |t - T| + |t - ts - T|,  T = ceil(N / M).

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "core/metadata.hpp"
#include "rans/renorm_event.hpp"
#include "util/ints.hpp"

namespace recoil {

struct PlannerOptions {
    /// Candidate window, as fractions of the per-split target T, searched
    /// around each split's absolute ideal position k*N/M. Anchoring the
    /// window at the absolute position (rather than previous anchor + T)
    /// keeps the schedule from drifting: H's optimum lies near T + ts/2, so
    /// relative targeting would overshoot by ts/2 per split.
    double window_below = 0.50;
    double window_above = 0.90;
};

namespace detail {

/// Rolling per-lane snapshot of the latest renormalization event, with an
/// amortized-O(1) running minimum: per-lane indices only grow, so the min
/// needs a rescan only when the min-holding lane itself advances.
struct LaneTracker {
    std::vector<u64> index;
    std::vector<u32> state;
    std::vector<u64> offset;
    u32 seen = 0;  // number of lanes with at least one event
    u32 min_lane = 0;

    explicit LaneTracker(u32 lanes)
        : index(lanes, std::numeric_limits<u64>::max()),
          state(lanes, 0),
          offset(lanes, 0) {}

    void update(const RenormEvent& e) {
        if (index[e.lane] == std::numeric_limits<u64>::max()) ++seen;
        const bool was_min = e.lane == min_lane;
        index[e.lane] = e.sym_index;
        state[e.lane] = e.state;
        offset[e.lane] = e.offset;
        if (was_min) {
            u32 best = 0;
            for (u32 l = 1; l < index.size(); ++l)
                if (index[l] < index[best]) best = l;
            min_lane = best;
        } else if (index[e.lane] < index[min_lane]) {
            min_lane = e.lane;
        }
    }
    u64 min_index() const { return index[min_lane]; }
};

}  // namespace detail

/// Streaming split planner: consumes renormalization events *during*
/// encoding (as an interleaved_encode event sink), so no event list is ever
/// materialized. Chooses up to max_splits-1 interior split points by the
/// Definition 4.1 heuristic; a split point is valid only if every lane has
/// renormalized since the previous anchor (min_index > previous anchor),
/// which the 3-phase decoder requires.
class OnlinePlanner {
public:
    OnlinePlanner(u64 num_symbols, u32 max_splits, u32 lanes,
                  const PlannerOptions& opt = {})
        : num_symbols_(num_symbols),
          max_splits_(std::max(max_splits, 1u)),
          lanes_(lanes),
          opt_(opt),
          target_(static_cast<i64>(
              ceil_div<u64>(std::max<u64>(num_symbols, 1), max_splits_))),
          tracker_(lanes) {
        recompute_window();
    }

    /// Event-sink hook for interleaved_encode (events arrive in write order).
    void push_back(const RenormEvent& e) {
        if (done()) return;
        const i64 anchor = static_cast<i64>(e.sym_index);
        // Close windows the event has already passed (without consuming it).
        while (!done() && anchor > hi_ && have_best_) commit();
        if (done()) return;

        tracker_.update(e);
        if (anchor < lo_) return;
        if (tracker_.seen < lanes_) return;
        const i64 min_index = static_cast<i64>(tracker_.min_index());
        if (min_index > prev_anchor_) {  // sync section must not cross back
            const i64 t = anchor - prev_anchor_;
            const i64 ts = anchor - min_index + 1;
            const i64 h = habs(t - target_) + habs(t - ts - target_);  // Def. 4.1
            if (h < best_h_) {
                best_h_ = h;
                best_.offset = e.offset;
                best_.anchor_index = e.sym_index;
                best_.min_index = static_cast<u64>(min_index);
                best_.states = tracker_.state;
                best_.indices = tracker_.index;
                have_best_ = true;
            }
        }
        if (anchor > hi_) {
            // Past the window with this event consumed: either the best so
            // far wins, or this slot is unplaceable at this granularity.
            if (have_best_) {
                commit();
            } else {
                ++k_;
                recompute_window();
            }
        }
    }

    /// Commit any pending candidate and return the split points (ascending).
    std::vector<SplitPoint> finish() {
        if (!done() && have_best_) commit();
        return std::move(out_);
    }

private:
    static i64 habs(i64 v) { return v < 0 ? -v : v; }
    bool done() const { return k_ >= max_splits_; }

    void recompute_window() {
        if (done()) return;
        const i64 ideal = static_cast<i64>(u64{k_} * num_symbols_ / max_splits_);
        lo_ = std::max<i64>(prev_anchor_ + 1,
                            ideal - static_cast<i64>(target_ * opt_.window_below));
        hi_ = std::max<i64>(lo_ + 1,
                            ideal + static_cast<i64>(target_ * opt_.window_above));
    }

    void commit() {
        prev_anchor_ = static_cast<i64>(best_.anchor_index);
        out_.push_back(std::move(best_));
        best_ = SplitPoint{};
        have_best_ = false;
        best_h_ = std::numeric_limits<i64>::max();
        ++k_;
        if (static_cast<u64>(prev_anchor_) + 1 >= num_symbols_) k_ = max_splits_;
        recompute_window();
    }

    u64 num_symbols_;
    u32 max_splits_;
    u32 lanes_;
    PlannerOptions opt_;
    i64 target_;
    detail::LaneTracker tracker_;

    u32 k_ = 1;  // split currently being placed (1 .. max_splits-1)
    i64 prev_anchor_ = -1;
    i64 lo_ = 0, hi_ = 0;
    bool have_best_ = false;
    i64 best_h_ = std::numeric_limits<i64>::max();
    SplitPoint best_;
    std::vector<SplitPoint> out_;
};

/// Plan from a materialized event list (wraps OnlinePlanner). Returns the
/// chosen split points in ascending anchor order; fewer than requested may
/// be returned if the stream is too short or too incompressible.
std::vector<SplitPoint> plan_splits(std::span<const RenormEvent> events,
                                    u64 num_symbols, u32 max_splits, u32 lanes,
                                    const PlannerOptions& opt = {});

/// Decoder-adaptive scaling (§3.3): reduce metadata to at most
/// `target_splits` splits by dropping interior entries, keeping the kept
/// anchors as close as possible to the ideal equal-symbol boundaries.
/// O(M) over metadata only; the bitstream is untouched.
RecoilMetadata combine_splits(const RecoilMetadata& meta, u32 target_splits);

}  // namespace recoil
