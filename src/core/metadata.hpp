#pragma once
// In-memory representation of Recoil split metadata (§3.1, §4.1). The
// metadata is deliberately independent of the rANS bitstream: combining
// splits (§3.3) only rewrites this structure, never the bitstream.

#include <vector>

#include "util/ints.hpp"

namespace recoil {

/// One split point: everything a decoder thread needs to start decoding at
/// an intermediate position of the interleaved bitstream.
struct SplitPoint {
    u64 offset = 0;        ///< unit index of the anchor's renormalization output
    u64 anchor_index = 0;  ///< max recorded symbol index ("Max Symbol Group ID")
    u64 min_index = 0;     ///< min recorded symbol index (sync completion point)
    std::vector<u32> states;   ///< per-lane post-renorm state, < lower bound
    std::vector<u64> indices;  ///< per-lane recorded symbol index

    u64 sync_symbols() const noexcept { return anchor_index - min_index + 1; }
};

/// Full metadata for one Recoil-encoded stream. `splits` holds the M-1
/// interior split points in ascending anchor order; the final "split" always
/// starts from `final_states` at the end of the bitstream, so M splits need
/// only M-1 metadata entries.
struct RecoilMetadata {
    u32 lanes = 0;
    u32 state_store_bits = 0;  ///< bits per stored intermediate state (= log2 L)
    u64 num_symbols = 0;
    u64 num_units = 0;         ///< bitstream length in renormalization units
    std::vector<u32> final_states;  ///< lanes entries, stored as-is (32-bit)
    std::vector<SplitPoint> splits;

    u32 num_splits() const noexcept { return static_cast<u32>(splits.size()) + 1; }
};

/// Decode-side statistics used by the benches and the GPU simulator.
struct RecoilDecodeStats {
    u64 sync_symbols = 0;      ///< discarded synchronization-phase decodes
    u64 cross_symbols = 0;     ///< cross-boundary phase decodes
    u64 skipped_positions = 0; ///< sync-phase positions with uninitialized lane
};

}  // namespace recoil
