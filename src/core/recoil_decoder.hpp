#pragma once
// The Recoil 3-phase parallel decoder (§4.1). Each split is an independent
// work item:
//   1. Synchronization phase — walk positions anchor..min_index descending,
//      initializing each lane when its recorded symbol index is reached
//      (state only, no read: the stored state is < L, so the lane's first
//      per-symbol decode pops at exactly the recorded offset) and decoding
//      positions whose lane is live; outputs are discarded.
//   2. Decoding phase — ordinary interleaved decode down to just above the
//      previous split's anchor.
//   3. Cross-boundary phase — decode the previous split's synchronization
//      section (its thread discarded those), stopping at its min_index.
// Split 0 continues to position 0 and drains the first symbol group's units.
//
// The phase-2/3 inner loop is pluggable (`RangeFn`) so the SIMD kernels and
// the GPU simulator reuse this orchestration; the default is the scalar
// per-symbol loop.

#include <exception>
#include <span>
#include <vector>

#include "core/metadata.hpp"
#include "rans/interleaved.hpp"
#include "util/thread_pool.hpp"

namespace recoil {

/// Scalar range decoder: the default RangeFn.
template <typename Cfg, u32 NLanes, typename TSym>
struct ScalarRangeFn {
    void operator()(LaneCursor<Cfg, NLanes>& cur,
                    std::span<const typename Cfg::UnitT> units, u64 hi, u64 lo,
                    const DecodeTables& t, TSym* out) const {
        decode_positions<Cfg, NLanes>(cur, units, hi, lo, t, out);
    }
};

/// Decode one split (index `k` of `meta.num_splits()`), writing its owned
/// symbol range into `out` (which must have meta.num_symbols capacity).
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym,
          typename RangeFn = ScalarRangeFn<Cfg, NLanes, TSym>>
void recoil_decode_split(std::span<const typename Cfg::UnitT> units,
                         const RecoilMetadata& meta, const DecodeTables& t,
                         u32 k, TSym* out, RecoilDecodeStats* stats = nullptr,
                         const RangeFn& range_fn = {}) {
    RECOIL_CHECK(meta.lanes == NLanes, "recoil_decode_split: lane count mismatch");
    const u32 S = meta.num_splits();
    RECOIL_CHECK(k < S, "recoil_decode_split: split index out of range");
    const SplitPoint* prev = (k > 0) ? &meta.splits[k - 1] : nullptr;

    LaneCursor<Cfg, NLanes> cur;
    u64 phase2_hi;

    if (k == S - 1) {
        // Final split: starts fully initialized from the header's states.
        for (u32 l = 0; l < NLanes; ++l)
            cur.x[l] = static_cast<typename Cfg::StateT>(meta.final_states[l]);
        cur.p = static_cast<i64>(meta.num_units) - 1;
        if (meta.num_symbols == 0) return;
        phase2_hi = meta.num_symbols - 1;
    } else {
        // Phase 1: synchronization.
        const SplitPoint& sp = meta.splits[k];
        cur.p = static_cast<i64>(sp.offset);
        bool live[NLanes] = {};
        for (u64 pos = sp.anchor_index + 1; pos-- > sp.min_index;) {
            const u32 lane = static_cast<u32>(pos % NLanes);
            if (!live[lane]) {
                if (sp.indices[lane] != pos) {
                    if (stats) ++stats->skipped_positions;
                    continue;  // lane not yet recoverable here
                }
                cur.x[lane] = static_cast<typename Cfg::StateT>(sp.states[lane]);
                live[lane] = true;
            }
            decode_positions<Cfg, NLanes, TSym>(cur, units, pos, pos, t, nullptr);
            if (stats) ++stats->sync_symbols;
        }
        if (sp.min_index == 0) {
            // Degenerate: the sync section reaches the stream start.
            drain_start<Cfg, NLanes>(cur, units, meta.num_symbols);
            return;
        }
        phase2_hi = sp.min_index - 1;
    }

    // Phase 2: normal decoding down to the previous anchor (exclusive).
    const u64 phase2_lo = prev ? prev->anchor_index + 1 : 0;
    if (phase2_hi + 1 > phase2_lo)
        range_fn(cur, units, phase2_hi, phase2_lo, t, out);

    if (prev) {
        // Phase 3: cross-boundary decoding of the previous sync section.
        range_fn(cur, units, prev->anchor_index, prev->min_index, t, out);
        if (stats) stats->cross_symbols += prev->sync_symbols();
        if (prev->min_index == 0) drain_start<Cfg, NLanes>(cur, units, meta.num_symbols);
    } else {
        drain_start<Cfg, NLanes>(cur, units, meta.num_symbols);
    }
}

/// Decode a full Recoil stream into a caller-provided buffer of
/// meta.num_symbols elements (the benches use this to measure decode work
/// only, as the paper measures kernel execution). `pool == nullptr` decodes
/// splits serially on the calling thread (still exercising the 3-phase
/// logic); otherwise splits run across the pool. Exceptions from workers are
/// rethrown to the caller.
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym,
          typename RangeFn = ScalarRangeFn<Cfg, NLanes, TSym>>
void recoil_decode_into(std::span<const typename Cfg::UnitT> units,
                        const RecoilMetadata& meta, const DecodeTables& t,
                        std::span<TSym> out, ThreadPool* pool = nullptr,
                        RecoilDecodeStats* stats = nullptr,
                        const RangeFn& range_fn = {}) {
    RECOIL_CHECK(out.size() >= meta.num_symbols, "recoil_decode_into: buffer too small");
    const u32 S = meta.num_splits();
    std::vector<RecoilDecodeStats> per_split(stats ? S : 0);

    for_each_index(pool, S, [&](u64 k) {
        recoil_decode_split<Cfg, NLanes, TSym>(units, meta, t, static_cast<u32>(k),
                                               out.data(),
                                               stats ? &per_split[k] : nullptr,
                                               range_fn);
    });

    if (stats) {
        for (const auto& s : per_split) {
            stats->sync_symbols += s.sync_symbols;
            stats->cross_symbols += s.cross_symbols;
            stats->skipped_positions += s.skipped_positions;
        }
    }
}

/// Allocating convenience wrapper around recoil_decode_into.
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym,
          typename RangeFn = ScalarRangeFn<Cfg, NLanes, TSym>>
std::vector<TSym> recoil_decode(std::span<const typename Cfg::UnitT> units,
                                const RecoilMetadata& meta, const DecodeTables& t,
                                ThreadPool* pool = nullptr,
                                RecoilDecodeStats* stats = nullptr,
                                const RangeFn& range_fn = {}) {
    std::vector<TSym> out(meta.num_symbols);
    recoil_decode_into<Cfg, NLanes, TSym>(units, meta, t, std::span<TSym>(out), pool,
                                          stats, range_fn);
    return out;
}

}  // namespace recoil
