#include "core/metadata_codec.hpp"

#include <algorithm>
#include <limits>

#include "util/bitio.hpp"
#include "util/error.hpp"

namespace recoil {

namespace {

constexpr u32 kGlobalLenBits = 5;  // series elements up to 32-bit magnitudes
constexpr u32 kLaneLenBits = 4;    // series elements up to 16-bit magnitudes

void write_signed_series(BitWriter& bw, std::span<const i64> vals, u32 len_bits) {
    u32 maxbits = 1;
    for (i64 v : vals) maxbits = std::max(maxbits, bits_for(static_cast<u64>(v < 0 ? -v : v)));
    RECOIL_CHECK(maxbits <= (u32{1} << len_bits), "metadata series element too wide");
    bw.put(maxbits - 1, len_bits);
    for (i64 v : vals) bw.put_signed(v, maxbits);
}

std::vector<i64> read_signed_series(BitReader& br, std::size_t count, u32 len_bits) {
    const u32 maxbits = static_cast<u32>(br.get(len_bits)) + 1;
    std::vector<i64> vals(count);
    for (auto& v : vals) v = br.get_signed(maxbits);
    return vals;
}

void write_unsigned_series(BitWriter& bw, std::span<const u64> vals, u32 len_bits) {
    u32 maxbits = 1;
    for (u64 v : vals) maxbits = std::max(maxbits, bits_for(v));
    RECOIL_CHECK(maxbits <= (u32{1} << len_bits), "metadata series element too wide");
    bw.put(maxbits - 1, len_bits);
    for (u64 v : vals) bw.put(v, maxbits);
}

std::vector<u64> read_unsigned_series(BitReader& br, std::size_t count, u32 len_bits) {
    const u32 maxbits = static_cast<u32>(br.get(len_bits)) + 1;
    std::vector<u64> vals(count);
    for (auto& v : vals) v = br.get(maxbits);
    return vals;
}

void put_u64(std::vector<u8>& out, u64 v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

u64 get_u64(std::span<const u8> in, std::size_t& pos) {
    if (pos + 8 > in.size()) raise("metadata: truncated header");
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= u64{in[pos + i]} << (8 * i);
    pos += 8;
    return v;
}

}  // namespace

std::vector<u8> serialize_metadata(const RecoilMetadata& meta) {
    validate_metadata(meta);
    std::vector<u8> out;
    out.reserve(64 + meta.splits.size() * (meta.lanes * meta.state_store_bits / 8 + 16));

    // ---- fixed header -----------------------------------------------------
    out.push_back('R');
    out.push_back('C');
    out.push_back('M');
    out.push_back('1');
    out.push_back(static_cast<u8>(meta.lanes));
    out.push_back(static_cast<u8>(meta.state_store_bits));
    out.push_back(0);
    out.push_back(0);
    put_u64(out, meta.num_symbols);
    put_u64(out, meta.num_units);
    put_u64(out, meta.num_splits());
    for (u32 s : meta.final_states) {
        out.push_back(static_cast<u8>(s));
        out.push_back(static_cast<u8>(s >> 8));
        out.push_back(static_cast<u8>(s >> 16));
        out.push_back(static_cast<u8>(s >> 24));
    }

    // ---- bit-packed difference series ------------------------------------
    BitWriter bw;
    const u64 M = meta.num_splits();
    const u64 entries = meta.splits.size();
    if (entries > 0) {
        const u64 expected_unit = ceil_div<u64>(meta.num_units, M);
        const u64 groups = ceil_div<u64>(meta.num_symbols, meta.lanes);
        const u64 expected_group = ceil_div<u64>(groups, M);

        std::vector<i64> off_diffs(entries), grp_diffs(entries);
        for (u64 i = 0; i < entries; ++i) {
            const SplitPoint& sp = meta.splits[i];
            off_diffs[i] = static_cast<i64>(sp.offset) -
                           static_cast<i64>((i + 1) * expected_unit);
            grp_diffs[i] = static_cast<i64>(sp.anchor_index / meta.lanes) -
                           static_cast<i64>((i + 1) * expected_group);
        }
        write_signed_series(bw, off_diffs, kGlobalLenBits);
        write_signed_series(bw, grp_diffs, kGlobalLenBits);

        for (const SplitPoint& sp : meta.splits) {
            const u64 anchor_group = sp.anchor_index / meta.lanes;
            std::vector<u64> lane_diffs(meta.lanes);
            for (u32 l = 0; l < meta.lanes; ++l) {
                bw.put(sp.states[l], meta.state_store_bits);
                lane_diffs[l] = anchor_group - sp.indices[l] / meta.lanes;
            }
            write_unsigned_series(bw, lane_diffs, kLaneLenBits);
        }
    }
    std::vector<u8> packed = bw.finish();
    out.insert(out.end(), packed.begin(), packed.end());
    return out;
}

RecoilMetadata deserialize_metadata(std::span<const u8> bytes) {
    if (bytes.size() < 8 || bytes[0] != 'R' || bytes[1] != 'C' || bytes[2] != 'M' ||
        bytes[3] != '1')
        raise("metadata: bad magic");
    RecoilMetadata meta;
    meta.lanes = bytes[4];
    meta.state_store_bits = bytes[5];
    if (meta.lanes == 0 || meta.lanes > 128) raise("metadata: bad lane count");
    if (meta.state_store_bits < 8 || meta.state_store_bits > 31)
        raise("metadata: bad state width");
    std::size_t pos = 8;
    meta.num_symbols = get_u64(bytes, pos);
    meta.num_units = get_u64(bytes, pos);
    const u64 M = get_u64(bytes, pos);
    if (M == 0 || M > (u64{1} << 32)) raise("metadata: bad split count");
    if (pos + 4 * meta.lanes > bytes.size()) raise("metadata: truncated final states");
    meta.final_states.resize(meta.lanes);
    for (u32 l = 0; l < meta.lanes; ++l) {
        meta.final_states[l] = static_cast<u32>(bytes[pos]) |
                               (static_cast<u32>(bytes[pos + 1]) << 8) |
                               (static_cast<u32>(bytes[pos + 2]) << 16) |
                               (static_cast<u32>(bytes[pos + 3]) << 24);
        pos += 4;
    }

    const u64 entries = M - 1;
    if (entries > 0) {
        BitReader br(bytes.subspan(pos));
        const u64 expected_unit = ceil_div<u64>(meta.num_units, M);
        const u64 groups = ceil_div<u64>(meta.num_symbols, meta.lanes);
        const u64 expected_group = ceil_div<u64>(groups, M);
        const auto off_diffs = read_signed_series(br, entries, kGlobalLenBits);
        const auto grp_diffs = read_signed_series(br, entries, kGlobalLenBits);
        meta.splits.resize(entries);
        for (u64 i = 0; i < entries; ++i) {
            SplitPoint& sp = meta.splits[i];
            const i64 off = static_cast<i64>((i + 1) * expected_unit) + off_diffs[i];
            const i64 grp = static_cast<i64>((i + 1) * expected_group) + grp_diffs[i];
            if (off < 0 || grp < 0) raise("metadata: negative reconstructed value");
            sp.offset = static_cast<u64>(off);
            sp.states.resize(meta.lanes);
            sp.indices.resize(meta.lanes);
            u64 min_index = std::numeric_limits<u64>::max();
            u64 max_index = 0;
            for (u32 l = 0; l < meta.lanes; ++l) {
                sp.states[l] = static_cast<u32>(br.get(meta.state_store_bits));
            }
            const auto lane_diffs = read_unsigned_series(br, meta.lanes, kLaneLenBits);
            for (u32 l = 0; l < meta.lanes; ++l) {
                const i64 lane_grp = grp - static_cast<i64>(lane_diffs[l]);
                if (lane_grp < 0) raise("metadata: negative lane group");
                sp.indices[l] = static_cast<u64>(lane_grp) * meta.lanes + l;
                min_index = std::min(min_index, sp.indices[l]);
                max_index = std::max(max_index, sp.indices[l]);
            }
            sp.anchor_index = max_index;
            sp.min_index = min_index;
            if (sp.anchor_index / meta.lanes != static_cast<u64>(grp))
                raise("metadata: anchor group mismatch");
        }
    }
    validate_metadata(meta);
    return meta;
}

void validate_metadata(const RecoilMetadata& meta) {
    if (meta.lanes == 0) raise("metadata: zero lanes");
    if (meta.final_states.size() != meta.lanes) raise("metadata: final state count");
    if (meta.state_store_bits < 8 || meta.state_store_bits > 31)
        raise("metadata: bad state width");
    const u32 lower_bound_log2 = meta.state_store_bits;
    i64 prev_anchor = -1;
    u64 prev_offset = 0;
    bool first = true;
    for (const SplitPoint& sp : meta.splits) {
        if (sp.states.size() != meta.lanes || sp.indices.size() != meta.lanes)
            raise("metadata: lane array size mismatch");
        if (sp.offset >= meta.num_units) raise("metadata: split offset out of range");
        if (!first && sp.offset <= prev_offset) raise("metadata: offsets not increasing");
        if (sp.anchor_index >= meta.num_symbols) raise("metadata: anchor out of range");
        if (static_cast<i64>(sp.min_index) <= prev_anchor)
            raise("metadata: sync section crosses previous anchor");
        u64 min_index = std::numeric_limits<u64>::max();
        u64 max_index = 0;
        for (u32 l = 0; l < meta.lanes; ++l) {
            if (sp.states[l] >= (u32{1} << lower_bound_log2))
                raise("metadata: intermediate state above lower bound");
            if (sp.indices[l] % meta.lanes != l) raise("metadata: lane index misaligned");
            min_index = std::min(min_index, sp.indices[l]);
            max_index = std::max(max_index, sp.indices[l]);
        }
        if (min_index != sp.min_index || max_index != sp.anchor_index)
            raise("metadata: min/anchor inconsistent with lane indices");
        prev_anchor = static_cast<i64>(sp.anchor_index);
        prev_offset = sp.offset;
        first = false;
    }
    if (!meta.splits.empty() &&
        meta.splits.back().anchor_index + 1 >= meta.num_symbols)
        raise("metadata: last split leaves no symbols for the final thread");
}

}  // namespace recoil
