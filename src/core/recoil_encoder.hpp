#pragma once
// Recoil encoding (§3–4): encode once with a single group of interleaved
// rANS coders, recording renormalization events, then plan split points and
// build the metadata that enables decoder-adaptive parallel decoding. The
// bitstream is byte-identical to a plain interleaved rANS bitstream — Recoil
// only adds detachable metadata.

#include <span>

#include "core/metadata.hpp"
#include "core/split_planner.hpp"
#include "rans/interleaved.hpp"

namespace recoil {

template <typename Cfg = Rans32, u32 NLanes = kLanes>
struct RecoilEncoded {
    InterleavedBitstream<Cfg, NLanes> bitstream;
    RecoilMetadata metadata;
};

/// Encode `syms` and prepare metadata for up to `max_splits`-way parallel
/// decoding. The content server calls this once with the largest parallelism
/// it intends to support and later serves combined (smaller) metadata to
/// less-parallel decoders via combine_splits().
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym, typename Model>
RecoilEncoded<Cfg, NLanes> recoil_encode(std::span<const TSym> syms, const Model& model,
                                         u32 max_splits,
                                         const PlannerOptions& opt = {}) {
    RecoilEncoded<Cfg, NLanes> out;
    // Streaming planner: split points are chosen while encoding, so the
    // renormalization events are never materialized.
    OnlinePlanner planner(syms.size(), max_splits, NLanes, opt);
    out.bitstream = interleaved_encode<Cfg, NLanes>(syms, model, &planner);

    RecoilMetadata& meta = out.metadata;
    meta.lanes = NLanes;
    meta.state_store_bits = Cfg::lower_bound_log2;
    meta.num_symbols = out.bitstream.num_symbols;
    meta.num_units = out.bitstream.units.size();
    meta.final_states.assign(out.bitstream.final_states.begin(),
                             out.bitstream.final_states.end());
    meta.splits = planner.finish();
    return out;
}

}  // namespace recoil
