#pragma once
// Serialized form of Recoil metadata (§4.3). Only differences from
// expectations are stored:
//  * header: M, B (units), N (symbols), lanes, state width, final states;
//  * one signed difference series for all bitstream offsets vs i*ceil(B/M);
//  * one signed difference series for all anchor groups vs i*ceil(G/M);
//  * per split: lane states raw (log2 L bits each) plus one unsigned
//    difference series of (anchor group - lane group), sign bits dropped
//    because the anchor is the maximum.
// Each series is prefixed by a (bit-length - 1) field: 4 bits for the lane
// group series (<= 16-bit values), 5 bits for the global series (<= 32-bit
// values), exactly as in the paper's worked example (Tables 1-2).

#include <span>
#include <vector>

#include "core/metadata.hpp"

namespace recoil {

/// Serialize metadata to bytes. Throws recoil::Error if a difference exceeds
/// the representable width (only possible on pathological inputs).
std::vector<u8> serialize_metadata(const RecoilMetadata& meta);

/// Parse and validate serialized metadata. Validation enforces the decoder's
/// preconditions: ascending offsets/anchors, min_index above the previous
/// anchor, states below the lower bound, offsets within the bitstream.
RecoilMetadata deserialize_metadata(std::span<const u8> bytes);

/// Validate an in-memory metadata object (same checks as deserialize).
void validate_metadata(const RecoilMetadata& meta);

}  // namespace recoil
