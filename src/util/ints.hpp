#pragma once
// Fixed-width integer aliases and small bit utilities used across the library.

#include <cstdint>
#include <cstddef>
#include <bit>

namespace recoil {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Number of bits needed to represent `v` (0 -> 1, per the paper's metadata
/// series rule: "we use one bit to represent zeros as well").
constexpr u32 bits_for(u64 v) noexcept {
    return v == 0 ? 1u : static_cast<u32>(std::bit_width(v));
}

/// Ceiling division for non-negative integers.
template <typename T>
constexpr T ceil_div(T a, T b) noexcept {
    return static_cast<T>((a + b - 1) / b);
}

}  // namespace recoil
