#include "util/cpu.hpp"

#include <cpuid.h>

#include "util/thread_pool.hpp"

namespace recoil {

namespace {

CpuFeatures detect() {
    CpuFeatures f;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
        f.avx2 = (ebx & (1u << 5)) != 0;
        const bool avx512f = (ebx & (1u << 16)) != 0;
        const bool avx512dq = (ebx & (1u << 17)) != 0;
        const bool avx512bw = (ebx & (1u << 30)) != 0;
        const bool avx512vl = (ebx & (1u << 31)) != 0;
        f.avx512 = avx512f && avx512dq && avx512bw && avx512vl;
    }
    return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
    static const CpuFeatures f = detect();
    return f;
}

ThreadPool& global_pool() {
    static ThreadPool pool;
    return pool;
}

}  // namespace recoil
