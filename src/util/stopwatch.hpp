#pragma once
// Wall-clock timing helpers for the benchmark harness.

#include <chrono>

namespace recoil {

class Stopwatch {
public:
    Stopwatch() : start_(clock::now()) {}
    void reset() { start_ = clock::now(); }
    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Throughput in GB/s (decimal GB, as in the paper: 1 KB = 1000 bytes).
inline double gbps(double bytes, double secs) {
    return secs > 0 ? bytes / secs / 1e9 : 0.0;
}

}  // namespace recoil
