#pragma once
// Runtime CPU feature detection for SIMD kernel dispatch.

namespace recoil {

struct CpuFeatures {
    bool avx2 = false;
    bool avx512 = false;  // F + BW + DQ + VL, the set the AVX512 kernels need
};

/// Detected once per process via cpuid.
const CpuFeatures& cpu_features();

}  // namespace recoil
