#pragma once
// Minimal work-stealing-free thread pool: a fixed set of workers pulling
// indexed tasks from an atomic counter. This matches the decoders' needs
// exactly (N independent splits / partitions / segments) and keeps the
// parallel paths free of per-task allocation.

#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/executor.hpp"
#include "util/ints.hpp"
#include "util/thread_annotations.hpp"

namespace recoil {

class ThreadPool {
public:
    explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency()) {
        if (threads == 0) threads = 1;
        workers_.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            workers_.emplace_back([this, t] {
                util::name_current_thread("recoil-pool", t);
                worker_loop();
            });
        }
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool() RECOIL_EXCLUDES(mu_) {
        {
            util::MutexLock lk(mu_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_) w.join();
    }

    unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

    /// Run body(i) for i in [0, count) across the pool; blocks until done.
    /// The calling thread participates, so a pool of size T uses T+1 lanes.
    void parallel_for(u64 count, const std::function<void(u64)>& body)
        RECOIL_EXCLUDES(mu_) {
        if (count == 0) return;
        if (count == 1 || workers_.empty()) {
            for (u64 i = 0; i < count; ++i) body(i);
            return;
        }
        // Each job is its own shared object: a straggler worker that is
        // still inside drain() when the job completes touches only its
        // snapshot, never the fields of the NEXT job (with inline job state
        // that straggler raced parallel_for's rewrite — caught by TSan).
        auto job = std::make_shared<Job>(&body, count);
        {
            util::MutexLock lk(mu_);
            job_ = job;
            ++generation_;
        }
        cv_.notify_all();
        drain(*job);  // caller helps
        {
            util::MutexLock lk(mu_);
            // Job::pending is atomic; the mutex only frames the sleep so a
            // worker's done_cv_ notify (taken under mu_) cannot slip between
            // the check and the wait.
            while (job->pending.load(std::memory_order_acquire) != 0) {
                done_cv_.wait(mu_);
            }
            job_ = nullptr;
        }
        // `body` may now be destroyed: no thread will claim another index
        // (next >= count), and stragglers keep the Job itself alive.
    }

private:
    struct Job {
        Job(const std::function<void(u64)>* b, u64 n)
            : body(b), count(n), pending(n) {}
        const std::function<void(u64)>* body;
        u64 count;
        std::atomic<u64> next{0};
        std::atomic<u64> pending;
    };

    void drain(Job& job) RECOIL_EXCLUDES(mu_) {
        for (;;) {
            const u64 i = job.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= job.count) return;
            (*job.body)(i);
            if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                util::MutexLock lk(mu_);
                done_cv_.notify_all();
            }
        }
    }

    void worker_loop() RECOIL_EXCLUDES(mu_) {
        u64 seen = 0;
        for (;;) {
            std::shared_ptr<Job> job;
            {
                util::MutexLock lk(mu_);
                while (!stopping_ && generation_ == seen) cv_.wait(mu_);
                if (stopping_) return;
                seen = generation_;
                job = job_;
            }
            if (job != nullptr) drain(*job);
        }
    }

    std::vector<std::thread> workers_;
    util::Mutex mu_;
    util::CondVar cv_;
    util::CondVar done_cv_;
    std::shared_ptr<Job> job_ RECOIL_GUARDED_BY(mu_);
    u64 generation_ RECOIL_GUARDED_BY(mu_) = 0;
    bool stopping_ RECOIL_GUARDED_BY(mu_) = false;
};

/// Process-wide pool used by decode paths when the caller does not supply one.
ThreadPool& global_pool();

/// Run body(i) for i in [0, count): inline when `pool` is null or the count
/// is 1, otherwise across the pool with the first worker exception rethrown
/// in the caller. The shared loop of every parallel decode path.
inline void for_each_index(ThreadPool* pool, u64 count,
                           const std::function<void(u64)>& body) {
    if (pool == nullptr || count <= 1) {
        for (u64 i = 0; i < count; ++i) body(i);
        return;
    }
    std::exception_ptr first_error;
    util::Mutex err_mu;
    pool->parallel_for(count, [&](u64 i) {
        try {
            body(i);
        } catch (...) {
            util::MutexLock lk(err_mu);
            if (!first_error) first_error = std::current_exception();
        }
    });
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace recoil
