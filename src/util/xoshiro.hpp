#pragma once
// xoshiro256** — fast, reproducible PRNG for workload generation. All dataset
// generators take explicit seeds so every experiment is bit-reproducible.

#include <array>

#include "util/ints.hpp"

namespace recoil {

class Xoshiro256 {
public:
    using result_type = u64;

    explicit Xoshiro256(u64 seed = 0x9e3779b97f4a7c15ull) {
        // splitmix64 seeding, as recommended by the xoshiro authors.
        u64 z = seed;
        for (auto& s : s_) {
            z += 0x9e3779b97f4a7c15ull;
            u64 x = z;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
            s = x ^ (x >> 31);
        }
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~u64{0}; }

    result_type operator()() noexcept {
        const u64 result = rotl(s_[1] * 5, 7) * 9;
        const u64 t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, n).
    u64 below(u64 n) noexcept { return (*this)() % n; }

private:
    static constexpr u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
    std::array<u64, 4> s_{};
};

}  // namespace recoil
