#pragma once
// RAII thread group for subsystems that need real OS threads but live in
// directories where naming std::thread is banned (tools/lint.py: serve/ and
// net/ must borrow their concurrency from util/). The two sanctioned thread
// substrates are the work-stealing Executor — for resumable, never-blocking
// tasks — and this helper, for loops that legitimately BLOCK in a syscall
// (epoll_wait, accept): such a loop parked on an executor worker would
// deadlock the pool, so it gets a dedicated named thread instead.
//
// Join discipline: join_all() (or destruction) blocks until every spawned
// thread returns. The caller is responsible for making its loops exit —
// e.g. the daemon's drain eventfd — before destroying the resources the
// threads use.

#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/executor.hpp"

namespace recoil::util {

class NamedThreads {
public:
    NamedThreads() = default;
    ~NamedThreads() { join_all(); }
    NamedThreads(const NamedThreads&) = delete;
    NamedThreads& operator=(const NamedThreads&) = delete;

    /// Start `fn` on a new thread named "<prefix><index>" (visible in
    /// /proc and debuggers via name_current_thread).
    void spawn(const char* prefix, unsigned index, std::function<void()> fn) {
        threads_.emplace_back(
            [prefix, index, fn = std::move(fn)] {
                name_current_thread(prefix, index);
                fn();
            });
    }

    std::size_t size() const noexcept { return threads_.size(); }

    /// Join every spawned thread; idempotent.
    void join_all() {
        for (std::thread& t : threads_)
            if (t.joinable()) t.join();
        threads_.clear();
    }

private:
    std::vector<std::thread> threads_;
};

}  // namespace recoil::util
