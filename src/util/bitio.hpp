#pragma once
// LSB-first bit-granular writer/reader used by the Recoil metadata codec
// (§4.3 difference series) and by the tANS bitstream.

#include <vector>
#include <cstring>
#include <span>

#include "util/ints.hpp"
#include "util/error.hpp"

namespace recoil {

/// Appends fields of 1..57 bits into a byte vector, LSB-first within the
/// 64-bit accumulator so that fields can be read back in write order.
class BitWriter {
public:
    void put(u64 value, u32 nbits) {
        RECOIL_CHECK(nbits >= 1 && nbits <= 57, "BitWriter field width out of range");
        RECOIL_CHECK(nbits == 64 || value < (u64{1} << nbits), "BitWriter value too wide");
        acc_ |= value << fill_;
        fill_ += nbits;
        while (fill_ >= 8) {
            bytes_.push_back(static_cast<u8>(acc_ & 0xff));
            acc_ >>= 8;
            fill_ -= 8;
        }
    }

    /// Signed value in `nbits` magnitude bits plus one sign bit.
    void put_signed(i64 value, u32 nbits) {
        const u64 mag = static_cast<u64>(value < 0 ? -value : value);
        put(mag, nbits);
        put(value < 0 ? 1 : 0, 1);
    }

    /// Flush the partial byte (zero-padded) and return the buffer.
    std::vector<u8> finish() {
        if (fill_ > 0) {
            bytes_.push_back(static_cast<u8>(acc_ & 0xff));
            acc_ = 0;
            fill_ = 0;
        }
        return std::move(bytes_);
    }

    /// Bits written so far (excluding padding).
    u64 bit_count() const noexcept { return bytes_.size() * 8 + fill_; }

private:
    std::vector<u8> bytes_;
    u64 acc_ = 0;
    u32 fill_ = 0;
};

/// Reads back fields written by BitWriter, in order.
class BitReader {
public:
    explicit BitReader(std::span<const u8> bytes) : bytes_(bytes) {}

    u64 get(u32 nbits) {
        RECOIL_CHECK(nbits >= 1 && nbits <= 57, "BitReader field width out of range");
        while (fill_ < nbits) {
            if (pos_ >= bytes_.size()) raise("BitReader: out of data");
            acc_ |= static_cast<u64>(bytes_[pos_++]) << fill_;
            fill_ += 8;
        }
        const u64 v = acc_ & ((u64{1} << nbits) - 1);
        acc_ >>= nbits;
        fill_ -= nbits;
        return v;
    }

    i64 get_signed(u32 nbits) {
        const u64 mag = get(nbits);
        const u64 sign = get(1);
        return sign ? -static_cast<i64>(mag) : static_cast<i64>(mag);
    }

    /// Bits consumed so far.
    u64 bit_count() const noexcept { return pos_ * 8 - fill_; }

private:
    std::span<const u8> bytes_;
    std::size_t pos_ = 0;
    u64 acc_ = 0;
    u32 fill_ = 0;
};

}  // namespace recoil
