#include "util/executor.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "util/error.hpp"

namespace recoil::util {

/// Linux caps thread names at 15 chars + NUL; silently truncate.
void name_current_thread(const std::string& prefix, unsigned index) {
#if defined(__linux__)
    std::string name = prefix + "-" + std::to_string(index);
    if (name.size() > 15) name.resize(15);
    pthread_setname_np(pthread_self(), name.c_str());
#else
    (void)prefix;
    (void)index;
#endif
}

namespace {

/// The worker slot the current thread occupies, when it belongs to an
/// Executor: submit() from inside a task targets the submitting worker's own
/// deque instead of round-robining (LIFO locality, no notify needed — this
/// worker is by definition awake and will see its own push).
struct WorkerSlot {
    Executor* owner = nullptr;
    unsigned index = 0;
};
thread_local WorkerSlot t_slot;

}  // namespace

struct Executor::Worker {
    util::Mutex mu;
    std::deque<Task> deque RECOIL_GUARDED_BY(mu);
    std::thread thread;
};

Executor::Executor() : Executor(Options()) {}

Executor::Executor(Options opt) : name_prefix_(opt.thread_name) {
    unsigned n = opt.workers != 0 ? opt.workers
                                  : std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    // Threads start only after every Worker slot exists: a worker stealing
    // from a sibling must never observe a half-built vector.
    for (unsigned i = 0; i < n; ++i)
        workers_[i]->thread = std::thread([this, i] { worker_main(i); });
}

Executor::~Executor() {
    {
        util::MutexLock lk(park_mu_);
        stopping_.store(true, std::memory_order_seq_cst);
    }
    park_cv_.notify_all();
    for (auto& w : workers_) w->thread.join();
}

void Executor::submit(Task task) {
    RECOIL_CHECK(task != nullptr, "Executor::submit: empty task");
    if (t_slot.owner == this) {
        Worker& own = *workers_[t_slot.index];
        {
            util::MutexLock lk(own.mu);
            own.deque.push_back(std::move(task));
        }
        pending_.fetch_add(1, std::memory_order_seq_cst);
        // This worker runs the task itself unless a thief gets there first;
        // still unpark a sibling so a burst of self-submits fans out.
        if (parked_.load(std::memory_order_seq_cst) != 0) {
            util::MutexLock lk(park_mu_);
            park_cv_.notify_one();
        }
        return;
    }
    const u64 slot = rr_.fetch_add(1, std::memory_order_relaxed);
    Worker& w = *workers_[slot % workers_.size()];
    {
        util::MutexLock lk(w.mu);
        w.deque.push_back(std::move(task));
    }
    // pending_ rises BEFORE parked_ is read: a worker that incremented
    // parked_ after our load re-checks pending_ under park_mu_ before it
    // sleeps, so either we see it parked (and notify) or it sees our task.
    pending_.fetch_add(1, std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_seq_cst) != 0) {
        util::MutexLock lk(park_mu_);
        park_cv_.notify_one();
    }
}

std::optional<Executor::Task> Executor::next_task(unsigned index) {
    // Own deque first, newest first: the task this worker just submitted is
    // the one whose state is hot in its cache.
    Worker& own = *workers_[index];
    {
        util::MutexLock lk(own.mu);
        if (!own.deque.empty()) {
            Task t = std::move(own.deque.back());
            own.deque.pop_back();
            return t;
        }
    }
    // Steal half a victim's deque from the FIFO side: the oldest tasks have
    // waited longest (fairness), and taking half amortizes the lock so a
    // thundering herd of thieves does not revisit the same victim per task.
    const unsigned n = static_cast<unsigned>(workers_.size());
    for (unsigned hop = 1; hop < n; ++hop) {
        Worker& victim = *workers_[(index + hop) % n];
        std::vector<Task> loot;
        {
            util::MutexLock lk(victim.mu);
            const std::size_t avail = victim.deque.size();
            if (avail == 0) continue;
            const std::size_t take = (avail + 1) / 2;
            loot.reserve(take);
            for (std::size_t i = 0; i < take; ++i) {
                loot.push_back(std::move(victim.deque.front()));
                victim.deque.pop_front();
            }
        }
        stolen_.fetch_add(loot.size(), std::memory_order_relaxed);
        Task first = std::move(loot.front());
        if (loot.size() > 1) {
            util::MutexLock lk(own.mu);
            for (std::size_t i = 1; i < loot.size(); ++i)
                own.deque.push_back(std::move(loot[i]));
        }
        return first;
    }
    return std::nullopt;
}

bool Executor::park_or_exit(unsigned index) {
    (void)index;
    util::MutexLock lk(park_mu_);
    parked_.fetch_add(1, std::memory_order_seq_cst);
    while (pending_.load(std::memory_order_seq_cst) == 0 &&
           !(stopping_.load(std::memory_order_seq_cst) &&
             running_.load(std::memory_order_seq_cst) == 0))
        park_cv_.wait(park_mu_);
    parked_.fetch_sub(1, std::memory_order_seq_cst);
    if (pending_.load(std::memory_order_seq_cst) == 0 &&
        stopping_.load(std::memory_order_seq_cst) &&
        running_.load(std::memory_order_seq_cst) == 0) {
        // Fully drained and stopping: release any sibling still waiting so
        // the whole pool exits, then leave.
        park_cv_.notify_all();
        return false;
    }
    return true;
}

void Executor::worker_main(unsigned index) {
    name_current_thread(name_prefix_, index);
    t_slot = {this, index};
    for (;;) {
        std::optional<Task> task = next_task(index);
        if (!task.has_value()) {
            if (!park_or_exit(index)) break;
            continue;
        }
        // running_ rises BEFORE pending_ falls: the pair never reads 0/0
        // while a task is in hand, so a stopping sibling cannot conclude
        // "drained" while this task might still submit successors.
        running_.fetch_add(1, std::memory_order_seq_cst);
        pending_.fetch_sub(1, std::memory_order_seq_cst);
        try {
            (*task)();
        } catch (...) {
            // A stray exception must not kill the worker (and with it every
            // queued task); callers that care use run()'s future packaging.
            exceptions_.fetch_add(1, std::memory_order_relaxed);
        }
        task.reset();  // destroy captures before the drained/parked checks
        executed_.fetch_add(1, std::memory_order_relaxed);
        running_.fetch_sub(1, std::memory_order_seq_cst);
        if (stopping_.load(std::memory_order_seq_cst)) {
            // The last running task gates its siblings' exit; wake them to
            // re-evaluate now that running_ dropped.
            util::MutexLock lk(park_mu_);
            park_cv_.notify_all();
        }
    }
    t_slot = {};
}

Executor::Stats Executor::stats() const {
    Stats s;
    s.workers = worker_count();
    for (const auto& w : workers_) {
        util::MutexLock lk(w->mu);
        s.queued += w->deque.size();
    }
    s.running = running_.load(std::memory_order_relaxed);
    s.executed_total = executed_.load(std::memory_order_relaxed);
    s.stolen_total = stolen_.load(std::memory_order_relaxed);
    s.exceptions_total = exceptions_.load(std::memory_order_relaxed);
    return s;
}

Executor& global_executor() {
    static Executor exec;
    return exec;
}

}  // namespace recoil::util
