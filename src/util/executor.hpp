#pragma once
// Work-stealing task executor: the thread substrate that lets 10k concurrent
// streams cost 10k small state machines instead of 10k OS threads. Each
// worker owns a deque; it pushes and pops its own work LIFO (cache-warm) and
// steals the oldest half of a victim's deque when it runs dry (FIFO side, so
// long-queued tasks cannot starve behind a busy owner). Workers that find
// nothing to run or steal park on a condition variable and are unparked by
// the next submit.
//
// Tasks must be resumable-by-design, not blocking: a task that parks a
// worker on a condition variable owned by another *queued* task can deadlock
// the pool (every worker blocked, the task that would unblock them never
// scheduled). The serve_stream producer is the canonical shape — an explicit
// state machine that RETURNS when it cannot progress (flow-control window
// full) and is re-submitted by whichever thread unblocks it (the consumer
// pull, the daemon's writable socket). See docs/executor.md.
//
// Lock discipline follows docs/static_analysis.md: every queue is guarded by
// an annotated util::Mutex; the scheduling counters (pending/running/parked)
// are the documented relaxed-atomic escape so submit() and the worker fast
// path never serialize on one global lock.

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "util/ints.hpp"
#include "util/thread_annotations.hpp"

namespace recoil::util {

class Executor {
public:
    using Task = std::function<void()>;

    struct Options {
        /// Worker threads; 0 = hardware_concurrency.
        unsigned workers = 0;
        /// pthread name prefix for the workers ("<prefix>-N", truncated to
        /// the kernel's 15-char limit) so profiles and slow-request logs
        /// attribute time to subsystems.
        const char* thread_name = "recoil-exec";
    };

    Executor();  ///< Options defaults (delegates; GCC rejects `opt = {}`
                 ///< default args that need a nested class's NSDMIs)
    explicit Executor(Options opt);
    /// Shutdown drain: every task already submitted (including tasks that
    /// running tasks submit while draining) still runs; then workers join.
    ~Executor();
    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    /// Enqueue one task. Called from a worker of this executor, the task
    /// lands on that worker's own deque (LIFO, cache-warm); from any other
    /// thread it round-robins across workers and unparks one if all are
    /// asleep. Must not be called after the destructor's drain completed.
    void submit(Task task);

    /// Run `fn` on the executor with result/exception propagation through a
    /// future — the packaging callers use when a task outcome matters to a
    /// specific waiter (plain submit() tasks must handle their own errors;
    /// a stray exception is counted, not propagated).
    template <class F>
    auto run(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto packaged =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> fut = packaged->get_future();
        submit([packaged] { (*packaged)(); });
        return fut;
    }

    struct Stats {
        unsigned workers = 0;  ///< worker thread count (fixed at build)
        u64 queued = 0;        ///< tasks waiting in deques right now
        u64 running = 0;       ///< tasks executing right now
        u64 executed_total = 0;   ///< tasks run to completion
        u64 stolen_total = 0;     ///< tasks migrated by work stealing
        u64 exceptions_total = 0; ///< stray task exceptions (caught, counted)
    };
    Stats stats() const;

    unsigned worker_count() const noexcept {
        return static_cast<unsigned>(workers_.size());
    }

private:
    struct Worker;

    void worker_main(unsigned index);
    /// Own deque (LIFO), else steal half of a victim's (FIFO). Nullopt when
    /// the whole pool is dry.
    std::optional<Task> next_task(unsigned index);
    bool park_or_exit(unsigned index);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::string name_prefix_;

    util::Mutex park_mu_;
    util::CondVar park_cv_;  ///< parked workers: work arrived / stopping
    // Scheduling counters: the documented relaxed-atomic escape. pending_
    // counts queued-not-yet-claimed tasks, running_ counts tasks in a
    // worker's hands (claimed before pending_ is decremented, so the pair
    // can never read 0/0 while a task exists), parked_ gates submit()'s
    // notify so the fast path never takes park_mu_.
    std::atomic<u64> pending_{0};
    std::atomic<u64> running_{0};
    std::atomic<u64> parked_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<u64> executed_{0};
    std::atomic<u64> stolen_{0};
    std::atomic<u64> exceptions_{0};
    std::atomic<u64> rr_{0};  ///< external-submit round robin cursor
};

/// Process-wide executor for resumable tasks (stream producers); sized to
/// hardware_concurrency. Constructed on first use, lives for the process.
Executor& global_executor();

/// Name the calling thread "<prefix>-<index>" (truncated to the kernel's
/// 15-char limit; no-op off Linux) so profiles and slow-request logs
/// attribute time to subsystems. Used by the executor and ThreadPool.
void name_current_thread(const std::string& prefix, unsigned index);

}  // namespace recoil::util
