#pragma once
// Portable Clang Thread Safety Analysis annotations plus the annotated
// synchronization wrappers the rest of the tree locks with.
//
// Under Clang, RECOIL_GUARDED_BY/REQUIRES/EXCLUDES/... expand to the
// thread-safety attributes so `-Werror=thread-safety` turns lock-discipline
// mistakes (touching a guarded field without its mutex, calling a _locked()
// helper unlocked, re-acquiring a held mutex) into compile errors. Under
// GCC/MSVC they expand to nothing — zero runtime or layout cost either way.
// tests/compile_fail/ proves the annotations are live (a seeded violation
// must fail to compile), and docs/static_analysis.md spells out the
// conventions: every shared field carries RECOIL_GUARDED_BY, every
// *_locked() helper carries RECOIL_REQUIRES, public entry points carry
// RECOIL_EXCLUDES, and every deliberate escape (relaxed-atomic fast paths,
// the daemon's async-signal-safe drain) is a documented comment, not a
// silent hole.
//
// The wrappers mirror std types 1:1 — util::Mutex over std::mutex,
// util::SharedMutex over std::shared_mutex, util::CondVar over
// std::condition_variable — and stay drop-in compatible with
// std::unique_lock/std::scoped_lock/std::condition_variable_any via the
// usual lock()/unlock()/try_lock() surface (TSA only tracks acquisitions it
// can see, so generic std lock holders belong behind an annotated seam or a
// documented RECOIL_NO_THREAD_SAFETY_ANALYSIS escape). util::CondVar waits
// on the wrapped std::condition_variable directly (adopting the caller's
// held lock around the wait), so there is no condition_variable_any
// penalty for the annotation layer.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && (!defined(SWIG))
#define RECOIL_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define RECOIL_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

#define RECOIL_CAPABILITY(x) RECOIL_THREAD_ANNOTATION__(capability(x))
#define RECOIL_SCOPED_CAPABILITY RECOIL_THREAD_ANNOTATION__(scoped_lockable)

#define RECOIL_GUARDED_BY(x) RECOIL_THREAD_ANNOTATION__(guarded_by(x))
#define RECOIL_PT_GUARDED_BY(x) RECOIL_THREAD_ANNOTATION__(pt_guarded_by(x))

#define RECOIL_ACQUIRED_BEFORE(...) \
    RECOIL_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define RECOIL_ACQUIRED_AFTER(...) \
    RECOIL_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define RECOIL_REQUIRES(...) \
    RECOIL_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define RECOIL_REQUIRES_SHARED(...) \
    RECOIL_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define RECOIL_ACQUIRE(...) \
    RECOIL_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define RECOIL_ACQUIRE_SHARED(...) \
    RECOIL_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RECOIL_RELEASE(...) \
    RECOIL_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RECOIL_RELEASE_SHARED(...) \
    RECOIL_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RECOIL_RELEASE_GENERIC(...) \
    RECOIL_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

#define RECOIL_TRY_ACQUIRE(...) \
    RECOIL_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define RECOIL_TRY_ACQUIRE_SHARED(...) \
    RECOIL_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

#define RECOIL_EXCLUDES(...) \
    RECOIL_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define RECOIL_ASSERT_CAPABILITY(x) \
    RECOIL_THREAD_ANNOTATION__(assert_capability(x))
#define RECOIL_RETURN_CAPABILITY(x) \
    RECOIL_THREAD_ANNOTATION__(lock_returned(x))

#define RECOIL_NO_THREAD_SAFETY_ANALYSIS \
    RECOIL_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace recoil::util {

/// Tag for adopting a mutex already held by the caller (the annotated
/// equivalent of std::adopt_lock).
struct adopt_lock_t {
    explicit adopt_lock_t() = default;
};
inline constexpr adopt_lock_t adopt_lock{};

/// std::mutex with the TSA `capability` attribute. Same size, same cost;
/// BasicLockable/Lockable, so std::unique_lock<util::Mutex> and
/// std::condition_variable_any still accept it where generic holders are
/// unavoidable.
class RECOIL_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() RECOIL_ACQUIRE() { mu_.lock(); }
    void unlock() RECOIL_RELEASE() { mu_.unlock(); }
    bool try_lock() RECOIL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /// The wrapped mutex, for CondVar and std interop. Callers own the
    /// discipline: TSA cannot see locks taken through this handle.
    std::mutex& native() noexcept { return mu_; }

private:
    std::mutex mu_;
};

/// std::shared_mutex with the TSA `capability` attribute (exclusive +
/// shared modes).
class RECOIL_CAPABILITY("shared_mutex") SharedMutex {
public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex&) = delete;
    SharedMutex& operator=(const SharedMutex&) = delete;

    void lock() RECOIL_ACQUIRE() { mu_.lock(); }
    void unlock() RECOIL_RELEASE() { mu_.unlock(); }
    bool try_lock() RECOIL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    void lock_shared() RECOIL_ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlock_shared() RECOIL_RELEASE_SHARED() { mu_.unlock_shared(); }
    bool try_lock_shared() RECOIL_TRY_ACQUIRE_SHARED(true) {
        return mu_.try_lock_shared();
    }

private:
    std::shared_mutex mu_;
};

/// Scoped exclusive lock over util::Mutex — the annotated std::scoped_lock.
/// Also the annotated std::unique_lock where the code needs to drop the
/// lock early (unlock-before-notify) or adopt one taken by try_lock():
/// unlock()/lock() track ownership so the destructor releases only if held.
class RECOIL_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) RECOIL_ACQUIRE(mu) : mu_(mu) {
        mu_.lock();
    }
    /// Adopt a lock the caller already holds (e.g. after a successful
    /// try_lock()). The REQUIRES annotation makes the precondition checked.
    MutexLock(Mutex& mu, adopt_lock_t) RECOIL_REQUIRES(mu) : mu_(mu) {}

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /// Early release (the unlock-before-notify idiom).
    void unlock() RECOIL_RELEASE() {
        owned_ = false;
        mu_.unlock();
    }
    /// Re-acquire after an early unlock().
    void lock() RECOIL_ACQUIRE() {
        mu_.lock();
        owned_ = true;
    }

    ~MutexLock() RECOIL_RELEASE() {
        if (owned_) mu_.unlock();
    }

private:
    Mutex& mu_;
    bool owned_ = true;
};

/// Scoped exclusive lock over util::SharedMutex.
class RECOIL_SCOPED_CAPABILITY WriterMutexLock {
public:
    explicit WriterMutexLock(SharedMutex& mu) RECOIL_ACQUIRE(mu) : mu_(mu) {
        mu_.lock();
    }
    WriterMutexLock(const WriterMutexLock&) = delete;
    WriterMutexLock& operator=(const WriterMutexLock&) = delete;
    ~WriterMutexLock() RECOIL_RELEASE() { mu_.unlock(); }

private:
    SharedMutex& mu_;
};

/// Scoped shared (reader) lock over util::SharedMutex.
class RECOIL_SCOPED_CAPABILITY ReaderMutexLock {
public:
    explicit ReaderMutexLock(SharedMutex& mu) RECOIL_ACQUIRE_SHARED(mu)
        : mu_(mu) {
        mu_.lock_shared();
    }
    ReaderMutexLock(const ReaderMutexLock&) = delete;
    ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
    ~ReaderMutexLock() RECOIL_RELEASE_GENERIC() { mu_.unlock_shared(); }

private:
    SharedMutex& mu_;
};

/// Condition variable waiting on util::Mutex. wait() requires (and is
/// annotated to require) the mutex held; it adopts the caller's lock around
/// the underlying std::condition_variable wait and hands it back on return,
/// so TSA sees an unbroken critical section while the OS sees the normal
/// mutex/condvar protocol. Predicates stay at the call site as explicit
/// `while (!cond) cv.wait(mu);` loops — TSA does not propagate lock state
/// into predicate lambdas, and the explicit loop is the documented
/// convention (docs/static_analysis.md).
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void wait(Mutex& mu) RECOIL_REQUIRES(mu) {
        std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
        cv_.wait(lk);
        lk.release();  // the caller still holds mu, as annotated
    }

    template <class Rep, class Period>
    std::cv_status wait_for(Mutex& mu,
                            const std::chrono::duration<Rep, Period>& dur)
        RECOIL_REQUIRES(mu) {
        std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
        const auto st = cv_.wait_for(lk, dur);
        lk.release();
        return st;
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace recoil::util
