#pragma once
// Error handling: the library throws recoil::Error for malformed inputs
// (corrupt containers, invalid parameters) and uses RECOIL_CHECK for
// internal invariants that indicate a bug rather than bad input.

#include <stdexcept>
#include <string>

namespace recoil {

class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise(const std::string& what) { throw Error(what); }

}  // namespace recoil

#define RECOIL_CHECK(cond, msg)                                              \
    do {                                                                      \
        if (!(cond)) ::recoil::raise(std::string("recoil invariant failed: ") + (msg)); \
    } while (0)
