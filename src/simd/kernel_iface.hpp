#pragma once
// Contract for vectorized interleaved-decode kernels (§4.4 variations (2) and
// (3)), specialized to the experiment configuration: Rans32 (32-bit states,
// 16-bit units, L = 2^16, prob_bits <= 16 so renormalization is single-step)
// and 32 lanes.
//
// Discipline (per-group; see DESIGN.md §3.1): for each group g from g_hi down
// to g_lo, the kernel
//   1. applies the decode transform T' to all 32 lanes (positions
//      g*32 .. g*32+31), storing the 32 symbols at out + g*32;
//   2. pops one unit for every lane with state < L, assigning ascending
//      needy lanes to ascending unit addresses [p-K+1, p], then p -= K.
// Entry precondition: T' already applied for all positions >= (g_hi+1)*32
// and no pops pending (the caller performs the catch-up pop pass). On exit
// the caller may resume the scalar per-symbol discipline directly: the two
// disciplines pop the same units in the same global order.

#include "rans/static_model.hpp"
#include "util/ints.hpp"

namespace recoil::simd {

template <typename TSym>
using GroupKernel = void (*)(u32* states, const u16* units, u64 num_units,
                             i64& p, u64 g_hi, u64 g_lo, const DecodeTables& t,
                             TSym* out);

/// Pop one unit for every lane with state < L: ascending needy lanes take
/// ascending addresses ending at p. Used for kernel catch-up and as the
/// kernels' scalar fallback near the ends of the unit buffer.
inline void scalar_group_pops(u32* x, const u16* units, i64& p) {
    u32 needy[32];
    int k = 0;
    for (u32 lane = 0; lane < 32; ++lane) {
        if (x[lane] < (u32{1} << 16)) needy[k++] = lane;
    }
    const i64 base = p - k + 1;
    for (int i = 0; i < k; ++i) {
        x[needy[i]] = (x[needy[i]] << 16) | units[base + i];
    }
    p -= k;
}

/// Reference (portable) group kernel; also differentially tests the
/// per-group discipline against the per-symbol one.
template <typename TSym>
void scalar_decode_groups(u32* states, const u16* units, u64 num_units, i64& p,
                          u64 g_hi, u64 g_lo, const DecodeTables& t, TSym* out);

// Architecture-specific kernels; compiled only when the build enables them
// (runtime-dispatched via simd/dispatch.hpp).
#if defined(RECOIL_HAVE_AVX2_BUILD)
template <typename TSym>
void avx2_decode_groups(u32* states, const u16* units, u64 num_units, i64& p,
                        u64 g_hi, u64 g_lo, const DecodeTables& t, TSym* out);
#endif
#if defined(RECOIL_HAVE_AVX512_BUILD)
template <typename TSym>
void avx512_decode_groups(u32* states, const u16* units, u64 num_units, i64& p,
                          u64 g_hi, u64 g_lo, const DecodeTables& t, TSym* out);
#endif

}  // namespace recoil::simd
