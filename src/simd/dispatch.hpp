#pragma once
// Runtime backend selection and the RangeFn adapter that plugs the SIMD
// group kernels into the Recoil 3-phase decoder and the conventional
// partition decoder (§4.4: "implementations (2) and (3) can be selected
// based on the target platform's AVX support").

#include <span>

#include "rans/interleaved.hpp"
#include "simd/kernel_iface.hpp"

namespace recoil::simd {

enum class Backend { Scalar, Avx2, Avx512 };

/// Best backend supported by both this build and this CPU.
Backend pick_backend();
/// A specific backend if available, else the next best.
Backend clamp_backend(Backend requested);
const char* backend_name(Backend b);

/// Type-erased kernel lookup (returns the scalar reference kernel for
/// Backend::Scalar or when the requested backend was not compiled in).
GroupKernel<u8> group_kernel_u8(Backend b);
GroupKernel<u16> group_kernel_u16(Backend b);

template <typename TSym>
GroupKernel<TSym> group_kernel(Backend b) {
    if constexpr (sizeof(TSym) == 1) {
        return group_kernel_u8(b);
    } else {
        return group_kernel_u16(b);
    }
}

/// Drop-in replacement for ScalarRangeFn (see core/recoil_decoder.hpp):
/// decodes the interior whole groups of [lo, hi] with a SIMD kernel and the
/// ragged edges with the scalar per-symbol loop. Mixing is safe at group
/// boundaries; the catch-up pop pass re-establishes the kernels' entry
/// precondition.
template <typename TSym>
struct SimdRangeFn {
    Backend backend = pick_backend();

    void operator()(LaneCursor<Rans32, 32>& cur, std::span<const u16> units,
                    u64 hi, u64 lo, const DecodeTables& t, TSym* out) const {
        if (hi < lo) return;
        if (out == nullptr || backend == Backend::Scalar) {
            decode_positions<Rans32, 32>(cur, units, hi, lo, t, out);
            return;
        }
        // Scalar head: positions [top_aligned, hi].
        const u64 top_aligned = (hi + 1) & ~u64{31};
        if (top_aligned <= hi) {
            const u64 head_lo = top_aligned > lo ? top_aligned : lo;
            decode_positions<Rans32, 32>(cur, units, hi, head_lo, t, out);
            if (head_lo == lo) return;
        }
        // Whole groups [g_lo, g_hi].
        const u64 g_lo = (lo + 31) / 32;
        if (top_aligned >= (g_lo + 1) * 32) {
            const u64 g_hi = top_aligned / 32 - 1;
            scalar_group_pops(cur.x.data(), units.data(), cur.p);  // catch-up
            group_kernel<TSym>(backend)(cur.x.data(), units.data(), units.size(),
                                        cur.p, g_hi, g_lo, t, out);
        }
        // Scalar tail: positions [lo, g_lo*32 - 1].
        if (g_lo * 32 > lo) {
            decode_positions<Rans32, 32>(cur, units, g_lo * 32 - 1, lo, t, out);
        }
    }
};

}  // namespace recoil::simd
