#pragma once
// Runtime backend selection and the RangeFn adapter that plugs the SIMD
// group kernels into the Recoil 3-phase decoder and the conventional
// partition decoder (§4.4: "implementations (2) and (3) can be selected
// based on the target platform's AVX support").

#include <algorithm>
#include <span>

#include "rans/interleaved.hpp"
#include "simd/kernel_iface.hpp"

namespace recoil::simd {

enum class Backend { Scalar, Avx2, Avx512 };

/// Best backend supported by both this build and this CPU.
Backend pick_backend();
/// A specific backend if available, else the next best.
Backend clamp_backend(Backend requested);
const char* backend_name(Backend b);

/// Type-erased kernel lookup (returns the scalar reference kernel for
/// Backend::Scalar or when the requested backend was not compiled in).
GroupKernel<u8> group_kernel_u8(Backend b);
GroupKernel<u16> group_kernel_u16(Backend b);

template <typename TSym>
GroupKernel<TSym> group_kernel(Backend b) {
    if constexpr (sizeof(TSym) == 1) {
        return group_kernel_u8(b);
    } else {
        return group_kernel_u16(b);
    }
}

/// Drop-in replacement for ScalarRangeFn (see core/recoil_decoder.hpp):
/// decodes the interior whole groups of [lo, hi] with a SIMD kernel and the
/// ragged edges with the scalar per-symbol loop. Mixing is safe at group
/// boundaries; the catch-up pop pass re-establishes the kernels' entry
/// precondition.
template <typename TSym>
struct SimdRangeFn {
    Backend backend = pick_backend();

    void operator()(LaneCursor<Rans32, 32>& cur, std::span<const u16> units,
                    u64 hi, u64 lo, const DecodeTables& t, TSym* out) const {
        if (hi < lo) return;
        if (out == nullptr || backend == Backend::Scalar) {
            decode_positions<Rans32, 32>(cur, units, hi, lo, t, out);
            return;
        }
        // Scalar head: positions [top_aligned, hi].
        const u64 top_aligned = (hi + 1) & ~u64{31};
        if (top_aligned <= hi) {
            const u64 head_lo = top_aligned > lo ? top_aligned : lo;
            decode_positions<Rans32, 32>(cur, units, hi, head_lo, t, out);
            if (head_lo == lo) return;
        }
        // Whole groups [g_lo, g_hi].
        const u64 g_lo = (lo + 31) / 32;
        if (top_aligned >= (g_lo + 1) * 32) {
            const u64 g_hi = top_aligned / 32 - 1;
            scalar_group_pops(cur.x.data(), units.data(), cur.p);  // catch-up
            group_kernel<TSym>(backend)(cur.x.data(), units.data(), units.size(),
                                        cur.p, g_hi, g_lo, t, out);
        }
        // Scalar tail: positions [lo, g_lo*32 - 1].
        if (g_lo * 32 > lo) {
            decode_positions<Rans32, 32>(cur, units, g_lo * 32 - 1, lo, t, out);
        }
    }
};

/// SimdRangeFn for decoders whose per-symbol id stream is only valid on a
/// window [valid_lo, valid_hi) of absolute positions — the indexed range
/// wire ships exactly the id slice its segments cover, so a full-width id
/// gather at the slice edge would read past the shipped bytes. The guarded
/// tail: the vector body runs only on whole groups that stay a kGuard-byte
/// margin clear of the window's top edge, and everything nearer an edge
/// decodes through the scalar per-symbol loop, whose id reads are position-
/// exact. The kernels' in-group loads are themselves position-exact (they
/// never reach past the group's last position), so the margin is defensive
/// depth against future kernels with wider gathers, not a correctness
/// requirement of the current ones.
template <typename TSym>
struct GuardedSimdRangeFn {
    Backend backend = pick_backend();
    u64 valid_lo = 0;  ///< first position with a shipped id byte
    u64 valid_hi = 0;  ///< one past the last position with a shipped id byte
    /// Vectorized groups end at least this many id bytes before valid_hi.
    static constexpr u64 kGuard = 32;

    void operator()(LaneCursor<Rans32, 32>& cur, std::span<const u16> units,
                    u64 hi, u64 lo, const DecodeTables& t, TSym* out) const {
        if (hi < lo) return;
        if (out == nullptr || backend == Backend::Scalar) {
            decode_positions<Rans32, 32>(cur, units, hi, lo, t, out);
            return;
        }
        const u64 top_aligned = (hi + 1) & ~u64{31};
        // First whole group, clamped below the id window's bottom edge (a
        // no-op when lo >= valid_lo, which callers guarantee; kept as the
        // same defensive depth as the top margin).
        const u64 g_lo = std::max((lo + 31) / 32, (valid_lo + 31) / 32);
        const bool has_groups = top_aligned >= (g_lo + 1) * 32;
        // Last group whose top stays kGuard id bytes clear of valid_hi:
        // need (g+1)*32 + kGuard <= valid_hi.
        if (!has_groups || valid_hi < kGuard + 32 ||
            (valid_hi - kGuard) / 32 < g_lo + 1) {
            // Every position is edge: the plain scalar loop.
            decode_positions<Rans32, 32>(cur, units, hi, lo, t, out);
            return;
        }
        const u64 g_hi =
            std::min(top_aligned / 32 - 1, (valid_hi - kGuard) / 32 - 1);
        // Scalar head: positions [(g_hi+1)*32, hi] (decode runs hi → lo).
        const u64 head_lo = (g_hi + 1) * 32;
        if (head_lo <= hi)
            decode_positions<Rans32, 32>(cur, units, hi, head_lo, t, out);
        scalar_group_pops(cur.x.data(), units.data(), cur.p);  // catch-up
        group_kernel<TSym>(backend)(cur.x.data(), units.data(), units.size(),
                                    cur.p, g_hi, g_lo, t, out);
        // Scalar tail: positions [lo, g_lo*32 - 1].
        if (g_lo * 32 > lo)
            decode_positions<Rans32, 32>(cur, units, g_lo * 32 - 1, lo, t, out);
    }
};

}  // namespace recoil::simd
