// AVX2 interleaved group decoder (§4.4 variation (2)): 8 lanes per ymm
// vector, manually unrolled four times for the 32-lane group. Without
// VPEXPANDD, renormalization distribution uses a 256-entry permutation LUT
// indexed by the underflow movemask: ascending loaded units are routed to
// ascending needy lanes by VPERMD.

#include <immintrin.h>

#include <array>

#include "simd/kernel_iface.hpp"

namespace recoil::simd {

namespace {

/// perm[mask][lane] = rank of `lane` among the set bits of `mask`, i.e. the
/// index of the unit (loaded ascending) that this needy lane receives.
constexpr std::array<std::array<u32, 8>, 256> make_expand_lut() {
    std::array<std::array<u32, 8>, 256> lut{};
    for (u32 mask = 0; mask < 256; ++mask) {
        u32 rank = 0;
        for (u32 lane = 0; lane < 8; ++lane) {
            if (mask & (1u << lane)) {
                lut[mask][lane] = rank++;
            } else {
                lut[mask][lane] = 0;  // ignored (lane not blended)
            }
        }
    }
    return lut;
}

alignas(32) constinit const std::array<std::array<u32, 8>, 256> kExpandLut =
    make_expand_lut();

const __m256i kSignFlip = _mm256_set1_epi32(static_cast<int>(0x80000000u));

/// Unsigned x < 2^16 via sign-flipped signed compare. Returns an all-ones
/// lane mask vector.
inline __m256i underflow_mask(__m256i x) {
    const __m256i lim = _mm256_set1_epi32(static_cast<int>((u32{1} << 16) ^ 0x80000000u));
    return _mm256_cmpgt_epi32(lim, _mm256_xor_si256(x, kSignFlip));
}

inline __m256i transform8(__m256i x, u64 base, const DecodeTables& t, u32 n,
                          __m256i vslot_mask, __m256i* sym_out) {
    const __m256i slot = _mm256_and_si256(x, vslot_mask);
    __m256i f, c, sym;
    if (t.packed != nullptr) {
        const __m256i e = _mm256_i32gather_epi32(
            reinterpret_cast<const int*>(t.packed), slot, 4);
        sym = _mm256_and_si256(e, _mm256_set1_epi32(0xff));
        c = _mm256_and_si256(_mm256_srli_epi32(e, 8), _mm256_set1_epi32(0xfff));
        f = _mm256_add_epi32(_mm256_srli_epi32(e, 20), _mm256_set1_epi32(1));
    } else {
        __m256i idx = slot;
        if (t.ids != nullptr) {
            const __m128i raw =
                _mm_loadl_epi64(reinterpret_cast<const __m128i*>(t.ids + base));
            const __m256i id = _mm256_cvtepu8_epi32(raw);
            idx = _mm256_add_epi32(_mm256_slli_epi32(id, static_cast<int>(n)), slot);
        }
        const __m256i fc =
            _mm256_i32gather_epi32(reinterpret_cast<const int*>(t.fc), idx, 4);
        sym = _mm256_i32gather_epi32(reinterpret_cast<const int*>(t.sym), idx, 4);
        f = _mm256_add_epi32(_mm256_srli_epi32(fc, 16), _mm256_set1_epi32(1));
        c = _mm256_and_si256(fc, _mm256_set1_epi32(0xffff));
    }
    *sym_out = sym;
    const __m256i xq = _mm256_srli_epi32(x, static_cast<int>(n));
    return _mm256_add_epi32(_mm256_mullo_epi32(f, xq), _mm256_sub_epi32(slot, c));
}

/// Narrow 8x u32 (values < 256) to 8 bytes and store.
inline void store_syms(u8* dst, __m256i sym) {
    const __m256i shuf = _mm256_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1,
                                          -1, -1, -1, -1, -1, 0, 4, 8, 12, -1, -1,
                                          -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    const __m256i packed = _mm256_shuffle_epi8(sym, shuf);
    const __m256i gathered =
        _mm256_permutevar8x32_epi32(packed, _mm256_setr_epi32(0, 4, 1, 1, 1, 1, 1, 1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst),
                     _mm256_castsi256_si128(gathered));
}

/// Narrow 8x u32 (values < 65536) to 8 u16 and store.
inline void store_syms(u16* dst, __m256i sym) {
    const __m256i shuf = _mm256_setr_epi8(0, 1, 4, 5, 8, 9, 12, 13, -1, -1, -1, -1,
                                          -1, -1, -1, -1, 0, 1, 4, 5, 8, 9, 12, 13,
                                          -1, -1, -1, -1, -1, -1, -1, -1);
    const __m256i packed = _mm256_shuffle_epi8(sym, shuf);
    const __m256i gathered = _mm256_permutevar8x32_epi32(
        packed, _mm256_setr_epi32(0, 1, 4, 5, 1, 1, 1, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                     _mm256_castsi256_si128(gathered));
}

/// Blend popped units into the needy lanes of one vector. `src` points at
/// this vector's first unit (ascending).
inline __m256i renorm8(__m256i x, __m256i needy, u32 mask8, const u16* src) {
    const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
    const __m256i units32 = _mm256_cvtepu16_epi32(raw);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kExpandLut[mask8].data()));
    const __m256i routed = _mm256_permutevar8x32_epi32(units32, perm);
    const __m256i shifted = _mm256_or_si256(_mm256_slli_epi32(x, 16), routed);
    return _mm256_blendv_epi8(x, shifted, needy);
}

}  // namespace

template <typename TSym>
void avx2_decode_groups(u32* states, const u16* units, u64 num_units, i64& p,
                        u64 g_hi, u64 g_lo, const DecodeTables& t, TSym* out) {
    const u32 n = t.prob_bits;
    const __m256i vslot_mask = _mm256_set1_epi32(static_cast<int>((u32{1} << n) - 1));
    __m256i x[4];
    for (int v = 0; v < 4; ++v) {
        x[v] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states + 8 * v));
    }

    for (u64 g = g_hi + 1; g-- > g_lo;) {
        const u64 base = g * 32;
        __m256i needy[4];
        u32 mask8[4];
        u32 k = 0;
        for (int v = 0; v < 4; ++v) {
            __m256i sym;
            x[v] = transform8(x[v], base + 8 * v, t, n, vslot_mask, &sym);
            store_syms(out + base + 8 * v, sym);
            needy[v] = underflow_mask(x[v]);
            mask8[v] = static_cast<u32>(
                _mm256_movemask_ps(_mm256_castsi256_ps(needy[v])));
            k += static_cast<u32>(__builtin_popcount(mask8[v]));
        }
        if (k == 0) continue;
        const i64 ubase = p - static_cast<i64>(k) + 1;
        if (ubase >= 8 && p + 8 <= static_cast<i64>(num_units)) {
            i64 run = ubase;
            for (int v = 0; v < 4; ++v) {
                if (mask8[v]) {
                    x[v] = renorm8(x[v], needy[v], mask8[v], units + run);
                    run += __builtin_popcount(mask8[v]);
                }
            }
            p -= static_cast<i64>(k);
        } else {
            alignas(32) u32 tmp[32];
            for (int v = 0; v < 4; ++v) {
                _mm256_storeu_si256(reinterpret_cast<__m256i*>(tmp + 8 * v), x[v]);
            }
            scalar_group_pops(tmp, units, p);
            for (int v = 0; v < 4; ++v) {
                x[v] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tmp + 8 * v));
            }
        }
    }
    for (int v = 0; v < 4; ++v) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(states + 8 * v), x[v]);
    }
}

template void avx2_decode_groups<u8>(u32*, const u16*, u64, i64&, u64, u64,
                                     const DecodeTables&, u8*);
template void avx2_decode_groups<u16>(u32*, const u16*, u64, i64&, u64, u64,
                                      const DecodeTables&, u16*);

}  // namespace recoil::simd
