#include "simd/dispatch.hpp"

#include "util/cpu.hpp"

namespace recoil::simd {

template <typename TSym>
void scalar_decode_groups(u32* states, const u16* units, u64 /*num_units*/, i64& p,
                          u64 g_hi, u64 g_lo, const DecodeTables& t, TSym* out) {
    const u32 n = t.prob_bits;
    const u32 slot_mask = (u32{1} << n) - 1;
    for (u64 g = g_hi + 1; g-- > g_lo;) {
        const u64 base = g * 32;
        for (u32 lane = 0; lane < 32; ++lane) {
            const u32 x = states[lane];
            const u32 slot = x & slot_mask;
            const DecSymbol ds = t.lookup(base + lane, slot);
            states[lane] = ds.freq * (x >> n) + slot - ds.cum;
            out[base + lane] = static_cast<TSym>(ds.sym);
        }
        scalar_group_pops(states, units, p);
    }
}

template void scalar_decode_groups<u8>(u32*, const u16*, u64, i64&, u64, u64,
                                       const DecodeTables&, u8*);
template void scalar_decode_groups<u16>(u32*, const u16*, u64, i64&, u64, u64,
                                        const DecodeTables&, u16*);

Backend pick_backend() {
#if defined(RECOIL_HAVE_AVX512_BUILD)
    if (cpu_features().avx512) return Backend::Avx512;
#endif
#if defined(RECOIL_HAVE_AVX2_BUILD)
    if (cpu_features().avx2) return Backend::Avx2;
#endif
    return Backend::Scalar;
}

Backend clamp_backend(Backend requested) {
#if defined(RECOIL_HAVE_AVX512_BUILD)
    if (requested == Backend::Avx512 && cpu_features().avx512) return Backend::Avx512;
#else
    if (requested == Backend::Avx512) requested = Backend::Avx2;
#endif
#if defined(RECOIL_HAVE_AVX2_BUILD)
    if (requested == Backend::Avx2 && cpu_features().avx2) return Backend::Avx2;
#endif
    return Backend::Scalar;
}

const char* backend_name(Backend b) {
    switch (b) {
        case Backend::Avx512: return "AVX512";
        case Backend::Avx2: return "AVX2";
        default: return "Scalar";
    }
}

GroupKernel<u8> group_kernel_u8(Backend b) {
#if defined(RECOIL_HAVE_AVX512_BUILD)
    if (b == Backend::Avx512 && cpu_features().avx512) return &avx512_decode_groups<u8>;
#endif
#if defined(RECOIL_HAVE_AVX2_BUILD)
    if (b != Backend::Scalar && cpu_features().avx2) return &avx2_decode_groups<u8>;
#endif
    return &scalar_decode_groups<u8>;
}

GroupKernel<u16> group_kernel_u16(Backend b) {
#if defined(RECOIL_HAVE_AVX512_BUILD)
    if (b == Backend::Avx512 && cpu_features().avx512) return &avx512_decode_groups<u16>;
#endif
#if defined(RECOIL_HAVE_AVX2_BUILD)
    if (b != Backend::Scalar && cpu_features().avx2) return &avx2_decode_groups<u16>;
#endif
    return &scalar_decode_groups<u16>;
}

}  // namespace recoil::simd
