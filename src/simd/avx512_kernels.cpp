// AVX512 interleaved group decoder (§4.4 variation (3)): 16 lanes per zmm
// vector, two vectors for the 32-lane group, unrolled twice. Requires
// AVX512 F/BW/DQ/VL. Renormalization distribution uses VPEXPANDD: ascending
// units load ascending into the needy lanes selected by the underflow mask.

#include <immintrin.h>

#include "simd/kernel_iface.hpp"

namespace recoil::simd {

namespace {

struct Vec16 {
    __m512i x;
};

/// Decode transform for 16 lanes starting at symbol position `base`.
/// Returns the new states; writes symbols as 32-bit values into `sym_out`.
inline __m512i transform16(__m512i x, u64 base, const DecodeTables& t, u32 n,
                           __m512i vslot_mask, __m512i* sym_out) {
    const __m512i slot = _mm512_and_si512(x, vslot_mask);
    __m512i f, c, sym;
    if (t.packed != nullptr) {
        // One gather: entry = ((freq-1)<<20) | (cum<<8) | sym.
        const __m512i e = _mm512_i32gather_epi32(slot, t.packed, 4);
        sym = _mm512_and_si512(e, _mm512_set1_epi32(0xff));
        c = _mm512_and_si512(_mm512_srli_epi32(e, 8), _mm512_set1_epi32(0xfff));
        f = _mm512_add_epi32(_mm512_srli_epi32(e, 20), _mm512_set1_epi32(1));
    } else {
        __m512i idx = slot;
        if (t.ids != nullptr) {
            // Adaptive model: table index = (model_id << n) | slot.
            const __m128i raw = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(t.ids + base));
            const __m512i id = _mm512_cvtepu8_epi32(raw);
            idx = _mm512_add_epi32(_mm512_slli_epi32(id, static_cast<int>(n)), slot);
        }
        const __m512i fc = _mm512_i32gather_epi32(idx, t.fc, 4);
        sym = _mm512_i32gather_epi32(idx, t.sym, 4);
        f = _mm512_add_epi32(_mm512_srli_epi32(fc, 16), _mm512_set1_epi32(1));
        c = _mm512_and_si512(fc, _mm512_set1_epi32(0xffff));
    }
    *sym_out = sym;
    // x' = f * (x >> n) + slot - cum
    const __m512i xq = _mm512_srli_epi32(x, static_cast<int>(n));
    return _mm512_add_epi32(_mm512_mullo_epi32(f, xq), _mm512_sub_epi32(slot, c));
}

inline void store_syms(u8* dst, __m512i sym) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), _mm512_cvtepi32_epi8(sym));
}
inline void store_syms(u16* dst, __m512i sym) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), _mm512_cvtepi32_epi16(sym));
}

/// Vectorized pop: for lanes in `mask`, new state = (x << 16) | unit, with
/// ascending units from `src` feeding ascending needy lanes (VPEXPANDD).
inline __m512i renorm16(__m512i x, __mmask16 mask, const u16* src) {
    const __m256i raw = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
    const __m512i units32 = _mm512_cvtepu16_epi32(raw);
    const __m512i expanded = _mm512_maskz_expand_epi32(mask, units32);
    const __m512i shifted =
        _mm512_or_si512(_mm512_slli_epi32(x, 16), expanded);
    return _mm512_mask_blend_epi32(mask, x, shifted);
}

}  // namespace

template <typename TSym>
void avx512_decode_groups(u32* states, const u16* units, u64 num_units, i64& p,
                          u64 g_hi, u64 g_lo, const DecodeTables& t, TSym* out) {
    const u32 n = t.prob_bits;
    const __m512i vslot_mask = _mm512_set1_epi32(static_cast<int>((u32{1} << n) - 1));
    const __m512i vL = _mm512_set1_epi32(static_cast<int>(u32{1} << 16));
    __m512i x0 = _mm512_loadu_si512(states);
    __m512i x1 = _mm512_loadu_si512(states + 16);

    for (u64 g = g_hi + 1; g-- > g_lo;) {
        const u64 base = g * 32;
        __m512i sym0, sym1;
        x0 = transform16(x0, base, t, n, vslot_mask, &sym0);
        x1 = transform16(x1, base + 16, t, n, vslot_mask, &sym1);
        store_syms(out + base, sym0);
        store_syms(out + base + 16, sym1);

        const __mmask16 m0 = _mm512_cmplt_epu32_mask(x0, vL);
        const __mmask16 m1 = _mm512_cmplt_epu32_mask(x1, vL);
        const u32 k0 = static_cast<u32>(__builtin_popcount(m0));
        const u32 k1 = static_cast<u32>(__builtin_popcount(m1));
        const u32 k = k0 + k1;
        if (k == 0) continue;
        const i64 ubase = p - static_cast<i64>(k) + 1;
        if (ubase >= 16 && p + 16 <= static_cast<i64>(num_units)) {
            // Fast path: unconditional 16-unit loads stay inside the buffer.
            if (m0) x0 = renorm16(x0, m0, units + ubase);
            if (m1) x1 = renorm16(x1, m1, units + ubase + k0);
            p -= static_cast<i64>(k);
        } else {
            // Buffer edge: spill and use the scalar distribution.
            alignas(64) u32 tmp[32];
            _mm512_storeu_si512(tmp, x0);
            _mm512_storeu_si512(tmp + 16, x1);
            scalar_group_pops(tmp, units, p);
            x0 = _mm512_loadu_si512(tmp);
            x1 = _mm512_loadu_si512(tmp + 16);
        }
    }
    _mm512_storeu_si512(states, x0);
    _mm512_storeu_si512(states + 16, x1);
}

template void avx512_decode_groups<u8>(u32*, const u16*, u64, i64&, u64, u64,
                                       const DecodeTables&, u8*);
template void avx512_decode_groups<u16>(u32*, const u16*, u64, i64&, u64, u64,
                                        const DecodeTables&, u16*);

}  // namespace recoil::simd
