#include "serve/asset_store.hpp"

#include "core/recoil_encoder.hpp"
#include "obs/metrics.hpp"
#include "rans/symbol_stats.hpp"
#include "util/error.hpp"

namespace recoil::serve {

namespace {

/// Register the disk_* metric names against a weak_ptr: a detached or
/// replaced DiskStore reads as 0, never dangles. Re-binding on attach
/// replaces the callbacks by name (registry contract), so the newest
/// backing always owns the names.
void bind_disk_weak(obs::MetricsRegistry* reg,
                    const std::weak_ptr<DiskStore>& wp) {
    using obs::MetricKind;
    auto poll = [wp](u64 DiskStore::Stats::* field) {
        return [wp, field]() -> u64 {
            auto disk = wp.lock();
            return disk == nullptr ? 0 : disk->stats().*field;
        };
    };
    reg->register_callback("disk_puts_total", MetricKind::counter,
                           poll(&DiskStore::Stats::puts));
    reg->register_callback("disk_put_bytes_total", MetricKind::counter,
                           poll(&DiskStore::Stats::put_bytes));
    reg->register_callback("disk_loads_total", MetricKind::counter,
                           poll(&DiskStore::Stats::loads));
    reg->register_callback("disk_load_bytes_total", MetricKind::counter,
                           poll(&DiskStore::Stats::load_bytes));
    reg->register_callback("disk_removes_total", MetricKind::counter,
                           poll(&DiskStore::Stats::removes));
    reg->register_callback("disk_assets", MetricKind::gauge, [wp]() -> u64 {
        auto disk = wp.lock();
        return disk == nullptr ? 0 : disk->size();
    });
}

}  // namespace

void AssetStore::publish_locked(std::shared_ptr<const Asset> ptr) {
    auto& slot = assets_[ptr->name()];
    if (slot != nullptr)
        resident_bytes_.fetch_sub(slot->master_bytes(),
                                  std::memory_order_relaxed);
    resident_bytes_.fetch_add(ptr->master_bytes(), std::memory_order_relaxed);
    slot = std::move(ptr);
}

std::shared_ptr<const Asset> AssetStore::insert(std::shared_ptr<Asset> a) {
    {
        // Memory-only store: publish directly, no write-through ordering.
        util::WriterMutexLock lk(mu_);
        if (disk_ == nullptr) {
            a->uid_ = next_uid_++;
            std::shared_ptr<const Asset> ptr = std::move(a);
            publish_locked(ptr);
            return ptr;
        }
    }
    // disk_mu_ orders write-throughs: two concurrent adds of one name reach
    // disk and memory in the same order, so a restart never resurrects the
    // losing generation.
    util::MutexLock dl(disk_mu_);
    std::shared_ptr<DiskStore> disk;
    {
        util::WriterMutexLock lk(mu_);
        a->uid_ = next_uid_++;
        disk = disk_;
    }
    if (disk != nullptr) {
        // Serialize the master and write through durably BEFORE publishing,
        // so a crash cannot leave a served asset that a restart forgets.
        const std::vector<u8> container =
            a->file() != nullptr ? format::save_recoil_file(*a->file())
                                 : a->chunked()->serialize();
        disk->put(a->name(), a->kind(), container, a->uid_);
    }
    std::shared_ptr<const Asset> ptr = std::move(a);
    {
        util::WriterMutexLock lk(mu_);
        publish_locked(ptr);
    }
    return ptr;
}

std::shared_ptr<const Asset> AssetStore::add_file(std::string name,
                                                 format::RecoilFile f) {
    return insert(std::make_shared<FileAsset>(std::move(name), std::move(f)));
}

std::shared_ptr<const Asset> AssetStore::add_chunked(std::string name,
                                                     stream::ChunkedStream s) {
    return insert(std::make_shared<ChunkedAsset>(std::move(name), std::move(s)));
}

std::shared_ptr<const Asset> AssetStore::encode_bytes(std::string name,
                                                      std::span<const u8> data,
                                                      u32 max_splits,
                                                      u32 prob_bits) {
    RECOIL_CHECK(!data.empty(), "encode_bytes: empty asset");
    StaticModel model(histogram(data), prob_bits);
    auto enc = recoil_encode<Rans32, 32>(data, model, max_splits);
    return add_file(std::move(name), format::make_recoil_file(enc, model, 1));
}

void AssetStore::attach_backing(std::shared_ptr<DiskStore> disk) {
    util::MutexLock dl(disk_mu_);
    // Keep a local handle: disk_ itself is guarded by mu_, and the metrics
    // rebinding below runs after mu_ is dropped (reading disk_ there was a
    // lock-discipline hole the thread-safety analysis rejects).
    const std::shared_ptr<DiskStore> attached = std::move(disk);
    {
        util::WriterMutexLock lk(mu_);
        disk_ = attached;
        if (attached != nullptr)
            next_uid_ = std::max(next_uid_, attached->next_generation());
    }
    // A registry bound before the backing existed picks the disk up now.
    if (metrics_ != nullptr && attached != nullptr)
        bind_disk_weak(metrics_, attached);
}

void AssetStore::bind_metrics(obs::MetricsRegistry* reg) {
    if (reg == nullptr) return;
    using obs::MetricKind;
    reg->register_callback("store_resident_bytes", MetricKind::gauge,
                           [this] { return resident_bytes(); });
    reg->register_callback("store_assets", MetricKind::gauge,
                           [this] { return static_cast<u64>(size()); });
    util::MutexLock dl(disk_mu_);
    metrics_ = reg;
    // disk_ lives under mu_; snapshot it there (disk_mu_ alone serializes
    // attaches, but the analysis — rightly — wants the guarding lock).
    std::shared_ptr<DiskStore> disk;
    {
        util::ReaderMutexLock lk(mu_);
        disk = disk_;
    }
    if (disk != nullptr) bind_disk_weak(reg, disk);
}

std::shared_ptr<DiskStore> AssetStore::backing() const {
    util::ReaderMutexLock lk(mu_);
    return disk_;
}

std::shared_ptr<const Asset> AssetStore::find(const std::string& name) const {
    util::ReaderMutexLock lk(mu_);
    auto it = assets_.find(name);
    return it == assets_.end() ? nullptr : it->second;
}

std::shared_ptr<const Asset> AssetStore::resolve(const std::string& name) {
    if (auto a = find(name)) return a;
    // Nothing to demand-load without a backing store — and unknown-name
    // traffic must not contend on the load mutex.
    if (backing() == nullptr) return nullptr;
    util::MutexLock dl(disk_mu_);
    if (auto a = find(name)) return a;  // raced with another loader
    std::shared_ptr<DiskStore> disk;
    {
        util::ReaderMutexLock lk(mu_);
        disk = disk_;
    }
    if (disk == nullptr) return nullptr;
    auto loaded = disk->load(name);
    if (!loaded) return nullptr;
    std::shared_ptr<Asset> a = asset_from_mapped(*loaded);
    util::WriterMutexLock lk(mu_);
    // The persisted generation IS the uid: cache keys derived before an
    // unload stay valid, and fresh inserts continue strictly above it.
    a->uid_ = loaded->info.generation;
    if (next_uid_ <= a->uid_) next_uid_ = a->uid_ + 1;
    std::shared_ptr<const Asset> ptr = std::move(a);
    publish_locked(ptr);
    return ptr;
}

std::size_t AssetStore::preload() {
    auto disk = backing();
    if (disk == nullptr) return 0;
    std::size_t resident = 0;
    for (const StoredAssetInfo& info : disk->list())
        if (resolve(info.name) != nullptr) ++resident;
    return resident;
}

std::shared_ptr<const Asset> AssetStore::adopt(const DiskStore::Loaded& loaded) {
    std::shared_ptr<Asset> a = asset_from_mapped(loaded);
    util::WriterMutexLock lk(mu_);
    a->uid_ = next_uid_++;
    std::shared_ptr<const Asset> ptr = std::move(a);
    publish_locked(ptr);
    return ptr;
}

bool AssetStore::is_current(const Asset& a) const {
    std::shared_ptr<DiskStore> disk;
    {
        util::ReaderMutexLock lk(mu_);
        auto it = assets_.find(a.name());
        if (it != assets_.end()) return it->second->uid() == a.uid();
        disk = disk_;
    }
    if (disk == nullptr) return false;
    const auto info = disk->info(a.name());  // index lookup, no IO
    return info.has_value() && info->generation == a.uid();
}

bool AssetStore::unload(const std::string& name) {
    util::WriterMutexLock lk(mu_);
    auto it = assets_.find(name);
    if (it == assets_.end()) return false;
    resident_bytes_.fetch_sub(it->second->master_bytes(),
                              std::memory_order_relaxed);
    assets_.erase(it);
    return true;
}

bool AssetStore::erase(const std::string& name) {
    if (backing() == nullptr) return unload(name);  // memory-only store
    util::MutexLock dl(disk_mu_);
    std::shared_ptr<DiskStore> disk;
    bool had = false;
    {
        util::WriterMutexLock lk(mu_);
        auto it = assets_.find(name);
        if (it != assets_.end()) {
            resident_bytes_.fetch_sub(it->second->master_bytes(),
                                      std::memory_order_relaxed);
            assets_.erase(it);
            had = true;
        }
        disk = disk_;
    }
    if (disk != nullptr) had = disk->remove(name) || had;
    return had;
}

std::vector<AssetStore::ResidentAsset> AssetStore::residency() const {
    std::vector<ResidentAsset> out;
    std::shared_ptr<DiskStore> disk;
    {
        util::ReaderMutexLock lk(mu_);
        out.reserve(assets_.size());
        for (const auto& [name, asset] : assets_)
            // use_count samples holders beyond the store's own reference —
            // no copy of the shared_ptr is made here, so the store counts
            // exactly once.
            out.push_back(ResidentAsset{name, asset->master_bytes(), false,
                                        asset.use_count() - 1});
        disk = disk_;
    }
    if (disk != nullptr)
        for (ResidentAsset& r : out) r.backed = disk->info(r.name).has_value();
    return out;
}

std::vector<std::string> AssetStore::names() const {
    util::ReaderMutexLock lk(mu_);
    std::vector<std::string> out;
    out.reserve(assets_.size());
    for (const auto& [name, _] : assets_) out.push_back(name);
    return out;
}

std::size_t AssetStore::size() const {
    util::ReaderMutexLock lk(mu_);
    return assets_.size();
}

}  // namespace recoil::serve
