#include "serve/asset_store.hpp"

#include "core/recoil_encoder.hpp"
#include "rans/symbol_stats.hpp"
#include "util/error.hpp"

namespace recoil::serve {

std::shared_ptr<const Asset> AssetStore::insert(std::shared_ptr<Asset> a) {
    std::unique_lock lk(mu_);
    a->uid_ = next_uid_++;
    std::shared_ptr<const Asset> ptr = std::move(a);
    assets_[ptr->name()] = ptr;
    return ptr;
}

std::shared_ptr<const Asset> AssetStore::add_file(std::string name,
                                                 format::RecoilFile f) {
    return insert(std::make_shared<FileAsset>(std::move(name), std::move(f)));
}

std::shared_ptr<const Asset> AssetStore::add_chunked(std::string name,
                                                     stream::ChunkedStream s) {
    return insert(std::make_shared<ChunkedAsset>(std::move(name), std::move(s)));
}

std::shared_ptr<const Asset> AssetStore::encode_bytes(std::string name,
                                                      std::span<const u8> data,
                                                      u32 max_splits,
                                                      u32 prob_bits) {
    RECOIL_CHECK(!data.empty(), "encode_bytes: empty asset");
    StaticModel model(histogram(data), prob_bits);
    auto enc = recoil_encode<Rans32, 32>(data, model, max_splits);
    return add_file(std::move(name), format::make_recoil_file(enc, model, 1));
}

std::shared_ptr<const Asset> AssetStore::find(const std::string& name) const {
    std::shared_lock lk(mu_);
    auto it = assets_.find(name);
    return it == assets_.end() ? nullptr : it->second;
}

bool AssetStore::erase(const std::string& name) {
    std::unique_lock lk(mu_);
    return assets_.erase(name) != 0;
}

std::vector<std::string> AssetStore::names() const {
    std::shared_lock lk(mu_);
    std::vector<std::string> out;
    out.reserve(assets_.size());
    for (const auto& [name, _] : assets_) out.push_back(name);
    return out;
}

std::size_t AssetStore::size() const {
    std::shared_lock lk(mu_);
    return assets_.size();
}

}  // namespace recoil::serve
