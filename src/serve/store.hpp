#pragma once
// Crash-safe on-disk asset store — the persistence layer the encode-once
// premise demands: master containers survive restarts, so a cold
// ContentServer never re-encodes the fleet, and the asset corpus is bounded
// by disk, not RAM. A store directory holds one generation-suffixed
// container file per live asset plus a small per-asset manifest (magic,
// format version, asset name, kind, generation, FNV checksum of the
// container). Writes are durable: container and manifest are each written
// to a temp file, fsynced, atomically renamed into place, and the directory
// is fsynced; replacement commits via the manifest rename — a crash at any
// point leaves either the old asset or the new one, never a torn file.
// Opening a store
// only stats manifests (milliseconds); containers are mmapped read-only at
// demand-load time and parsed into zero-copy FileAsset/ChunkedAsset views
// (format::SharedBuffer), so serving reads straight out of the page cache.

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/asset.hpp"
#include "util/error.hpp"
#include "util/ints.hpp"
#include "util/thread_annotations.hpp"

namespace recoil::obs {
class MetricsRegistry;
}

namespace recoil::serve {

/// Typed store failure taxonomy. `status` is authoritative for dispatch;
/// what() elaborates for humans and logs.
enum class StoreStatus : u8 {
    io_error = 0,       ///< open/read/write/fsync/rename failed
    bad_manifest = 1,   ///< manifest file does not parse or fails its checksum
    bad_container = 2,  ///< container missing, truncated, or corrupt
    bad_name = 3,       ///< asset name cannot become a store filename
};
const char* store_status_name(StoreStatus status) noexcept;

class StoreError : public Error {
public:
    StoreError(StoreStatus status, const std::string& what)
        : Error(what), status_(status) {}
    StoreStatus status() const noexcept { return status_; }

private:
    StoreStatus status_;
};

/// Read-only mmap of one container file. Shared ownership keeps the mapping
/// alive for every zero-copy asset view cut from it, even after the store
/// entry is replaced or removed (POSIX keeps renamed-over mappings valid).
class MappedFile {
public:
    static std::shared_ptr<const MappedFile> map(
        const std::filesystem::path& path);
    ~MappedFile();
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;

    std::span<const u8> bytes() const noexcept {
        return {static_cast<const u8*>(addr_), size_};
    }

private:
    MappedFile(void* addr, std::size_t size) : addr_(addr), size_(size) {}
    void* addr_ = nullptr;
    std::size_t size_ = 0;
};

/// Manifest contents for one stored asset.
struct StoredAssetInfo {
    std::string name;
    AssetKind kind = AssetKind::static_file;
    u64 generation = 0;       ///< AssetStore uid, carried across restarts
    u64 container_bytes = 0;  ///< exact container file size
    u64 checksum = 0;         ///< FNV-1a over the whole container file
};

struct DiskStoreOptions {
    /// Verify each container's FNV checksum against its manifest when
    /// loading (one sequential pass over the mapped bytes). Off, corruption
    /// is still caught by the container's own structural validation and
    /// trailing checksum at parse time.
    bool verify_on_load = true;
};

/// The on-disk directory: an index of manifests plus durable put/load/
/// remove. Thread-safe; load() returns a mapping that outlives any
/// subsequent replacement of the entry.
class DiskStore {
public:
    /// Open the directory (creating it if absent) and index every manifest.
    /// Raises StoreError on unreadable manifests or missing/short containers.
    explicit DiskStore(std::filesystem::path dir, DiskStoreOptions opt = {});

    const std::filesystem::path& dir() const noexcept { return dir_; }
    std::vector<StoredAssetInfo> list() const RECOIL_EXCLUDES(mu_);
    std::optional<StoredAssetInfo> info(const std::string& name) const
        RECOIL_EXCLUDES(mu_);
    std::size_t size() const RECOIL_EXCLUDES(mu_);
    /// Smallest generation strictly above every stored asset's, so a
    /// reopened AssetStore continues the uid sequence instead of reusing one.
    u64 next_generation() const RECOIL_EXCLUDES(mu_);

    /// Durably write `container` under `name` with the atomic-rename
    /// protocol: the generation-suffixed container file lands first (never
    /// touching the live one), then the manifest rename commits the
    /// replacement — a crash at any point leaves either the old asset or
    /// the new one, plus at worst an orphan container ignored at open.
    void put(const std::string& name, AssetKind kind,
             std::span<const u8> container, u64 generation)
        RECOIL_EXCLUDES(mu_);

    struct Loaded {
        StoredAssetInfo info;
        std::shared_ptr<const MappedFile> map;  ///< keeper for zero-copy views
        /// The mapped bytes were FNV-verified against the manifest
        /// (verify_on_load), so parsers may skip re-hashing them.
        bool checksum_verified = false;
    };
    /// mmap an asset's container. nullopt when the name is not stored;
    /// StoreError when it is stored but unreadable or corrupt.
    std::optional<Loaded> load(const std::string& name) const
        RECOIL_EXCLUDES(mu_);

    /// One corrupt (or unreadable) stored asset found by verify().
    struct VerifyIssue {
        std::string name;
        StoreStatus status = StoreStatus::bad_container;
        std::string detail;
    };
    struct VerifyReport {
        std::size_t checked = 0;
        std::vector<VerifyIssue> issues;
        bool ok() const noexcept { return issues.empty(); }
    };
    /// Re-walk every manifest and container: mmap, FNV-check against the
    /// manifest (regardless of verify_on_load), and structurally parse the
    /// container. Corrupt assets come back as typed issues instead of a
    /// throw on the first defect — the boot-time scrub a server runs so a
    /// bad asset surfaces before its first demand-load does. Healthy assets
    /// are untouched in memory terms: mappings are dropped on return.
    VerifyReport verify() const RECOIL_EXCLUDES(mu_);

    /// Remove an asset's container and manifest. Existing mappings stay
    /// valid. False when the name is not stored.
    bool remove(const std::string& name) RECOIL_EXCLUDES(mu_);

    /// Cumulative disk-traffic counters over this store handle's lifetime
    /// (successful operations only; a failed put/load counts nothing).
    struct Stats {
        u64 puts = 0;
        u64 put_bytes = 0;   ///< container bytes durably written
        u64 loads = 0;
        u64 load_bytes = 0;  ///< container bytes mmapped by load()
        u64 removes = 0;
    };
    Stats stats() const noexcept {
        return {puts_.load(std::memory_order_relaxed),
                put_bytes_.load(std::memory_order_relaxed),
                loads_.load(std::memory_order_relaxed),
                load_bytes_.load(std::memory_order_relaxed),
                removes_.load(std::memory_order_relaxed)};
    }

    /// Publish this store through `reg` as polled disk_* metrics; callbacks
    /// read the same atomics stats() reports.
    void bind_metrics(obs::MetricsRegistry* reg);

private:
    std::filesystem::path container_path(const std::string& name,
                                         u64 generation) const;
    std::filesystem::path manifest_path(const std::string& name) const;

    std::filesystem::path dir_;
    DiskStoreOptions opt_;
    // mu_ guards the manifest index AND frames the on-disk commit protocol
    // (put/remove mutate files under it). The traffic counters below are
    // relaxed atomics — the documented escape that keeps stats() lock-free.
    mutable util::Mutex mu_;
    std::map<std::string, StoredAssetInfo> index_ RECOIL_GUARDED_BY(mu_);
    std::atomic<u64> puts_{0};
    std::atomic<u64> put_bytes_{0};
    mutable std::atomic<u64> loads_{0};  ///< load() is logically const
    mutable std::atomic<u64> load_bytes_{0};
    std::atomic<u64> removes_{0};
};

/// Construct the in-memory asset for a mapped container: kind-dispatched
/// parse with zero-copy unit/id views retaining the mapping. The asset's
/// uid is NOT set here (the AssetStore assigns it from info.generation).
std::shared_ptr<Asset> asset_from_mapped(const DiskStore::Loaded& loaded);

}  // namespace recoil::serve
