#include "serve/range_wire.hpp"

#include <cstring>

#include "core/metadata_codec.hpp"
#include "core/random_access.hpp"
#include "format/wire_io.hpp"
#include "rans/indexed_model.hpp"
#include "simd/dispatch.hpp"
#include "util/error.hpp"

namespace recoil::serve {

using namespace format::wire;

namespace {

constexpr char kMagic[4] = {'R', 'C', 'R', '2'};
constexpr u8 kVersion = 2;
constexpr u8 kFlagHasPrev = 1;
constexpr u8 kFlagIncludesFinal = 2;
constexpr u8 kFlagIndexed = 4;

/// One stream a segment is cut from: metadata + units + model payload.
/// `freqs`/`ids` are set for indexed-model streams, `freq` otherwise. Units
/// and ids are shared buffers, so segment emission hands out borrowed views
/// of the asset's storage instead of copying slices.
struct SegmentSource {
    u64 base = 0;  ///< stream's first symbol in the asset's flat symbol space
    const RecoilMetadata* meta = nullptr;
    const format::UnitBuffer* units = nullptr;
    u32 prob_bits = 0;
    std::span<const u32> freq;
    const std::vector<std::vector<u32>>* freqs = nullptr;
    const format::ByteBuffer* ids = nullptr;
};

/// Emit one segment covering LOCAL symbols [lo, hi) of `src`; returns the
/// covering split count.
u32 emit_segment(format::HashingSink& hs, const SegmentSource& src, u64 lo,
                 u64 hi) {
    const RecoilMetadata& meta = *src.meta;
    const RangePlan plan = plan_range(meta, lo, hi);  // validates the range
    const u32 S = meta.num_splits();
    const bool has_prev = plan.first_split > 0;
    const bool includes_final = plan.last_split == S - 1;
    const bool indexed = src.freqs != nullptr;

    // Unit slice bounds (see header comment for why these are safe).
    const u64 unit_lo = plan.first_split <= 1
                            ? 0
                            : meta.splits[plan.first_split - 2].offset + 1;
    const u64 unit_hi = includes_final ? meta.num_units
                                       : meta.splits[plan.last_split].offset + 1;

    RecoilMetadata sub;
    sub.lanes = meta.lanes;
    sub.state_store_bits = meta.state_store_bits;
    sub.num_symbols = meta.num_symbols;  // absolute indexing
    sub.num_units = unit_hi - unit_lo;
    sub.final_states = meta.final_states;
    const u32 entry_lo = has_prev ? plan.first_split - 1 : plan.first_split;
    const u32 entry_hi =  // exclusive; the final split has no entry of its own
        includes_final ? S - 1 : plan.last_split + 1;
    for (u32 i = entry_lo; i < entry_hi; ++i) {
        SplitPoint sp = meta.splits[i];
        sp.offset -= unit_lo;
        sub.splits.push_back(std::move(sp));
    }

    std::vector<u8> head;
    put_u64(head, src.base);
    head.push_back(static_cast<u8>((has_prev ? kFlagHasPrev : 0) |
                                   (includes_final ? kFlagIncludesFinal : 0) |
                                   (indexed ? kFlagIndexed : 0)));
    head.push_back(static_cast<u8>(src.prob_bits));
    put_u16(head, 0);  // reserved
    put_u64(head, lo);
    put_u64(head, hi);
    put_u32(head, plan.first_split);

    if (indexed) {
        put_u32(head, static_cast<u32>(src.freqs->size()));
        for (const auto& f : *src.freqs) put_freq_table(head, f);
        // The model-id slice must reach every position the covering splits
        // touch: synchronization decodes past cover_hi up to the last
        // split's anchor.
        const u64 ids_lo = plan.cover_lo;
        const u64 ids_hi = plan_touch_hi(meta, plan);
        put_u64(head, ids_lo);
        put_u64(head, ids_hi - ids_lo);
        hs.write(std::move(head));
        hs.write(src.ids->slice(ids_lo, ids_hi - ids_lo));
        head = {};
    } else {
        put_freq_table(head, src.freq);
    }

    const std::vector<u8> meta_bytes = serialize_metadata(sub);
    put_u64(head, meta_bytes.size());
    head.insert(head.end(), meta_bytes.begin(), meta_bytes.end());
    put_u64(head, unit_hi - unit_lo);
    hs.write(std::move(head));
    hs.write(format::unit_wire_bytes(*src.units, unit_lo, unit_hi - unit_lo));

    return plan.last_split - plan.first_split + 1;
}

u32 build_wire_into(std::span<const SegmentSource> sources, u64 lo, u64 hi,
                    u8 sym_width, format::WireSink& sink) {
    // Segments: every source stream intersecting [lo, hi). Counted up front
    // so the header is complete before the first segment is emitted (a
    // streaming sink cannot backpatch).
    u32 count = 0;
    for (const SegmentSource& src : sources) {
        const u64 n = src.meta->num_symbols;
        if (src.base < hi && src.base + n > lo) ++count;
    }
    RECOIL_CHECK(count > 0, "range wire: no intersecting streams");

    format::HashingSink hs(sink);
    std::vector<u8> head;
    head.insert(head.end(), kMagic, kMagic + 4);
    head.push_back(kVersion);
    head.push_back(sym_width);
    put_u16(head, 0);  // reserved
    put_u64(head, lo);
    put_u64(head, hi);
    put_u32(head, count);
    hs.write(std::move(head));

    u32 splits = 0;
    for (const SegmentSource& src : sources) {
        const u64 n = src.meta->num_symbols;
        if (src.base >= hi || src.base + n <= lo) continue;
        const u64 local_lo = lo > src.base ? lo - src.base : 0;
        const u64 local_hi = std::min(hi - src.base, n);
        splits += emit_segment(hs, src, local_lo, local_hi);
    }

    std::vector<u8> trailer;
    put_u64(trailer, hs.digest());
    sink.write(std::move(trailer));
    return splits;
}

/// Everything decode needs for one segment, parsed and validated.
struct ParsedSegment {
    RangeSegmentInfo info;
    u32 prob_bits = 0;
    std::vector<std::vector<u32>> freqs;  ///< one table unless indexed
    std::vector<u8> ids;                  ///< indexed: slice starting at ids_lo
    u64 ids_lo = 0;
    RecoilMetadata meta;  ///< slice metadata: absolute symbols, rebased units
    std::vector<u16> units;
    u32 j0 = 0, j1 = 0;  ///< slice split indices to decode, inclusive
};

struct ParsedRange {
    RangeWireInfo info;
    std::vector<ParsedSegment> segments;
};

ParsedSegment parse_segment(Cursor& c) {
    ParsedSegment p;
    RangeSegmentInfo& info = p.info;
    info.base = c.get_u64();
    const u8 flags = c.get_u8();
    info.has_prev = (flags & kFlagHasPrev) != 0;
    info.includes_final = (flags & kFlagIncludesFinal) != 0;
    info.indexed = (flags & kFlagIndexed) != 0;
    p.prob_bits = c.get_u8();
    if (p.prob_bits < 1 || p.prob_bits > 16) raise("range wire: bad prob_bits");
    if (c.get_u16() != 0) raise("range wire: reserved bits set");

    info.lo = c.get_u64();
    info.hi = c.get_u64();
    info.first_split = c.get_u32();

    u64 ids_len = 0;
    if (info.indexed) {
        const u32 k = c.get_u32();
        if (k == 0 || k > 256) raise("range wire: bad model count");
        p.freqs.resize(k);
        for (auto& f : p.freqs) f = get_freq_table(c, p.prob_bits);
        p.ids_lo = c.get_u64();
        ids_len = c.get_u64();
        auto ids = c.get_bytes(ids_len);
        p.ids.assign(ids.begin(), ids.end());
    } else {
        p.freqs.push_back(get_freq_table(c, p.prob_bits));
    }

    const u64 meta_len = c.get_u64();
    p.meta = deserialize_metadata(c.get_bytes(meta_len));

    const u64 unit_count = c.get_u64();
    auto units = c.get_unit_bytes(unit_count);
    p.units.resize(unit_count);
    // A boundary-only slice can carry zero units; memcpy from the (then
    // null) slice pointer is UB even at size 0.
    if (unit_count != 0)
        std::memcpy(p.units.data(), units.data(), unit_count * 2);
    if (p.meta.num_units != unit_count)
        raise("range wire: metadata/slice length mismatch");
    info.unit_count = unit_count;

    // Derive the decode schedule and coverage from the slice structure.
    const u32 slice_splits = p.meta.num_splits();
    if ((info.has_prev || !info.includes_final) && p.meta.splits.empty())
        raise("range wire: boundary split missing");
    p.j0 = info.has_prev ? 1 : 0;
    p.j1 = info.includes_final ? slice_splits - 1
                               : slice_splits - 2;  // skip the implicit final
    if (p.j1 < p.j0 || p.j1 >= slice_splits)
        raise("range wire: no decodable splits");
    info.splits_served = p.j1 - p.j0 + 1;
    info.cover_lo = info.has_prev ? p.meta.splits.front().min_index : 0;
    info.cover_hi = info.includes_final ? p.meta.num_symbols
                                        : p.meta.splits.back().min_index;
    if (info.lo < info.cover_lo || info.hi > info.cover_hi ||
        info.lo >= info.hi)
        raise("range wire: requested range outside slice coverage");
    if (info.indexed) {
        // The id slice must start at the coverage base and reach the last
        // shipped split's anchor (what synchronization touches), exactly.
        const u64 touch_hi = info.includes_final
                                 ? p.meta.num_symbols
                                 : p.meta.splits.back().anchor_index + 1;
        if (p.ids_lo != info.cover_lo || touch_hi < p.ids_lo ||
            ids_len != touch_hi - p.ids_lo)
            raise("range wire: model id slice does not match coverage");
    }
    return p;
}

ParsedRange parse_range_wire(std::span<const u8> bytes) {
    Cursor c{checked_payload(bytes, "range wire"), "range wire"};
    if (std::memcmp(c.get_bytes(4).data(), kMagic, 4) != 0)
        raise("range wire: bad magic");
    if (c.get_u8() != kVersion) raise("range wire: unsupported version");

    ParsedRange p;
    RangeWireInfo& info = p.info;
    info.sym_width = c.get_u8();
    if (info.sym_width != 1 && info.sym_width != 2)
        raise("range wire: bad symbol width");
    if (c.get_u16() != 0) raise("range wire: reserved bits set");
    info.lo = c.get_u64();
    info.hi = c.get_u64();
    if (info.lo >= info.hi) raise("range wire: empty range");

    const u32 count = c.get_u32();
    if (count == 0 || count > (u32{1} << 24))
        raise("range wire: bad segment count");
    p.segments.reserve(count);
    // Segments must tile [lo, hi) exactly, in order, with no gaps: the next
    // segment starts where the previous one ended.
    u64 expected = info.lo;
    for (u32 i = 0; i < count; ++i) {
        ParsedSegment seg = parse_segment(c);
        if (seg.info.lo > expected || seg.info.base != expected - seg.info.lo)
            raise("range wire: segments do not tile the range");
        if (seg.info.hi > info.hi - seg.info.base)
            raise("range wire: segment past the requested range");
        expected = seg.info.base + seg.info.hi;
        info.splits_served += seg.info.splits_served;
        info.segments.push_back(seg.info);
        p.segments.push_back(std::move(seg));
    }
    if (expected != info.hi) raise("range wire: segments do not reach hi");
    return p;
}

template <typename TSym>
std::vector<TSym> decode_range_impl(std::span<const u8> bytes,
                                    ThreadPool* pool, simd::Backend backend) {
    ParsedRange p = parse_range_wire(bytes);
    if (p.info.sym_width != sizeof(TSym))
        raise("range wire: symbol width mismatch");

    std::vector<TSym> out(p.info.hi - p.info.lo);
    for (const ParsedSegment& seg : p.segments) {
        const RangeSegmentInfo& info = seg.info;
        std::vector<TSym> cover;
        if (info.indexed) {
            std::vector<StaticModel> models;
            models.reserve(seg.freqs.size());
            for (const auto& f : seg.freqs)
                models.emplace_back(std::span<const u32>(f), seg.prob_bits, 0);
            IndexedModelSet set(std::move(models), seg.ids);
            DecodeTables t = set.tables();
            // The slice's ids[0] is position ids_lo; rebase so the decoder's
            // absolute indexing lands on it (integer arithmetic to stay
            // clear of out-of-bounds pointer UB). The guarded range fn keeps
            // SIMD for the slice interior while every id access near the
            // shipped slice's edges goes through the scalar per-symbol loop
            // — the full-group gathers can never reach outside
            // [ids_lo, ids_lo + ids.size()).
            t.ids = reinterpret_cast<const u8*>(
                reinterpret_cast<std::uintptr_t>(t.ids) -
                static_cast<std::uintptr_t>(seg.ids_lo));
            simd::GuardedSimdRangeFn<TSym> range_fn;
            range_fn.backend = simd::clamp_backend(backend);
            range_fn.valid_lo = seg.ids_lo;
            range_fn.valid_hi = seg.ids_lo + seg.ids.size();
            cover = recoil_decode_cover<Rans32, 32, TSym>(
                std::span<const u16>(seg.units), seg.meta, t, seg.j0, seg.j1,
                info.cover_lo, info.cover_hi, pool, range_fn);
        } else {
            StaticModel model(std::span<const u32>(seg.freqs[0]), seg.prob_bits, 0);
            simd::SimdRangeFn<TSym> range_fn;
            range_fn.backend = simd::clamp_backend(backend);
            cover = recoil_decode_cover<Rans32, 32, TSym>(
                std::span<const u16>(seg.units), seg.meta, model.tables(), seg.j0,
                seg.j1, info.cover_lo, info.cover_hi, pool, range_fn);
        }
        std::copy(cover.begin() + static_cast<std::ptrdiff_t>(info.lo - info.cover_lo),
                  cover.begin() + static_cast<std::ptrdiff_t>(info.hi - info.cover_lo),
                  out.begin() +
                      static_cast<std::ptrdiff_t>(info.base + info.lo - p.info.lo));
    }
    return out;
}

}  // namespace

u32 range_wire_into(const format::RecoilFile& f, u64 lo, u64 hi,
                    format::WireSink& sink) {
    SegmentSource src;
    src.base = 0;
    src.meta = &f.metadata;
    src.units = &f.units;
    src.prob_bits = f.prob_bits;
    if (f.is_indexed()) {
        const auto& payload = std::get<format::RecoilFile::IndexedPayload>(f.model);
        RECOIL_CHECK(payload.ids.size() >= f.metadata.num_symbols,
                     "range wire: id stream shorter than the symbol stream");
        src.freqs = &payload.freqs;
        src.ids = &payload.ids;
    } else {
        src.freq = std::get<format::RecoilFile::StaticPayload>(f.model).freq;
    }
    return build_wire_into({&src, 1}, lo, hi, f.sym_width, sink);
}

u32 range_wire_into(const stream::ChunkedStream& s, u64 lo, u64 hi,
                    format::WireSink& sink) {
    const std::vector<u64> offsets = s.chunk_offsets();
    std::vector<SegmentSource> sources;
    sources.reserve(s.chunks.size());
    for (std::size_t i = 0; i < s.chunks.size(); ++i) {
        SegmentSource src;
        src.base = offsets[i];
        src.meta = &s.chunks[i].metadata;
        src.units = &s.chunks[i].units;
        src.prob_bits = s.prob_bits;
        src.freq = s.chunks[i].freq;
        sources.push_back(src);
    }
    return build_wire_into(sources, lo, hi, 1, sink);
}

BuiltRangeWire build_range_wire(const format::RecoilFile& f, u64 lo, u64 hi) {
    BuiltRangeWire built;
    format::VectorSink sink;
    built.splits = range_wire_into(f, lo, hi, sink);
    built.bytes = std::move(sink.out);
    return built;
}

BuiltRangeWire build_range_wire(const stream::ChunkedStream& s, u64 lo, u64 hi) {
    BuiltRangeWire built;
    format::VectorSink sink;
    built.splits = range_wire_into(s, lo, hi, sink);
    built.bytes = std::move(sink.out);
    return built;
}

RangeWireInfo inspect_range_wire(std::span<const u8> bytes) {
    return parse_range_wire(bytes).info;
}

std::vector<u8> decode_range_wire(std::span<const u8> bytes, ThreadPool* pool,
                                  simd::Backend backend) {
    return decode_range_impl<u8>(bytes, pool, backend);
}

std::vector<u16> decode_range_wire_u16(std::span<const u8> bytes,
                                       ThreadPool* pool,
                                       simd::Backend backend) {
    return decode_range_impl<u16>(bytes, pool, backend);
}

}  // namespace recoil::serve
