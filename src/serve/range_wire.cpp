#include "serve/range_wire.hpp"

#include <cstring>

#include "core/metadata_codec.hpp"
#include "core/random_access.hpp"
#include "format/wire_io.hpp"
#include "simd/dispatch.hpp"
#include "util/error.hpp"

namespace recoil::serve {

using namespace format::wire;

namespace {

constexpr char kMagic[4] = {'R', 'C', 'R', '1'};
constexpr u8 kFlagHasPrev = 1;
constexpr u8 kFlagIncludesFinal = 2;

/// Everything decode needs, parsed and checksum-verified.
struct ParsedRange {
    RangeWireInfo info;
    std::vector<u32> freq;
    RecoilMetadata meta;  ///< slice metadata: absolute symbols, rebased units
    std::vector<u16> units;
    u32 j0 = 0, j1 = 0;  ///< slice split indices to decode, inclusive
};

ParsedRange parse_range_wire(std::span<const u8> bytes) {
    Cursor c{checked_payload(bytes, "range wire"), "range wire"};
    if (std::memcmp(c.get_bytes(4).data(), kMagic, 4) != 0)
        raise("range wire: bad magic");
    if (c.get_u8() != 1) raise("range wire: unsupported version");

    ParsedRange p;
    RangeWireInfo& info = p.info;
    info.sym_width = c.get_u8();
    if (info.sym_width != 1 && info.sym_width != 2)
        raise("range wire: bad symbol width");
    const u8 flags = c.get_u8();
    info.has_prev = (flags & kFlagHasPrev) != 0;
    info.includes_final = (flags & kFlagIncludesFinal) != 0;
    info.prob_bits = c.get_u8();
    if (info.prob_bits < 1 || info.prob_bits > 16)
        raise("range wire: bad prob_bits");

    p.freq = get_freq_table(c, info.prob_bits);

    info.lo = c.get_u64();
    info.hi = c.get_u64();
    info.first_split = c.get_u32();

    const u64 meta_len = c.get_u64();
    p.meta = deserialize_metadata(c.get_bytes(meta_len));

    const u64 unit_count = c.get_u64();
    auto units = c.get_unit_bytes(unit_count);
    p.units.resize(unit_count);
    std::memcpy(p.units.data(), units.data(), unit_count * 2);
    if (p.meta.num_units != unit_count)
        raise("range wire: metadata/slice length mismatch");
    info.unit_count = unit_count;

    // Derive the decode schedule and coverage from the slice structure.
    const u32 slice_splits = p.meta.num_splits();
    if (info.has_prev && p.meta.splits.empty())
        raise("range wire: boundary split missing");
    p.j0 = info.has_prev ? 1 : 0;
    p.j1 = info.includes_final ? slice_splits - 1
                               : slice_splits - 2;  // skip the implicit final
    if (p.j1 < p.j0 || p.j1 >= slice_splits)
        raise("range wire: no decodable splits");
    info.splits_served = p.j1 - p.j0 + 1;
    info.cover_lo = info.has_prev ? p.meta.splits.front().min_index : 0;
    info.cover_hi = info.includes_final ? p.meta.num_symbols
                                        : p.meta.splits.back().min_index;
    if (info.lo < info.cover_lo || info.hi > info.cover_hi ||
        info.lo >= info.hi)
        raise("range wire: requested range outside slice coverage");
    return p;
}

template <typename TSym>
std::vector<TSym> decode_range_impl(std::span<const u8> bytes,
                                    ThreadPool* pool) {
    ParsedRange p = parse_range_wire(bytes);
    if (p.info.sym_width != sizeof(TSym))
        raise("range wire: symbol width mismatch");
    StaticModel model(std::span<const u32>(p.freq), p.info.prob_bits, 0);
    const DecodeTables& tables = model.tables();
    const RangeWireInfo& info = p.info;

    simd::SimdRangeFn<TSym> range_fn;
    auto cover = recoil_decode_cover<Rans32, 32, TSym>(
        std::span<const u16>(p.units), p.meta, tables, p.j0, p.j1,
        info.cover_lo, info.cover_hi, pool, range_fn);
    return std::vector<TSym>(
        cover.begin() + static_cast<std::ptrdiff_t>(info.lo - info.cover_lo),
        cover.begin() + static_cast<std::ptrdiff_t>(info.hi - info.cover_lo));
}

}  // namespace

std::vector<u8> build_range_wire(const format::RecoilFile& f, u64 lo, u64 hi) {
    if (f.is_indexed())
        raise("range wire: indexed-model assets are not supported");
    const RecoilMetadata& meta = f.metadata;
    const RangePlan plan = plan_range(meta, lo, hi);  // validates the range
    const u32 S = meta.num_splits();
    const bool has_prev = plan.first_split > 0;
    const bool includes_final = plan.last_split == S - 1;

    // Unit slice bounds (see header comment for why these are safe).
    const u64 unit_lo = plan.first_split <= 1
                            ? 0
                            : meta.splits[plan.first_split - 2].offset + 1;
    const u64 unit_hi = includes_final ? meta.num_units
                                       : meta.splits[plan.last_split].offset + 1;

    RecoilMetadata sub;
    sub.lanes = meta.lanes;
    sub.state_store_bits = meta.state_store_bits;
    sub.num_symbols = meta.num_symbols;  // absolute indexing
    sub.num_units = unit_hi - unit_lo;
    sub.final_states = meta.final_states;
    const u32 entry_lo = has_prev ? plan.first_split - 1 : plan.first_split;
    const u32 entry_hi =  // exclusive; the final split has no entry of its own
        includes_final ? S - 1 : plan.last_split + 1;
    for (u32 i = entry_lo; i < entry_hi; ++i) {
        SplitPoint sp = meta.splits[i];
        sp.offset -= unit_lo;
        sub.splits.push_back(std::move(sp));
    }

    std::vector<u8> out;
    out.insert(out.end(), kMagic, kMagic + 4);
    out.push_back(1);  // version
    out.push_back(f.sym_width);
    out.push_back(static_cast<u8>((has_prev ? kFlagHasPrev : 0) |
                                  (includes_final ? kFlagIncludesFinal : 0)));
    out.push_back(static_cast<u8>(f.prob_bits));

    const auto& payload = std::get<format::RecoilFile::StaticPayload>(f.model);
    put_freq_table(out, payload.freq);

    put_u64(out, lo);
    put_u64(out, hi);
    put_u32(out, plan.first_split);

    const std::vector<u8> meta_bytes = serialize_metadata(sub);
    put_u64(out, meta_bytes.size());
    out.insert(out.end(), meta_bytes.begin(), meta_bytes.end());

    put_u64(out, unit_hi - unit_lo);
    const auto* ub = reinterpret_cast<const u8*>(f.units.data() + unit_lo);
    out.insert(out.end(), ub, ub + (unit_hi - unit_lo) * 2);

    append_checksum(out);
    return out;
}

RangeWireInfo inspect_range_wire(std::span<const u8> bytes) {
    return parse_range_wire(bytes).info;
}

std::vector<u8> decode_range_wire(std::span<const u8> bytes, ThreadPool* pool) {
    return decode_range_impl<u8>(bytes, pool);
}

std::vector<u16> decode_range_wire_u16(std::span<const u8> bytes,
                                       ThreadPool* pool) {
    return decode_range_impl<u16>(bytes, pool);
}

}  // namespace recoil::serve
