#pragma once
// Async submission front end of the serve subsystem, replacing the old
// barrier-only RequestScheduler: submit() returns immediately with a future
// (and optionally fires a completion callback), so a mixed fleet's requests
// overlap instead of advancing in lock-step batches. Workers call
// ContentServer::serve, which single-flights concurrent cold requests for
// the same response — submitting the same cold key from many workers costs
// one combine, and everyone shares the wire.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace recoil::serve {

class Session {
public:
    struct Options {
        /// Concurrent serves. >= 2 lets cold requests coalesce instead of
        /// serializing behind one worker.
        unsigned workers = 4;
    };
    /// Invoked on a worker thread when the request completes, before the
    /// future becomes ready. Exceptions are swallowed (workers must live).
    using Callback = std::function<void(const ServeResult&)>;

    explicit Session(ContentServer& server) : Session(server, Options()) {}
    Session(ContentServer& server, Options opt);
    /// Drains outstanding requests (every future becomes ready), then joins.
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Queue a request; the shared future is also safe to drop (fire and
    /// forget) or to copy to multiple consumers.
    std::shared_future<ServeResult> submit(ServeRequest req, Callback cb = {});

    /// Block until every submitted request has completed.
    void wait_idle();

    /// Requests submitted but not yet completed.
    std::size_t in_flight() const;

private:
    struct Task {
        ServeRequest req;
        std::promise<ServeResult> promise;
        Callback cb;
    };

    void worker_loop();

    ContentServer& server_;
    mutable std::mutex mu_;
    std::condition_variable cv_;       ///< workers: work available / stopping
    std::condition_variable idle_cv_;  ///< wait_idle: everything completed
    std::deque<Task> queue_;
    std::size_t active_ = 0;  ///< tasks currently being served
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace recoil::serve
