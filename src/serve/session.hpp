#pragma once
// Async submission front end of the serve subsystem, replacing the old
// barrier-only RequestScheduler: submit() returns immediately with a future
// (and optionally fires a completion callback), so a mixed fleet's requests
// overlap instead of advancing in lock-step batches. Workers call
// ContentServer::serve, which single-flights concurrent cold requests for
// the same response — submitting the same cold key from many workers costs
// one combine, and everyone shares the wire.

#include <deque>
#include <functional>
#include <future>

#include "serve/server.hpp"
#include "util/executor.hpp"
#include "util/thread_annotations.hpp"

namespace recoil::serve {

class Session {
public:
    struct Options {
        /// Concurrent serves. >= 2 lets cold requests coalesce instead of
        /// serializing behind one worker.
        unsigned workers = 4;
    };
    /// Invoked on a worker thread when the request completes, before the
    /// future becomes ready. Exceptions are swallowed (workers must live).
    using Callback = std::function<void(const ServeResult&)>;

    explicit Session(ContentServer& server) : Session(server, Options()) {}
    Session(ContentServer& server, Options opt);
    /// Drains outstanding requests (every future becomes ready), then joins.
    ~Session() RECOIL_EXCLUDES(mu_);
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Invoked on a worker thread once per streamed frame, in stream order
    /// (header, bodies, FIN). The span is valid only for the call — a
    /// transport would write it to its socket, not retain it. Exceptions
    /// are swallowed (workers must live); the stream still runs to its end.
    using FrameCallback = std::function<void(std::span<const u8>)>;

    /// Queue a request; the shared future is also safe to drop (fire and
    /// forget) or to copy to multiple consumers.
    std::shared_future<ServeResult> submit(ServeRequest req, Callback cb = {})
        RECOIL_EXCLUDES(mu_);

    /// Queue a request served through ContentServer::serve_stream: frames
    /// are delivered to `on_frame` as the worker pulls them (the worker's
    /// pace is the stream's backpressure), and the future resolves with the
    /// stream's head status once the FIN has been delivered. The result
    /// carries stats but never a wire — the frames were the payload.
    std::shared_future<ServeResult> submit_stream(ServeRequest req,
                                                  FrameCallback on_frame,
                                                  StreamOptions opt = {})
        RECOIL_EXCLUDES(mu_);

    /// Block until every submitted request has completed.
    void wait_idle() RECOIL_EXCLUDES(mu_);

    /// Requests submitted but not yet completed.
    std::size_t in_flight() const RECOIL_EXCLUDES(mu_);

    /// Cumulative session-side counters (the server's totals() aggregate
    /// every session; these isolate one). Counters only — the API is
    /// otherwise unchanged.
    struct Stats {
        u64 submitted = 0;  ///< submit() + submit_stream() calls accepted
        u64 completed = 0;  ///< futures resolved (ok or typed failure)
        u64 failed = 0;     ///< completed with a non-ok code
        u64 streamed = 0;   ///< completed via submit_stream
        u64 frames_delivered = 0;  ///< frames handed to frame callbacks
    };
    Stats stats() const RECOIL_EXCLUDES(mu_);

private:
    struct Task {
        ServeRequest req;
        std::promise<ServeResult> promise;
        Callback cb;
        bool streamed = false;
        FrameCallback frame_cb;
        StreamOptions stream_opt;
    };

    void worker_loop() RECOIL_EXCLUDES(mu_);

    ContentServer& server_;
    // Fleet-wide session_* counters in the server's registry, shared across
    // every Session on that server (get-or-create by name) and incremented
    // in lockstep with the per-session stats_. References: the server — and
    // with it the registry — outlives its sessions by contract.
    obs::Counter& c_submitted_;
    obs::Counter& c_completed_;
    obs::Counter& c_failed_;
    obs::Counter& c_streamed_;
    obs::Counter& c_frames_;
    mutable util::Mutex mu_;
    util::CondVar cv_;       ///< workers: work available / stopping
    util::CondVar idle_cv_;  ///< wait_idle: everything completed
    std::deque<Task> queue_ RECOIL_GUARDED_BY(mu_);
    std::size_t active_ RECOIL_GUARDED_BY(mu_) = 0;  ///< tasks being served
    bool stopping_ RECOIL_GUARDED_BY(mu_) = false;
    Stats stats_ RECOIL_GUARDED_BY(mu_);
    /// A PRIVATE executor whose only tasks are this session's N long-lived
    /// worker loops. Those loops block (on cv_, and inside
    /// ServeStream::next_frame), which the shared global_executor() forbids
    /// — but on a dedicated pool whose task set is exactly the loops,
    /// blocking starves nobody. Stream producer tasks run on the global
    /// executor, a different pool, so a session worker parked in
    /// next_frame() can never sit in front of the producer it waits for.
    /// Declared last, destroyed first: the destructor's drain (which joins
    /// the loops) runs while mu_/cv_ are still alive.
    util::Executor exec_;
};

}  // namespace recoil::serve
