#pragma once
// Asset layer of the content-delivery service (§1, §3.3). Each asset is
// encoded ONCE at the largest parallelism any client may request; everything
// the serving path later adapts is metadata, never the bitstream. Asset is a
// polymorphic interface so the server core is agnostic to the asset's shape:
// a single Recoil container (static or indexed model) and a chunked stream
// answer the same two questions — "combine to this parallelism" and "slice
// this symbol range" — each producing its own wire form.

#include <memory>
#include <string>

#include "format/container.hpp"
#include "serve/protocol.hpp"
#include "serve/range_wire.hpp"
#include "stream/chunked.hpp"

namespace recoil::serve {

enum class AssetKind : u8 { static_file = 0, indexed_file = 1, chunked = 2 };
const char* kind_name(AssetKind kind) noexcept;

/// One response body: shared wire bytes plus the parallel work-item count
/// the wire actually carries.
struct ServedWire {
    WireBytes wire;
    u32 splits = 0;
};

/// One immutable encoded asset. Instances are shared const after insertion
/// into an AssetStore, so every accessor is safe under concurrent serving.
class Asset {
public:
    virtual ~Asset() = default;
    Asset(const Asset&) = delete;
    Asset& operator=(const Asset&) = delete;

    const std::string& name() const noexcept { return name_; }
    /// Store-assigned generation, unique per insert. Cached responses are
    /// keyed by (name, uid) so replacing an asset under the same name can
    /// never serve the predecessor's bytes.
    u64 uid() const noexcept { return uid_; }
    /// Serialized size of the full-parallelism master (what a cache-less
    /// server keeps on disk).
    u64 master_bytes() const noexcept { return master_bytes_; }
    /// Split budget chosen at encode time; ceiling for any client's request.
    u32 max_parallelism() const noexcept { return max_parallelism_; }

    virtual AssetKind kind() const noexcept = 0;
    virtual u64 num_symbols() const noexcept = 0;
    /// Wire form a full-asset response uses (file or chunked).
    virtual PayloadKind payload_kind() const noexcept = 0;

    /// Stream the full-asset wire, adapted to `parallelism` work items
    /// (caller clamps to max_parallelism()), into `sink` piece by piece:
    /// small owned structural sections plus borrowed views of the asset's
    /// shared payload storage. Metadata-only adaptation — the bitstream
    /// bytes are never re-encoded, and never copied either. Returns the
    /// split count the wire carries.
    virtual u32 combine_into(u32 parallelism, format::WireSink& sink) const = 0;
    /// Stream the range wire for symbols [lo, hi) (caller validates bounds)
    /// into `sink`, one RCR2 segment at a time. Returns covering splits.
    virtual u32 range_into(u64 lo, u64 hi, format::WireSink& sink) const = 0;

    /// Materializing adapters over the streaming producers above — the only
    /// buffer assembly in the asset layer (one producer, two framings).
    ServedWire combine(u32 parallelism) const;
    ServedWire range(u64 lo, u64 hi) const;

    /// Concrete payload accessors; nullptr when the asset is another kind.
    virtual const format::RecoilFile* file() const noexcept { return nullptr; }
    virtual const stream::ChunkedStream* chunked() const noexcept { return nullptr; }

protected:
    Asset(std::string name, u64 master_bytes, u32 max_parallelism)
        : name_(std::move(name)),
          master_bytes_(master_bytes),
          max_parallelism_(max_parallelism) {}

private:
    friend class AssetStore;  // assigns uid at insertion
    std::string name_;
    u64 uid_ = 0;
    u64 master_bytes_ = 0;
    u32 max_parallelism_ = 1;
};

/// A single Recoil container, static or indexed model.
class FileAsset final : public Asset {
public:
    FileAsset(std::string name, format::RecoilFile f);

    AssetKind kind() const noexcept override {
        return file_.is_indexed() ? AssetKind::indexed_file : AssetKind::static_file;
    }
    u64 num_symbols() const noexcept override { return file_.metadata.num_symbols; }
    PayloadKind payload_kind() const noexcept override { return PayloadKind::file; }
    u32 combine_into(u32 parallelism, format::WireSink& sink) const override;
    u32 range_into(u64 lo, u64 hi, format::WireSink& sink) const override;
    const format::RecoilFile* file() const noexcept override { return &file_; }

private:
    format::RecoilFile file_;
};

/// A chunked stream (frame/tile-structured content). Ranges are addressed in
/// the stream's flat symbol space and decompose into per-chunk segments.
class ChunkedAsset final : public Asset {
public:
    ChunkedAsset(std::string name, stream::ChunkedStream s);

    AssetKind kind() const noexcept override { return AssetKind::chunked; }
    u64 num_symbols() const noexcept override { return stream_.total_symbols(); }
    PayloadKind payload_kind() const noexcept override { return PayloadKind::chunked; }
    u32 combine_into(u32 parallelism, format::WireSink& sink) const override;
    u32 range_into(u64 lo, u64 hi, format::WireSink& sink) const override;
    const stream::ChunkedStream* chunked() const noexcept override { return &stream_; }

private:
    stream::ChunkedStream stream_;
};

}  // namespace recoil::serve
