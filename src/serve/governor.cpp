#include "serve/governor.hpp"

#include <algorithm>
#include <iterator>
#include <vector>

#include "obs/metrics.hpp"

namespace recoil::serve {

void ResourceGovernor::pin(const std::string& name) {
    util::MutexLock lk(mu_);
    pinned_.insert(name);
    futile_usage_.store(0, std::memory_order_relaxed);  // eligibility changed
}

void ResourceGovernor::unpin(const std::string& name) {
    util::MutexLock lk(mu_);
    pinned_.erase(name);
    futile_usage_.store(0, std::memory_order_relaxed);  // eligibility changed
}

bool ResourceGovernor::pinned(const std::string& name) const {
    util::MutexLock lk(mu_);
    return pinned_.contains(name);
}

void ResourceGovernor::note_access(const std::string& name) {
    if (!enabled()) return;  // no tracking cost when there is no budget
    const u64 tick = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Never stall a request behind a running enforce() pass: recency is a
    // heuristic, so a dropped update is cheaper than a blocked serve.
    if (!mu_.try_lock()) return;
    util::MutexLock lk(mu_, util::adopt_lock);
    // Hard cap against unbounded growth from churning asset names when no
    // pressure pass (which prunes against residency) ever runs. Resetting
    // the whole clock is crude but self-correcting: live assets are
    // re-noted by their very next request.
    if (last_access_.size() >= 65536) last_access_.clear();
    last_access_[name] = tick;
}

void ResourceGovernor::set_budget(u64 budget_bytes) {
    // mu_ serializes against a running enforce() pass so the new target is
    // either seen by the whole pass or by the next one, never mid-pass.
    util::MutexLock lk(mu_);
    budget_.store(budget_bytes, std::memory_order_relaxed);
    // Re-arm the futility latch: the stuck level was measured against the
    // old budget and means nothing under the new one.
    futile_usage_.store(0, std::memory_order_relaxed);
}

u64 ResourceGovernor::enforce() {
    if (!enabled()) return 0;
    util::MutexLock lk(mu_);
    const u64 budget = budget_.load(std::memory_order_relaxed);
    if (cache_.current_bytes() + store_.resident_bytes() <= budget) {
        futile_usage_.store(0, std::memory_order_relaxed);
        return 0;
    }
    ++stats_.enforcements;

    // Rank unload candidates coldest-first. An asset never reported to
    // note_access (preloaded and idle since) has tick 0: coldest of all.
    std::vector<AssetStore::ResidentAsset> residents = store_.residency();

    // The recency clock only needs entries for resident assets; names that
    // left the store (evicted, replaced, unloaded by earlier passes) would
    // otherwise accumulate forever.
    if (last_access_.size() > residents.size()) {
        std::unordered_set<std::string> live;
        live.reserve(residents.size());
        for (const auto& r : residents) live.insert(r.name);
        for (auto it = last_access_.begin(); it != last_access_.end();)
            it = live.contains(it->first) ? std::next(it)
                                          : last_access_.erase(it);
    }
    // Ticks are looked up here, not in the sort comparator: the thread
    // safety analysis checks lambda bodies as standalone functions, so a
    // comparator touching last_access_ (guarded by mu_) would not pass.
    std::vector<std::pair<u64, std::size_t>> order;
    order.reserve(residents.size());
    for (std::size_t i = 0; i < residents.size(); ++i) {
        auto it = last_access_.find(residents[i].name);
        order.emplace_back(it == last_access_.end() ? u64{0} : it->second, i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });

    u64 released = 0;
    for (const auto& ranked : order) {
        const AssetStore::ResidentAsset& r = residents[ranked.second];
        if (cache_.current_bytes() + store_.resident_bytes() <= budget) break;
        if (pinned_.contains(r.name)) {
            ++stats_.skipped_pinned;
            continue;
        }
        if (!r.backed) continue;  // unload would be data loss, not relief
        if (r.external_refs > 0) {
            // An in-flight stream (or serve) pins the asset: unloading
            // frees nothing until it finishes, and forces a reload after.
            ++stats_.skipped_in_use;
            continue;
        }
        if (store_.unload(r.name)) {
            released += r.bytes;
            ++stats_.unloads;
            stats_.bytes_unloaded += r.bytes;
            last_access_.erase(r.name);  // re-learned on reload
        }
    }

    // The store alone could not get under budget (everything left is hot,
    // pinned, in use, or unbacked): the cache absorbs the remainder through
    // its own eviction policy.
    const u64 resident_now = store_.resident_bytes();
    if (cache_.current_bytes() + resident_now > budget) {
        const u64 cache_target =
            budget > resident_now ? budget - resident_now : 0;
        ++stats_.cache_shrinks;
        cache_.shrink_to(cache_target);
    }
    // Futility latch: a pass that ends still over budget (everything left
    // is pinned, unbacked, or in use) records the stuck usage level so the
    // hot path's pressure_actionable() stops re-running identical passes
    // until something changes.
    const u64 usage_now = cache_.current_bytes() + store_.resident_bytes();
    futile_usage_.store(usage_now > budget ? usage_now : 0,
                        std::memory_order_relaxed);
    return released;
}

GovernorStats ResourceGovernor::stats() const {
    util::MutexLock lk(mu_);
    GovernorStats s = stats_;
    s.budget_bytes = budget_.load(std::memory_order_relaxed);
    s.cache_bytes = cache_.current_bytes();
    s.resident_bytes = store_.resident_bytes();
    return s;
}

void ResourceGovernor::bind_metrics(obs::MetricsRegistry* reg) {
    if (reg == nullptr) return;
    using obs::MetricKind;
    auto poll = [this](u64 GovernorStats::* field) {
        return [this, field] { return stats().*field; };
    };
    reg->register_callback("governor_budget_bytes", MetricKind::gauge,
                           poll(&GovernorStats::budget_bytes));
    reg->register_callback("governor_cache_bytes", MetricKind::gauge,
                           poll(&GovernorStats::cache_bytes));
    reg->register_callback("governor_resident_bytes", MetricKind::gauge,
                           poll(&GovernorStats::resident_bytes));
    reg->register_callback("governor_enforcements_total", MetricKind::counter,
                           poll(&GovernorStats::enforcements));
    reg->register_callback("governor_unloads_total", MetricKind::counter,
                           poll(&GovernorStats::unloads));
    reg->register_callback("governor_bytes_unloaded_total",
                           MetricKind::counter,
                           poll(&GovernorStats::bytes_unloaded));
    reg->register_callback("governor_cache_shrinks_total", MetricKind::counter,
                           poll(&GovernorStats::cache_shrinks));
    reg->register_callback("governor_skipped_pinned_total",
                           MetricKind::counter,
                           poll(&GovernorStats::skipped_pinned));
    reg->register_callback("governor_skipped_in_use_total",
                           MetricKind::counter,
                           poll(&GovernorStats::skipped_in_use));
}

}  // namespace recoil::serve
