#include "serve/asset.hpp"

#include "core/split_planner.hpp"
#include "util/error.hpp"

namespace recoil::serve {

const char* kind_name(AssetKind kind) noexcept {
    switch (kind) {
        case AssetKind::static_file: return "static_file";
        case AssetKind::indexed_file: return "indexed_file";
        case AssetKind::chunked: return "chunked";
    }
    return "unknown";
}

namespace {

WireBytes share(std::vector<u8> bytes) {
    return std::make_shared<const std::vector<u8>>(std::move(bytes));
}

}  // namespace

ServedWire Asset::combine(u32 parallelism) const {
    format::VectorSink sink;
    const u32 splits = combine_into(parallelism, sink);
    return {share(std::move(sink.out)), splits};
}

ServedWire Asset::range(u64 lo, u64 hi) const {
    format::VectorSink sink;
    const u32 splits = range_into(lo, hi, sink);
    return {share(std::move(sink.out)), splits};
}

FileAsset::FileAsset(std::string name, format::RecoilFile f)
    : Asset(std::move(name), format::serialized_file_size(f),
            f.metadata.num_splits()),
      file_(std::move(f)) {}

u32 FileAsset::combine_into(u32 parallelism, format::WireSink& sink) const {
    // combine_splits may grant fewer splits than requested; report the count
    // the wire actually carries. Serializing with substituted metadata keeps
    // the bitstream (and an indexed asset's id stream) uncopied.
    RecoilMetadata combined = combine_splits(file_.metadata, parallelism);
    const u32 splits = combined.num_splits();
    format::save_recoil_file_into(file_, combined, sink);
    return splits;
}

u32 FileAsset::range_into(u64 lo, u64 hi, format::WireSink& sink) const {
    return range_wire_into(file_, lo, hi, sink);
}

ChunkedAsset::ChunkedAsset(std::string name, stream::ChunkedStream s)
    : Asset(std::move(name), s.serialized_size(),
            static_cast<u32>(s.total_splits())),
      stream_(std::move(s)) {
    RECOIL_CHECK(!stream_.chunks.empty(), "ChunkedAsset: empty stream");
}

u32 ChunkedAsset::combine_into(u32 parallelism, format::WireSink& sink) const {
    // A chunked stream grants at least one split per chunk. `combined` is
    // metadata-deep only: its unit buffers share the asset's storage, and
    // the views emitted into the sink retain that storage past this frame.
    stream::ChunkedStream combined = stream_.combined(parallelism);
    const u32 splits = static_cast<u32>(combined.total_splits());
    combined.serialize_into(sink);
    return splits;
}

u32 ChunkedAsset::range_into(u64 lo, u64 hi, format::WireSink& sink) const {
    return range_wire_into(stream_, lo, hi, sink);
}

}  // namespace recoil::serve
