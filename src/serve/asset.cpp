#include "serve/asset.hpp"

#include "core/split_planner.hpp"
#include "util/error.hpp"

namespace recoil::serve {

const char* kind_name(AssetKind kind) noexcept {
    switch (kind) {
        case AssetKind::static_file: return "static_file";
        case AssetKind::indexed_file: return "indexed_file";
        case AssetKind::chunked: return "chunked";
    }
    return "unknown";
}

namespace {

WireBytes share(std::vector<u8> bytes) {
    return std::make_shared<const std::vector<u8>>(std::move(bytes));
}

}  // namespace

FileAsset::FileAsset(std::string name, format::RecoilFile f)
    : Asset(std::move(name), format::serialized_file_size(f),
            f.metadata.num_splits()),
      file_(std::move(f)) {}

ServedWire FileAsset::combine(u32 parallelism) const {
    // combine_splits may grant fewer splits than requested; report the count
    // the wire actually carries. Serializing with substituted metadata keeps
    // the bitstream (and an indexed asset's id stream) uncopied.
    RecoilMetadata combined = combine_splits(file_.metadata, parallelism);
    const u32 splits = combined.num_splits();
    return {share(format::save_recoil_file(file_, combined)), splits};
}

ServedWire FileAsset::range(u64 lo, u64 hi) const {
    BuiltRangeWire built = build_range_wire(file_, lo, hi);
    return {share(std::move(built.bytes)), built.splits};
}

ChunkedAsset::ChunkedAsset(std::string name, stream::ChunkedStream s)
    : Asset(std::move(name), s.serialized_size(),
            static_cast<u32>(s.total_splits())),
      stream_(std::move(s)) {
    RECOIL_CHECK(!stream_.chunks.empty(), "ChunkedAsset: empty stream");
}

ServedWire ChunkedAsset::combine(u32 parallelism) const {
    // A chunked stream grants at least one split per chunk.
    stream::ChunkedStream combined = stream_.combined(parallelism);
    const u32 splits = static_cast<u32>(combined.total_splits());
    return {share(combined.serialize()), splits};
}

ServedWire ChunkedAsset::range(u64 lo, u64 hi) const {
    BuiltRangeWire built = build_range_wire(stream_, lo, hi);
    return {share(std::move(built.bytes)), built.splits};
}

}  // namespace recoil::serve
