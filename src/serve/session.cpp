#include "serve/session.hpp"

#include "util/error.hpp"

namespace recoil::serve {

Session::Session(ContentServer& server, Options opt)
    : server_(server),
      c_submitted_(server.metrics().counter("session_submitted_total")),
      c_completed_(server.metrics().counter("session_completed_total")),
      c_failed_(server.metrics().counter("session_failed_total")),
      c_streamed_(server.metrics().counter("session_streamed_total")),
      c_frames_(server.metrics().counter("session_frames_delivered_total")),
      exec_(util::Executor::Options{opt.workers == 0 ? 1 : opt.workers,
                                    "recoil-sess"}) {
    // One long-lived loop per executor worker: the pool size IS the serve
    // concurrency, and each loop occupies its worker for the session's life.
    for (unsigned i = 0; i < exec_.worker_count(); ++i)
        exec_.submit([this] { worker_loop(); });
}

Session::~Session() {
    {
        util::MutexLock lk(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    // ~Executor (exec_ is the last member) joins the worker loops after
    // they observe stopping_ and drain the queue.
}

std::shared_future<ServeResult> Session::submit(ServeRequest req, Callback cb) {
    std::promise<ServeResult> promise;
    std::shared_future<ServeResult> fut = promise.get_future().share();
    {
        util::MutexLock lk(mu_);
        RECOIL_CHECK(!stopping_, "Session::submit after shutdown began");
        queue_.push_back(Task{std::move(req), std::move(promise), std::move(cb)});
        ++stats_.submitted;
    }
    c_submitted_.inc();
    cv_.notify_one();
    return fut;
}

std::shared_future<ServeResult> Session::submit_stream(ServeRequest req,
                                                       FrameCallback on_frame,
                                                       StreamOptions opt) {
    std::promise<ServeResult> promise;
    std::shared_future<ServeResult> fut = promise.get_future().share();
    Task task{std::move(req), std::move(promise), {}};
    task.streamed = true;
    task.frame_cb = std::move(on_frame);
    task.stream_opt = opt;
    {
        util::MutexLock lk(mu_);
        RECOIL_CHECK(!stopping_, "Session::submit_stream after shutdown began");
        queue_.push_back(std::move(task));
        ++stats_.submitted;
    }
    c_submitted_.inc();
    cv_.notify_one();
    return fut;
}

void Session::wait_idle() {
    util::MutexLock lk(mu_);
    while (!(queue_.empty() && active_ == 0)) idle_cv_.wait(mu_);
}

std::size_t Session::in_flight() const {
    util::MutexLock lk(mu_);
    return queue_.size() + active_;
}

Session::Stats Session::stats() const {
    util::MutexLock lk(mu_);
    return stats_;
}

void Session::worker_loop() {
    for (;;) {
        Task task;
        {
            util::MutexLock lk(mu_);
            while (!stopping_ && queue_.empty()) cv_.wait(mu_);
            if (queue_.empty()) return;  // stopping, and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        // serve()/serve_stream() are noexcept; failures arrive as typed
        // results (or a typed error header frame).
        ServeResult res;
        u64 frames = 0;
        if (task.streamed) {
            ServeStream stream = server_.serve_stream(task.req, task.stream_opt);
            while (auto frame = stream.next_frame()) {
                if (!task.frame_cb) continue;
                ++frames;
                try {
                    task.frame_cb(*frame);
                } catch (...) {
                    // Frame callbacks must not tear down the session; the
                    // stream still drains so its flight/cache settle.
                }
            }
            res = stream.head();
        } else {
            res = server_.serve(task.req);
        }
        if (task.cb) {
            try {
                task.cb(res);
            } catch (...) {
                // Completion callbacks must not tear down the session.
            }
        }
        const bool ok = res.ok();
        task.promise.set_value(std::move(res));
        c_completed_.inc();
        if (!ok) c_failed_.inc();
        if (task.streamed) c_streamed_.inc();
        c_frames_.inc(frames);
        {
            util::MutexLock lk(mu_);
            --active_;
            ++stats_.completed;
            if (!ok) ++stats_.failed;
            if (task.streamed) ++stats_.streamed;
            stats_.frames_delivered += frames;
            if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

}  // namespace recoil::serve
