#include "serve/server.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace recoil::serve {

namespace {

/// Cache keys embed the asset's store generation, so replacing an asset
/// under the same name orphans the predecessor's entries instead of serving
/// its bytes; the orphans age out through normal LRU eviction. Both forms
/// start with "name\n", which is what erase_asset() prefix-matches.
std::string asset_key(const Asset& a) {
    return a.name() + "\n#" + std::to_string(a.uid());
}

std::string range_key(const Asset& a, u64 lo, u64 hi) {
    return asset_key(a) + "\nrange:" + std::to_string(lo) + "-" +
           std::to_string(hi);
}

ServeResult fail(ErrorCode code, std::string detail) {
    ServeResult res;
    res.code = code;
    res.detail = std::move(detail);
    return res;
}

}  // namespace

ServeResult ContentServer::serve(const ServeRequest& req) noexcept {
    requests_.fetch_add(1, std::memory_order_relaxed);
    Stopwatch total;
    ServeResult res;
    try {
        res = serve_impl(req);
    } catch (const ProtocolError& e) {
        res = fail(e.code(), e.what());
    } catch (const std::exception& e) {
        res = fail(ErrorCode::internal, e.what());
    }
    res.stats.total_seconds = total.seconds();
    if (res.ok()) {
        wire_bytes_.fetch_add(res.stats.wire_bytes, std::memory_order_relaxed);
        if (res.stats.cache_hit) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            bytes_saved_.fetch_add(res.stats.wire_bytes, std::memory_order_relaxed);
        }
        if (res.stats.coalesced) {
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            bytes_saved_.fetch_add(res.stats.wire_bytes, std::memory_order_relaxed);
        }
    } else {
        failures_.fetch_add(1, std::memory_order_relaxed);
    }
    return res;
}

ServeResult ContentServer::serve_impl(const ServeRequest& req) {
    auto asset = store_.resolve(req.asset);
    if (asset == nullptr)
        return fail(ErrorCode::unknown_asset,
                    "serve: unknown asset '" + req.asset + "'");

    ServeResult res;
    ServedWire served;
    if (req.range) {
        range_requests_.fetch_add(1, std::memory_order_relaxed);
        if ((req.accept & kAcceptRange) == 0)
            return fail(ErrorCode::not_acceptable,
                        "serve: client does not accept range wires");
        // Boundary validation with a typed error, not an invariant throw
        // from plan_range deep inside the wire builder.
        const auto [lo, hi] = *req.range;
        if (lo >= hi || hi > asset->num_symbols())
            return fail(ErrorCode::invalid_range,
                        "serve: range [" + std::to_string(lo) + ", " +
                            std::to_string(hi) + ") outside asset of " +
                            std::to_string(asset->num_symbols()) + " symbols");
        res.payload = PayloadKind::range;
        served = serve_shared(range_key(*asset, lo, hi), 0, opt_.cache_ranges,
                              res.stats, *asset,
                              [&] { return asset->range(lo, hi); });
    } else {
        const u8 need = asset->payload_kind() == PayloadKind::chunked
                            ? kAcceptChunked
                            : kAcceptFile;
        if ((req.accept & need) == 0)
            return fail(ErrorCode::not_acceptable,
                        std::string("serve: client does not accept ") +
                            payload_name(asset->payload_kind()) + " responses");
        const u32 parallelism =
            std::clamp(req.parallelism, u32{1}, asset->max_parallelism());
        res.payload = asset->payload_kind();
        served = serve_shared(asset_key(*asset), parallelism, true, res.stats,
                              *asset,
                              [&] { return asset->combine(parallelism); });
    }
    res.wire = std::move(served.wire);
    res.stats.splits_served = served.splits;
    res.stats.wire_bytes = res.wire->size();
    res.code = ErrorCode::ok;
    return res;
}

ServedWire ContentServer::serve_shared(const std::string& key, u32 parallelism,
                                       bool use_cache, ServeStats& stats,
                                       const Asset& asset,
                                       const std::function<ServedWire()>& build) {
    if (use_cache) {
        u32 splits = 0;
        if (WireBytes wire = cache_.get(key, parallelism, &splits)) {
            stats.cache_hit = true;
            return {std::move(wire), splits};
        }
    }

    // Single-flight: the first request for a key becomes the leader and
    // combines; concurrent requests park on the flight and share its wire.
    const std::string flight_key = key + "\nflight:" + std::to_string(parallelism);
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        std::scoped_lock lk(flights_mu_);
        auto& slot = flights_[flight_key];
        if (slot == nullptr) {
            slot = std::make_shared<Flight>();
            leader = true;
        }
        flight = slot;
    }

    if (!leader) {
        waiters_.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock lk(flight->mu);
        flight->cv.wait(lk, [&] { return flight->done; });
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        // A fresh exception per follower; the flight's fields are immutable
        // once done, so concurrent reads need no further synchronization.
        if (flight->failed)
            throw ProtocolError(flight->error_code, flight->error_detail);
        stats.coalesced = true;
        return flight->wire;
    }

    // Won the flight — but the previous leader may have populated the cache
    // between our miss and the flight insert (put happens before the flight
    // retires). Recheck before paying for a combine, and publish the cached
    // wire to any followers already parked on this flight.
    if (use_cache) {
        u32 splits = 0;
        if (WireBytes cached = cache_.get(key, parallelism, &splits)) {
            ServedWire wire{std::move(cached), splits};
            retire_flight(flight_key, flight, &wire, ErrorCode::ok, {});
            stats.cache_hit = true;
            return wire;
        }
    }

    ServedWire wire;
    Stopwatch combine;
    try {
        if (opt_.combine_hook) opt_.combine_hook(key);
        wire = build();
        stats.combine_seconds = combine.seconds();
        // Publish to the cache before retiring the flight, so a request
        // arriving between the two hits the cache instead of recombining.
        // Inside the try: a put failure must retire the flight too, or
        // followers park forever. Gated on the asset still being current:
        // evict_asset() during the combine already purged this key's
        // entries, and an ungated put would resurrect a wire for a deleted
        // (or replaced) asset — stale bytes pinned until LRU pressure. The
        // flight itself still returns the wire: those requests began before
        // the eviction. (An eviction landing between the gate and the put
        // can still slip a dying entry in; its uid-scoped key can never be
        // served for the successor, so the cost is transient bytes, not
        // staleness.)
        if (use_cache && store_.is_current(asset))
            cache_.put(key, parallelism, wire.wire, wire.splits);
    } catch (const ProtocolError& e) {
        retire_flight(flight_key, flight, nullptr, e.code(), e.what());
        throw;
    } catch (const std::exception& e) {
        retire_flight(flight_key, flight, nullptr, ErrorCode::internal,
                      e.what());
        throw;
    } catch (...) {
        retire_flight(flight_key, flight, nullptr, ErrorCode::internal,
                      "combine failed");
        throw;
    }
    retire_flight(flight_key, flight, &wire, ErrorCode::ok, {});
    return wire;
}

void ContentServer::retire_flight(const std::string& flight_key,
                                  const std::shared_ptr<Flight>& flight,
                                  const ServedWire* wire, ErrorCode error_code,
                                  std::string error_detail) {
    {
        std::scoped_lock lk(flights_mu_);
        flights_.erase(flight_key);
    }
    {
        std::scoped_lock fl(flight->mu);
        if (wire != nullptr) {
            flight->wire = *wire;
        } else {
            flight->failed = true;
            flight->error_code = error_code;
            flight->error_detail = std::move(error_detail);
        }
        flight->done = true;
    }
    flight->cv.notify_all();
}

std::vector<u8> ContentServer::serve_frame(
    std::span<const u8> request_frame) noexcept {
    try {
        ServeRequest req;
        try {
            req = decode_request(request_frame);
        } catch (const ProtocolError& e) {
            requests_.fetch_add(1, std::memory_order_relaxed);
            failures_.fetch_add(1, std::memory_order_relaxed);
            return encode_response(fail(e.code(), e.what()));
        }
        return encode_response(serve(req));
    } catch (...) {
        // encode_response can only fail on allocation exhaustion; an empty
        // frame (rejected by any decoder) beats terminating the server.
        return {};
    }
}

bool ContentServer::evict_asset(const std::string& name) {
    cache_.erase_asset(name);
    return store_.erase(name);
}

ContentServer::Totals ContentServer::totals() const noexcept {
    Totals t;
    t.requests = requests_.load(std::memory_order_relaxed);
    t.failures = failures_.load(std::memory_order_relaxed);
    t.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    t.range_requests = range_requests_.load(std::memory_order_relaxed);
    t.wire_bytes = wire_bytes_.load(std::memory_order_relaxed);
    t.coalesced_requests = coalesced_.load(std::memory_order_relaxed);
    t.bytes_saved = bytes_saved_.load(std::memory_order_relaxed);
    return t;
}

BatchStats summarize(std::span<const ServeResult> results) {
    BatchStats s;
    s.requests = results.size();
    for (const ServeResult& r : results) {
        if (!r.ok()) ++s.failures;
        if (r.stats.cache_hit) ++s.cache_hits;
        if (r.stats.coalesced) ++s.coalesced;
        s.wire_bytes += r.stats.wire_bytes;
        s.max_latency_seconds = std::max(s.max_latency_seconds, r.stats.total_seconds);
        s.sum_latency_seconds += r.stats.total_seconds;
    }
    return s;
}

}  // namespace recoil::serve
