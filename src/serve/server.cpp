#include "serve/server.hpp"

#include <algorithm>
#include <bit>

#include "simd/dispatch.hpp"
#include "util/error.hpp"
#include "util/executor.hpp"
#include "util/stopwatch.hpp"

namespace recoil::serve {

namespace {

/// Cache keys embed the asset's store generation, so replacing an asset
/// under the same name orphans the predecessor's entries instead of serving
/// its bytes; the orphans age out through normal LRU eviction. Both forms
/// start with "name\n", which is what erase_asset() prefix-matches.
std::string asset_key(const Asset& a) {
    return a.name() + "\n#" + std::to_string(a.uid());
}

std::string range_key(const Asset& a, u64 lo, u64 hi) {
    return asset_key(a) + "\nrange:" + std::to_string(lo) + "-" +
           std::to_string(hi);
}

ServeResult fail(ErrorCode code, std::string detail) {
    ServeResult res;
    res.code = code;
    res.detail = std::move(detail);
    return res;
}

WireBytes share(std::vector<u8> bytes) {
    return std::make_shared<const std::vector<u8>>(std::move(bytes));
}

/// Unwinds a solo stream's producer when the consumer abandons the stream:
/// nothing downstream wants the remaining pieces, so production stops at
/// the next sink write instead of running to completion.
struct StreamCancel {};

/// Unwinds the producer when the flow-control window is full: an executor
/// task must never park its worker waiting on a consumer, so instead of
/// blocking (what the dedicated-thread producer did) the task records its
/// cursors, yields, and re-runs the deterministic serializer on resume.
struct WindowFull {};

}  // namespace

namespace detail {

/// Signals that a stream's producer task released its reference to the
/// StreamState (and with it the Prepared's asset pin). Lives in its own
/// shared allocation because the signal fires strictly AFTER the task
/// dropped the state — the dedicated-thread design made "stream destroyed
/// ⟹ asset unpinned" true by joining the producer in ~StreamState, and
/// the governor's in-use skip relies on it (see
/// Governor.StreamPinsItsAssetAcrossAPressurePass).
struct ProducerSignal {
    util::Mutex mu;
    util::CondVar cv;
    bool released RECOIL_GUARDED_BY(mu) = false;
};

/// Shared state behind one ServeStream: the validated request, the piece
/// queue between the producer task and the pulling consumer (with the
/// flow-control window), and the consumer's framing cursor. Exactly one
/// consumer (the ServeStream) and at most one producer task execution touch
/// it at a time; the task runs on the process-wide work-stealing executor
/// (util::global_executor), so a server's streams cost state machines, not
/// dedicated threads.
struct StreamState {
    // ---- immutable after serve_stream() returns ----
    ContentServer* server = nullptr;
    StreamOptions opt;
    ServeResult head;  ///< status + stats known at stream start; wire null
    ContentServer::Prepared prep;  ///< pins the asset for the stream's life
    /// Request trace (inactive when telemetry is off). Only the consumer
    /// thread opens spans on it after serve_stream() returns.
    obs::TraceContext trace;
    obs::Histogram* h_frame = nullptr;  ///< stream_frame_seconds (or null)
    WireBytes cached;              ///< cache-hit (or rechecked) source
    std::shared_ptr<Flight> flight;  ///< leader target / follower source
    std::string flight_key;
    bool leader = false;
    bool put_to_cache = false;
    u32 known_splits = 0;  ///< splits known at header time (cache hits)
    /// A producer task backs this stream (leader or solo; cache hits and
    /// followers replay without one).
    bool producer_backed = false;
    /// Set once the producer task finished AND dropped its state reference;
    /// the finished-stream destructor waits on it so "stream destroyed ⟹
    /// asset unpinned" holds exactly as it did when ~StreamState joined the
    /// producer thread. Null until serve_stream arms a producer.
    std::shared_ptr<ProducerSignal> sig;

    // ---- producer/consumer queue (leader and solo streams) ----
    util::Mutex mu;
    util::CondVar cv_data;  ///< consumer: pieces or completion
    std::deque<format::ByteBuffer> queue RECOIL_GUARDED_BY(mu);
    /// Produced-not-consumed (the in-flight window).
    u64 staged_bytes RECOIL_GUARDED_BY(mu) = 0;
    /// Owned (non-view) subset of staged_bytes.
    u64 staged_owned RECOIL_GUARDED_BY(mu) = 0;
    u64 peak_staged RECOIL_GUARDED_BY(mu) = 0;
    u64 peak_owned RECOIL_GUARDED_BY(mu) = 0;
    u64 produced_bytes RECOIL_GUARDED_BY(mu) = 0;
    bool producer_done RECOIL_GUARDED_BY(mu) = false;
    /// Solo stream abandoned: stop producing.
    bool cancelled RECOIL_GUARDED_BY(mu) = false;
    /// Leader abandoned: finish assembly, skip queue.
    bool draining RECOIL_GUARDED_BY(mu) = false;
    u32 produced_splits RECOIL_GUARDED_BY(mu) = 0;
    ErrorCode producer_code RECOIL_GUARDED_BY(mu) = ErrorCode::ok;
    std::string producer_detail RECOIL_GUARDED_BY(mu);

    // ---- resumable producer task ----
    /// Where the producer task stands in its run/yield/resume cycle.
    /// Transitions happen under mu, so the yield decision (task side) and
    /// the re-enqueue decision (consumer pull / abandoning destructor)
    /// linearize: exactly one side resubmits, or the task sees the freed
    /// window itself. `idle` means no task exists (cache-hit and follower
    /// streams); only yielded→queued transitions trigger a resubmit.
    enum class TaskState : u8 { idle, queued, running, yielded, done };
    TaskState task_state RECOIL_GUARDED_BY(mu) = TaskState::idle;
    /// Wire bytes admitted to the consumer queue so far (high-water across
    /// task runs). Production restarts from byte zero on every resume — the
    /// serializers are deterministic — and the sink fast-skips everything
    /// below this cursor, so nothing is staged twice. produced_bytes plays
    /// the same role for flight publication (bytes the followers can see).
    u64 staged_cursor RECOIL_GUARDED_BY(mu) = 0;
    /// The staged_bytes level at or below which the chunk that hit
    /// WindowFull fits. Written by the sink as it throws; read by the yield
    /// decision and the consumer pop so a resume is scheduled exactly when
    /// it can make progress (resuming earlier would re-run the serializer
    /// only to hit the same wall).
    u64 resume_need RECOIL_GUARDED_BY(mu) = 0;
    /// Serializer seconds across all task runs (restarts re-pay the skipped
    /// prefix; the histogram reports what was actually spent). Only the
    /// producer task touches this, and its runs are serialized by
    /// task_state, so no lock is needed.
    double produce_seconds = 0.0;

    // ---- consumer state (single consumer: the ServeStream) ----
    enum class Phase : u8 { header, body, fin, finished };
    Phase phase = Phase::header;
    /// Adaptive frame sizing is live for this stream (producer-backed and
    /// opted in). Replay sources keep uniform frames: their pieces are
    /// copies/views whose owned/borrowed shape no longer distinguishes
    /// metadata from payload.
    bool adaptive = false;
    /// First payload-view (borrowed) piece reached the consumer: the
    /// metadata-dense prefix is over, frames grow to max_frame_bytes.
    bool payload_phase = false;
    format::ByteBuffer pending;  ///< partially framed piece
    std::size_t pending_off = 0;
    /// Resume skip cursor (opt.resume_offset countdown): bytes consumed
    /// and hashed but not emitted. Consumer-only, like the framing cursor.
    u64 skip_remaining = 0;
    u64 replay_offset = 0;  ///< cached/follower sources: wire bytes consumed
    u64 emitted_payload = 0;
    u64 digest = format::kFnvInit;  ///< FNV over emitted body payloads
    u32 seq = 0;
    u64 frames = 0;
    ErrorCode fin_code = ErrorCode::ok;
    std::string fin_detail;
    u32 fin_splits = 0;

    /// One execution of the producer task: run the serializer from byte
    /// zero with the sink skipping below the cursors, until it completes
    /// (finish: retire the flight, cache put — returns true) or the window
    /// fills (yield: return the worker, returns false; whoever frees the
    /// window resubmits). The caller (submit_stream_task's lambda) owns the
    /// release sequence after a finish: drop the state reference, fire sig,
    /// then sign off the server's producer count.
    bool run_task() RECOIL_EXCLUDES(mu);
    /// The finish-side producer-count sign-off (static: it runs after the
    /// task lambda dropped its state reference). Notifies UNDER the lock —
    /// ~ContentServer destroys the cv as soon as the count hits zero and it
    /// reacquires the mutex.
    static void sign_off(ContentServer* srv) {
        util::MutexLock lk(srv->streams_mu_);
        --srv->active_stream_producers_;
        srv->streams_cv_.notify_all();
    }
    void fail_producer(ErrorCode code, std::string detail) RECOIL_EXCLUDES(mu);
    std::optional<format::ByteBuffer> pull_piece(
        const std::shared_ptr<StreamState>& self, bool block, bool& end)
        RECOIL_EXCLUDES(mu);
};

namespace {

/// The producer side of a stream's queue, resumable flavor: production
/// never blocks a worker. Every fresh piece is published to the flight's
/// incremental assembly first (a streaming leader's coalesced followers
/// replay bytes the moment they are produced), then admitted to the
/// consumer queue at frame granularity behind the flow-control window.
/// When the window is full the sink throws WindowFull instead of waiting
/// (what the old dedicated-thread producer did): the task yields its
/// worker, and on resume re-runs the deterministic serializer from byte
/// zero with this sink fast-skipping everything below the cursors —
/// published bytes are never re-published, staged bytes never re-staged.
/// The skipped prefix costs serializer CPU, not memory (pieces are views
/// of pinned asset storage), bounded by ceil(wire/window) passes; the
/// window pacing itself — what keeps the flight open for followers while
/// the consumer trickles, and peak memory at O(window) — is byte-exactly
/// the old producer's.
class TaskSink final : public format::WireSink {
public:
    explicit TaskSink(StreamState& st) RECOIL_EXCLUDES(st.mu) : st_(st) {
        util::MutexLock lk(st_.mu);
        pub_skip_ = st_.produced_bytes;
        stage_skip_ = st_.staged_cursor;
    }

    void write(format::ByteBuffer piece) override {
        if (piece.empty()) return;
        const u64 abs_lo = pos_;
        pos_ += piece.size();
        if (st_.leader && st_.flight != nullptr && pos_ > pub_skip_) {
            // Publish the unseen suffix to the flight before staging:
            // followers must never observe the queue ahead of the assembly
            // they replay from.
            const std::size_t from =
                abs_lo < pub_skip_
                    ? static_cast<std::size_t>(pub_skip_ - abs_lo)
                    : 0;
            format::ByteBuffer fresh =
                piece.slice(from, piece.size() - from);
            Flight& f = *st_.flight;
            {
                util::MutexLock lk(f.mu);
                f.assembling->insert(f.assembling->end(), fresh.begin(),
                                     fresh.end());
                f.committed = f.assembling->size();
            }
            f.cv.notify_all();
        }
        util::MutexLock lk(st_.mu);
        if (st_.cancelled) throw StreamCancel{};
        st_.produced_bytes = std::max(st_.produced_bytes, pos_);
        if (st_.draining) return;  // consumer gone; assembly suffices
        if (pos_ <= stage_skip_) return;  // resume: already staged
        const std::size_t from =
            abs_lo < stage_skip_
                ? static_cast<std::size_t>(stage_skip_ - abs_lo)
                : 0;
        stage_locked(piece.slice(from, piece.size() - from));
    }

private:
    /// Admit `sub` to the consumer queue at frame granularity (slices share
    /// storage — no copies). Throws WindowFull when the window rule blocks
    /// the next chunk; everything admitted so far stays admitted (the
    /// cursors record it).
    void stage_locked(format::ByteBuffer sub) RECOIL_REQUIRES(st_.mu) {
        const u64 max_frame = st_.opt.max_frame_bytes;
        for (std::size_t off = 0; off < sub.size();) {
            const std::size_t n = static_cast<std::size_t>(
                std::min<u64>(max_frame, sub.size() - off));
            // The in-flight window: stop until the consumer frees space. A
            // chunk larger than the window (impossible — max_frame is
            // clamped to it, kept for safety) passes when the queue is
            // empty.
            if (!(st_.staged_bytes == 0 ||
                  st_.staged_bytes + n <= st_.opt.window_bytes)) {
                st_.resume_need = st_.opt.window_bytes >= n
                                      ? st_.opt.window_bytes - n
                                      : 0;
                throw WindowFull{};
            }
            format::ByteBuffer chunk = sub.slice(off, n);
            off += n;
            st_.staged_bytes += n;
            if (!chunk.borrowed()) st_.staged_owned += n;
            st_.peak_staged = std::max(st_.peak_staged, st_.staged_bytes);
            st_.peak_owned = std::max(st_.peak_owned, st_.staged_owned);
            st_.queue.push_back(std::move(chunk));
            st_.staged_cursor += n;
            // Notify under the lock: WindowFull may unwind right after, and
            // the admitted chunks must not wait for the next run to wake
            // the consumer.
            st_.cv_data.notify_one();
        }
    }

    StreamState& st_;
    u64 pos_ = 0;        ///< wire offset this run's writes have reached
    u64 pub_skip_ = 0;   ///< bytes already published to the flight
    u64 stage_skip_ = 0; ///< bytes already admitted to the queue
};

}  // namespace

bool StreamState::run_task() {
    ContentServer& srv = *server;
    {
        util::MutexLock lk(mu);
        task_state = TaskState::running;
    }
    bool produced = false;
    u32 splits = 0;
    for (;;) {
        Stopwatch combine;
        try {
            TaskSink sink(*this);
            splits = srv.produce(prep, sink);
            produce_seconds += combine.seconds();
            produced = true;
        } catch (const WindowFull&) {
            produce_seconds += combine.seconds();
            util::MutexLock lk(mu);
            // The consumer may have drained the window (or vanished) while
            // the throw unwound — its pops saw task_state `running` and
            // correctly left the resume to us. Re-check under mu: yield
            // only if the blocked chunk still does not fit, so the
            // yielded→queued handoff (pop side) and this decision
            // linearize and no wakeup is lost.
            if (!cancelled && !draining && staged_bytes != 0 &&
                staged_bytes > resume_need) {
                task_state = TaskState::yielded;
                return false;  // whoever frees the window resubmits
            }
            continue;  // space freed or drain/cancel mode: re-run now
        } catch (const StreamCancel&) {
            // Solo stream abandoned; nobody consumes. Finish with nothing
            // more to account.
        } catch (const ProtocolError& e) {
            fail_producer(e.code(), e.what());
        } catch (const std::exception& e) {
            fail_producer(ErrorCode::internal, e.what());
        } catch (...) {
            fail_producer(ErrorCode::internal, "stream production failed");
        }
        break;
    }
    if (produced) {
        if (trace.active() && srv.h_combine_ != nullptr)
            srv.h_combine_->observe(produce_seconds);
        if (leader && flight != nullptr) {
            ServedWire wire;
            {
                util::MutexLock lk(flight->mu);
                // The assembly never mutates again: alias it as the shared
                // wire without copying.
                wire.wire = WireBytes(flight->assembling);
                wire.splits = splits;
            }
            // The stale-put gate (see serve_shared): an asset evicted or
            // replaced mid-stream must not re-enter the cache.
            if (put_to_cache && srv.store_.is_current(*prep.asset))
                srv.cache_.put(prep.key, prep.parallelism, wire.wire, splits);
            srv.retire_flight(flight_key, flight, &wire, ErrorCode::ok, {});
        }
        u64 total = 0;
        {
            util::MutexLock lk(mu);
            produced_splits = splits;
            total = produced_bytes;
        }
        srv.wire_bytes_.fetch_add(total, std::memory_order_relaxed);
    }
    {
        util::MutexLock lk(mu);
        producer_done = true;
        task_state = TaskState::done;
    }
    cv_data.notify_all();
    // Stream production can demand-load and cache-assemble; relieve budget
    // pressure now, while the server is still guaranteed alive (the lambda
    // signs off the producer count only after this returns, and
    // ~ContentServer waits for that count).
    srv.maybe_govern();
    return true;
}

/// Enqueue one producer task execution on the process-wide executor. The
/// lambda owns the finish-side release sequence, in this order: drop the
/// state reference (releasing the Prepared's asset pin — possibly the last
/// reference, destroying the state right here; safe, there is no thread to
/// join anymore), fire sig (so a finished-stream destructor returns only
/// once the pin is gone), then sign off the server's producer count. The
/// sign-off is the LAST server touch — ~ContentServer holds streams_mu_
/// and destroys the cv as soon as the count hits zero, hence the notify
/// happens under the lock.
void submit_stream_task(std::shared_ptr<StreamState> st) {
    util::global_executor().submit([self = std::move(st)]() mutable {
        ContentServer* srv = self->server;
        std::shared_ptr<ProducerSignal> sig = self->sig;
        if (!self->run_task()) return;  // yielded; resubmission re-captures
        self.reset();
        {
            util::MutexLock lk(sig->mu);
            sig->released = true;
            sig->cv.notify_all();
        }
        StreamState::sign_off(srv);
    });
}

void StreamState::fail_producer(ErrorCode code, std::string detail) {
    if (leader && flight != nullptr)
        server->retire_flight(flight_key, flight, nullptr, code, detail);
    server->failures_.fetch_add(1, std::memory_order_relaxed);
    // producer_done and the consumer wakeup come from run_task's finish
    // step: pieces admitted before the failure still drain, then the FIN
    // reports the typed code.
    util::MutexLock lk(mu);
    producer_code = code;
    producer_detail = std::move(detail);
}

/// Pull the next wire piece for the consumer. With `block` false, returns
/// nullopt when nothing is immediately available (so a partially built
/// frame can flush instead of stalling while holding data); sets `end` once
/// the stream's bytes are exhausted. Producer/leader failures surface as
/// `fin_code` (the FIN frame reports the abort), never as an exception.
/// Draining the window is what resumes a yielded producer task: the pop
/// that frees space resubmits it (`self` rides into the task lambda).
std::optional<format::ByteBuffer> StreamState::pull_piece(
    const std::shared_ptr<StreamState>& self, bool block, bool& end) {
    const u64 max_frame = opt.max_frame_bytes;

    if (cached != nullptr) {  // cache-hit source: slice the shared wire
        if (replay_offset >= cached->size()) {
            end = true;
            return std::nullopt;
        }
        const u64 n = std::min<u64>(max_frame, cached->size() - replay_offset);
        auto piece = format::ByteBuffer::view(
            std::span<const u8>(cached->data() + replay_offset,
                                static_cast<std::size_t>(n)),
            cached);
        replay_offset += n;
        return piece;
    }

    if (flight != nullptr && !leader) {  // follower: replay the leader
        Flight& f = *flight;
        util::MutexLock lk(f.mu);
        if (block) {
            while (!f.done && !(f.streaming && f.committed > replay_offset))
                f.cv.wait(f.mu);
        } else if (!f.done && !(f.streaming && f.committed > replay_offset)) {
            return std::nullopt;
        }
        if (f.failed) {
            fin_code = f.error_code;
            fin_detail = f.error_detail;
            end = true;
            return std::nullopt;
        }
        if (f.done) {
            const std::vector<u8>& w = *f.wire.wire;
            if (replay_offset >= w.size()) {
                fin_splits = f.wire.splits;
                end = true;
                return std::nullopt;
            }
            const u64 n = std::min<u64>(max_frame, w.size() - replay_offset);
            auto piece = format::ByteBuffer::view(
                std::span<const u8>(w.data() + replay_offset,
                                    static_cast<std::size_t>(n)),
                f.wire.wire);
            replay_offset += n;
            return piece;
        }
        // Mid-assembly: copy out under the lock (the assembly vector may
        // reallocate after we release it).
        const u64 n = std::min<u64>(max_frame, f.committed - replay_offset);
        std::vector<u8> bytes(
            f.assembling->begin() + static_cast<std::ptrdiff_t>(replay_offset),
            f.assembling->begin() +
                static_cast<std::ptrdiff_t>(replay_offset + n));
        replay_offset += n;
        return format::ByteBuffer(std::move(bytes));
    }

    // Producer-backed source (leader or solo).
    util::MutexLock lk(mu);
    if (block)
        while (queue.empty() && !producer_done) cv_data.wait(mu);
    if (queue.empty()) {
        if (!producer_done) return std::nullopt;
        if (producer_code != ErrorCode::ok) {
            fin_code = producer_code;
            fin_detail = producer_detail;
        } else {
            fin_splits = produced_splits;
        }
        end = true;
        return std::nullopt;
    }
    format::ByteBuffer piece = std::move(queue.front());
    queue.pop_front();
    staged_bytes -= piece.size();
    if (!piece.borrowed()) staged_owned -= piece.size();
    // The yielded→queued transition happens under mu, so it races neither
    // the task's own yield decision (which re-checks the window under mu)
    // nor a concurrent pop: exactly one resubmit per yield, and only once
    // the pop actually made room for the chunk the producer is stuck on
    // (earlier resumes would re-run the serializer into the same wall).
    const bool resubmit =
        task_state == TaskState::yielded &&
        (staged_bytes == 0 || staged_bytes <= resume_need);
    if (resubmit) task_state = TaskState::queued;
    lk.unlock();
    if (resubmit) submit_stream_task(self);
    return piece;
}

}  // namespace detail

// ---- ServeStream ----

ServeStream::ServeStream(std::shared_ptr<detail::StreamState> st)
    : st_(std::move(st)) {}

ServeStream::ServeStream(ServeStream&&) noexcept = default;
ServeStream& ServeStream::operator=(ServeStream&&) noexcept = default;

ServeStream::~ServeStream() {
    if (st_ == nullptr) return;
    if (st_->phase == detail::StreamState::Phase::finished) {
        // Fully consumed. Wait for the producer task to drop its state
        // reference (it already finished — FIN implies producer_done), so
        // "stream destroyed ⟹ asset unpinned" holds exactly as it did
        // when ~StreamState joined the producer thread; the governor's
        // in-use skip relies on it.
        if (st_->producer_backed) {
            detail::ProducerSignal& sig = *st_->sig;
            util::MutexLock lk(sig.mu);
            while (!sig.released) sig.cv.wait(sig.mu);
        }
        return;
    }
    // Abandoned mid-stream. A leader must still complete: followers replay
    // from (and the cache entry is) the assembly, so its task switches to
    // drain mode. A solo stream's product is wanted by nobody — cancel it.
    // Either way this destructor never waits: a queued or running task sees
    // the flag at its next feed step and finishes; a task yielded on the
    // now-dead window is resubmitted here so it can. The task lambda's
    // shared_ptr keeps the state alive, and the server's producer count
    // (released only by the task's finish) keeps the server alive for it.
    using TaskState = detail::StreamState::TaskState;
    bool resubmit = false;
    {
        util::MutexLock lk(st_->mu);
        if (st_->leader)
            st_->draining = true;
        else
            st_->cancelled = true;
        resubmit = st_->task_state == TaskState::yielded;
        if (resubmit) st_->task_state = TaskState::queued;
    }
    if (resubmit) detail::submit_stream_task(st_);
}

const ServeResult& ServeStream::head() const noexcept { return st_->head; }

bool ServeStream::done() const noexcept {
    return st_->phase == detail::StreamState::Phase::finished;
}

u64 ServeStream::frames_emitted() const noexcept { return st_->frames; }

u64 ServeStream::peak_owned_bytes() const noexcept {
    util::MutexLock lk(st_->mu);
    return st_->peak_owned;
}

u64 ServeStream::peak_staged_bytes() const noexcept {
    util::MutexLock lk(st_->mu);
    return st_->peak_staged;
}

std::optional<std::vector<u8>> ServeStream::next_frame() {
    bool would_block = false;
    return frame_impl(/*allow_block=*/true, would_block);
}

std::optional<std::vector<u8>> ServeStream::try_next_frame(bool& would_block) {
    would_block = false;
    return frame_impl(/*allow_block=*/false, would_block);
}

std::optional<std::vector<u8>> ServeStream::frame_impl(bool allow_block,
                                                       bool& would_block) {
    using Phase = detail::StreamState::Phase;
    detail::StreamState& st = *st_;
    // Per-frame production latency: how long the consumer waited for THIS
    // frame (producer pace + framing), the distribution behind streamed
    // tail-latency numbers.
    Stopwatch frame_clock;
    const auto emit = [&](std::vector<u8> frame) {
        if (st.h_frame != nullptr) st.h_frame->observe(frame_clock.seconds());
        return frame;
    };

    if (st.phase == Phase::header) {
        StreamHeader h;
        h.code = st.head.code;
        h.detail = st.head.detail;
        h.payload = st.head.payload;
        h.cache_hit = st.head.stats.cache_hit;
        h.coalesced = st.head.stats.coalesced;
        h.splits = st.known_splits;
        h.wire_bytes = st.head.stats.wire_bytes;
        h.max_frame_bytes = st.opt.max_frame_bytes;
        st.phase = st.head.ok() ? Phase::body : Phase::finished;
        ++st.frames;
        // An error response is a single header frame: the stream ends here.
        if (st.phase == Phase::finished) st.server->record_stream_trace(st);
        return emit(encode_stream_header(h));
    }

    if (st.phase == Phase::body) {
        const u64 max_frame = st.opt.max_frame_bytes;
        // Adaptive frame sizing: structural-prefix frames are capped small
        // so the client sees the plan early; the target jumps to max_frame
        // once payload-view bytes begin.
        const auto target = [&]() -> u64 {
            if (!st.adaptive || st.payload_phase) return max_frame;
            return std::min(max_frame, st.opt.prefix_frame_bytes);
        };
        std::vector<u8> payload;
        bool end = false;
        while (payload.size() < target()) {
            if (st.pending_off >= st.pending.size()) {
                auto piece = st.pull_piece(
                    st_, /*block=*/allow_block && payload.empty(), end);
                if (!piece.has_value()) break;
                st.pending = std::move(*piece);
                st.pending_off = 0;
                if (st.adaptive && !st.payload_phase &&
                    st.pending.borrowed()) {
                    // Payload starts here. Flush the prefix as its own
                    // (small) frame; an empty frame just grows the target.
                    st.payload_phase = true;
                    if (!payload.empty()) break;
                }
            }
            if (st.skip_remaining > 0) {
                // Resumed stream: the reconnecting client already holds
                // these bytes. Hash them (the FIN digest covers the whole
                // wire) and advance without emitting.
                const std::size_t n = static_cast<std::size_t>(
                    std::min<u64>(st.skip_remaining,
                                  st.pending.size() - st.pending_off));
                st.digest = format::fnv1a(
                    std::span<const u8>(st.pending.begin() + st.pending_off,
                                        n),
                    st.digest);
                st.pending_off += n;
                st.skip_remaining -= n;
                continue;
            }
            const std::size_t n =
                std::min<std::size_t>(static_cast<std::size_t>(target()) -
                                          payload.size(),
                                      st.pending.size() - st.pending_off);
            payload.insert(payload.end(), st.pending.begin() + st.pending_off,
                           st.pending.begin() + st.pending_off + n);
            st.pending_off += n;
        }
        if (!payload.empty()) {
            st.digest = format::fnv1a(payload, st.digest);
            st.emitted_payload += payload.size();
            {
                util::MutexLock lk(st.mu);
                const u64 held =
                    st.staged_owned + payload.size() +
                    (st.pending.borrowed() ? 0 : st.pending.size());
                st.peak_owned = std::max(st.peak_owned, held);
            }
            ++st.frames;
            return emit(encode_stream_body(st.seq++, payload, max_frame));
        }
        if (!end) {
            // Non-blocking pull with nothing staged yet: the producer (or
            // the leader being replayed) has not caught up. Phase is
            // unchanged — the caller retries when its transport drains.
            would_block = true;
            return std::nullopt;
        }
        st.phase = Phase::fin;  // exhausted: fall through to the FIN
    }

    if (st.phase == Phase::fin) {
        StreamFin fin;
        fin.code = st.fin_code;
        fin.detail = st.fin_detail;
        fin.body_frames = st.seq;
        fin.splits = st.known_splits != 0 ? st.known_splits : st.fin_splits;
        fin.wire_checksum = st.digest;
        st.phase = Phase::finished;
        ++st.frames;
        // Follower/cached totals settle here, where the size is known; a
        // leader/solo producer accounted its bytes at production time.
        if (st.head.stats.coalesced) {
            st.server->wire_bytes_.fetch_add(st.emitted_payload,
                                             std::memory_order_relaxed);
            st.server->bytes_saved_.fetch_add(st.emitted_payload,
                                              std::memory_order_relaxed);
        }
        st.server->record_stream_trace(st);
        return emit(encode_stream_fin(fin));
    }

    return std::nullopt;
}

// ---- ContentServer ----

ContentServer::ContentServer(ServerOptions opt)
    : opt_(std::move(opt)),
      cache_(opt_.cache_capacity_bytes, opt_.cache_policy),
      governor_(store_, cache_, GovernorOptions{opt_.mem_budget_bytes}),
      slow_log_(opt_.slow_log_slots, opt_.slow_log_slots) {
    init_telemetry();
}

ContentServer::~ContentServer() {
    util::MutexLock lk(streams_mu_);
    while (active_stream_producers_ != 0) streams_cv_.wait(streams_mu_);
}

void ContentServer::init_telemetry() {
    using obs::MetricKind;
    // The serve totals as polled callbacks over the same atomics totals()
    // reads — registered regardless of the telemetry knob: polling costs
    // nothing until someone snapshots.
    const auto poll = [this](const std::atomic<u64>& v) {
        return [&v] { return v.load(std::memory_order_relaxed); };
    };
    metrics_.register_callback("serve_requests_total", MetricKind::counter,
                               poll(requests_));
    metrics_.register_callback("serve_failures_total", MetricKind::counter,
                               poll(failures_));
    metrics_.register_callback("serve_cache_hits_total", MetricKind::counter,
                               poll(cache_hits_));
    metrics_.register_callback("serve_range_requests_total",
                               MetricKind::counter, poll(range_requests_));
    metrics_.register_callback("serve_streamed_requests_total",
                               MetricKind::counter, poll(streamed_requests_));
    metrics_.register_callback("serve_wire_bytes_total", MetricKind::counter,
                               poll(wire_bytes_));
    metrics_.register_callback("serve_coalesced_requests_total",
                               MetricKind::counter, poll(coalesced_));
    metrics_.register_callback("serve_bytes_saved_total", MetricKind::counter,
                               poll(bytes_saved_));
    metrics_.register_callback("serve_governance_failures_total",
                               MetricKind::counter,
                               poll(governance_failures_));
    metrics_.register_callback("serve_coalescing_waiters", MetricKind::gauge,
                               poll(waiters_));
    // Execution-substrate gauges: which SIMD backend dispatch selected
    // (0=scalar 1=avx2 2=avx512) and what the stream executor is doing.
    // Polled from the process-wide singletons at snapshot time, so every
    // server's /metrics reports the substrate its streams actually run on.
    metrics_.register_callback("simd_backend", MetricKind::gauge, [] {
        return static_cast<u64>(simd::pick_backend());
    });
    metrics_.register_callback("executor_workers", MetricKind::gauge, [] {
        return static_cast<u64>(util::global_executor().worker_count());
    });
    metrics_.register_callback("executor_queued_tasks", MetricKind::gauge, [] {
        return util::global_executor().stats().queued;
    });
    metrics_.register_callback("executor_running_tasks", MetricKind::gauge,
                               [] {
        return util::global_executor().stats().running;
    });
    metrics_.register_callback("executor_executed_tasks_total",
                               MetricKind::counter, [] {
        return util::global_executor().stats().executed_total;
    });
    metrics_.register_callback("executor_stolen_tasks_total",
                               MetricKind::counter, [] {
        return util::global_executor().stats().stolen_total;
    });
    cache_.bind_metrics(&metrics_);
    governor_.bind_metrics(&metrics_);
    store_.bind_metrics(&metrics_);
    sample_mask_ =
        opt_.sample_every > 1 && std::has_single_bit(u64{opt_.sample_every})
            ? u64{opt_.sample_every} - 1
            : 0;
    if (!opt_.telemetry) return;
    h_request_ = &metrics_.histogram("serve_request_seconds");
    h_prepare_ = &metrics_.histogram("serve_prepare_seconds");
    h_decode_ = &metrics_.histogram("serve_decode_seconds");
    h_hit_ = &metrics_.histogram("serve_hit_seconds");
    h_combine_ = &metrics_.histogram("serve_combine_seconds");
    h_frame_ = &metrics_.histogram("stream_frame_seconds");
    h_govern_ = &metrics_.histogram("governor_pass_seconds");
}

ServeResult ContentServer::serve(const ServeRequest& req) noexcept {
    const u64 tick = requests_.fetch_add(1, std::memory_order_relaxed);
    obs::TraceContext trace = sample_tick(tick)
                                  ? obs::TraceContext("serve", req.asset)
                                  : obs::TraceContext();
    Stopwatch total;
    ServeResult res;
    try {
        res = serve_impl(req, trace);
    } catch (const ProtocolError& e) {
        res = fail(e.code(), e.what());
    } catch (const std::exception& e) {
        res = fail(ErrorCode::internal, e.what());
    }
    res.stats.total_seconds = total.seconds();
    // Histograms ride the sampling decision (trace.active()), so the
    // distributions describe exactly the sampled requests.
    if (trace.active() && h_request_ != nullptr)
        h_request_->observe(res.stats.total_seconds);
    if (res.ok()) {
        wire_bytes_.fetch_add(res.stats.wire_bytes, std::memory_order_relaxed);
        if (res.stats.cache_hit) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            bytes_saved_.fetch_add(res.stats.wire_bytes, std::memory_order_relaxed);
            if (trace.active() && h_hit_ != nullptr)
                h_hit_->observe(res.stats.total_seconds);
        }
        if (res.stats.coalesced) {
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            bytes_saved_.fetch_add(res.stats.wire_bytes, std::memory_order_relaxed);
        }
    } else {
        failures_.fetch_add(1, std::memory_order_relaxed);
    }
    finish_trace(trace, res);
    // The request may have demand-loaded an asset or grown the cache; if
    // the global budget is now exceeded, relieve the pressure before the
    // next request piles on.
    maybe_govern();
    return res;
}

void ContentServer::finish_trace(const obs::TraceContext& trace,
                                 const ServeResult& res) {
    if (!trace.active()) return;
    const bool failed = !res.ok();
    if (!slow_log_.interesting(res.stats.total_seconds, failed)) return;
    obs::TraceRecord rec;
    rec.id = trace.id();
    rec.op = trace.op();
    rec.asset = trace.asset();
    rec.failed = failed;
    rec.code = static_cast<u16>(res.code);
    rec.code_name = error_name(res.code);
    rec.detail = res.detail;
    rec.cache_hit = res.stats.cache_hit;
    rec.total_seconds = res.stats.total_seconds;
    rec.wire_bytes = res.stats.wire_bytes;
    rec.spans = trace.spans();
    slow_log_.record(std::move(rec));
}

void ContentServer::record_stream_trace(detail::StreamState& st) {
    if (!st.trace.active()) return;
    // A stream fails at the head (typed error header) or at the FIN (the
    // producer aborted mid-way); either way the typed code is retained.
    const bool failed = !st.head.ok() || st.fin_code != ErrorCode::ok;
    const ErrorCode code = !st.head.ok() ? st.head.code : st.fin_code;
    const double total = st.trace.elapsed();
    if (!slow_log_.interesting(total, failed)) return;
    obs::TraceRecord rec;
    rec.id = st.trace.id();
    rec.op = st.trace.op();
    rec.asset = st.trace.asset();
    rec.failed = failed;
    rec.code = static_cast<u16>(code);
    rec.code_name = error_name(code);
    rec.detail = !st.head.ok() ? st.head.detail : st.fin_detail;
    rec.cache_hit = st.head.stats.cache_hit;
    rec.total_seconds = total;
    rec.wire_bytes = st.emitted_payload;
    rec.spans = st.trace.spans();
    slow_log_.record(std::move(rec));
}

void ContentServer::maybe_govern() noexcept {
    try {
        // pressure_actionable (not just over_budget): when a pass already
        // proved it cannot relieve the pressure (all residents pinned,
        // unbacked, or in use), re-running it per request would serialize
        // the serve path behind futile O(residents) scans.
        if (governor_.pressure_actionable()) {
            Stopwatch pass;
            governor_.enforce();
            if (h_govern_ != nullptr) h_govern_->observe(pass.seconds());
        }
    } catch (const ProtocolError& e) {
        note_governance_failure(static_cast<u16>(e.code()),
                                error_name(e.code()), e.what());
    } catch (const StoreError& e) {
        note_governance_failure(
            static_cast<u16>(e.status()),
            std::string("store:") + store_status_name(e.status()), e.what());
    } catch (const std::exception& e) {
        note_governance_failure(0, "exception", e.what());
    } catch (...) {
        note_governance_failure(0, "unknown", "governance pass failed");
    }
}

void ContentServer::note_governance_failure(u16 code, std::string code_name,
                                            std::string detail) noexcept {
    // Governance is best-effort relief; a failed pass (allocation
    // exhaustion under the very pressure it relieves, or a policy
    // invariant tripping) must not take a serve path down with it — but it
    // must not vanish either: the counter surfaces in Totals, and the slow
    // log keeps WHAT failed as a structured event with the typed code.
    governance_failures_.fetch_add(1, std::memory_order_relaxed);
    if (!opt_.telemetry) return;
    try {
        obs::TraceRecord rec;
        rec.id = obs::next_trace_id();
        rec.op = "governance";
        rec.failed = true;
        rec.code = code;
        rec.code_name = std::move(code_name);
        rec.detail = std::move(detail);
        slow_log_.record(std::move(rec));
    } catch (...) {
        // Telemetry must never finish what the governance failure started.
    }
}

ContentServer::Prepared ContentServer::prepare(const ServeRequest& req) {
    auto asset = store_.resolve(req.asset);
    if (asset == nullptr)
        throw ProtocolError(ErrorCode::unknown_asset,
                            "serve: unknown asset '" + req.asset + "'");
    governor_.note_access(req.asset);  // recency clock for pressure unloads

    Prepared p;
    p.asset = std::move(asset);
    if (req.range) {
        range_requests_.fetch_add(1, std::memory_order_relaxed);
        if ((req.accept & kAcceptRange) == 0)
            throw ProtocolError(ErrorCode::not_acceptable,
                                "serve: client does not accept range wires");
        // Boundary validation with a typed error, not an invariant throw
        // from plan_range deep inside the wire builder.
        const auto [lo, hi] = *req.range;
        if (lo >= hi || hi > p.asset->num_symbols())
            throw ProtocolError(
                ErrorCode::invalid_range,
                "serve: range [" + std::to_string(lo) + ", " +
                    std::to_string(hi) + ") outside asset of " +
                    std::to_string(p.asset->num_symbols()) + " symbols");
        p.range = req.range;
        p.key = range_key(*p.asset, lo, hi);
        p.parallelism = 0;
        p.use_cache = opt_.cache_ranges;
        p.payload = PayloadKind::range;
    } else {
        const u8 need = p.asset->payload_kind() == PayloadKind::chunked
                            ? kAcceptChunked
                            : kAcceptFile;
        if ((req.accept & need) == 0)
            throw ProtocolError(
                ErrorCode::not_acceptable,
                std::string("serve: client does not accept ") +
                    payload_name(p.asset->payload_kind()) + " responses");
        p.parallelism =
            std::clamp(req.parallelism, u32{1}, p.asset->max_parallelism());
        p.key = asset_key(*p.asset);
        p.use_cache = true;
        p.payload = p.asset->payload_kind();
    }
    return p;
}

u32 ContentServer::produce(const Prepared& p, format::WireSink& sink) {
    if (p.range)
        return p.asset->range_into(p.range->first, p.range->second, sink);
    return p.asset->combine_into(p.parallelism, sink);
}

ServeResult ContentServer::serve_impl(const ServeRequest& req,
                                      obs::TraceContext& trace) {
    const Prepared p = [&] {
        auto span = trace.span("prepare", h_prepare_);
        return prepare(req);
    }();
    ServeResult res;
    res.payload = p.payload;
    ServedWire served = serve_shared(p, res.stats, &trace);
    res.wire = std::move(served.wire);
    res.stats.splits_served = served.splits;
    res.stats.wire_bytes = res.wire->size();
    res.code = ErrorCode::ok;
    return res;
}

bool ContentServer::acquire_flight(const std::string& flight_key,
                                   std::shared_ptr<Flight>& flight,
                                   bool streaming) {
    util::MutexLock lk(flights_mu_);
    auto& slot = flights_[flight_key];
    if (slot == nullptr) {
        slot = std::make_shared<Flight>(streaming);
        flight = slot;
        return true;
    }
    flight = slot;
    return false;
}

ServedWire ContentServer::serve_shared(const Prepared& p, ServeStats& stats,
                                       obs::TraceContext* trace) {
    if (p.use_cache) {
        obs::TraceContext::Scoped span(trace, "cache_lookup", nullptr);
        u32 splits = 0;
        if (WireBytes wire = cache_.get(p.key, p.parallelism, &splits)) {
            stats.cache_hit = true;
            return {std::move(wire), splits};
        }
    }

    // Single-flight: the first request for a key becomes the leader and
    // combines; concurrent requests park on the flight and share its wire.
    // (A streaming leader for the same key coalesces these waiters too:
    // its producer retires the flight with the assembled wire.)
    const std::string flight_key =
        p.key + "\nflight:" + std::to_string(p.parallelism);
    std::shared_ptr<Flight> flight;
    const bool leader = acquire_flight(flight_key, flight, false);

    if (!leader) {
        obs::TraceContext::Scoped span(trace, "coalesce_wait", nullptr);
        waiters_.fetch_add(1, std::memory_order_relaxed);
        util::MutexLock lk(flight->mu);
        while (!flight->done) flight->cv.wait(flight->mu);
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        // A fresh exception per follower; the flight's fields are immutable
        // once done, so concurrent reads need no further synchronization.
        if (flight->failed)
            throw ProtocolError(flight->error_code, flight->error_detail);
        stats.coalesced = true;
        return flight->wire;
    }

    // Won the flight — but the previous leader may have populated the cache
    // between our miss and the flight insert (put happens before the flight
    // retires). Recheck before paying for a combine, and publish the cached
    // wire to any followers already parked on this flight. The recheck is
    // the same logical request, so it must not re-feed the admission sketch.
    if (p.use_cache) {
        u32 splits = 0;
        if (WireBytes cached = cache_.get(p.key, p.parallelism, &splits,
                                          /*record_access=*/false)) {
            ServedWire wire{std::move(cached), splits};
            retire_flight(flight_key, flight, &wire, ErrorCode::ok, {});
            stats.cache_hit = true;
            return wire;
        }
    }

    ServedWire wire;
    Stopwatch combine;
    try {
        if (opt_.combine_hook) opt_.combine_hook(p.key);
        {
            obs::TraceContext::Scoped span(trace, "combine", h_combine_);
            format::VectorSink sink;
            wire.splits = produce(p, sink);
            wire.wire = share(std::move(sink.out));
        }
        stats.combine_seconds = combine.seconds();
        // Publish to the cache before retiring the flight, so a request
        // arriving between the two hits the cache instead of recombining.
        // Inside the try: a put failure must retire the flight too, or
        // followers park forever. Gated on the asset still being current:
        // evict_asset() during the combine already purged this key's
        // entries, and an ungated put would resurrect a wire for a deleted
        // (or replaced) asset — stale bytes pinned until LRU pressure. The
        // flight itself still returns the wire: those requests began before
        // the eviction. (An eviction landing between the gate and the put
        // can still slip a dying entry in; its uid-scoped key can never be
        // served for the successor, so the cost is transient bytes, not
        // staleness.)
        if (p.use_cache && store_.is_current(*p.asset))
            cache_.put(p.key, p.parallelism, wire.wire, wire.splits);
    } catch (const ProtocolError& e) {
        retire_flight(flight_key, flight, nullptr, e.code(), e.what());
        throw;
    } catch (const std::exception& e) {
        retire_flight(flight_key, flight, nullptr, ErrorCode::internal,
                      e.what());
        throw;
    } catch (...) {
        retire_flight(flight_key, flight, nullptr, ErrorCode::internal,
                      "combine failed");
        throw;
    }
    retire_flight(flight_key, flight, &wire, ErrorCode::ok, {});
    return wire;
}

void ContentServer::retire_flight(const std::string& flight_key,
                                  const std::shared_ptr<Flight>& flight,
                                  const ServedWire* wire, ErrorCode error_code,
                                  std::string error_detail) {
    {
        util::MutexLock lk(flights_mu_);
        flights_.erase(flight_key);
    }
    {
        util::MutexLock fl(flight->mu);
        if (wire != nullptr) {
            flight->wire = *wire;
        } else {
            flight->failed = true;
            flight->error_code = error_code;
            flight->error_detail = std::move(error_detail);
        }
        flight->done = true;
    }
    flight->cv.notify_all();
}

ServeStream ContentServer::serve_stream(const ServeRequest& req,
                                        StreamOptions opt) noexcept {
    const u64 tick = requests_.fetch_add(1, std::memory_order_relaxed);
    streamed_requests_.fetch_add(1, std::memory_order_relaxed);
    if (opt.max_frame_bytes == 0) opt.max_frame_bytes = kDefaultMaxFrameBytes;
    opt.window_bytes = std::max(opt.window_bytes, opt.max_frame_bytes);
    if (opt.prefix_frame_bytes == 0)
        opt.prefix_frame_bytes = kDefaultPrefixFrameBytes;
    opt.prefix_frame_bytes = std::min(opt.prefix_frame_bytes,
                                      opt.max_frame_bytes);

    auto st = std::make_shared<detail::StreamState>();
    st->server = this;
    st->opt = opt;
    st->skip_remaining = opt.resume_offset;
    if (sample_tick(tick)) {
        st->trace = obs::TraceContext("stream", req.asset);
        st->h_frame = h_frame_;
    }
    const auto adopt_cache_hit = [&](WireBytes wire, u32 splits) {
        st->cached = std::move(wire);
        st->known_splits = splits;
        st->head.stats.cache_hit = true;
        st->head.stats.wire_bytes = st->cached->size();
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        wire_bytes_.fetch_add(st->cached->size(), std::memory_order_relaxed);
        bytes_saved_.fetch_add(st->cached->size(), std::memory_order_relaxed);
    };
    try {
        if ((req.accept & kAcceptStreamed) == 0)
            throw ProtocolError(
                ErrorCode::not_acceptable,
                "serve: client does not accept streamed responses");
        {
            auto span = st->trace.span("prepare", h_prepare_);
            st->prep = prepare(req);
        }
        st->head.payload = st->prep.payload;
        st->head.code = ErrorCode::ok;
        const bool use_cache = st->prep.use_cache && opt.use_cache;
        st->put_to_cache = use_cache;

        if (use_cache) {
            u32 splits = 0;
            if (WireBytes wire =
                    cache_.get(st->prep.key, st->prep.parallelism, &splits)) {
                adopt_cache_hit(std::move(wire), splits);
                return ServeStream(std::move(st));
            }

            st->flight_key = st->prep.key + "\nflight:" +
                             std::to_string(st->prep.parallelism);
            st->leader = acquire_flight(st->flight_key, st->flight, true);
            if (!st->leader) {
                // Follower: replay the leader's already-emitted bytes from
                // the assembly (or the finished wire) as the leader streams.
                st->head.stats.coalesced = true;
                coalesced_.fetch_add(1, std::memory_order_relaxed);
                return ServeStream(std::move(st));
            }
            // Leader: the previous leader may have populated the cache
            // between our miss and the flight insert. Recheck (without
            // re-feeding the admission sketch — same logical request),
            // publishing the cached wire to any followers already parked.
            if (WireBytes wire =
                    cache_.get(st->prep.key, st->prep.parallelism, &splits,
                               /*record_access=*/false)) {
                ServedWire served{wire, splits};
                retire_flight(st->flight_key, st->flight, &served,
                              ErrorCode::ok, {});
                st->flight.reset();
                st->leader = false;
                adopt_cache_hit(std::move(wire), splits);
                return ServeStream(std::move(st));
            }
        }

        // Leader or solo: produce as a resumable task on the process-wide
        // work-stealing executor, pull-paced by the consumer through the
        // window — no dedicated thread per stream. Registered with the
        // server first, so ~ContentServer waits for it even if the stream
        // is abandoned. Producer-backed streams are the only ones where
        // adaptive frame sizing applies: the owned/borrowed shape of fresh
        // producer pieces marks the metadata/payload boundary.
        st->adaptive = opt.adaptive_frames;
        if (opt_.combine_hook) opt_.combine_hook(st->prep.key);
        {
            util::MutexLock lk(streams_mu_);
            ++active_stream_producers_;
        }
        try {
            {
                util::MutexLock lk(st->mu);
                st->task_state = detail::StreamState::TaskState::queued;
            }
            st->producer_backed = true;
            st->sig = std::make_shared<detail::ProducerSignal>();
            detail::submit_stream_task(st);
        } catch (...) {
            {
                util::MutexLock lk(streams_mu_);
                --active_stream_producers_;
            }
            throw;
        }
        return ServeStream(std::move(st));
    } catch (const ProtocolError& e) {
        if (st->leader && st->flight != nullptr)
            retire_flight(st->flight_key, st->flight, nullptr, e.code(),
                          e.what());
        failures_.fetch_add(1, std::memory_order_relaxed);
        st->head = fail(e.code(), e.what());
        return ServeStream(std::move(st));
    } catch (const std::exception& e) {
        if (st->leader && st->flight != nullptr)
            retire_flight(st->flight_key, st->flight, nullptr,
                          ErrorCode::internal, e.what());
        failures_.fetch_add(1, std::memory_order_relaxed);
        st->head = fail(ErrorCode::internal, e.what());
        return ServeStream(std::move(st));
    }
}

std::vector<u8> ContentServer::serve_frame(
    std::span<const u8> request_frame) noexcept {
    try {
        ServeRequest req;
        try {
            Stopwatch decode;
            req = decode_request(request_frame);
            if (h_decode_ != nullptr) h_decode_->observe(decode.seconds());
        } catch (const ProtocolError& e) {
            requests_.fetch_add(1, std::memory_order_relaxed);
            failures_.fetch_add(1, std::memory_order_relaxed);
            return encode_response(fail(e.code(), e.what()));
        }
        // Reserved "!..." names are introspection, answered from the
        // registry — never from the store (a leading '!' is not a legal
        // store name, so no real asset is shadowed).
        if (!req.asset.empty() && req.asset[0] == '!')
            return encode_response(serve_introspection(req));
        return encode_response(serve(req));
    } catch (...) {
        // encode_response can only fail on allocation exhaustion; an empty
        // frame (rejected by any decoder) beats terminating the server.
        return {};
    }
}

ServeResult ContentServer::serve_introspection(
    const ServeRequest& req) noexcept {
    requests_.fetch_add(1, std::memory_order_relaxed);
    ServeResult res;
    try {
        if ((req.accept & kAcceptMetrics) == 0)
            throw ProtocolError(
                ErrorCode::not_acceptable,
                "serve: introspection requires the metrics accept bit");
        std::string body;
        if (req.asset == kMetricsAssetText)
            body = metrics_.snapshot().to_prometheus();
        else if (req.asset == kMetricsAssetJson)
            body = metrics_.snapshot().to_json();
        else
            throw ProtocolError(
                ErrorCode::unknown_asset,
                "serve: unknown introspection target '" + req.asset + "'");
        res.code = ErrorCode::ok;
        res.payload = PayloadKind::metrics;
        res.wire = share(std::vector<u8>(body.begin(), body.end()));
        res.stats.wire_bytes = res.wire->size();
    } catch (const ProtocolError& e) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        res = fail(e.code(), e.what());
    } catch (const std::exception& e) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        res = fail(ErrorCode::internal, e.what());
    }
    return res;
}

bool ContentServer::evict_asset(const std::string& name) {
    cache_.erase_asset(name);
    return store_.erase(name);
}

ContentServer::Totals ContentServer::totals() const noexcept {
    Totals t;
    t.requests = requests_.load(std::memory_order_relaxed);
    t.failures = failures_.load(std::memory_order_relaxed);
    t.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    t.range_requests = range_requests_.load(std::memory_order_relaxed);
    t.streamed_requests = streamed_requests_.load(std::memory_order_relaxed);
    t.wire_bytes = wire_bytes_.load(std::memory_order_relaxed);
    t.coalesced_requests = coalesced_.load(std::memory_order_relaxed);
    t.bytes_saved = bytes_saved_.load(std::memory_order_relaxed);
    t.governance_failures =
        governance_failures_.load(std::memory_order_relaxed);
    return t;
}

BatchStats summarize(std::span<const ServeResult> results) {
    BatchStats s;
    s.requests = results.size();
    for (const ServeResult& r : results) {
        if (!r.ok()) ++s.failures;
        if (r.stats.cache_hit) ++s.cache_hits;
        if (r.stats.coalesced) ++s.coalesced;
        s.wire_bytes += r.stats.wire_bytes;
        s.max_latency_seconds = std::max(s.max_latency_seconds, r.stats.total_seconds);
        s.sum_latency_seconds += r.stats.total_seconds;
    }
    return s;
}

}  // namespace recoil::serve
