#include "serve/server.hpp"

#include <algorithm>

#include "core/random_access.hpp"
#include "core/split_planner.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace recoil::serve {

namespace {

/// Cache keys embed the asset's store generation, so replacing an asset
/// under the same name orphans the predecessor's entries instead of serving
/// its bytes; the orphans age out through normal LRU eviction. Both forms
/// start with "name\n", which is what erase_asset() prefix-matches.
std::string asset_key(const Asset& a) {
    return a.name + "\n#" + std::to_string(a.uid);
}

std::string range_key(const Asset& a, u64 lo, u64 hi) {
    return asset_key(a) + "\nrange:" + std::to_string(lo) + "-" +
           std::to_string(hi);
}

}  // namespace

ServeResult ContentServer::serve(const ServeRequest& req) noexcept {
    requests_.fetch_add(1, std::memory_order_relaxed);
    Stopwatch total;
    ServeResult res;
    try {
        res = serve_impl(req);
    } catch (const std::exception& e) {
        res = ServeResult{};
        res.error = e.what();
    }
    res.stats.total_seconds = total.seconds();
    if (res.ok) {
        wire_bytes_.fetch_add(res.stats.wire_bytes, std::memory_order_relaxed);
        if (res.stats.cache_hit)
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
        failures_.fetch_add(1, std::memory_order_relaxed);
    }
    return res;
}

ServeResult ContentServer::serve_impl(const ServeRequest& req) {
    auto asset = store_.find(req.asset);
    if (asset == nullptr) raise("serve: unknown asset '" + req.asset + "'");

    ServeResult res;
    if (req.range) {
        range_requests_.fetch_add(1, std::memory_order_relaxed);
        const auto [lo, hi] = *req.range;
        const format::RecoilFile* file = asset->file();
        if (file == nullptr)
            raise("serve: range requests require a single-stream asset");
        const std::string key = range_key(*asset, lo, hi);
        u32 splits = 0;
        if (WireBytes wire =
                opt_.cache_ranges ? cache_.get(key, 0, &splits) : nullptr) {
            res.wire = std::move(wire);
            res.stats.cache_hit = true;
        } else {
            Stopwatch combine;
            auto bytes = build_range_wire(*file, lo, hi);
            res.stats.combine_seconds = combine.seconds();
            const RangePlan plan = plan_range(file->metadata, lo, hi);
            splits = plan.last_split - plan.first_split + 1;
            res.wire = std::make_shared<const std::vector<u8>>(std::move(bytes));
            if (opt_.cache_ranges) cache_.put(key, 0, res.wire, splits);
        }
        res.stats.splits_served = splits;
    } else {
        const u32 parallelism =
            std::clamp(req.parallelism, u32{1}, asset->max_parallelism);
        const std::string key = asset_key(*asset);
        u32 splits = 0;
        if (WireBytes wire = cache_.get(key, parallelism, &splits)) {
            res.wire = std::move(wire);
            res.stats.cache_hit = true;
        } else {
            // Combine explicitly (rather than via serve_combined) so the
            // stats report the work-item count the wire actually carries —
            // combine_splits may grant fewer than requested, and a chunked
            // stream at least one split per chunk.
            Stopwatch combine;
            std::vector<u8> bytes;
            if (asset->is_chunked()) {
                auto combined = asset->chunked()->combined(parallelism);
                splits = static_cast<u32>(combined.total_splits());
                bytes = combined.serialize();
            } else {
                format::RecoilFile served = *asset->file();
                served.metadata =
                    combine_splits(served.metadata, parallelism);
                splits = served.metadata.num_splits();
                bytes = format::save_recoil_file(served);
            }
            res.stats.combine_seconds = combine.seconds();
            res.wire = std::make_shared<const std::vector<u8>>(std::move(bytes));
            cache_.put(key, parallelism, res.wire, splits);
        }
        res.stats.splits_served = splits;
    }
    res.stats.wire_bytes = res.wire->size();
    res.ok = true;
    return res;
}

bool ContentServer::evict_asset(const std::string& name) {
    cache_.erase_asset(name);
    return store_.erase(name);
}

ContentServer::Totals ContentServer::totals() const noexcept {
    Totals t;
    t.requests = requests_.load(std::memory_order_relaxed);
    t.failures = failures_.load(std::memory_order_relaxed);
    t.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    t.range_requests = range_requests_.load(std::memory_order_relaxed);
    t.wire_bytes = wire_bytes_.load(std::memory_order_relaxed);
    return t;
}

u64 RequestScheduler::submit(ServeRequest req) {
    std::scoped_lock lk(mu_);
    pending_.push_back(std::move(req));
    return pending_.size() - 1;
}

std::size_t RequestScheduler::pending() const {
    std::scoped_lock lk(mu_);
    return pending_.size();
}

std::vector<ServeResult> RequestScheduler::flush() {
    std::vector<ServeRequest> batch;
    {
        std::scoped_lock lk(mu_);
        batch.swap(pending_);
    }
    std::vector<ServeResult> out(batch.size());
    if (batch.empty()) return out;
    pool_->parallel_for(batch.size(),
                        [&](u64 i) { out[i] = server_.serve(batch[i]); });
    return out;
}

BatchStats summarize(std::span<const ServeResult> results) {
    BatchStats s;
    s.requests = results.size();
    for (const ServeResult& r : results) {
        if (!r.ok) ++s.failures;
        if (r.stats.cache_hit) ++s.cache_hits;
        s.wire_bytes += r.stats.wire_bytes;
        s.max_latency_seconds = std::max(s.max_latency_seconds, r.stats.total_seconds);
        s.sum_latency_seconds += r.stats.total_seconds;
    }
    return s;
}

}  // namespace recoil::serve
