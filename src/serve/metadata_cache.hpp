#pragma once
// Cache of serialized serve responses keyed by (asset key, client
// parallelism). The §3.3 serving path is cheap but not free — combine_splits
// walks M split points and the wire re-serialization copies the bitstream —
// and real traffic concentrates on a few client classes (phone / laptop /
// GPU), so the hot responses are cached whole and handed out by reference.
// Range responses reuse the same cache under a derived asset key (see
// server.cpp), hence the string key rather than an asset pointer.
//
// Decision-making is delegated to the pluggable policy layer
// (cache_policy.hpp): an EvictionPolicy picks victims (LRU by default —
// bit-exact with the historical cache — or segmented LRU) and an
// AdmissionPolicy gates brand-new entries (admit-all by default, or a
// size-aware TinyLFU frequency sketch). The cache owns storage, stats, and
// the byte-capacity invariant; policies own ordering and gatekeeping.

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/cache_policy.hpp"
#include "serve/protocol.hpp"
#include "util/ints.hpp"
#include "util/thread_annotations.hpp"

namespace recoil::obs {
class MetricsRegistry;
}

namespace recoil::serve {

/// Counters are cumulative over the cache's lifetime (they survive clear());
/// `bytes`/`entries` describe the current contents only.
struct CacheStats {
    u64 hits = 0;
    u64 misses = 0;
    /// Payload bytes served from the cache (the byte-hit-rate numerator:
    /// hit_bytes / total wire bytes served). Cumulative, survives clear().
    u64 hit_bytes = 0;
    u64 insertions = 0;
    u64 evictions = 0;
    /// Puts dropped because the payload alone exceeds the whole cache
    /// capacity. A persistently rising value means the capacity is
    /// mis-sized for the traffic, which a silent drop used to hide.
    u64 rejected = 0;
    /// New entries the AdmissionPolicy turned away (e.g. TinyLFU rejecting
    /// a one-hit wonder). Distinct from `rejected`: these entries would
    /// have fit — the policy judged them not worth the bytes.
    u64 admission_rejected = 0;
    /// High-water mark of `bytes` over the cache's lifetime. Like the
    /// cumulative counters it survives clear() (which resets the current
    /// size, not the history), so the memory story stays observable across
    /// operational clears.
    u64 peak_bytes = 0;
    u64 bytes = 0;    ///< current cached payload bytes
    u64 entries = 0;  ///< current entry count
};

class MetadataCache {
public:
    explicit MetadataCache(u64 capacity_bytes, CachePolicyConfig policy = {});

    /// nullptr on miss. A hit refreshes the entry's position with the
    /// eviction policy and, when `splits_out` is given, reports the split
    /// count stored with the entry. With `record_access` (the default)
    /// the lookup is recorded with the admission policy — that is where
    /// its frequency sketch learns the key stream. Pass false for internal
    /// re-lookups of the SAME logical request (the single-flight leader's
    /// post-acquire recheck): double-recording would teach the sketch that
    /// every cold key was seen twice, silently disarming the one-hit-
    /// wonder gate.
    WireBytes get(const std::string& asset_key, u32 parallelism,
                  u32* splits_out = nullptr, bool record_access = true)
        RECOIL_EXCLUDES(mu_);

    /// Insert (or refresh) an entry, evicting policy-chosen victims past
    /// capacity. Payloads larger than the whole cache are never cached —
    /// counted in CacheStats::rejected (an oversized refresh also drops the
    /// now-stale resident entry rather than keep serving superseded bytes).
    /// A NEW key must additionally pass the admission policy; a refusal
    /// counts in CacheStats::admission_rejected. An entry exactly equal to
    /// capacity is admitted (it fits — alone). `splits` is the work-item
    /// count the response carries, echoed back by get().
    void put(const std::string& asset_key, u32 parallelism, WireBytes wire,
             u32 splits = 0) RECOIL_EXCLUDES(mu_);

    /// Drop every entry for `asset_key` (all parallelisms, and derived keys
    /// of the form "asset_key\n..." such as range responses). Not an
    /// eviction: the evictions counter is untouched.
    void erase_asset(const std::string& asset_key) RECOIL_EXCLUDES(mu_);

    /// Evict policy-chosen victims until current bytes <= `target_bytes`
    /// (counted as evictions — this is capacity pressure, from the resource
    /// governor rather than from an insertion). The configured capacity is
    /// unchanged: the cache may grow back.
    void shrink_to(u64 target_bytes) RECOIL_EXCLUDES(mu_);

    /// Drop every entry. Resets the current-size fields (`bytes`,
    /// `entries`) only; cumulative counters (hits/misses/insertions/
    /// evictions/rejected/admission_rejected) survive, so observability
    /// across a clear() is not lost. Dropped entries do not count as
    /// evictions. The admission sketch also survives: it models the access
    /// stream, which a contents clear does not rewrite.
    void clear() RECOIL_EXCLUDES(mu_);
    CacheStats stats() const RECOIL_EXCLUDES(mu_);
    /// Publish this cache through `reg` as polled cache_* metrics (see
    /// docs/observability.md for the name catalogue). The callbacks read the
    /// same counters stats() reports, so both views are bit-identical.
    /// nullptr detaches nothing — binding is idempotent and re-binding a new
    /// registry is not supported (bind once at server construction).
    void bind_metrics(obs::MetricsRegistry* reg);
    u64 capacity_bytes() const noexcept { return capacity_; }
    /// Lock-free mirror of stats().bytes for cheap pressure checks.
    u64 current_bytes() const noexcept {
        return bytes_now_.load(std::memory_order_relaxed);
    }
    /// Canonical "eviction[-admission]" spelling, e.g. "slru-tinylfu".
    std::string policy_name() const { return cache_policy_name(policy_cfg_); }
    const CachePolicyConfig& policy_config() const noexcept {
        return policy_cfg_;
    }

private:
    struct Key {
        std::string asset;
        u32 parallelism;
        bool operator==(const Key&) const = default;
    };
    struct KeyHash {
        std::size_t operator()(const Key& k) const noexcept {
            return std::hash<std::string>{}(k.asset) * 0x9e3779b97f4a7c15ull ^
                   k.parallelism;
        }
    };
    struct Entry {
        WireBytes wire;
        u32 splits = 0;
        EntryId id = kNoEntry;
    };

    /// Remove one entry (found via the by-id index) and report it to the
    /// policy; the caller decides whether it counts as an eviction.
    void erase_entry_locked(EntryId id) RECOIL_REQUIRES(mu_);
    void evict_until_locked(u64 target_bytes) RECOIL_REQUIRES(mu_);
    void set_bytes_locked(u64 bytes) RECOIL_REQUIRES(mu_);

    mutable util::Mutex mu_;
    u64 capacity_;           ///< immutable after construction
    CachePolicyConfig policy_cfg_;  ///< immutable after construction
    std::unique_ptr<EvictionPolicy> policy_ RECOIL_GUARDED_BY(mu_);
    std::unique_ptr<AdmissionPolicy> admission_ RECOIL_GUARDED_BY(mu_);
    std::unordered_map<Key, Entry, KeyHash> map_ RECOIL_GUARDED_BY(mu_);
    /// Victim lookup: policy ids -> the map key holding that entry. Points
    /// into map_ nodes (stable under rehash for node-based containers).
    std::unordered_map<EntryId, const Key*> by_id_ RECOIL_GUARDED_BY(mu_);
    EntryId next_id_ RECOIL_GUARDED_BY(mu_) = 1;
    CacheStats stats_ RECOIL_GUARDED_BY(mu_);
    /// Lock-free mirror of stats_.bytes (documented escape): written only
    /// by set_bytes_locked() under mu_, read without it by current_bytes()
    /// so the governor's pressure probe never contends with the cache.
    std::atomic<u64> bytes_now_{0};
};

}  // namespace recoil::serve
