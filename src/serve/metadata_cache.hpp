#pragma once
// LRU cache of serialized serve responses keyed by (asset key, client
// parallelism). The §3.3 serving path is cheap but not free — combine_splits
// walks M split points and the wire re-serialization copies the bitstream —
// and real traffic concentrates on a few client classes (phone / laptop /
// GPU), so the hot responses are cached whole and handed out by reference.
// Range responses reuse the same cache under a derived asset key (see
// server.cpp), hence the string key rather than an asset pointer.

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"
#include "util/ints.hpp"

namespace recoil::serve {

/// Counters are cumulative over the cache's lifetime (they survive clear());
/// `bytes`/`entries` describe the current contents only.
struct CacheStats {
    u64 hits = 0;
    u64 misses = 0;
    u64 insertions = 0;
    u64 evictions = 0;
    /// Puts dropped because the payload alone exceeds the whole cache
    /// capacity. A persistently rising value means the capacity is
    /// mis-sized for the traffic, which a silent drop used to hide.
    u64 rejected = 0;
    /// High-water mark of `bytes` over the cache's lifetime. Like the
    /// cumulative counters it survives clear() (which resets the current
    /// size, not the history), so the memory story stays observable across
    /// operational clears.
    u64 peak_bytes = 0;
    u64 bytes = 0;    ///< current cached payload bytes
    u64 entries = 0;  ///< current entry count
};

class MetadataCache {
public:
    explicit MetadataCache(u64 capacity_bytes) : capacity_(capacity_bytes) {}

    /// nullptr on miss. A hit refreshes the entry's LRU position and, when
    /// `splits_out` is given, reports the split count stored with the entry.
    WireBytes get(const std::string& asset_key, u32 parallelism,
                  u32* splits_out = nullptr);

    /// Insert (or refresh) an entry, evicting LRU entries past capacity.
    /// Payloads larger than the whole cache are not cached at all — counted
    /// in CacheStats::rejected, never silently dropped. `splits` is the
    /// work-item count the response carries, echoed back by get().
    void put(const std::string& asset_key, u32 parallelism, WireBytes wire,
             u32 splits = 0);

    /// Drop every entry for `asset_key` (all parallelisms, and derived keys
    /// of the form "asset_key\n..." such as range responses).
    void erase_asset(const std::string& asset_key);

    /// Drop every entry. Resets the current-size fields (`bytes`,
    /// `entries`) only; cumulative counters (hits/misses/insertions/
    /// evictions/rejected) survive, so observability across a clear() is
    /// not lost. Dropped entries do not count as evictions.
    void clear();
    CacheStats stats() const;
    u64 capacity_bytes() const noexcept { return capacity_; }

private:
    struct Key {
        std::string asset;
        u32 parallelism;
        bool operator==(const Key&) const = default;
    };
    struct KeyHash {
        std::size_t operator()(const Key& k) const noexcept {
            return std::hash<std::string>{}(k.asset) * 0x9e3779b97f4a7c15ull ^
                   k.parallelism;
        }
    };
    struct Entry {
        Key key;
        WireBytes wire;
        u32 splits = 0;
    };

    void evict_lru_locked();

    mutable std::mutex mu_;
    u64 capacity_;
    std::list<Entry> lru_;  ///< front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
    CacheStats stats_;
};

}  // namespace recoil::serve
