#pragma once
// Versioned wire protocol of the serve subsystem. ServeRequest/ServeResult
// are the in-process API *and* have a framed, checksummed wire form
// (encode_request/decode_request, encode_response/decode_response), so an
// HTTP/gRPC frontend can cross a process boundary without touching core:
// it forwards opaque request frames to ContentServer::serve_frame and ships
// the response frame back. Failures are typed ErrorCode values — the string
// detail is for humans and logs, never for dispatch. Parsers consume
// untrusted bytes and throw ProtocolError (a typed recoil::Error), never
// crash: frames are FNV-checksummed and every length field is bounds-checked
// through the shared wire_io cursor.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/ints.hpp"

namespace recoil::serve {

/// A served response's payload bytes, shared between the LRU cache, in-flight
/// coalesced requests and callers, so nothing ever copies a wire to hand it
/// out and cache eviction never invalidates a response being written.
using WireBytes = std::shared_ptr<const std::vector<u8>>;

/// Typed failure taxonomy of the serve protocol. Stable wire values: new
/// codes may be appended, existing values never change meaning.
enum class ErrorCode : u16 {
    ok = 0,
    unknown_asset = 1,        ///< no asset under the requested name
    invalid_range = 2,        ///< lo >= hi or hi past the asset's symbols
    not_acceptable = 3,       ///< asset's wire form excluded by accept flags
    bad_request = 4,          ///< structurally valid frame, nonsense values
    malformed_frame = 5,      ///< frame structure does not parse
    checksum_mismatch = 6,    ///< frame integrity check failed
    unsupported_version = 7,  ///< peer speaks a protocol version we do not
    internal = 8,             ///< server-side failure while building the wire
};
const char* error_name(ErrorCode code) noexcept;

/// Typed parse/serve failure. `code` is authoritative; what() elaborates.
class ProtocolError : public Error {
public:
    ProtocolError(ErrorCode code, const std::string& what)
        : Error(what), code_(code) {}
    ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

/// Client capability bits (ServeRequest::accept): which wire forms the
/// client can decode. A server never responds with a form the client did not
/// accept — it returns not_acceptable instead.
inline constexpr u8 kAcceptFile = 1;     ///< RecoilFile containers (RCF1)
inline constexpr u8 kAcceptChunked = 2;  ///< ChunkedStream containers (RCS1)
inline constexpr u8 kAcceptRange = 4;    ///< multi-segment range wires (RCR2)
inline constexpr u8 kAcceptAll = kAcceptFile | kAcceptChunked | kAcceptRange;

/// Which container format ServeResult::wire holds.
enum class PayloadKind : u8 { none = 0, file = 1, chunked = 2, range = 3 };
const char* payload_name(PayloadKind kind) noexcept;

struct ServeRequest {
    std::string asset;
    /// Client's parallel decode capacity (warps/threads); clamped to the
    /// asset's encoded split budget. Ignored for range requests, which ship
    /// the master's fine-grained covering splits.
    u32 parallelism = 1;
    /// Symbol range [lo, hi) to serve instead of the whole asset.
    std::optional<std::pair<u64, u64>> range;
    /// Wire forms the client can decode (kAccept* bits).
    u8 accept = kAcceptAll;
};

struct ServeStats {
    u64 wire_bytes = 0;
    /// Parallel work items the response actually carries (splits in the
    /// served metadata, or covering splits for a range).
    u32 splits_served = 0;
    bool cache_hit = false;
    /// Served by waiting on another request's in-flight combine instead of
    /// recomputing (single-flight coalescing).
    bool coalesced = false;
    double combine_seconds = 0;  ///< server-local: adaptation + serialization
    double total_seconds = 0;    ///< server-local: not carried on the wire
};

struct ServeResult {
    ErrorCode code = ErrorCode::internal;
    std::string detail;  ///< human-readable elaboration of `code`
    PayloadKind payload = PayloadKind::none;
    WireBytes wire;      ///< shared payload bytes; null on failure
    ServeStats stats;

    bool ok() const noexcept { return code == ErrorCode::ok; }
};

inline constexpr u8 kProtocolVersion = 1;
inline constexpr u32 kMaxAssetNameLen = 4096;
inline constexpr u32 kMaxDetailLen = u32{1} << 16;

/// Serialize a request into a framed, checksummed message ("RCRQ" v1).
std::vector<u8> encode_request(const ServeRequest& req);
/// Parse a request frame. Throws ProtocolError on any defect; never crashes.
ServeRequest decode_request(std::span<const u8> frame);

/// Serialize a result into a framed, checksummed message ("RCRS" v1). The
/// payload bytes ride inside the frame; server-local timing stats do not.
std::vector<u8> encode_response(const ServeResult& res);
/// Parse a response frame. Throws ProtocolError on any defect.
ServeResult decode_response(std::span<const u8> frame);

}  // namespace recoil::serve
