#pragma once
// Versioned wire protocol of the serve subsystem. ServeRequest/ServeResult
// are the in-process API *and* have a framed, checksummed wire form
// (encode_request/decode_request, encode_response/decode_response), so an
// HTTP/gRPC frontend can cross a process boundary without touching core:
// it forwards opaque request frames to ContentServer::serve_frame and ships
// the response frame back. Failures are typed ErrorCode values — the string
// detail is for humans and logs, never for dispatch. Parsers consume
// untrusted bytes and throw ProtocolError (a typed recoil::Error), never
// crash: frames are FNV-checksummed and every length field is bounds-checked
// through the shared wire_io cursor.
//
// Frames are NOT self-delimiting: decode_request/decode_response and the
// StreamReassembler expect a span holding exactly one complete frame. A
// byte-stream transport must delimit frames itself — the TCP layer in
// src/net/ prepends a u32 LE length to every frame (net/framing.hpp) and
// reassembles complete frames from partial reads before handing them here.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "format/wire_io.hpp"
#include "util/error.hpp"
#include "util/ints.hpp"

namespace recoil::serve {

/// A served response's payload bytes, shared between the LRU cache, in-flight
/// coalesced requests and callers, so nothing ever copies a wire to hand it
/// out and cache eviction never invalidates a response being written.
using WireBytes = std::shared_ptr<const std::vector<u8>>;

/// Typed failure taxonomy of the serve protocol. Stable wire values: new
/// codes may be appended, existing values never change meaning.
enum class ErrorCode : u16 {
    ok = 0,
    unknown_asset = 1,        ///< no asset under the requested name
    invalid_range = 2,        ///< lo >= hi or hi past the asset's symbols
    not_acceptable = 3,       ///< asset's wire form excluded by accept flags
    bad_request = 4,          ///< structurally valid frame, nonsense values
    malformed_frame = 5,      ///< frame structure does not parse
    checksum_mismatch = 6,    ///< frame integrity check failed
    unsupported_version = 7,  ///< peer speaks a protocol version we do not
    internal = 8,             ///< server-side failure while building the wire
    frame_too_large = 9,      ///< frame exceeds the negotiated max-frame size
};
const char* error_name(ErrorCode code) noexcept;

/// Typed parse/serve failure. `code` is authoritative; what() elaborates.
class ProtocolError : public Error {
public:
    ProtocolError(ErrorCode code, const std::string& what)
        : Error(what), code_(code) {}
    ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

/// Client capability bits (ServeRequest::accept): which wire forms the
/// client can decode. A server never responds with a form the client did not
/// accept — it returns not_acceptable instead. kAcceptAll covers the payload
/// forms; kAcceptStreamed is a framing capability layered on top (the client
/// can reassemble v2 streamed response frames), required by serve_stream and
/// deliberately NOT part of kAcceptAll so default requests stay wire-
/// compatible with v1 servers, which reject unknown accept bits.
inline constexpr u8 kAcceptFile = 1;     ///< RecoilFile containers (RCF1)
inline constexpr u8 kAcceptChunked = 2;  ///< ChunkedStream containers (RCS1)
inline constexpr u8 kAcceptRange = 4;    ///< multi-segment range wires (RCR2)
inline constexpr u8 kAcceptStreamed = 8; ///< v2 streamed response framing
/// Introspection capability: the client understands metrics payloads served
/// under the reserved "!metrics"/"!metrics.json" asset names. Like
/// kAcceptStreamed, deliberately not part of kAcceptAll: a default request
/// stays wire-compatible with servers that predate introspection.
inline constexpr u8 kAcceptMetrics = 16;
inline constexpr u8 kAcceptAll = kAcceptFile | kAcceptChunked | kAcceptRange;

/// Which container format ServeResult::wire holds. `metrics` is a telemetry
/// snapshot (Prometheus text or JSON, by requested name), not a RECOIL
/// container.
enum class PayloadKind : u8 {
    none = 0,
    file = 1,
    chunked = 2,
    range = 3,
    metrics = 4,
};
const char* payload_name(PayloadKind kind) noexcept;

/// Reserved asset names for the introspection request: a ServeRequest naming
/// one of these (with kAcceptMetrics set) is answered with a PayloadKind::
/// metrics snapshot of the server's registry instead of store content. A
/// leading '!' is not a legal store name, so no real asset can collide.
inline constexpr const char* kMetricsAssetText = "!metrics";
inline constexpr const char* kMetricsAssetJson = "!metrics.json";

struct ServeRequest {
    std::string asset;
    /// Client's parallel decode capacity (warps/threads); clamped to the
    /// asset's encoded split budget. Ignored for range requests, which ship
    /// the master's fine-grained covering splits.
    u32 parallelism = 1;
    /// Symbol range [lo, hi) to serve instead of the whole asset.
    std::optional<std::pair<u64, u64>> range;
    /// Wire forms the client can decode (kAccept* bits).
    u8 accept = kAcceptAll;
    /// Resume a previously interrupted STREAMED response at this wire-byte
    /// offset: the server re-serves the same deterministic wire but skips
    /// the first resume_offset body-payload bytes (hashing them, so the
    /// FIN's whole-wire checksum still covers prefix + tail and reassembly
    /// stays bit-exact end to end). Only valid with kAcceptStreamed;
    /// nonzero without it is rejected as bad_request. Wire-compatible:
    /// 0 encodes exactly the pre-resume frame layout.
    u64 resume_offset = 0;
};

struct ServeStats {
    u64 wire_bytes = 0;
    /// Parallel work items the response actually carries (splits in the
    /// served metadata, or covering splits for a range).
    u32 splits_served = 0;
    bool cache_hit = false;
    /// Served by waiting on another request's in-flight combine instead of
    /// recomputing (single-flight coalescing).
    bool coalesced = false;
    double combine_seconds = 0;  ///< server-local: adaptation + serialization
    double total_seconds = 0;    ///< server-local: not carried on the wire
};

struct ServeResult {
    ErrorCode code = ErrorCode::internal;
    std::string detail;  ///< human-readable elaboration of `code`
    PayloadKind payload = PayloadKind::none;
    WireBytes wire;      ///< shared payload bytes; null on failure
    ServeStats stats;

    bool ok() const noexcept { return code == ErrorCode::ok; }
};

inline constexpr u8 kProtocolVersion = 1;
/// Version byte of the streamed response framing (same "RCRS" magic; a v1
/// peer rejects it as unsupported_version, which is the negotiation signal).
inline constexpr u8 kStreamVersion = 2;
inline constexpr u32 kMaxAssetNameLen = 4096;
inline constexpr u32 kMaxDetailLen = u32{1} << 16;
/// Default negotiated ceiling on a single streamed body frame's payload.
inline constexpr u64 kDefaultMaxFrameBytes = u64{1} << 20;
/// Sentinel: no frame-size ceiling negotiated (v1 compatibility default).
inline constexpr u64 kNoFrameLimit = 0;

/// Serialize a request into a framed, checksummed message ("RCRQ" v1).
std::vector<u8> encode_request(const ServeRequest& req);
/// Parse a request frame. Throws ProtocolError on any defect; never crashes.
ServeRequest decode_request(std::span<const u8> frame);

/// Serialize a result into a framed, checksummed message ("RCRS" v1). The
/// payload bytes ride inside the frame; server-local timing stats do not.
/// With a negotiated `max_frame_bytes`, a frame that would exceed it throws
/// typed frame_too_large instead of being emitted (encode-side enforcement).
std::vector<u8> encode_response(const ServeResult& res,
                                u64 max_frame_bytes = kNoFrameLimit);
/// Parse a response frame. Throws ProtocolError on any defect. With a
/// negotiated `max_frame_bytes`, an oversized frame is rejected as typed
/// frame_too_large before any of it is parsed (decode-side enforcement).
ServeResult decode_response(std::span<const u8> frame,
                            u64 max_frame_bytes = kNoFrameLimit);

// ---- v2 streamed response framing ----
//
// A streamed response is a SEQUENCE of small, individually FNV-checksummed
// frames instead of one frame holding the whole wire: a header frame
// (status + stats), N body frames (consecutive slices of exactly the bytes
// the v1 response's payload would hold), and a FIN frame carrying the body
// frame count and a whole-wire FNV over the concatenated body payloads —
// so a receiver that never materializes the wire still gets end-to-end
// integrity, and one that does reassemble gets bit-exactness with v1.

struct StreamHeader {
    ErrorCode code = ErrorCode::internal;
    std::string detail;
    PayloadKind payload = PayloadKind::none;
    bool cache_hit = false;
    bool coalesced = false;
    /// Splits carried, when known at header time (cache hits, replays);
    /// 0 for a cold stream — the FIN carries the authoritative count.
    u32 splits = 0;
    /// Total body payload bytes to follow, when known up front; 0 when the
    /// producer streams cold and the total emerges at FIN time.
    u64 wire_bytes = 0;
    /// The producer's body-frame payload ceiling (0 = none), echoed so the
    /// consumer can size its read buffer before the first body frame.
    u64 max_frame_bytes = kNoFrameLimit;
};

struct StreamFin {
    ErrorCode code = ErrorCode::ok;  ///< non-ok: the stream aborted mid-way
    std::string detail;
    u32 body_frames = 0;
    u32 splits = 0;  ///< authoritative split count for the streamed wire
    u64 wire_checksum = 0;  ///< FNV-1a over all body payload bytes, in order
};

enum class StreamFrameType : u8 { header = 0, body = 1, fin = 2 };

/// One parsed streamed-response frame. `payload` is a view into the input
/// frame (valid only while those bytes live); everything else is owned.
struct StreamFrame {
    StreamFrameType type = StreamFrameType::header;
    StreamHeader header;          ///< type == header
    u32 seq = 0;                  ///< type == body: 0-based body frame index
    std::span<const u8> payload;  ///< type == body
    StreamFin fin;                ///< type == fin
};

std::vector<u8> encode_stream_header(const StreamHeader& h);
/// Throws typed frame_too_large when payload exceeds `max_frame_bytes`.
std::vector<u8> encode_stream_body(u32 seq, std::span<const u8> payload,
                                   u64 max_frame_bytes = kNoFrameLimit);
std::vector<u8> encode_stream_fin(const StreamFin& fin);
/// Parse any v2 stream frame. Throws ProtocolError on any defect; an
/// oversized body (or whole frame) against the negotiated ceiling is typed
/// frame_too_large.
StreamFrame decode_stream_frame(std::span<const u8> frame,
                                u64 max_frame_bytes = kNoFrameLimit);

/// Client-side reassembler: feed frames in arrival order; validates the
/// header/body/FIN state machine, body-frame contiguity, the announced
/// totals and the whole-wire checksum, then exposes the materialized
/// ServeResult — test-enforced to be bit-exact with the v1 response.
class StreamReassembler {
public:
    explicit StreamReassembler(u64 max_frame_bytes = kNoFrameLimit)
        : max_frame_(max_frame_bytes) {}

    /// Feed the next frame; true once the stream is complete (after the FIN,
    /// or immediately after an error header). Throws ProtocolError on any
    /// defect, including a FIN that reports a mid-stream abort.
    bool feed(std::span<const u8> frame);
    bool done() const noexcept { return done_; }
    const StreamHeader& header() const;
    /// Body-payload bytes accumulated so far — the `resume_offset` a
    /// reconnecting client sends after a mid-stream transport failure.
    u64 bytes_received() const noexcept { return wire_->size(); }
    /// True when an interrupted stream can continue through begin_resume():
    /// an ok header arrived and the stream has not completed.
    bool resumable() const noexcept {
        return have_header_ && !done_ && head_.code == ErrorCode::ok;
    }
    /// Re-arm for the tail of a resumed stream: the next frame must be a
    /// fresh header and body sequencing restarts at 0, while the
    /// accumulated wire bytes and the incremental whole-wire digest carry
    /// over — so the FIN of the resumed tail validates prefix + tail
    /// together, bit-exact with an uninterrupted stream.
    void begin_resume() noexcept {
        have_header_ = false;
        next_seq_ = 0;
    }
    /// The reassembled response; requires done(). `wire` shares the
    /// accumulation buffer (immutable once done) — no copy is made, so the
    /// client's peak memory stays one wire, not two.
    ServeResult result() const;

private:
    u64 max_frame_;
    bool have_header_ = false;
    bool done_ = false;
    StreamHeader head_;
    u32 splits_ = 0;
    std::shared_ptr<std::vector<u8>> wire_ =
        std::make_shared<std::vector<u8>>();
    u64 digest_ = format::kFnvInit;  ///< incremental FNV over *wire_
    u32 next_seq_ = 0;
};

}  // namespace recoil::serve
