#pragma once
// Resource governance for the serve stack: one global byte budget spanning
// the response cache AND the asset store's resident masters (heap or mmap),
// so "serve this corpus from N bytes of RAM" is a single knob instead of
// two capacities that have to be guessed in ratio. Under pressure the
// governor UNLOADS cold demand-loadable assets — AssetStore::unload keeps
// the backing copy and the generation, so cached responses stay valid and
// the next request simply re-mmaps — and, if the store alone cannot get
// under budget, shrinks the cache through its eviction policy.
//
// What the governor will not do:
//   - unload a pinned asset (pin()/unpin(): per-class protection for
//     assets an operator knows are hot, whatever the clock says);
//   - unload an asset that is not in the backing store (that would be data
//     loss, not memory-pressure relief);
//   - unload an asset with live external references — an in-flight stream
//     pins its asset (and therefore its mmap) via shared_ptr, so unloading
//     would free nothing and force a pointless reload. The reference
//     sample is racy by nature: a stream acquiring the asset between the
//     snapshot and the unload keeps its pinned buffers and streams to
//     completion bit-exactly (the unload only drops the store's map entry);
//     the cost of losing that race is one re-mmap, never corruption.

#include <atomic>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "serve/asset_store.hpp"
#include "serve/metadata_cache.hpp"
#include "util/ints.hpp"
#include "util/thread_annotations.hpp"

namespace recoil::obs {
class MetricsRegistry;
}

namespace recoil::serve {

struct GovernorOptions {
    /// Global budget over cache bytes + resident store bytes. 0 disables
    /// the governor entirely (over_budget() is always false).
    u64 budget_bytes = 0;
};

/// Counters are cumulative; the `cache_bytes`/`resident_bytes` gauges are
/// live samples taken when stats() is called (usage may have regrown since
/// the last pass — judge a pass by the unload/shrink counters, not by the
/// gauges).
struct GovernorStats {
    u64 budget_bytes = 0;
    u64 cache_bytes = 0;     ///< live cache usage at stats() time
    u64 resident_bytes = 0;  ///< live store usage at stats() time
    u64 enforcements = 0;    ///< enforce() passes that found pressure
    u64 unloads = 0;         ///< assets unloaded
    u64 bytes_unloaded = 0;  ///< master bytes released by unloads
    u64 cache_shrinks = 0;   ///< passes that had to shrink the cache too
    u64 skipped_pinned = 0;  ///< candidates protected by pin()
    u64 skipped_in_use = 0;  ///< candidates with live external references
};

class ResourceGovernor {
public:
    ResourceGovernor(AssetStore& store, MetadataCache& cache,
                     GovernorOptions opt)
        : store_(store), cache_(cache), opt_(opt),
          budget_(opt.budget_bytes) {}

    bool enabled() const noexcept {
        return budget_.load(std::memory_order_relaxed) != 0;
    }
    u64 budget_bytes() const noexcept {
        return budget_.load(std::memory_order_relaxed);
    }

    /// Retarget the global budget at runtime — the shard-router's rebalance
    /// coordinator moves budget between shards through this. Re-arms the
    /// futility latch (a bigger budget may relieve pressure, a smaller one
    /// creates new pressure worth a pass); takes effect on the next
    /// over_budget() probe / enforce() pass. 0 disables the governor.
    void set_budget(u64 budget_bytes) RECOIL_EXCLUDES(mu_);

    /// Pinned assets are never unloaded by enforce(), however cold. The
    /// per-class protection knob: pin the assets a fleet's hot classes
    /// depend on and let the long tail absorb the pressure.
    void pin(const std::string& name) RECOIL_EXCLUDES(mu_);
    void unpin(const std::string& name) RECOIL_EXCLUDES(mu_);
    bool pinned(const std::string& name) const RECOIL_EXCLUDES(mu_);

    /// Recency signal: the server reports every request's asset here; the
    /// enforce() pass ranks unload candidates coldest-first by this clock.
    /// Assets never reported (preloaded, idle) rank coldest of all.
    void note_access(const std::string& name) RECOIL_EXCLUDES(mu_);

    /// Cheap pressure probe (two relaxed atomic loads) for the hot path.
    bool over_budget() const noexcept {
        const u64 budget = budget_.load(std::memory_order_relaxed);
        return budget != 0 &&
               cache_.current_bytes() + store_.resident_bytes() > budget;
    }

    /// over_budget() AND a pass has a chance of helping. When a pass ends
    /// still over budget (everything left is pinned, unbacked, or in use),
    /// the stuck usage level is remembered and the hot path stops paying
    /// for futile O(residents) passes until usage grows past it, the pin
    /// set changes, or an explicit enforce() runs (which always executes —
    /// and re-arms the probe if it manages to relieve anything). An asset
    /// can also become reclaimable with NO usage change (a stream finishes
    /// and drops the last external reference), so a latched governor still
    /// retries once every kLatchedRetryPeriod probes — bounded background
    /// cost, bounded reclaim delay.
    bool pressure_actionable() const noexcept {
        if (!over_budget()) return false;
        const u64 stuck = futile_usage_.load(std::memory_order_relaxed);
        if (stuck == 0 ||
            cache_.current_bytes() + store_.resident_bytes() > stuck)
            return true;
        return latched_probes_.fetch_add(1, std::memory_order_relaxed) %
                   kLatchedRetryPeriod ==
               kLatchedRetryPeriod - 1;
    }

    /// One governance pass: if usage exceeds the budget, unload cold
    /// eligible assets coldest-first until under budget, then — only if
    /// the store alone could not get there — shrink the cache to whatever
    /// share of the budget the remaining residents leave. Serialized
    /// internally; concurrent callers queue. Returns bytes released.
    u64 enforce() RECOIL_EXCLUDES(mu_);

    GovernorStats stats() const RECOIL_EXCLUDES(mu_);

    /// Publish this governor through `reg` as polled governor_* metrics;
    /// callbacks read the same counters stats() reports.
    void bind_metrics(obs::MetricsRegistry* reg);

private:
    AssetStore& store_;
    MetadataCache& cache_;
    GovernorOptions opt_;
    /// Live budget (opt_.budget_bytes is only the initial value). Atomic so
    /// the hot-path probes read it lock-free while set_budget retargets it.
    std::atomic<u64> budget_;
    mutable util::Mutex mu_;
    std::unordered_map<std::string, u64> last_access_ RECOIL_GUARDED_BY(mu_);
    std::unordered_set<std::string> pinned_ RECOIL_GUARDED_BY(mu_);
    /// clock_/futile_usage_/latched_probes_ are the documented lock-free
    /// escapes: over_budget()/pressure_actionable() run on the serve hot
    /// path and must never contend with a running enforce() pass.
    std::atomic<u64> clock_{0};
    /// Usage level a pass ended at while still over budget (0 = none):
    /// the futility latch behind pressure_actionable().
    std::atomic<u64> futile_usage_{0};
    static constexpr u64 kLatchedRetryPeriod = 64;
    mutable std::atomic<u64> latched_probes_{0};
    GovernorStats stats_ RECOIL_GUARDED_BY(mu_);
};

}  // namespace recoil::serve
