#pragma once
// Asset layer of the content-delivery service (§1, §3.3). Each asset is
// encoded ONCE at the largest parallelism any client may request; everything
// the serving path later adapts is metadata, never the bitstream. An asset
// is either a single Recoil container (format::RecoilFile) or a chunked
// stream (stream::ChunkedStream) for frame/tile-structured content.

#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "format/container.hpp"
#include "stream/chunked.hpp"

namespace recoil::serve {

/// One immutable encoded asset. `master_bytes` is the serialized size of the
/// full-parallelism master container (what a cache-less server keeps on
/// disk); `max_parallelism` is the split budget chosen at encode time and
/// the ceiling for any client's request.
struct Asset {
    std::string name;
    std::variant<format::RecoilFile, stream::ChunkedStream> payload;
    u64 master_bytes = 0;
    u32 max_parallelism = 1;
    /// Store-assigned generation, unique per insert. Cached responses are
    /// keyed by (name, uid) so replacing an asset under the same name can
    /// never serve the predecessor's bytes.
    u64 uid = 0;

    bool is_chunked() const noexcept {
        return std::holds_alternative<stream::ChunkedStream>(payload);
    }
    /// nullptr when the asset is chunked.
    const format::RecoilFile* file() const noexcept {
        return std::get_if<format::RecoilFile>(&payload);
    }
    const stream::ChunkedStream* chunked() const noexcept {
        return std::get_if<stream::ChunkedStream>(&payload);
    }
    u64 num_symbols() const noexcept {
        return is_chunked() ? chunked()->total_symbols()
                            : file()->metadata.num_symbols;
    }
};

/// Thread-safe name -> Asset map. Assets are immutable once added and held
/// by shared_ptr, so a concurrent reader's pointer stays valid across
/// erase(). Re-adding a name replaces the asset under a fresh uid.
class AssetStore {
public:
    std::shared_ptr<const Asset> add_file(std::string name, format::RecoilFile f);
    std::shared_ptr<const Asset> add_chunked(std::string name,
                                             stream::ChunkedStream s);

    /// Encode raw bytes once with `max_splits`-way metadata and store the
    /// resulting container (order-0 static model over the byte histogram).
    std::shared_ptr<const Asset> encode_bytes(std::string name,
                                              std::span<const u8> data,
                                              u32 max_splits, u32 prob_bits = 11);

    std::shared_ptr<const Asset> find(const std::string& name) const;
    bool erase(const std::string& name);
    std::vector<std::string> names() const;
    std::size_t size() const;

private:
    std::shared_ptr<const Asset> insert(Asset a);

    mutable std::shared_mutex mu_;
    std::unordered_map<std::string, std::shared_ptr<const Asset>> assets_;
    u64 next_uid_ = 1;
};

}  // namespace recoil::serve
