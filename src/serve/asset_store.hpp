#pragma once
// Thread-safe name -> Asset map. Assets are immutable once added and held by
// shared_ptr, so a concurrent reader's pointer stays valid across erase().
// Re-adding a name replaces the asset under a fresh uid.

#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/asset.hpp"

namespace recoil::serve {

class AssetStore {
public:
    std::shared_ptr<const Asset> add_file(std::string name, format::RecoilFile f);
    std::shared_ptr<const Asset> add_chunked(std::string name,
                                             stream::ChunkedStream s);

    /// Encode raw bytes once with `max_splits`-way metadata and store the
    /// resulting container (order-0 static model over the byte histogram).
    std::shared_ptr<const Asset> encode_bytes(std::string name,
                                              std::span<const u8> data,
                                              u32 max_splits, u32 prob_bits = 11);

    std::shared_ptr<const Asset> find(const std::string& name) const;
    bool erase(const std::string& name);
    std::vector<std::string> names() const;
    std::size_t size() const;

private:
    std::shared_ptr<const Asset> insert(std::shared_ptr<Asset> a);

    mutable std::shared_mutex mu_;
    std::unordered_map<std::string, std::shared_ptr<const Asset>> assets_;
    u64 next_uid_ = 1;
};

}  // namespace recoil::serve
