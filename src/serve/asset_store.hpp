#pragma once
// Thread-safe name -> Asset map. Assets are immutable once added and held by
// shared_ptr, so a concurrent reader's pointer stays valid across erase().
// Re-adding a name replaces the asset under a fresh uid.
//
// With a backing DiskStore attached the map becomes a view of the disk
// corpus: add_* write through durably before publishing, resolve()
// demand-loads misses as zero-copy views of the mmapped container, and the
// uid (generation) is carried across restarts — so MetadataCache keys stay
// valid over unload/reload cycles and the asset corpus is bounded by disk,
// not RAM.

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/asset.hpp"
#include "serve/store.hpp"
#include "util/thread_annotations.hpp"

namespace recoil::obs {
class MetricsRegistry;
}

namespace recoil::serve {

class AssetStore {
public:
    std::shared_ptr<const Asset> add_file(std::string name, format::RecoilFile f);
    std::shared_ptr<const Asset> add_chunked(std::string name,
                                             stream::ChunkedStream s);

    /// Encode raw bytes once with `max_splits`-way metadata and store the
    /// resulting container (order-0 static model over the byte histogram).
    std::shared_ptr<const Asset> encode_bytes(std::string name,
                                              std::span<const u8> data,
                                              u32 max_splits, u32 prob_bits = 11);

    /// Attach a disk backing store: subsequent add_* write through durably,
    /// resolve() demand-loads misses, and uids continue above every stored
    /// generation. Attach before adding assets (earlier adds stay
    /// memory-only).
    void attach_backing(std::shared_ptr<DiskStore> disk)
        RECOIL_EXCLUDES(disk_mu_, mu_);
    std::shared_ptr<DiskStore> backing() const RECOIL_EXCLUDES(mu_);

    /// In-memory lookup only; never touches the backing store.
    std::shared_ptr<const Asset> find(const std::string& name) const
        RECOIL_EXCLUDES(mu_);
    /// find(), then on a miss demand-load from the backing store (mmap +
    /// zero-copy parse) under the persisted generation. nullptr when the
    /// asset exists nowhere; StoreError when the stored copy is corrupt.
    std::shared_ptr<const Asset> resolve(const std::string& name)
        RECOIL_EXCLUDES(disk_mu_, mu_);
    /// Load every backed asset into memory (cold-boot warmup); returns the
    /// number of assets now resident.
    std::size_t preload() RECOIL_EXCLUDES(disk_mu_, mu_);

    /// Adopt an asset loaded from a FOREIGN DiskStore (the shard router's
    /// peer fetch): parse the mapped container into a zero-copy view and
    /// publish it under a fresh local uid. Foreign generations belong to a
    /// different uid sequence, so reusing one could alias this store's cache
    /// keys — the fresh uid keeps key spaces disjoint. The asset is NOT
    /// written through to this store's backing (the owning partition stays
    /// the single master copy); it is therefore memory-only here and the
    /// governor will not unload it.
    std::shared_ptr<const Asset> adopt(const DiskStore::Loaded& loaded)
        RECOIL_EXCLUDES(disk_mu_, mu_);

    /// True while `a` is still the live asset under its name — in memory,
    /// or (when unloaded) on disk under the same generation. The
    /// single-flight stale-put gate: a wire combined from a replaced or
    /// evicted asset must not re-enter the response cache.
    bool is_current(const Asset& a) const RECOIL_EXCLUDES(mu_);

    /// Drop the in-memory asset but keep the backing copy: resolve()
    /// reloads it under the same uid, so cached responses stay valid.
    bool unload(const std::string& name) RECOIL_EXCLUDES(mu_);
    /// Remove the asset everywhere (memory and backing store).
    bool erase(const std::string& name) RECOIL_EXCLUDES(disk_mu_, mu_);

    std::vector<std::string> names() const RECOIL_EXCLUDES(mu_);
    std::size_t size() const RECOIL_EXCLUDES(mu_);

    /// Master bytes of every in-memory asset — the store's RAM footprint as
    /// the resource governor accounts it (for a demand-loaded asset this is
    /// the mmap-resident container; for a heap asset, its payload buffers).
    /// Lock-free: maintained incrementally across add/resolve/unload/erase.
    u64 resident_bytes() const noexcept {
        return resident_bytes_.load(std::memory_order_relaxed);
    }

    /// One in-memory asset as the governor sees it when ranking unload
    /// candidates: only `backed` assets can be unloaded without data loss
    /// (resolve() reloads them under the same generation), and an asset
    /// with live external references (in-flight streams pin their asset) is
    /// pointless to unload — its memory stays pinned anyway.
    struct ResidentAsset {
        std::string name;
        u64 bytes = 0;
        bool backed = false;
        /// shared_ptr holders beyond the store's own reference, sampled at
        /// snapshot time (approximate under concurrency — a racing holder
        /// may appear or vanish; the governor treats it as a heuristic).
        long external_refs = 0;
    };
    /// Snapshot of every in-memory asset. The `backed` flags are queried
    /// from the backing store after the memory snapshot is taken.
    std::vector<ResidentAsset> residency() const RECOIL_EXCLUDES(mu_);

    /// Publish this store through `reg` as polled store_* metrics (resident
    /// bytes, asset count) and — when a backing DiskStore is or later
    /// becomes attached — the backing's disk_* metrics too. The disk
    /// callbacks hold a weak_ptr: a detached/replaced DiskStore reads as 0,
    /// never dangles.
    void bind_metrics(obs::MetricsRegistry* reg)
        RECOIL_EXCLUDES(disk_mu_, mu_);

private:
    std::shared_ptr<const Asset> insert(std::shared_ptr<Asset> a)
        RECOIL_EXCLUDES(disk_mu_, mu_);
    /// Publish (or replace) under mu_, keeping resident_bytes_ exact.
    void publish_locked(std::shared_ptr<const Asset> ptr)
        RECOIL_REQUIRES(mu_);

    mutable util::SharedMutex mu_;
    /// Serializes demand-loads and write-through ordering (taken before
    /// mu_; never the other way around — the ACQUIRED_BEFORE makes that
    /// ordering machine-checked, not a comment).
    util::Mutex disk_mu_ RECOIL_ACQUIRED_BEFORE(mu_);
    std::shared_ptr<DiskStore> disk_ RECOIL_GUARDED_BY(mu_);
    std::unordered_map<std::string, std::shared_ptr<const Asset>> assets_
        RECOIL_GUARDED_BY(mu_);
    u64 next_uid_ RECOIL_GUARDED_BY(mu_) = 1;
    /// Lock-free mirror of the in-memory master-byte total (documented
    /// escape): maintained under mu_, read without it by the governor's
    /// pressure probe.
    std::atomic<u64> resident_bytes_{0};
    /// Registry bound via bind_metrics, remembered so a DiskStore attached
    /// later is bound too.
    obs::MetricsRegistry* metrics_ RECOIL_GUARDED_BY(disk_mu_) = nullptr;
};

}  // namespace recoil::serve
