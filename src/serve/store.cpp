#include "serve/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "format/wire_io.hpp"
#include "obs/metrics.hpp"

namespace recoil::serve {

namespace fs = std::filesystem;
using namespace format::wire;

namespace {

constexpr char kManifestMagic[4] = {'R', 'C', 'M', '1'};
constexpr u8 kManifestVersion = 1;
constexpr const char* kContainerExt = ".rca";
constexpr const char* kManifestExt = ".rcm";
constexpr std::size_t kMaxEncodedName = 200;  ///< filesystem NAME_MAX margin

[[noreturn]] void fail(StoreStatus status, const std::string& what) {
    throw StoreError(status, what);
}

[[noreturn]] void fail_errno(const std::string& what) {
    fail(StoreStatus::io_error, what + ": " + std::strerror(errno));
}

/// Asset names are arbitrary strings; filenames keep [a-z0-9._-] and
/// percent-encode the rest (uppercase too, so names differing only in case
/// cannot collide on a case-folding filesystem), keeping the mapping
/// injective and portable.
std::string encode_name(const std::string& name) {
    static constexpr char hex[] = "0123456789ABCDEF";
    std::string out;
    out.reserve(name.size());
    for (const char ch : name) {
        const auto c = static_cast<unsigned char>(ch);
        const bool safe = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                          c == '.' || c == '_' || c == '-';
        if (safe && !(out.empty() && c == '.')) {  // no hidden/dot-relative files
            out.push_back(ch);
        } else {
            out.push_back('%');
            out.push_back(hex[c >> 4]);
            out.push_back(hex[c & 0xF]);
        }
    }
    if (out.empty() || out.size() > kMaxEncodedName)
        fail(StoreStatus::bad_name,
             "store: asset name '" + name + "' cannot become a store filename");
    return out;
}

std::vector<u8> serialize_manifest(const StoredAssetInfo& info) {
    std::vector<u8> out;
    out.insert(out.end(), kManifestMagic, kManifestMagic + 4);
    out.push_back(kManifestVersion);
    out.push_back(static_cast<u8>(info.kind));
    put_u16(out, 0);  // reserved
    put_u64(out, info.generation);
    put_u64(out, info.container_bytes);
    put_u64(out, info.checksum);
    put_u32(out, static_cast<u32>(info.name.size()));
    out.insert(out.end(), info.name.begin(), info.name.end());
    append_checksum(out);
    return out;
}

StoredAssetInfo parse_manifest(std::span<const u8> bytes,
                               const std::string& path) {
    const std::string ctx = "store manifest " + path;
    try {
        Cursor c{checked_payload(bytes, ctx.c_str()), ctx.c_str()};
        if (std::memcmp(c.get_bytes(4).data(), kManifestMagic, 4) != 0)
            raise(ctx + ": bad magic");
        if (c.get_u8() != kManifestVersion)
            raise(ctx + ": unsupported version");
        StoredAssetInfo info;
        const u8 kind = c.get_u8();
        if (kind > static_cast<u8>(AssetKind::chunked))
            raise(ctx + ": bad asset kind");
        info.kind = static_cast<AssetKind>(kind);
        if (c.get_u16() != 0) raise(ctx + ": reserved bits set");
        info.generation = c.get_u64();
        info.container_bytes = c.get_u64();
        info.checksum = c.get_u64();
        const u32 name_len = c.get_u32();
        auto name = c.get_bytes(name_len);
        info.name.assign(name.begin(), name.end());
        if (info.name.empty()) raise(ctx + ": empty asset name");
        return info;
    } catch (const StoreError&) {
        throw;
    } catch (const Error& e) {
        fail(StoreStatus::bad_manifest, e.what());
    }
}

/// Temp-file + fsync + atomic-rename + directory fsync: after return the
/// bytes are durably at `final_path`, or the previous file is untouched.
void write_file_durable(const fs::path& final_path, std::span<const u8> bytes) {
    fs::path tmp = final_path;
    tmp += ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail_errno("store: cannot create " + tmp.string());
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            fail_errno("store: write to " + tmp.string() + " failed");
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        fail_errno("store: fsync of " + tmp.string() + " failed");
    }
    ::close(fd);
    if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        fail_errno("store: rename to " + final_path.string() + " failed");
    }
    const int dfd = ::open(final_path.parent_path().c_str(),
                           O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {  // directory fsync is best-effort on exotic filesystems
        ::fsync(dfd);
        ::close(dfd);
    }
}

}  // namespace

const char* store_status_name(StoreStatus status) noexcept {
    switch (status) {
        case StoreStatus::io_error: return "io_error";
        case StoreStatus::bad_manifest: return "bad_manifest";
        case StoreStatus::bad_container: return "bad_container";
        case StoreStatus::bad_name: return "bad_name";
    }
    return "unknown";
}

std::shared_ptr<const MappedFile> MappedFile::map(const fs::path& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) fail_errno("store: cannot open " + path.string());
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fail_errno("store: cannot stat " + path.string());
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void* addr = nullptr;
    if (size > 0) {
        addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (addr == MAP_FAILED) {
            ::close(fd);
            fail_errno("store: mmap of " + path.string() + " failed");
        }
    }
    ::close(fd);  // the mapping survives the descriptor
    return std::shared_ptr<const MappedFile>(new MappedFile(addr, size));
}

MappedFile::~MappedFile() {
    if (addr_ != nullptr) ::munmap(addr_, size_);
}

DiskStore::DiskStore(fs::path dir, DiskStoreOptions opt)
    : dir_(std::move(dir)), opt_(opt) {
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        fail(StoreStatus::io_error,
             "store: cannot create directory " + dir_.string());

    for (const auto& entry : fs::directory_iterator(dir_)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != kManifestExt)
            continue;
        std::ifstream in(entry.path(), std::ios::binary);
        std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
        if (!in)
            fail(StoreStatus::io_error,
                 "store: cannot read manifest " + entry.path().string());
        StoredAssetInfo info = parse_manifest(bytes, entry.path().string());
        if (manifest_path(info.name) != entry.path())
            fail(StoreStatus::bad_manifest,
                 "store manifest " + entry.path().string() +
                     ": filename does not match asset name '" + info.name + "'");
        const fs::path container = container_path(info.name, info.generation);
        std::error_code size_ec;
        const auto size = fs::file_size(container, size_ec);
        if (size_ec)
            fail(StoreStatus::bad_container,
                 "store: container missing for asset '" + info.name + "' (" +
                     container.string() + ")");
        if (size != info.container_bytes)
            fail(StoreStatus::bad_container,
                 "store: container for asset '" + info.name + "' is " +
                     std::to_string(size) + " B, manifest says " +
                     std::to_string(info.container_bytes) + " B");
        index_.emplace(info.name, std::move(info));
    }
}

std::filesystem::path DiskStore::container_path(const std::string& name,
                                                u64 generation) const {
    return dir_ /
           (encode_name(name) + ".g" + std::to_string(generation) + kContainerExt);
}

std::filesystem::path DiskStore::manifest_path(const std::string& name) const {
    return dir_ / (encode_name(name) + kManifestExt);
}

std::vector<StoredAssetInfo> DiskStore::list() const {
    util::MutexLock lk(mu_);
    std::vector<StoredAssetInfo> out;
    out.reserve(index_.size());
    for (const auto& [_, info] : index_) out.push_back(info);
    return out;
}

std::optional<StoredAssetInfo> DiskStore::info(const std::string& name) const {
    util::MutexLock lk(mu_);
    auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    return it->second;
}

std::size_t DiskStore::size() const {
    util::MutexLock lk(mu_);
    return index_.size();
}

u64 DiskStore::next_generation() const {
    util::MutexLock lk(mu_);
    u64 next = 1;
    for (const auto& [_, info] : index_)
        next = std::max(next, info.generation + 1);
    return next;
}

void DiskStore::put(const std::string& name, AssetKind kind,
                    std::span<const u8> container, u64 generation) {
    StoredAssetInfo info;
    info.name = name;
    info.kind = kind;
    info.generation = generation;
    info.container_bytes = container.size();
    info.checksum = format::fnv1a(container);
    const std::vector<u8> manifest = serialize_manifest(info);

    util::MutexLock lk(mu_);
    // Containers are generation-suffixed, so writing the new one never
    // touches the live one; the manifest rename is the atomic commit. A
    // crash before it leaves the old asset fully intact plus an orphan
    // container (ignored at open); a crash after it leaves the new asset
    // committed plus the predecessor's container, garbage-collected below
    // on this put and ignored at open otherwise.
    const auto prev = index_.find(name);
    const std::optional<u64> prev_gen =
        prev != index_.end() ? std::optional<u64>(prev->second.generation)
                             : std::nullopt;
    write_file_durable(container_path(name, generation), container);
    write_file_durable(manifest_path(name), manifest);
    if (prev_gen.has_value() && *prev_gen != generation) {
        std::error_code ec;  // best effort: an orphan is harmless
        fs::remove(container_path(name, *prev_gen), ec);
    }
    index_[name] = std::move(info);
    puts_.fetch_add(1, std::memory_order_relaxed);
    put_bytes_.fetch_add(container.size(), std::memory_order_relaxed);
}

std::optional<DiskStore::Loaded> DiskStore::load(const std::string& name) const {
    for (int attempt = 0;; ++attempt) {
        StoredAssetInfo info;
        {
            util::MutexLock lk(mu_);
            auto it = index_.find(name);
            if (it == index_.end()) return std::nullopt;
            info = it->second;
        }
        try {
            auto map = MappedFile::map(container_path(name, info.generation));
            if (map->bytes().size() != info.container_bytes)
                fail(StoreStatus::bad_container,
                     "store: container for asset '" + name + "' is " +
                         std::to_string(map->bytes().size()) +
                         " B, manifest says " +
                         std::to_string(info.container_bytes) + " B");
            if (opt_.verify_on_load &&
                format::fnv1a(map->bytes()) != info.checksum)
                fail(StoreStatus::bad_container,
                     "store: container checksum mismatch for asset '" + name +
                         "'");
            loads_.fetch_add(1, std::memory_order_relaxed);
            load_bytes_.fetch_add(map->bytes().size(),
                                  std::memory_order_relaxed);
            return Loaded{std::move(info), std::move(map), opt_.verify_on_load};
        } catch (const StoreError&) {
            // A concurrent put() may have replaced the asset (and collected
            // this generation's container) between the index read and the
            // map. If so, retry against the new generation; otherwise it is
            // genuine corruption.
            util::MutexLock lk(mu_);
            auto it = index_.find(name);
            if (attempt == 0 && it != index_.end() &&
                it->second.generation != info.generation)
                continue;
            throw;
        }
    }
}

DiskStore::VerifyReport DiskStore::verify() const {
    std::vector<StoredAssetInfo> assets;
    {
        util::MutexLock lk(mu_);
        assets.reserve(index_.size());
        for (const auto& [_, info] : index_) assets.push_back(info);
    }
    VerifyReport report;
    for (const StoredAssetInfo& info : assets) {
        ++report.checked;
        try {
            auto map = MappedFile::map(container_path(info.name, info.generation));
            if (map->bytes().size() != info.container_bytes)
                fail(StoreStatus::bad_container,
                     "store: container for asset '" + info.name + "' is " +
                         std::to_string(map->bytes().size()) +
                         " B, manifest says " +
                         std::to_string(info.container_bytes) + " B");
            if (format::fnv1a(map->bytes()) != info.checksum)
                fail(StoreStatus::bad_container,
                     "store: container checksum mismatch for asset '" +
                         info.name + "'");
            // Structural validation via the real parser: a container whose
            // checksum holds can still carry nonsense a demand-load would
            // reject (the manifest hash covers bytes, not invariants).
            asset_from_mapped(Loaded{info, std::move(map), true});
        } catch (const StoreError& e) {
            report.issues.push_back({info.name, e.status(), e.what()});
        } catch (const Error& e) {
            report.issues.push_back(
                {info.name, StoreStatus::bad_container, e.what()});
        }
    }
    return report;
}

bool DiskStore::remove(const std::string& name) {
    util::MutexLock lk(mu_);
    auto it = index_.find(name);
    if (it == index_.end()) return false;
    // Manifest first: a crash mid-remove leaves an orphan container (ignored
    // at open) rather than a manifest referencing a missing container.
    std::error_code ec;
    fs::remove(manifest_path(name), ec);
    if (ec) fail(StoreStatus::io_error,
                 "store: cannot remove manifest for '" + name + "'");
    fs::remove(container_path(name, it->second.generation), ec);
    if (ec) fail(StoreStatus::io_error,
                 "store: cannot remove container for '" + name + "'");
    const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    index_.erase(it);
    removes_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void DiskStore::bind_metrics(obs::MetricsRegistry* reg) {
    if (reg == nullptr) return;
    // `this`-capturing callbacks: the caller guarantees the store outlives
    // the registry (an AssetStore whose backing may be replaced binds its
    // disk through weak_ptr-guarded callbacks instead — see
    // AssetStore::bind_metrics).
    using obs::MetricKind;
    reg->register_callback("disk_puts_total", MetricKind::counter,
                           [this] { return stats().puts; });
    reg->register_callback("disk_put_bytes_total", MetricKind::counter,
                           [this] { return stats().put_bytes; });
    reg->register_callback("disk_loads_total", MetricKind::counter,
                           [this] { return stats().loads; });
    reg->register_callback("disk_load_bytes_total", MetricKind::counter,
                           [this] { return stats().load_bytes; });
    reg->register_callback("disk_removes_total", MetricKind::counter,
                           [this] { return stats().removes; });
    reg->register_callback("disk_assets", MetricKind::gauge,
                           [this] { return static_cast<u64>(size()); });
}

std::shared_ptr<Asset> asset_from_mapped(const DiskStore::Loaded& loaded) {
    const auto bytes = loaded.map->bytes();
    try {
        if (loaded.info.kind == AssetKind::chunked) {
            return std::make_shared<ChunkedAsset>(
                loaded.info.name,
                stream::ChunkedStream::parse_view(bytes, loaded.map,
                                                  loaded.checksum_verified));
        }
        format::RecoilFile f = format::load_recoil_file_view(
            bytes, loaded.map, loaded.checksum_verified);
        return std::make_shared<FileAsset>(loaded.info.name, std::move(f));
    } catch (const StoreError&) {
        throw;
    } catch (const Error& e) {
        fail(StoreStatus::bad_container,
             "store: container for asset '" + loaded.info.name +
                 "' does not parse: " + e.what());
    }
}

}  // namespace recoil::serve
