#include "serve/metadata_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace recoil::serve {

MetadataCache::MetadataCache(u64 capacity_bytes, CachePolicyConfig policy)
    : capacity_(capacity_bytes),
      policy_cfg_(policy),
      policy_(make_eviction_policy(policy, capacity_bytes)),
      admission_(make_admission_policy(policy, capacity_bytes)) {}

WireBytes MetadataCache::get(const std::string& asset_key, u32 parallelism,
                             u32* splits_out, bool record_access) {
    util::MutexLock lk(mu_);
    const Key key{asset_key, parallelism};
    if (record_access) admission_->record(KeyHash{}(key));
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    stats_.hit_bytes += it->second.wire->size();
    policy_->on_touch(it->second.id);
    if (splits_out != nullptr) *splits_out = it->second.splits;
    return it->second.wire;
}

void MetadataCache::put(const std::string& asset_key, u32 parallelism,
                        WireBytes wire, u32 splits) {
    RECOIL_CHECK(wire != nullptr, "cache put: null payload");
    util::MutexLock lk(mu_);
    const Key key{asset_key, parallelism};
    auto it = map_.find(key);
    if (wire->size() > capacity_) {  // would evict everything for nothing
        ++stats_.rejected;
        // A resident entry under this key is now known stale: serving it
        // would hand out superseded bytes, so it goes too (not an eviction
        // — nothing displaced it for space).
        if (it != map_.end()) {
            set_bytes_locked(stats_.bytes - it->second.wire->size());
            erase_entry_locked(it->second.id);
            stats_.entries = map_.size();
        }
        return;
    }
    if (it != map_.end()) {
        // Refresh: already admitted once — the gate does not re-run.
        set_bytes_locked(stats_.bytes - it->second.wire->size() +
                         wire->size());
        it->second.wire = std::move(wire);
        it->second.splits = splits;
        policy_->on_touch(it->second.id);
        policy_->on_resize(it->second.id, it->second.wire->size());
    } else {
        if (!admission_->admit(KeyHash{}(key), wire->size())) {
            ++stats_.admission_rejected;
            return;
        }
        const EntryId id = next_id_++;
        set_bytes_locked(stats_.bytes + wire->size());
        auto [pos, inserted] =
            map_.emplace(key, Entry{std::move(wire), splits, id});
        by_id_[id] = &pos->first;
        policy_->on_insert(id, pos->second.wire->size());
        ++stats_.insertions;
    }
    stats_.entries = map_.size();
    // Peak is sampled before eviction trims back under capacity: it reports
    // the most bytes the cache ever actually held.
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes);
    evict_until_locked(capacity_);
}

void MetadataCache::erase_entry_locked(EntryId id) {
    auto idx = by_id_.find(id);
    RECOIL_CHECK(idx != by_id_.end(), "cache: unknown entry id");
    const Key key = *idx->second;  // copy: erasing invalidates the pointer
    by_id_.erase(idx);
    policy_->on_erase(id);
    map_.erase(key);
}

void MetadataCache::evict_until_locked(u64 target_bytes) {
    while (stats_.bytes > target_bytes && !map_.empty()) {
        const EntryId id = policy_->victim();
        RECOIL_CHECK(id != kNoEntry, "cache: policy lost a resident entry");
        auto idx = by_id_.find(id);
        RECOIL_CHECK(idx != by_id_.end(), "cache: victim id unknown");
        set_bytes_locked(stats_.bytes - map_.at(*idx->second).wire->size());
        erase_entry_locked(id);
        ++stats_.evictions;
        stats_.entries = map_.size();
    }
}

void MetadataCache::erase_asset(const std::string& asset_key) {
    util::MutexLock lk(mu_);
    for (auto it = map_.begin(); it != map_.end();) {
        const std::string& a = it->first.asset;
        const bool derived = a.size() > asset_key.size() &&
                             a.compare(0, asset_key.size(), asset_key) == 0 &&
                             a[asset_key.size()] == '\n';
        if (a == asset_key || derived) {
            set_bytes_locked(stats_.bytes - it->second.wire->size());
            by_id_.erase(it->second.id);
            policy_->on_erase(it->second.id);
            it = map_.erase(it);
        } else {
            ++it;
        }
    }
    stats_.entries = map_.size();
}

void MetadataCache::shrink_to(u64 target_bytes) {
    util::MutexLock lk(mu_);
    evict_until_locked(target_bytes);
}

void MetadataCache::clear() {
    util::MutexLock lk(mu_);
    map_.clear();
    by_id_.clear();
    policy_->clear();
    set_bytes_locked(0);
    stats_.entries = 0;
}

CacheStats MetadataCache::stats() const {
    util::MutexLock lk(mu_);
    return stats_;
}

void MetadataCache::bind_metrics(obs::MetricsRegistry* reg) {
    if (reg == nullptr) return;
    using obs::MetricKind;
    // Polled callbacks reading the same stats_ the stats() API reports: the
    // registry view is bit-identical by construction and the cache hot path
    // gains no extra writes.
    auto poll = [this](u64 CacheStats::* field) {
        return [this, field] { return stats().*field; };
    };
    reg->register_callback("cache_hits_total", MetricKind::counter,
                           poll(&CacheStats::hits));
    reg->register_callback("cache_misses_total", MetricKind::counter,
                           poll(&CacheStats::misses));
    reg->register_callback("cache_hit_bytes_total", MetricKind::counter,
                           poll(&CacheStats::hit_bytes));
    reg->register_callback("cache_insertions_total", MetricKind::counter,
                           poll(&CacheStats::insertions));
    reg->register_callback("cache_evictions_total", MetricKind::counter,
                           poll(&CacheStats::evictions));
    reg->register_callback("cache_rejected_total", MetricKind::counter,
                           poll(&CacheStats::rejected));
    reg->register_callback("cache_admission_rejected_total",
                           MetricKind::counter,
                           poll(&CacheStats::admission_rejected));
    reg->register_callback("cache_peak_bytes", MetricKind::gauge,
                           poll(&CacheStats::peak_bytes));
    reg->register_callback("cache_bytes", MetricKind::gauge,
                           poll(&CacheStats::bytes));
    reg->register_callback("cache_entries", MetricKind::gauge,
                           poll(&CacheStats::entries));
    reg->register_callback("cache_capacity_bytes", MetricKind::gauge,
                           [this] { return capacity_bytes(); });
}

void MetadataCache::set_bytes_locked(u64 bytes) {
    stats_.bytes = bytes;
    bytes_now_.store(bytes, std::memory_order_relaxed);
}

}  // namespace recoil::serve
