#include "serve/metadata_cache.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace recoil::serve {

WireBytes MetadataCache::get(const std::string& asset_key, u32 parallelism,
                             u32* splits_out) {
    std::scoped_lock lk(mu_);
    auto it = index_.find(Key{asset_key, parallelism});
    if (it == index_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (splits_out != nullptr) *splits_out = it->second->splits;
    return it->second->wire;
}

void MetadataCache::put(const std::string& asset_key, u32 parallelism,
                        WireBytes wire, u32 splits) {
    RECOIL_CHECK(wire != nullptr, "cache put: null payload");
    std::scoped_lock lk(mu_);
    if (wire->size() > capacity_) {  // would evict everything for nothing
        ++stats_.rejected;
        return;
    }
    const Key key{asset_key, parallelism};
    auto it = index_.find(key);
    if (it != index_.end()) {
        stats_.bytes -= it->second->wire->size();
        stats_.bytes += wire->size();
        it->second->wire = std::move(wire);
        it->second->splits = splits;
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        stats_.bytes += wire->size();
        lru_.push_front(Entry{key, std::move(wire), splits});
        index_.emplace(key, lru_.begin());
        ++stats_.insertions;
    }
    stats_.entries = index_.size();
    // Peak is sampled before eviction trims back under capacity: it reports
    // the most bytes the cache ever actually held.
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes);
    while (stats_.bytes > capacity_ && !lru_.empty()) evict_lru_locked();
}

void MetadataCache::evict_lru_locked() {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.wire->size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    stats_.entries = index_.size();
}

void MetadataCache::erase_asset(const std::string& asset_key) {
    std::scoped_lock lk(mu_);
    for (auto it = lru_.begin(); it != lru_.end();) {
        const std::string& a = it->key.asset;
        const bool derived = a.size() > asset_key.size() &&
                             a.compare(0, asset_key.size(), asset_key) == 0 &&
                             a[asset_key.size()] == '\n';
        if (a == asset_key || derived) {
            stats_.bytes -= it->wire->size();
            index_.erase(it->key);
            it = lru_.erase(it);
        } else {
            ++it;
        }
    }
    stats_.entries = index_.size();
}

void MetadataCache::clear() {
    std::scoped_lock lk(mu_);
    lru_.clear();
    index_.clear();
    stats_.bytes = 0;
    stats_.entries = 0;
}

CacheStats MetadataCache::stats() const {
    std::scoped_lock lk(mu_);
    return stats_;
}

}  // namespace recoil::serve
