#pragma once
// Pluggable cache decision-making for the serve subsystem, split out of
// MetadataCache so the ROADMAP's admission/eviction policy study is a
// configuration choice instead of a rewrite. Two orthogonal axes:
//
//   EvictionPolicy  — WHICH resident entry dies when the cache is over
//                     capacity. LruPolicy reproduces the historical cache
//                     bit-exactly (the seeded-Zipf exact-model regression in
//                     test_session anchors this); SegmentedLruPolicy adds a
//                     probation/protected split so one burst of cold traffic
//                     cannot flush the proven-hot working set.
//   AdmissionPolicy — WHETHER a brand-new entry gets in at all. AdmitAll is
//                     the historical behavior; TinyLfuAdmission keeps a tiny
//                     frequency sketch over the key stream and rejects
//                     one-hit wonders whose byte cost exceeds their
//                     estimated reuse value (size-aware: a small stranger is
//                     cheap to gamble on, a wire-sized one is not).
//
// Policies are NOT thread-safe; MetadataCache invokes every hook under its
// own mutex. Entries are named by an opaque cache-assigned EntryId so a
// policy never sees keys or payloads — only identity, size, and recency.

#include <cstddef>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/ints.hpp"

namespace recoil::serve {

/// Opaque per-entry handle, assigned by the cache at insertion and unique
/// over the cache's lifetime (never reused, so a stale id is a hard bug).
using EntryId = u64;
inline constexpr EntryId kNoEntry = 0;

/// Victim selection + residency bookkeeping for one cache. Hook order is
/// driven by MetadataCache: on_insert for every admitted new entry,
/// on_touch for every hit (and for a put over an existing key), on_resize
/// when a refresh changes an entry's size, on_erase when the entry leaves
/// (eviction, erase_asset, shrink) — clear() drops everything at once.
class EvictionPolicy {
public:
    virtual ~EvictionPolicy() = default;
    virtual const char* name() const noexcept = 0;
    virtual void on_insert(EntryId id, u64 bytes) = 0;
    virtual void on_touch(EntryId id) = 0;
    virtual void on_resize(EntryId id, u64 bytes) = 0;
    virtual void on_erase(EntryId id) = 0;
    /// The entry the cache should evict next; kNoEntry when the policy
    /// tracks nothing. Pure selection — the cache erases and then reports
    /// the removal back through on_erase.
    virtual EntryId victim() const = 0;
    virtual void clear() = 0;
};

/// Exact reproduction of the historical MetadataCache discipline: one
/// recency list, hits (and refreshes) splice to the front, the victim is
/// the back. Selecting this policy must keep test_session's seeded-Zipf
/// exact-LRU-model regression passing unmodified.
class LruPolicy final : public EvictionPolicy {
public:
    const char* name() const noexcept override { return "lru"; }
    void on_insert(EntryId id, u64 bytes) override;
    void on_touch(EntryId id) override;
    void on_resize(EntryId, u64) override {}  // recency order is size-blind
    void on_erase(EntryId id) override;
    EntryId victim() const override;
    void clear() override;

private:
    std::list<EntryId> order_;  ///< front = most recently used
    std::unordered_map<EntryId, std::list<EntryId>::iterator> pos_;
};

/// Segmented LRU: new entries enter a probation segment; a second access
/// promotes to the protected segment, which is capped at
/// `protected_fraction` of the cache's byte capacity (demotions flow back
/// to probation's MRU end). Victims come from probation first, so scan
/// traffic churns probation while the proven-hot set rides out the burst.
class SegmentedLruPolicy final : public EvictionPolicy {
public:
    SegmentedLruPolicy(u64 capacity_bytes, double protected_fraction);

    const char* name() const noexcept override { return "slru"; }
    void on_insert(EntryId id, u64 bytes) override;
    void on_touch(EntryId id) override;
    void on_resize(EntryId id, u64 bytes) override;
    void on_erase(EntryId id) override;
    EntryId victim() const override;
    void clear() override;

    u64 protected_bytes() const noexcept { return protected_bytes_; }
    u64 probation_bytes() const noexcept { return probation_bytes_; }

private:
    struct Node {
        std::list<EntryId>::iterator it;
        u64 bytes = 0;
        bool protected_seg = false;
    };
    /// Demote protected-LRU entries to probation's MRU end until the
    /// protected segment fits its byte cap again.
    void shrink_protected();

    u64 protected_cap_;
    std::list<EntryId> probation_;  ///< front = most recently used
    std::list<EntryId> protected_;
    std::unordered_map<EntryId, Node> nodes_;
    u64 protected_bytes_ = 0;
    u64 probation_bytes_ = 0;
};

/// Gate on NEW keys entering the cache. record() sees every lookup (hit or
/// miss), which is where frequency estimators learn; admit() is consulted
/// once per candidate insertion. Refreshes of already-cached keys bypass
/// the gate entirely — they paid their dues getting in.
class AdmissionPolicy {
public:
    virtual ~AdmissionPolicy() = default;
    virtual const char* name() const noexcept = 0;
    virtual void record(u64 key_hash) = 0;
    virtual bool admit(u64 key_hash, u64 bytes) = 0;
    virtual void clear() = 0;
};

/// The historical behavior: everything gets in.
class AdmitAll final : public AdmissionPolicy {
public:
    const char* name() const noexcept override { return "admit-all"; }
    void record(u64) override {}
    bool admit(u64, u64) override { return true; }
    void clear() override {}
};

/// TinyLFU-style size-aware admission: a 4-row count-min sketch of 4-bit
/// saturating counters estimates each key's access frequency over a sliding
/// sample window (all counters halve when the window fills, so dead keys
/// fade instead of squatting). A candidate whose estimated frequency shows
/// reuse (>= 2 accesses in the window — its own miss plus at least one
/// prior) is admitted; a one-hit wonder is admitted only when its byte cost
/// is under `small_floor` — the cheap-gamble threshold. Big strangers must
/// come back a second time before they may displace proven entries.
class TinyLfuAdmission final : public AdmissionPolicy {
public:
    /// `width` is counters per sketch row (rounded up to a power of two);
    /// the aging window is 8x the width, i.e. proportional to sketch size.
    TinyLfuAdmission(u64 small_floor_bytes, u32 width = 4096);

    const char* name() const noexcept override { return "tinylfu"; }
    void record(u64 key_hash) override;
    bool admit(u64 key_hash, u64 bytes) override;
    void clear() override;

    /// Sketch estimate for a key (min over rows). Saturates at 15.
    u32 estimate(u64 key_hash) const noexcept;

private:
    static constexpr u32 kRows = 4;
    static constexpr u8 kCounterMax = 15;

    u64 small_floor_;
    u32 mask_;
    u64 window_;  ///< record()s between halvings
    u64 ops_ = 0;
    std::vector<u8> rows_[kRows];
};

// ---- configuration / factories ----

enum class EvictionKind : u8 { lru = 0, slru = 1 };
enum class AdmissionKind : u8 { admit_all = 0, tinylfu = 1 };

struct CachePolicyConfig {
    EvictionKind eviction = EvictionKind::lru;
    AdmissionKind admission = AdmissionKind::admit_all;
    /// SLRU: share of the cache's byte capacity the protected segment may
    /// hold before demotions begin.
    double slru_protected_fraction = 0.8;
    /// TinyLFU: one-hit wonders at or under this byte size are admitted
    /// anyway (cheap gamble). 0 = capacity / 64.
    u64 tinylfu_small_floor = 0;
    /// TinyLFU: counters per sketch row (rounded up to a power of two).
    u32 tinylfu_width = 4096;
};

std::unique_ptr<EvictionPolicy> make_eviction_policy(
    const CachePolicyConfig& cfg, u64 capacity_bytes);
std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const CachePolicyConfig& cfg, u64 capacity_bytes);

/// Parse a policy spelling: "lru", "slru", "lru-tinylfu", "slru-tinylfu".
/// nullopt on an unknown name.
std::optional<CachePolicyConfig> parse_cache_policy(std::string_view name);
/// The canonical spelling parse_cache_policy accepts for this config.
std::string cache_policy_name(const CachePolicyConfig& cfg);

}  // namespace recoil::serve
