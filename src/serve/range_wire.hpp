#pragma once
// Byte-range serving: ship only the split points and bitstream units that
// cover a requested symbol range [lo, hi), so a client fetching a slice of a
// large asset pays wire bytes proportional to the slice, not the asset.
//
// The RCR2 wire is a sequence of SEGMENTS, giving every asset kind uniform
// range semantics:
//  * a static-model RecoilFile is one segment;
//  * an indexed-model RecoilFile is one segment that also carries the model
//    family and the slice of per-symbol model ids the covering splits touch;
//  * a ChunkedStream decomposes into one segment per intersecting chunk,
//    each with that chunk's model and covering splits.
// Each segment is decodable by the unmodified 3-phase split decoder because
//  * symbol indexing stays ABSOLUTE within the segment's stream (the decoder
//    derives lane ids from position % lanes, which rebasing would break), and
//  * unit offsets are rebased to the slice: units append in symbol order
//    (see rans/interleaved.hpp), so every unit the covering splits pop lies
//    in [splits[first-2].offset + 1, splits[last].offset + 1) — bounds
//    computable from metadata alone.
// The shipped metadata is the covering splits plus the preceding boundary
// split (the decoder's phase-2/3 limits), re-encoded with the standard §4.3
// codec against slice-local expectations.

#include <span>
#include <vector>

#include "format/container.hpp"
#include "simd/dispatch.hpp"
#include "stream/chunked.hpp"
#include "util/thread_pool.hpp"

namespace recoil::serve {

/// Parsed per-segment header, for stats and tests. lo/hi/cover are LOCAL to
/// the segment's stream; add `base` for the asset's flat symbol space.
struct RangeSegmentInfo {
    u64 base = 0;                    ///< segment stream's first symbol, absolute
    u64 lo = 0, hi = 0;              ///< requested symbol range (local)
    u64 cover_lo = 0, cover_hi = 0;  ///< symbols the shipped splits produce
    u64 unit_count = 0;              ///< shipped bitstream units
    u32 first_split = 0;             ///< first covering split in the master
    u32 splits_served = 0;           ///< covering split count
    bool has_prev = false;           ///< boundary split entry shipped
    bool includes_final = false;     ///< slice reaches the bitstream end
    bool indexed = false;            ///< segment carries an indexed model family
};

/// Parsed range-wire header, for stats and tests.
struct RangeWireInfo {
    u8 sym_width = 0;
    u64 lo = 0, hi = 0;      ///< requested symbol range, asset-absolute
    u32 splits_served = 0;   ///< total covering splits across segments
    std::vector<RangeSegmentInfo> segments;
};

struct BuiltRangeWire {
    std::vector<u8> bytes;
    u32 splits = 0;  ///< total covering splits across segments
};

/// Build the wire for symbols [lo, hi) of a RecoilFile asset (static or
/// indexed model). Raises recoil::Error for an out-of-range request. A
/// materializing adapter over range_wire_into.
BuiltRangeWire build_range_wire(const format::RecoilFile& f, u64 lo, u64 hi);

/// Build the wire for symbols [lo, hi) of a chunked asset, addressed in the
/// stream's flat symbol space: the range decomposes into per-chunk covering
/// splits, one segment per intersecting chunk.
BuiltRangeWire build_range_wire(const stream::ChunkedStream& s, u64 lo, u64 hi);

/// Streaming producers: emit the RCR2 wire into `sink` segment by segment,
/// bit-exact with build_range_wire. Per-segment structural sections are
/// small owned allocations; unit and id slices are borrowed views of the
/// asset's shared storage. Returns the covering split count.
u32 range_wire_into(const format::RecoilFile& f, u64 lo, u64 hi,
                    format::WireSink& sink);
u32 range_wire_into(const stream::ChunkedStream& s, u64 lo, u64 hi,
                    format::WireSink& sink);

RangeWireInfo inspect_range_wire(std::span<const u8> bytes);

/// Client side: parse, validate and decode, returning exactly the [lo, hi)
/// symbols. The u8/u16 variant must match the wire's sym_width. `backend`
/// selects the range-decode kernel (clamped to what this build/CPU has):
/// the default is the best available; tests and benches pass
/// simd::Backend::Scalar to pin the reference path and prove the vector
/// body bit-exact against it.
std::vector<u8> decode_range_wire(std::span<const u8> bytes,
                                  ThreadPool* pool = nullptr,
                                  simd::Backend backend = simd::pick_backend());
std::vector<u16> decode_range_wire_u16(std::span<const u8> bytes,
                                       ThreadPool* pool = nullptr,
                                       simd::Backend backend = simd::pick_backend());

}  // namespace recoil::serve
