#pragma once
// Byte-range serving: ship only the split points and bitstream units that
// cover a requested symbol range [lo, hi), so a client fetching a slice of a
// large asset pays wire bytes proportional to the slice, not the asset.
//
// The slice is decodable by the unmodified 3-phase split decoder because
//  * symbol indexing stays ABSOLUTE (the decoder derives lane ids from
//    position % lanes, which rebasing would break), and
//  * unit offsets are rebased to the slice: units append in symbol order
//    (see rans/interleaved.hpp), so every unit the covering splits pop lies
//    in [splits[first-2].offset + 1, splits[last].offset + 1) — bounds
//    computable from metadata alone.
// The shipped metadata is the covering splits plus the preceding boundary
// split (the decoder's phase-2/3 limits), re-encoded with the standard §4.3
// codec against slice-local expectations.

#include <span>
#include <vector>

#include "format/container.hpp"
#include "util/thread_pool.hpp"

namespace recoil::serve {

/// Parsed range-wire header, for stats and tests.
struct RangeWireInfo {
    u8 sym_width = 0;
    u32 prob_bits = 0;
    u64 lo = 0, hi = 0;              ///< requested symbol range
    u64 cover_lo = 0, cover_hi = 0;  ///< symbols the shipped splits produce
    u64 unit_count = 0;              ///< shipped bitstream units
    u32 first_split = 0;             ///< first covering split in the master
    u32 splits_served = 0;           ///< covering split count
    bool has_prev = false;           ///< boundary split entry shipped
    bool includes_final = false;     ///< slice reaches the bitstream end
};

/// Build the wire for symbols [lo, hi) of a static-model asset. Raises
/// recoil::Error for indexed-model files or an out-of-range request.
std::vector<u8> build_range_wire(const format::RecoilFile& f, u64 lo, u64 hi);

RangeWireInfo inspect_range_wire(std::span<const u8> bytes);

/// Client side: parse, validate and decode, returning exactly the [lo, hi)
/// symbols. The u8/u16 variant must match the wire's sym_width.
std::vector<u8> decode_range_wire(std::span<const u8> bytes,
                                  ThreadPool* pool = nullptr);
std::vector<u16> decode_range_wire_u16(std::span<const u8> bytes,
                                       ThreadPool* pool = nullptr);

}  // namespace recoil::serve
