#pragma once
// Scale-out front door: a ShardedServer consistent-hashes asset names onto
// N fully independent ContentServer shards — each with its own
// MetadataCache, ResourceGovernor and DiskStore partition
// (`store_dir/shard-<i>`) — so independent assets never contend on one
// cache mutex, one flight map or one governor pass. Two coordination
// mechanisms connect the shards:
//
//   * Budget coordination. The global byte budget is split across shards
//     and periodically REBALANCED proportional to each shard's observed
//     byte-hit-rate delta (cache hit_bytes since the last pass), with a
//     configurable floor so a momentarily-cold shard is never starved to
//     zero. Rebalancing retargets each shard's ResourceGovernor
//     (set_budget) and immediately enforces on shrunk shards.
//
//   * Peer fetch. A shard that misses an asset everywhere locally (memory
//     AND its own partition) pulls the ENCODED master from the owning
//     peer's DiskStore as a zero-copy mmap view (AssetStore::adopt)
//     instead of re-encoding — the encode-once premise held across a
//     resharding: reopen a 1-shard corpus as N shards and every shard
//     serves every asset without one re-encode. Counted in Totals.
//
// The router mirrors ContentServer's transport surface (serve /
// serve_stream / serve_frame), intercepting "!metrics"/"!metrics.json"
// introspection to answer from its OWN registry — which carries the
// router-level shard_* families plus per-shard labeled series
// (`shard="i"`) polled from every shard's stats.

#include <atomic>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/ints.hpp"
#include "util/thread_annotations.hpp"

namespace recoil::serve {

struct ShardedOptions {
    /// Number of independent ContentServer shards (>= 1).
    u32 shards = 2;
    /// Ring points per shard. More vnodes tighten the key-distribution
    /// bound (test-pinned: max/min shard load stays under 1.35 at 128
    /// vnodes) at O(shards * vnodes * 16 bytes) of ring.
    u32 vnodes = 128;
    /// Global memory budget split across the shard governors. 0 disables
    /// governance everywhere (ServerOptions::mem_budget_bytes on the
    /// per-shard options is ignored — the router owns the budget).
    u64 total_budget_bytes = 0;
    /// Routed requests between automatic rebalance passes; 0 = only
    /// explicit rebalance() calls.
    u64 rebalance_every = 0;
    /// Fraction of the even share every shard keeps regardless of
    /// hit-rate: rebalance moves only the (1 - floor) remainder, so a cold
    /// shard can always warm back up.
    double budget_floor = 0.25;
    /// Pull missing assets from peer partitions (zero-copy) instead of
    /// failing unknown_asset when a peer owns the master.
    bool peer_fetch = true;
    /// Root of the partitioned disk corpus: shard i opens (and creates)
    /// `store_dir/shard-<i>`. Empty = memory-only shards (no peer fetch
    /// possible — there is no master to pull).
    std::filesystem::path store_dir;
    /// Per-shard server options. mem_budget_bytes is overridden by the
    /// router's budget split.
    ServerOptions server;
};

class ShardedServer {
public:
    explicit ShardedServer(ShardedOptions opt);

    u32 shard_count() const noexcept {
        return static_cast<u32>(shards_.size());
    }
    /// Consistent-hash ring lookup: the shard owning `asset`. Stable under
    /// a fixed (shards, vnodes) pair — reopening the same corpus routes
    /// every name identically.
    u32 shard_of(std::string_view asset) const noexcept;
    ContentServer& shard(u32 i) noexcept { return *shards_[i].server; }
    /// Router-level registry: shard_* totals plus per-shard labeled series
    /// (`shard="i"`). Distinct from each shard's own registry.
    obs::MetricsRegistry& metrics() noexcept { return metrics_; }

    /// Routed serving — ContentServer's surface, one hash away.
    /// Introspection names ("!...") are answered from the ROUTER registry.
    ServeResult serve(const ServeRequest& req) noexcept;
    ServeStream serve_stream(const ServeRequest& req,
                             StreamOptions opt = {}) noexcept;
    std::vector<u8> serve_frame(std::span<const u8> request_frame) noexcept;

    /// Encode-once into the owning shard (and its partition, when backed).
    std::shared_ptr<const Asset> encode_bytes(std::string name,
                                              std::span<const u8> data,
                                              u32 max_splits,
                                              u32 prob_bits = 11);

    /// One budget-coordination pass: weight each shard by its cache
    /// hit-bytes delta since the previous pass and move the above-floor
    /// budget remainder toward the hotter shards. Shards whose budget
    /// shrank are enforced immediately. No-op when total_budget_bytes is 0
    /// or there is a single shard.
    void rebalance() RECOIL_EXCLUDES(rebalance_mu_);
    /// Current per-shard budgets (index = shard).
    std::vector<u64> shard_budgets() const RECOIL_EXCLUDES(rebalance_mu_);

    struct Totals {
        u64 routed = 0;            ///< requests dispatched through the ring
        u64 peer_fetches = 0;      ///< masters adopted from a peer partition
        u64 peer_fetch_bytes = 0;  ///< container bytes those fetches mapped
        /// Local misses whose peer scan also came up empty (the request
        /// then fails unknown_asset on its home shard).
        u64 peer_fetch_misses = 0;
        u64 rebalances = 0;
        u64 budget_moved_bytes = 0;  ///< total budget displaced by passes
    };
    Totals totals() const noexcept;
    /// Sum of every shard's ContentServer totals — the fleet view.
    ContentServer::Totals fleet_totals() const noexcept;

private:
    struct Shard {
        std::unique_ptr<ContentServer> server;
    };

    /// Make `name` servable on its home shard before dispatch: resolve
    /// locally, then scan peer partitions and adopt (peer fetch).
    void ensure_local(u32 home, const std::string& name) noexcept;
    void note_routed() noexcept;
    void init_metrics();

    ShardedOptions opt_;
    std::vector<Shard> shards_;
    /// Sorted (hash point, shard) ring; immutable after construction.
    std::vector<std::pair<u64, u32>> ring_;
    obs::MetricsRegistry metrics_;
    mutable util::Mutex rebalance_mu_;
    std::vector<u64> budgets_ RECOIL_GUARDED_BY(rebalance_mu_);
    /// Per-shard cache hit_bytes at the previous pass (delta baseline).
    std::vector<u64> last_hit_bytes_ RECOIL_GUARDED_BY(rebalance_mu_);
    std::atomic<u64> routed_{0};
    std::atomic<u64> peer_fetches_{0};
    std::atomic<u64> peer_fetch_bytes_{0};
    std::atomic<u64> peer_fetch_misses_{0};
    std::atomic<u64> rebalances_{0};
    std::atomic<u64> budget_moved_{0};
};

}  // namespace recoil::serve
