#pragma once
// Front door of the serve subsystem: ContentServer resolves requests against
// the AssetStore, adapts split metadata per client (§3.3) through the LRU
// wire cache, and serves symbol sub-ranges via the range wire. Failures are
// typed (protocol.hpp ErrorCode), never thrown. Concurrent cold requests for
// the same response are single-flighted: one combine runs, everyone shares
// the resulting wire. serve_frame() is the transport boundary — opaque
// request frame in, response frame out — so a network frontend needs no
// knowledge of assets or caching.
//
// serve_stream() is the pull-based side of the same pipeline: the response
// is produced segment at a time through the asset's WireSink producer and
// framed as v2 streamed messages, so peak frontend memory is bounded by the
// frame size and the flow-control window, not by the wire. The materializing
// serve() path is a thin adapter over the same producers (Asset::combine /
// Asset::range materialize through a VectorSink) — one producer
// implementation, two framings.

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/asset_store.hpp"
#include "serve/governor.hpp"
#include "serve/metadata_cache.hpp"
#include "serve/protocol.hpp"
#include "util/thread_annotations.hpp"

namespace recoil::serve {

struct ServerOptions {
    u64 cache_capacity_bytes = u64{256} << 20;
    /// Cache decision-making: eviction (lru | slru) and admission
    /// (admit-all | tinylfu) policies. Defaults reproduce the historical
    /// LRU cache bit-exactly.
    CachePolicyConfig cache_policy;
    /// Global memory budget over cache bytes + resident store bytes; when
    /// exceeded, the resource governor unloads cold demand-loadable assets
    /// (and shrinks the cache if that is not enough). 0 disables.
    u64 mem_budget_bytes = 0;
    bool cache_ranges = true;  ///< range responses join the wire cache too
    /// Observability/test hook: invoked (if set) with the cache key at the
    /// start of every miss combine (materialized or streamed), before the
    /// wire is built.
    std::function<void(const std::string&)> combine_hook;
    /// Hot-path telemetry: per-phase latency histograms, request traces and
    /// the slow-request log. Off, those record nothing (the overhead knob
    /// bench_serve measures against); the metrics REGISTRY itself stays live
    /// either way — counters/gauges are polled callbacks over stats the
    /// server maintains regardless, so snapshots keep working.
    bool telemetry = true;
    /// Take the TIMED telemetry path (trace spans, per-phase histograms,
    /// slow-log consideration) for 1 of every N requests. 1 (default) =
    /// full fidelity: every request is traced, at an absolute cost of a few
    /// clock reads (~150 ns) per request — negligible unless warm hits are
    /// themselves sub-microsecond. For that in-process regime set 32+: the
    /// amortized cost drops under the 2% warm-hit budget bench_serve
    /// enforces, histograms/slow-log then describe the sampled subset, and
    /// every counter/gauge stays exact (they are never sampled).
    u32 sample_every = 1;
    /// Retention of the slow-request log: N slowest + N most recent failed.
    std::size_t slow_log_slots = 32;
};

/// Default ceiling for frames carrying the metadata-dense structural prefix
/// when adaptive frame sizing is on (StreamOptions::adaptive_frames).
inline constexpr u64 kDefaultPrefixFrameBytes = u64{8} << 10;

/// Per-stream knobs of serve_stream(), negotiated per connection.
struct StreamOptions {
    /// Body-frame payload ceiling; frames over it are never produced
    /// (encode-side frame_too_large enforcement happens below this).
    u64 max_frame_bytes = kDefaultMaxFrameBytes;
    /// Flow-control window: at most this many wire bytes sit admitted-but-
    /// unconsumed at once; past it the producer task yields until the
    /// consumer drains — bounded in-flight bytes regardless of asset size.
    /// Clamped up to max_frame_bytes.
    u64 window_bytes = u64{4} << 20;
    /// When false the stream never assembles a cache entry: peak producer
    /// memory stays O(max_frame), the regime for responses too large to be
    /// worth caching. Such streams do not coalesce (nothing shareable is
    /// assembled) and do not consult the cache.
    bool use_cache = true;
    /// Adaptive frame sizing: while a cold producer-backed stream is still
    /// emitting the metadata-dense structural prefix (header, model, split
    /// plan — owned pieces), frames are capped at prefix_frame_bytes so a
    /// client can start planning its decode early; the frame that would
    /// first carry payload-view bytes flushes the prefix, and payload
    /// frames run at max_frame_bytes. Cache-hit and coalesced-follower
    /// replays are unaffected (their wire already exists in full; uniform
    /// max-size frames move it fastest). Reassembly is framing-agnostic, so
    /// the wire stays bit-exact either way.
    bool adaptive_frames = true;
    /// Prefix-frame payload ceiling; clamped down to max_frame_bytes.
    u64 prefix_frame_bytes = kDefaultPrefixFrameBytes;
    /// Resume an interrupted stream: re-serve the same deterministic wire
    /// but skip the first resume_offset body-payload bytes, hashing the
    /// skipped prefix into the running digest so the FIN's whole-wire
    /// checksum still covers prefix + tail (a reconnecting client that
    /// kept its reassembler validates the reunited wire bit-exactly).
    /// Body sequencing restarts at 0 for the tail. Transports populate
    /// this from ServeRequest::resume_offset.
    u64 resume_offset = 0;
};

namespace detail {
struct StreamState;
struct Flight;
}  // namespace detail

/// A streamed response: pull protocol frames one at a time (header frame,
/// body frames, FIN frame, then nullopt). next_frame() may block on the
/// producer (or, for a coalesced follower, on the leader's progress) — the
/// consumer's pull pace IS the backpressure. The stream pins its asset (and
/// therefore every mmapped buffer its segments view), so unload()/evict()
/// mid-stream never invalidates in-flight segments. Must not outlive the
/// ContentServer that created it.
class ServeStream {
public:
    ~ServeStream();
    ServeStream(ServeStream&&) noexcept;
    ServeStream& operator=(ServeStream&&) noexcept;
    ServeStream(const ServeStream&) = delete;
    ServeStream& operator=(const ServeStream&) = delete;

    /// Status + stats known at stream start; `wire` is always null. For a
    /// cold stream, splits/wire_bytes arrive in the FIN frame instead.
    const ServeResult& head() const noexcept;
    /// The next protocol frame, or nullopt once the stream is complete. An
    /// error response is a single header frame.
    std::optional<std::vector<u8>> next_frame();
    /// Non-blocking next_frame for event-loop transports (the epoll daemon
    /// pulls a frame only when its socket is writable): a frame when one can
    /// be built without waiting on the producer/leader, else nullopt with
    /// `would_block` distinguishing "not ready yet" (true) from "stream
    /// complete" (false). Frame boundaries may differ from a fully blocking
    /// pull (pace decides where partial frames flush); the reassembled wire
    /// is identical either way.
    std::optional<std::vector<u8>> try_next_frame(bool& would_block);
    bool done() const noexcept;
    u64 frames_emitted() const noexcept;
    /// High-water mark of owned bytes the producer pipeline held at once
    /// (staged structural sections + the frame under construction). Payload
    /// views pinning existing asset storage cost no new memory and are
    /// excluded; this is the number the bench compares against wire size.
    u64 peak_owned_bytes() const noexcept;
    /// High-water mark of produced-but-unconsumed wire bytes (the flow
    /// control window's measured utilization; <= window + one frame).
    u64 peak_staged_bytes() const noexcept;

private:
    friend class ContentServer;
    explicit ServeStream(std::shared_ptr<detail::StreamState> st);
    std::optional<std::vector<u8>> frame_impl(bool allow_block,
                                              bool& would_block);
    std::shared_ptr<detail::StreamState> st_;
};

namespace detail {

/// In-flight combine shared by coalesced requests for one response key.
/// Failures are published as a typed (code, detail) pair, NOT a shared
/// exception_ptr: rethrowing one exception object from many followers
/// lets one thread's catch-scope destruction race another's what() read
/// (caught by TSan). Each follower throws its own ProtocolError built
/// from the immutable-after-done fields.
///
/// A STREAMING leader additionally publishes the wire incrementally:
/// bytes [0, committed) of *assembling are stable and readable under mu,
/// so followers replay already-emitted segments while the leader is still
/// producing, instead of parking until the end. On completion `assembling`
/// becomes the shared wire without copying (it never mutates again).
struct Flight {
    /// The streaming mode (and with it the assembly buffer) is fixed at
    /// construction, BEFORE the flight is published through the flights_
    /// map — followers read `streaming` under mu, and a post-publication
    /// write would be exactly the discipline hole the analysis exists to
    /// reject.
    explicit Flight(bool is_streaming)
        : streaming(is_streaming),
          assembling(is_streaming ? std::make_shared<std::vector<u8>>()
                                  : nullptr) {}

    util::Mutex mu;
    util::CondVar cv;
    bool done RECOIL_GUARDED_BY(mu) = false;
    ServedWire wire RECOIL_GUARDED_BY(mu);
    bool failed RECOIL_GUARDED_BY(mu) = false;
    ErrorCode error_code RECOIL_GUARDED_BY(mu) = ErrorCode::internal;
    std::string error_detail RECOIL_GUARDED_BY(mu);
    // Streaming-leader incremental assembly. The pointer is immutable; the
    // pointed-to vector grows only under mu (bytes [0, committed) are
    // stable and readable under mu).
    const bool streaming;
    const std::shared_ptr<std::vector<u8>> assembling;
    u64 committed RECOIL_GUARDED_BY(mu) = 0;
};

}  // namespace detail

class ContentServer {
public:
    explicit ContentServer(ServerOptions opt = {});
    /// Blocks until every outstanding stream producer task has finished —
    /// including background drains from abandoned leader streams — so a
    /// producer task on the executor can never touch a dead server.
    /// ServeStream objects themselves must still not be *used* past this
    /// point.
    ~ContentServer() RECOIL_EXCLUDES(streams_mu_);

    AssetStore& store() noexcept { return store_; }
    MetadataCache& cache() noexcept { return cache_; }
    /// The resource governor over this server's store + cache (disabled —
    /// never unloading — unless ServerOptions::mem_budget_bytes is set).
    /// pin()/unpin() protect per-class hot assets from pressure unloads.
    ResourceGovernor& governor() noexcept { return governor_; }
    /// Unified telemetry directory: one snapshot() covers all five serve
    /// subsystems (server totals, cache, governor, stores, sessions) plus
    /// the per-phase latency histograms. Always live — see
    /// ServerOptions::telemetry for what the knob does and does not gate.
    obs::MetricsRegistry& metrics() noexcept { return metrics_; }
    /// The N slowest and N most recent failed requests, as structured trace
    /// events (populated only with ServerOptions::telemetry on).
    const obs::SlowRequestLog& slow_log() const noexcept { return slow_log_; }

    /// Serve one request. Never throws: failures come back as a typed
    /// ErrorCode, so scheduler workers cannot tear down their pool. Assets
    /// not resident in memory are demand-loaded from the attached backing
    /// store (AssetStore::resolve) as zero-copy views of the mapped master.
    ServeResult serve(const ServeRequest& req) noexcept;

    /// Serve one request as a pull-based stream of v2 frames. Requires the
    /// request to accept the streamed framing (kAcceptStreamed), on top of
    /// the payload form it would need for serve(). Never throws; failures
    /// are a single typed header frame. Cold cacheable streams single-flight
    /// with concurrent serve()/serve_stream() calls for the same key:
    /// followers replay the leader's already-emitted bytes.
    ServeStream serve_stream(const ServeRequest& req,
                             StreamOptions opt = {}) noexcept;

    /// Transport entry: parse a request frame, serve it, return the encoded
    /// response frame. Malformed frames become typed error responses.
    std::vector<u8> serve_frame(std::span<const u8> request_frame) noexcept;

    /// Remove an asset (memory AND backing store) and every cached response
    /// derived from it. A combine already in flight for the evicted asset
    /// still completes for its waiting requests, but its wire is gated out
    /// of the cache (AssetStore::is_current), so eviction is never undone by
    /// a straggling flight. In-flight streams keep serving: they pin the
    /// asset's buffers.
    bool evict_asset(const std::string& name);

    /// Drop an asset from memory but keep it in the backing store: the next
    /// request demand-loads it under the same generation, so its cached
    /// responses stay valid. Memory-pressure relief, not eviction.
    bool unload_asset(const std::string& name) { return store_.unload(name); }

    /// Requests currently parked on another request's in-flight combine.
    u64 coalescing_waiters() const noexcept {
        return waiters_.load(std::memory_order_relaxed);
    }

    struct Totals {
        u64 requests = 0;
        u64 failures = 0;
        u64 cache_hits = 0;
        u64 range_requests = 0;
        u64 streamed_requests = 0;  ///< served through serve_stream
        u64 wire_bytes = 0;
        /// Requests served by waiting on an in-flight combine (single-flight
        /// coalescing): N concurrent cold misses run N-1 fewer combines.
        u64 coalesced_requests = 0;
        /// Wire bytes delivered from shared buffers (cache hits + coalesced)
        /// rather than freshly combined — work the protocol design saved.
        u64 bytes_saved = 0;
        /// Governance passes that threw (swallowed so the serve path
        /// lives). Nonzero means pressure relief is failing — investigate.
        u64 governance_failures = 0;
    };
    Totals totals() const noexcept;

private:
    friend struct detail::StreamState;
    friend class ServeStream;  // FIN-time totals accounting
    using Flight = detail::Flight;

    /// A validated request, ready to produce: shared by the materializing
    /// and streaming paths so negotiation/validation cannot diverge.
    struct Prepared {
        std::shared_ptr<const Asset> asset;
        std::string key;       ///< response cache key
        u32 parallelism = 0;   ///< clamped; 0 for range requests
        bool use_cache = true;
        PayloadKind payload = PayloadKind::none;
        std::optional<std::pair<u64, u64>> range;
    };
    /// Resolve + validate + negotiate. Throws ProtocolError (typed) on any
    /// failure; counts the request in range_requests_ when applicable.
    Prepared prepare(const ServeRequest& req);
    /// Run the prepared production into `sink`; returns splits carried.
    u32 produce(const Prepared& p, format::WireSink& sink);

    ServeResult serve_impl(const ServeRequest& req, obs::TraceContext& trace);
    /// Cache lookup + single-flight combine for one response key. `asset`
    /// is the asset the key was derived from: after the combine, the wire
    /// enters the cache only if that asset is still current (the
    /// evict-during-flight stale-put gate). `trace` may be null (telemetry
    /// off): spans are then skipped but behavior is identical.
    ServedWire serve_shared(const Prepared& p, ServeStats& stats,
                            obs::TraceContext* trace);
    /// Insert-or-join the flight for `flight_key`. True when this caller
    /// is the leader (it must eventually retire the flight).
    bool acquire_flight(const std::string& flight_key,
                        std::shared_ptr<Flight>& flight, bool streaming)
        RECOIL_EXCLUDES(flights_mu_);
    /// Remove the flight from the map, publish its outcome (wire when
    /// non-null, else the typed failure) and wake every parked follower.
    /// Every leader exit path must end here, or followers block forever on
    /// a stranded flight.
    void retire_flight(const std::string& flight_key,
                       const std::shared_ptr<Flight>& flight,
                       const ServedWire* wire, ErrorCode error_code,
                       std::string error_detail) RECOIL_EXCLUDES(flights_mu_);
    /// Run a governance pass if the global budget is exceeded. Called at
    /// the end of every serve and stream production — the moments usage
    /// can have grown (demand-load, cache put).
    void maybe_govern() noexcept;
    /// Count a swallowed governance error AND log it as a structured slow-
    /// log failure event with the typed code attached (op "governance").
    void note_governance_failure(u16 code, std::string code_name,
                                 std::string detail) noexcept;
    /// Register the serve_* callback metrics, bind the subsystems, and
    /// (telemetry on) create the per-phase histograms.
    void init_telemetry();
    /// True when the request holding requests_ tick `tick` should take the
    /// timed path (active trace + histograms): telemetry on, and the
    /// 1-in-sample_every toss hits. Piggybacks on the totals counter the
    /// serve path bumps anyway — sampling adds zero extra atomics — and
    /// power-of-two rates (the sane choices) go through a divide-free mask.
    bool sample_tick(u64 tick) const noexcept {
        if (!opt_.telemetry) return false;
        if (opt_.sample_every <= 1) return true;
        if (sample_mask_ != 0) return (tick & sample_mask_) == 0;
        return tick % opt_.sample_every == 0;
    }
    /// Record a finished serve() into the slow-request log when it
    /// qualifies (slow enough, or failed).
    void finish_trace(const obs::TraceContext& trace, const ServeResult& res);
    /// Record a finished stream (FIN emitted or error header) likewise.
    void record_stream_trace(detail::StreamState& st);
    /// Answer a "!metrics"/"!metrics.json" introspection request against
    /// the registry (requires kAcceptMetrics; typed errors otherwise).
    ServeResult serve_introspection(const ServeRequest& req) noexcept;

    ServerOptions opt_;
    AssetStore store_;
    MetadataCache cache_;
    ResourceGovernor governor_;
    util::Mutex flights_mu_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights_
        RECOIL_GUARDED_BY(flights_mu_);
    /// Outstanding serve_stream producer tasks (on the process-wide
    /// executor — no dedicated threads); the destructor waits for zero.
    util::Mutex streams_mu_;
    util::CondVar streams_cv_;
    u64 active_stream_producers_ RECOIL_GUARDED_BY(streams_mu_) = 0;
    /// The totals block below is all relaxed atomics — the documented
    /// lock-free escape for the serve hot path (totals()/sampling/metrics
    /// callbacks read them without any lock).
    std::atomic<u64> waiters_{0};
    std::atomic<u64> requests_{0};
    std::atomic<u64> failures_{0};
    std::atomic<u64> cache_hits_{0};
    std::atomic<u64> range_requests_{0};
    std::atomic<u64> streamed_requests_{0};
    std::atomic<u64> wire_bytes_{0};
    std::atomic<u64> coalesced_{0};
    std::atomic<u64> bytes_saved_{0};
    std::atomic<u64> governance_failures_{0};
    u64 sample_mask_ = 0;  ///< sample_every-1 when a power of two, else 0
    obs::MetricsRegistry metrics_;
    obs::SlowRequestLog slow_log_;
    /// Per-phase histograms, created by init_telemetry() when
    /// ServerOptions::telemetry is on; null otherwise, and every recording
    /// site checks — the whole hot-path cost of the off state is a few
    /// null tests.
    obs::Histogram* h_request_ = nullptr;  ///< serve_request_seconds
    obs::Histogram* h_prepare_ = nullptr;  ///< serve_prepare_seconds
    obs::Histogram* h_decode_ = nullptr;   ///< serve_decode_seconds
    obs::Histogram* h_hit_ = nullptr;      ///< serve_hit_seconds
    obs::Histogram* h_combine_ = nullptr;  ///< serve_combine_seconds
    obs::Histogram* h_frame_ = nullptr;    ///< stream_frame_seconds
    obs::Histogram* h_govern_ = nullptr;   ///< governor_pass_seconds
};

/// Aggregate view of a set of results, for benches and logs.
struct BatchStats {
    u64 requests = 0;
    u64 failures = 0;
    u64 cache_hits = 0;
    u64 coalesced = 0;
    u64 wire_bytes = 0;
    double max_latency_seconds = 0;
    double sum_latency_seconds = 0;
};
BatchStats summarize(std::span<const ServeResult> results);

}  // namespace recoil::serve
