#pragma once
// Front door of the serve subsystem: ContentServer resolves requests against
// the AssetStore, adapts split metadata per client (§3.3) through the LRU
// wire cache, and serves symbol sub-ranges via the range wire.
// RequestScheduler batches concurrent client requests onto the shared
// ThreadPool so a mixed fleet saturates the machine without per-request
// threads.

#include <atomic>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "serve/asset_store.hpp"
#include "serve/metadata_cache.hpp"
#include "serve/range_wire.hpp"
#include "util/thread_pool.hpp"

namespace recoil::serve {

struct ServeRequest {
    std::string asset;
    /// Client's parallel decode capacity (warps/threads); clamped to the
    /// asset's encoded split budget. Ignored for range requests, which ship
    /// the master's fine-grained covering splits.
    u32 parallelism = 1;
    /// Symbol range [lo, hi) to serve instead of the whole asset.
    std::optional<std::pair<u64, u64>> range;
};

struct ServeStats {
    u64 wire_bytes = 0;
    /// Parallel work items the response actually carries (splits in the
    /// served metadata, or covering splits for a range).
    u32 splits_served = 0;
    bool cache_hit = false;
    double combine_seconds = 0;  ///< metadata adaptation + serialization (miss)
    double total_seconds = 0;
};

struct ServeResult {
    bool ok = false;
    std::string error;
    WireBytes wire;
    ServeStats stats;
};

struct ServerOptions {
    u64 cache_capacity_bytes = u64{256} << 20;
    bool cache_ranges = true;  ///< range responses join the LRU cache too
};

class ContentServer {
public:
    explicit ContentServer(ServerOptions opt = {})
        : opt_(opt), cache_(opt.cache_capacity_bytes) {}

    AssetStore& store() noexcept { return store_; }
    MetadataCache& cache() noexcept { return cache_; }

    /// Serve one request. Never throws: failures come back as !ok with the
    /// error message, so scheduler workers cannot tear down the pool.
    ServeResult serve(const ServeRequest& req) noexcept;

    /// Remove an asset and every cached response derived from it.
    bool evict_asset(const std::string& name);

    struct Totals {
        u64 requests = 0;
        u64 failures = 0;
        u64 cache_hits = 0;
        u64 range_requests = 0;
        u64 wire_bytes = 0;
    };
    Totals totals() const noexcept;

private:
    ServeResult serve_impl(const ServeRequest& req);

    ServerOptions opt_;
    AssetStore store_;
    MetadataCache cache_;
    std::atomic<u64> requests_{0};
    std::atomic<u64> failures_{0};
    std::atomic<u64> cache_hits_{0};
    std::atomic<u64> range_requests_{0};
    std::atomic<u64> wire_bytes_{0};
};

/// Collects requests and runs one batch on the pool; results come back in
/// submission order. flush() is a barrier, as the underlying pool's
/// parallel_for is. submit() is thread-safe.
class RequestScheduler {
public:
    explicit RequestScheduler(ContentServer& server, ThreadPool* pool = nullptr)
        : server_(server), pool_(pool != nullptr ? pool : &global_pool()) {}

    /// Queue a request; returns its index in the next flush()'s results.
    u64 submit(ServeRequest req);
    std::size_t pending() const;
    std::vector<ServeResult> flush();

private:
    ContentServer& server_;
    ThreadPool* pool_;
    mutable std::mutex mu_;
    std::vector<ServeRequest> pending_;
};

/// Aggregate view of one batch, for benches and logs.
struct BatchStats {
    u64 requests = 0;
    u64 failures = 0;
    u64 cache_hits = 0;
    u64 wire_bytes = 0;
    double max_latency_seconds = 0;
    double sum_latency_seconds = 0;
};
BatchStats summarize(std::span<const ServeResult> results);

}  // namespace recoil::serve
