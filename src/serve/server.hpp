#pragma once
// Front door of the serve subsystem: ContentServer resolves requests against
// the AssetStore, adapts split metadata per client (§3.3) through the LRU
// wire cache, and serves symbol sub-ranges via the range wire. Failures are
// typed (protocol.hpp ErrorCode), never thrown. Concurrent cold requests for
// the same response are single-flighted: one combine runs, everyone shares
// the resulting wire. serve_frame() is the transport boundary — opaque
// request frame in, response frame out — so a network frontend needs no
// knowledge of assets or caching.

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/asset_store.hpp"
#include "serve/metadata_cache.hpp"
#include "serve/protocol.hpp"

namespace recoil::serve {

struct ServerOptions {
    u64 cache_capacity_bytes = u64{256} << 20;
    bool cache_ranges = true;  ///< range responses join the LRU cache too
    /// Observability/test hook: invoked (if set) with the cache key at the
    /// start of every miss combine, before the wire is built.
    std::function<void(const std::string&)> combine_hook;
};

class ContentServer {
public:
    explicit ContentServer(ServerOptions opt = {})
        : opt_(std::move(opt)), cache_(opt_.cache_capacity_bytes) {}

    AssetStore& store() noexcept { return store_; }
    MetadataCache& cache() noexcept { return cache_; }

    /// Serve one request. Never throws: failures come back as a typed
    /// ErrorCode, so scheduler workers cannot tear down their pool. Assets
    /// not resident in memory are demand-loaded from the attached backing
    /// store (AssetStore::resolve) as zero-copy views of the mapped master.
    ServeResult serve(const ServeRequest& req) noexcept;

    /// Transport entry: parse a request frame, serve it, return the encoded
    /// response frame. Malformed frames become typed error responses.
    std::vector<u8> serve_frame(std::span<const u8> request_frame) noexcept;

    /// Remove an asset (memory AND backing store) and every cached response
    /// derived from it. A combine already in flight for the evicted asset
    /// still completes for its waiting requests, but its wire is gated out
    /// of the cache (AssetStore::is_current), so eviction is never undone by
    /// a straggling flight.
    bool evict_asset(const std::string& name);

    /// Drop an asset from memory but keep it in the backing store: the next
    /// request demand-loads it under the same generation, so its cached
    /// responses stay valid. Memory-pressure relief, not eviction.
    bool unload_asset(const std::string& name) { return store_.unload(name); }

    /// Requests currently parked on another request's in-flight combine.
    u64 coalescing_waiters() const noexcept {
        return waiters_.load(std::memory_order_relaxed);
    }

    struct Totals {
        u64 requests = 0;
        u64 failures = 0;
        u64 cache_hits = 0;
        u64 range_requests = 0;
        u64 wire_bytes = 0;
        /// Requests served by waiting on an in-flight combine (single-flight
        /// coalescing): N concurrent cold misses run N-1 fewer combines.
        u64 coalesced_requests = 0;
        /// Wire bytes delivered from shared buffers (cache hits + coalesced)
        /// rather than freshly combined — work the protocol design saved.
        u64 bytes_saved = 0;
    };
    Totals totals() const noexcept;

private:
    /// In-flight combine shared by coalesced requests for one response key.
    /// Failures are published as a typed (code, detail) pair, NOT a shared
    /// exception_ptr: rethrowing one exception object from many followers
    /// lets one thread's catch-scope destruction race another's what() read
    /// (caught by TSan). Each follower throws its own ProtocolError built
    /// from the immutable-after-done fields.
    struct Flight {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        ServedWire wire;
        bool failed = false;
        ErrorCode error_code = ErrorCode::internal;
        std::string error_detail;
    };

    ServeResult serve_impl(const ServeRequest& req);
    /// Cache lookup + single-flight combine for one response key. `asset`
    /// is the asset the key was derived from: after the combine, the wire
    /// enters the cache only if that asset is still current (the
    /// evict-during-flight stale-put gate).
    ServedWire serve_shared(const std::string& key, u32 parallelism,
                            bool use_cache, ServeStats& stats, const Asset& asset,
                            const std::function<ServedWire()>& build);
    /// Remove the flight from the map, publish its outcome (wire when
    /// non-null, else the typed failure) and wake every parked follower.
    /// Every leader exit path must end here, or followers block forever on
    /// a stranded flight.
    void retire_flight(const std::string& flight_key,
                       const std::shared_ptr<Flight>& flight,
                       const ServedWire* wire, ErrorCode error_code,
                       std::string error_detail);

    ServerOptions opt_;
    AssetStore store_;
    MetadataCache cache_;
    std::mutex flights_mu_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
    std::atomic<u64> waiters_{0};
    std::atomic<u64> requests_{0};
    std::atomic<u64> failures_{0};
    std::atomic<u64> cache_hits_{0};
    std::atomic<u64> range_requests_{0};
    std::atomic<u64> wire_bytes_{0};
    std::atomic<u64> coalesced_{0};
    std::atomic<u64> bytes_saved_{0};
};

/// Aggregate view of a set of results, for benches and logs.
struct BatchStats {
    u64 requests = 0;
    u64 failures = 0;
    u64 cache_hits = 0;
    u64 coalesced = 0;
    u64 wire_bytes = 0;
    double max_latency_seconds = 0;
    double sum_latency_seconds = 0;
};
BatchStats summarize(std::span<const ServeResult> results);

}  // namespace recoil::serve
