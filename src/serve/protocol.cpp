#include "serve/protocol.hpp"

#include <cstring>

#include "format/wire_io.hpp"

namespace recoil::serve {

using namespace format::wire;

namespace {

constexpr char kRequestMagic[4] = {'R', 'C', 'R', 'Q'};
constexpr char kResponseMagic[4] = {'R', 'C', 'R', 'S'};

constexpr u8 kRequestFlagHasRange = 1;
constexpr u8 kRequestFlagHasResume = 2;
constexpr u8 kResponseFlagCacheHit = 1;
constexpr u8 kResponseFlagCoalesced = 2;

/// Structural bytes of a v2 body frame besides its payload (magic, version,
/// type, reserved, seq, length, checksum) — the slack allowed on top of the
/// negotiated payload ceiling when judging a whole frame's size.
constexpr u64 kStreamBodyOverhead = 4 + 1 + 1 + 1 + 4 + 8 + 8;

[[noreturn]] void fail(ErrorCode code, const std::string& what) {
    throw ProtocolError(code, what);
}

/// Frame-level integrity: length floor + trailing FNV checksum, classified
/// into typed codes (unlike wire_io's checked_payload, which reports strings
/// only). Returns the payload the checksum covers.
std::span<const u8> verify_frame(std::span<const u8> frame, const char* ctx) {
    if (frame.size() < 16)
        fail(ErrorCode::malformed_frame, std::string(ctx) + ": frame too short");
    u64 stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= u64{frame[frame.size() - 8 + i]} << (8 * i);
    auto payload = frame.first(frame.size() - 8);
    if (format::fnv1a(payload) != stored)
        fail(ErrorCode::checksum_mismatch, std::string(ctx) + ": checksum mismatch");
    return payload;
}

/// Wrap the structural parse so cursor bounds violations (plain recoil::Error
/// from wire_io) surface as typed malformed_frame errors.
template <typename Fn>
auto parse_frame(std::span<const u8> payload, const char* ctx, Fn&& fn) {
    Cursor c{payload, ctx};
    try {
        auto out = fn(c);
        if (c.pos != payload.size())
            fail(ErrorCode::malformed_frame, std::string(ctx) + ": trailing bytes");
        return out;
    } catch (const ProtocolError&) {
        throw;
    } catch (const Error& e) {
        fail(ErrorCode::malformed_frame, e.what());
    }
}

void check_magic(Cursor& c, const char (&magic)[4], const char* ctx) {
    if (std::memcmp(c.get_bytes(4).data(), magic, 4) != 0)
        fail(ErrorCode::malformed_frame, std::string(ctx) + ": bad magic");
}

void check_version(Cursor& c, const char* ctx) {
    const u8 v = c.get_u8();
    if (v != kProtocolVersion)
        fail(ErrorCode::unsupported_version,
             std::string(ctx) + ": unsupported version " + std::to_string(v));
}

}  // namespace

const char* error_name(ErrorCode code) noexcept {
    switch (code) {
        case ErrorCode::ok: return "ok";
        case ErrorCode::unknown_asset: return "unknown_asset";
        case ErrorCode::invalid_range: return "invalid_range";
        case ErrorCode::not_acceptable: return "not_acceptable";
        case ErrorCode::bad_request: return "bad_request";
        case ErrorCode::malformed_frame: return "malformed_frame";
        case ErrorCode::checksum_mismatch: return "checksum_mismatch";
        case ErrorCode::unsupported_version: return "unsupported_version";
        case ErrorCode::internal: return "internal";
        case ErrorCode::frame_too_large: return "frame_too_large";
    }
    return "unknown";
}

const char* payload_name(PayloadKind kind) noexcept {
    switch (kind) {
        case PayloadKind::none: return "none";
        case PayloadKind::file: return "file";
        case PayloadKind::chunked: return "chunked";
        case PayloadKind::range: return "range";
        case PayloadKind::metrics: return "metrics";
    }
    return "unknown";
}

std::vector<u8> encode_request(const ServeRequest& req) {
    // Fail fast on anything decode_request would reject: an unparseable
    // frame wastes a round trip and comes back as a server-side bad_request.
    RECOIL_CHECK(!req.asset.empty() && req.asset.size() <= kMaxAssetNameLen,
                 "encode_request: bad asset name length");
    RECOIL_CHECK(req.parallelism != 0, "encode_request: zero parallelism");
    RECOIL_CHECK(
        req.accept != 0 &&
            (req.accept & ~(kAcceptAll | kAcceptStreamed | kAcceptMetrics)) ==
                0,
        "encode_request: bad accept mask");
    RECOIL_CHECK(req.resume_offset == 0 ||
                     (req.accept & kAcceptStreamed) != 0,
                 "encode_request: resume_offset requires kAcceptStreamed");
    std::vector<u8> out;
    out.insert(out.end(), kRequestMagic, kRequestMagic + 4);
    out.push_back(kProtocolVersion);
    out.push_back(static_cast<u8>(
        (req.range ? kRequestFlagHasRange : 0) |
        (req.resume_offset != 0 ? kRequestFlagHasResume : 0)));
    out.push_back(req.accept);
    out.push_back(0);  // reserved
    put_u32(out, req.parallelism);
    put_u32(out, static_cast<u32>(req.asset.size()));
    out.insert(out.end(), req.asset.begin(), req.asset.end());
    if (req.range) {
        put_u64(out, req.range->first);
        put_u64(out, req.range->second);
    }
    if (req.resume_offset != 0) put_u64(out, req.resume_offset);
    append_checksum(out);
    return out;
}

ServeRequest decode_request(std::span<const u8> frame) {
    const char* ctx = "serve request";
    auto payload = verify_frame(frame, ctx);
    return parse_frame(payload, ctx, [&](Cursor& c) {
        check_magic(c, kRequestMagic, ctx);
        check_version(c, ctx);
        const u8 flags = c.get_u8();
        if ((flags & ~(kRequestFlagHasRange | kRequestFlagHasResume)) != 0)
            fail(ErrorCode::malformed_frame, std::string(ctx) + ": unknown flags");
        ServeRequest req;
        req.accept = c.get_u8();
        if (req.accept == 0 ||
            (req.accept & ~(kAcceptAll | kAcceptStreamed | kAcceptMetrics)) !=
                0)
            fail(ErrorCode::bad_request, std::string(ctx) + ": bad accept mask");
        if (c.get_u8() != 0)
            fail(ErrorCode::malformed_frame, std::string(ctx) + ": reserved byte set");
        req.parallelism = c.get_u32();
        if (req.parallelism == 0)
            fail(ErrorCode::bad_request, std::string(ctx) + ": zero parallelism");
        const u32 name_len = c.get_u32();
        if (name_len == 0 || name_len > kMaxAssetNameLen)
            fail(ErrorCode::bad_request, std::string(ctx) + ": bad asset name length");
        auto name = c.get_bytes(name_len);
        req.asset.assign(name.begin(), name.end());
        if ((flags & kRequestFlagHasRange) != 0) {
            const u64 lo = c.get_u64();
            const u64 hi = c.get_u64();
            req.range = {lo, hi};
        }
        if ((flags & kRequestFlagHasResume) != 0) {
            req.resume_offset = c.get_u64();
            if (req.resume_offset == 0)
                fail(ErrorCode::bad_request,
                     std::string(ctx) + ": zero resume offset flagged");
            if ((req.accept & kAcceptStreamed) == 0)
                fail(ErrorCode::bad_request,
                     std::string(ctx) +
                         ": resume offset without streamed accept");
        }
        return req;
    });
}

std::vector<u8> encode_response(const ServeResult& res, u64 max_frame_bytes) {
    std::vector<u8> out;
    out.insert(out.end(), kResponseMagic, kResponseMagic + 4);
    out.push_back(kProtocolVersion);
    put_u16(out, static_cast<u16>(res.code));
    out.push_back(static_cast<u8>(res.payload));
    out.push_back(static_cast<u8>((res.stats.cache_hit ? kResponseFlagCacheHit : 0) |
                                  (res.stats.coalesced ? kResponseFlagCoalesced : 0)));
    put_u32(out, res.stats.splits_served);
    std::string detail = res.detail;
    if (detail.size() > kMaxDetailLen) detail.resize(kMaxDetailLen);
    put_u32(out, static_cast<u32>(detail.size()));
    out.insert(out.end(), detail.begin(), detail.end());
    if (res.ok() && res.wire != nullptr) {
        put_u64(out, res.wire->size());
        out.insert(out.end(), res.wire->begin(), res.wire->end());
    } else {
        put_u64(out, 0);
    }
    append_checksum(out);
    if (max_frame_bytes != kNoFrameLimit && out.size() > max_frame_bytes)
        fail(ErrorCode::frame_too_large,
             "serve response: " + std::to_string(out.size()) +
                 " B frame exceeds the negotiated " +
                 std::to_string(max_frame_bytes) + " B maximum");
    return out;
}

ServeResult decode_response(std::span<const u8> frame, u64 max_frame_bytes) {
    const char* ctx = "serve response";
    if (max_frame_bytes != kNoFrameLimit && frame.size() > max_frame_bytes)
        fail(ErrorCode::frame_too_large,
             "serve response: " + std::to_string(frame.size()) +
                 " B frame exceeds the negotiated " +
                 std::to_string(max_frame_bytes) + " B maximum");
    auto payload = verify_frame(frame, ctx);
    return parse_frame(payload, ctx, [&](Cursor& c) {
        check_magic(c, kResponseMagic, ctx);
        check_version(c, ctx);
        ServeResult res;
        // Codes beyond the ones this build knows are preserved, not
        // rejected: the protocol contract lets servers append codes without
        // a version bump, and error_name() reports them as "unknown".
        // Payload kinds stay strict — a payload form the client never
        // accepted (negotiation) could not be decoded anyway.
        res.code = static_cast<ErrorCode>(c.get_u16());
        const u8 kind = c.get_u8();
        if (kind > static_cast<u8>(PayloadKind::metrics))
            fail(ErrorCode::malformed_frame, std::string(ctx) + ": unknown payload kind");
        res.payload = static_cast<PayloadKind>(kind);
        const u8 flags = c.get_u8();
        if ((flags & ~(kResponseFlagCacheHit | kResponseFlagCoalesced)) != 0)
            fail(ErrorCode::malformed_frame, std::string(ctx) + ": unknown flags");
        res.stats.cache_hit = (flags & kResponseFlagCacheHit) != 0;
        res.stats.coalesced = (flags & kResponseFlagCoalesced) != 0;
        res.stats.splits_served = c.get_u32();
        const u32 detail_len = c.get_u32();
        if (detail_len > kMaxDetailLen)
            fail(ErrorCode::malformed_frame, std::string(ctx) + ": detail too long");
        auto detail = c.get_bytes(detail_len);
        res.detail.assign(detail.begin(), detail.end());
        const u64 wire_len = c.get_u64();
        // Success carries exactly one payload; errors carry none. Enforcing
        // the correlation keeps transports from trusting half-formed frames.
        if (res.ok() != (res.payload != PayloadKind::none) ||
            res.ok() != (wire_len != 0))
            fail(ErrorCode::malformed_frame,
                 std::string(ctx) + ": payload/status mismatch");
        if (wire_len != 0) {
            auto bytes = c.get_bytes(wire_len);
            res.wire = std::make_shared<const std::vector<u8>>(bytes.begin(),
                                                               bytes.end());
            res.stats.wire_bytes = wire_len;
        }
        return res;
    });
}

// ---- v2 streamed response framing ----

namespace {

constexpr u8 kStreamFlagCacheHit = 1;
constexpr u8 kStreamFlagCoalesced = 2;

void put_stream_preamble(std::vector<u8>& out, StreamFrameType type) {
    out.insert(out.end(), kResponseMagic, kResponseMagic + 4);
    out.push_back(kStreamVersion);
    out.push_back(static_cast<u8>(type));
}

}  // namespace

std::vector<u8> encode_stream_header(const StreamHeader& h) {
    std::vector<u8> out;
    put_stream_preamble(out, StreamFrameType::header);
    out.push_back(static_cast<u8>((h.cache_hit ? kStreamFlagCacheHit : 0) |
                                  (h.coalesced ? kStreamFlagCoalesced : 0)));
    put_u16(out, static_cast<u16>(h.code));
    out.push_back(static_cast<u8>(h.payload));
    out.push_back(0);  // reserved
    put_u32(out, h.splits);
    put_u64(out, h.wire_bytes);
    put_u64(out, h.max_frame_bytes);
    std::string detail = h.detail;
    if (detail.size() > kMaxDetailLen) detail.resize(kMaxDetailLen);
    put_u32(out, static_cast<u32>(detail.size()));
    out.insert(out.end(), detail.begin(), detail.end());
    append_checksum(out);
    return out;
}

std::vector<u8> encode_stream_body(u32 seq, std::span<const u8> payload,
                                   u64 max_frame_bytes) {
    if (max_frame_bytes != kNoFrameLimit && payload.size() > max_frame_bytes)
        fail(ErrorCode::frame_too_large,
             "stream body: " + std::to_string(payload.size()) +
                 " B payload exceeds the negotiated " +
                 std::to_string(max_frame_bytes) + " B maximum");
    std::vector<u8> out;
    out.reserve(payload.size() + kStreamBodyOverhead);
    put_stream_preamble(out, StreamFrameType::body);
    out.push_back(0);  // reserved
    put_u32(out, seq);
    put_u64(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    append_checksum(out);
    return out;
}

std::vector<u8> encode_stream_fin(const StreamFin& fin) {
    std::vector<u8> out;
    put_stream_preamble(out, StreamFrameType::fin);
    out.push_back(0);  // reserved
    put_u16(out, static_cast<u16>(fin.code));
    put_u32(out, fin.body_frames);
    put_u32(out, fin.splits);
    put_u64(out, fin.wire_checksum);
    std::string detail = fin.detail;
    if (detail.size() > kMaxDetailLen) detail.resize(kMaxDetailLen);
    put_u32(out, static_cast<u32>(detail.size()));
    out.insert(out.end(), detail.begin(), detail.end());
    append_checksum(out);
    return out;
}

StreamFrame decode_stream_frame(std::span<const u8> frame,
                                u64 max_frame_bytes) {
    const char* ctx = "stream frame";
    // The negotiated ceiling protects the receiver's body buffer; it is
    // enforced on the body length field below, before any payload is
    // materialized. Header and FIN frames are exempt: they are structurally
    // bounded by kMaxDetailLen regardless of the negotiated body size, and
    // a typed error header must never be masked by frame_too_large just
    // because its detail outgrew a small body ceiling. (A transport read
    // loop should cap its length prefix at
    // max_frame_bytes + kMaxDetailLen + overhead.)
    auto payload = verify_frame(frame, ctx);
    return parse_frame(payload, ctx, [&](Cursor& c) {
        check_magic(c, kResponseMagic, ctx);
        const u8 v = c.get_u8();
        if (v != kStreamVersion)
            fail(ErrorCode::unsupported_version,
                 std::string(ctx) + ": unsupported version " + std::to_string(v));
        StreamFrame f;
        const u8 type = c.get_u8();
        if (type > static_cast<u8>(StreamFrameType::fin))
            fail(ErrorCode::malformed_frame,
                 std::string(ctx) + ": unknown frame type");
        f.type = static_cast<StreamFrameType>(type);
        switch (f.type) {
            case StreamFrameType::header: {
                const u8 flags = c.get_u8();
                if ((flags & ~(kStreamFlagCacheHit | kStreamFlagCoalesced)) != 0)
                    fail(ErrorCode::malformed_frame,
                         std::string(ctx) + ": unknown flags");
                f.header.cache_hit = (flags & kStreamFlagCacheHit) != 0;
                f.header.coalesced = (flags & kStreamFlagCoalesced) != 0;
                // Unknown codes are preserved (same contract as v1).
                f.header.code = static_cast<ErrorCode>(c.get_u16());
                const u8 kind = c.get_u8();
                if (kind > static_cast<u8>(PayloadKind::metrics))
                    fail(ErrorCode::malformed_frame,
                         std::string(ctx) + ": unknown payload kind");
                f.header.payload = static_cast<PayloadKind>(kind);
                if (c.get_u8() != 0)
                    fail(ErrorCode::malformed_frame,
                         std::string(ctx) + ": reserved byte set");
                f.header.splits = c.get_u32();
                f.header.wire_bytes = c.get_u64();
                f.header.max_frame_bytes = c.get_u64();
                const u32 detail_len = c.get_u32();
                if (detail_len > kMaxDetailLen)
                    fail(ErrorCode::malformed_frame,
                         std::string(ctx) + ": detail too long");
                auto detail = c.get_bytes(detail_len);
                f.header.detail.assign(detail.begin(), detail.end());
                const bool err = f.header.code != ErrorCode::ok;
                if (err != (f.header.payload == PayloadKind::none))
                    fail(ErrorCode::malformed_frame,
                         std::string(ctx) + ": payload/status mismatch");
                break;
            }
            case StreamFrameType::body: {
                if (c.get_u8() != 0)
                    fail(ErrorCode::malformed_frame,
                         std::string(ctx) + ": reserved byte set");
                f.seq = c.get_u32();
                const u64 len = c.get_u64();
                if (max_frame_bytes != kNoFrameLimit && len > max_frame_bytes)
                    fail(ErrorCode::frame_too_large,
                         std::string(ctx) + ": " + std::to_string(len) +
                             " B body exceeds the negotiated " +
                             std::to_string(max_frame_bytes) + " B maximum");
                if (len == 0)
                    fail(ErrorCode::malformed_frame,
                         std::string(ctx) + ": empty body frame");
                f.payload = c.get_bytes(len);
                break;
            }
            case StreamFrameType::fin: {
                if (c.get_u8() != 0)
                    fail(ErrorCode::malformed_frame,
                         std::string(ctx) + ": reserved byte set");
                f.fin.code = static_cast<ErrorCode>(c.get_u16());
                f.fin.body_frames = c.get_u32();
                f.fin.splits = c.get_u32();
                f.fin.wire_checksum = c.get_u64();
                const u32 detail_len = c.get_u32();
                if (detail_len > kMaxDetailLen)
                    fail(ErrorCode::malformed_frame,
                         std::string(ctx) + ": detail too long");
                auto detail = c.get_bytes(detail_len);
                f.fin.detail.assign(detail.begin(), detail.end());
                break;
            }
        }
        return f;
    });
}

bool StreamReassembler::feed(std::span<const u8> frame) {
    if (done_)
        throw ProtocolError(ErrorCode::malformed_frame,
                            "stream reassembly: frame after completion");
    const StreamFrame f = decode_stream_frame(frame, max_frame_);
    switch (f.type) {
        case StreamFrameType::header: {
            if (have_header_)
                throw ProtocolError(ErrorCode::malformed_frame,
                                    "stream reassembly: duplicate header");
            have_header_ = true;
            head_ = f.header;
            splits_ = head_.splits;
            if (head_.code != ErrorCode::ok) done_ = true;  // error: no body
            break;
        }
        case StreamFrameType::body: {
            if (!have_header_)
                throw ProtocolError(ErrorCode::malformed_frame,
                                    "stream reassembly: body before header");
            if (f.seq != next_seq_)
                throw ProtocolError(
                    ErrorCode::malformed_frame,
                    "stream reassembly: body frame " + std::to_string(f.seq) +
                        " arrived, expected " + std::to_string(next_seq_));
            if (head_.wire_bytes != 0 &&
                wire_->size() + f.payload.size() > head_.wire_bytes)
                throw ProtocolError(ErrorCode::malformed_frame,
                                    "stream reassembly: body bytes exceed the "
                                    "announced wire size");
            ++next_seq_;
            digest_ = format::fnv1a(f.payload, digest_);
            wire_->insert(wire_->end(), f.payload.begin(), f.payload.end());
            break;
        }
        case StreamFrameType::fin: {
            if (!have_header_)
                throw ProtocolError(ErrorCode::malformed_frame,
                                    "stream reassembly: FIN before header");
            if (f.fin.code != ErrorCode::ok)
                throw ProtocolError(f.fin.code,
                                    "stream aborted mid-way: " + f.fin.detail);
            if (f.fin.body_frames != next_seq_)
                throw ProtocolError(
                    ErrorCode::malformed_frame,
                    "stream reassembly: FIN reports " +
                        std::to_string(f.fin.body_frames) + " body frames, got " +
                        std::to_string(next_seq_));
            if (head_.wire_bytes != 0 && wire_->size() != head_.wire_bytes)
                throw ProtocolError(ErrorCode::malformed_frame,
                                    "stream reassembly: body bytes do not "
                                    "reach the announced wire size");
            if (wire_->empty())
                throw ProtocolError(ErrorCode::malformed_frame,
                                    "stream reassembly: ok stream with no body");
            if (f.fin.wire_checksum != digest_)
                throw ProtocolError(ErrorCode::checksum_mismatch,
                                    "stream reassembly: whole-wire checksum "
                                    "mismatch");
            splits_ = f.fin.splits;
            done_ = true;
            break;
        }
    }
    return done_;
}

const StreamHeader& StreamReassembler::header() const {
    RECOIL_CHECK(have_header_, "stream reassembly: no header fed yet");
    return head_;
}

ServeResult StreamReassembler::result() const {
    RECOIL_CHECK(done_, "stream reassembly: stream not complete");
    ServeResult res;
    res.code = head_.code;
    res.detail = head_.detail;
    res.payload = head_.payload;
    res.stats.cache_hit = head_.cache_hit;
    res.stats.coalesced = head_.coalesced;
    res.stats.splits_served = splits_;
    if (res.ok()) {
        // Alias the accumulation buffer (it never mutates after done_):
        // handing out the wire costs no copy.
        res.wire = WireBytes(wire_);
        res.stats.wire_bytes = wire_->size();
    }
    return res;
}

}  // namespace recoil::serve
