#include "serve/cache_policy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace recoil::serve {

// ---- LruPolicy ----

void LruPolicy::on_insert(EntryId id, u64 /*bytes*/) {
    order_.push_front(id);
    pos_[id] = order_.begin();
}

void LruPolicy::on_touch(EntryId id) {
    auto it = pos_.find(id);
    RECOIL_CHECK(it != pos_.end(), "lru: touch of untracked entry");
    order_.splice(order_.begin(), order_, it->second);
}

void LruPolicy::on_erase(EntryId id) {
    auto it = pos_.find(id);
    RECOIL_CHECK(it != pos_.end(), "lru: erase of untracked entry");
    order_.erase(it->second);
    pos_.erase(it);
}

EntryId LruPolicy::victim() const {
    return order_.empty() ? kNoEntry : order_.back();
}

void LruPolicy::clear() {
    order_.clear();
    pos_.clear();
}

// ---- SegmentedLruPolicy ----

SegmentedLruPolicy::SegmentedLruPolicy(u64 capacity_bytes,
                                       double protected_fraction)
    : protected_cap_(static_cast<u64>(
          static_cast<double>(capacity_bytes) *
          std::clamp(protected_fraction, 0.0, 1.0))) {}

void SegmentedLruPolicy::on_insert(EntryId id, u64 bytes) {
    probation_.push_front(id);
    nodes_[id] = Node{probation_.begin(), bytes, false};
    probation_bytes_ += bytes;
}

void SegmentedLruPolicy::on_touch(EntryId id) {
    auto it = nodes_.find(id);
    RECOIL_CHECK(it != nodes_.end(), "slru: touch of untracked entry");
    Node& n = it->second;
    if (n.protected_seg) {
        protected_.splice(protected_.begin(), protected_, n.it);
        return;
    }
    // Second access: promote out of probation. The protected segment may
    // now exceed its byte cap; demote its cold tail back to probation.
    protected_.splice(protected_.begin(), probation_, n.it);
    n.protected_seg = true;
    probation_bytes_ -= n.bytes;
    protected_bytes_ += n.bytes;
    shrink_protected();
}

void SegmentedLruPolicy::on_resize(EntryId id, u64 bytes) {
    auto it = nodes_.find(id);
    RECOIL_CHECK(it != nodes_.end(), "slru: resize of untracked entry");
    Node& n = it->second;
    u64& segment = n.protected_seg ? protected_bytes_ : probation_bytes_;
    segment -= n.bytes;
    segment += bytes;
    n.bytes = bytes;
    if (n.protected_seg) shrink_protected();
}

void SegmentedLruPolicy::on_erase(EntryId id) {
    auto it = nodes_.find(id);
    RECOIL_CHECK(it != nodes_.end(), "slru: erase of untracked entry");
    Node& n = it->second;
    if (n.protected_seg) {
        protected_bytes_ -= n.bytes;
        protected_.erase(n.it);
    } else {
        probation_bytes_ -= n.bytes;
        probation_.erase(n.it);
    }
    nodes_.erase(it);
}

EntryId SegmentedLruPolicy::victim() const {
    if (!probation_.empty()) return probation_.back();
    return protected_.empty() ? kNoEntry : protected_.back();
}

void SegmentedLruPolicy::shrink_protected() {
    // Demotions land at probation's MRU end: relative to probation's tail
    // (never touched since insertion) a demoted entry was used recently.
    while (protected_bytes_ > protected_cap_ && protected_.size() > 1) {
        const EntryId id = protected_.back();
        Node& n = nodes_[id];
        probation_.splice(probation_.begin(), protected_, n.it);
        n.protected_seg = false;
        protected_bytes_ -= n.bytes;
        probation_bytes_ += n.bytes;
    }
}

void SegmentedLruPolicy::clear() {
    probation_.clear();
    protected_.clear();
    nodes_.clear();
    protected_bytes_ = 0;
    probation_bytes_ = 0;
}

// ---- TinyLfuAdmission ----

namespace {

/// Row-salted avalanche mix (splitmix64 finalizer) so the four sketch rows
/// index independently from one key hash.
u64 mix_hash(u64 h, u64 salt) {
    u64 x = h ^ (salt * 0x9e3779b97f4a7c15ull);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

u32 round_up_pow2(u32 v) {
    u32 p = 1;
    while (p < v && p < (u32{1} << 30)) p <<= 1;
    return p;
}

}  // namespace

TinyLfuAdmission::TinyLfuAdmission(u64 small_floor_bytes, u32 width)
    : small_floor_(small_floor_bytes),
      mask_(round_up_pow2(std::max<u32>(width, 64)) - 1),
      window_(u64{8} * (mask_ + 1)) {
    for (auto& row : rows_) row.assign(mask_ + 1, 0);
}

void TinyLfuAdmission::record(u64 key_hash) {
    for (u32 r = 0; r < kRows; ++r) {
        u8& c = rows_[r][mix_hash(key_hash, r + 1) & mask_];
        if (c < kCounterMax) ++c;
    }
    if (++ops_ < window_) return;
    // Window full: halve every counter so the sketch tracks the recent
    // stream instead of all of history (a key hot an hour ago decays).
    ops_ = 0;
    for (auto& row : rows_)
        for (u8& c : row) c >>= 1;
}

u32 TinyLfuAdmission::estimate(u64 key_hash) const noexcept {
    u32 est = kCounterMax;
    for (u32 r = 0; r < kRows; ++r)
        est = std::min<u32>(est, rows_[r][mix_hash(key_hash, r + 1) & mask_]);
    return est;
}

bool TinyLfuAdmission::admit(u64 key_hash, u64 bytes) {
    // The candidate's own miss was already record()ed, so >= 2 means at
    // least one prior access inside the window: demonstrated reuse.
    if (estimate(key_hash) >= 2) return true;
    return bytes <= small_floor_;
}

void TinyLfuAdmission::clear() {
    ops_ = 0;
    for (auto& row : rows_) std::fill(row.begin(), row.end(), u8{0});
}

// ---- factories / naming ----

std::unique_ptr<EvictionPolicy> make_eviction_policy(
    const CachePolicyConfig& cfg, u64 capacity_bytes) {
    switch (cfg.eviction) {
        case EvictionKind::lru:
            return std::make_unique<LruPolicy>();
        case EvictionKind::slru:
            return std::make_unique<SegmentedLruPolicy>(
                capacity_bytes, cfg.slru_protected_fraction);
    }
    raise("make_eviction_policy: unknown eviction kind");
}

std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const CachePolicyConfig& cfg, u64 capacity_bytes) {
    switch (cfg.admission) {
        case AdmissionKind::admit_all:
            return std::make_unique<AdmitAll>();
        case AdmissionKind::tinylfu: {
            const u64 floor = cfg.tinylfu_small_floor != 0
                                  ? cfg.tinylfu_small_floor
                                  : capacity_bytes / 64;
            return std::make_unique<TinyLfuAdmission>(floor,
                                                      cfg.tinylfu_width);
        }
    }
    raise("make_admission_policy: unknown admission kind");
}

std::optional<CachePolicyConfig> parse_cache_policy(std::string_view name) {
    CachePolicyConfig cfg;
    if (name == "lru") return cfg;
    if (name == "slru") {
        cfg.eviction = EvictionKind::slru;
        return cfg;
    }
    if (name == "lru-tinylfu") {
        cfg.admission = AdmissionKind::tinylfu;
        return cfg;
    }
    if (name == "slru-tinylfu") {
        cfg.eviction = EvictionKind::slru;
        cfg.admission = AdmissionKind::tinylfu;
        return cfg;
    }
    return std::nullopt;
}

std::string cache_policy_name(const CachePolicyConfig& cfg) {
    std::string name =
        cfg.eviction == EvictionKind::slru ? "slru" : "lru";
    if (cfg.admission == AdmissionKind::tinylfu) name += "-tinylfu";
    return name;
}

}  // namespace recoil::serve
