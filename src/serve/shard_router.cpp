#include "serve/shard_router.hpp"

#include <algorithm>
#include <cmath>

#include "format/wire_io.hpp"

namespace recoil::serve {

namespace {

/// FNV-1a alone clusters badly on the structured names the ring hashes
/// ("shard-3#17", "tenant/asset-42"): measured spread over 8 shards ran
/// past 2x the mean. A splitmix64 finalizer decorrelates the low entropy
/// FNV leaves in the high bits; with it the 1024-vnode ring lands within
/// ~10% of even (pinned by tests/test_shard.cpp).
u64 mix64(u64 x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

u64 hash_bytes(std::string_view s) {
    return mix64(format::fnv1a(
        {reinterpret_cast<const u8*>(s.data()), s.size()}));
}

ServeResult fail(ErrorCode code, std::string detail) {
    ServeResult res;
    res.code = code;
    res.detail = std::move(detail);
    return res;
}

/// Answer "!metrics"/"!metrics.json" from the router's registry — same
/// contract as ContentServer's introspection, different directory: this one
/// carries the shard_* families and the per-shard labeled series.
ServeResult introspect(obs::MetricsRegistry& reg, const ServeRequest& req) {
    if ((req.accept & kAcceptMetrics) == 0)
        return fail(ErrorCode::not_acceptable,
                    "shard router: introspection requires the metrics "
                    "accept bit");
    std::string body;
    if (req.asset == kMetricsAssetText)
        body = reg.snapshot().to_prometheus();
    else if (req.asset == kMetricsAssetJson)
        body = reg.snapshot().to_json();
    else
        return fail(ErrorCode::unknown_asset,
                    "shard router: unknown introspection target '" +
                        req.asset + "'");
    ServeResult res;
    res.code = ErrorCode::ok;
    res.payload = PayloadKind::metrics;
    res.wire = std::make_shared<const std::vector<u8>>(body.begin(),
                                                       body.end());
    res.stats.wire_bytes = res.wire->size();
    return res;
}

}  // namespace

ShardedServer::ShardedServer(ShardedOptions opt) : opt_(std::move(opt)) {
    if (opt_.shards == 0) opt_.shards = 1;
    if (opt_.vnodes == 0) opt_.vnodes = 1;
    const u32 n = opt_.shards;

    // Even initial budget split; the remainder sticks to shard 0 until the
    // first rebalance pass reassigns it by observed heat.
    const u64 even = opt_.total_budget_bytes / n;
    budgets_.assign(n, even);
    if (n > 0) budgets_[0] += opt_.total_budget_bytes - even * n;
    last_hit_bytes_.assign(n, 0);

    shards_.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        ServerOptions so = opt_.server;
        so.mem_budget_bytes = budgets_[i];
        Shard s;
        s.server = std::make_unique<ContentServer>(so);
        if (!opt_.store_dir.empty())
            s.server->store().attach_backing(std::make_shared<DiskStore>(
                opt_.store_dir / ("shard-" + std::to_string(i))));
        shards_.push_back(std::move(s));
    }

    // The ring: vnodes points per shard, keyed by a stable derived name so
    // the same (shards, vnodes) pair always produces the same routing.
    ring_.reserve(static_cast<std::size_t>(n) * opt_.vnodes);
    for (u32 i = 0; i < n; ++i)
        for (u32 v = 0; v < opt_.vnodes; ++v)
            ring_.emplace_back(hash_bytes("shard-" + std::to_string(i) +
                                          "#" + std::to_string(v)),
                               i);
    std::sort(ring_.begin(), ring_.end());

    init_metrics();
}

u32 ShardedServer::shard_of(std::string_view asset) const noexcept {
    if (shards_.size() == 1) return 0;
    const u64 h = hash_bytes(asset);
    // First ring point clockwise of the key's hash; wrap past the top.
    auto it = std::upper_bound(
        ring_.begin(), ring_.end(), h,
        [](u64 lhs, const std::pair<u64, u32>& p) { return lhs < p.first; });
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
}

void ShardedServer::ensure_local(u32 home, const std::string& name) noexcept {
    if (!opt_.peer_fetch || shards_.size() < 2) return;
    ContentServer& server = *shards_[home].server;
    try {
        // Memory hit or a demand-load from the home partition: nothing to
        // fetch. A corrupt local copy throws — leave it for the serve path
        // to surface as its typed StoreError.
        if (server.store().resolve(name) != nullptr) return;
    } catch (...) {
        return;
    }
    for (u32 j = 0; j < shards_.size(); ++j) {
        if (j == home) continue;
        const std::shared_ptr<DiskStore> peer =
            shards_[j].server->store().backing();
        if (peer == nullptr) continue;
        try {
            const auto loaded = peer->load(name);
            if (!loaded) continue;
            const u64 bytes = loaded->info.container_bytes;
            // Two racing fetchers may both adopt; the second replaces the
            // first under a fresh uid — one wasted mmap, never corruption.
            server.store().adopt(*loaded);
            peer_fetches_.fetch_add(1, std::memory_order_relaxed);
            peer_fetch_bytes_.fetch_add(bytes, std::memory_order_relaxed);
            return;
        } catch (...) {
            continue;  // a corrupt peer copy disqualifies that peer only
        }
    }
    peer_fetch_misses_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedServer::note_routed() noexcept {
    const u64 tick = routed_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (opt_.rebalance_every != 0 && tick % opt_.rebalance_every == 0)
        rebalance();
}

ServeResult ShardedServer::serve(const ServeRequest& req) noexcept {
    if (!req.asset.empty() && req.asset[0] == '!')
        return introspect(metrics_, req);
    const u32 home = shard_of(req.asset);
    ensure_local(home, req.asset);
    note_routed();
    return shards_[home].server->serve(req);
}

ServeStream ShardedServer::serve_stream(const ServeRequest& req,
                                        StreamOptions opt) noexcept {
    const u32 home = shard_of(req.asset);
    if (req.asset.empty() || req.asset[0] != '!') {
        ensure_local(home, req.asset);
        note_routed();
    }
    return shards_[home].server->serve_stream(req, opt);
}

std::vector<u8> ShardedServer::serve_frame(
    std::span<const u8> request_frame) noexcept {
    try {
        ServeRequest req;
        try {
            req = decode_request(request_frame);
        } catch (const ProtocolError&) {
            // Let a shard produce the typed error frame (and count the
            // failure) exactly as a single server would.
            return shards_[0].server->serve_frame(request_frame);
        }
        if (!req.asset.empty() && req.asset[0] == '!')
            return encode_response(introspect(metrics_, req));
        return encode_response(serve(req));
    } catch (...) {
        return {};
    }
}

std::shared_ptr<const Asset> ShardedServer::encode_bytes(
    std::string name, std::span<const u8> data, u32 max_splits,
    u32 prob_bits) {
    const u32 home = shard_of(name);
    return shards_[home].server->store().encode_bytes(std::move(name), data,
                                                      max_splits, prob_bits);
}

void ShardedServer::rebalance() {
    if (opt_.total_budget_bytes == 0 || shards_.size() < 2) return;
    util::MutexLock lk(rebalance_mu_);
    const u32 n = static_cast<u32>(shards_.size());

    std::vector<u64> delta(n, 0);
    u64 total_delta = 0;
    for (u32 i = 0; i < n; ++i) {
        const u64 hits = shards_[i].server->cache().stats().hit_bytes;
        delta[i] = hits - last_hit_bytes_[i];
        last_hit_bytes_[i] = hits;
        total_delta += delta[i];
    }

    // Every shard keeps `floor` (its protected fraction of the even
    // share); the remainder is dealt proportional to hit-bytes heat.
    const u64 total = opt_.total_budget_bytes;
    const u64 even = total / n;
    const u64 keep =
        static_cast<u64>(std::clamp(opt_.budget_floor, 0.0, 1.0) *
                         static_cast<double>(even));
    const u64 spare = total - keep * n;
    std::vector<u64> next(n, keep);
    u64 dealt = 0;
    u32 hottest = 0;
    for (u32 i = 0; i < n; ++i) {
        const u64 share =
            total_delta == 0
                ? spare / n
                : static_cast<u64>(static_cast<double>(spare) *
                                   (static_cast<double>(delta[i]) /
                                    static_cast<double>(total_delta)));
        next[i] += share;
        dealt += share;
        if (delta[i] > delta[hottest]) hottest = i;
    }
    // Rounding remainder goes to the hottest shard (deterministic: lowest
    // index on ties), keeping the dealt total exactly the global budget.
    next[hottest] += spare - dealt;

    u64 moved = 0;
    std::vector<u32> shrunk;
    for (u32 i = 0; i < n; ++i) {
        if (next[i] == budgets_[i]) continue;
        moved += next[i] > budgets_[i] ? next[i] - budgets_[i]
                                       : budgets_[i] - next[i];
        if (next[i] < budgets_[i]) shrunk.push_back(i);
        shards_[i].server->governor().set_budget(next[i]);
        budgets_[i] = next[i];
    }
    budget_moved_.fetch_add(moved / 2, std::memory_order_relaxed);
    rebalances_.fetch_add(1, std::memory_order_relaxed);
    // A shrunk shard is over its new budget right now; make the pass
    // visible immediately instead of waiting for its next serve.
    for (u32 i : shrunk) shards_[i].server->governor().enforce();
}

std::vector<u64> ShardedServer::shard_budgets() const {
    util::MutexLock lk(rebalance_mu_);
    return budgets_;
}

ShardedServer::Totals ShardedServer::totals() const noexcept {
    Totals t;
    t.routed = routed_.load(std::memory_order_relaxed);
    t.peer_fetches = peer_fetches_.load(std::memory_order_relaxed);
    t.peer_fetch_bytes = peer_fetch_bytes_.load(std::memory_order_relaxed);
    t.peer_fetch_misses = peer_fetch_misses_.load(std::memory_order_relaxed);
    t.rebalances = rebalances_.load(std::memory_order_relaxed);
    t.budget_moved_bytes = budget_moved_.load(std::memory_order_relaxed);
    return t;
}

ContentServer::Totals ShardedServer::fleet_totals() const noexcept {
    ContentServer::Totals t;
    for (const Shard& s : shards_) {
        const ContentServer::Totals st = s.server->totals();
        t.requests += st.requests;
        t.failures += st.failures;
        t.cache_hits += st.cache_hits;
        t.range_requests += st.range_requests;
        t.streamed_requests += st.streamed_requests;
        t.wire_bytes += st.wire_bytes;
        t.coalesced_requests += st.coalesced_requests;
        t.bytes_saved += st.bytes_saved;
        t.governance_failures += st.governance_failures;
    }
    return t;
}

void ShardedServer::init_metrics() {
    using obs::MetricKind;
    auto& reg = metrics_;
    reg.register_callback("shard_servers", MetricKind::gauge,
                          [this] { return u64{shard_count()}; });
    reg.register_callback("shard_routed_total", MetricKind::counter, [this] {
        return routed_.load(std::memory_order_relaxed);
    });
    reg.register_callback("shard_peer_fetches_total", MetricKind::counter,
                          [this] {
                              return peer_fetches_.load(
                                  std::memory_order_relaxed);
                          });
    reg.register_callback("shard_peer_fetch_bytes_total", MetricKind::counter,
                          [this] {
                              return peer_fetch_bytes_.load(
                                  std::memory_order_relaxed);
                          });
    reg.register_callback("shard_peer_fetch_misses_total",
                          MetricKind::counter, [this] {
                              return peer_fetch_misses_.load(
                                  std::memory_order_relaxed);
                          });
    reg.register_callback("shard_rebalances_total", MetricKind::counter,
                          [this] {
                              return rebalances_.load(
                                  std::memory_order_relaxed);
                          });
    reg.register_callback("shard_budget_moved_bytes_total",
                          MetricKind::counter, [this] {
                              return budget_moved_.load(
                                  std::memory_order_relaxed);
                          });
    // Fleet aggregates under the base names (so the frozen-name snapshot
    // guard matches them unlabeled), plus one labeled series per shard.
    reg.register_callback("shard_requests_total", MetricKind::counter,
                          [this] { return fleet_totals().requests; });
    reg.register_callback("shard_wire_bytes_total", MetricKind::counter,
                          [this] { return fleet_totals().wire_bytes; });
    reg.register_callback("shard_cache_hit_bytes_total", MetricKind::counter,
                          [this] {
                              u64 sum = 0;
                              for (const Shard& s : shards_)
                                  sum += s.server->cache().stats().hit_bytes;
                              return sum;
                          });
    reg.register_callback("shard_budget_bytes", MetricKind::gauge, [this] {
        u64 sum = 0;
        for (const u64 b : shard_budgets()) sum += b;
        return sum;
    });
    reg.register_callback("shard_resident_bytes", MetricKind::gauge, [this] {
        u64 sum = 0;
        for (const Shard& s : shards_)
            sum += s.server->store().resident_bytes();
        return sum;
    });
    for (u32 i = 0; i < shard_count(); ++i) {
        const std::string label = "shard=\"" + std::to_string(i) + "\"";
        ContentServer* server = shards_[i].server.get();
        reg.register_callback("shard_requests_total", label,
                              MetricKind::counter, [server] {
                                  return server->totals().requests;
                              });
        reg.register_callback("shard_wire_bytes_total", label,
                              MetricKind::counter, [server] {
                                  return server->totals().wire_bytes;
                              });
        reg.register_callback("shard_cache_hit_bytes_total", label,
                              MetricKind::counter, [server] {
                                  return server->cache().stats().hit_bytes;
                              });
        reg.register_callback("shard_budget_bytes", label, MetricKind::gauge,
                              [server] {
                                  return server->governor().budget_bytes();
                              });
        reg.register_callback("shard_resident_bytes", label,
                              MetricKind::gauge, [server] {
                                  return server->store().resident_bytes();
                              });
    }
}

}  // namespace recoil::serve
