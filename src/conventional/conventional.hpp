#pragma once
// Baseline (B): the conventional "partitioning symbols" approach (§2.3),
// as in DietGPU. The input symbol sequence is cut into P contiguous
// sub-sequences, each encoded by a completely independent group of NLanes
// interleaved rANS coders. The resulting sub-bitstreams are concatenated,
// with an offset table to locate them. The partition count is fixed at
// encode time — the flexibility Recoil exists to provide is exactly what
// this baseline lacks.
//
// Partitions are aligned to NLanes symbols so that the global position
// (pos % NLanes) lane mapping holds inside every partition; this also means
// per-index adaptive models work unchanged.

#include <span>
#include <vector>

#include "core/recoil_decoder.hpp"  // ScalarRangeFn (shared RangeFn contract)
#include "rans/interleaved.hpp"
#include "util/thread_pool.hpp"

namespace recoil {

template <typename Cfg = Rans32, u32 NLanes = kLanes>
struct ConventionalEncoded {
    struct Partition {
        u64 sym_begin = 0;
        u64 sym_count = 0;
        u64 unit_begin = 0;
        u64 unit_count = 0;
        std::array<typename Cfg::StateT, NLanes> final_states{};
    };

    std::vector<typename Cfg::UnitT> units;  ///< concatenated sub-bitstreams
    std::vector<Partition> partitions;
    u64 num_symbols = 0;

    /// Transmission overhead versus a single-partition stream: per extra
    /// partition, the offset-table entry (unit offset u32 + symbol count u32)
    /// plus NLanes final states. The single mandatory set of final states and
    /// one table entry are part of the baseline too, so they are not counted.
    u64 overhead_bytes() const noexcept {
        if (partitions.size() <= 1) return 0;
        return (partitions.size() - 1) * (8 + NLanes * sizeof(typename Cfg::StateT));
    }

    u64 payload_bytes() const noexcept {
        return units.size() * sizeof(typename Cfg::UnitT);
    }
};

/// Encode `syms` into `num_partitions` independent sub-bitstreams. Because
/// the partitions are fully independent, encoding parallelizes across the
/// pool when one is supplied — the one advantage the conventional approach
/// holds over Recoil, whose single coder group must encode serially (§6).
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym, typename Model>
ConventionalEncoded<Cfg, NLanes> conventional_encode(std::span<const TSym> syms,
                                                     const Model& model,
                                                     u32 num_partitions,
                                                     ThreadPool* pool = nullptr) {
    RECOIL_CHECK(num_partitions >= 1, "conventional_encode: need >= 1 partition");
    ConventionalEncoded<Cfg, NLanes> out;
    out.num_symbols = syms.size();

    // Each partition runs its own coder group; adaptive models still see
    // global symbol indices via the offset shim below.
    struct OffsetModel {
        const Model* m;
        u64 base;
        u32 prob_bits() const noexcept { return m->prob_bits(); }
        EncSymbol enc_lookup(u64 i, u32 s) const noexcept {
            return m->enc_lookup(base + i, s);
        }
        decltype(auto) enc_fast(u64 i, u32 s) const noexcept
            requires requires(const Model& mm) { mm.enc_fast(u64{0}, u32{0}); }
        {
            return m->enc_fast(base + i, s);
        }
    };

    // Equal-symbol partitioning rounded to whole interleave groups.
    const u64 groups = ceil_div<u64>(syms.size(), NLanes);
    const u64 parts = std::min<u64>(num_partitions, groups == 0 ? 1 : groups);
    struct Bounds {
        u64 sym_begin, sym_end;
    };
    std::vector<Bounds> bounds;
    u64 begin_group = 0;
    for (u64 pi = 0; pi < parts; ++pi) {
        const u64 end_group = groups * (pi + 1) / parts;
        const u64 sym_begin = begin_group * NLanes;
        const u64 sym_end = std::min<u64>(end_group * NLanes, syms.size());
        begin_group = end_group;
        if (sym_end <= sym_begin && !(pi == 0 && syms.empty())) continue;
        bounds.push_back({sym_begin, sym_end});
    }

    std::vector<InterleavedBitstream<Cfg, NLanes>> encoded(bounds.size());
    auto encode_one = [&](u64 pi) {
        OffsetModel shim{&model, bounds[pi].sym_begin};
        encoded[pi] = interleaved_encode<Cfg, NLanes>(
            syms.subspan(bounds[pi].sym_begin,
                         bounds[pi].sym_end - bounds[pi].sym_begin),
            shim);
    };
    if (pool == nullptr || bounds.size() <= 1) {
        for (u64 pi = 0; pi < bounds.size(); ++pi) encode_one(pi);
    } else {
        std::exception_ptr first_error;
        util::Mutex err_mu;
        pool->parallel_for(bounds.size(), [&](u64 pi) {
            try {
                encode_one(pi);
            } catch (...) {
                util::MutexLock lk(err_mu);
                if (!first_error) first_error = std::current_exception();
            }
        });
        if (first_error) std::rethrow_exception(first_error);
    }

    for (u64 pi = 0; pi < bounds.size(); ++pi) {
        typename ConventionalEncoded<Cfg, NLanes>::Partition p;
        p.sym_begin = bounds[pi].sym_begin;
        p.sym_count = bounds[pi].sym_end - bounds[pi].sym_begin;
        p.unit_begin = out.units.size();
        p.unit_count = encoded[pi].units.size();
        p.final_states = encoded[pi].final_states;
        out.units.insert(out.units.end(), encoded[pi].units.begin(),
                         encoded[pi].units.end());
        out.partitions.push_back(p);
    }
    if (out.partitions.empty()) out.partitions.emplace_back();
    return out;
}

/// Decode one partition into `out` (full-size buffer, global indices).
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym,
          typename RangeFn = ScalarRangeFn<Cfg, NLanes, TSym>>
void conventional_decode_partition(const ConventionalEncoded<Cfg, NLanes>& enc,
                                   const DecodeTables& t, u64 pi, TSym* out,
                                   const RangeFn& range_fn = {}) {
    const auto& p = enc.partitions[pi];
    if (p.sym_count == 0) return;
    LaneCursor<Cfg, NLanes> cur;
    cur.x = p.final_states;
    // The cursor addresses the full concatenated unit buffer so that global
    // symbol positions map directly; it starts at this partition's top.
    cur.p = static_cast<i64>(p.unit_begin + p.unit_count) - 1;
    std::span<const typename Cfg::UnitT> units(enc.units);
    range_fn(cur, units, p.sym_begin + p.sym_count - 1, p.sym_begin, t, out);
    // Drain the partition's first symbol group (see drain_start): emulate a
    // partition-local stream by draining against the global cursor.
    const u32 used = static_cast<u32>(p.sym_count < NLanes ? p.sym_count : NLanes);
    for (u32 lane = used; lane-- > 0;) {
        auto xi = cur.x[lane];
        while (xi < Cfg::lower_bound) {
            RECOIL_CHECK(cur.p >= static_cast<i64>(p.unit_begin),
                         "conventional: partition bitstream underflow");
            xi = static_cast<typename Cfg::StateT>((xi << Cfg::unit_bits) |
                                                   units[static_cast<u64>(cur.p--)]);
        }
        cur.x[lane] = xi;
    }
    RECOIL_CHECK(cur.p == static_cast<i64>(p.unit_begin) - 1,
                 "conventional: partition not fully consumed");
}

/// Decode all partitions (independently parallel across the pool) into a
/// caller-provided buffer of enc.num_symbols elements.
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym,
          typename RangeFn = ScalarRangeFn<Cfg, NLanes, TSym>>
void conventional_decode_into(const ConventionalEncoded<Cfg, NLanes>& enc,
                              const DecodeTables& t, std::span<TSym> out,
                              ThreadPool* pool = nullptr,
                              const RangeFn& range_fn = {}) {
    RECOIL_CHECK(out.size() >= enc.num_symbols, "conventional_decode_into: buffer too small");
    auto run_one = [&](u64 pi) {
        conventional_decode_partition<Cfg, NLanes, TSym>(enc, t, pi, out.data(),
                                                         range_fn);
    };
    if (pool == nullptr || enc.partitions.size() == 1) {
        for (u64 pi = 0; pi < enc.partitions.size(); ++pi) run_one(pi);
    } else {
        std::exception_ptr first_error;
        util::Mutex err_mu;
        pool->parallel_for(enc.partitions.size(), [&](u64 pi) {
            try {
                run_one(pi);
            } catch (...) {
                util::MutexLock lk(err_mu);
                if (!first_error) first_error = std::current_exception();
            }
        });
        if (first_error) std::rethrow_exception(first_error);
    }
}

/// Allocating convenience wrapper around conventional_decode_into.
template <typename Cfg = Rans32, u32 NLanes = kLanes, typename TSym,
          typename RangeFn = ScalarRangeFn<Cfg, NLanes, TSym>>
std::vector<TSym> conventional_decode(const ConventionalEncoded<Cfg, NLanes>& enc,
                                      const DecodeTables& t,
                                      ThreadPool* pool = nullptr,
                                      const RangeFn& range_fn = {}) {
    std::vector<TSym> out(enc.num_symbols);
    conventional_decode_into<Cfg, NLanes, TSym>(enc, t, std::span<TSym>(out), pool,
                                                range_fn);
    return out;
}

}  // namespace recoil
