#pragma once
// On-disk/wire container for Recoil streams: model payload + detachable
// metadata + bitstream, with an integrity checksum. This is the format the
// CLI example and the content-delivery example exchange; the §3.3 serving
// path (combine splits, re-serialize metadata, keep the bitstream) operates
// directly on it.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "conventional/conventional.hpp"
#include "core/metadata.hpp"
#include "core/recoil_encoder.hpp"
#include "format/wire_io.hpp"
#include "rans/indexed_model.hpp"

namespace recoil::format {

/// FNV-1a 64-bit, used as the container integrity checksum.
u64 fnv1a(std::span<const u8> bytes);

struct RecoilFile {
    u8 sym_width = 1;  ///< 1 or 2 bytes per symbol
    u32 prob_bits = 0;
    /// Model payload: a single static PDF or an indexed family + ids. The id
    /// stream shares storage on copy and may be a zero-copy view into a
    /// mapped container (see load_recoil_file_view).
    struct StaticPayload {
        std::vector<u32> freq;
    };
    struct IndexedPayload {
        std::vector<std::vector<u32>> freqs;
        ByteBuffer ids;
    };
    std::variant<StaticPayload, IndexedPayload> model;
    RecoilMetadata metadata;
    /// Bitstream units: shared on copy, possibly a borrowed view of a
    /// mapped container file (the dominant payload, so the zero-copy parse
    /// path exists for its sake).
    UnitBuffer units;

    /// Rebuild the decode-side model objects.
    StaticModel build_static_model() const;
    IndexedModelSet build_indexed_model() const;
    bool is_indexed() const noexcept {
        return std::holds_alternative<IndexedPayload>(model);
    }
};

/// Serialize/parse. Parsing validates structure, metadata invariants and the
/// checksum; corrupt input raises recoil::Error. save writes container
/// version 2 (unit payload padded to an even offset); load accepts v1 too.
std::vector<u8> save_recoil_file(const RecoilFile& f);
/// Serialize `f`'s model and bitstream with `metadata` substituted — the
/// §3.3 serving path's shape (combine metadata, keep everything else)
/// without deep-copying the file first. A thin adapter over
/// save_recoil_file_into (one producer implementation, two framings).
std::vector<u8> save_recoil_file(const RecoilFile& f,
                                 const RecoilMetadata& metadata);
/// Streaming producer: emit the container into `sink` piece by piece, in
/// wire order and bit-exact with save_recoil_file. Structural sections are
/// small owned allocations; the id stream and bitstream are borrowed views
/// of `f`'s shared storage (never copied), so peak producer memory is
/// O(metadata), not O(wire).
void save_recoil_file_into(const RecoilFile& f, const RecoilMetadata& metadata,
                           WireSink& sink);
RecoilFile load_recoil_file(std::span<const u8> bytes);

/// Parse `bytes` without copying the bitstream or id stream: the returned
/// file's `units`/`ids` are views into `bytes`, and `keeper` (which must own
/// the storage behind `bytes`, e.g. a serve::MappedFile) is retained by
/// those views. Misaligned unit payloads (v1 containers at an odd offset)
/// fall back to an owned copy. `checksum_verified` true skips re-hashing
/// when the caller already validated these exact bytes (a store manifest
/// checksum); structural validation always runs.
RecoilFile load_recoil_file_view(std::span<const u8> bytes,
                                 std::shared_ptr<const void> keeper,
                                 bool checksum_verified = false);

/// Exact byte count save_recoil_file would produce, without materializing
/// the O(bitstream) buffer (only the metadata is encoded to measure it).
u64 serialized_file_size(const RecoilFile& f);

/// Serve a client with `target_splits` parallel capacity (§3.3): combines
/// metadata in O(M) and re-serializes; the bitstream bytes are shared.
std::vector<u8> serve_combined(const RecoilFile& f, u32 target_splits);

/// Convenience builders for the common encode paths.
template <typename Model>
RecoilFile make_recoil_file(const RecoilEncoded<Rans32, 32>& enc, const Model& model,
                            u8 sym_width);

/// Wire format for the conventional baseline (B): offset table + final
/// states + concatenated sub-bitstreams. Exists so the baseline is a
/// shippable artifact too and the size comparisons are container-to-container.
struct ConventionalFile {
    u8 sym_width = 1;
    u32 prob_bits = 0;
    std::vector<u32> freq;
    ConventionalEncoded<Rans32, 32> payload;
};

std::vector<u8> save_conventional_file(const ConventionalFile& f);
ConventionalFile load_conventional_file(std::span<const u8> bytes);

}  // namespace recoil::format
